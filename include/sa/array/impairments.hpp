// Per-chain receiver impairments.
//
// Paper §2.2: even with phase-locked oscillators, each downconverter adds
// an unknown but *constant* phase to its chain, which scrambles
// inter-antenna phase differences and makes AoA (and MIMO beamforming)
// inoperable until calibrated out. We model exactly that: a fixed random
// phase and a small gain mismatch per chain, identical across packets.
#pragma once

#include <vector>

#include "sa/common/rng.hpp"
#include "sa/linalg/cmat.hpp"
#include "sa/linalg/cvec.hpp"

namespace sa {

struct ChainImpairment {
  double phase_rad = 0.0;  ///< unknown LO phase after downconversion
  double gain = 1.0;       ///< amplitude mismatch (close to 1)
};

class ArrayImpairments {
 public:
  ArrayImpairments() = default;

  /// Random impairments for n chains: phases uniform in [0, 2*pi), gains
  /// log-normal-ish around 1 with `gain_sigma` spread.
  static ArrayImpairments random(std::size_t n, Rng& rng,
                                 double gain_sigma = 0.05);
  /// Ideal (no-op) impairments, for ablations.
  static ArrayImpairments ideal(std::size_t n);

  std::size_t size() const { return chains_.size(); }
  const ChainImpairment& chain(std::size_t m) const;

  /// Complex per-chain multiplier g_m * e^{j phi_m}.
  cd factor(std::size_t m) const;

  /// Apply impairments to a multi-antenna snapshot (one complex value per
  /// antenna) in place.
  void apply(CVec& snapshot) const;

  /// Apply to a full per-antenna sample matrix (rows = antennas).
  void apply(CMat& samples) const;

  /// Apply chain `m`'s factor to `n` samples in place — the one copy of
  /// the per-element math; apply(CMat&) and the streaming receiver's
  /// column-range conditioning both route through it.
  void apply_row(std::size_t m, cd* samples, std::size_t n) const;

 private:
  std::vector<ChainImpairment> chains_;
};

}  // namespace sa
