// Array calibration — software model of the paper's USRP2 rig (§2.2).
//
// The physical procedure: a signal generator transmits a continuous
// 2.4 GHz carrier through a 36 dB attenuator and an 8-way splitter with
// equal-length cables into every radio front end. Because the cabled
// paths are equal, any phase difference measured between chains is the
// chains' own LO offset. Subtracting those offsets from over-the-air
// signals restores inter-antenna phase coherence.
//
// Here `Calibrator::run` synthesizes that measurement against an
// ArrayImpairments instance (with measurement noise), and
// `CalibrationTable::apply` performs the subtraction.
#pragma once

#include "sa/array/impairments.hpp"
#include "sa/common/rng.hpp"
#include "sa/linalg/cmat.hpp"
#include "sa/linalg/cvec.hpp"

namespace sa {

/// Per-chain correction factors, relative to chain 0.
class CalibrationTable {
 public:
  CalibrationTable() = default;
  explicit CalibrationTable(CVec corrections);

  /// Identity table (no correction) for n chains.
  static CalibrationTable identity(std::size_t n);

  std::size_t size() const { return corrections_.size(); }
  const CVec& corrections() const { return corrections_; }

  /// Multiply each chain's samples by its correction, in place.
  void apply(CVec& snapshot) const;
  void apply(CMat& samples) const;

  /// Apply chain `m`'s correction to `n` samples in place — the one
  /// copy of the per-element math, shared with the streaming receiver's
  /// column-range conditioning.
  void apply_row(std::size_t m, cd* samples, std::size_t n) const;

  /// Residual per-chain phase error (radians, in [0, pi]) against the
  /// true impairments — diagnostic for tests and ablations. Global common
  /// phase is ignored (it does not affect AoA).
  std::vector<double> residual_phase(const ArrayImpairments& truth) const;

 private:
  CVec corrections_;
};

struct CalibratorConfig {
  std::size_t num_samples = 4096;  ///< CW samples averaged per chain
  double snr_db = 30.0;            ///< post-attenuator measurement SNR
};

/// Simulates the cabled calibration measurement.
class Calibrator {
 public:
  explicit Calibrator(CalibratorConfig config = {});

  /// Inject a common CW tone through equal-length paths into every chain
  /// of `impairments`, measure relative phase/gain, and return the
  /// correction table.
  CalibrationTable run(const ArrayImpairments& impairments, Rng& rng) const;

  const CalibratorConfig& config() const { return config_; }

 private:
  CalibratorConfig config_;
};

}  // namespace sa
