// Antenna array geometries and steering vectors.
//
// The paper's prototype uses eight antennas in two arrangements (§3):
//  * linear, spaced lambda/2 = 6.13 cm — bearings in [-90, 90] degrees
//    from broadside, with front/back ambiguity;
//  * circular ("an octagon with 4.7 cm sides and an antenna at each
//    corner") — full [0, 360) coverage.
//
// Conventions: element positions are metres in the array's local frame.
// For a linear array the elements lie on the local x axis and bearings
// are measured from broadside (+y). For circular/arbitrary arrays,
// bearings are standard CCW-from-+x azimuth. A plane wave arriving from
// bearing theta hits element at position p with phase lead
// 2*pi*(p . u(theta))/lambda relative to the array origin.
#pragma once

#include <vector>

#include "sa/common/geometry.hpp"
#include "sa/linalg/cvec.hpp"

namespace sa {

enum class ArrayKind { kLinear, kCircular, kArbitrary };

class ArrayGeometry {
 public:
  ArrayGeometry() = default;

  /// n elements along local x, spaced `spacing` metres, centred on origin.
  static ArrayGeometry uniform_linear(std::size_t n, double spacing);
  /// n elements equally spaced on a circle of `radius` metres.
  static ArrayGeometry uniform_circular(std::size_t n, double radius);
  /// The paper's octagonal arrangement: 8 corners, `side` = 4.7 cm.
  static ArrayGeometry octagon(double side = 0.047);
  /// Arbitrary element positions.
  static ArrayGeometry custom(std::vector<Vec2> positions);

  std::size_t size() const { return positions_.size(); }
  ArrayKind kind() const { return kind_; }
  const std::vector<Vec2>& positions() const { return positions_; }
  /// Largest inter-element distance (aperture), metres.
  double aperture() const;

  /// Unit propagation direction for a bearing in this array's convention:
  /// linear -> theta from broadside (+y), else CCW azimuth from +x.
  Vec2 direction(double bearing_deg) const;

  /// Steering vector a(theta) at carrier wavelength `lambda_m`;
  /// a_m = exp(+j * 2*pi * (p_m . u) / lambda).
  CVec steering_vector(double bearing_deg, double lambda_m) const;

  /// Scan range natural to this geometry: linear [-90, 90], else [0, 360).
  double scan_min_deg() const;
  double scan_max_deg() const;

  /// Positions rotated by `orientation_deg` and translated to `origin`
  /// (world placement of an AP's array).
  std::vector<Vec2> world_positions(Vec2 origin, double orientation_deg) const;

 private:
  ArrayGeometry(ArrayKind kind, std::vector<Vec2> positions);
  ArrayKind kind_ = ArrayKind::kArbitrary;
  std::vector<Vec2> positions_;
};

/// Convert a world azimuth (CCW from +x) of an incoming source to this
/// array's bearing convention, given the array's world orientation
/// (rotation of its local frame, degrees CCW). For a linear array the
/// result is folded into [-90, 90] (front/back ambiguity: sources behind
/// the array alias to the mirrored front bearing, paper §3 footnote 1).
double world_to_array_bearing(const ArrayGeometry& geom, double world_deg,
                              double orientation_deg);

/// Inverse mapping. Linear arrays return the two ambiguous world
/// azimuths (front lobe first); circular/arbitrary return one.
std::vector<double> array_to_world_bearings(const ArrayGeometry& geom,
                                            double array_deg,
                                            double orientation_deg);

}  // namespace sa
