// Dense row-major complex matrix sized for array processing (8x8 antenna
// correlation matrices, OFDM channel matrices). Not a general BLAS — the
// operations implemented are exactly those the AoA and PHY layers need.
#pragma once

#include <cstddef>

#include "sa/linalg/cvec.hpp"

namespace sa {

class CMat {
 public:
  CMat() = default;
  CMat(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}
  CMat(std::size_t rows, std::size_t cols, const CVec& data);

  static CMat identity(std::size_t n);
  /// Rank-1 Hermitian outer product a * a^H.
  static CMat outer(const CVec& a);
  /// General outer product a * b^H.
  static CMat outer(const CVec& a, const CVec& b);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  cd& operator()(std::size_t r, std::size_t c) {
    SA_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const cd& operator()(std::size_t r, std::size_t c) const {
    SA_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const CVec& data() const { return data_; }

  /// Raw row-major storage (rows * cols elements, row r at raw() + r*cols).
  const cd* raw() const { return data_.data(); }
  cd* raw() { return data_.data(); }

  /// Reshape to rows x cols, reusing the existing allocation when it is
  /// large enough. Element values are unspecified afterwards — this is
  /// the scratch-buffer primitive for the per-frame hot path, where every
  /// element is overwritten before being read.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  CMat operator+(const CMat& o) const;
  CMat operator-(const CMat& o) const;
  CMat operator*(const CMat& o) const;
  CMat operator*(cd s) const;
  CMat& operator+=(const CMat& o);
  CMat& operator*=(cd s);

  /// Matrix-vector product.
  CVec operator*(const CVec& v) const;

  /// Conjugate transpose.
  CMat hermitian() const;
  /// Plain transpose (no conjugation).
  CMat transpose() const;

  cd trace() const;
  double frobenius_norm() const;
  /// Largest |a_ij| over off-diagonal entries (convergence metric).
  double max_off_diagonal() const;
  /// True when ||A - A^H||_F <= tol * (1 + ||A||_F).
  bool is_hermitian(double tol = 1e-10) const;

  CVec row(std::size_t r) const;
  CVec col(std::size_t c) const;
  void set_row(std::size_t r, const CVec& v);
  void set_col(std::size_t c, const CVec& v);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  CVec data_;
};

}  // namespace sa
