// Complex LU decomposition with partial pivoting: solves, inverse, and
// determinant for the small dense systems in the Capon beamformer
// (a^H R^{-1} a) and PHY channel equalization.
#pragma once

#include <optional>

#include "sa/linalg/cmat.hpp"

namespace sa {

/// LU factorization with partial pivoting of a square matrix.
class LuDecomposition {
 public:
  /// Factor `a`; throws InvalidArgument for non-square input.
  explicit LuDecomposition(const CMat& a);

  /// True when a pivot was (near) zero — matrix is singular to working
  /// precision and solve()/inverse() would divide by ~0.
  bool singular() const { return singular_; }

  /// Solve A x = b. Throws StateError when singular().
  CVec solve(const CVec& b) const;

  /// Solve A X = B columnwise.
  CMat solve(const CMat& b) const;

  /// A^{-1}. Throws StateError when singular().
  CMat inverse() const;

  /// det(A), including pivoting sign.
  cd determinant() const;

 private:
  std::size_t n_ = 0;
  CMat lu_;                      // packed L (unit diag) and U
  std::vector<std::size_t> piv_; // row permutation
  int pivot_sign_ = 1;
  bool singular_ = false;
};

/// One-shot convenience: solve A x = b, nullopt when singular.
std::optional<CVec> solve(const CMat& a, const CVec& b);

/// One-shot inverse, nullopt when singular.
std::optional<CMat> inverse(const CMat& a);

/// Hermitian quadratic form a^H M a (real part; imaginary part is ~0 for
/// Hermitian M and is discarded).
double quadratic_form(const CVec& a, const CMat& m);

}  // namespace sa
