// Complex polynomial root finding (Durand-Kerner / Weierstrass
// simultaneous iteration) — the numerical engine behind Root-MUSIC.
#pragma once

#include "sa/linalg/cvec.hpp"

namespace sa {

/// Evaluate a polynomial with coefficients in ascending-power order
/// (coeffs[k] multiplies z^k) via Horner's scheme.
cd polyval(const CVec& coeffs, cd z);

/// All complex roots of the polynomial `coeffs` (ascending powers).
/// Leading near-zero coefficients are trimmed; the effective degree must
/// be >= 1. Throws NumericalError if the iteration fails to converge.
CVec polynomial_roots(const CVec& coeffs, int max_iter = 500,
                      double tol = 1e-12);

}  // namespace sa
