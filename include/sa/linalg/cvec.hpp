// Complex vector type and elementwise helpers.
//
// `sa::cd` (complex double) and `sa::CVec` are the lingua franca of the
// signal chain: antenna snapshots, steering vectors, OFDM symbols, and
// eigenvectors are all CVecs.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "sa/common/error.hpp"

namespace sa {

using cd = std::complex<double>;
using CVec = std::vector<cd>;

/// Hermitian inner product <a, b> = sum conj(a_i) * b_i.
inline cd inner(const CVec& a, const CVec& b) {
  SA_EXPECTS(a.size() == b.size());
  cd s{0.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) s += std::conj(a[i]) * b[i];
  return s;
}

/// Euclidean norm.
inline double norm(const CVec& a) {
  double s = 0.0;
  for (const cd& x : a) s += std::norm(x);
  return std::sqrt(s);
}

/// Total energy sum |a_i|^2.
inline double energy(const CVec& a) {
  double s = 0.0;
  for (const cd& x : a) s += std::norm(x);
  return s;
}

/// Scale in place.
inline void scale(CVec& a, cd s) {
  for (cd& x : a) x *= s;
}

/// a += s * b.
inline void axpy(CVec& a, cd s, const CVec& b) {
  SA_EXPECTS(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

/// Normalize to unit norm; zero vectors are left unchanged.
inline void normalize(CVec& a) {
  const double n = norm(a);
  if (n > 0.0) scale(a, cd{1.0 / n, 0.0});
}

/// Elementwise product (Hadamard).
inline CVec hadamard(const CVec& a, const CVec& b) {
  SA_EXPECTS(a.size() == b.size());
  CVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

/// Elementwise conjugate.
inline CVec conjugate(const CVec& a) {
  CVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::conj(a[i]);
  return out;
}

}  // namespace sa
