// Hermitian eigendecomposition — the numerical heart of MUSIC.
//
// Implementation strategy: a complex Hermitian matrix A = B + iC embeds
// into the real symmetric matrix M = [[B, -C], [C, B]] whose spectrum is
// that of A doubled; M is diagonalized with a cyclic Jacobi sweep
// (unconditionally stable, plenty fast for the 8x8 matrices of an
// 8-antenna AP), and one complex eigenvector per duplicated pair is
// recovered by modified Gram-Schmidt in complex space.
#pragma once

#include <vector>

#include "sa/linalg/cmat.hpp"

namespace sa {

struct EigResult {
  /// Eigenvalues in ascending order. Hermitian input => real values.
  std::vector<double> values;
  /// Unit-norm eigenvectors, one per eigenvalue, as matrix columns:
  /// vectors.col(k) corresponds to values[k]. Columns are orthonormal.
  CMat vectors;
};

/// Eigendecomposition of a real symmetric matrix (row-major, n x n),
/// returned as ascending eigenvalues plus orthonormal eigenvectors in the
/// columns of `vectors`. Exposed for testing; complex callers use eigh().
struct RealEigResult {
  std::vector<double> values;
  std::vector<double> vectors;  ///< column-major n x n
  std::size_t n = 0;
};
RealEigResult jacobi_eigh_real(const std::vector<double>& m, std::size_t n,
                               int max_sweeps = 64, double tol = 1e-13);

/// Eigendecomposition of a complex Hermitian matrix.
/// Throws InvalidArgument if `a` is not square or not Hermitian within a
/// loose tolerance, NumericalError if Jacobi fails to converge.
EigResult eigh(const CMat& a);

}  // namespace sa
