// Sliding column window over a multi-antenna sample stream.
//
// StreamingReceiver's history buffer is append-at-the-back /
// drop-at-the-front: every ingest round appends one chunk of columns and
// every commit trims the window back to `history_samples`. Growing and
// trimming a plain CMat costs a full-matrix copy each time — O(history)
// per round. A ColumnRing keeps the live window contiguous inside a
// larger row-major slab instead: append writes only the new columns,
// drop_front just advances the window offset, and the slab is compacted
// (or geometrically regrown) only when the window would run off its end,
// so the amortized cost per appended column is O(1).
//
// Rows stay contiguous (row-major, stride = slab capacity), which is
// what the consumers need: the packet detector streams row 0 left to
// right, and materialize() is a straight per-row copy.
#pragma once

#include <cstddef>
#include <vector>

#include "sa/linalg/cmat.hpp"

namespace sa {

class ColumnRing {
 public:
  ColumnRing() = default;
  explicit ColumnRing(std::size_t rows) : rows_(rows) {}

  std::size_t rows() const { return rows_; }
  /// Live window length in columns.
  std::size_t cols() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Slab capacity in columns (observability for tests/benches).
  std::size_t capacity() const { return cap_; }

  /// Append `chunk.cols()` columns at the back of the window. The chunk's
  /// rows must match; only the new columns are written (the live window
  /// is moved only when the slab must be compacted or regrown).
  void append(const CMat& chunk);

  /// Drop the oldest `n` columns — O(1), no copy.
  void drop_front(std::size_t n);

  /// Empty the window, keeping the slab allocation.
  void clear();

  /// Pointer to window column 0 of row `r`; columns are contiguous, so
  /// row(r)[c] is the element at window column c.
  const cd* row(std::size_t r) const {
    SA_EXPECTS(r < rows_);
    return data_.data() + r * cap_ + off_;
  }
  cd* row_mut(std::size_t r) {
    SA_EXPECTS(r < rows_);
    return data_.data() + r * cap_ + off_;
  }

  /// Element access (window coordinates) for tests.
  const cd& at(std::size_t r, std::size_t c) const {
    SA_EXPECTS(r < rows_ && c < size_);
    return data_[r * cap_ + off_ + c];
  }

  /// Copy the live window into `out` (resized to rows x cols) — the
  /// per-scan snapshot materialization: a straight per-row copy with no
  /// per-element math.
  void materialize(CMat& out) const;

 private:
  /// Move the window to a slab of `new_cap` columns at offset 0.
  void relayout(std::size_t new_cap);

  std::size_t rows_ = 0;
  std::size_t cap_ = 0;   // slab columns
  std::size_t off_ = 0;   // physical column of window column 0
  std::size_t size_ = 0;  // live window columns
  std::vector<cd> data_;  // rows_ * cap_, row-major with stride cap_
};

}  // namespace sa
