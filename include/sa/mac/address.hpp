// 48-bit link-layer (MAC) addresses. Spoofing these is exactly the attack
// SecureAngle's signature binding defends against (paper §2.3.2).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

namespace sa {

class MacAddress {
 public:
  constexpr MacAddress() = default;
  explicit constexpr MacAddress(std::array<std::uint8_t, 6> octets)
      : octets_(octets) {}

  /// Parse "aa:bb:cc:dd:ee:ff"; throws InvalidArgument on malformed input.
  static MacAddress parse(const std::string& text);
  /// Deterministic locally-administered address derived from an index
  /// (02:5a:xx:xx:xx:xx) — used to label simulated clients.
  static MacAddress from_index(std::uint32_t index);
  static constexpr MacAddress broadcast() {
    return MacAddress({0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF});
  }

  const std::array<std::uint8_t, 6>& octets() const { return octets_; }
  std::string to_string() const;
  bool is_broadcast() const;
  /// Locally-administered bit (bit 1 of the first octet).
  bool is_local() const { return (octets_[0] & 0x02) != 0; }

  auto operator<=>(const MacAddress&) const = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

}  // namespace sa

template <>
struct std::hash<sa::MacAddress> {
  std::size_t operator()(const sa::MacAddress& a) const noexcept {
    std::size_t h = 0;
    for (std::uint8_t o : a.octets()) h = h * 131 + o;
    return h;
  }
};
