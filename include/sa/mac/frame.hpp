// 802.11 MAC frames: header layout, CRC-32 FCS, serialization. Only the
// subset SecureAngle's applications need — data frames carrying uplink
// traffic and the management frames used during association/training.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sa/mac/address.hpp"
#include "sa/phy/bits.hpp"

namespace sa {

enum class FrameType : std::uint8_t { kManagement = 0, kControl = 1, kData = 2 };

enum class ManagementSubtype : std::uint8_t {
  kAssociationRequest = 0,
  kAssociationResponse = 1,
  kProbeRequest = 4,
  kProbeResponse = 5,
  kBeacon = 8,
  kAuthentication = 11,
  kDeauthentication = 12,
};

/// IEEE CRC-32 (reflected, polynomial 0xEDB88320) over a byte string —
/// the 802.11 FCS.
std::uint32_t crc32(const Bytes& data);

struct Frame {
  FrameType type = FrameType::kData;
  std::uint8_t subtype = 0;
  bool to_ds = true;        ///< uplink by default (client -> AP)
  bool from_ds = false;
  bool retry = false;
  std::uint16_t duration = 0;
  MacAddress addr1;          ///< receiver (AP BSSID for uplink)
  MacAddress addr2;          ///< transmitter (the address spoofers forge)
  MacAddress addr3;          ///< BSSID / DA depending on DS bits
  std::uint16_t sequence = 0;  ///< sequence number (0..4095)
  Bytes body;

  /// Serialize header + body + FCS into a PSDU ready for the PHY.
  Bytes serialize() const;

  /// Parse and validate a PSDU. Returns nullopt when the buffer is too
  /// short or the FCS does not match (corrupted frame).
  static std::optional<Frame> parse(const Bytes& psdu);

  /// Convenience constructor for an uplink data frame.
  static Frame data(MacAddress bssid, MacAddress source, Bytes payload,
                    std::uint16_t sequence = 0);
  /// Convenience constructor for a probe request (used during training).
  static Frame probe_request(MacAddress source, std::uint16_t sequence = 0);
};

}  // namespace sa
