// Address-based access control list — the weak baseline defence that
// link-layer spoofing subverts (paper §1). SecureAngle's spoof detector
// layers on top of this.
#pragma once

#include <unordered_set>

#include "sa/mac/address.hpp"

namespace sa {

class AccessControlList {
 public:
  void allow(const MacAddress& addr) { allowed_.insert(addr); }
  void revoke(const MacAddress& addr) { allowed_.erase(addr); }
  bool is_allowed(const MacAddress& addr) const {
    return allowed_.contains(addr);
  }
  std::size_t size() const { return allowed_.size(); }

 private:
  std::unordered_set<MacAddress> allowed_;
};

}  // namespace sa
