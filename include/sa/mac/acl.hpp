// Address-based access control list — the weak baseline defence that
// link-layer spoofing subverts (paper §1). SecureAngle's spoof detector
// layers on top of this.
//
// Storage is the compact per-MAC substrate: a flat open-addressing set
// (no per-entry allocations) behind a blocked-Bloom prefilter, so the
// common case at fleet scale — a frame from a MAC that is not on the
// list — resolves in one cache line without probing the table. The
// filter can only over-approximate (revoked MACs leave stale bits until
// the next rebuild epoch), and every stale positive falls through to
// the exact set, so is_allowed() answers are always exact.
#pragma once

#include "sa/common/compact/flat_lru_map.hpp"
#include "sa/common/compact/mac_prefilter.hpp"
#include "sa/mac/address.hpp"

namespace sa {

class AccessControlList {
 public:
  void allow(const MacAddress& addr) {
    const auto r = set_.get_or_emplace(addr);
    if (r.inserted) {
      filter_.insert(addr);
      maybe_rebuild_filter();
    }
  }
  void revoke(const MacAddress& addr) {
    if (set_.erase(addr)) {
      filter_.note_erase();
      maybe_rebuild_filter();
    }
  }
  bool is_allowed(const MacAddress& addr) const {
    if (!filter_.maybe_contains(addr)) return false;  // definite miss
    return set_.find(addr) != nullptr;
  }
  std::size_t size() const { return set_.size(); }

  /// Footprint of the set and its prefilter.
  std::size_t memory_bytes() const {
    return set_.memory_bytes() + filter_.memory_bytes();
  }

 private:
  struct Empty {};

  void maybe_rebuild_filter() {
    if (!filter_.should_rebuild(set_.size())) return;
    filter_.rebuild(set_.size(), [this](auto&& add) {
      set_.for_each([&](const MacAddress& key, const Empty&) { add(key); });
    });
  }

  FlatLruMap<MacAddress, Empty> set_;
  MacPrefilter filter_;
};

}  // namespace sa
