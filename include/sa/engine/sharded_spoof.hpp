// Per-MAC tracker state sharded by MAC hash. Each shard owns an
// independent SpoofDetector behind its own mutex, so trackers for
// different clients can be updated concurrently while every individual
// client's signature history still evolves strictly in frame order
// (a MAC always maps to the same shard).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "sa/secure/spoofdetector.hpp"

namespace sa {

class ShardedSpoofDetector {
 public:
  /// `max_tracked_macs` is the total tracker budget, divided evenly
  /// across shards; 0 means unbounded, and a nonzero bound must be
  /// >= num_shards (each shard needs at least one slot — a smaller
  /// bound would silently inflate to num_shards). Each shard LRU-evicts
  /// independently, so once the bound is actually binding, *which* MAC
  /// is evicted depends on the MAC-hash sharding — decisions can then
  /// diverge from a serial SpoofDetector with the same global bound.
  /// The engine's decision-equivalence guarantee assumes the bound is
  /// not hit (or is 0, the default).
  explicit ShardedSpoofDetector(TrackerConfig tracker_config,
                                std::size_t num_shards = 8,
                                std::size_t max_tracked_macs = 0);

  std::size_t num_shards() const { return shards_.size(); }
  std::size_t shard_of(const MacAddress& source) const;

  /// Feed one (MAC, signature) pair; locks only the owning shard. The
  /// tracker comparison is subband-wise, like SpoofDetector's.
  SpoofObservation observe(const MacAddress& source,
                           const SubbandSignature& signature);
  /// Single-band compatibility overload.
  SpoofObservation observe(const MacAddress& source,
                           const AoaSignature& signature);

  /// Tracker for a MAC, if it has been seen. The pointer is stable (node
  /// based map) but reading it concurrently with observe() on the same
  /// MAC is the caller's race to avoid.
  const SignatureTracker* tracker(const MacAddress& source) const;

  /// Forget a MAC entirely (e.g. after deauthentication).
  void forget(const MacAddress& source);

  /// Aggregate statistics over every shard.
  SpoofDetectorStats stats() const;

 private:
  struct Shard {
    Shard(const TrackerConfig& cfg, std::size_t max_tracked)
        : detector(cfg, max_tracked) {}
    mutable std::mutex mu;
    SpoofDetector detector;
  };
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace sa
