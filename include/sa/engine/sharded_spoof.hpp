// Per-MAC tracker state sharded by MAC hash. Each shard owns an
// independent SpoofDetector behind its own mutex, so trackers for
// different clients can be updated concurrently while every individual
// client's signature history still evolves strictly in frame order
// (a MAC always maps to the same shard).
//
// Two APIs advance a shard:
//  - observe(): the caller already holds the frames of one MAC in order
//    (the serial coordinator, or the legacy per-round bucket fan-out).
//  - reserve()/fulfil(): the pipelined per-frame path. The sequencing
//    thread reserves a slot in the MAC's shard order the moment the
//    frame is sequenced (cheap), and any worker later fulfils it. A
//    fulfilment that arrives before its predecessors is parked inside
//    the shard and applied — in reserved order — by whichever worker
//    closes the gap, so tracker state advances frame by frame without
//    any round barrier and without a worker ever blocking.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "sa/secure/spoofdetector.hpp"

namespace sa {

/// A reserved slot in one shard's observation order.
struct SpoofTicket {
  std::size_t shard = 0;
  std::uint64_t seq = 0;
};

class ShardedSpoofDetector {
 public:
  /// `max_tracked_macs` is the total tracker budget, divided evenly
  /// across shards; 0 means unbounded, and a nonzero bound must be
  /// >= num_shards (each shard needs at least one slot — a smaller
  /// bound would silently inflate to num_shards). Each shard LRU-evicts
  /// independently, so once the bound is actually binding, *which* MAC
  /// is evicted depends on the MAC-hash sharding — decisions can then
  /// diverge from a serial SpoofDetector with the same global bound.
  /// The engine's decision-equivalence guarantee assumes the bound is
  /// not hit (or is 0, the default).
  /// `idle_expiry_frames` (0 = off) is forwarded to every shard's
  /// detector: a tracker not observed for that many of its shard's
  /// observation ticks is expired via the shard's timing wheel. Shard
  /// observation order is fixed by the sequencer regardless of worker
  /// count, so expiry stays deterministic at any thread count.
  explicit ShardedSpoofDetector(TrackerConfig tracker_config,
                                std::size_t num_shards = 8,
                                std::size_t max_tracked_macs = 0,
                                std::size_t idle_expiry_frames = 0);

  std::size_t num_shards() const { return shards_.size(); }
  std::size_t shard_of(const MacAddress& source) const;

  /// Feed one (MAC, signature) pair; locks only the owning shard. The
  /// tracker comparison is subband-wise, like SpoofDetector's.
  SpoofObservation observe(const MacAddress& source,
                           const SubbandSignature& signature);
  /// Single-band compatibility overload.
  SpoofObservation observe(const MacAddress& source,
                           const AoaSignature& signature);

  /// Completion of one fulfilled ticket: exactly one of the two is
  /// meaningful — `error` is null on success, and carries the exception
  /// thrown by the underlying observe otherwise.
  using FulfilCallback =
      std::function<void(SpoofObservation observation,
                         std::exception_ptr error)>;

  /// Reserve the next slot in `source`'s shard order. Must be called in
  /// global frame order (one sequencing thread); every reserved ticket
  /// must eventually be fulfilled, or later fulfilments on the shard
  /// park forever.
  SpoofTicket reserve(const MacAddress& source);
  /// Fulfil a reserved ticket from any thread. The observation runs when
  /// every earlier ticket on the shard has run; if that is not yet the
  /// case the work is parked (never blocks) and `done` fires — possibly
  /// on the gap-closing thread — once the observation has been applied.
  /// A throwing observe is delivered to *its own* ticket's callback and
  /// the shard still advances, so one poisoned frame cannot strand its
  /// successors. `source` and `signature` must stay valid until `done`
  /// fires.
  void fulfil(const SpoofTicket& ticket, const MacAddress& source,
              const SubbandSignature& signature, FulfilCallback done);

  /// Tracker for a MAC, if it has been seen. The pointer is invalidated
  /// by the next observe()/forget() on the shard (flat storage moves
  /// under insertion and erasure) — use it immediately, and reading it
  /// concurrently with observe() on the same MAC is the caller's race
  /// to avoid.
  const SignatureTracker* tracker(const MacAddress& source) const;

  /// Forget a MAC entirely (e.g. after deauthentication).
  void forget(const MacAddress& source);

  /// Copy out a MAC's tracker state (cross-site handoff export); locks
  /// only the owning shard. nullopt if the MAC is not tracked.
  std::optional<TrackerSnapshot> export_tracker(const MacAddress& source) const;

  /// Install handed-off tracker state into the owning shard (see
  /// SpoofDetector::import_tracker — no observation tick is consumed).
  void import_tracker(const MacAddress& source, const TrackerSnapshot& snap);

  /// Aggregate statistics over every shard.
  SpoofDetectorStats stats() const;

 private:
  struct Parked {
    const MacAddress* source;
    const SubbandSignature* signature;
    FulfilCallback done;
  };
  struct Shard {
    Shard(const TrackerConfig& cfg, std::size_t max_tracked,
          std::size_t idle_expiry_frames)
        : detector(cfg, max_tracked, idle_expiry_frames) {}
    mutable std::mutex mu;
    SpoofDetector detector;
    std::uint64_t reserved = 0;  ///< next ticket seq to hand out
    std::uint64_t applied = 0;   ///< next ticket seq to run
    std::map<std::uint64_t, Parked> parked;
  };
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace sa
