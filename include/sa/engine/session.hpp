// EngineSession: the engine's primary, push-based API — now a lock-free
// SPSC-ring dataplane.
//
// The previous session funneled every chunk and every decode task
// through one mutex, four condition variables and a shared bounded
// ThreadPool queue; BENCH_5 showed that architecture flat from 1 to 8
// threads. This one is built DPDK-style out of single-producer/
// single-consumer rings (sa/common/spsc_ring.hpp) and shard-affine
// run-to-completion workers:
//
//   submitters --- per-AP SPSC ring ---> front-end (RX polling loop)
//   front-end  --- per-worker work ring ---> workers (run-to-completion)
//   sequencer  --- per-worker decide ring ---> workers
//   workers    --- per-worker done ring ---> sequencer (re-sequencer)
//
// Every ring has exactly one producer and one consumer, so the hot path
// is wait-free: no producer lock, no condvar, no shared queue. Blocking
// only happens at the quiet edges, via Doorbell's bounded-spin-then-park
// (after ndn-dpdk's rxloop).
//
// Shard affinity is the invariant that makes this deterministic:
//  - worker w owns APs {i : i mod W == w} — each AP's StreamingReceiver
//    is touched by exactly one thread, which runs scan -> decode ->
//    commit to completion in round order. No stream mutex exists. The
//    lock-step per-receiver schedule (commit N before scan N+1) is one
//    of the schedules StreamingReceiver documents as byte-identical.
//  - worker w owns MAC shards {s : s mod W == w} — a frame's spoof
//    observation and policy decision run on the worker owning
//    shard_of(source MAC), and the sequencer dispatches decide jobs in
//    global sequence order into per-worker FIFO rings, so every MAC's
//    tracker and rate-limit state advances in exactly the serial order.
//    (Frames with no decodable MAC round-robin by sequence number;
//    they touch no per-MAC state.)
//
// The sequencer is the only thread that sees rounds whole: it collects
// per-AP completions, groups rounds strictly in round order, assigns
// global sequence numbers, routes decide jobs by MAC shard, buffers the
// finished decisions, and emits them to the sink strictly in sequence
// order — byte-identical to the serial pipeline at any worker count.
//
// Known divergence (documented, matches the pre-existing sharded-spoof
// caveat): RateLimitPolicy's cross-MAC LRU eviction is partitioned per
// worker here, so *when the max_tracked_macs bound actually binds*,
// eviction choices can differ from a serial chain's global LRU. Per-MAC
// windows, and hence decisions while the bound is slack, are exact.
//
// Backpressure: `max_inflight_rounds` bounds dispatched-but-undecided
// rounds. A nonzero `max_inflight_frames` additionally gates dispatch
// until every in-flight round has reported its candidate count and the
// budget has room — which serializes scan-ahead (the front-end cannot
// know a round's candidate count before its scans run), so a bounded
// budget now trades pipelining for a hard frame bound; the default is
// 0 (unbounded — the rings and the round bound cap memory). submit()
// blocks while that AP's ring holds max_pending_chunks chunks.
//
// Lifecycle: drain() processes every submitted chunk plus a final flush
// pass and returns once all resulting decisions have been emitted — the
// session stays usable. close() drains and stops the threads; the
// destructor closes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "sa/common/spsc_ring.hpp"
#include "sa/engine/deployment.hpp"

namespace sa {

/// Optional core pinning for the run-to-completion workers. Worker w is
/// pinned to cores[w mod cores.size()], or to core (w mod
/// hardware_concurrency) when `cores` is empty. Pinning is implemented
/// with pthread_setaffinity_np on Linux and is a no-op elsewhere;
/// SessionStats::workers_pinned reports how many pins actually took.
struct WorkerPlacement {
  bool pin_workers = false;
  std::vector<int> cores;
};

struct SessionConfig {
  /// Sentinel for `poll_spin`: adapt to the machine (0 when only one
  /// hardware thread exists — spinning can only steal the producer's
  /// core — a small budget otherwise).
  static constexpr std::size_t kAutoSpin = static_cast<std::size_t>(-1);

  EngineConfig engine;
  /// Rounds that may be dispatched but not yet fully decided at once;
  /// >= 1. 1 degenerates to lock-step.
  std::size_t max_inflight_rounds = 4;
  /// Candidate frames scanned but not yet decided; 0 = unbounded
  /// (default). A nonzero bound also serializes scan-ahead — see the
  /// header comment.
  std::size_t max_inflight_frames = 0;
  /// Chunks one AP may have queued (submitted but not yet formed into a
  /// round); >= 1. submit() blocks at this bound, so it must exceed the
  /// raggedness of the submission order: pushing one AP more than this
  /// many rounds ahead of another would block forever.
  std::size_t max_pending_chunks = 64;
  /// Busy-poll iterations before a dataplane thread parks on its
  /// doorbell. kAutoSpin adapts to hardware_concurrency().
  std::size_t poll_spin = kAutoSpin;
  WorkerPlacement placement;
};

/// Observable pipeline behavior (all monotonic counters / high-water
/// marks since construction).
struct SessionStats {
  std::size_t chunks_submitted = 0;
  std::size_t rounds_completed = 0;  ///< including drain flush passes
  /// Rounds retired in order that consumed at least one submitted chunk
  /// — the data rounds, excluding padded and drain flush passes (which
  /// rounds_completed counts).
  std::size_t rounds_retired = 0;
  std::size_t decisions_emitted = 0;
  /// Deferred-retry candidates re-decoded after the preceding commit.
  std::size_t stale_retries = 0;
  /// Scan-ahead candidates an earlier commit had already emitted.
  std::size_t stale_skips = 0;
  /// High-water mark of candidates scanned but not yet decided.
  std::size_t max_inflight_frames = 0;
  /// High-water mark of rounds concurrently scanned-but-undecided.
  std::size_t max_admitted_rounds = 0;
  /// High-water mark of rounds concurrently dispatched-but-unscanned
  /// (>= 2 proves round boundaries were actually overlapped).
  std::size_t max_overlapped_rounds = 0;

  // --- dataplane visibility (new with the SPSC-ring front-end) ---
  /// submit() calls that found their AP's ring full and had to block.
  std::size_t submit_ring_full_blocks = 0;
  /// High-water mark of any submit ring's occupancy.
  std::size_t max_submit_ring_occupancy = 0;
  /// Worker wake-ups that found work, and the jobs they drained; the
  /// mean jobs/burst is the dataplane's batching factor.
  std::size_t worker_bursts = 0;
  std::size_t worker_jobs = 0;
  std::size_t max_worker_burst = 0;
  /// Empty doorbell polls (spin iterations that found nothing) and
  /// actual parks, summed over every dataplane thread. The spin:park
  /// ratio shows whether the spin budget absorbs the arrival jitter.
  std::size_t spin_polls = 0;
  std::size_t parks = 0;
  /// Workers successfully pinned via WorkerPlacement.
  std::size_t workers_pinned = 0;
};

/// A roaming client's exportable per-MAC state: everything the decision
/// pipeline remembers about one MAC. The unit of cross-site handoff —
/// each field is nullopt when the corresponding policy is absent from
/// the chain or holds no state for the MAC.
struct ClientHandoffState {
  /// Raw signature-tracker accumulators (see TrackerSnapshot).
  std::optional<TrackerSnapshot> tracker;
  /// ACL verdict, when the chain has an AclPolicy.
  std::optional<bool> acl_allowed;
  /// Rate-limit residue: in-window admit count at export time, when the
  /// chain has a RateLimitPolicy and the MAC has frames in flight.
  std::optional<std::uint32_t> rate_in_window;
};

class EngineSession {
 public:
  /// Called on the sequencer thread, strictly in sequence order, never
  /// concurrently with itself.
  using DecisionSink = std::function<void(const EngineDecision&)>;

  /// `aps` are borrowed (not owned) and must outlive the session; one
  /// chunk stream is expected per AP, in the same order.
  EngineSession(SessionConfig config, std::vector<AccessPoint*> aps,
                DecisionSink sink);
  ~EngineSession();

  EngineSession(const EngineSession&) = delete;
  EngineSession& operator=(const EngineSession&) = delete;

  /// Push the next chunk of `ap_index`'s stream. Round r is formed from
  /// the r-th chunk of every AP, so streams may be pushed raggedly;
  /// blocks while this AP's ring is full, throws StateError after
  /// close(). Thread-safe against other submitters (same-AP submitters
  /// serialize on a producer-side latch; the producer->consumer edge is
  /// lock-free).
  void submit(std::size_t ap_index, CMat chunk);
  /// Convenience: one time-aligned chunk per AP (chunks[i] -> aps[i]).
  void submit_round(std::vector<CMat> chunks);

  /// Process every submitted chunk (APs that received fewer chunks than
  /// the longest stream are padded with empty rounds), run the final
  /// flush pass, and return once every decision has been emitted. The
  /// session remains usable afterwards.
  void drain();
  /// Block until every currently formable round has been decided (no
  /// flush pass). The batch wrapper's ingest barrier.
  void wait_idle();
  /// drain(), then stop the pipeline threads. Idempotent (concurrent
  /// calls serialize); submit() and drain() throw StateError afterwards.
  void close();

  // --- fleet-handoff hooks --------------------------------------------
  // Quiescent-use-only contract: call these only when the pipeline is
  // idle (after drain()/wait_idle(), with no concurrent submit()); they
  // reach into per-worker policy state without dataplane locks.

  /// Copy out everything this session knows about `mac` (tracker
  /// accumulators, ACL verdict, rate residue). The rate window is first
  /// advanced to the global frame clock (decisions emitted), so the
  /// residue is a pure function of the frame stream at any thread
  /// count.
  ClientHandoffState export_client_state(const MacAddress& mac);

  /// Install a handed-off client's state: tracker and rate residue go
  /// to the worker owning the MAC's shard; an ACL verdict is applied to
  /// every worker's chain (they mirror one allow list).
  void import_client_state(const MacAddress& mac,
                           const ClientHandoffState& state);

  /// Drop `mac`'s tracker and rate residue (the handoff source side).
  /// The ACL entry is deliberately kept: frames still in flight toward
  /// this site must not become ACL-denied mid-stream.
  void forget_client(const MacAddress& mac);

  std::size_t num_aps() const { return aps_.size(); }
  std::size_t num_threads() const { return workers_.size(); }
  const SessionConfig& config() const { return config_; }
  /// Aggregated over the per-worker policy chains. Exact when the
  /// pipeline is quiescent (after drain()/wait_idle()); a concurrent
  /// call may see a frame mid-decision.
  Coordinator::Stats stats() const;
  const PolicyChain& chain() const;
  const ShardedSpoofDetector& spoof_detector() const { return spoof_; }
  SessionStats session_stats() const;

 private:
  /// One AP's share of one round, dispatched front-end -> owning worker.
  struct ApJob {
    std::uint64_t round = 0;
    std::size_t ap = 0;
    std::optional<CMat> chunk;  ///< nullopt on padded / flush rounds
    bool final_pass = false;
    std::uint64_t drain_tag = 0;
  };
  /// One fused frame, dispatched sequencer -> MAC-shard-owning worker.
  struct DecideJob {
    std::uint64_t round = 0;
    std::size_t sequence = 0;
    std::size_t absolute_start = 0;
    std::vector<ApObservation> observations;
  };
  /// Worker -> sequencer completion (one ring carries both kinds so the
  /// sequencer observes each worker's progress in order).
  struct Completion {
    enum class Kind { kApDone, kDecision } kind = Kind::kApDone;
    std::uint64_t round = 0;
    // kApDone:
    std::size_t ap = 0;
    std::vector<StreamingReceiver::StreamPacket> packets;
    std::size_t candidates = 0;
    std::size_t retries = 0;
    std::size_t skips = 0;
    std::uint64_t drain_tag = 0;
    bool had_chunk = false;  ///< this AP consumed a real chunk this round
    // kDecision:
    std::size_t sequence = 0;
    std::size_t absolute_start = 0;
    FrameDecision decision;
  };

  struct Worker {
    Worker(std::size_t work_cap, std::size_t decide_cap, std::size_t done_cap,
           const CoordinatorConfig& coordinator_config)
        : work(work_cap),
          decide(decide_cap),
          done(done_cap),
          coordinator(coordinator_config) {}
    SpscRing<ApJob> work;      // producer: front-end
    SpscRing<DecideJob> decide;  // producer: sequencer
    SpscRing<Completion> done;   // consumer: sequencer
    Doorbell bell;
    Coordinator coordinator;  ///< owns this worker's policy-chain state
    AccessPoint::FrameScratch scratch;
    std::thread thread;
  };

  /// One AP's submission lane. The ring is SPSC (producer: whichever
  /// thread holds producer_mu; consumer: front-end); producer_mu only
  /// serializes concurrent submitters of the *same* AP and is never
  /// taken by the dataplane.
  struct SubmitLane {
    explicit SubmitLane(std::size_t capacity) : ring(capacity) {}
    SpscRing<CMat> ring;
    std::mutex producer_mu;
    /// Recording tap bookkeeping, guarded by producer_mu: this AP's next
    /// chunk is its `rounds`-th, starting at absolute sample `base`.
    std::uint64_t rounds = 0;
    std::uint64_t base = 0;
  };

  /// Internal atomic mirror of SessionStats.
  struct AtomicStats {
    std::atomic<std::size_t> chunks_submitted{0};
    std::atomic<std::size_t> rounds_completed{0};
    std::atomic<std::size_t> rounds_retired{0};
    std::atomic<std::size_t> decisions_emitted{0};
    std::atomic<std::size_t> stale_retries{0};
    std::atomic<std::size_t> stale_skips{0};
    std::atomic<std::size_t> max_inflight_frames{0};
    std::atomic<std::size_t> max_admitted_rounds{0};
    std::atomic<std::size_t> max_overlapped_rounds{0};
    std::atomic<std::size_t> submit_ring_full_blocks{0};
    std::atomic<std::size_t> max_submit_ring_occupancy{0};
    std::atomic<std::size_t> worker_bursts{0};
    std::atomic<std::size_t> worker_jobs{0};
    std::atomic<std::size_t> max_worker_burst{0};
    std::atomic<std::size_t> spin_polls{0};
    std::atomic<std::size_t> parks{0};
    std::atomic<std::size_t> workers_pinned{0};
  };

  void frontend_loop();
  void worker_loop(std::size_t w);
  void sequencer_loop();
  void process_ap_job(Worker& wk, ApJob job);
  void process_decide_job(Worker& wk, DecideJob job);
  void push_completion(Worker& wk, Completion c);
  void fail(std::exception_ptr error);
  void throw_if_failed() const;
  bool round_formable() const;
  void refresh_chain() const;

  SessionConfig config_;
  std::vector<AccessPoint*> aps_;
  std::vector<Vec2> positions_;
  std::vector<std::unique_ptr<StreamingReceiver>> streams_;
  std::vector<std::unique_ptr<SubmitLane>> lanes_;
  std::vector<std::unique_ptr<Worker>> workers_;
  ShardedSpoofDetector spoof_;
  /// Aggregator: supplies wants_spoof()/chain shape and presents the
  /// summed per-worker counters via refresh_chain(). Never decides.
  mutable Coordinator coordinator_;
  mutable std::mutex chain_mu_;
  DecisionSink sink_;
  std::size_t resolved_spin_ = 0;

  Doorbell front_bell_;   // submitters / sequencer -> front-end
  Doorbell seq_bell_;     // workers -> sequencer
  Doorbell submit_bell_;  // front-end -> blocked submitters
  Doorbell done_bell_;    // sequencer -> drain()/wait_idle() waiters

  std::atomic<bool> closing_{false};
  std::atomic<bool> failed_{false};
  mutable std::mutex error_mu_;
  std::exception_ptr error_;

  std::atomic<std::uint64_t> drains_requested_{0};
  std::atomic<std::uint64_t> drains_completed_{0};
  std::atomic<std::size_t> rounds_in_flight_{0};   // dispatched, undecided
  std::atomic<std::uint64_t> rounds_dispatched_{0};
  std::atomic<std::uint64_t> rounds_grouped_{0};   // scan-complete
  std::atomic<std::size_t> inflight_frames_{0};    // scanned, undecided
  std::atomic<std::size_t> admitted_rounds_{0};    // scanned, undecided
  AtomicStats stats_;

  /// Held for the whole of close(); serializes concurrent closers.
  std::mutex close_mu_;
  bool closed_ = false;

  std::thread front_;
  std::thread sequencer_;
};

}  // namespace sa
