// EngineSession: the engine's primary, push-based API.
//
// The batch DeploymentEngine is lock-step: each ingest round must fully
// scan, decode and drain before the next round may start, so the worker
// pool idles at every round boundary. A session removes that boundary.
// Callers submit() per-AP sample chunks at any time and register a
// decision sink; internally the session runs a two-stage pipeline over
// the shared worker pool:
//
//   front-end (one thread)            back-end (one thread)
//   ---------------------             ---------------------
//   form round N+1 from the           join round N's decode futures,
//   per-AP chunk queues, scan         fan the per-(frame, subband) AoA
//   every AP (pool fan-out),          estimates, resolve deferred
//   schedule the fresh frames'        retries, commit each stream,
//   PHY-decode tasks on the pool      group across APs, reserve/fulfil
//                                     per-frame spoof tickets, run the
//                                     policy chain, emit decisions
//
// The front-end is allowed to run ahead of the back-end: round N+1's
// scan and decode execute while round N is still in its decode/AoA/
// policy phase, so the pool never drains at a round boundary. This
// leans on three substrate guarantees:
//   - StreamingReceiver::scan/commit tolerate commit-behind (a scan's
//     emit/defer bookkeeping is anchored to its own absolute
//     coordinates, and commit dedupes against the live watermark);
//   - ShardedSpoofDetector tickets advance tracker state per frame, in
//     reserved order, with no round barrier;
//   - ThreadPool task epochs let two rounds' tasks coexist in the queue
//     (and prove, via max_epochs_in_flight, that they did).
//
// Determinism: rounds are formed, committed, grouped, spoof-judged and
// decided strictly in round order on single front/back threads, so the
// emitted decision sequence is identical at any thread count — and
// byte-identical to the lock-step batch engine, which is now a thin
// wrapper over a session.
//
// Backpressure: `max_inflight_rounds` bounds how far the front-end may
// scan ahead of the back-end, and `max_inflight_frames` bounds the
// candidate frames admitted to decode but not yet decided (a round
// larger than the whole budget is admitted alone). submit() blocks when
// the per-AP chunk queue is full.
//
// Lifecycle: drain() processes every submitted chunk plus a final flush
// pass and returns once all resulting decisions have been emitted — the
// session stays usable, exactly like the batch engine's flush().
// close() drains and stops the pipeline threads; the destructor closes.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "sa/engine/deployment.hpp"

namespace sa {

struct SessionConfig {
  EngineConfig engine;
  /// Rounds the front-end may have in flight (scanned or decoding but
  /// not yet decided) at once; >= 1. 1 degenerates to lock-step.
  std::size_t max_inflight_rounds = 4;
  /// Candidate frames admitted to decode but not yet decided; 0 =
  /// unbounded. A single round with more candidates than the whole
  /// budget is admitted once the pipeline is empty.
  std::size_t max_inflight_frames = 512;
  /// Chunks one AP may have queued (submitted but not yet formed into a
  /// round); >= 1. submit() blocks at this bound, so it must exceed the
  /// raggedness of the submission order: pushing one AP more than this
  /// many rounds ahead of another would block forever.
  std::size_t max_pending_chunks = 64;
};

/// Observable pipeline behavior (all monotonic counters / high-water
/// marks since construction).
struct SessionStats {
  std::size_t chunks_submitted = 0;
  std::size_t rounds_completed = 0;  ///< including drain flush passes
  std::size_t decisions_emitted = 0;
  /// Deferred-retry candidates re-decoded after the preceding commit.
  std::size_t stale_retries = 0;
  /// Scan-ahead candidates an earlier commit had already emitted.
  std::size_t stale_skips = 0;
  /// High-water mark of the candidate budget actually used.
  std::size_t max_inflight_frames = 0;
  /// High-water mark of rounds concurrently holding budget.
  std::size_t max_admitted_rounds = 0;
  /// High-water mark of distinct rounds with tasks in the pool at once
  /// (>= 2 proves the round boundary was actually overlapped).
  std::size_t max_overlapped_rounds = 0;
};

class EngineSession {
 public:
  /// Called on the back-end thread, strictly in sequence order, never
  /// concurrently with itself.
  using DecisionSink = std::function<void(const EngineDecision&)>;

  /// `aps` are borrowed (not owned) and must outlive the session; one
  /// chunk stream is expected per AP, in the same order.
  EngineSession(SessionConfig config, std::vector<AccessPoint*> aps,
                DecisionSink sink);
  ~EngineSession();

  EngineSession(const EngineSession&) = delete;
  EngineSession& operator=(const EngineSession&) = delete;

  /// Push the next chunk of `ap_index`'s stream. Round r is formed from
  /// the r-th chunk of every AP, so streams may be pushed raggedly;
  /// blocks while this AP's queue is full, throws StateError after
  /// close(). Thread-safe against other submitters.
  void submit(std::size_t ap_index, CMat chunk);
  /// Convenience: one time-aligned chunk per AP (chunks[i] -> aps[i]).
  void submit_round(std::vector<CMat> chunks);

  /// Process every submitted chunk (APs that received fewer chunks than
  /// the longest stream are padded with empty rounds), run the final
  /// flush pass, and return once every decision has been emitted. The
  /// session remains usable afterwards.
  void drain();
  /// Block until every currently formable round has been decided (no
  /// flush pass). The batch wrapper's ingest barrier.
  void wait_idle();
  /// drain(), then stop the pipeline threads. Idempotent (concurrent
  /// calls serialize); submit() and drain() throw StateError afterwards.
  void close();

  std::size_t num_aps() const { return aps_.size(); }
  std::size_t num_threads() const { return pool_.size(); }
  const SessionConfig& config() const { return config_; }
  Coordinator::Stats stats() const { return coordinator_.stats(); }
  const PolicyChain& chain() const { return coordinator_.chain(); }
  const ShardedSpoofDetector& spoof_detector() const { return spoof_; }
  SessionStats session_stats() const;

 private:
  /// One AP's share of an in-flight round.
  struct ApRound {
    StreamingReceiver::Scan scan;
    /// Results aligned with scan.candidates (nullopt = skipped/retry).
    std::vector<std::optional<ReceivedPacket>> processed;
    std::vector<std::optional<AccessPoint::FramePrep>> preps;  // wideband
    std::vector<std::vector<MusicResult>> band_results;        // wideband
    std::vector<std::future<std::optional<ReceivedPacket>>> demod_futures;
    std::vector<std::size_t> demod_idx;
    std::vector<std::future<std::optional<AccessPoint::FramePrep>>>
        prep_futures;
    std::vector<std::size_t> prep_idx;
    /// Candidate indices that predate this round's chunk: deferred
    /// retries (or scan-ahead duplicates), resolved by the back-end
    /// after the preceding round's commit.
    std::vector<std::size_t> stale;
  };
  struct Round {
    std::uint64_t id = 0;
    bool final_pass = false;
    std::uint64_t drain_tag = 0;  ///< nonzero on a drain's flush round
    std::size_t budget = 0;       ///< candidates charged to the budget
    std::vector<ApRound> per_ap;
  };

  void frontend_loop();
  void backend_loop();
  void schedule_fresh_work(Round& round);
  void process_round(Round& round);
  void fail(std::exception_ptr error);
  void throw_if_failed_locked();
  bool round_formable_locked() const;

  SessionConfig config_;
  std::vector<AccessPoint*> aps_;
  std::vector<Vec2> positions_;
  std::vector<std::unique_ptr<StreamingReceiver>> streams_;
  /// Serializes scan (front-end, pool tasks) against commit/watermark
  /// reads (back-end) on one receiver.
  std::vector<std::unique_ptr<std::mutex>> stream_mu_;
  ThreadPool pool_;
  ShardedSpoofDetector spoof_;
  Coordinator coordinator_;
  DecisionSink sink_;

  /// Held for the whole of close(); serializes concurrent closers.
  std::mutex close_mu_;
  mutable std::mutex mu_;
  std::condition_variable submit_cv_;  // chunk-queue slots freed
  std::condition_variable front_cv_;   // work / budget for the front-end
  std::condition_variable back_cv_;    // rounds for the back-end
  std::condition_variable done_cv_;    // drain()/wait_idle() progress
  std::vector<std::deque<CMat>> queues_;
  std::deque<std::unique_ptr<Round>> round_queue_;
  std::uint64_t drains_requested_ = 0;
  std::uint64_t drains_issued_ = 0;
  std::uint64_t drains_completed_ = 0;
  std::size_t rounds_in_flight_ = 0;
  std::size_t inflight_frames_ = 0;
  std::size_t admitted_rounds_ = 0;
  std::uint64_t next_round_id_ = 0;
  std::uint64_t sequence_ = 0;  // back-end thread only
  SessionStats stats_;
  bool closing_ = false;
  bool closed_ = false;
  bool failed_ = false;
  std::exception_ptr error_;

  std::thread front_;
  std::thread back_;
};

}  // namespace sa
