// The deployment engine: the production-scale frame-decision pipeline.
//
// A SecureAngle deployment receives continuous per-AP sample streams and
// must turn them into one ordered stream of frame decisions:
//
//   per-AP sample chunks
//     -> StreamingReceiver::scan        (parallel across APs)
//     -> AccessPoint::prepare           (parallel across every candidate
//                                        frame of every AP: PHY decode +
//                                        per-subband covariance contexts)
//     -> AccessPoint::estimate_band     (parallel across every (frame,
//                                        subband) pair — intra-frame
//                                        parallelism)
//     -> AccessPoint::assemble          (parallel across frames:
//                                        signature fusion + bearing)
//     -> StreamingReceiver::commit      (sequential per AP, cheap)
//     -> cross-AP grouping by start sample
//     -> spoof observe                  (per-frame tickets, parallel
//                                        across MAC shards, sequential
//                                        within a shard)
//     -> Coordinator::process_prejudged (sequential, re-sequenced)
//
// The primary API is the push-based EngineSession (sa/engine/
// session.hpp), which pipelines ingest rounds: round N+1's scan/decode
// overlaps round N's decode/AoA/policy phase. DeploymentEngine is the
// legacy lock-step batch surface, kept byte-identical: ingest() submits
// one time-aligned chunk per AP to an internal session and blocks until
// that round's decisions are out.
//
// Determinism: the emitted FrameDecision sequence is identical at any
// thread count — and identical to feeding the same chunk streams through
// serial StreamingReceivers, the same grouping, and Coordinator::process.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sa/common/thread_pool.hpp"
#include "sa/engine/sharded_spoof.hpp"
#include "sa/secure/coordinator.hpp"
#include "sa/secure/streaming.hpp"

namespace sa {

class CaptureWriter;

struct EngineConfig {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t num_threads = 1;
  /// MAC-hash shards for per-client tracker state.
  std::size_t num_shards = 8;
  /// Bound of the pool's pending-task queue.
  std::size_t queue_capacity = 256;
  /// Detections across APs within this many samples of each other are
  /// fused as one frame (propagation plus detection jitter; a WARP
  /// buffer is 8000 samples).
  std::size_t group_slack_samples = 1600;
  StreamingConfig streaming;
  CoordinatorConfig coordinator;
  /// Optional recording tap (sa/capture/writer.hpp), borrowed. When set,
  /// the session records every submitted chunk, every emitted decision
  /// and every drain() boundary into a SACP capture. Recording protocol:
  /// drain the session, then close the writer, then close the session —
  /// the tap skips a writer that is already closed, so close()'s
  /// internal drain never throws through it.
  CaptureWriter* capture = nullptr;
  /// Fleet tagging for the recording tap. A FleetCoordinator shares one
  /// writer across per-site sessions: chunk records carry
  /// `capture_ap_base + local AP index` (the fleet-global AP id), and
  /// when `capture_site` is set decisions are recorded as site-tagged
  /// kSiteDecision records instead of plain decisions. With
  /// `capture_drains` false the session suppresses its own drain
  /// markers, so the fleet can record one global boundary per
  /// drain_all() instead of one per site.
  std::uint32_t capture_ap_base = 0;
  std::optional<std::uint32_t> capture_site;
  bool capture_drains = true;
};

/// One cross-AP view of one frame, ready for the coordinator.
struct FrameGroup {
  std::size_t absolute_start = 0;  ///< earliest detection across APs
  std::vector<ApObservation> observations;
};

/// Fuse per-AP stream packets into frame groups: packets whose absolute
/// start samples lie within `slack_samples` of a group's first packet are
/// the same transmission heard by different APs. Deterministic: groups
/// are ordered by (start sample, AP index).
std::vector<FrameGroup> group_frame_observations(
    std::vector<std::vector<StreamingReceiver::StreamPacket>> per_ap_packets,
    const std::vector<Vec2>& ap_positions, std::size_t slack_samples);

/// One decision in the engine's re-sequenced output stream.
struct EngineDecision {
  std::size_t sequence = 0;        ///< global frame index, monotonically increasing
  std::size_t absolute_start = 0;  ///< earliest detection sample across APs
  FrameDecision decision;
};

class EngineSession;

/// Lock-step batch wrapper over an EngineSession, for callers that own
/// the round cadence themselves. Output is byte-identical to the
/// pre-session batch engine at any thread count.
class DeploymentEngine {
 public:
  /// `aps` are borrowed (not owned) and must outlive the engine; one
  /// sample stream is expected per AP, in the same order.
  DeploymentEngine(EngineConfig config, std::vector<AccessPoint*> aps);
  ~DeploymentEngine();

  /// Feed the next time-aligned chunk of every AP's stream (chunks[i]
  /// belongs to aps[i]). Returns the decisions completed by this batch,
  /// in stream order. The const-ref overload copies the chunks into the
  /// session's queues; pass an rvalue to move them instead.
  std::vector<EngineDecision> ingest(const std::vector<CMat>& chunks);
  std::vector<EngineDecision> ingest(std::vector<CMat>&& chunks);

  /// End of capture: process deferred detections and emit what remains.
  std::vector<EngineDecision> flush();

  std::size_t num_aps() const;
  std::size_t num_threads() const;
  const EngineConfig& config() const { return config_; }
  Coordinator::Stats stats() const;
  /// Per-policy accept/drop counters of the decision chain.
  const PolicyChain& chain() const;
  const ShardedSpoofDetector& spoof_detector() const;

 private:
  EngineConfig config_;
  std::unique_ptr<EngineSession> session_;
  std::vector<EngineDecision> collected_;
};

}  // namespace sa
