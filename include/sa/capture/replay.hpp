// ReplaySource: turn a SACP capture back into the ingest stream it
// recorded. replay_into() re-submits every chunk record, in file order,
// to a live EngineSession and runs a flush pass at every recorded
// drain() boundary — which is all the session needs to reproduce the
// recorded decision stream byte-for-byte at any thread count (see
// tests/test_replay.cpp for the contract).
//
// The source does not build the engine: the capture header's metadata
// describes the deployment (sa/sim/deployment.hpp) and the caller
// constructs a matching session, so replay works against modified
// engines too (that is what makes captures useful as regressions).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sa/capture/reader.hpp"

namespace sa {

class EngineSession;

struct ReplayResult {
  bool ok = false;
  std::string error;  ///< empty when ok
  std::uint64_t chunks_submitted = 0;
  std::uint64_t drains_run = 0;
};

class ReplaySource {
 public:
  /// Takes the capture to replay. Structural problems are reported
  /// lazily by replay_into(); valid() runs the full validation walk.
  explicit ReplaySource(CaptureReader reader) : reader_(std::move(reader)) {}

  static std::optional<ReplaySource> from_file(const std::string& path);

  const std::optional<CaptureHeader>& header() const {
    return reader_.header();
  }
  const CaptureReader& reader() const { return reader_; }
  ValidationReport validate() const { return reader_.validate(); }

  /// Submit every recorded chunk to `session` in file order, calling
  /// session.drain() at each recorded drain boundary — exactly the
  /// recorded boundaries, no extra flush, so a replay that is itself
  /// being captured produces the same drain track as the original (the
  /// recording protocol drains before closing the writer, so a cleanly
  /// closed capture always ends quiescent). Chunk records whose `ap` is
  /// out of range for the capture's own num_aps fail the replay instead
  /// of faulting the session.
  ReplayResult replay_into(EngineSession& session);

 private:
  CaptureReader reader_;
};

}  // namespace sa
