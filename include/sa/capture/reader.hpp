// CaptureReader: parse and walk a SACP capture held in memory (captures
// are regression-corpus sized; whole-file reads keep the parser simple
// and the error paths total). Also the home of validate() — the full
// structural walk capture_tool and CI run over every corpus entry — and
// diff_captures(), the logical track-by-track comparison replay
// verification is defined in terms of.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sa/capture/format.hpp"

namespace sa {

/// One parsed record. `payload` is always the raw bytes (the unit of
/// byte-identical comparison); the decoded views are filled per type.
struct CaptureRecord {
  RecordType type = RecordType::kEnd;
  ByteStream payload;
  std::optional<ChunkRecord> chunk;        // type == kChunk
  std::optional<DecisionRecord> decision;  // type == kDecision
  std::optional<SiteDecisionRecord> site_decision;  // type == kSiteDecision
  std::optional<AssocRecord> assoc;        // type == kAssoc
  std::optional<TransportRecord> transport;  // type == kTransport
  std::optional<EndRecord> end;            // type == kEnd
};

struct ValidationReport {
  bool ok = false;
  std::string error;          ///< empty when ok
  std::size_t record_index = 0;  ///< record the walk stopped at
  std::uint64_t chunks = 0;
  std::uint64_t decisions = 0;  ///< plain + site-tagged
  std::uint64_t drains = 0;
  std::uint64_t assocs = 0;
  std::uint64_t transports = 0;  ///< not part of the kEnd totals
  bool end_seen = false;
};

class CaptureReader {
 public:
  /// Takes ownership of the raw bytes; header parsing happens here.
  explicit CaptureReader(ByteStream data);

  /// Whole-file convenience; nullopt on I/O error (parse errors are
  /// reported through header()/next(), not here).
  static std::optional<CaptureReader> from_file(const std::string& path);

  /// nullopt when the header is malformed; no records are readable then.
  const std::optional<CaptureHeader>& header() const { return header_; }

  /// Next record in file order; nullopt at clean end-of-file or on a
  /// malformed record — disambiguate with error(). Records after a kEnd
  /// record are malformed by definition.
  std::optional<CaptureRecord> next();
  /// Error text for the walk so far; empty while everything parsed.
  const std::string& error() const { return error_; }
  void rewind();

  /// Full structural walk on a fresh cursor: header, every record,
  /// payload decodability, kEnd totals vs actual counts, clean EOF.
  ValidationReport validate() const;

  /// All decision payloads in file order (= sequence order as emitted).
  std::vector<ByteStream> decision_payloads() const;

  const ByteStream& bytes() const { return data_; }

 private:
  std::optional<CaptureRecord> parse_record(ByteReader& r,
                                            bool& end_seen,
                                            std::string& error) const;

  ByteStream data_;
  std::optional<CaptureHeader> header_;
  std::size_t body_offset_ = 0;  ///< first byte after the header
  std::size_t cursor_ = 0;
  bool end_seen_ = false;
  std::string error_;
};

/// Logical comparison of two captures: same AP count, same per-AP chunk
/// track (each AP's chunk payloads in stream order — per-AP order is
/// submission order regardless of how concurrent submitters interleaved
/// in the file), same decision track (payload bytes, in file order =
/// sequence order), same per-site decision tracks (fleet captures emit
/// site decisions concurrently across sites, so only each site's
/// subsequence is ordered), same assoc and transport tracks, same drain
/// count. Header
/// metadata and physical record interleaving are NOT compared — two
/// runs of the same workload may legally interleave records
/// differently.
struct CaptureDiff {
  bool equal = false;
  std::string detail;  ///< first difference, human-readable
};

CaptureDiff diff_captures(const CaptureReader& a, const CaptureReader& b);

}  // namespace sa
