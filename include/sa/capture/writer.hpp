// CaptureWriter: the recording tap. Producers (submit threads, the
// session's sequencer, a serial Coordinator) serialize records into an
// in-memory buffer under a short lock; a background flusher thread swaps
// the buffer out and writes it to disk — so the dataplane never blocks
// on file I/O (ndn-dpdk pdump's writer-thread split).
//
// Record order in the file is the order producers enqueued them, which
// is a legal serialization of the run: a chunk record always precedes
// any decision it contributed to, and a drain marker recorded from
// drain() follows every chunk the drain covers (caller-ordered).
//
// close() appends the kEnd totals record and flushes; the destructor
// closes. A writer is bound to one file for its lifetime.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sa/capture/format.hpp"

namespace sa {

class CaptureWriter {
 public:
  /// Opens `path` for writing and emits the header immediately. Throws
  /// sa::Error when the file cannot be opened.
  CaptureWriter(const std::string& path, CaptureHeader header);
  ~CaptureWriter();

  CaptureWriter(const CaptureWriter&) = delete;
  CaptureWriter& operator=(const CaptureWriter&) = delete;

  /// Record the `round`-th chunk of `ap`'s stream, whose first column is
  /// absolute sample `base`. Thread-safe.
  void record_chunk(std::size_t ap, std::uint64_t round, std::uint64_t base,
                    const CMat& samples);
  /// Record one emitted decision in sequence order. Thread-safe.
  void record_decision(std::uint64_t sequence, std::uint64_t absolute_start,
                       const FrameDecision& decision);
  /// Record one site's emitted decision (fleet capture, version >= 2);
  /// counts toward the decision total. Thread-safe.
  void record_site_decision(std::uint32_t site, std::uint64_t sequence,
                            std::uint64_t absolute_start,
                            const FrameDecision& decision);
  /// Record a client association/handoff (fleet capture, version >= 2).
  /// Thread-safe.
  void record_assoc(const AssocRecord& assoc);
  /// Record a migration's transport verdict (lossy fleet capture,
  /// version >= 3). Thread-safe.
  void record_transport(const TransportRecord& transport);
  /// Record a drain() boundary. Thread-safe.
  void record_drain();

  /// Block until everything recorded so far is on disk.
  void flush();
  /// Write the kEnd totals record and close the file. Idempotent;
  /// recording after close() throws StateError.
  void close();

  /// Whether close() has run; the engine's tap checks this so a
  /// session closed after its writer does not throw StateError from
  /// the internal drain.
  bool closed() const;

  std::uint64_t chunks_recorded() const;
  std::uint64_t decisions_recorded() const;
  std::uint64_t drains_recorded() const;
  std::uint64_t assocs_recorded() const;
  const std::string& path() const { return path_; }

 private:
  void enqueue(RecordType type, const ByteStream& payload);
  void flusher_loop();

  std::string path_;
  std::FILE* file_ = nullptr;
  /// Header version, echoed into the end record's wire shape.
  std::uint32_t version_ = kSacpVersion;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // producers -> flusher
  std::condition_variable drained_cv_;  // flusher -> flush()/close()
  ByteStream pending_;
  bool stop_ = false;
  bool closed_ = false;
  bool write_failed_ = false;
  std::uint64_t generation_ = 0;   // bumped per enqueue
  std::uint64_t flushed_gen_ = 0;  // last generation fully written
  std::uint64_t chunks_ = 0;
  std::uint64_t decisions_ = 0;
  std::uint64_t drains_ = 0;
  std::uint64_t assocs_ = 0;

  std::thread flusher_;
};

}  // namespace sa
