// The SACP capture container: a versioned, self-describing binary format
// for recording a deployment's ingest stream and its decision stream so
// any traffic pattern — benign, bursty, adversarial — can be captured
// once and replayed deterministically as a regression corpus.
//
// Layout (all integers little-endian):
//
//   file   := header record*
//   header := magic "SACP" | u32 version | u32 payload_len | payload
//             payload: u32 num_aps | u64 seed | u32 meta_count
//                      | meta_count * (str key, str value)
//   record := u32 payload_len | u32 type | payload_len bytes
//   str    := u32 len | len bytes
//
// Record types (ndn-dpdk pdump-style: every record is length-prefixed so
// a reader can skip what it does not understand, and a truncated file
// fails parsing instead of invoking UB):
//
//   kChunk    one AP's share of one ingest round: (ap, round, absolute
//             sample base, rows, cols, row-major IQ as f64 re/im pairs).
//             In a fleet capture `ap` is the fleet-global AP id.
//   kDecision one emitted frame decision in sequence order, in the
//             canonical byte encoding of encode_decision() — replay
//             compares these byte-for-byte.
//   kDrain    a drain() boundary: replay must run a flush pass here to
//             reproduce deferred-frame emission timing.
//   kEnd      totals (chunks, decisions, drains, and — version >= 2 —
//             assocs); must be last. Lets a validator distinguish
//             "cleanly closed" from "truncated".
//
// Version 2 (fleet captures) adds:
//
//   kSiteDecision  a per-site decision: u32 site id followed by the
//             canonical decision payload. A fleet run emits decisions
//             concurrently across sites, so the global file order is
//             nondeterministic — but each site's subsequence is in that
//             site's sequence order, which is what replay compares.
//   kAssoc    a client (re)association driving a handoff: (site, handoff
//             generation, MAC). Replay re-issues the handoff here.
//
// Version 3 (lossy fleet captures) adds:
//
//   kTransport  the transport verdict of one migration under a fault
//             plan: (MAC, generation, delivered-vs-cold-start, data
//             attempts). The plan itself rides in the header metadata
//             (`sa.fleet.fault_plan`); replay rebuilds the same faulty
//             channel and re-checks every verdict.
//
// Version-1 consumers reject version-2+ files at the header, never
// mid-stream.
//
// The metadata map is free-form; sa/sim/deployment.hpp defines the keys
// a replayable office-deployment capture carries (seed, aps, estimator,
// subbands, policies, ...). Parsers here never trust lengths: every
// bound is checked against the remaining input, and malformed input
// yields nullopt/false — never UB — which is what makes the mutate-based
// fuzz loop in capture_tool meaningful.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sa/linalg/cmat.hpp"
#include "sa/secure/policy.hpp"

namespace sa {

using ByteStream = std::vector<std::uint8_t>;

// ----------------------------------------------------------- primitives

void put_u8(ByteStream& out, std::uint8_t v);
void put_u32(ByteStream& out, std::uint32_t v);
void put_u64(ByteStream& out, std::uint64_t v);
void put_f64(ByteStream& out, double v);
void put_str(ByteStream& out, std::string_view s);

/// Bounded little-endian cursor over untrusted bytes. Every getter
/// returns nullopt instead of reading past the end.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const ByteStream& data)
      : ByteReader(data.data(), data.size()) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<double> f64();
  /// String with a sanity bound on the length prefix.
  std::optional<std::string> str(std::size_t max_len = 4096);

  std::size_t remaining() const { return size_ - at_; }
  std::size_t offset() const { return at_; }
  bool done() const { return at_ == size_; }
  const std::uint8_t* cursor() const { return data_ + at_; }
  bool skip(std::size_t n);

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t at_ = 0;
};

// ------------------------------------------------------------ structure

inline constexpr std::uint32_t kSacpVersion = 1;
/// Fleet captures (site-tagged decisions, association records).
inline constexpr std::uint32_t kSacpVersionFleet = 2;
/// Lossy fleet captures: version 2 plus per-migration transport
/// verdicts (kTransport) and a `sa.fleet.fault_plan` metadata key, so
/// replay can rebuild the exact same faulty channel. A zero-fault fleet
/// run still writes version 2, byte-identical to pre-transport files.
inline constexpr std::uint32_t kSacpVersionChaos = 3;
/// "SACP" as a little-endian u32 (bytes S,A,C,P on the wire).
inline constexpr std::uint32_t kSacpMagic = 0x50434153;

enum class RecordType : std::uint32_t {
  kChunk = 1,
  kDecision = 2,
  kDrain = 3,
  kEnd = 4,
  kSiteDecision = 5,  // version >= 2
  kAssoc = 6,         // version >= 2
  kTransport = 7,     // version >= 3
};

/// Parser sanity bounds. Generous for real captures, tight enough that a
/// mutated length field cannot request an absurd allocation.
inline constexpr std::size_t kMaxRecordPayload = std::size_t{1} << 28;
inline constexpr std::size_t kMaxChunkRows = 256;
inline constexpr std::size_t kMaxChunkCols = std::size_t{1} << 22;
inline constexpr std::size_t kMaxMetaEntries = 256;
inline constexpr std::size_t kMaxTraceEntries = 256;

struct CaptureHeader {
  std::uint32_t version = kSacpVersion;
  std::uint32_t num_aps = 0;
  std::uint64_t seed = 0;
  /// Free-form self-description, in insertion order (order is part of
  /// the byte format, so captures with identical provenance are
  /// byte-identical).
  std::vector<std::pair<std::string, std::string>> metadata;

  /// First value for `key`, if present.
  std::optional<std::string> meta(std::string_view key) const;
};

struct ChunkRecord {
  std::uint32_t ap = 0;
  /// Per-AP round index: this is the `round`-th chunk of this AP's
  /// stream (0-based).
  std::uint64_t round = 0;
  /// Absolute sample index of this chunk's first column in the AP's
  /// stream.
  std::uint64_t base = 0;
  CMat samples;
};

/// Decoded view of a decision record — for inspection and tests; replay
/// equality is judged on the raw payload bytes.
struct DecisionRecord {
  std::uint64_t sequence = 0;
  std::uint64_t absolute_start = 0;
  bool accepted = true;
  std::uint8_t spoof_verdict = 0;
  double spoof_score = 0.0;
  std::optional<std::array<std::uint8_t, 6>> source;
  struct Location {
    double x = 0.0;
    double y = 0.0;
    double residual_deg = 0.0;
    std::uint32_t aps_used = 0;
  };
  std::optional<Location> location;
  std::string policy;
  std::string detail;
  struct TraceEntry {
    std::string policy;
    bool dropped = false;
    std::string detail;
  };
  std::vector<TraceEntry> trace;
};

/// Version >= 2: one site's decision (site-local sequence order).
struct SiteDecisionRecord {
  std::uint32_t site = 0;
  DecisionRecord decision;
};

/// Version >= 2: a client (re)association that drove a handoff.
struct AssocRecord {
  std::uint32_t site = 0;          ///< destination site
  std::uint64_t generation = 0;    ///< handoff generation (guard)
  std::array<std::uint8_t, 6> mac{};
};

/// Version >= 3: the transport verdict of one migration under a fault
/// plan — delivered vs cold start, and how many data-frame attempts it
/// took. Replay re-runs the same plan and re-checks each verdict.
struct TransportRecord {
  std::array<std::uint8_t, 6> mac{};
  std::uint64_t generation = 0;  ///< the migration's (new) generation
  std::uint32_t outcome = 0;     ///< HandoffOutcome as u32
  std::uint32_t attempts = 0;
};

struct EndRecord {
  std::uint64_t chunks = 0;
  std::uint64_t decisions = 0;  ///< plain + site-tagged decisions
  std::uint64_t drains = 0;
  std::uint64_t assocs = 0;     ///< version >= 2 only on the wire
};

// -------------------------------------------------------------- encode

ByteStream encode_header(const CaptureHeader& header);

/// Canonical decision payload: replay determinism is defined as "the
/// replayed stream's encode_decision() bytes equal the recorded ones".
ByteStream encode_decision(std::uint64_t sequence,
                           std::uint64_t absolute_start,
                           const FrameDecision& decision);

ByteStream encode_chunk(std::uint32_t ap, std::uint64_t round,
                        std::uint64_t base, const CMat& samples);

/// Version >= 2: the site id followed by the canonical decision payload
/// (so a site's decision subsequence is byte-comparable against plain
/// encode_decision output with the site prefix stripped).
ByteStream encode_site_decision(std::uint32_t site, std::uint64_t sequence,
                                std::uint64_t absolute_start,
                                const FrameDecision& decision);

ByteStream encode_assoc(const AssocRecord& assoc);

ByteStream encode_transport(const TransportRecord& transport);

/// `version` controls the wire shape: version 1 writes the legacy
/// 3-counter payload byte-identically; version >= 2 appends the assoc
/// total.
ByteStream encode_end(const EndRecord& end,
                      std::uint32_t version = kSacpVersion);

/// Wrap a payload in the (len, type) record framing.
void append_record(ByteStream& out, RecordType type,
                   const ByteStream& payload);

// -------------------------------------------------------------- decode

std::optional<CaptureHeader> decode_header(ByteReader& r);
std::optional<ChunkRecord> decode_chunk(const ByteStream& payload);
std::optional<DecisionRecord> decode_decision(const ByteStream& payload);
std::optional<SiteDecisionRecord> decode_site_decision(
    const ByteStream& payload);
std::optional<AssocRecord> decode_assoc(const ByteStream& payload);
std::optional<TransportRecord> decode_transport(const ByteStream& payload);
/// Accepts both wire shapes (24- and 32-byte payloads); `assocs` is 0
/// for a version-1 record.
std::optional<EndRecord> decode_end(const ByteStream& payload);

// -------------------------------------------------------------- mutate

/// Deterministically corrupt a capture: `ops` random byte-level
/// mutations (xor / overwrite / zero) at offsets past the magic, with a
/// chance of truncating or extending the tail. The output is usually
/// *invalid* — that is the point: it seeds the fuzz loop that asserts
/// the parser and the replay path fail cleanly instead of crashing.
ByteStream mutate_capture(const ByteStream& input, std::uint64_t seed,
                          std::size_t ops);

}  // namespace sa
