// Fleet replay: turn a version-2/3 SACP fleet capture back into the run
// it recorded and verify it byte-for-byte. The header's fleet keys
// rebuild the FleetCoordinator (per-site deployments from the seed
// progression, the recorded spoof-idle horizon, and — version 3 — the
// recorded transport fault plan, so the replayed channel drops and
// corrupts exactly where the original did); then every record is
// re-issued in file order — chunks routed by fleet-global AP id, kAssoc
// records re-driving notify_association (the replayed handoff
// generation must match the recorded one, or the handoff state machine
// has diverged), kTransport records re-checking each migration's
// delivered/cold-start verdict and attempt count, kDrain running
// drain_all(). At the end each site's re-emitted decision track is
// compared byte-identically against the recorded kSiteDecision
// payloads.
//
// This is the fleet analogue of ReplaySource (sa/capture/replay.hpp),
// folded into one call because fleet replay is always verification:
// unlike single-site replay there is no "replay into caller's engine"
// use — the capture fully describes the fleet.
#pragma once

#include <cstdint>
#include <string>

#include "sa/capture/reader.hpp"

namespace sa {

struct FleetReplayResult {
  bool ok = false;
  std::string error;  ///< empty when ok
  std::size_t sites = 0;
  std::uint64_t chunks_submitted = 0;
  std::uint64_t assocs_replayed = 0;
  std::uint64_t drains_run = 0;
  /// Site decisions byte-compared against the recorded tracks.
  std::uint64_t decisions_checked = 0;
  /// Transport verdicts re-checked against kTransport records.
  std::uint64_t transports_checked = 0;
};

/// Replay the fleet capture at `path` with `threads_per_site` dataplane
/// workers per site and byte-compare every site's decision track.
/// Deterministic at any thread count; a mismatch (or a malformed
/// capture) is reported in `error`, never UB.
FleetReplayResult replay_fleet_capture(const std::string& path,
                                       std::size_t threads_per_site);

/// Same, over in-memory capture bytes (the fuzz loop's entry point —
/// mutated captures must come back as errors, never crashes).
FleetReplayResult replay_fleet_capture(ByteStream data,
                                       std::size_t threads_per_site);

}  // namespace sa
