// sa/fleet/transport: the delivery layer under FleetWire.
//
// PR 9's handoff handed the encoded kClientState message to
// apply_handoff in-process — a perfect channel. This layer models the
// channel explicitly so the fleet survives one worth distrusting:
//
//   FleetCoordinator::notify_association
//         │  encode kClientState
//         ▼
//   ReliableLink ── seq-numbered kTransportData frames, acks, bounded
//         │         retry with exponential backoff + jitter
//         ▼
//   FleetTransport (interface)
//     ├─ LoopbackTransport   in-process, in-order, lossless — the
//     │                      zero-fault channel; byte-identical to PR 9
//     └─ FaultyTransport     decorator over any inner transport: a
//                            seeded FaultPlan drops / duplicates /
//                            reorders / delays / bit-corrupts datagrams
//
// Everything is driven by a virtual clock: time only advances when
// someone calls tick(), so every retry schedule, delay, and timeout is
// deterministic given (FaultPlan, ReliableLinkConfig) — at any
// dataplane thread count. That determinism is what lets a lossy fleet
// run be recorded and replayed byte-for-byte.
//
// The fault verdict for datagram i is a pure function of
// (plan.seed, i): one splitmix64 draw, compared against cumulative
// per-fault probabilities. A `schedule` entry overrides the draw for
// a specific datagram index — the unit-test surface for "exactly this
// message is dropped".
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sa/capture/format.hpp"

namespace sa {

/// What the channel does to one datagram. At most one fault per
/// datagram; kCorrupt flips bits but still delivers.
enum class FaultKind : std::uint32_t {
  kNone = 0,
  kDrop = 1,
  kDuplicate = 2,
  kReorder = 3,
  kDelay = 4,
  kCorrupt = 5,
};

const char* to_string(FaultKind kind);

/// A seeded, fully deterministic fault model for one channel. The
/// probabilities are cumulative-checked in declaration order (drop
/// first), so they must sum to <= 1. `schedule` pins specific datagram
/// indices (0-based, counted per FaultyTransport) to a forced verdict.
///
/// Round-trips through to_string()/parse() so a plan can ride in a
/// capture header (`sa.fleet.fault_plan`) or a CLI flag, e.g.
/// "seed=7,drop=0.05,corrupt=0.01,delay_ticks=6,force=3:drop;9:corrupt".
struct FaultPlan {
  std::uint64_t seed = 1;
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double delay = 0.0;
  double corrupt = 0.0;
  /// Extra ticks a kDelay verdict holds a datagram in the channel.
  std::uint64_t delay_ticks = 4;
  /// Forced verdicts by datagram index; overrides the seeded draw.
  std::map<std::uint64_t, FaultKind> schedule;

  /// True when any fault can ever fire — an inactive plan means the
  /// channel behaves exactly like its inner transport.
  bool active() const;
  /// The (deterministic) verdict for datagram `index`.
  FaultKind verdict(std::uint64_t index) const;

  std::string to_string() const;
  static std::optional<FaultPlan> parse(const std::string& text);
};

/// A unidirectional best-effort datagram channel with a virtual clock.
/// send() accepts a datagram; the receiver callback fires during send()
/// or a later tick(), depending on the implementation. Not thread-safe:
/// the caller serializes send/tick (FleetCoordinator holds one mutex
/// over the whole control plane's wire phase).
class FleetTransport {
 public:
  using DeliverFn = std::function<void(const ByteStream&)>;

  virtual ~FleetTransport() = default;

  virtual void set_receiver(DeliverFn fn) = 0;
  virtual void send(ByteStream datagram) = 0;
  /// Advance the virtual clock one tick; deliver anything due. Returns
  /// the number of datagrams delivered this tick.
  virtual std::size_t tick() = 0;
  /// Datagrams accepted but not yet delivered or dropped.
  virtual std::size_t pending() const = 0;
};

/// The perfect channel: every datagram is delivered synchronously,
/// in order, unmodified, inside send(). tick() is a no-op.
class LoopbackTransport final : public FleetTransport {
 public:
  void set_receiver(DeliverFn fn) override { receiver_ = std::move(fn); }
  void send(ByteStream datagram) override {
    if (receiver_) receiver_(datagram);
  }
  std::size_t tick() override { return 0; }
  std::size_t pending() const override { return 0; }

 private:
  DeliverFn receiver_;
};

/// What a FaultyTransport did to the traffic so far.
struct TransportStats {
  std::uint64_t sent = 0;       ///< datagrams offered to the channel
  std::uint64_t delivered = 0;  ///< datagrams handed to the inner transport
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t delayed = 0;
  std::uint64_t corrupted = 0;
};

/// The lossy decorator. Datagrams are queued with a due tick derived
/// from the plan's verdict (normal: next tick; kReorder: two ticks, so
/// the following datagram leapfrogs it; kDelay: plan.delay_ticks extra)
/// and handed to the inner transport as ticks elapse. kDrop discards,
/// kDuplicate enqueues twice, kCorrupt flips seeded bits first.
class FaultyTransport final : public FleetTransport {
 public:
  /// `inner` is borrowed and must outlive this decorator.
  FaultyTransport(FleetTransport& inner, FaultPlan plan);

  void set_receiver(DeliverFn fn) override { inner_.set_receiver(std::move(fn)); }
  void send(ByteStream datagram) override;
  std::size_t tick() override;
  std::size_t pending() const override { return queue_.size(); }

  const TransportStats& stats() const { return stats_; }
  const FaultPlan& plan() const { return plan_; }
  std::uint64_t now() const { return now_; }

 private:
  struct Queued {
    std::uint64_t due = 0;    ///< virtual tick at which this delivers
    std::uint64_t order = 0;  ///< tiebreak: admission order
    ByteStream bytes;
  };

  void enqueue(ByteStream bytes, std::uint64_t due);

  FleetTransport& inner_;
  FaultPlan plan_;
  TransportStats stats_;
  std::vector<Queued> queue_;
  std::uint64_t now_ = 0;
  std::uint64_t next_index_ = 0;  ///< datagram index fed to the plan
  std::uint64_t next_order_ = 0;
};

/// ARQ tuning. All times are virtual-clock ticks; jitter is derived
/// deterministically from (jitter_seed, seq, attempt) so a replayed run
/// retries on exactly the same schedule.
struct ReliableLinkConfig {
  std::uint32_t max_attempts = 5;
  std::uint64_t rto_ticks = 8;       ///< initial retransmit timeout
  std::uint64_t max_rto_ticks = 64;  ///< backoff cap (doubling, clamped)
  std::uint64_t jitter_seed = 0x5ec0ffee;
};

/// Counters for the reliability layer (both roles of the link).
struct ReliableLinkStats {
  std::uint64_t sends = 0;        ///< send_reliable calls
  std::uint64_t retransmits = 0;  ///< data frames sent beyond the first
  std::uint64_t timeouts = 0;     ///< sends that exhausted every attempt
  std::uint64_t acks_sent = 0;
  std::uint64_t duplicates_suppressed = 0;  ///< already-seen seqs re-acked
  std::uint64_t stale_acks = 0;       ///< acks for a no-longer-pending seq
  std::uint64_t corrupt_dropped = 0;  ///< undecodable datagrams discarded
};

/// Stop-and-wait ARQ over a FleetTransport: each message becomes one
/// sequence-numbered kTransportData frame (FNV-1a-checksummed), the
/// receiver side dedups by seq, delivers the inner message upward, and
/// acks; the sender retries on an exponential-backoff schedule until
/// acked or the attempt budget runs out. One link object serves both
/// roles (the in-process fleet is its own peer). Stop-and-wait is the
/// right shape here: a handoff is one message, and notify_association
/// is synchronous by contract.
class ReliableLink {
 public:
  /// Called with the validated inner message of each newly seen data
  /// frame, during send_reliable's pump. Returning normally acks it.
  using ImportFn = std::function<void(const ByteStream& inner)>;

  /// `transport` is borrowed and must outlive the link.
  ReliableLink(FleetTransport& transport, ReliableLinkConfig config);

  void set_import(ImportFn fn) { import_ = std::move(fn); }

  struct SendReport {
    bool acked = false;
    std::uint32_t attempts = 0;  ///< data-frame transmissions
    std::uint64_t ticks = 0;     ///< virtual time the send consumed
  };

  /// Ship one message reliably. Pumps the transport's virtual clock
  /// until the frame is acked or `max_attempts` deadlines expire; the
  /// import callback (and acks for any datagram that arrives, including
  /// unrelated delayed ones) runs inside this call.
  SendReport send_reliable(const ByteStream& message);

  const ReliableLinkStats& stats() const { return stats_; }

 private:
  void on_datagram(const ByteStream& datagram);

  FleetTransport& transport_;
  ReliableLinkConfig config_;
  ImportFn import_;
  ReliableLinkStats stats_;
  std::uint64_t next_seq_ = 1;
  std::optional<std::uint64_t> awaiting_seq_;
  bool awaiting_acked_ = false;
  /// Seqs already imported (receiver role) — duplicates re-ack only.
  std::vector<std::uint64_t> seen_seqs_;
};

}  // namespace sa
