// FleetWire: the versioned cross-site handoff message format ("SAFW").
//
// When a client's traffic migrates from one site to another, the source
// site exports everything its decision pipeline remembers about the MAC
// (ClientHandoffState: SAT1-serialized signature-tracker accumulators,
// ACL verdict, rate-limit residue) and ships it to the destination as
// one self-contained FleetWire message. The nested tracker block reuses
// the SAA-family serialization (sa/signature/serialize.hpp), so a
// handoff carries exactly the bytes an AP reboot would persist — one
// state format, two transports.
//
// Layout (all integers little-endian):
//
//   message := magic "SAFW" | u32 version | u32 type | u32 payload_len
//              | payload  (payload_len bytes, and the message ends there)
//
//   kClientState payload:
//     6 bytes MAC | u64 generation | u32 source_site | u32 dest_site
//     | u32 flags
//     | [flags bit0] u32 tracker_len | tracker_len bytes of "SAT1"
//     | [flags bit3] u32 rate_in_window
//
//   flags: bit0 = tracker block present
//          bit1 = ACL verdict present
//          bit2 = ACL verdict is "allowed" (requires bit1)
//          bit3 = rate-limit residue present
//          all other bits reserved — a decoder rejects them.
//
// `generation` is the handoff generation guard: the fleet bumps it per
// (MAC, handoff), and an import whose generation is not newer than the
// destination's view is rejected as stale — a delayed or replayed
// handoff message can never clobber fresher local state.
//
// The decoder is total over untrusted bytes: every length is bounds-
// checked, unknown versions/types/flags are rejected, the nested SAT1
// block goes through its own validating parser, and trailing bytes are
// an error — malformed input yields nullopt, never UB. That contract is
// what makes the FleetWire fuzz pass in capture_tool meaningful.
#pragma once

#include <cstdint>
#include <optional>

#include "sa/capture/format.hpp"
#include "sa/engine/session.hpp"
#include "sa/mac/address.hpp"

namespace sa {

/// "SAFW" as a little-endian u32 (bytes S,A,F,W on the wire).
inline constexpr std::uint32_t kFleetWireMagic = 0x57464153;
inline constexpr std::uint32_t kFleetWireVersion = 1;

enum class FleetWireType : std::uint32_t {
  kClientState = 1,
};

/// One client's cross-site handoff: the MAC, the generation guard, the
/// route, and the exported per-MAC state.
struct FleetClientState {
  MacAddress mac;
  std::uint64_t generation = 0;
  std::uint32_t source_site = 0;
  std::uint32_t dest_site = 0;
  ClientHandoffState state;
};

/// Serialize a kClientState message.
ByteStream encode_client_state(const FleetClientState& msg);

/// Parse a kClientState message; nullopt on malformed/truncated input,
/// wrong magic/version/type, reserved flag bits, an invalid nested
/// tracker block, or trailing bytes.
std::optional<FleetClientState> decode_client_state(const ByteStream& data);

}  // namespace sa
