// FleetWire: the versioned cross-site handoff message format ("SAFW").
//
// When a client's traffic migrates from one site to another, the source
// site exports everything its decision pipeline remembers about the MAC
// (ClientHandoffState: SAT1-serialized signature-tracker accumulators,
// ACL verdict, rate-limit residue) and ships it to the destination as
// one self-contained FleetWire message. The nested tracker block reuses
// the SAA-family serialization (sa/signature/serialize.hpp), so a
// handoff carries exactly the bytes an AP reboot would persist — one
// state format, two transports.
//
// Layout (all integers little-endian):
//
//   message := magic "SAFW" | u32 version | u32 type | u32 payload_len
//              | payload  (payload_len bytes, and the message ends there)
//
//   kClientState payload:
//     6 bytes MAC | u64 generation | u32 source_site | u32 dest_site
//     | u32 flags
//     | [flags bit0] u32 tracker_len | tracker_len bytes of "SAT1"
//     | [flags bit3] u32 rate_in_window
//
//   flags: bit0 = tracker block present
//          bit1 = ACL verdict present
//          bit2 = ACL verdict is "allowed" (requires bit1)
//          bit3 = rate-limit residue present
//          all other bits reserved — a decoder rejects them.
//
//   kTransportData payload (the reliability envelope, sa/fleet/transport):
//     u64 seq | u32 flags | u32 inner_len | inner_len bytes
//     | u32 checksum
//     flags: bit0 = retransmission; others reserved — rejected.
//     `inner` is a complete FleetWire message (today: kClientState),
//     left opaque by this decoder — the receiver validates it with its
//     own total decode. `checksum` is FNV-1a-32 over every payload byte
//     before it (seq, flags, inner_len, inner), so a bit flipped
//     anywhere in the envelope or the cargo turns the datagram into a
//     detected drop for the retry layer to repair — a corrupted export
//     is never imported, and decisions stay deterministic.
//
//   kAck payload:
//     u64 seq | u32 flags
//     flags: bit0 = duplicate (the seq had already been imported when
//     this ack was generated); others reserved — rejected.
//
// `generation` is the handoff generation guard: the fleet bumps it per
// (MAC, handoff), and an import whose generation is not newer than the
// destination's view is rejected as stale — a delayed or replayed
// handoff message can never clobber fresher local state.
//
// The decoder is total over untrusted bytes: every length is bounds-
// checked, unknown versions/types/flags are rejected, the nested SAT1
// block goes through its own validating parser, and trailing bytes are
// an error — malformed input yields nullopt, never UB. That contract is
// what makes the FleetWire fuzz pass in capture_tool meaningful.
#pragma once

#include <cstdint>
#include <optional>

#include "sa/capture/format.hpp"
#include "sa/engine/session.hpp"
#include "sa/mac/address.hpp"

namespace sa {

/// "SAFW" as a little-endian u32 (bytes S,A,F,W on the wire).
inline constexpr std::uint32_t kFleetWireMagic = 0x57464153;
inline constexpr std::uint32_t kFleetWireVersion = 1;

enum class FleetWireType : std::uint32_t {
  kClientState = 1,
  kTransportData = 2,  ///< reliability envelope around another message
  kAck = 3,            ///< delivery acknowledgment for one transport seq
};

/// The message type, when the outer framing (magic, version, a known
/// type, and an exact payload length) is intact; nullopt otherwise.
std::optional<FleetWireType> peek_type(const ByteStream& data);

/// One client's cross-site handoff: the MAC, the generation guard, the
/// route, and the exported per-MAC state.
struct FleetClientState {
  MacAddress mac;
  std::uint64_t generation = 0;
  std::uint32_t source_site = 0;
  std::uint32_t dest_site = 0;
  ClientHandoffState state;
};

/// Serialize a kClientState message.
ByteStream encode_client_state(const FleetClientState& msg);

/// Parse a kClientState message; nullopt on malformed/truncated input,
/// wrong magic/version/type, reserved flag bits, an invalid nested
/// tracker block, or trailing bytes.
std::optional<FleetClientState> decode_client_state(const ByteStream& data);

/// One sequence-numbered, checksummed datagram of the reliability layer.
struct FleetTransportData {
  std::uint64_t seq = 0;
  bool retransmit = false;
  /// A complete encoded FleetWire message (opaque to this codec).
  ByteStream inner;
};

/// Serialize a kTransportData envelope (checksum computed here).
ByteStream encode_transport_data(const FleetTransportData& msg);

/// Parse a kTransportData envelope; nullopt on malformed/truncated
/// input, reserved flags, a length that does not tile the payload
/// exactly, or a checksum mismatch. The inner message is NOT validated
/// here — decode it with its own total decoder.
std::optional<FleetTransportData> decode_transport_data(
    const ByteStream& data);

/// A delivery acknowledgment.
struct FleetAck {
  std::uint64_t seq = 0;
  /// The acked seq had already been imported (duplicate suppression).
  bool duplicate = false;
};

ByteStream encode_ack(const FleetAck& msg);

/// Parse a kAck message; nullopt on malformed/truncated input, reserved
/// flags, or trailing bytes.
std::optional<FleetAck> decode_ack(const ByteStream& data);

}  // namespace sa
