// The fleet tier: one coordinator over N sites, each a full SecureAngle
// deployment (its own APs, its own EngineSession dataplane), with
// cross-site client handoff over FleetWire.
//
//   FleetCoordinator
//     ├─ site 0: EngineSession ── APs [0, m)          (fleet-global ids)
//     ├─ site 1: EngineSession ── APs [m, 2m)
//     ├─ ...
//     ├─ home map: MAC -> (home site, handoff generation)  [FlatLruMap]
//     └─ transport stack: ReliableLink → [FaultyTransport →] Loopback
//
// Chunks are routed to the owning site (submit by (site, local AP) or
// fleet-global AP id). When a client's traffic migrates sites —
// notify_association(mac, dest) — the source site's per-MAC state is
// exported (tracker accumulators, ACL verdict, rate residue), shipped
// as one FleetWire kClientState message, and imported into the
// destination's compact substrate: the tracker lands in the shard
// owner's FlatLruMap + prefilter with a fresh timer-wheel idle lease,
// the rate residue is re-armed under the documented window-restart
// rule. The source then forgets the client (keeping its ACL entry, so
// late frames are judged by signature — not membership).
//
// The message no longer teleports: it rides the transport stack
// (sa/fleet/transport.hpp) as a sequence-numbered, checksummed
// kTransportData frame, acked by the receive side and retried on an
// exponential-backoff schedule. With the default zero-fault plan the
// stack is a LoopbackTransport and behavior is byte-identical to the
// in-process handoff; with a FaultPlan the channel drops, duplicates,
// reorders, delays, and corrupts datagrams deterministically.
//
// Handoff state machine per MAC:
//
//   (unknown) --assoc--> HOME(s, g=1)
//   HOME(s, g) --assoc to s--> HOME(s, g)            [no-op, no record]
//   HOME(s, g) --assoc to d--> quiesce s,d; export; ship(g+1);
//       ├─ acked     --> imported at d --> HOME(d, g+1)      [kAssoc]
//       └─ timed out --> COLD START: d admits the MAC fresh (empty
//            tracker, ACL re-checked by the chain, rate window
//            restarted) --> HOME(d, g+1)                     [kAssoc]
//   import with generation <= known g  --> rejected kStale
//
// The generation guard makes handoff idempotent and replay-safe — and
// it is what makes cold start safe: the home map advances to g+1
// *before* the handoff concludes (via import or via the cold-start
// path), so a late-arriving copy of the g+1 export is stale by
// construction and can never clobber state the destination has since
// accumulated from live frames.
//
// Quiescence and concurrency: handoff import/export reaches into
// per-worker policy state, so notify_association brings the source and
// destination dataplanes to wait_idle() (every formable round decided —
// no flush pass, so receiver state is untouched). Unlike PR 9's
// single-driver contract, notify_association and apply_handoff may now
// be called concurrently: per-MAC striped locks serialize same-MAC
// handoffs end-to-end, per-site mutexes serialize quiesce/export/
// import/forget per dataplane, and one transport mutex serializes the
// wire phase (the virtual clock is shared). Submitting traffic for a
// migrating client concurrently with its own handoff is still the
// driver's race to avoid, as before.
//
// Capture: with a CaptureWriter, the fleet records one SACP file —
// chunk records carry fleet-global AP ids, decisions are site-tagged
// (kSiteDecision), handoffs are kAssoc records, and drain_all() records
// a single fleet-wide drain boundary. Under an active fault plan the
// capture is version 3 and every migration additionally records a
// kTransport verdict (delivered/cold-start + attempts), which
// replay_fleet_capture re-checks — a lossy run replays byte-for-byte.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "sa/common/compact/flat_lru_map.hpp"
#include "sa/engine/session.hpp"
#include "sa/fleet/transport.hpp"
#include "sa/fleet/wire.hpp"
#include "sa/sim/deployment.hpp"

namespace sa {

class CaptureWriter;

/// A fleet of structurally identical sites built from one per-site
/// template. Site i is built from `site` with seed
/// `site.seed + i * site_seed_stride` — stride 0 makes every site
/// bit-identical (the handoff-oracle configuration), any other stride
/// gives each site its own impairment draws.
struct FleetSpec {
  DeploymentSpec site;
  std::size_t num_sites = 2;
  std::uint64_t site_seed_stride = 1;
};

/// Per-site spec for site `index` (the seed progression above).
DeploymentSpec site_spec(const FleetSpec& spec, std::size_t index);

/// Fleet spec -> fleet capture header: the per-site sa.* keys plus
/// "sa.fleet.sites" / "sa.fleet.seed_stride"; num_aps is fleet-global.
CaptureHeader fleet_header_for(const FleetSpec& spec);

/// Header -> fleet spec; nullopt when the fleet keys are missing or the
/// per-site deployment does not round-trip.
std::optional<FleetSpec> fleet_from_header(const CaptureHeader& header);

struct FleetConfig {
  FleetSpec spec;
  /// Dataplane worker threads per site session.
  std::size_t threads_per_site = 1;
  /// Build each site's uplink channel simulation (scenario drivers need
  /// it; replay does not).
  bool with_sim = false;
  /// Optional shared recording tap (one capture for the whole fleet),
  /// borrowed.
  CaptureWriter* capture = nullptr;
  /// Spoof-tracker idle horizon per site. nullopt (default) derives it
  /// from the roaming dwell-time distribution — at the fleet tier idle
  /// expiry is ON by default, because a roaming population constantly
  /// strands tracker state at sites clients have left. Explicit 0
  /// disables expiry (the single-session-oracle configuration).
  std::optional<std::size_t> spoof_idle_frames;
  /// Transport fault injection. Inactive (the default) keeps the pure
  /// LoopbackTransport path — byte-identical to the in-process handoff.
  FaultPlan fault_plan;
  /// ARQ tuning for the reliability layer (virtual-clock ticks).
  ReliableLinkConfig link;
};

enum class FleetImportOutcome {
  kApplied,    ///< imported; the home map now points at the destination
  kStale,      ///< generation not newer than the local view — rejected
  kMalformed,  ///< FleetWire decode failed — rejected
  kBadSite,    ///< destination site out of range — rejected
};

const char* to_string(FleetImportOutcome outcome);

/// How a migration's state moved (or didn't) over the transport.
enum class HandoffOutcome : std::uint32_t {
  kDelivered = 0,  ///< the export was acked; state arrived
  kColdStart = 1,  ///< retries exhausted; destination admitted fresh
};

const char* to_string(HandoffOutcome outcome);

/// What notify_association did.
struct HandoffResult {
  FleetImportOutcome outcome = FleetImportOutcome::kApplied;
  /// True when the client's home moved between sites (false for a first
  /// association or a same-site re-association).
  bool migrated = false;
  std::uint32_t source_site = 0;
  std::uint32_t dest_site = 0;
  std::uint64_t generation = 0;
  /// Transport verdict of a migration (kDelivered for non-migrations).
  HandoffOutcome transport = HandoffOutcome::kDelivered;
  /// Data-frame transmissions a migration took (0 for non-migrations).
  std::uint32_t attempts = 0;
  /// The encoded FleetWire kClientState message of a migration (empty
  /// otherwise) — what went "over the wire", for tests and tooling.
  ByteStream wire;
};

struct FleetStats {
  std::uint64_t associations = 0;  ///< notify_association calls
  std::uint64_t handoffs_applied = 0;
  std::uint64_t handoffs_stale = 0;
  std::uint64_t handoffs_malformed = 0;
  std::uint64_t handoffs_bad_site = 0;
  std::uint64_t drains = 0;
  // Transport-layer outcomes (zero under a quiet channel):
  std::uint64_t retries = 0;      ///< retransmitted data frames
  std::uint64_t timeouts = 0;     ///< sends that exhausted every attempt
  std::uint64_t cold_starts = 0;  ///< migrations that degraded gracefully
  std::uint64_t duplicates_suppressed = 0;  ///< re-delivered seqs ignored
  std::uint64_t corrupt_dropped = 0;  ///< undecodable datagrams discarded
  std::uint64_t stale_acks = 0;  ///< acks that outlived their retry loop
  /// Compact home-map footprint (FlatLruMap::memory_bytes()).
  std::uint64_t home_map_bytes = 0;
  std::uint64_t home_clients = 0;
};

class FleetCoordinator {
 public:
  explicit FleetCoordinator(FleetConfig config);
  ~FleetCoordinator();

  FleetCoordinator(const FleetCoordinator&) = delete;
  FleetCoordinator& operator=(const FleetCoordinator&) = delete;

  std::size_t num_sites() const { return sites_.size(); }
  std::size_t aps_per_site() const { return config_.spec.site.num_aps; }
  std::size_t total_aps() const { return num_sites() * aps_per_site(); }
  const FleetConfig& config() const { return config_; }
  /// The idle horizon actually applied to every site's spoof detector.
  std::size_t resolved_spoof_idle_frames() const { return idle_frames_; }

  /// Route one chunk to `site`'s dataplane (local AP index).
  void submit(std::uint32_t site, std::size_t local_ap, CMat chunk);
  /// Same, addressed by fleet-global AP id (site = id / aps_per_site).
  void submit_global(std::uint32_t global_ap, CMat chunk);
  /// One time-aligned chunk per AP of `site`.
  void submit_round(std::uint32_t site, std::vector<CMat> chunks);

  /// A client (re)associated at `dest_site`. First association homes the
  /// MAC there; a cross-site move quiesces both dataplanes, exports the
  /// source's per-MAC state, ships it over the transport (retrying under
  /// the reliability layer; cold-starting the destination if every
  /// attempt times out), and forgets it at the source. Records a kAssoc
  /// on migrations and first associations. Safe to call concurrently
  /// for distinct MACs; same-MAC calls serialize on a striped lock.
  HandoffResult notify_association(const MacAddress& mac,
                                   std::uint32_t dest_site);

  /// Import an externally produced FleetWire kClientState message (the
  /// receive side of a handoff; also the test/fuzz surface). The
  /// destination session must be quiescent. On kApplied the home map
  /// advances to (dest, generation) and a kAssoc is recorded.
  FleetImportOutcome apply_handoff(const ByteStream& wire);

  /// Drain every site's dataplane and record ONE fleet-wide drain
  /// boundary (per-site drain records are suppressed via
  /// EngineConfig::capture_drains).
  void drain_all();
  /// drain_all(), then stop every site's pipeline threads. Idempotent.
  void close();

  EngineSession& session(std::size_t site) { return *sites_[site].session; }
  const EngineSession& session(std::size_t site) const {
    return *sites_[site].session;
  }
  /// The site's constructed deployment (testbed, APs, optional sim).
  BuiltDeployment& deployment(std::size_t site) {
    return *sites_[site].deployment;
  }
  /// Decisions this site has emitted, in that site's sequence order.
  /// Exact when the site is quiescent (after drain_all()/handoff).
  const std::vector<EngineDecision>& decisions(std::size_t site) const {
    return sites_[site].decisions;
  }
  std::size_t total_decisions() const;

  std::optional<std::uint32_t> home_site(const MacAddress& mac) const;
  std::optional<std::uint64_t> generation_of(const MacAddress& mac) const;
  /// Snapshot of the counters (copied under the state lock).
  FleetStats stats() const;
  /// Channel-side counters; zeros when no fault plan is active.
  TransportStats transport_stats() const;

 private:
  struct Site {
    std::unique_ptr<BuiltDeployment> deployment;
    std::vector<EngineDecision> decisions;
    /// Serializes wait_idle/export/import/forget on this site's session
    /// (wait_idle bumps non-atomic session counters, and the fleet hooks
    /// are quiescent-use-only).
    std::unique_ptr<std::mutex> mu;
    /// Declared last: the session's sink writes into `decisions` from
    /// the sequencer thread, so the session (whose destructor joins
    /// that thread) must be destroyed first.
    std::unique_ptr<EngineSession> session;
  };
  struct Home {
    std::uint32_t site = 0;
    std::uint64_t generation = 0;
  };

  std::mutex& stripe_for(const MacAddress& mac);
  /// The import path shared by apply_handoff and the transport's
  /// receive side. Takes state_mu_ for the whole check-import-update
  /// sequence (nesting the site mutex inside), so two applies for the
  /// same MAC cannot interleave between guard check and home update.
  FleetImportOutcome apply_wire(const ByteStream& wire);
  void record_assoc(std::uint32_t site, std::uint64_t generation,
                    const MacAddress& mac);
  void record_transport(const MacAddress& mac, std::uint64_t generation,
                        HandoffOutcome outcome, std::uint32_t attempts);
  /// Refresh home_map_bytes/home_clients; call with state_mu_ held.
  void refresh_home_footprint();

  FleetConfig config_;
  std::size_t idle_frames_ = 0;
  std::vector<Site> sites_;

  /// Per-MAC serialization for the control plane: same-MAC handoffs are
  /// mutually exclusive end-to-end, distinct MACs proceed in parallel.
  std::array<std::mutex, 64> stripes_;
  /// Guards home_ and stats_. Lock order: stripe -> transport_mu_ ->
  /// state_mu_ -> site mu. Never the reverse.
  mutable std::mutex state_mu_;
  /// Serializes the wire phase: the link's virtual clock and seq space
  /// are shared, so one handoff pumps the channel at a time.
  std::mutex transport_mu_;

  FlatLruMap<MacAddress, Home> home_;
  FleetStats stats_;

  // Transport stack, bottom-up. The link's receive callback points back
  // into this object, so the stack lives (and dies) with it.
  LoopbackTransport loopback_;
  std::unique_ptr<FaultyTransport> faulty_;  ///< only under an active plan
  std::unique_ptr<ReliableLink> link_;

  bool closed_ = false;
};

}  // namespace sa
