// The fleet tier: one coordinator over N sites, each a full SecureAngle
// deployment (its own APs, its own EngineSession dataplane), with
// cross-site client handoff over FleetWire.
//
//   FleetCoordinator
//     ├─ site 0: EngineSession ── APs [0, m)          (fleet-global ids)
//     ├─ site 1: EngineSession ── APs [m, 2m)
//     ├─ ...
//     └─ home map: MAC -> (home site, handoff generation)
//
// Chunks are routed to the owning site (submit by (site, local AP) or
// fleet-global AP id). When a client's traffic migrates sites —
// notify_association(mac, dest) — the source site's per-MAC state is
// exported (tracker accumulators, ACL verdict, rate residue), shipped
// as one FleetWire kClientState message, and imported into the
// destination's compact substrate: the tracker lands in the shard
// owner's FlatLruMap + prefilter with a fresh timer-wheel idle lease,
// the rate residue is re-armed under the documented window-restart
// rule. The source then forgets the client (keeping its ACL entry, so
// late frames are judged by signature — not membership).
//
// Handoff state machine per MAC:
//
//   (unknown) --assoc--> HOME(s, g=1)
//   HOME(s, g) --assoc to s--> HOME(s, g)            [no-op, no record]
//   HOME(s, g) --assoc to d--> quiesce s,d; export; FleetWire;
//                              import at d --> HOME(d, g+1)   [kAssoc]
//   import with generation <= known g  --> rejected kStale
//
// The generation guard makes handoff idempotent and replay-safe: a
// delayed, duplicated, or replayed FleetWire message can never clobber
// fresher local state.
//
// Quiescence: handoff import/export reaches into per-worker policy
// state, so notify_association first brings the source and destination
// dataplanes to wait_idle() (every formable round decided — no flush
// pass, so receiver state is untouched). apply_handoff() on an
// externally produced message requires the same: call it only with the
// target site idle. The coordinator itself is a control-plane object:
// one driving thread, like EngineSession::drain.
//
// Capture: with a CaptureWriter, the fleet records one version-2 SACP
// file — chunk records carry fleet-global AP ids, decisions are
// site-tagged (kSiteDecision), handoffs are kAssoc records, and
// drain_all() records a single fleet-wide drain boundary.
// replay_fleet_capture (sa/fleet/replay.hpp) rebuilds the fleet from
// the header and re-issues everything deterministically.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sa/engine/session.hpp"
#include "sa/fleet/wire.hpp"
#include "sa/sim/deployment.hpp"

namespace sa {

class CaptureWriter;

/// A fleet of structurally identical sites built from one per-site
/// template. Site i is built from `site` with seed
/// `site.seed + i * site_seed_stride` — stride 0 makes every site
/// bit-identical (the handoff-oracle configuration), any other stride
/// gives each site its own impairment draws.
struct FleetSpec {
  DeploymentSpec site;
  std::size_t num_sites = 2;
  std::uint64_t site_seed_stride = 1;
};

/// Per-site spec for site `index` (the seed progression above).
DeploymentSpec site_spec(const FleetSpec& spec, std::size_t index);

/// Fleet spec -> version-2 capture header: the per-site sa.* keys plus
/// "sa.fleet.sites" / "sa.fleet.seed_stride"; num_aps is fleet-global.
CaptureHeader fleet_header_for(const FleetSpec& spec);

/// Header -> fleet spec; nullopt when the fleet keys are missing or the
/// per-site deployment does not round-trip.
std::optional<FleetSpec> fleet_from_header(const CaptureHeader& header);

struct FleetConfig {
  FleetSpec spec;
  /// Dataplane worker threads per site session.
  std::size_t threads_per_site = 1;
  /// Build each site's uplink channel simulation (scenario drivers need
  /// it; replay does not).
  bool with_sim = false;
  /// Optional shared recording tap (one version-2 capture for the whole
  /// fleet), borrowed.
  CaptureWriter* capture = nullptr;
  /// Spoof-tracker idle horizon per site. nullopt (default) derives it
  /// from the roaming dwell-time distribution — at the fleet tier idle
  /// expiry is ON by default, because a roaming population constantly
  /// strands tracker state at sites clients have left. Explicit 0
  /// disables expiry (the single-session-oracle configuration).
  std::optional<std::size_t> spoof_idle_frames;
};

enum class FleetImportOutcome {
  kApplied,    ///< imported; the home map now points at the destination
  kStale,      ///< generation not newer than the local view — rejected
  kMalformed,  ///< FleetWire decode failed — rejected
  kBadSite,    ///< destination site out of range — rejected
};

const char* to_string(FleetImportOutcome outcome);

/// What notify_association did.
struct HandoffResult {
  FleetImportOutcome outcome = FleetImportOutcome::kApplied;
  /// True when state actually moved between sites (false for a first
  /// association or a same-site re-association).
  bool migrated = false;
  std::uint32_t source_site = 0;
  std::uint32_t dest_site = 0;
  std::uint64_t generation = 0;
  /// The encoded FleetWire message of a migration (empty otherwise) —
  /// what went "over the wire", for tests and tooling.
  ByteStream wire;
};

struct FleetStats {
  std::uint64_t associations = 0;  ///< notify_association calls
  std::uint64_t handoffs_applied = 0;
  std::uint64_t handoffs_stale = 0;
  std::uint64_t handoffs_malformed = 0;
  std::uint64_t handoffs_bad_site = 0;
  std::uint64_t drains = 0;
};

class FleetCoordinator {
 public:
  explicit FleetCoordinator(FleetConfig config);
  ~FleetCoordinator();

  FleetCoordinator(const FleetCoordinator&) = delete;
  FleetCoordinator& operator=(const FleetCoordinator&) = delete;

  std::size_t num_sites() const { return sites_.size(); }
  std::size_t aps_per_site() const { return config_.spec.site.num_aps; }
  std::size_t total_aps() const { return num_sites() * aps_per_site(); }
  const FleetConfig& config() const { return config_; }
  /// The idle horizon actually applied to every site's spoof detector.
  std::size_t resolved_spoof_idle_frames() const { return idle_frames_; }

  /// Route one chunk to `site`'s dataplane (local AP index).
  void submit(std::uint32_t site, std::size_t local_ap, CMat chunk);
  /// Same, addressed by fleet-global AP id (site = id / aps_per_site).
  void submit_global(std::uint32_t global_ap, CMat chunk);
  /// One time-aligned chunk per AP of `site`.
  void submit_round(std::uint32_t site, std::vector<CMat> chunks);

  /// A client (re)associated at `dest_site`. First association homes the
  /// MAC there; a cross-site move quiesces both dataplanes, exports the
  /// source's per-MAC state, ships it over FleetWire, imports it at the
  /// destination under the generation guard, and forgets it at the
  /// source. Records a kAssoc on migrations and first associations.
  HandoffResult notify_association(const MacAddress& mac,
                                   std::uint32_t dest_site);

  /// Import an externally produced FleetWire message (the receive side
  /// of notify_association; also the test/fuzz surface). The
  /// destination session must be quiescent. On kApplied the home map
  /// advances to (dest, generation) and a kAssoc is recorded.
  FleetImportOutcome apply_handoff(const ByteStream& wire);

  /// Drain every site's dataplane and record ONE fleet-wide drain
  /// boundary (per-site drain records are suppressed via
  /// EngineConfig::capture_drains).
  void drain_all();
  /// drain_all(), then stop every site's pipeline threads. Idempotent.
  void close();

  EngineSession& session(std::size_t site) { return *sites_[site].session; }
  const EngineSession& session(std::size_t site) const {
    return *sites_[site].session;
  }
  /// The site's constructed deployment (testbed, APs, optional sim).
  BuiltDeployment& deployment(std::size_t site) {
    return *sites_[site].deployment;
  }
  /// Decisions this site has emitted, in that site's sequence order.
  /// Exact when the site is quiescent (after drain_all()/handoff).
  const std::vector<EngineDecision>& decisions(std::size_t site) const {
    return sites_[site].decisions;
  }
  std::size_t total_decisions() const;

  std::optional<std::uint32_t> home_site(const MacAddress& mac) const;
  std::optional<std::uint64_t> generation_of(const MacAddress& mac) const;
  const FleetStats& stats() const { return stats_; }

 private:
  struct Site {
    std::unique_ptr<BuiltDeployment> deployment;
    std::vector<EngineDecision> decisions;
    /// Declared last: the session's sink writes into `decisions` from
    /// the sequencer thread, so the session (whose destructor joins
    /// that thread) must be destroyed first.
    std::unique_ptr<EngineSession> session;
  };
  struct Home {
    std::uint32_t site = 0;
    std::uint64_t generation = 0;
  };

  void record_assoc(std::uint32_t site, std::uint64_t generation,
                    const MacAddress& mac);

  FleetConfig config_;
  std::size_t idle_frames_ = 0;
  std::vector<Site> sites_;
  std::unordered_map<MacAddress, Home> home_;
  FleetStats stats_;
  bool closed_ = false;
};

}  // namespace sa
