// Uplink transmission harness: glues the floorplan, ray tracer, temporal
// fading, and multi-antenna channel simulator into "client at position P
// transmits waveform W; what does each AP's antenna array sample?"
//
// Links (one per transmitter-position/AP pair) cache their traced paths
// and carry persistent fading state, so repeated transmissions from the
// same client evolve the channel the way Fig. 6's day-long trace does.
#pragma once

#include <vector>

#include "sa/channel/fading.hpp"
#include "sa/channel/simulator.hpp"
#include "sa/testbed/office.hpp"

namespace sa {

/// Transmit-side antenna pattern (the attacker models of the paper's
/// threat model: omnidirectional, directional — as in the TJ Maxx attack
/// — or an antenna array).
struct TxPattern {
  double aim_azimuth_deg = 0.0;    ///< boresight world azimuth
  double beamwidth_deg = 360.0;    ///< 360 = omni
  double boresight_gain_db = 0.0;
  double backlobe_floor_db = -25.0;
  double tx_power_db = 0.0;        ///< overall power offset

  /// Gain applied to a path leaving at `departure_bearing_deg`.
  double gain_db(double departure_bearing_deg) const;
};

struct UplinkConfig {
  ChannelConfig channel;
  RayTracerConfig tracer;
  FadingConfig fading;
};

class UplinkSimulation {
 public:
  UplinkSimulation(const OfficeTestbed& testbed, UplinkConfig config, Rng& rng);

  /// Register an AP array placement; returns its index.
  std::size_t add_ap(ArrayPlacement placement);
  std::size_t num_aps() const { return aps_.size(); }
  const ArrayPlacement& ap(std::size_t i) const;

  /// Advance global time (fading on every cached link) by dt seconds.
  void advance(double dt_s);

  /// Transmit `waveform` from `from`; returns one ideal per-antenna
  /// sample matrix per registered AP (rows = antennas). `pattern`
  /// shapes the transmit gain per departure bearing (nullptr = omni).
  std::vector<CMat> transmit(Vec2 from, const CVec& waveform,
                             const TxPattern* pattern = nullptr);

  /// Traced (un-faded) paths for a link, for inspection.
  const std::vector<PropagationPath>& paths(Vec2 from, std::size_t ap_index);

  const OfficeTestbed& testbed() const { return testbed_; }
  const UplinkConfig& config() const { return config_; }

 private:
  struct Link {
    Vec2 from;
    std::size_t ap_index = 0;
    std::vector<PropagationPath> paths;
    PathFading fading;
  };
  Link& link_for(Vec2 from, std::size_t ap_index);

  OfficeTestbed testbed_;
  UplinkConfig config_;
  RayTracer tracer_;
  ChannelSimulator simulator_;
  std::vector<ArrayPlacement> aps_;
  std::vector<Link> links_;
  Rng rng_;
};

}  // namespace sa
