// The Figure-4 office testbed, reconstructed.
//
// The paper evaluates against 20 Soekris clients spread around a WARP AP
// in an office: twelve clients ring the AP (labelled with compass
// bearings in the figure), the rest sit in neighbouring rooms; a large
// cement pillar blocks client 11 completely and client 12 partially, and
// client 6 is far away with strong multipath. This module recreates that
// layout as a concrete floorplan with the same qualitative features:
//
//   * a 24 m x 16 m building (exterior concrete walls),
//   * interior partition walls with door gaps,
//   * an RF-lossy cement pillar between the AP and clients 11/12,
//   * clients 1..12 on a ring around the AP (30-degree spacing, like the
//     figure's clock layout), clients 13..20 scattered in/out of the
//     AP's room,
//   * extra AP mounting points for multi-AP localization experiments,
//   * the building outline as the natural virtual-fence polygon and a
//     set of outdoor attacker positions ("physically located off site").
#pragma once

#include <vector>

#include "sa/channel/floorplan.hpp"
#include "sa/common/geometry.hpp"

namespace sa {

struct TestbedClient {
  int id = 0;
  Vec2 position;
  const char* note = "";
};

class OfficeTestbed {
 public:
  /// The reconstructed Figure-4 environment.
  static OfficeTestbed figure4();

  const Floorplan& floorplan() const { return floorplan_; }
  Vec2 ap_position() const { return ap_position_; }

  const std::vector<TestbedClient>& clients() const { return clients_; }
  /// Client by paper id (1..20); throws InvalidArgument for unknown ids.
  const TestbedClient& client(int id) const;

  /// Ground-truth world azimuth (deg) from the main AP to a client.
  double ground_truth_bearing_deg(int id) const;

  /// Building outline = the paper's "virtual fence" around the office.
  const Polygon& building_outline() const { return outline_; }

  /// Additional AP mounting points (multi-AP localization / fence).
  const std::vector<Vec2>& extra_ap_positions() const { return extra_aps_; }

  /// `n` AP mounting positions for dense deployments, best coverage
  /// first: the four surveyed spots (main AP, then the NW/NE/SW extra
  /// mounts in coverage order), then deterministic positions along an
  /// inset ring of the building outline.
  std::vector<Vec2> ap_mounting_points(std::size_t n) const;

  /// Off-site positions for the fence/attacker experiments (outside the
  /// building: parking lot, street).
  const std::vector<Vec2>& outdoor_positions() const { return outdoor_; }

 private:
  Floorplan floorplan_;
  Vec2 ap_position_;
  std::vector<TestbedClient> clients_;
  Polygon outline_;
  std::vector<Vec2> extra_aps_;
  std::vector<Vec2> outdoor_;
};

}  // namespace sa
