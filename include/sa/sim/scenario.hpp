// Scenario generator: deterministic traffic workloads over the Figure-4
// office, from the benign baseline to adversarial and overload cases.
// A generator is a pull-based stream of TrafficEvents — who transmits,
// from where, with which MAC and transmit pattern, and how much
// simulated time passed since the previous event. The runner turns each
// event into a waveform and pushes it through the engine; every draw
// comes from the generator's own Rng, so a (scenario, seed) pair always
// produces the same event stream.
//
// Scenarios:
//   office         the classic streaming mix: Poisson arrivals, 80%
//                  legitimate clients, 10% insider MAC spoofing, 10%
//                  off-site amplified transmitter.
//   mmpp           the office mix under bursty arrivals: a two-state
//                  Markov-modulated Poisson process alternating calm and
//                  burst phases (exponential holding times).
//   flash-crowd    the office mix with a rate-multiplier window — every
//                  client piles on at once mid-run, then calm returns.
//   mobile         walking clients: a subset of clients move along
//                  straight quantized paths that exit the building
//                  mid-stream, so the fence flips on them frame by
//                  frame. Background office traffic continues.
//   adaptive-spoof the insider adapts: every `adapt_every` forged frames
//                  it moves closer to its victim's position, and against
//                  high-resolution estimators it also aims a directional
//                  antenna at the APs' centroid (the TJ-Maxx-style
//                  directional attacker, paper §2.2).
//   flood          the office mix plus a flooding attacker: an
//                  independent high-rate Poisson process inside a time
//                  window, transmitting from a legitimate client's
//                  position with that client's MAC — every signature
//                  check passes, so only RateLimitPolicy can stop it.
//   churn          a rotating MAC population with Zipf re-contact: a
//                  pool of churn_population active MACs, each event
//                  drawn Zipf(churn_zipf_exponent) over the pool (a few
//                  hot talkers, a long cold tail), while an independent
//                  process retires pool slots and mints fresh MACs at
//                  churn_rotate_per_s — the MAC-rotation workload that
//                  exercises per-MAC LRU eviction, prefilter rebuild
//                  epochs, and timer-wheel expiry in the engine's
//                  tracked state.
//   roaming        the fleet-tier workload: roaming_walkers clients
//                  wander a fleet of roaming_sites sites. Each walker
//                  dwells at a site for an exponential
//                  Exp(1/roaming_dwell_s) holding time, then re-draws
//                  its site Zipf(roaming_zipf_exponent)-skewed over the
//                  fleet (site 0 is everyone's favorite — the lobby).
//                  Every event carries the walker's current site, and
//                  site_changed marks the first frame after a move —
//                  the cue for a cross-site handoff.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sa/aoa/estimator.hpp"
#include "sa/common/rng.hpp"
#include "sa/mac/address.hpp"
#include "sa/testbed/uplink.hpp"

namespace sa {

enum class ScenarioKind {
  kOffice,
  kMmpp,
  kFlashCrowd,
  kMobile,
  kAdaptiveSpoof,
  kFlood,
  kChurn,
  kRoaming,
};

const char* to_string(ScenarioKind kind);
std::optional<ScenarioKind> scenario_from_string(std::string_view name);
/// Comma-separated list of valid scenario names, for usage text.
const char* scenario_names();

struct ScenarioConfig {
  ScenarioKind kind = ScenarioKind::kOffice;
  /// Mean frame arrivals/sec of the base process (the calm rate for
  /// mmpp, the off-window rate for flash-crowd).
  double arrival_rate = 40.0;
  /// Simulated horizon; the generator stops emitting past it.
  double duration_s = 2.0;

  // mmpp
  double burst_multiplier = 8.0;  ///< burst rate = multiplier * base
  double calm_hold_s = 0.5;       ///< mean calm-state holding time
  double burst_hold_s = 0.1;      ///< mean burst-state holding time

  // flash-crowd
  double flash_start_s = 0.5;
  double flash_len_s = 0.5;
  double flash_multiplier = 10.0;

  // mobile
  std::size_t mobile_clients = 2;   ///< walkers (clients 1, 2, ...)
  /// Walkers cross the fence at this fraction of the duration.
  double mobile_cross_at = 0.5;

  // adaptive-spoof
  std::size_t adapt_every = 4;  ///< forged frames between adaptations
  int spoof_victim_id = 2;      ///< client whose MAC is forged
  int spoof_source_id = 17;     ///< client position the insider starts at

  // flood
  double flood_rate = 400.0;  ///< attacker frames/sec inside the window
  double flood_start_s = 0.5;
  double flood_len_s = 0.5;
  int flood_client_id = 1;  ///< position + MAC the flooder borrows

  // churn
  std::size_t churn_population = 64;  ///< concurrently active MACs
  double churn_zipf_exponent = 1.1;   ///< re-contact skew over the pool
  double churn_rotate_per_s = 50.0;   ///< mean slot retirements/sec

  // roaming (fleet tier)
  std::size_t roaming_sites = 4;      ///< sites walkers roam across
  std::size_t roaming_walkers = 8;    ///< walkers (clients 1, 2, ...)
  double roaming_dwell_s = 0.4;       ///< mean per-site dwell time
  double roaming_zipf_exponent = 0.9; ///< site-affinity skew (0 = uniform)
  /// Transport fault plan for the handoff channel (FaultPlan string,
  /// sa/fleet/transport.hpp), empty = perfect channel. The generator
  /// itself ignores it — it rides here so one scenario description
  /// names the whole lossy-roaming workload (the driver parses it into
  /// FleetConfig::fault_plan, and describe() echoes it).
  std::string roaming_fault_plan;
};

/// The fleet tier's default spoof-tracker idle horizon, derived from the
/// roaming dwell-time distribution: eight mean dwells' worth of frames
/// at the configured arrival rate (ceil(8 * dwell * rate); 128 with the
/// defaults). Shorter would expire a walker's tracker while it is merely
/// visiting another site — forcing retraining on return, which is
/// exactly the window a spoofer wants; much longer and abandoned state
/// from departed clients lingers across the whole fleet.
std::uint64_t roaming_idle_horizon_frames(const ScenarioConfig& config);

struct TrafficEvent {
  enum class Kind { kLegit, kSpoof, kOffsite, kFlood };
  Kind kind = Kind::kLegit;
  double time_s = 0.0;  ///< absolute simulated arrival time
  double dt_s = 0.0;    ///< elapsed since the previous event
  Vec2 from;
  MacAddress mac;
  /// Transmit-side antenna pattern; nullopt = omni.
  std::optional<TxPattern> pattern;
  /// Roaming: the site this frame arrives at, and whether it is the
  /// walker's first frame since moving there (the handoff cue). Always
  /// 0 / false for single-site scenarios.
  std::uint32_t site = 0;
  bool site_changed = false;
};

class ScenarioGenerator {
 public:
  /// `estimator` tells the adaptive spoofer what it is attacking (it
  /// only bothers with a directional antenna against high-resolution
  /// backends). The testbed is copied; the Rng is the generator's own.
  ScenarioGenerator(const OfficeTestbed& testbed, ScenarioConfig config,
                    Rng rng, AoaBackend estimator);

  /// The next event, or nullopt once the horizon is reached.
  std::optional<TrafficEvent> next();

  /// Full scenario configuration on one line (only the knobs the active
  /// scenario uses), for report headers and capture metadata.
  std::string describe() const;

  const ScenarioConfig& config() const { return config_; }

 private:
  double current_rate();                  ///< arrival rate at now_
  TrafficEvent make_base_event(double t); ///< the office mix
  TrafficEvent make_mobile_event(double t);
  TrafficEvent make_adaptive_event(double t);
  TrafficEvent make_churn_event(double t);
  TrafficEvent make_roaming_event(double t);

  OfficeTestbed testbed_;
  ScenarioConfig config_;
  Rng rng_;
  AoaBackend estimator_;

  double now_ = 0.0;
  // mmpp state
  bool bursting_ = false;
  double state_until_ = 0.0;
  // flood state: next arrival of the independent attacker process
  double flood_next_ = 0.0;
  // adaptive-spoof state
  std::size_t spoof_sent_ = 0;
  Vec2 spoof_pos_;
  Vec2 victim_pos_;
  Vec2 ap_centroid_;
  // churn state: the active MAC pool, the Zipf CDF over pool ranks,
  // the next fresh MAC index, and the next slot-rotation time
  std::vector<std::uint32_t> churn_mac_;
  std::vector<double> churn_cdf_;
  std::uint32_t churn_next_mac_ = 0;
  double churn_rotate_next_ = 0.0;
  // roaming state: each walker's current site, when its dwell there
  // ends, and the Zipf CDF over sites
  std::vector<std::uint32_t> roam_site_;
  std::vector<double> roam_until_;
  std::vector<double> roam_cdf_;
};

}  // namespace sa
