// Shared deployment builder for the scenario tools: one spec describing
// a Figure-4 office deployment (seed, APs, array, estimator, subbands,
// policy chain), one builder that constructs it with a FIXED RNG draw
// order, and a round-trip between the spec and a SACP capture header's
// metadata map.
//
// The draw-order contract is what makes record/replay work: every
// stochastic part of a deployment (per-AP array impairments, channel
// state) is a pure function of the seed *and the construction order*.
// build_deployment() therefore always constructs the APs first, in
// mounting-point order, from Rng(seed) — and only then touches the
// uplink simulation (whose constructor consumes a draw). A replay run
// passes with_sim = false: the AP construction draws are identical, and
// the simulation (which replay never uses) is simply skipped.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sa/capture/format.hpp"
#include "sa/engine/deployment.hpp"
#include "sa/testbed/uplink.hpp"

namespace sa {

/// Everything needed to rebuild a deployment bit-exactly.
struct DeploymentSpec {
  std::uint64_t seed = 7;
  std::size_t num_aps = 3;
  /// 8 = the paper's octagon; any other count = a uniform circular
  /// array of that many antennas (radius 6 cm).
  std::size_t antennas = 8;
  AoaBackend estimator = AoaBackend::kMusic;
  std::size_t subbands = 1;
  BandFusion band_fusion = BandFusion::kUniform;
  std::vector<PolicyKind> policies = default_policy_chain();
};

/// Spec -> capture header (num_aps/seed as header fields, the rest as
/// metadata under "sa.*" keys).
CaptureHeader capture_header_for(const DeploymentSpec& spec);

/// Header -> spec; nullopt when a required "sa.*" key is missing or
/// unparsable (a capture from some other producer).
std::optional<DeploymentSpec> deployment_from_header(
    const CaptureHeader& header);

/// "seed=7 aps=3 antennas=8 estimator=music ..." — the full spec on one
/// line, for report headers.
std::string describe(const DeploymentSpec& spec);

/// A constructed deployment. The engine config carries the fence
/// boundary, the testbed-client ACL, and the spec's policy chain;
/// callers set num_threads / capture themselves.
struct BuiltDeployment {
  OfficeTestbed testbed;
  std::vector<std::unique_ptr<AccessPoint>> aps;
  std::vector<AccessPoint*> ap_ptrs;
  EngineConfig engine;
  /// Present iff built with with_sim = true.
  std::unique_ptr<UplinkSimulation> sim;
  /// Traffic randomness, forked after every construction draw — hand it
  /// to the scenario generator.
  Rng traffic_rng;
};

/// Build the deployment `spec` describes. `with_sim` = false skips the
/// uplink channel simulation (replay needs only the APs); either way
/// the AP construction draws are identical.
BuiltDeployment build_deployment(const DeploymentSpec& spec, bool with_sim);

}  // namespace sa
