// AoA signatures (paper §2.1): "The combined direct path and reflection
// path AoAs form the unique signature for each client. ... We use the
// pseudospectrum as our client signature."
#pragma once

#include "sa/aoa/pseudospectrum.hpp"

namespace sa {

struct SignatureConfig {
  double peak_min_prominence_db = 1.0;
  double peak_min_separation_deg = 5.0;
  std::size_t max_peaks = 6;
};

class AoaSignature {
 public:
  AoaSignature() = default;

  /// Build a signature from a pseudospectrum: normalize, extract the peak
  /// set, record the strongest peak as the direct-path bearing estimate.
  static AoaSignature from_spectrum(Pseudospectrum spectrum,
                                    const SignatureConfig& config = {});

  bool valid() const { return spectrum_.size() > 0; }
  const Pseudospectrum& spectrum() const { return spectrum_; }
  const std::vector<SpectrumPeak>& peaks() const { return peaks_; }

  /// Bearing of the strongest peak — "the direct path bearing corresponds
  /// to the highest peak in the pseudospectrum most of the time" (§3.1).
  double direct_bearing_deg() const { return direct_bearing_deg_; }

  /// Bearings of the non-strongest peaks (reflection paths).
  std::vector<double> reflection_bearings_deg() const;

 private:
  Pseudospectrum spectrum_;
  std::vector<SpectrumPeak> peaks_;
  double direct_bearing_deg_ = 0.0;
};

}  // namespace sa
