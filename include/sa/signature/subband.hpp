// Wideband (per-subband) AoA signatures. OFDM gives every packet
// frequency diversity that a single narrowband covariance throws away:
// splitting the capture into K subbands yields K pseudospectra whose
// multipath structure shifts with wavelength, so an attacker must forge
// the signature at every subband at once. A SubbandSignature holds the
// per-band signatures (in ascending subband-frequency order) and is the
// unit that metrics, serialization, trackers and the spoof detectors
// compare subband-wise; with one band it degenerates to exactly the
// paper's single-band signature.
#pragma once

#include <vector>

#include "sa/signature/signature.hpp"

namespace sa {

class SubbandSignature {
 public:
  SubbandSignature() = default;
  /// Bands in ascending subband-frequency order; all must be valid and
  /// share one scan grid (same size and wrap behavior).
  explicit SubbandSignature(std::vector<AoaSignature> bands);
  /// The single-band (K = 1) degenerate case.
  static SubbandSignature single(AoaSignature band);

  bool valid() const { return !bands_.empty(); }
  std::size_t num_bands() const { return bands_.size(); }
  const std::vector<AoaSignature>& bands() const { return bands_; }
  const AoaSignature& band(std::size_t i) const;

  /// Collapse to one full-band signature: the elementwise mean of the
  /// normalized per-band spectra (bands share one grid). With one band
  /// this returns that band unchanged.
  AoaSignature fuse(const SignatureConfig& config = {}) const;

  /// Weighted variant: the elementwise `weights`-weighted mean of the
  /// normalized per-band spectra (the SNR-aware fusion feeds per-band
  /// noise-eigenvalue weights here). `weights` must have one
  /// non-negative entry per band with a positive sum. With one band this
  /// returns that band unchanged regardless of its weight.
  AoaSignature fuse(const SignatureConfig& config,
                    const std::vector<double>& weights) const;

 private:
  std::vector<AoaSignature> bands_;
};

}  // namespace sa
