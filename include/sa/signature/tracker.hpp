// Signature tracking (paper §2.3.2): "Since Scl changes when the client
// or nearby obstacles move, the AP needs to track and update Scl ...
// using uplink traffic that the clients send to the AP."
//
// The tracker keeps an exponentially weighted reference spectrum per
// client. Each accepted observation nudges the reference; observations
// that fail the match threshold are counted as anomalies and do NOT
// update the reference (otherwise an attacker could walk the signature).
#pragma once

#include <optional>

#include "sa/signature/metrics.hpp"
#include "sa/signature/signature.hpp"

namespace sa {

struct TrackerConfig {
  double ewma_alpha = 0.1;        ///< weight of a new accepted observation
  double match_threshold = 0.75;  ///< match_score() acceptance level
  /// Number of initial observations averaged to form the reference
  /// ("initial training stage", §2.3.2).
  std::size_t training_packets = 5;
  MatchWeights weights;
  SignatureConfig signature_config;
};

enum class TrackerVerdict {
  kTraining,  ///< still collecting the initial reference
  kMatch,     ///< accepted; reference updated
  kMismatch,  ///< rejected; possible spoof/injection
};

struct TrackerDecision {
  TrackerVerdict verdict = TrackerVerdict::kTraining;
  double score = 0.0;  ///< match_score vs the current reference (0 in training)
};

class SignatureTracker {
 public:
  explicit SignatureTracker(TrackerConfig config = {});

  /// Feed one observed signature; returns the verdict against the
  /// tracked reference.
  TrackerDecision observe(const AoaSignature& observed);

  bool trained() const { return trained_; }
  /// Current reference; nullopt before training completes.
  std::optional<AoaSignature> reference() const;

  std::size_t observations() const { return observations_; }
  std::size_t mismatches() const { return mismatches_; }

  /// Drop all state and retrain from scratch.
  void reset();

  const TrackerConfig& config() const { return config_; }

 private:
  void blend_into_reference(const AoaSignature& observed, double alpha);

  TrackerConfig config_;
  bool trained_ = false;
  std::size_t training_seen_ = 0;
  std::vector<double> ref_values_;   // accumulating linear spectrum
  std::vector<double> ref_angles_;
  bool ref_wraps_ = false;
  std::size_t observations_ = 0;
  std::size_t mismatches_ = 0;
};

}  // namespace sa
