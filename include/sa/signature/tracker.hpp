// Signature tracking (paper §2.3.2): "Since Scl changes when the client
// or nearby obstacles move, the AP needs to track and update Scl ...
// using uplink traffic that the clients send to the AP."
//
// The tracker keeps an exponentially weighted reference spectrum per
// client. Each accepted observation nudges the reference; observations
// that fail the match threshold are counted as anomalies and do NOT
// update the reference (otherwise an attacker could walk the signature).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sa/signature/metrics.hpp"
#include "sa/signature/signature.hpp"

namespace sa {

struct TrackerConfig {
  double ewma_alpha = 0.1;        ///< weight of a new accepted observation
  double match_threshold = 0.75;  ///< match_score() acceptance level
  /// Number of initial observations averaged to form the reference
  /// ("initial training stage", §2.3.2).
  std::size_t training_packets = 5;
  MatchWeights weights;
  SignatureConfig signature_config;
};

/// Portable image of a tracker's full learning state, for cross-site
/// handoff and persistence. It carries the RAW per-band accumulators
/// (the non-normalized EWMA spectra, with their exact angle grids), not
/// the materialized reference — restoring a snapshot must continue the
/// blend arithmetic bit-for-bit, and the SAA1/SAA2 signature wire cannot
/// do that (it re-derives the grid from start+step and re-normalizes).
struct TrackerSnapshot {
  bool trained = false;
  std::uint64_t training_seen = 0;
  std::uint64_t observations = 0;
  std::uint64_t mismatches = 0;
  /// One raw accumulator per subband, in ascending band order.
  struct Band {
    std::vector<double> angles_deg;
    std::vector<double> values;
    bool wraps = false;
  };
  std::vector<Band> bands;
};

enum class TrackerVerdict {
  kTraining,  ///< still collecting the initial reference
  kMatch,     ///< accepted; reference updated
  kMismatch,  ///< rejected; possible spoof/injection
};

struct TrackerDecision {
  TrackerVerdict verdict = TrackerVerdict::kTraining;
  double score = 0.0;  ///< match_score vs the current reference (0 in training)
};

class SignatureTracker {
 public:
  explicit SignatureTracker(TrackerConfig config = {});

  /// Feed one observed wideband signature; returns the verdict against
  /// the tracked per-band references (subband-wise mean match score). A
  /// band-count change after training is an automatic mismatch (an
  /// attacker cannot downgrade a reference to fewer bands); during
  /// training it restarts the accumulation with the new band count.
  TrackerDecision observe(const SubbandSignature& observed);
  /// Single-band compatibility overload.
  TrackerDecision observe(const AoaSignature& observed);

  bool trained() const { return trained_; }
  /// Current reference collapsed to one band (fused across subbands);
  /// nullopt before any observation.
  std::optional<AoaSignature> reference() const;
  /// Per-band reference spectra; nullopt before any observation.
  std::optional<SubbandSignature> reference_bands() const;

  std::size_t observations() const { return observations_; }
  std::size_t mismatches() const { return mismatches_; }

  /// Drop all state and retrain from scratch.
  void reset();

  /// Copy out the raw learning state. restore()ing the result into a
  /// tracker with the same config continues observing bit-for-bit where
  /// this tracker left off.
  TrackerSnapshot snapshot() const;
  /// Replace this tracker's state with `snap` (config is kept). The
  /// snapshot's bands must be structurally valid (equal-length finite
  /// grids); deserialize_tracker_snapshot() guarantees that for
  /// untrusted input.
  void restore(const TrackerSnapshot& snap);

  const TrackerConfig& config() const { return config_; }

 private:
  /// One band's accumulating linear reference spectrum.
  struct BandReference {
    std::vector<double> values;
    std::vector<double> angles;
    bool wraps = false;
  };

  void blend_into_reference(const SubbandSignature& observed, double alpha);
  /// The cached materialized reference, built on demand. Precondition:
  /// at least one observation (refs_ non-empty).
  const SubbandSignature& materialized_reference() const;

  TrackerConfig config_;
  bool trained_ = false;
  std::size_t training_seen_ = 0;
  std::vector<BandReference> refs_;  // one per subband
  /// Materialized reference signatures, rebuilt only after a blend —
  /// the per-observation hot path otherwise re-extracts K peak sets.
  mutable std::optional<SubbandSignature> ref_cache_;
  std::size_t observations_ = 0;
  std::size_t mismatches_ = 0;
};

}  // namespace sa
