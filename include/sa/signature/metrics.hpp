// Signature comparison metrics. The spoof-detection hypothesis (paper
// §2.3.2) is that a legitimate client's signature and an attacker's
// differ enough to discriminate; these metrics quantify "differ".
#pragma once

#include "sa/signature/signature.hpp"
#include "sa/signature/subband.hpp"

namespace sa {

/// Cosine similarity of the two (normalized, linear-power) spectra on a
/// shared grid; in [0, 1], 1 = identical shape.
double cosine_similarity(const AoaSignature& a, const AoaSignature& b);

/// RMS difference of the dB spectra, floored at `floor_db` (limits the
/// influence of deep nulls). Units: dB.
double spectral_distance_db(const AoaSignature& a, const AoaSignature& b,
                            double floor_db = -30.0);

/// Peak-set distance: greedily match peaks within `match_tolerance_deg`;
/// matched pairs contribute their angular distance (weighted by linear
/// peak power), unmatched peaks contribute the full tolerance. Normalized
/// to [0, 1] where 0 = identical peak sets.
double peak_set_distance(const AoaSignature& a, const AoaSignature& b,
                         double match_tolerance_deg = 10.0);

struct MatchWeights {
  double w_cosine = 0.6;
  double w_peaks = 0.4;
};

/// Combined match score in [0, 1]; 1 = same client, near 0 = different.
/// score = w_cosine * cosine + w_peaks * (1 - peak_set_distance).
double match_score(const AoaSignature& a, const AoaSignature& b,
                   const MatchWeights& weights = {});

// Subband-wise variants: both signatures must carry the same band count;
// each metric is the mean of its single-band value over corresponding
// bands, so with one band these agree exactly with the overloads above.
double cosine_similarity(const SubbandSignature& a, const SubbandSignature& b);
double spectral_distance_db(const SubbandSignature& a,
                            const SubbandSignature& b,
                            double floor_db = -30.0);
double peak_set_distance(const SubbandSignature& a, const SubbandSignature& b,
                         double match_tolerance_deg = 10.0);
double match_score(const SubbandSignature& a, const SubbandSignature& b,
                   const MatchWeights& weights = {});

}  // namespace sa
