// Signature persistence: serialize AoA signatures and per-MAC tracker
// state to a portable byte format so an AP can reboot (or hand over to a
// neighbour) without retraining every client — operationally necessary
// for the spoof-prevention application, since the "initial training
// stage" (§2.3.2) is exactly what an attacker would love to re-trigger.
//
// Format: little-endian, versioned, length-prefixed; doubles as IEEE-754
// bit patterns. No allocation tricks — safe to parse untrusted input
// (parse failures return nullopt, never UB).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sa/signature/signature.hpp"
#include "sa/signature/subband.hpp"

namespace sa {

using ByteStream = std::vector<std::uint8_t>;

/// Serialize a signature (spectrum grid + values + wrap flag) — the
/// legacy single-band "SAA1" format.
ByteStream serialize_signature(const AoaSignature& sig);

/// Parse a serialized signature; nullopt on malformed/truncated input.
std::optional<AoaSignature> deserialize_signature(const ByteStream& data);

/// Serialize a wideband signature. One band emits byte-identical legacy
/// "SAA1" output (wire compatibility with every pre-wideband consumer);
/// multiple bands emit the "SAA2" container: a band count followed by the
/// per-band spectra in ascending subband-frequency order.
ByteStream serialize_signature(const SubbandSignature& sig);

/// Parse either format ("SAA1" becomes a one-band signature); nullopt on
/// malformed/truncated input.
std::optional<SubbandSignature> deserialize_subband_signature(
    const ByteStream& data);

}  // namespace sa
