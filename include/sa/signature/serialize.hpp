// Signature persistence: serialize AoA signatures and per-MAC tracker
// state to a portable byte format so an AP can reboot (or hand over to a
// neighbour) without retraining every client — operationally necessary
// for the spoof-prevention application, since the "initial training
// stage" (§2.3.2) is exactly what an attacker would love to re-trigger.
//
// Format: little-endian, versioned, length-prefixed; doubles as IEEE-754
// bit patterns. No allocation tricks — safe to parse untrusted input
// (parse failures return nullopt, never UB).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sa/signature/signature.hpp"
#include "sa/signature/subband.hpp"
#include "sa/signature/tracker.hpp"

namespace sa {

using ByteStream = std::vector<std::uint8_t>;

/// Serialize a signature (spectrum grid + values + wrap flag) — the
/// legacy single-band "SAA1" format.
ByteStream serialize_signature(const AoaSignature& sig);

/// Parse a serialized signature; nullopt on malformed/truncated input.
std::optional<AoaSignature> deserialize_signature(const ByteStream& data);

/// Serialize a wideband signature. One band emits byte-identical legacy
/// "SAA1" output (wire compatibility with every pre-wideband consumer);
/// multiple bands emit the "SAA2" container: a band count followed by the
/// per-band spectra in ascending subband-frequency order.
ByteStream serialize_signature(const SubbandSignature& sig);

/// Parse either format ("SAA1" becomes a one-band signature); nullopt on
/// malformed/truncated input.
std::optional<SubbandSignature> deserialize_subband_signature(
    const ByteStream& data);

/// Serialize a tracker's full learning state — the "SAT1" container, the
/// SAA-family's state-transfer sibling. Where SAA1/SAA2 carry a
/// *presentation* of a signature (grid re-derived from start+step, values
/// re-normalized on parse), SAT1 carries the tracker's raw per-band EWMA
/// accumulators with their exact angle grids, so a round-trip restores
/// the tracker bit-for-bit — which is what cross-site client handoff
/// needs: the destination must continue training/blending exactly where
/// the source stopped, or its decisions drift from the single-site
/// oracle.
ByteStream serialize_tracker_snapshot(const TrackerSnapshot& snap);

/// Parse a "SAT1" container; nullopt on malformed/truncated input. The
/// parser is total over untrusted bytes (it validates grid monotonicity,
/// finiteness and cross-band shape), so a snapshot it accepts is always
/// safe to restore().
std::optional<TrackerSnapshot> deserialize_tracker_snapshot(
    const ByteStream& data);

}  // namespace sa
