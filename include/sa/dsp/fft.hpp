// Radix-2 FFT/IFFT for the OFDM PHY (64-point symbols) and spectral
// utilities. Sizes must be powers of two, which covers every transform in
// this codebase; SA_EXPECTS enforces it.
#pragma once

#include "sa/linalg/cvec.hpp"

namespace sa {

/// True when n is a nonzero power of two.
constexpr bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// In-place forward FFT (no normalization), length must be a power of 2.
void fft_inplace(CVec& x);

/// In-place inverse FFT with 1/N normalization.
void ifft_inplace(CVec& x);

/// Out-of-place conveniences.
CVec fft(CVec x);
CVec ifft(CVec x);

/// Swap halves so DC is centred (for spectra/plots).
CVec fftshift(const CVec& x);

/// Power spectral density estimate |FFT|^2 / N over one block.
std::vector<double> power_spectrum(const CVec& x);

}  // namespace sa
