// dB conversions and signal power measurement.
#pragma once

#include <cmath>

#include "sa/linalg/cvec.hpp"

namespace sa {

/// Power ratio to decibels; clamps at -300 dB for zero input.
inline double to_db(double power_ratio) {
  if (power_ratio <= 0.0) return -300.0;
  return 10.0 * std::log10(power_ratio);
}

/// Decibels to linear power ratio.
inline double from_db(double db) { return std::pow(10.0, db / 10.0); }

/// Amplitude ratio in dB (20 log10).
inline double amplitude_db(double amplitude_ratio) {
  if (amplitude_ratio <= 0.0) return -300.0;
  return 20.0 * std::log10(amplitude_ratio);
}

/// Mean power E[|x|^2] of a sample block.
inline double mean_power(const CVec& x) {
  if (x.empty()) return 0.0;
  double s = 0.0;
  for (const cd& v : x) s += std::norm(v);
  return s / static_cast<double>(x.size());
}

/// Mean power in dB relative to unit power.
inline double mean_power_db(const CVec& x) { return to_db(mean_power(x)); }

}  // namespace sa
