// FIR filter design (windowed sinc) and application. Used for the
// channel's band-limiting and for pulse shaping in the PHY.
#pragma once

#include <vector>

#include "sa/linalg/cvec.hpp"

namespace sa {

enum class Window { kRect, kHann, kHamming, kBlackman };

/// Window coefficients of length n.
std::vector<double> make_window(Window w, std::size_t n);

/// Odd-length linear-phase lowpass with normalized cutoff in (0, 0.5)
/// cycles/sample (i.e. cutoff_hz / sample_rate_hz).
std::vector<double> design_lowpass(double normalized_cutoff, std::size_t taps,
                                   Window w = Window::kHamming);

/// Full linear convolution of complex signal with real taps
/// (output length = x.size() + taps.size() - 1).
CVec fir_filter(const CVec& x, const std::vector<double>& taps);

/// "Same"-length convolution, group delay removed (centered output).
CVec fir_filter_same(const CVec& x, const std::vector<double>& taps);

}  // namespace sa
