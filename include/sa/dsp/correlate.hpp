// Correlation primitives used by packet detection (Schmidl-Cox) and the
// AoA covariance estimator.
#pragma once

#include "sa/linalg/cvec.hpp"

namespace sa {

/// Sliding cross-correlation of x against a (shorter) reference pattern:
/// out[k] = sum_i conj(ref[i]) * x[k+i], for k in [0, x.size()-ref.size()].
CVec sliding_correlation(const CVec& x, const CVec& ref);

/// Schmidl-Cox metric helper: P[k] = sum_{i<L} conj(x[k+i]) * x[k+i+L],
/// the lag-L autocorrelation over a window of length L, computed with a
/// running update (O(n) total).
CVec lag_autocorrelation(const CVec& x, std::size_t lag, std::size_t window);

/// Running energy R[k] = sum_{i<L} |x[k+L+i]|^2 matching the second half
/// of the Schmidl-Cox window.
std::vector<double> window_energy(const CVec& x, std::size_t offset,
                                  std::size_t window);

/// Normalized correlation coefficient |<a,b>| / (||a|| ||b||) in [0, 1].
double correlation_coefficient(const CVec& a, const CVec& b);

}  // namespace sa
