// Thermal noise and impairment generation for the receive chain.
#pragma once

#include "sa/common/rng.hpp"
#include "sa/linalg/cvec.hpp"

namespace sa {

/// Generate n samples of circularly-symmetric complex Gaussian noise with
/// per-sample power `noise_power`.
CVec awgn(std::size_t n, double noise_power, Rng& rng);

/// Add white Gaussian noise in place so the result has the given SNR [dB]
/// with respect to the block's measured mean power. Blocks of zero power
/// are left untouched. Returns the noise power used.
double add_awgn_snr(CVec& x, double snr_db, Rng& rng);

/// Add noise of a fixed power (not relative to signal) in place.
void add_awgn_power(CVec& x, double noise_power, Rng& rng);

/// Apply a carrier frequency offset of `cfo_hz` plus an initial phase to a
/// block sampled at `sample_rate_hz`, in place. Models residual LO
/// mismatch between client and AP.
void apply_cfo(CVec& x, double cfo_hz, double sample_rate_hz,
               double initial_phase_rad = 0.0);

/// Apply a constant phase rotation in place (per-chain LO phase offset —
/// the impairment SecureAngle's calibration removes).
void apply_phase(CVec& x, double phase_rad);

/// Fractional-sample delay via linear interpolation (coarse model of
/// sampling-time offset). delay in samples, may be non-integer, >= 0.
CVec fractional_delay(const CVec& x, double delay_samples);

}  // namespace sa
