// Subcarrier constellation mapping: BPSK, QPSK, 16-QAM, 64-QAM with the
// 802.11a Gray mapping and unit average-power normalization.
#pragma once

#include "sa/linalg/cvec.hpp"
#include "sa/phy/bits.hpp"

namespace sa {

enum class Modulation { kBpsk, kQpsk, kQam16, kQam64 };

/// Coded bits carried per subcarrier.
std::size_t bits_per_symbol(Modulation m);

/// Map `bits` (size must be a multiple of bits_per_symbol) to symbols.
CVec modulate(const Bits& bits, Modulation m);

/// Hard-decision demap.
Bits demodulate(const CVec& symbols, Modulation m);

/// Minimum distance between constellation points (for test margins).
double min_distance(Modulation m);

}  // namespace sa
