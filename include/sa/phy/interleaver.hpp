// IEEE 802.11a block interleaver: two permutations applied per OFDM
// symbol so adjacent coded bits land on non-adjacent subcarriers and
// alternate constellation bit significance.
#pragma once

#include "sa/phy/bits.hpp"

namespace sa {

/// Interleave one OFDM symbol's worth of coded bits.
/// `n_cbps` = coded bits per symbol, `n_bpsc` = coded bits per subcarrier.
Bits interleave(const Bits& bits, std::size_t n_cbps, std::size_t n_bpsc);

/// Inverse permutation.
Bits deinterleave(const Bits& bits, std::size_t n_cbps, std::size_t n_bpsc);

}  // namespace sa
