// Full PHY packet assembly and decode: preamble + SIGNAL + DATA, i.e. an
// 802.11a/g PPDU at 20 MHz. The transmitter produces baseband I/Q ready
// for the channel simulator; the receiver decodes samples located by the
// Schmidl-Cox detector back into a PSDU (the MAC frame bytes).
#pragma once

#include <optional>

#include "sa/linalg/cvec.hpp"
#include "sa/phy/bits.hpp"
#include "sa/phy/convolutional.hpp"
#include "sa/phy/modulation.hpp"

namespace sa {

/// The 802.11a rate set (Mb/s at 20 MHz).
enum class PhyRate {
  k6Mbps,   ///< BPSK  1/2
  k9Mbps,   ///< BPSK  3/4
  k12Mbps,  ///< QPSK  1/2
  k18Mbps,  ///< QPSK  3/4
  k24Mbps,  ///< 16QAM 1/2
  k36Mbps,  ///< 16QAM 3/4
  k48Mbps,  ///< 64QAM 2/3
  k54Mbps,  ///< 64QAM 3/4
};

struct RateInfo {
  Modulation modulation;
  CodeRate code_rate;
  std::size_t n_bpsc;   ///< coded bits per subcarrier
  std::size_t n_cbps;   ///< coded bits per OFDM symbol
  std::size_t n_dbps;   ///< data bits per OFDM symbol
  std::uint8_t signal_bits;  ///< 4-bit RATE field value
};

const RateInfo& rate_info(PhyRate rate);
/// Inverse of RateInfo::signal_bits; nullopt for reserved encodings.
std::optional<PhyRate> rate_from_signal_bits(std::uint8_t bits);

/// Transmit-side PPDU construction.
class PacketTransmitter {
 public:
  /// `scrambler_seed` is the 7-bit initial scrambler state (nonzero).
  explicit PacketTransmitter(PhyRate rate = PhyRate::k6Mbps,
                             std::uint8_t scrambler_seed = 0x5D);

  /// Build the complete baseband waveform for one PSDU (1..4095 bytes):
  /// STF + LTF + SIGNAL symbol + DATA symbols.
  CVec transmit(const Bytes& psdu) const;

  /// Number of DATA OFDM symbols a PSDU of `length` bytes occupies.
  std::size_t num_data_symbols(std::size_t length) const;

  PhyRate rate() const { return rate_; }

 private:
  PhyRate rate_;
  std::uint8_t scrambler_seed_;
};

struct DecodedPacket {
  Bytes psdu;
  PhyRate rate = PhyRate::k6Mbps;
  std::size_t length = 0;        ///< PSDU length from SIGNAL
  double evm_rms = 0.0;          ///< RMS error vector magnitude over DATA
  std::size_t samples_consumed = 0;
};

/// Receive-side decode. Samples must begin at the packet's first STF
/// sample (as reported by SchmidlCoxDetector); the caller is expected to
/// have corrected CFO beforehand (see PacketDetection::cfo_hz).
class PacketReceiver {
 public:
  /// Decode a PPDU; nullopt when SIGNAL is invalid or the buffer is
  /// truncated. FCS validation happens at the MAC layer.
  std::optional<DecodedPacket> decode(const CVec& samples) const;
};

}  // namespace sa
