// Schmidl-Cox OFDM packet detection [Schmidl & Cox, IEEE Trans. Comm.
// 1997] — the algorithm the SecureAngle prototype runs over its 0.4 ms
// WARP sample buffers (paper §3).
//
// Coarse stage: the 802.11 short training field repeats every 16 samples,
// so the normalized lag-16 autocorrelation metric
//     M(k) = |P(k)|^2 / R(k)^2
// plateaus near 1 during the STF. Fine stage: cross-correlate the known
// 64-sample LTF period to pin the symbol boundary, which also resolves
// the Schmidl-Cox plateau ambiguity. The lag autocorrelation additionally
// yields a coarse CFO estimate; the two LTF periods refine it.
#pragma once

#include <optional>
#include <vector>

#include "sa/linalg/cvec.hpp"

namespace sa {

/// STF repetition period and coarse correlation window of the
/// Schmidl-Cox metric — shared with the incremental streaming detector,
/// whose replayed recurrences must match detect() term for term.
inline constexpr std::size_t kScLag = 16;     // STF period
inline constexpr std::size_t kScWindow = 96;  // 6 STF periods

struct DetectorConfig {
  double threshold = 0.5;       ///< M(k) level that opens a detection window
  std::size_t min_plateau = 48; ///< samples M must stay high (rejects spikes)
  double sample_rate_hz = 20e6;
  /// Search span for the LTF fine-timing correlation after the coarse hit.
  std::size_t fine_search_span = 480;
  /// Fine-timing peak must exceed this fraction of the LTF self-energy.
  double fine_threshold = 0.5;
};

struct PacketDetection {
  std::size_t start = 0;     ///< index of the packet's first STF sample
  double metric = 0.0;       ///< Schmidl-Cox plateau metric at detection
  double cfo_hz = 0.0;       ///< estimated carrier frequency offset
  double fine_peak = 0.0;    ///< normalized LTF correlation at the peak
};

/// Detects every packet in a buffer of raw samples (single antenna).
class SchmidlCoxDetector {
 public:
  explicit SchmidlCoxDetector(DetectorConfig config = {});

  /// Scan a sample buffer and return all detections, in time order.
  std::vector<PacketDetection> detect(const CVec& samples) const;

  /// First detection at/after `from`, if any.
  std::optional<PacketDetection> detect_first(const CVec& samples,
                                              std::size_t from = 0) const;

  const DetectorConfig& config() const { return config_; }

 private:
  DetectorConfig config_;
  CVec ltf_ref_;  // one 64-sample LTF period, for fine timing
};

}  // namespace sa
