// 802.11a/g-style 20 MHz OFDM numerology: 64 subcarriers (48 data,
// 4 pilots), 16-sample cyclic prefix, standard short/long training
// preamble. The preamble's periodic structure is what the Schmidl-Cox
// detector (sa/phy/detector.hpp) exploits.
#pragma once

#include <array>

#include "sa/linalg/cvec.hpp"
#include "sa/phy/bits.hpp"
#include "sa/phy/modulation.hpp"

namespace sa {

inline constexpr std::size_t kFftSize = 64;
inline constexpr std::size_t kCpLen = 16;
inline constexpr std::size_t kSymbolLen = kFftSize + kCpLen;  // 80
inline constexpr std::size_t kNumDataCarriers = 48;
inline constexpr std::size_t kNumPilots = 4;
inline constexpr std::size_t kStfLen = 160;   // 10 x 16-sample repetitions
inline constexpr std::size_t kLtfLen = 160;   // 32 CP + 2 x 64
inline constexpr std::size_t kPreambleLen = kStfLen + kLtfLen;

/// Time-domain amplitude scale applied after the IFFT so that a symbol
/// carrying unit-average-power constellation points on the 52 active
/// subcarriers has unit mean transmit power: sqrt(N^2 / 52).
/// (Parseval: mean time power = scale^2 * 52 / N^2.)
inline const double kOfdmTimeScale = 8.875203139603666;  // sqrt(4096/52)

/// Logical data subcarrier indices (-26..26, excluding 0 and pilots).
const std::array<int, kNumDataCarriers>& data_carriers();
/// Pilot subcarrier indices {-21, -7, 7, 21}.
const std::array<int, kNumPilots>& pilot_carriers();
/// Base pilot values {1, 1, 1, -1} before polarity scrambling.
const std::array<double, kNumPilots>& pilot_values();
/// 127-element pilot polarity sequence p_n (802.11a 17.3.5.9).
double pilot_polarity(std::size_t symbol_index);

/// FFT bin for logical subcarrier index k in [-32, 31].
std::size_t carrier_to_bin(int k);

/// Time-domain short training field (160 samples, unit mean power).
CVec short_training_field();
/// Time-domain long training field (160 samples: 32 CP + 2 repetitions).
CVec long_training_field();
/// Frequency-domain LTF sequence on logical carriers -26..26.
const std::array<double, 53>& ltf_sequence();

/// One 64-sample LTF period in time domain (for cross-correlation sync).
CVec ltf_period();

/// Modulate one OFDM data symbol: 48 constellation points + pilots for
/// `symbol_index` (pilot polarity), IFFT, prepend CP. Output: 80 samples.
CVec ofdm_modulate_symbol(const CVec& data48, std::size_t symbol_index);

/// Frequency-domain channel estimate from the two received LTF periods
/// (each 64 samples, CP removed). Returns gains on all 64 bins (zero on
/// unused bins).
CVec estimate_channel_from_ltf(const CVec& ltf_rx_1, const CVec& ltf_rx_2);

/// Demodulate one received OFDM symbol (80 samples with CP) against a
/// channel estimate; applies per-symbol common phase correction from the
/// pilots. Returns the 48 equalized data subcarrier values.
CVec ofdm_demodulate_symbol(const CVec& rx80, const CVec& channel,
                            std::size_t symbol_index);

}  // namespace sa
