// Incremental Schmidl-Cox detection over an append-only sample window.
//
// StreamingReceiver used to re-run SchmidlCoxDetector::detect over its
// whole history buffer on every scan, re-paying the LTF fine-timing
// cross-correlation for every packet still inside the window — per scan,
// per packet, every round. IncrementalScDetector produces detections
// bit-identical to detect() run fresh over the same window, but caches
// the expensive fine-timing searches by *absolute* sample position:
// conditioned samples are immutable once appended, so a fine search whose
// whole window was inside the buffer when it first ran returns the same
// floats forever and is never recomputed.
//
// What cannot be cached: the coarse P/R metric recurrences. detect()
// computes them with running updates that accumulate from the window
// origin (see lag_autocorrelation), so their floating-point values depend
// on where the window starts — and the origin moves at every history
// trim. scan() therefore replays those recurrences from the current
// origin, term for term; they are O(window) but light (~a dozen flops per
// sample), while everything heavy is O(new samples + packets).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "sa/linalg/cvec.hpp"
#include "sa/phy/detector.hpp"

namespace sa {

class IncrementalScDetector {
 public:
  explicit IncrementalScDetector(DetectorConfig config);

  /// Scan the window `x[0 .. len)` whose first sample sits at absolute
  /// stream index `base`. Returns exactly what
  /// SchmidlCoxDetector::detect would return for the same window —
  /// detection starts relative to the window, every field bit-identical.
  /// Successive calls must present consistent data: a sample at absolute
  /// index i must carry the same value in every window that contains it
  /// (append-only stream, trims only move `base` forward).
  std::vector<PacketDetection> scan(const cd* x, std::size_t len,
                                    std::size_t base);

  /// Drop all cached state (e.g. when the absolute coordinate space is
  /// reused for unrelated data).
  void reset();

  const DetectorConfig& config() const { return config_; }

  // Cache observability for tests and benches.
  std::size_t fine_searches_run() const { return fine_searches_; }
  std::size_t fine_cache_hits() const { return fine_cache_hits_; }
  std::size_t fine_cache_size() const { return fine_cache_.size(); }

 private:
  /// Memoized result of one LTF fine-timing search at plateau position
  /// `base + k` (the map key): the normalized correlation peak and the
  /// chosen first-LTF-period position (after the second-period
  /// disambiguation), both pure functions of the samples in
  /// [k, k + fine_search_span). Recorded only when that span was fully
  /// inside the buffer, so the values are final.
  struct FineResult {
    double best_val = 0.0;
    std::size_t period1_abs = 0;
  };

  DetectorConfig config_;
  CVec ltf_ref_;
  double ltf_energy_ = 0.0;

  // Per-scan scratch, reused across calls to avoid reallocation.
  CVec p_;
  std::vector<double> r_;
  std::vector<double> metric_;
  std::vector<double> corr_;

  std::unordered_map<std::size_t, FineResult> fine_cache_;
  std::size_t fine_searches_ = 0;
  std::size_t fine_cache_hits_ = 0;
};

}  // namespace sa
