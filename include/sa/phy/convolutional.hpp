// Rate-1/2 K=7 convolutional code (generators 133/171 octal, the 802.11
// industry-standard code) with hard-decision Viterbi decoding, plus the
// 802.11a rate-3/4 puncturing pattern.
#pragma once

#include "sa/phy/bits.hpp"

namespace sa {

enum class CodeRate { kRate1_2, kRate2_3, kRate3_4 };

/// Coded bits produced for n input bits at `rate` (includes no tail; the
/// caller appends 6 zero tail bits before encoding per 802.11).
std::size_t coded_length(std::size_t n_in, CodeRate rate);

/// Convolutionally encode (state starts at zero). Output has
/// 2*bits.size() entries before puncturing.
Bits convolutional_encode(const Bits& bits, CodeRate rate = CodeRate::kRate1_2);

/// Hard-decision Viterbi decode of a (possibly punctured) stream.
/// `n_out` is the number of information bits to recover (encoder input
/// length). Punctured positions are treated as erasures.
Bits viterbi_decode(const Bits& coded, std::size_t n_out,
                    CodeRate rate = CodeRate::kRate1_2);

}  // namespace sa
