// IEEE 802.11 frame-synchronous scrambler, polynomial x^7 + x^4 + 1.
// Self-inverse: running the same state over scrambled bits descrambles.
#pragma once

#include "sa/phy/bits.hpp"

namespace sa {

class Scrambler {
 public:
  /// `seed` is the 7-bit initial state; must be nonzero.
  explicit Scrambler(std::uint8_t seed = 0x5D);

  /// XOR the PRBS into `bits`, advancing state.
  Bits process(const Bits& bits);

  /// Reset to a new 7-bit state.
  void reset(std::uint8_t seed);

  std::uint8_t state() const { return state_; }

  /// One PRBS output bit (advances state).
  std::uint8_t next_bit();

 private:
  std::uint8_t state_;
};

}  // namespace sa
