// Bit-vector helpers shared by the coding/modulation chain.
//
// Bits are stored one per byte (0/1) in transmission order, LSB of each
// octet first, matching IEEE 802.11 bit ordering.
#pragma once

#include <cstdint>
#include <vector>

namespace sa {

using Bits = std::vector<std::uint8_t>;
using Bytes = std::vector<std::uint8_t>;

/// Expand octets to bits, LSB first per octet.
Bits bytes_to_bits(const Bytes& bytes);

/// Pack bits (LSB first) back to octets; size must be a multiple of 8.
Bytes bits_to_bytes(const Bits& bits);

/// Number of positions where the two bit strings differ.
std::size_t hamming_distance(const Bits& a, const Bits& b);

}  // namespace sa
