// Antenna correlation (covariance) matrix estimation.
//
// Paper §2.1/§3: "compute the correlation matrix ... samplewise-
// multiplying the raw signal from the lth antenna with the raw signal
// from the mth antenna, then computing the mean ... with each entire
// packet". Options here include forward-backward averaging and forward
// spatial smoothing, the standard remedies for the coherent multipath
// that indoor reflections create (coherent copies of one signal
// rank-starve vanilla MUSIC).
#pragma once

#include "sa/linalg/cmat.hpp"

namespace sa {

/// Sample covariance R = X X^H / N over a block of per-antenna samples
/// (rows = antennas, cols = time).
CMat sample_covariance(const CMat& samples);

/// Sample covariance over columns [col_begin, col_end) of `samples`,
/// bit-identical to sample_covariance over a materialized copy of those
/// columns. The streaming hot path uses this to estimate a packet's
/// covariance straight off the shared conditioned window, skipping the
/// per-frame block copy.
CMat sample_covariance_cols(const CMat& samples, std::size_t col_begin,
                            std::size_t col_end);

/// Variant writing into a caller-provided matrix (resized to n x n, no
/// allocation when `r` already has the capacity) — for per-worker
/// scratch buffers on the decode path. Bit-identical values.
void sample_covariance_into(const CMat& samples, CMat& r);

/// Forward-backward average: (R + J conj(R) J) / 2, J the exchange
/// matrix. Valid only when reversing the element order mirrors the array
/// through its centre (true for a ULA; NOT true for our circular
/// ordering, where reversal is a rotation). Decorrelates one pair of
/// coherent sources and halves estimator variance.
CMat forward_backward_average(const CMat& r);

/// In-place forward-backward average: same arithmetic (bit-identical
/// result) without allocating a second matrix, for callers that already
/// own a scratch copy (e.g. the SpectralContext's smoothed subarray
/// matrix). When the input must be preserved anyway, the allocating
/// overload above is the single-pass fast path.
void forward_backward_average_inplace(CMat& r);

/// Forward spatial smoothing for a ULA: average the covariances of all
/// contiguous subarrays of size `subarray_size`. Restores rank against up
/// to (n - subarray_size + 1) coherent paths at the cost of aperture.
/// Input must be n x n with subarray_size in [2, n].
CMat spatial_smooth(const CMat& r, std::size_t subarray_size);

/// Add eps * trace(R)/n to the diagonal (regularization for Capon).
CMat diagonal_load(const CMat& r, double eps = 1e-3);

/// In-place diagonal loading (no full-matrix copy).
void diagonal_load_inplace(CMat& r, double eps = 1e-3);

}  // namespace sa
