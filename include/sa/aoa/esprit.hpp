// ESPRIT [Roy & Kailath 1989]: estimation of signal parameters via
// rotational invariance. A uniform linear array contains two identical
// subarrays shifted by one element; the signal subspace seen by the two
// is related by a rotation whose eigenvalues encode the arrival angles.
// Search-free like root-MUSIC, but solved from the *signal* subspace via
// a small least-squares problem instead of a degree-2(n-1) polynomial.
// An extension beyond the paper (which uses grid MUSIC); linear arrays
// only — other geometries have no shift invariance to exploit.
#pragma once

#include <vector>

#include "sa/array/geometry.hpp"
#include "sa/linalg/cmat.hpp"
#include "sa/linalg/eig.hpp"

namespace sa {

struct EspritConfig {
  /// Fixed source count; 0 = estimate with MDL (like MusicEstimator).
  std::size_t num_sources = 0;
  bool forward_backward = true;
};

/// LS-ESPRIT over a precomputed eigendecomposition (ascending
/// eigenvalues, e.g. SpectralContext::eig), sharing one EVD with the
/// other subspace consumers of the same frame. `spacing_m` is the ULA
/// element spacing. Returns up to `num_sources` bearings in the ULA
/// convention (degrees from broadside), best-conditioned first; empty
/// when the subarray system is singular or the rotation eigenvalues
/// cannot be extracted.
std::vector<double> esprit_bearings_from_subspace(const EigResult& eig,
                                                  std::size_t num_sources,
                                                  double spacing_m,
                                                  double lambda_m);

/// One-shot convenience from a ULA covariance matrix (mirrors
/// root_music's signature).
std::vector<double> esprit(const CMat& covariance, const ArrayGeometry& geom,
                           double lambda_m, const EspritConfig& config = {});

}  // namespace sa
