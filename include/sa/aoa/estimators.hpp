// Angle-of-arrival estimators.
//
//  * MUSIC [Schmidt 1986] — the eigenstructure method the paper builds
//    its signatures on: project steering vectors onto the noise subspace
//    of the correlation matrix; incoming bearings appear as sharp nulls,
//    i.e. pseudospectrum peaks.
//  * Bartlett and Capon/MVDR — classic beamforming baselines.
//  * The two-antenna phase method — the paper's Equation 1, which works
//    only without multipath (§2.1) and serves as the didactic baseline.
//  * MDL/AIC source counting from the eigenvalue profile.
#pragma once

#include <optional>

#include "sa/aoa/pseudospectrum.hpp"
#include "sa/aoa/spectral.hpp"
#include "sa/array/geometry.hpp"
#include "sa/linalg/cmat.hpp"

namespace sa {

/// Uniform bearing grid matched to an array's natural scan range.
std::vector<double> scan_grid(const ArrayGeometry& geom, double step_deg);

/// Minimum-description-length estimate of the number of incoherent
/// sources from ascending eigenvalues over `n_snapshots` samples.
std::size_t estimate_num_sources_mdl(const std::vector<double>& eigenvalues,
                                     std::size_t n_snapshots);
/// Akaike variant (tends to overestimate; exposed for comparison).
std::size_t estimate_num_sources_aic(const std::vector<double>& eigenvalues,
                                     std::size_t n_snapshots);

struct MusicConfig {
  /// Fixed source count; nullopt = estimate per-matrix with MDL.
  std::optional<std::size_t> num_sources;
  double scan_step_deg = 1.0;
  /// Forward-backward averaging before eigendecomposition.
  bool forward_backward = true;
  /// ULA forward spatial smoothing subarray size; 0 disables. Ignored
  /// (with a warning) for non-linear geometries.
  std::size_t smoothing_subarray = 0;
};

struct MusicResult {
  Pseudospectrum spectrum;
  std::vector<double> eigenvalues;  ///< ascending, of the processed matrix
  std::size_t num_sources = 0;      ///< used for the noise-subspace split
  /// Discrete search-free bearing estimates, best first. Filled only by
  /// the root-MUSIC AoaEstimator backend on linear arrays; empty for the
  /// grid-scan backends.
  std::vector<double> source_bearings_deg{};
};

class MusicEstimator {
 public:
  explicit MusicEstimator(MusicConfig config = {});

  /// Compute the MUSIC pseudospectrum of `covariance` for `geom` at
  /// wavelength `lambda_m`. Equivalent to building a one-shot
  /// SpectralContext with this config's conditioning and scanning it.
  MusicResult estimate(const CMat& covariance, const ArrayGeometry& geom,
                       double lambda_m) const;

  /// Scan a shared spectral context: consumes ctx.eig() and the cached
  /// noise projector, so the eigendecomposition is paid for once per
  /// frame even when several backends look at the same context. The
  /// context's conditioning options stand in for this config's
  /// forward_backward/smoothing_subarray settings.
  MusicResult estimate(const SpectralContext& ctx) const;

  /// The conditioning a context must carry for estimate(ctx) to match
  /// estimate(covariance, ...) exactly.
  SpectralOptions spectral_options() const {
    return {config_.forward_backward, config_.smoothing_subarray};
  }

  const MusicConfig& config() const { return config_; }

 private:
  MusicConfig config_;
};

/// Bartlett (conventional beamformer) spectrum: P = a^H R a / (a^H a).
Pseudospectrum bartlett_spectrum(const CMat& covariance,
                                 const ArrayGeometry& geom, double lambda_m,
                                 double step_deg = 1.0);

/// Capon / MVDR spectrum: P = 1 / (a^H R^{-1} a), with diagonal loading.
Pseudospectrum capon_spectrum(const CMat& covariance, const ArrayGeometry& geom,
                              double lambda_m, double step_deg = 1.0,
                              double loading = 1e-3);

/// Capon scan over a precomputed loaded inverse (e.g.
/// SpectralContext::inverse), so the matrix inversion is shared with
/// other consumers of the same frame.
Pseudospectrum capon_spectrum_from_inverse(const CMat& r_inverse,
                                           const ArrayGeometry& geom,
                                           double lambda_m,
                                           double step_deg = 1.0);

/// Paper Equation 1: theta = arcsin((phase(x2) - phase(x1)) / pi) for two
/// antennas at half-wavelength spacing; returns degrees from broadside.
/// The phase difference is wrapped into (-pi, pi] as in the paper.
double two_antenna_aoa_deg(cd x1, cd x2);

/// Robust direct-path selection. MUSIC peak heights are not ordered by
/// path power, so under coherent multipath the global maximum can be a
/// reflection — the "false positive direct path AoA" problem of §3.1.
/// This picks, among the candidate MUSIC peaks, the bearing with the
/// largest Bartlett (true power) response. Falls back to the spectrum
/// maximum when `peaks` is empty.
double power_weighted_direct_bearing_deg(const Pseudospectrum& music_spectrum,
                                         const std::vector<SpectrumPeak>& peaks,
                                         const CMat& covariance,
                                         const ArrayGeometry& geom,
                                         double lambda_m);

/// Same rule over a precomputed loaded inverse (1e-3 loading in the
/// plain overload), letting the receive pipeline reuse the
/// SpectralContext's cached inverse instead of re-inverting per packet.
double power_weighted_direct_bearing_with_inverse_deg(
    const Pseudospectrum& music_spectrum, const std::vector<SpectrumPeak>& peaks,
    const CMat& r_inverse, const ArrayGeometry& geom, double lambda_m);

}  // namespace sa
