// Root-MUSIC: the search-free variant of MUSIC for uniform linear
// arrays. Instead of scanning a bearing grid, the noise-subspace
// projector's diagonal sums define a conjugate-symmetric polynomial whose
// roots near the unit circle encode the arrival angles exactly — finer
// than any grid, at a fraction of the scan cost. An extension beyond the
// paper (which uses grid MUSIC), ablated in bench_ablations/bench_micro.
#pragma once

#include <vector>

#include "sa/array/geometry.hpp"
#include "sa/linalg/cmat.hpp"

namespace sa {

struct RootMusicConfig {
  /// Fixed source count; 0 = estimate with MDL (like MusicEstimator).
  std::size_t num_sources = 0;
  bool forward_backward = true;
};

struct RootMusicSource {
  double bearing_deg = 0.0;   ///< ULA convention (degrees from broadside)
  double root_distance = 0.0; ///< | |z| - 1 |; smaller = stronger source
};

/// Estimate arrival bearings from a ULA covariance matrix. `geom` must be
/// a uniform linear array; `lambda_m` the carrier wavelength. Returns up
/// to num_sources bearings, best (closest-to-circle) first.
std::vector<RootMusicSource> root_music(const CMat& covariance,
                                        const ArrayGeometry& geom,
                                        double lambda_m,
                                        const RootMusicConfig& config = {});

/// The polynomial stage alone, over a precomputed ULA noise projector
/// (e.g. SpectralContext::noise_projector) — shares one EVD with the
/// grid-MUSIC scan instead of redoing it. `spacing_m` is the ULA element
/// spacing; returns up to `num_sources` bearings, best first.
std::vector<RootMusicSource> root_music_from_projector(
    const CMat& noise_projector, double spacing_m, double lambda_m,
    std::size_t num_sources);

}  // namespace sa
