// Shared spectral decomposition for one covariance estimate.
//
// Every AoA backend consumes the same per-frame quantities — the
// conditioned covariance, its eigendecomposition (MUSIC, root-MUSIC,
// ESPRIT) or its loaded inverse (Capon, power-weighted bearing
// selection) — but historically each consumer recomputed them privately.
// A SpectralContext owns the covariance of one frame (or one subband of
// one frame) and lazily computes and caches the derived decompositions,
// so a frame pays for one EVD and one inverse no matter how many
// backends and spoof checks look at it.
//
// A context is built once per (frame, subband) and then read by one
// worker at a time; the lazy caches are not synchronized, so do not
// share one context between threads concurrently.
#pragma once

#include <cstddef>
#include <optional>

#include "sa/array/geometry.hpp"
#include "sa/linalg/cmat.hpp"
#include "sa/linalg/eig.hpp"

namespace sa {

/// Covariance conditioning applied before the eigendecomposition —
/// mirrors MusicConfig's remedies for coherent multipath.
struct SpectralOptions {
  /// Forward-backward averaging (linear geometries only).
  bool forward_backward = true;
  /// ULA forward spatial smoothing subarray size; 0 disables. Ignored
  /// (with a warning) for non-linear geometries.
  std::size_t smoothing_subarray = 0;
};

class SpectralContext {
 public:
  /// Takes ownership of `covariance` (an as-estimated sample covariance,
  /// square, sized to `geom`). `lambda_m` is the carrier — or subband
  /// centre — wavelength the steering vectors use.
  SpectralContext(CMat covariance, ArrayGeometry geom, double lambda_m,
                  SpectralOptions options = {});

  /// The raw covariance as handed in (what Capon and Bartlett consume).
  const CMat& covariance() const { return raw_; }
  const ArrayGeometry& geometry() const { return geom_; }
  double lambda_m() const { return lambda_m_; }
  const SpectralOptions& options() const { return options_; }

  /// MUSIC-style conditioned matrix: spatial smoothing (ULA only), then
  /// forward-backward averaging (linear only). Computed once, in place —
  /// no second full-matrix copy — and cached.
  const CMat& processed() const;
  /// Geometry the processed matrix corresponds to: the leading subarray
  /// after smoothing, otherwise the original geometry.
  const ArrayGeometry& processed_geometry() const;

  /// Eigendecomposition of processed(), computed once and cached. This
  /// is the EVD that MUSIC, root-MUSIC and ESPRIT all share.
  const EigResult& eig() const;

  /// Noise-subspace projector for `num_sources` sources: the sum of the
  /// n - num_sources smallest eigenvectors' outer products. Cached for
  /// the most recent source count (in practice one per frame).
  const CMat& noise_projector(std::size_t num_sources) const;

  /// inverse(diagonal_load(covariance(), loading_eps)) — what Capon and
  /// the power-weighted bearing rule consume. Cached for the most recent
  /// loading. Throws InvalidArgument when the loaded matrix is singular.
  const CMat& inverse(double loading_eps) const;

 private:
  void ensure_processed() const;

  CMat raw_;
  ArrayGeometry geom_;
  double lambda_m_ = 0.0;
  SpectralOptions options_;

  mutable bool processed_ready_ = false;
  mutable CMat processed_;
  mutable ArrayGeometry processed_geom_;
  mutable std::optional<EigResult> eig_;
  mutable std::optional<std::size_t> projector_sources_;
  mutable CMat projector_;
  mutable std::optional<double> inverse_eps_;
  mutable CMat inverse_;
};

}  // namespace sa
