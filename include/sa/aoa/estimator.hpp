// Pluggable AoA estimation: one interface over the spectral estimators so
// the receive pipeline (AccessPoint, DeploymentEngine) can swap backends
// without touching the per-packet plumbing.
//
// Every backend consumes a shared SpectralContext — the per-frame (or
// per-subband) covariance plus its lazily cached eigendecomposition and
// loaded inverse — and produces a MusicResult whose Pseudospectrum drives
// the downstream signature/tracking machinery:
//   * kMusic      — the paper's estimator (grid-scan MUSIC), byte-identical
//                   to calling MusicEstimator directly;
//   * kCapon      — MVDR beamformer spectrum (classic baseline);
//   * kBartlett   — conventional beamformer spectrum;
//   * kRootMusic  — grid MUSIC spectrum plus the search-free polynomial
//                   bearings in MusicResult::source_bearings_deg (linear
//                   arrays only; other geometries degrade to plain MUSIC);
//   * kEsprit     — grid MUSIC spectrum plus LS-ESPRIT rotational-
//                   invariance bearings (linear arrays only, same
//                   degradation rule), sharing the context's one EVD.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "sa/aoa/estimators.hpp"

namespace sa {

enum class AoaBackend { kMusic, kCapon, kBartlett, kRootMusic, kEsprit };

/// Stable lower-case names ("music", "capon", "bartlett", "root-music",
/// "esprit") for CLI flags and reports.
const char* to_string(AoaBackend backend);
/// Parses the stable names plus the aliases "mvdr" (capon) and
/// "rootmusic"/"root_music" (root-music).
std::optional<AoaBackend> aoa_backend_from_string(std::string_view name);
/// Human-readable list of every accepted name, for CLI error messages.
const char* aoa_backend_names();

struct AoaEstimatorConfig {
  /// Scan/grid/source-count settings; also drives the root-MUSIC and
  /// ESPRIT backends' source count and forward-backward averaging.
  MusicConfig music;
  /// Diagonal loading of the Capon backend.
  double capon_loading = 1e-3;
};

/// Interface every AoA backend implements. Implementations are immutable
/// after construction and safe to call concurrently from multiple threads
/// (each call must use its own SpectralContext — the context's caches are
/// not synchronized).
class AoaEstimator {
 public:
  virtual ~AoaEstimator() = default;

  /// Spectral estimate over a shared per-frame context. Eigenstructure
  /// backends read ctx.eig()/ctx.noise_projector(); Capon reads
  /// ctx.inverse() — whatever the context already computed for another
  /// consumer is reused, not recomputed.
  virtual MusicResult estimate(const SpectralContext& ctx) const = 0;

  /// Compatibility overload: builds a one-shot context with
  /// spectral_options() and delegates. Byte-identical to the pre-context
  /// per-backend pipelines (MUSIC output is bit-exact).
  MusicResult estimate(const CMat& covariance, const ArrayGeometry& geom,
                       double lambda_m) const;

  /// The covariance conditioning this backend expects a context to carry
  /// (callers building a shared context pass these options).
  virtual SpectralOptions spectral_options() const = 0;

  virtual AoaBackend backend() const = 0;
  const char* name() const { return to_string(backend()); }
};

/// Factory for the built-in backends.
std::unique_ptr<AoaEstimator> make_aoa_estimator(
    AoaBackend backend, const AoaEstimatorConfig& config = {});

}  // namespace sa
