// Pluggable AoA estimation: one interface over the spectral estimators so
// the receive pipeline (AccessPoint, DeploymentEngine) can swap backends
// without touching the per-packet plumbing.
//
// Every backend produces a MusicResult whose Pseudospectrum drives the
// downstream signature/tracking machinery:
//   * kMusic      — the paper's estimator (grid-scan MUSIC), byte-identical
//                   to calling MusicEstimator directly;
//   * kCapon      — MVDR beamformer spectrum (classic baseline);
//   * kBartlett   — conventional beamformer spectrum;
//   * kRootMusic  — grid MUSIC spectrum plus the search-free polynomial
//                   bearings in MusicResult::source_bearings_deg (linear
//                   arrays only; other geometries degrade to plain MUSIC).
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "sa/aoa/estimators.hpp"

namespace sa {

enum class AoaBackend { kMusic, kCapon, kBartlett, kRootMusic };

/// Stable lower-case names ("music", "capon", "bartlett", "root-music")
/// for CLI flags and reports.
const char* to_string(AoaBackend backend);
std::optional<AoaBackend> aoa_backend_from_string(std::string_view name);

struct AoaEstimatorConfig {
  /// Scan/grid/source-count settings; also drives the root-MUSIC backend's
  /// source count and forward-backward averaging.
  MusicConfig music;
  /// Diagonal loading of the Capon backend.
  double capon_loading = 1e-3;
};

/// Interface every AoA backend implements. Implementations are immutable
/// after construction and safe to call concurrently from multiple threads.
class AoaEstimator {
 public:
  virtual ~AoaEstimator() = default;

  /// Spectral estimate of `covariance` for `geom` at wavelength `lambda_m`.
  virtual MusicResult estimate(const CMat& covariance,
                               const ArrayGeometry& geom,
                               double lambda_m) const = 0;

  virtual AoaBackend backend() const = 0;
  const char* name() const { return to_string(backend()); }
};

/// Factory for the built-in backends.
std::unique_ptr<AoaEstimator> make_aoa_estimator(
    AoaBackend backend, const AoaEstimatorConfig& config = {});

}  // namespace sa
