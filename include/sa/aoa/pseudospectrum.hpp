// Pseudospectrum: likelihood-of-energy versus bearing, "the continuous
// plot of likelihood versus angle" that SecureAngle uses directly as the
// client signature (paper §2.1).
#pragma once

#include <vector>

#include "sa/common/error.hpp"

namespace sa {

struct SpectrumPeak {
  double angle_deg = 0.0;
  double value = 0.0;          ///< linear power at the peak
  double value_db = 0.0;       ///< dB relative to the spectrum maximum
  double prominence_db = 0.0;  ///< height above the higher adjacent valley
};

class Pseudospectrum {
 public:
  Pseudospectrum() = default;
  /// `angles_deg` must be a uniformly spaced ascending grid; `values` are
  /// linear (power-like, nonnegative). `wraps` marks circular scans
  /// (0..360) where the two ends are neighbours.
  Pseudospectrum(std::vector<double> angles_deg, std::vector<double> values,
                 bool wraps);

  std::size_t size() const { return angles_.size(); }
  bool wraps() const { return wraps_; }
  const std::vector<double>& angles_deg() const { return angles_; }
  const std::vector<double>& values() const { return values_; }
  double step_deg() const;

  /// Value in dB relative to the maximum (0 dB at the strongest angle).
  std::vector<double> values_db() const;

  /// Angle of the global maximum — the paper's bearing estimate
  /// ("the angle corresponding to the maximum point", §3.1).
  double max_angle_deg() const;
  double max_value() const;

  /// Linear interpolation of the spectrum at an arbitrary angle.
  double value_at(double angle_deg) const;

  /// Local maxima with at least `min_prominence_db` prominence and at
  /// least `min_separation_deg` spacing, strongest first.
  std::vector<SpectrumPeak> find_peaks(double min_prominence_db = 1.0,
                                       double min_separation_deg = 5.0) const;

  /// Refine the global peak with a parabolic fit over its neighbours
  /// (sub-grid bearing resolution).
  double refined_max_angle_deg() const;

  /// Normalize in place so the maximum linear value is 1.
  void normalize();

 private:
  std::vector<double> angles_;
  std::vector<double> values_;
  bool wraps_ = false;
};

}  // namespace sa
