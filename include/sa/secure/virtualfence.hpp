// Virtual fences (paper §2.3.1): with direct-path AoA from two or more
// APs, triangulate the client and drop frames from clients outside a
// physical boundary ("only clients within the building be allowed
// wireless access").
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "sa/common/geometry.hpp"

namespace sa {

/// One AP's contribution: its position and the candidate world azimuths
/// of the client's direct path (two candidates for linear arrays).
struct FenceObservation {
  Vec2 ap_position;
  std::vector<double> world_bearings_deg;
};

struct LocalizationResult {
  Vec2 position;
  /// RMS angular residual (deg) between the chosen bearings and the
  /// bearings implied by the solved position — a consistency measure.
  double residual_deg = 0.0;
  /// How many APs' bearings the final solution used (outliers dropped).
  std::size_t aps_used = 0;
};

/// Least-squares intersection of direct-path bearings from >= 2 APs.
/// Linear-array front/back ambiguities are resolved by trying every
/// candidate combination and keeping the most consistent solution.
/// When the full set is inconsistent (residual > `outlier_residual_deg`),
/// the AP whose removal most improves the fit is dropped and the solve
/// repeats — the paper's observation that "false positive AoAs obtained
/// from different APs may not intersect with each other" (Sec. 3.1).
std::optional<LocalizationResult> localize(
    const std::vector<FenceObservation>& observations,
    double outlier_residual_deg = 5.0);

struct FenceDecision {
  bool allowed = false;
  std::optional<LocalizationResult> location;
  /// Always a string constant with static storage duration — safe to
  /// copy the decision around (e.g. the engine's re-sequencing queue).
  std::string_view reason = "";
};

class VirtualFence {
 public:
  explicit VirtualFence(Polygon boundary, double max_residual_deg = 20.0);

  /// Localize the client and test it against the boundary. Frames are
  /// dropped (not allowed) when localization fails, is inconsistent, or
  /// lands outside the fence.
  FenceDecision check(const std::vector<FenceObservation>& observations) const;

  /// Boundary test over an already-solved localization (callers that
  /// cache the solve, e.g. FrameContext, use this to avoid re-solving).
  /// check(obs) == check_localized(localize(obs)) for >= 2 observations.
  FenceDecision check_localized(
      std::optional<LocalizationResult> location) const;

  const Polygon& boundary() const { return boundary_; }

 private:
  Polygon boundary_;
  double max_residual_deg_;
};

}  // namespace sa
