// Downlink directional transmission from uplink AoA — the paper's §5
// future work ("with AoA information obtained, high efficiency downlink
// directional transmission will also be feasible resulting in higher
// throughput and better reliability"), plus transmit null-steering,
// which is how a SecureAngle AP can yield toward a whitespace incumbent
// or deny energy toward an eavesdropper's bearing.
//
// Convention: `channel` is the narrowband uplink channel vector h
// (ChannelSimulator::channel_vector); by reciprocity the downlink scalar
// seen by the client under transmit weights w is  y = sum_m h_m * w_m
// = h^T w (plain transpose, no conjugation).
#pragma once

#include <vector>

#include "sa/array/geometry.hpp"
#include "sa/linalg/cvec.hpp"

namespace sa {

/// Conjugate-steering weights toward `bearing_deg` (array convention),
/// unit total power: w = conj(a(theta)) / sqrt(n). This is what an AP
/// can do knowing only the AoA estimate.
CVec aoa_beamforming_weights(const ArrayGeometry& geom, double bearing_deg,
                             double lambda_m);

/// Maximum-ratio transmission from full channel knowledge, unit power:
/// w = conj(h) / ||h||. Upper bound for the AoA-only scheme.
CVec mrt_weights(const CVec& channel);

/// Transmit toward `target_deg` with hard nulls at each `null_degs`
/// bearing: the target's conjugate steering vector projected onto the
/// orthogonal complement of the nulls' steering vectors, unit power.
/// Throws InvalidArgument when the target is (numerically) inside the
/// null subspace — no energy can reach it without leaking into a null.
CVec null_steering_weights(const ArrayGeometry& geom, double target_deg,
                           const std::vector<double>& null_degs,
                           double lambda_m);

/// |h^T w| — received downlink amplitude at a client with channel h.
double downlink_amplitude(const CVec& channel, const CVec& weights);

/// Gain in dB of weights `w` over single-antenna transmission (antenna 0
/// carrying all the power) for the same client channel.
double downlink_gain_db(const CVec& channel, const CVec& weights);

/// Array-factor power (dB, relative to a single antenna) radiated toward
/// `bearing_deg` in free space — the transmit beam pattern.
double array_factor_db(const ArrayGeometry& geom, const CVec& weights,
                       double bearing_deg, double lambda_m);

}  // namespace sa
