// The SecureAngle access point: the paper's full receive pipeline.
//
//   raw multi-antenna samples
//     -> per-chain impairments (unknown LO phases, §2.2)
//     -> calibration correction (USRP2-style table)
//     -> Schmidl-Cox packet detection (§3, on a reference antenna)
//     -> per-packet antenna correlation matrix (whole-packet averaging),
//        optionally split into K frequency subbands (wideband mode)
//     -> per-band MUSIC pseudospectrum (§2.1) over a shared
//        SpectralContext (one EVD/inverse per band, reused by every
//        consumer)
//     -> AoA + subband signatures + decoded 802.11 frame
//
// Applications (virtual fence, spoof detection) consume ReceivedPacket.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "sa/aoa/estimator.hpp"
#include "sa/aoa/estimators.hpp"
#include "sa/aoa/spectral.hpp"
#include "sa/array/calibration.hpp"
#include "sa/array/geometry.hpp"
#include "sa/array/impairments.hpp"
#include "sa/channel/simulator.hpp"
#include "sa/linalg/column_ring.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/detector.hpp"
#include "sa/phy/packet.hpp"
#include "sa/signature/signature.hpp"
#include "sa/signature/subband.hpp"

namespace sa {

/// How a wideband packet's per-subband spectra collapse into the one
/// full-band signature (ReceivedPacket::signature).
enum class BandFusion {
  /// The uniform mean of the normalized per-band spectra — the original
  /// behavior, byte-identical, and the default.
  kUniform,
  /// Noise-eigenvalue-weighted combine: each band is weighted by its
  /// estimated SNR (signal- over noise-subspace eigenvalue means of the
  /// band's processed covariance), so a faded or interference-hit
  /// subband no longer dilutes the signature it votes into.
  kSnr,
};

std::string_view to_string(BandFusion fusion);
std::optional<BandFusion> band_fusion_from_string(std::string_view name);

struct AccessPointConfig {
  ArrayGeometry geometry = ArrayGeometry::octagon();
  Vec2 position{0.0, 0.0};
  double orientation_deg = 0.0;
  double carrier_hz = 2.4e9;
  double sample_rate_hz = 20e6;
  /// Which AoA estimator the receive pipeline runs per packet. kMusic is
  /// the paper's pipeline and the default; see sa/aoa/estimator.hpp for
  /// the alternatives.
  AoaBackend estimator = AoaBackend::kMusic;
  MusicConfig music;
  /// Diagonal loading when `estimator` is kCapon.
  double capon_loading = 1e-3;
  SignatureConfig signature;
  DetectorConfig detector;
  CalibratorConfig calibrator;
  /// Disable to reproduce the paper's point that uncalibrated chains
  /// break AoA (ablation bench).
  bool apply_calibration = true;
  /// Direct-path rule: true = power-weighted peak selection (robust to
  /// the paper's "false positive direct path AoA" problem), false = the
  /// paper's plain argmax of the pseudospectrum (ablation).
  bool power_weighted_bearing = true;
  /// Chain gain mismatch spread handed to ArrayImpairments::random.
  double chain_gain_sigma = 0.05;
  /// Wideband mode: the number of frequency subbands K each packet's
  /// samples are split into (length-K DFT over consecutive sample
  /// blocks; must be a power of two, <= 64). 1 — the default — is the
  /// paper's single full-band covariance, byte-identical to the
  /// pre-wideband pipeline. K > 1 estimates AoA per subband at that
  /// subband's centre wavelength and carries a K-band SubbandSignature
  /// the spoof machinery compares subband-wise.
  std::size_t subbands = 1;
  /// How the per-subband spectra fuse into the full-band signature when
  /// subbands > 1 (no effect at K = 1).
  BandFusion band_fusion = BandFusion::kUniform;
  /// Share the per-band SpectralContext's cached decompositions (EVD,
  /// loaded inverse) across every consumer of a frame — the estimator,
  /// the power-weighted bearing rule — so each band pays for one EVD and
  /// at most one inverse. False recomputes per consumer (the
  /// pre-refactor behavior, kept for A/B benchmarks).
  bool share_spectral_cache = true;
};

/// Everything the AP knows about one received packet.
struct ReceivedPacket {
  PacketDetection detection;
  std::optional<DecodedPacket> phy;  ///< nullopt: PHY decode failed
  std::optional<Frame> frame;        ///< nullopt: bad FCS or no PHY
  /// The centre band's estimate (the full band when subbands == 1).
  MusicResult music;
  /// Full-band signature: the single band's, or the fused mean of the
  /// normalized per-band spectra in wideband mode.
  AoaSignature signature;
  /// Per-subband signatures (one band when subbands == 1) — what the
  /// spoof trackers compare.
  SubbandSignature subband;
  /// Strongest-peak bearing in the array's own convention.
  double bearing_array_deg = 0.0;
  /// Candidate world azimuths of the direct path (two for a linear
  /// array's front/back ambiguity, one otherwise).
  std::vector<double> bearing_world_deg;
};

class AccessPoint {
 public:
  /// Constructs the AP with freshly drawn chain impairments and runs the
  /// calibration procedure (unless disabled in config).
  AccessPoint(AccessPointConfig config, Rng& rng);

  /// Process a block of *channel-ideal* per-antenna samples (rows =
  /// antennas): the AP first applies its own chain impairments, then its
  /// calibration table, then detection/decoding/AoA. Equivalent to
  /// condition() + detect() + demodulate() per detection.
  std::vector<ReceivedPacket> receive(const CMat& channel_samples);

  // The receive pipeline split into its three phases so callers (the
  // streaming receiver, the deployment engine) can schedule the per-frame
  // work themselves. All three are const and safe to call concurrently.

  /// Impairments + (optional) calibration applied to a copy.
  CMat condition(const CMat& channel_samples) const;
  /// Same conditioning applied in place (bit-identical to condition()).
  void condition_inplace(CMat& channel_samples) const;
  /// Condition only columns [col_begin, col_end) of a streaming window —
  /// the incremental hot path: a chunk's columns are conditioned exactly
  /// once, when appended. The per-chain factors are constant in time, so
  /// conditioning a column is independent of its neighbours and of its
  /// position in the stream; the result is bit-identical to conditioning
  /// the whole window fresh. (Any future time-indexed impairment must be
  /// anchored at the column's absolute stream index to preserve this.)
  void condition_cols(ColumnRing& window, std::size_t col_begin,
                      std::size_t col_end) const;
  /// Schmidl-Cox detection on the reference antenna (chain 0) of an
  /// already-conditioned buffer.
  std::vector<PacketDetection> detect(const CMat& conditioned) const;
  /// Reusable scratch for the per-frame decode hot path: the
  /// CFO-corrected reference-antenna slice and the wideband subband
  /// snapshot matrices. A worker thread keeps one FrameScratch and
  /// passes it to prepare()/demodulate() for every frame it processes;
  /// each use fully overwrites what it reads, so results are
  /// bit-identical to the allocating path (tested). Not thread-safe:
  /// one scratch per thread.
  struct FrameScratch {
    CVec aligned;
    CVec window;
    std::vector<CMat> sub;
  };

  /// Decode + covariance + AoA for one detection inside a conditioned
  /// buffer. nullopt when the capture is truncated too hard to process.
  /// Equivalent to prepare() + estimate_band() per band + assemble(),
  /// run serially. `scratch`, when non-null, is reused for the frame's
  /// temporary buffers instead of allocating.
  std::optional<ReceivedPacket> demodulate(const CMat& conditioned,
                                           const PacketDetection& det,
                                           FrameScratch* scratch = nullptr) const;

  // The demodulate pipeline split into its three stages so callers (the
  // deployment engine) can fan the per-subband estimates across a thread
  // pool — intra-frame parallelism. All three are const and safe to call
  // concurrently for different frames/bands; a single FramePrep's
  // contexts each belong to one band's estimate at a time.

  /// Everything demodulation derives before the AoA estimates: the
  /// decode results and one SpectralContext per subband (one for the
  /// whole band when subbands == 1, or when the capture is too short to
  /// split).
  struct FramePrep {
    PacketDetection detection;
    std::optional<DecodedPacket> phy;
    std::optional<Frame> frame;
    /// Per-subband contexts in ascending subband-frequency order.
    std::vector<SpectralContext> bands;
  };

  /// Stage 1: PHY decode + per-band covariance contexts. nullopt when
  /// the capture is truncated too hard to process. The packet's
  /// covariance is accumulated straight off `conditioned` (no block
  /// copy); `scratch` additionally reuses the decode slice and subband
  /// matrices across frames.
  std::optional<FramePrep> prepare(const CMat& conditioned,
                                   const PacketDetection& det,
                                   FrameScratch* scratch = nullptr) const;
  /// Stage 2: this AP's estimator over one band's context.
  MusicResult estimate_band(const FramePrep& prep, std::size_t band) const;
  /// Stage 3: fuse the per-band results into a ReceivedPacket
  /// (signatures, bearing selection, world azimuths). `band_results[b]`
  /// must be estimate_band(prep, b).
  ReceivedPacket assemble(FramePrep prep,
                          std::vector<MusicResult> band_results) const;

  /// AoA-only path: covariance + MUSIC + signature over a sample block
  /// already known to span one packet (no detection/decode).
  AoaSignature signature_from_samples(const CMat& packet_samples) const;
  MusicResult music_from_samples(const CMat& packet_samples) const;

  /// World placement of this AP's array (for the channel simulator).
  ArrayPlacement placement() const;

  const AccessPointConfig& config() const { return config_; }
  const AoaEstimator& estimator() const { return *estimator_; }
  /// The detector this AP runs (its config carries the AP sample rate) —
  /// the streaming receiver's incremental detector mirrors it.
  const SchmidlCoxDetector& detector() const { return detector_; }
  const ArrayImpairments& impairments() const { return impairments_; }
  const CalibrationTable& calibration() const { return calibration_; }
  double wavelength_m() const;

  /// Convert an array-convention bearing to world azimuth candidates.
  std::vector<double> to_world_bearings(double array_bearing_deg) const;

 private:
  AccessPointConfig config_;
  ArrayImpairments impairments_;
  CalibrationTable calibration_;
  SchmidlCoxDetector detector_;
  std::unique_ptr<AoaEstimator> estimator_;
  PacketReceiver phy_rx_;
};

}  // namespace sa
