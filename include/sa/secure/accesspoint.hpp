// The SecureAngle access point: the paper's full receive pipeline.
//
//   raw multi-antenna samples
//     -> per-chain impairments (unknown LO phases, §2.2)
//     -> calibration correction (USRP2-style table)
//     -> Schmidl-Cox packet detection (§3, on a reference antenna)
//     -> per-packet antenna correlation matrix (whole-packet averaging)
//     -> MUSIC pseudospectrum (§2.1)
//     -> AoA signature + decoded 802.11 frame
//
// Applications (virtual fence, spoof detection) consume ReceivedPacket.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "sa/aoa/estimator.hpp"
#include "sa/aoa/estimators.hpp"
#include "sa/array/calibration.hpp"
#include "sa/array/geometry.hpp"
#include "sa/array/impairments.hpp"
#include "sa/channel/simulator.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/detector.hpp"
#include "sa/phy/packet.hpp"
#include "sa/signature/signature.hpp"

namespace sa {

struct AccessPointConfig {
  ArrayGeometry geometry = ArrayGeometry::octagon();
  Vec2 position{0.0, 0.0};
  double orientation_deg = 0.0;
  double carrier_hz = 2.4e9;
  double sample_rate_hz = 20e6;
  /// Which AoA estimator the receive pipeline runs per packet. kMusic is
  /// the paper's pipeline and the default; see sa/aoa/estimator.hpp for
  /// the alternatives.
  AoaBackend estimator = AoaBackend::kMusic;
  MusicConfig music;
  /// Diagonal loading when `estimator` is kCapon.
  double capon_loading = 1e-3;
  SignatureConfig signature;
  DetectorConfig detector;
  CalibratorConfig calibrator;
  /// Disable to reproduce the paper's point that uncalibrated chains
  /// break AoA (ablation bench).
  bool apply_calibration = true;
  /// Direct-path rule: true = power-weighted peak selection (robust to
  /// the paper's "false positive direct path AoA" problem), false = the
  /// paper's plain argmax of the pseudospectrum (ablation).
  bool power_weighted_bearing = true;
  /// Chain gain mismatch spread handed to ArrayImpairments::random.
  double chain_gain_sigma = 0.05;
};

/// Everything the AP knows about one received packet.
struct ReceivedPacket {
  PacketDetection detection;
  std::optional<DecodedPacket> phy;  ///< nullopt: PHY decode failed
  std::optional<Frame> frame;        ///< nullopt: bad FCS or no PHY
  MusicResult music;
  AoaSignature signature;
  /// Strongest-peak bearing in the array's own convention.
  double bearing_array_deg = 0.0;
  /// Candidate world azimuths of the direct path (two for a linear
  /// array's front/back ambiguity, one otherwise).
  std::vector<double> bearing_world_deg;
};

class AccessPoint {
 public:
  /// Constructs the AP with freshly drawn chain impairments and runs the
  /// calibration procedure (unless disabled in config).
  AccessPoint(AccessPointConfig config, Rng& rng);

  /// Process a block of *channel-ideal* per-antenna samples (rows =
  /// antennas): the AP first applies its own chain impairments, then its
  /// calibration table, then detection/decoding/AoA. Equivalent to
  /// condition() + detect() + demodulate() per detection.
  std::vector<ReceivedPacket> receive(const CMat& channel_samples);

  // The receive pipeline split into its three phases so callers (the
  // streaming receiver, the deployment engine) can schedule the per-frame
  // work themselves. All three are const and safe to call concurrently.

  /// Impairments + (optional) calibration applied to a copy.
  CMat condition(const CMat& channel_samples) const;
  /// Schmidl-Cox detection on the reference antenna (chain 0) of an
  /// already-conditioned buffer.
  std::vector<PacketDetection> detect(const CMat& conditioned) const;
  /// Decode + covariance + AoA for one detection inside a conditioned
  /// buffer. nullopt when the capture is truncated too hard to process.
  std::optional<ReceivedPacket> demodulate(const CMat& conditioned,
                                           const PacketDetection& det) const;

  /// AoA-only path: covariance + MUSIC + signature over a sample block
  /// already known to span one packet (no detection/decode).
  AoaSignature signature_from_samples(const CMat& packet_samples) const;
  MusicResult music_from_samples(const CMat& packet_samples) const;

  /// World placement of this AP's array (for the channel simulator).
  ArrayPlacement placement() const;

  const AccessPointConfig& config() const { return config_; }
  const AoaEstimator& estimator() const { return *estimator_; }
  const ArrayImpairments& impairments() const { return impairments_; }
  const CalibrationTable& calibration() const { return calibration_; }
  double wavelength_m() const;

  /// Convert an array-convention bearing to world azimuth candidates.
  std::vector<double> to_world_bearings(double array_bearing_deg) const;

 private:
  AccessPointConfig config_;
  ArrayImpairments impairments_;
  CalibrationTable calibration_;
  SchmidlCoxDetector detector_;
  std::unique_ptr<AoaEstimator> estimator_;
  PacketReceiver phy_rx_;
};

}  // namespace sa
