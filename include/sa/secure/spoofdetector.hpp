// Address-spoofing prevention (paper §2.3.2): bind each MAC address to a
// tracked AoA signature; flag packets whose signature diverges from the
// one trained for that address.
#pragma once

#include <unordered_map>

#include "sa/mac/address.hpp"
#include "sa/signature/tracker.hpp"

namespace sa {

enum class SpoofVerdict {
  kTraining,    ///< still learning this MAC's signature
  kLegitimate,  ///< signature matches the trained reference
  kSpoof,       ///< signature mismatch — injection suspected
};

struct SpoofObservation {
  SpoofVerdict verdict = SpoofVerdict::kTraining;
  double score = 0.0;
};

struct SpoofDetectorStats {
  std::size_t packets = 0;
  std::size_t alarms = 0;
  std::size_t tracked_macs = 0;
};

class SpoofDetector {
 public:
  explicit SpoofDetector(TrackerConfig tracker_config = {});

  /// Feed one (MAC, signature) pair from a decoded uplink frame.
  SpoofObservation observe(const MacAddress& source,
                           const AoaSignature& signature);

  /// Tracker for a MAC, if it has been seen.
  const SignatureTracker* tracker(const MacAddress& source) const;

  /// Forget a MAC entirely (e.g. after deauthentication).
  void forget(const MacAddress& source);

  SpoofDetectorStats stats() const;

 private:
  TrackerConfig tracker_config_;
  std::unordered_map<MacAddress, SignatureTracker> trackers_;
  std::size_t packets_ = 0;
  std::size_t alarms_ = 0;
};

}  // namespace sa
