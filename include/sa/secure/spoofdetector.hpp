// Address-spoofing prevention (paper §2.3.2): bind each MAC address to a
// tracked AoA signature; flag packets whose signature diverges from the
// one trained for that address.
//
// Tracker state lives on the compact per-MAC substrate: a flat
// open-addressing LRU map (no node allocations) behind a blocked-Bloom
// prefilter, so tracker() for a never-seen MAC answers from one cache
// line, plus an optional timing wheel that expires idle trackers.
//
// Recency policy (deliberate, and preserved from the node-based
// implementation): observe() refreshes a MAC's LRU recency whether it
// hits or inserts; the read-only tracker() accessor does NOT — a
// forensic lookup must not keep a client resident under eviction
// pressure.
#pragma once

#include "sa/common/compact/flat_lru_map.hpp"
#include "sa/common/compact/mac_prefilter.hpp"
#include "sa/common/compact/timer_wheel.hpp"
#include "sa/mac/address.hpp"
#include "sa/signature/tracker.hpp"

namespace sa {

enum class SpoofVerdict {
  kTraining,    ///< still learning this MAC's signature
  kLegitimate,  ///< signature matches the trained reference
  kSpoof,       ///< signature mismatch — injection suspected
};

struct SpoofObservation {
  SpoofVerdict verdict = SpoofVerdict::kTraining;
  double score = 0.0;
};

struct SpoofDetectorStats {
  std::size_t packets = 0;
  std::size_t alarms = 0;
  std::size_t tracked_macs = 0;
  std::size_t evictions = 0;    ///< trackers dropped by the LRU bound
  std::size_t expirations = 0;  ///< trackers dropped by idle expiry
};

class SpoofDetector {
 public:
  /// `max_tracked_macs` bounds the per-MAC tracker map: when a new MAC
  /// would exceed it, the least-recently-observed MAC's tracker is
  /// evicted (it retrains from scratch if that client returns). 0 means
  /// unbounded — unacceptable at deployment scale, but the historical
  /// default.
  ///
  /// `idle_expiry_frames` > 0 additionally expires any tracker not
  /// observed for that many observation ticks, via a timing wheel in
  /// O(1) per tick. Off (0) by default: expiring a tracker changes
  /// decisions (a returning client retrains), so deployments opt in.
  explicit SpoofDetector(TrackerConfig tracker_config = {},
                         std::size_t max_tracked_macs = 0,
                         std::size_t idle_expiry_frames = 0);

  /// Feed one (MAC, signature) pair from a decoded uplink frame. The
  /// per-MAC tracker compares subband-wise (one band = the paper's
  /// narrowband behavior, unchanged). The detector's own packet count
  /// is the idle-expiry tick — strictly increasing per detector, and
  /// deterministic at any engine thread count because a MAC's shard
  /// observes its frames in the same order regardless of workers.
  SpoofObservation observe(const MacAddress& source,
                           const SubbandSignature& signature);
  /// Single-band compatibility overload.
  SpoofObservation observe(const MacAddress& source,
                           const AoaSignature& signature);

  /// Tracker for a MAC, if it has been seen. Answers definite misses
  /// from the prefilter without probing the table. The pointer is
  /// invalidated by the next observe()/forget() (flat storage moves
  /// under insertion and erasure) — use it immediately.
  const SignatureTracker* tracker(const MacAddress& source) const;

  /// Forget a MAC entirely (e.g. after deauthentication).
  void forget(const MacAddress& source);

  /// Copy out a MAC's tracker state for cross-site handoff; nullopt if
  /// the MAC is not tracked. Read-only: no LRU touch, no tick consumed.
  std::optional<TrackerSnapshot> export_tracker(const MacAddress& source) const;

  /// Install handed-off tracker state for a MAC, inserting it into the
  /// map/prefilter (and idle wheel) exactly as a first observation
  /// would, but without consuming an observation tick — the imported
  /// client has not sent a frame here yet. Overwrites any existing
  /// tracker for the MAC.
  void import_tracker(const MacAddress& source, const TrackerSnapshot& snap);

  SpoofDetectorStats stats() const;

  /// Footprint of the tracker map, prefilter and expiry wheel (the
  /// trackers' own signature buffers are not included).
  std::size_t memory_bytes() const {
    return trackers_.memory_bytes() + filter_.memory_bytes() +
           wheel_.memory_bytes();
  }

 private:
  struct Entry {
    explicit Entry(const TrackerConfig& config) : tracker(config) {}
    SignatureTracker tracker;
    std::uint64_t last_seen = 0;
  };

  void expire_idle(std::uint64_t now);
  void maybe_rebuild_filter();

  TrackerConfig tracker_config_;
  std::size_t max_tracked_macs_;
  std::size_t idle_expiry_frames_;
  FlatLruMap<MacAddress, Entry> trackers_;
  MacPrefilter filter_;
  TimerWheel<MacAddress> wheel_;
  std::size_t packets_ = 0;
  std::size_t alarms_ = 0;
  std::size_t evictions_ = 0;
  std::size_t expirations_ = 0;
};

}  // namespace sa
