// Address-spoofing prevention (paper §2.3.2): bind each MAC address to a
// tracked AoA signature; flag packets whose signature diverges from the
// one trained for that address.
#pragma once

#include <list>
#include <unordered_map>

#include "sa/mac/address.hpp"
#include "sa/signature/tracker.hpp"

namespace sa {

enum class SpoofVerdict {
  kTraining,    ///< still learning this MAC's signature
  kLegitimate,  ///< signature matches the trained reference
  kSpoof,       ///< signature mismatch — injection suspected
};

struct SpoofObservation {
  SpoofVerdict verdict = SpoofVerdict::kTraining;
  double score = 0.0;
};

struct SpoofDetectorStats {
  std::size_t packets = 0;
  std::size_t alarms = 0;
  std::size_t tracked_macs = 0;
  std::size_t evictions = 0;  ///< trackers dropped by the LRU bound
};

class SpoofDetector {
 public:
  /// `max_tracked_macs` bounds the per-MAC tracker map: when a new MAC
  /// would exceed it, the least-recently-observed MAC's tracker is
  /// evicted (it retrains from scratch if that client returns). 0 means
  /// unbounded — unacceptable at deployment scale, but the historical
  /// default.
  explicit SpoofDetector(TrackerConfig tracker_config = {},
                         std::size_t max_tracked_macs = 0);

  /// Feed one (MAC, signature) pair from a decoded uplink frame. The
  /// per-MAC tracker compares subband-wise (one band = the paper's
  /// narrowband behavior, unchanged).
  SpoofObservation observe(const MacAddress& source,
                           const SubbandSignature& signature);
  /// Single-band compatibility overload.
  SpoofObservation observe(const MacAddress& source,
                           const AoaSignature& signature);

  /// Tracker for a MAC, if it has been seen.
  const SignatureTracker* tracker(const MacAddress& source) const;

  /// Forget a MAC entirely (e.g. after deauthentication).
  void forget(const MacAddress& source);

  SpoofDetectorStats stats() const;

 private:
  struct Entry {
    SignatureTracker tracker;
    std::list<MacAddress>::iterator lru;
  };

  TrackerConfig tracker_config_;
  std::size_t max_tracked_macs_;
  std::unordered_map<MacAddress, Entry> trackers_;
  std::list<MacAddress> lru_;  ///< most recently observed first
  std::size_t packets_ = 0;
  std::size_t alarms_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace sa
