// Multi-AP coordination: the controller that a SecureAngle deployment
// runs centrally. It fuses the per-AP views of each uplink frame and
// runs the configured SecurityPolicy chain over them (sa/secure/
// policy.hpp): decode gating, the ACL baseline, the virtual fence
// (Sec. 2.3.1), spoof detection (Sec. 2.3.2), per-MAC rate limiting —
// in declared order, short-circuiting on the first drop. The fusion
// step is also where cross-AP false-positive AoA removal happens
// (Sec. 3.1), via the context's cached localize() outlier rejection.
#pragma once

#include <optional>
#include <vector>

#include "sa/secure/accesspoint.hpp"
#include "sa/secure/policy.hpp"
#include "sa/secure/spoofdetector.hpp"
#include "sa/secure/virtualfence.hpp"

namespace sa {

class CaptureWriter;

struct CoordinatorConfig {
  /// Fence boundary; nullopt disables the fence check (FencePolicy is
  /// skipped even if named in `policies`).
  std::optional<Polygon> fence_boundary;
  double fence_max_residual_deg = 20.0;
  TrackerConfig tracker;
  /// LRU bound on per-MAC spoof trackers; 0 = unbounded. Under the
  /// engine the bound is split across MAC-hash shards (must then be
  /// >= num_shards), and when eviction actually fires the engine's
  /// eviction choices — hence decisions for evicted-and-returning
  /// MACs — can differ from a serial Coordinator's global LRU.
  std::size_t max_tracked_macs = 0;
  /// Expire spoof trackers idle for this many observation ticks via the
  /// detector's timing wheel; 0 (default) = never. Opt-in because an
  /// expired tracker retrains when its client returns, which changes
  /// decisions — with it off, decisions are unchanged.
  std::size_t spoof_idle_frames = 0;
  /// Minimum APs that must hear a frame before it can be localized.
  std::size_t min_aps_for_fence = 2;
  /// Fence policy when a frame is heard by fewer than min_aps_for_fence
  /// APs: false (default) = fail closed and drop it — only clients
  /// positively localized inside the boundary get access, which is the
  /// paper's intent; true = fail open and let it through.
  bool fence_fail_open = false;
  /// Policy chain, in evaluation order. DecodePolicy is implicit and
  /// always first. The default (spoof before fence) mirrors the
  /// pre-chain coordinator, keeping its output byte-identical.
  std::vector<PolicyKind> policies = default_policy_chain();
  /// Allow list for AclPolicy; required iff `policies` names kAcl.
  std::optional<AccessControlList> acl;
  /// RateLimitPolicy settings, used iff `policies` names kRateLimit.
  RateLimitConfig rate_limit;
};

class Coordinator {
 public:
  /// Builds the policy chain described by `config`.
  explicit Coordinator(CoordinatorConfig config);

  /// Custom chain: `config` still supplies the tracker settings for the
  /// spoof judge (used iff the chain contains a SpoofPolicy), but the
  /// caller composes the policies — including its own SecurityPolicy
  /// subclasses.
  Coordinator(CoordinatorConfig config, PolicyChain chain);

  /// Fuse all APs' observations of one frame and decide its fate.
  /// Precondition: every observation refers to the same transmission.
  FrameDecision process(const std::vector<ApObservation>& observations);

  /// The deployment engine's entry point: identical decision logic and
  /// statistics, but the spoof observation (present iff the frame was
  /// decodable and the chain wants spoof checking) was computed by the
  /// caller against its own MAC-sharded tracker state instead of this
  /// coordinator's detector.
  FrameDecision process_prejudged(
      const std::vector<ApObservation>& observations,
      const std::optional<SpoofObservation>& spoof);

  /// As above, but with the caller supplying the global frame index for
  /// stateful policies (rate limiting windows on it). A shard-affine
  /// worker's chain sees only its own MACs' frames, so its local frame
  /// count is not the global sequence number — the engine passes the
  /// re-sequencer's global index here to keep decisions byte-identical
  /// to a serial chain.
  FrameDecision process_prejudged(
      const std::vector<ApObservation>& observations,
      const std::optional<SpoofObservation>& spoof, std::size_t frame_index);

  /// The observation whose detection is strongest — the copy whose PHY
  /// decode and signature are the most trustworthy. The frame content
  /// and the spoof check both come from it.
  static const ApObservation& best_observation(
      const std::vector<ApObservation>& observations);

  /// Legacy aggregate view of the per-policy counters.
  struct Stats {
    std::size_t frames = 0;
    std::size_t accepted = 0;
    std::size_t dropped_fence = 0;
    std::size_t dropped_spoof = 0;
    std::size_t dropped_undecodable = 0;
    /// Drops by policies outside the default chain (ACL, rate, custom).
    std::size_t dropped_policy = 0;
  };
  Stats stats() const;
  const PolicyChain& chain() const { return chain_; }
  /// Quiescent maintenance access (fleet handoff export/import between
  /// frames) — never while process*() may be running.
  PolicyChain& mutable_chain() { return chain_; }
  /// Aggregation hooks for shard-affine deployments: an aggregator
  /// coordinator (which never decides frames itself) presents the sum of
  /// per-worker coordinators' chain counters. Both chains must have been
  /// built from the same config.
  void reset_chain_stats() { chain_.reset_stats(); }
  void add_chain_stats_from(const Coordinator& other) {
    chain_.add_stats_from(other.chain_);
  }
  /// True iff the chain contains a SpoofPolicy — i.e. callers feeding
  /// process_prejudged() must supply a spoof observation for decodable
  /// frames.
  bool wants_spoof() const { return wants_spoof_; }
  const SpoofDetector& spoof_detector() const { return spoof_; }

  /// Attach a recording tap (borrowed; may be nullptr to detach): every
  /// decision process() makes is recorded with the serial chain's own
  /// frame index as the sequence number and the best observation's
  /// detection start as the absolute start. Engine-internal per-worker
  /// coordinators never have a tap — the session's sequencer records the
  /// re-sequenced stream instead.
  void set_capture(CaptureWriter* capture) { capture_ = capture; }

 private:
  FrameDecision decide(const std::vector<ApObservation>& observations,
                       const ApObservation& best,
                       const std::optional<SpoofObservation>& spoof);

  CoordinatorConfig config_;
  PolicyChain chain_;
  bool wants_spoof_ = false;
  SpoofDetector spoof_;
  CaptureWriter* capture_ = nullptr;
};

}  // namespace sa
