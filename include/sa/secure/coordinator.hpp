// Multi-AP coordination: the controller that a SecureAngle deployment
// runs centrally. It fuses the per-AP views of each uplink frame and
// applies both defenses in one place:
//   * virtual fence — localize from the APs' direct-path bearings and
//     drop frames from outside the boundary (Sec. 2.3.1);
//   * spoof detection — track the per-MAC signature at the AP that hears
//     the client best and flag divergence (Sec. 2.3.2).
// The fusion step is also where cross-AP false-positive AoA removal
// happens (Sec. 3.1), via localize()'s outlier rejection.
#pragma once

#include <optional>
#include <vector>

#include "sa/secure/accesspoint.hpp"
#include "sa/secure/spoofdetector.hpp"
#include "sa/secure/virtualfence.hpp"

namespace sa {

struct CoordinatorConfig {
  /// Fence boundary; nullopt disables the fence check.
  std::optional<Polygon> fence_boundary;
  double fence_max_residual_deg = 20.0;
  TrackerConfig tracker;
  /// Minimum APs that must hear a frame before it can be localized.
  std::size_t min_aps_for_fence = 2;
  /// Fence policy when a frame is heard by fewer than min_aps_for_fence
  /// APs: false (default) = fail closed and drop it — only clients
  /// positively localized inside the boundary get access, which is the
  /// paper's intent; true = fail open and let it through.
  bool fence_fail_open = false;
};

/// One AP's view of a frame.
struct ApObservation {
  Vec2 ap_position;
  ReceivedPacket packet;
};

enum class FrameAction { kAccept, kDropFence, kDropSpoof, kDropUndecodable };

struct FrameDecision {
  FrameAction action = FrameAction::kAccept;
  std::optional<MacAddress> source;
  std::optional<LocalizationResult> location;
  SpoofVerdict spoof = SpoofVerdict::kTraining;
  double spoof_score = 0.0;
  const char* detail = "";
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorConfig config);

  /// Fuse all APs' observations of one frame and decide its fate.
  /// Precondition: every observation refers to the same transmission.
  FrameDecision process(const std::vector<ApObservation>& observations);

  /// The deployment engine's entry point: identical decision logic and
  /// statistics, but the spoof observation (present iff the frame was
  /// decodable) was computed by the caller against its own MAC-sharded
  /// tracker state instead of this coordinator's detector.
  FrameDecision process_prejudged(
      const std::vector<ApObservation>& observations,
      const std::optional<SpoofObservation>& spoof);

  /// The observation whose detection is strongest — the copy whose PHY
  /// decode and signature are the most trustworthy. The frame content
  /// and the spoof check both come from it.
  static const ApObservation& best_observation(
      const std::vector<ApObservation>& observations);

  struct Stats {
    std::size_t frames = 0;
    std::size_t accepted = 0;
    std::size_t dropped_fence = 0;
    std::size_t dropped_spoof = 0;
    std::size_t dropped_undecodable = 0;
  };
  const Stats& stats() const { return stats_; }
  const SpoofDetector& spoof_detector() const { return spoof_; }

 private:
  /// Everything after the spoof observation: undecodable/spoof/fence
  /// verdicts plus statistics, shared by both process paths.
  FrameDecision decide(const std::vector<ApObservation>& observations,
                       const ApObservation& best,
                       const std::optional<SpoofObservation>& spoof);

  CoordinatorConfig config_;
  std::optional<VirtualFence> fence_;
  SpoofDetector spoof_;
  Stats stats_;
};

}  // namespace sa
