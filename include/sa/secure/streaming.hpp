// Streaming capture: the WARP prototype ships 0.4 ms buffers (8000
// samples at 20 MHz) to the host; packets land anywhere in the stream,
// including straddling buffer boundaries. StreamingReceiver feeds an
// AccessPoint from a chunked sample stream, keeping enough overlap that
// a packet split across chunks is still detected and decoded exactly
// once.
#pragma once

#include <vector>

#include "sa/secure/accesspoint.hpp"

namespace sa {

struct StreamingConfig {
  /// Samples retained across chunk boundaries. Must cover the longest
  /// packet expected plus detection margin; the default covers ~55 data
  /// symbols (a few hundred bytes at 6 Mbps).
  std::size_t history_samples = 6000;
  /// A detection this close to the buffer end is deferred until more
  /// samples arrive (the packet may be truncated mid-air).
  std::size_t tail_guard = 480;
  /// A detection whose PHY decode fails is retried until this many
  /// samples have accumulated past its start (the decode may have failed
  /// only because the packet is still arriving); after that it is
  /// emitted as undecodable. Must be < history_samples.
  std::size_t max_packet_samples = 4800;
};

class StreamingReceiver {
 public:
  StreamingReceiver(AccessPoint& ap, StreamingConfig config = {});

  /// Feed the next contiguous chunk (rows = antennas). Returns packets
  /// newly completed, each stamped with its absolute start sample.
  struct StreamPacket {
    std::size_t absolute_start = 0;
    ReceivedPacket packet;
  };
  std::vector<StreamPacket> push(const CMat& chunk);

  /// Process whatever remains (end of capture): deferred detections are
  /// emitted now even if possibly truncated.
  std::vector<StreamPacket> flush();

  /// Total samples consumed so far.
  std::size_t samples_seen() const { return base_ + buffered_cols_; }

 private:
  std::vector<StreamPacket> run(bool final_pass);
  void trim();

  AccessPoint& ap_;
  StreamingConfig config_;
  CMat buffer_;                 // rows = antennas; cols grow then trim
  std::size_t buffered_cols_ = 0;
  std::size_t base_ = 0;        // absolute index of buffer_ column 0
  std::size_t emit_watermark_ = 0;  // absolute end of last emitted packet
};

}  // namespace sa
