// Streaming capture: the WARP prototype ships 0.4 ms buffers (8000
// samples at 20 MHz) to the host; packets land anywhere in the stream,
// including straddling buffer boundaries. StreamingReceiver feeds an
// AccessPoint from a chunked sample stream, keeping enough overlap that
// a packet split across chunks is still detected and decoded exactly
// once.
//
// The scan hot path is incremental: history lives in a ColumnRing (O(1)
// append/trim, no full-matrix copies), each sample is conditioned
// exactly once when appended (AccessPoint::condition_cols), and
// detection runs through IncrementalScDetector, which memoizes the LTF
// fine-timing searches by absolute position. Steady-state scan work is
// O(chunk) heavy math plus an O(history) light replay of the coarse
// Schmidl-Cox recurrences (origin-dependent floats; see
// incremental_detector.hpp) and the snapshot copy — and the emitted
// packet stream is bit-identical to the pre-incremental receiver for
// every chunk schedule.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "sa/linalg/column_ring.hpp"
#include "sa/phy/incremental_detector.hpp"
#include "sa/secure/accesspoint.hpp"

namespace sa {

struct StreamingConfig {
  /// Samples retained across chunk boundaries. Must cover the longest
  /// packet expected plus detection margin; the default covers ~55 data
  /// symbols (a few hundred bytes at 6 Mbps).
  std::size_t history_samples = 6000;
  /// A detection this close to the buffer end is deferred until more
  /// samples arrive (the packet may be truncated mid-air).
  std::size_t tail_guard = 480;
  /// A detection whose PHY decode fails is retried until this many
  /// samples have accumulated past its start (the decode may have failed
  /// only because the packet is still arriving); after that it is
  /// emitted as undecodable. Must be < history_samples.
  std::size_t max_packet_samples = 4800;
};

class StreamingReceiver {
 public:
  /// Throws InvalidArgument when `config` violates its invariants
  /// (notably max_packet_samples < history_samples).
  StreamingReceiver(AccessPoint& ap, StreamingConfig config = {});

  /// Feed the next contiguous chunk (rows = antennas). Returns packets
  /// newly completed, each stamped with its absolute start sample.
  struct StreamPacket {
    std::size_t absolute_start = 0;
    ReceivedPacket packet;
  };
  std::vector<StreamPacket> push(const CMat& chunk);

  /// Process whatever remains (end of capture): deferred detections are
  /// emitted now even if possibly truncated.
  std::vector<StreamPacket> flush();

  // --- Two-phase variant, for callers that schedule the per-frame work
  // themselves (the deployment engine fans candidates across a thread
  // pool). push(chunk) == scan(&chunk) + demodulate each candidate +
  // commit(..., false); flush() == the same with nullptr/true.
  //
  // Commit-behind: a Scan captures its own absolute coordinates (base,
  // seen) and commit's emit/defer arithmetic uses *those*, not the live
  // buffer fields. A pipelined caller (EngineSession) may therefore run
  // scan for round N+1 before commit for round N has been applied, as
  // long as (a) scans happen in round order, (b) commits happen in round
  // order, (c) commit N never precedes scan N, and (d) all calls on one
  // receiver are externally serialized (no physical concurrency). A scan
  // taken ahead of a pending commit sees a stale emit watermark and an
  // untrimmed buffer, so it may list candidates the pending commit is
  // about to cover — commit drops those deterministically against the
  // then-current watermark, and the emitted packet stream is identical
  // to the lock-step schedule.

  /// One not-yet-emitted detection in the current buffer.
  struct Candidate {
    std::size_t absolute_start = 0;
    PacketDetection detection;
  };
  /// The conditioned buffer plus the candidates found in it. `conditioned`
  /// is shared so workers can process candidates concurrently; it is null
  /// when too few samples are buffered to scan — and, since the
  /// incremental hot path, also when the scan found no candidates:
  /// every consumer reads it per candidate, so an idle scan skips the
  /// O(history) snapshot copy entirely.
  struct Scan {
    std::shared_ptr<const CMat> conditioned;
    std::vector<Candidate> candidates;
    /// Absolute stream index of `conditioned` column 0 at scan time.
    std::size_t base = 0;
    /// Absolute samples consumed at scan time (== base + conditioned
    /// columns); commit's retry-deadline arithmetic anchors here.
    std::size_t seen = 0;
    /// Absolute samples consumed *before* this scan's chunk was appended.
    /// Candidates starting at/after this index are new in this round;
    /// earlier ones are retries of detections a previous round deferred
    /// (or duplicates a pending commit is about to emit).
    std::size_t prev_seen = 0;
  };

  /// Phase 1: append `chunk` (nullptr appends nothing — the flush path),
  /// condition the buffer, run detection, and list the candidates.
  Scan scan(const CMat* chunk);
  /// Phase 2: `processed[i]` must be
  /// ap().demodulate(*scan.conditioned, scan.candidates[i].detection) —
  /// or nullopt for a candidate below the current emit watermark (commit
  /// skips those before ever looking at `processed`). Applies the
  /// emit/defer state machine in candidate order and advances the buffer
  /// (trims history; on final_pass, resets it).
  std::vector<StreamPacket> commit(
      const Scan& scan, std::vector<std::optional<ReceivedPacket>> processed,
      bool final_pass);

  /// Absolute end of the last emitted packet. Pipelined callers consult
  /// this (after the preceding round's commit) to skip re-decoding
  /// candidates an earlier commit already covered.
  std::size_t emit_watermark() const { return emit_watermark_; }

  const AccessPoint& ap() const { return ap_; }
  const StreamingConfig& config() const { return config_; }

  /// Total samples consumed so far.
  std::size_t samples_seen() const { return base_ + buffered_cols_; }

  /// Fine-timing-search cache behavior of the incremental detector
  /// (observability for tests and benches).
  const IncrementalScDetector& incremental_detector() const {
    return detector_;
  }

 private:
  void trim();

  AccessPoint& ap_;
  StreamingConfig config_;
  /// Conditioned history window. Samples are conditioned exactly once,
  /// when their chunk is appended (AccessPoint::condition_cols); scan
  /// materializes the Scan::conditioned snapshot from here with a plain
  /// copy — the steady-state scan never re-runs conditioning math or
  /// re-copies the history to append/trim.
  ColumnRing cond_;
  IncrementalScDetector detector_;
  /// Snapshot recycling: scan hands out shared_ptr<const CMat> snapshots;
  /// once every consumer drops one (use_count back to 1 here), its
  /// allocation is reused for a later scan instead of paying a fresh
  /// multi-MB allocation + page-fault per round. Bounded, so a pipelined
  /// caller holding several rounds in flight just falls back to fresh
  /// allocations.
  std::vector<std::shared_ptr<CMat>> snapshot_pool_;
  std::size_t buffered_cols_ = 0;
  std::size_t base_ = 0;        // absolute index of window column 0
  std::size_t emit_watermark_ = 0;  // absolute end of last emitted packet
};

}  // namespace sa
