// Composable frame-decision policies. SecureAngle's AoA signatures are a
// *platform* for link-layer defenses, not just the two the paper
// evaluates: the ACL baseline (§1), virtual fences (§2.3.1), spoof
// detection (§2.3.2), and whatever a deployment needs next. A
// SecurityPolicy is one such defense; a PolicyChain runs them in
// declared order over one fused frame, short-circuiting on the first
// drop and keeping per-policy accept/drop counters.
//
// The chain is deterministic by construction: policies run sequentially
// over an already re-sequenced frame stream, so any stateful policy
// (spoof tracking, rate limiting) sees frames in the same global order
// at any engine thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "sa/common/compact/flat_lru_map.hpp"
#include "sa/common/compact/timer_wheel.hpp"
#include "sa/mac/acl.hpp"
#include "sa/secure/accesspoint.hpp"
#include "sa/secure/spoofdetector.hpp"
#include "sa/secure/virtualfence.hpp"

namespace sa {

/// One AP's view of a frame.
struct ApObservation {
  Vec2 ap_position;
  ReceivedPacket packet;
};

/// Legacy closed-world verdict, kept for callers that predate the
/// policy chain. FrameDecision::action() maps the default chain's
/// outcomes onto it; drops by policies outside the default chain
/// (ACL, rate limit, custom) map to kDropPolicy.
enum class FrameAction {
  kAccept,
  kDropFence,
  kDropSpoof,
  kDropUndecodable,
  kDropPolicy,
};

/// What one policy says about one frame.
struct PolicyVerdict {
  bool drop = false;
  std::string_view detail = "";

  static PolicyVerdict accept(std::string_view detail = "") {
    return {false, detail};
  }
  static PolicyVerdict deny(std::string_view detail) { return {true, detail}; }
};

/// One policy's entry in a frame's evaluation trace.
struct PolicyTrace {
  std::string_view policy;
  bool dropped = false;
  std::string_view detail = "";
};

/// The chain's decision for one fused frame. `detail` and the trace
/// entries are std::string_view over string constants with static
/// storage duration, so decisions stay valid across copies and the
/// engine's re-sequencing queue.
struct FrameDecision {
  bool accepted = true;
  /// Name of the policy that dropped the frame; empty when accepted.
  std::string_view policy = "";
  std::string_view detail = "";
  std::optional<MacAddress> source;
  std::optional<LocalizationResult> location;
  SpoofVerdict spoof = SpoofVerdict::kTraining;
  double spoof_score = 0.0;
  /// Per-policy results in evaluation order (ends at the first drop).
  std::vector<PolicyTrace> trace;

  /// Compatibility mapping onto the pre-chain enum.
  FrameAction action() const;
};

/// Everything the policies may consult about one fused frame: the per-AP
/// observations, the best (strongest-detection) observation, the decoded
/// source MAC, the pre-judged spoof observation, and a
/// lazily-computed-and-cached localization so fence-like policies don't
/// re-solve the bearing intersection.
class FrameContext {
 public:
  FrameContext(const std::vector<ApObservation>& observations,
               const ApObservation& best, std::size_t frame_index,
               std::optional<SpoofObservation> spoof);

  const std::vector<ApObservation>& observations() const {
    return *observations_;
  }
  const ApObservation& best() const { return *best_; }
  /// Global frame index (0-based, monotonically increasing per chain).
  std::size_t frame_index() const { return frame_index_; }
  bool decoded() const { return source_.has_value(); }
  /// Source MAC of the best observation's decoded frame, if any.
  const std::optional<MacAddress>& source() const { return source_; }
  /// The spoof judge's observation; nullopt when the frame was
  /// undecodable or no spoof policy is in play.
  const std::optional<SpoofObservation>& spoof() const { return spoof_; }

  /// Localization from every AP's bearing candidates, solved at most
  /// once per frame and cached (see sa::localize for the outlier
  /// rejection semantics).
  const std::optional<LocalizationResult>& localization();
  bool localization_computed() const { return localization_computed_; }

 private:
  const std::vector<ApObservation>* observations_;
  const ApObservation* best_;
  std::size_t frame_index_;
  std::optional<MacAddress> source_;
  std::optional<SpoofObservation> spoof_;
  bool localization_computed_ = false;
  std::optional<LocalizationResult> location_;
};

/// One composable link-layer defense. name() and every verdict detail
/// must view storage that outlives the decisions referencing them — in
/// practice, string literals (see the kName/kDetail constants on the
/// built-in policies).
class SecurityPolicy {
 public:
  virtual ~SecurityPolicy() = default;
  virtual std::string_view name() const = 0;
  virtual PolicyVerdict evaluate(FrameContext& ctx) = 0;
};

/// Runs policies in declared order; the first drop wins.
class PolicyChain {
 public:
  PolicyChain() = default;
  PolicyChain(PolicyChain&&) = default;
  PolicyChain& operator=(PolicyChain&&) = default;

  PolicyChain& add(std::unique_ptr<SecurityPolicy> policy);

  /// Evaluate one frame. Fills the decision's source/spoof/location from
  /// the context and records the per-policy trace.
  FrameDecision run(FrameContext& ctx);

  struct PolicyStats {
    std::string_view name;
    std::size_t evaluated = 0;
    std::size_t accepted = 0;
    std::size_t dropped = 0;
  };
  const std::vector<PolicyStats>& policy_stats() const { return stats_; }
  std::size_t frames() const { return frames_; }
  std::size_t accepted() const { return accepted_; }
  /// Drops attributed to the named policy (0 if absent).
  std::size_t drops(std::string_view policy_name) const;

  std::size_t size() const { return policies_.size(); }
  const SecurityPolicy& policy(std::size_t i) const { return *policies_[i]; }
  /// Mutable policy access, for quiescent maintenance only (fleet
  /// handoff import/export between frames) — never while run() may be
  /// executing on another thread.
  SecurityPolicy& policy_mutable(std::size_t i) { return *policies_[i]; }
  bool contains(std::string_view policy_name) const;

  /// Zero all counters (policy list untouched). With add_stats_from this
  /// lets an aggregator chain present the sum of per-worker chains.
  void reset_stats();
  /// Accumulate another chain's counters into this one. Precondition:
  /// both chains were built from the same policy list (same names, same
  /// order); frame totals and per-policy rows add element-wise.
  void add_stats_from(const PolicyChain& other);

 private:
  std::vector<std::unique_ptr<SecurityPolicy>> policies_;
  std::vector<PolicyStats> stats_;
  std::size_t frames_ = 0;
  std::size_t accepted_ = 0;
};

// ------------------------------------------------------------- policies

/// Drops frames no AP decoded (bad FCS / PHY failure). Always the first
/// link in any chain the Coordinator builds: later policies may assume
/// a decoded source MAC.
class DecodePolicy final : public SecurityPolicy {
 public:
  static constexpr std::string_view kName = "decode";
  static constexpr std::string_view kDetailUndecodable =
      "no AP decoded a valid frame (FCS)";

  std::string_view name() const override { return kName; }
  PolicyVerdict evaluate(FrameContext& ctx) override;
};

/// The paper's §1 baseline, finally composable into the real pipeline:
/// drop frames whose source MAC is not on the allow list. Weak alone
/// (MACs are trivially forged) — the point of the paper. Note the spoof
/// judge observes every decodable frame *before* the chain runs, so an
/// ACL in front does not stop unknown MACs from allocating trackers;
/// bound that with CoordinatorConfig::max_tracked_macs.
class AclPolicy final : public SecurityPolicy {
 public:
  static constexpr std::string_view kName = "acl";
  static constexpr std::string_view kDetailDenied = "source MAC not in ACL";

  explicit AclPolicy(AccessControlList acl) : acl_(std::move(acl)) {}

  std::string_view name() const override { return kName; }
  PolicyVerdict evaluate(FrameContext& ctx) override;

  const AccessControlList& acl() const { return acl_; }
  /// Quiescent maintenance access (fleet handoff installs a roaming
  /// client's allow-entry between frames).
  AccessControlList& mutable_acl() { return acl_; }

 private:
  AccessControlList acl_;
};

/// Virtual fence (§2.3.1): localize the client from the APs' bearings
/// and drop frames from outside the boundary.
class FencePolicy final : public SecurityPolicy {
 public:
  static constexpr std::string_view kName = "fence";
  static constexpr std::string_view kDetailTooFewAps =
      "too few APs heard the frame to localize it";

  FencePolicy(VirtualFence fence, std::size_t min_aps, bool fail_open);

  std::string_view name() const override { return kName; }
  PolicyVerdict evaluate(FrameContext& ctx) override;

  const VirtualFence& fence() const { return fence_; }

 private:
  VirtualFence fence_;
  std::size_t min_aps_;
  bool fail_open_;
};

/// Spoof detection (§2.3.2): drop frames whose signature diverges from
/// the reference trained for their MAC. The judgment itself is made by
/// the caller's detector (the Coordinator's serial SpoofDetector, or
/// the engine's ShardedSpoofDetector) *before* the chain runs, for
/// every decodable frame — training advances even when another policy
/// drops the frame, exactly as the pre-chain pipeline behaved.
class SpoofPolicy final : public SecurityPolicy {
 public:
  static constexpr std::string_view kName = "spoof";
  static constexpr std::string_view kDetailSpoof =
      "signature diverges from the trained reference";

  std::string_view name() const override { return kName; }
  PolicyVerdict evaluate(FrameContext& ctx) override;
};

struct RateLimitConfig {
  /// Frames a single MAC may send within any `window_frames`-long span
  /// of the global frame stream; the next one is dropped.
  std::size_t max_frames = 32;
  /// Window length, in global frame indices.
  std::size_t window_frames = 128;
  /// Bound on the per-MAC history map (LRU eviction); 0 = unbounded.
  std::size_t max_tracked_macs = 4096;
};

/// Per-MAC frame-rate limiter — a flooding-attacker defense the paper
/// doesn't have but the policy chain makes trivial. Fail-closed: a
/// frame with no decodable source MAC is dropped rather than waved
/// through (DecodePolicy normally drops those first).
///
/// State is a per-MAC in-window counter plus one timing-wheel decrement
/// event per admitted frame, due exactly one window after the admit —
/// provably the same decisions as the historical sliding-window log (an
/// admit at frame a leaves the window at now = a + window_frames, which
/// is precisely when its decrement fires), without storing the log.
/// A MAC whose count reaches zero is erased outright, so idle clients
/// cost nothing: live entries are bounded by the frames in flight in
/// one window, not by the client population. The wheel is driven by the
/// frame indices the policy evaluates — under the engine, the global
/// sequence numbers the shard-affine worker's chain sees in fixed order
/// at any thread count.
///
/// tracked_macs() therefore counts MACs with in-window frames (the
/// node-based implementation also counted idle MACs until LRU eviction
/// pushed them out). When `max_tracked_macs` actually binds, eviction
/// choices — hence decisions for evicted-and-returning MACs — can
/// differ from the old implementation; in-capacity decisions are
/// byte-identical.
class RateLimitPolicy final : public SecurityPolicy {
 public:
  static constexpr std::string_view kName = "rate";
  static constexpr std::string_view kDetailNoSource =
      "no source MAC to rate-limit (fail closed)";
  static constexpr std::string_view kDetailLimited =
      "per-MAC frame rate limit exceeded";

  explicit RateLimitPolicy(RateLimitConfig config);

  std::string_view name() const override { return kName; }
  PolicyVerdict evaluate(FrameContext& ctx) override;

  std::size_t tracked_macs() const { return history_.size(); }
  std::size_t evictions() const { return evictions_; }
  const RateLimitConfig& config() const { return config_; }

  /// Retire every decrement due at or before `frame` without evaluating
  /// a frame. The fleet-handoff export hook: at quiescence the caller
  /// advances the window to the global frame clock first, so the
  /// exported residue is a pure function of the frame stream (how far
  /// the wheel had lazily advanced is otherwise workload-dependent).
  void advance_to(std::size_t frame);

  /// A MAC's current in-window admit count; nullopt when idle (a MAC
  /// with zero residue is erased outright, see above). Read-only: no
  /// LRU touch.
  std::optional<std::uint32_t> export_residue(const MacAddress& mac) const;

  /// Install handed-off residue under the documented *rate-window
  /// restart rule*: the carried admits are treated as if they all
  /// happened at the client's first post-handoff frame here — their
  /// decrements are scheduled one full window after that frame (the
  /// source site's wheel deadlines are in its own frame clock and
  /// cannot be carried across). The count is clamped to max_frames
  /// (no-op for honest handoffs; a forged larger residue must not deny
  /// forever). Zero residue erases the entry. Bumps the entry
  /// generation, so decrements scheduled for any prior incarnation of
  /// this MAC are dead on arrival.
  void import_residue(const MacAddress& mac, std::uint32_t in_window);

  /// Drop a MAC's residue outright (handoff source side).
  void forget(const MacAddress& mac);

  /// Footprint of the counter map and the decrement wheel.
  std::size_t memory_bytes() const {
    return history_.memory_bytes() + wheel_.memory_bytes();
  }

 private:
  struct RateState {
    std::uint32_t in_window = 0;  ///< admits in the trailing window
    std::uint32_t generation = 0;
    /// Residue was imported via handoff and its decrements are not yet
    /// scheduled; the first local evaluate() schedules them (the
    /// rate-window restart rule).
    bool restart_pending = false;
  };
  /// Decrement events carry the entry generation so a stale event from
  /// before an LRU eviction cannot debit the MAC's next incarnation.
  struct Decrement {
    MacAddress mac;
    std::uint32_t generation = 0;
  };

  void retire_until(std::uint64_t now);

  RateLimitConfig config_;
  FlatLruMap<MacAddress, RateState> history_;
  TimerWheel<Decrement> wheel_;
  std::uint32_t next_generation_ = 0;
  std::size_t evictions_ = 0;
};

// ------------------------------------------------------- chain building

/// The built-in policies a config can name. DecodePolicy is implicit:
/// every Coordinator-built chain starts with it.
enum class PolicyKind { kAcl, kFence, kSpoof, kRateLimit };

std::string_view to_string(PolicyKind kind);
std::optional<PolicyKind> policy_kind_from_string(std::string_view name);

/// The default chain: spoof before fence, mirroring the pre-chain
/// coordinator's decision order so the default pipeline's output stays
/// byte-identical to the original.
inline std::vector<PolicyKind> default_policy_chain() {
  return {PolicyKind::kSpoof, PolicyKind::kFence};
}

}  // namespace sa
