// Image-method multipath ray tracer (2D).
//
// For each transmitter/receiver pair the tracer enumerates:
//   * the direct path, attenuated by free space and wall penetration;
//   * first-order specular reflections (mirror the TX across each wall,
//     intersect the image-to-RX segment with the wall to find the bounce
//     point);
//   * optionally second-order reflections (mirror of mirror).
// Each path carries its arrival bearing at the receiver — that set of
// bearings is exactly what MUSIC sees and what makes a SecureAngle
// signature location-specific.
#pragma once

#include <vector>

#include "sa/channel/floorplan.hpp"
#include "sa/linalg/cvec.hpp"

namespace sa {

struct PropagationPath {
  /// tx, bounce points..., rx.
  std::vector<Vec2> points;
  double length_m = 0.0;
  /// World azimuth (deg, CCW from +x) the wave arrives *from*, as seen at
  /// the receiver: the bearing from RX toward the last bounce (or TX).
  double arrival_bearing_deg = 0.0;
  /// Departure azimuth at the transmitter (toward first bounce or RX).
  double departure_bearing_deg = 0.0;
  /// Complex amplitude: free-space 1/d law, reflection and penetration
  /// coefficients, carrier phase exp(-j 2 pi d / lambda).
  cd gain{0.0, 0.0};
  double delay_s = 0.0;
  int num_reflections = 0;
};

struct RayTracerConfig {
  double carrier_hz = 2.4e9;
  int max_reflections = 2;       ///< 0 = direct only, 1 or 2 bounces
  double min_gain_db = -110.0;   ///< drop paths weaker than this (vs 1 m ref)
  /// Reference amplitude at 1 m; amplitude = ref / d * coefficients.
  double reference_amplitude = 1.0;
};

class RayTracer {
 public:
  explicit RayTracer(RayTracerConfig config = {});

  /// All propagation paths from tx to rx, strongest first.
  std::vector<PropagationPath> trace(Vec2 tx, Vec2 rx,
                                     const Floorplan& plan) const;

  const RayTracerConfig& config() const { return config_; }

 private:
  RayTracerConfig config_;
};

}  // namespace sa
