// Indoor floorplan: walls and obstacles with RF properties. Consumed by
// the image-method ray tracer to produce location-dependent multipath —
// the physical basis of SecureAngle's signatures.
#pragma once

#include <vector>

#include "sa/common/geometry.hpp"

namespace sa {

struct Wall {
  Segment segment;
  /// Attenuation when a path crosses this wall [dB]; use a large value
  /// (e.g. 200) for RF-opaque structures like the cement pillar.
  double transmission_loss_db = 10.0;
  /// Specular reflection amplitude coefficient in [0, 1].
  double reflectivity = 0.6;
  /// Human-readable label for debugging/plots.
  const char* name = "wall";
};

class Floorplan {
 public:
  Floorplan() = default;

  void add_wall(Wall wall);
  /// Add the four walls of an axis-aligned room.
  void add_room(Vec2 min_corner, Vec2 max_corner, double loss_db = 12.0,
                double reflectivity = 0.6, const char* name = "room");
  /// Add a closed polygonal obstacle (e.g. the cement pillar of Fig. 4).
  void add_obstacle(const Polygon& shape, double loss_db,
                    double reflectivity, const char* name = "obstacle");

  const std::vector<Wall>& walls() const { return walls_; }
  std::size_t size() const { return walls_.size(); }

  /// Sum of transmission losses [dB] over every wall the open segment
  /// (from, to) crosses. 0 for line-of-sight.
  double penetration_loss_db(Vec2 from, Vec2 to) const;

  /// True when no wall crosses the open segment (from, to).
  bool line_of_sight(Vec2 from, Vec2 to) const;

 private:
  std::vector<Wall> walls_;
};

}  // namespace sa
