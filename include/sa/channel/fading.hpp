// Temporal channel dynamics.
//
// Paper §3.2: multi-antenna channels at 2 GHz have median coherence
// times of ~25 ms (walking-speed receiver) to ~125 ms (stationary), and
// Fig. 6 shows SecureAngle pseudospectra whose direct-path peak is stable
// from seconds out to a day while reflection peaks wander.
//
// We model each propagation path's complex gain as the ray-traced mean
// plus two AR(1) (Ornstein-Uhlenbeck) perturbations:
//   * a fast fading term with the MIMO coherence time (ms scale), and
//   * a slow environmental term (minutes-to-hours) that is small on the
//     direct path and larger on reflection paths — obstacles and people
//     move; the direct geometry does not.
// AR(1) correlation over a step dt is rho = exp(-dt / tau), which gives
// the standard exponential coherence profile.
#pragma once

#include <vector>

#include "sa/channel/raytracer.hpp"
#include "sa/common/rng.hpp"

namespace sa {

struct FadingConfig {
  double fast_coherence_s = 0.125;   ///< stationary receiver (paper cite [3])
  double slow_coherence_s = 1800.0;  ///< environment churn, ~30 min
  /// Fractional gain perturbation (std dev) on the direct path.
  double direct_fast_sigma = 0.05;
  double direct_slow_sigma = 0.03;
  /// Reflection paths wobble more (people/obstacles move).
  double reflection_fast_sigma = 0.08;
  double reflection_slow_sigma = 0.25;
};

/// Evolves multiplicative per-path fading factors over time.
class PathFading {
 public:
  /// One AR(1) pair per path in `paths`; reflection-order decides sigma.
  PathFading(const std::vector<PropagationPath>& paths, FadingConfig config,
             Rng& rng);

  /// Advance the processes by dt seconds (dt >= 0).
  void advance(double dt_s);

  std::size_t size() const { return states_.size(); }

  /// Multiplicative factor for path i at the current time.
  cd factor(std::size_t i) const;

  /// Apply the current factors to a copy of the traced paths.
  std::vector<PropagationPath> faded_paths(
      const std::vector<PropagationPath>& paths) const;

  const FadingConfig& config() const { return config_; }

 private:
  struct State {
    cd fast{0.0, 0.0};
    cd slow{0.0, 0.0};
    double fast_sigma = 0.0;
    double slow_sigma = 0.0;
  };
  FadingConfig config_;
  std::vector<State> states_;
  Rng rng_;
};

/// Empirical coherence time of a scalar AR(1) fading stream: the lag at
/// which the autocorrelation of samples spaced `dt_s` apart first drops
/// below 0.5. Used by the Sec. 3.2 bench.
double empirical_coherence_time(const std::vector<cd>& series, double dt_s);

}  // namespace sa
