// Multi-antenna channel application: turns a transmit waveform plus a set
// of ray-traced propagation paths into per-antenna receive sample
// streams, with the narrowband plane-wave approximation across the array
// (paths arrive at each element with a bearing-dependent phase; the
// sub-nanosecond delay differences across a <1 m aperture are far below
// one 50 ns sample).
//
// Per antenna m:  y_m[t] = sum_p g_p * e^{+j 2 pi (q_m . u_p) / lambda}
//                          * x[t - tau_p] + n_m[t]
// where q_m is the element offset from the array reference point and u_p
// points from the array toward the path's arrival bearing.
#pragma once

#include "sa/array/geometry.hpp"
#include "sa/channel/raytracer.hpp"
#include "sa/common/rng.hpp"
#include "sa/linalg/cmat.hpp"

namespace sa {

struct ChannelConfig {
  double carrier_hz = 2.4e9;
  double sample_rate_hz = 20e6;
  /// Thermal noise power per antenna per sample (set relative to the ray
  /// tracer's reference amplitude). 0 disables noise.
  double noise_power = 1e-9;
  /// Client-vs-AP carrier frequency offset [Hz] (all AP chains share one
  /// clock, so one CFO per client, identical on every antenna).
  double cfo_hz = 0.0;
};

/// Placement of an AP's antenna array in the world.
struct ArrayPlacement {
  ArrayGeometry geometry;
  Vec2 origin;
  double orientation_deg = 0.0;
};

class ChannelSimulator {
 public:
  explicit ChannelSimulator(ChannelConfig config = {});

  /// Narrowband channel vector h (one complex gain per antenna) for a
  /// set of traced paths — the CW / single-snapshot view used by unit
  /// tests and quick AoA experiments.
  CVec channel_vector(const std::vector<PropagationPath>& paths,
                      const ArrayPlacement& placement) const;

  /// Full sample-level propagation of `waveform` over `paths` onto every
  /// antenna. Rows = antennas, cols = samples. Output length covers the
  /// waveform plus the maximum path delay. Noise is added when
  /// noise_power > 0.
  CMat propagate(const CVec& waveform,
                 const std::vector<PropagationPath>& paths,
                 const ArrayPlacement& placement, Rng& rng) const;

  /// Sum a second transmission into an existing receive buffer starting
  /// at sample `offset` (co-channel interference / multiple clients).
  void mix_into(CMat& rx, const CVec& waveform,
                const std::vector<PropagationPath>& paths,
                const ArrayPlacement& placement, std::size_t offset,
                Rng& rng) const;

  const ChannelConfig& config() const { return config_; }

 private:
  /// Per-antenna steering phases for one path at this placement.
  CVec path_steering(const PropagationPath& path,
                     const ArrayPlacement& placement) const;

  ChannelConfig config_;
};

}  // namespace sa
