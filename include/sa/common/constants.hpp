// Physical constants and radio-band helpers shared across SecureAngle.
#pragma once

namespace sa {

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Pi to double precision (std::numbers::pi is available but a named
/// constant here keeps the DSP code readable without a using-directive).
inline constexpr double kPi = 3.141592653589793238462643383279502884;
inline constexpr double kTwoPi = 2.0 * kPi;

/// 2.4 GHz ISM-band carrier used throughout the paper's prototype.
inline constexpr double kDefaultCarrierHz = 2.4e9;

/// 20 MHz of captured signal bandwidth (paper §3, WARP sample buffers).
inline constexpr double kDefaultSampleRateHz = 20e6;

/// Wavelength [m] of a carrier at frequency `hz`.
constexpr double wavelength(double hz) { return kSpeedOfLight / hz; }

/// Half-wavelength element spacing [m] at the default carrier — the
/// paper's linear arrangement uses 6.13 cm, i.e. lambda/2 at 2.4 GHz.
inline constexpr double kHalfWavelength24GHz = kSpeedOfLight / kDefaultCarrierHz / 2.0;

}  // namespace sa
