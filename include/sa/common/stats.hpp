// Descriptive statistics and confidence intervals for experiment reporting.
//
// The paper reports bearing estimates as means with 99% confidence
// intervals over 10 packets (Fig. 5) and per-client error percentiles
// (§2.3.1); these helpers compute exactly those quantities. The Student-t
// quantile is computed from first principles via the regularized
// incomplete beta function, so small-sample (n = 10) intervals are exact.
#pragma once

#include <cstddef>
#include <vector>

namespace sa {

double mean(const std::vector<double>& xs);
/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double variance(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);
double median(const std::vector<double>& xs);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::vector<double> xs, double p);

/// Regularized incomplete beta function I_x(a, b) via the Lentz continued
/// fraction. Domain: a, b > 0 and x in [0, 1].
double incomplete_beta(double a, double b, double x);

/// CDF of Student's t distribution with `df` degrees of freedom.
double student_t_cdf(double t, double df);

/// Two-sided critical value t* such that P(|T| <= t*) = confidence.
/// E.g. student_t_critical(0.99, 9) for a 99% CI over 10 samples.
double student_t_critical(double confidence, double df);

/// A mean together with its symmetric confidence half-width.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;  ///< CI is [mean - half_width, mean + half_width]
  double confidence = 0.0;  ///< e.g. 0.99
  std::size_t n = 0;
};

/// Student-t confidence interval for the mean of `xs`.
ConfidenceInterval confidence_interval(const std::vector<double>& xs,
                                       double confidence);

/// Running accumulator (Welford) for streaming mean/variance.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 for n < 2.
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Empirical CDF evaluated at x: fraction of samples <= x.
double empirical_cdf(const std::vector<double>& xs, double x);

/// Value v such that empirical_cdf(xs, v) >= q (quantile, q in [0,1]).
double empirical_quantile(std::vector<double> xs, double q);

}  // namespace sa
