// Minimal leveled logger. Defaults to warnings-and-up on stderr so that
// library code can report anomalies (calibration drift, tracker resets)
// without polluting benchmark stdout.
#pragma once

#include <sstream>
#include <string>

namespace sa {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line at `level` (thread-safe with respect to interleaving).
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace sa
