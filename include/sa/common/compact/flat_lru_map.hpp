// Flat open-addressing hash map with intrusive LRU linkage — the
// per-MAC state substrate for million-client deployments. One
// contiguous slot array holds key, value and the LRU list (u32
// prev/next slot indices), so a tracked client costs bytes, not
// allocations: no nodes, no per-entry malloc, no pointer chasing on
// the hot path.
//
// Layout and invariants:
//  - power-of-two capacity, linear probing, grown before load factor
//    exceeds 13/16;
//  - tombstone-free deletion via Knuth backward-shift: erasing a slot
//    shifts each successor in its probe run back by one (never past its
//    home slot), so probe runs stay contiguous and lookups terminate at
//    the first empty slot;
//  - the LRU list is threaded through the slots themselves; relocating
//    a slot (backward shift, rehash) re-patches its neighbours' links,
//    so recency order survives table maintenance exactly;
//  - `max_entries` bounds the map: inserting a new key at the bound
//    evicts the least-recently-used entry first and reports its key, so
//    callers can keep eviction stats and prefilters honest.
//
// Recency policy (matches the spoof detector's historical behaviour):
// get_or_emplace() and touch() refresh recency; find() is a pure read
// and does not. Pointers returned by find()/get_or_emplace() are
// invalidated by any later mutation (erase or insert may shift or
// rehash slots) — use them immediately.
//
// Not thread safe; in the engine each shard-affine worker owns its
// maps outright, so no locks are needed or taken.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sa/common/error.hpp"

namespace sa {

/// 64-bit avalanche finalizer (splitmix64). std::hash is identity-like
/// for small keys; power-of-two masking needs every input bit to reach
/// the low bits.
inline std::uint64_t compact_mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

template <class K, class V, class Hash = std::hash<K>>
class FlatLruMap {
 public:
  /// `max_entries` bounds the map (0 = unbounded): inserting a new key
  /// at the bound evicts the least-recently-used entry first.
  explicit FlatLruMap(std::size_t max_entries = 0)
      : max_entries_(max_entries) {}

  FlatLruMap(FlatLruMap&& other) noexcept { steal(other); }
  FlatLruMap& operator=(FlatLruMap&& other) noexcept {
    if (this != &other) {
      destroy_all();
      steal(other);
    }
    return *this;
  }

  FlatLruMap(const FlatLruMap& other)
    requires std::is_copy_constructible_v<V>
      : max_entries_(other.max_entries_), hash_(other.hash_) {
    copy_entries_from(other);
  }
  FlatLruMap& operator=(const FlatLruMap& other)
    requires std::is_copy_constructible_v<V>
  {
    if (this != &other) {
      destroy_all();
      slots_.clear();
      size_ = 0;
      head_ = tail_ = kNil;
      max_entries_ = other.max_entries_;
      hash_ = other.hash_;
      copy_entries_from(other);
    }
    return *this;
  }

  ~FlatLruMap() { destroy_all(); }

  struct EmplaceResult {
    V* value = nullptr;
    bool inserted = false;  ///< true when the key was not present
    bool evicted = false;   ///< true when the LRU entry was evicted
    K evicted_key{};        ///< meaningful iff `evicted`
  };

  /// Find-or-insert; either way the entry becomes most recently used.
  /// On insert the value is constructed from `args`; at the bound the
  /// LRU entry is evicted first and its key reported.
  template <class... Args>
  EmplaceResult get_or_emplace(const K& key, Args&&... args) {
    reserve_one();
    EmplaceResult r;
    if (const std::uint32_t idx = find_index(key); idx != kNil) {
      move_to_front(idx);
      r.value = value_ptr(idx);
      return r;
    }
    if (max_entries_ > 0 && size_ >= max_entries_) {
      r.evicted = true;
      r.evicted_key = slots_[tail_].key;
      erase_slot(tail_);
    }
    const std::uint32_t idx = probe_empty(key);
    Slot& s = slots_[idx];
    ::new (static_cast<void*>(s.value)) V(std::forward<Args>(args)...);
    s.key = key;
    s.occupied = true;
    link_front(idx);
    ++size_;
    r.value = value_ptr(idx);
    r.inserted = true;
    return r;
  }

  /// Pure read: no recency refresh. nullptr when absent.
  V* find(const K& key) {
    const std::uint32_t idx = find_index(key);
    return idx == kNil ? nullptr : value_ptr(idx);
  }
  const V* find(const K& key) const {
    const std::uint32_t idx = find_index(key);
    return idx == kNil ? nullptr : value_ptr(idx);
  }

  /// Find and refresh recency. nullptr when absent.
  V* touch(const K& key) {
    const std::uint32_t idx = find_index(key);
    if (idx == kNil) return nullptr;
    move_to_front(idx);
    return value_ptr(idx);
  }

  bool contains(const K& key) const { return find_index(key) != kNil; }

  /// Remove a key; false when absent.
  bool erase(const K& key) {
    const std::uint32_t idx = find_index(key);
    if (idx == kNil) return false;
    erase_slot(idx);
    return true;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }
  std::size_t max_entries() const { return max_entries_; }

  /// Least- and most-recently-used keys; nullptr when empty. The
  /// pointers follow the same invalidation rule as find().
  const K* lru_key() const {
    return tail_ == kNil ? nullptr : &slots_[tail_].key;
  }
  const K* mru_key() const {
    return head_ == kNil ? nullptr : &slots_[head_].key;
  }

  /// Visit every entry as (key, value), in unspecified (slot) order.
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].occupied) fn(slots_[i].key, *value_ptr(i));
    }
  }

  /// Visit every entry from most to least recently used.
  template <class Fn>
  void for_each_lru(Fn&& fn) const {
    for (std::uint32_t i = head_; i != kNil; i = slots_[i].next) {
      fn(slots_[i].key, *value_ptr(i));
    }
  }

  void clear() {
    destroy_all();
    for (auto& s : slots_) {
      s.occupied = false;
      s.prev = s.next = kNil;
    }
    size_ = 0;
    head_ = tail_ = kNil;
  }

  /// Bytes held by the slot array (the map's entire footprint beyond
  /// sizeof(*this); values' own heap allocations are not included).
  std::size_t memory_bytes() const {
    return sizeof(*this) + slots_.capacity() * sizeof(Slot);
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::size_t kMinCapacity = 8;

  struct Slot {
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    bool occupied = false;
    K key{};
    alignas(V) unsigned char value[sizeof(V)];
  };

  std::size_t mask() const { return slots_.size() - 1; }
  std::size_t home_of(const K& key) const {
    return static_cast<std::size_t>(
        compact_mix64(static_cast<std::uint64_t>(hash_(key))) & mask());
  }
  std::size_t probe_distance(std::size_t idx, std::size_t home) const {
    return (idx - home) & mask();
  }

  V* value_ptr(std::size_t idx) {
    return std::launder(reinterpret_cast<V*>(slots_[idx].value));
  }
  const V* value_ptr(std::size_t idx) const {
    return std::launder(reinterpret_cast<const V*>(slots_[idx].value));
  }

  std::uint32_t find_index(const K& key) const {
    if (slots_.empty()) return kNil;
    std::size_t i = home_of(key);
    while (slots_[i].occupied) {
      if (slots_[i].key == key) return static_cast<std::uint32_t>(i);
      i = (i + 1) & mask();
    }
    return kNil;
  }

  /// First empty slot in `key`'s probe run. Precondition: key absent
  /// and at least one empty slot exists (load < 1 by construction).
  std::uint32_t probe_empty(const K& key) const {
    std::size_t i = home_of(key);
    while (slots_[i].occupied) i = (i + 1) & mask();
    return static_cast<std::uint32_t>(i);
  }

  void link_front(std::uint32_t idx) {
    Slot& s = slots_[idx];
    s.prev = kNil;
    s.next = head_;
    if (head_ != kNil) slots_[head_].prev = idx;
    head_ = idx;
    if (tail_ == kNil) tail_ = idx;
  }

  void unlink(std::uint32_t idx) {
    Slot& s = slots_[idx];
    if (s.prev != kNil) {
      slots_[s.prev].next = s.next;
    } else {
      head_ = s.next;
    }
    if (s.next != kNil) {
      slots_[s.next].prev = s.prev;
    } else {
      tail_ = s.prev;
    }
    s.prev = s.next = kNil;
  }

  void move_to_front(std::uint32_t idx) {
    if (head_ == idx) return;
    unlink(idx);
    link_front(idx);
  }

  /// Move an occupied slot into an empty one, re-patching the moved
  /// entry's LRU neighbours (links are slot indices, so a relocation
  /// must rename the entry everywhere the list mentions it).
  void relocate(std::size_t from, std::size_t to) {
    Slot& src = slots_[from];
    Slot& dst = slots_[to];
    ::new (static_cast<void*>(dst.value)) V(std::move(*value_ptr(from)));
    value_ptr(from)->~V();
    dst.key = src.key;
    dst.prev = src.prev;
    dst.next = src.next;
    dst.occupied = true;
    src.occupied = false;
    src.prev = src.next = kNil;
    const std::uint32_t t = static_cast<std::uint32_t>(to);
    if (dst.prev != kNil) {
      slots_[dst.prev].next = t;
    } else {
      head_ = t;
    }
    if (dst.next != kNil) {
      slots_[dst.next].prev = t;
    } else {
      tail_ = t;
    }
  }

  /// Knuth deletion for linear probing (Algorithm R): scan the probe
  /// run after the hole and pull back every entry whose probe path
  /// passes through the hole, until the run's first empty slot. An
  /// entry whose home lies cyclically strictly inside (hole, j] never
  /// probed the hole and must stay put — moving it would park it
  /// before its home slot, where lookups cannot reach it.
  void erase_slot(std::uint32_t idx) {
    unlink(idx);
    value_ptr(idx)->~V();
    slots_[idx].occupied = false;
    --size_;
    std::size_t hole = idx;
    std::size_t j = (hole + 1) & mask();
    while (slots_[j].occupied) {
      const std::size_t home = home_of(slots_[j].key);
      // hole cyclically in [home, j) <=> dist(home->j) >= dist(hole->j).
      if (probe_distance(j, home) >= probe_distance(j, hole)) {
        relocate(j, hole);
        hole = j;
      }
      j = (j + 1) & mask();
    }
  }

  void reserve_one() {
    if (slots_.empty()) {
      slots_.resize(kMinCapacity);
      return;
    }
    // Grow before load factor exceeds 13/16.
    if ((size_ + 1) * 16 > slots_.size() * 13) rehash(slots_.size() * 2);
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    const std::uint32_t old_tail = tail_;
    slots_.clear();
    slots_.resize(new_capacity);
    head_ = tail_ = kNil;
    size_ = 0;
    // Reinsert from least to most recently used, pushing each to the
    // front: the rebuilt list reproduces the old recency order exactly.
    for (std::uint32_t i = old_tail; i != kNil; i = old[i].prev) {
      const std::uint32_t idx = probe_empty(old[i].key);
      Slot& s = slots_[idx];
      V* v = std::launder(reinterpret_cast<V*>(old[i].value));
      ::new (static_cast<void*>(s.value)) V(std::move(*v));
      v->~V();
      s.key = old[i].key;
      s.occupied = true;
      link_front(idx);
      ++size_;
    }
  }

  void destroy_all() {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].occupied) value_ptr(i)->~V();
    }
  }

  void steal(FlatLruMap& other) noexcept {
    slots_ = std::move(other.slots_);
    size_ = other.size_;
    max_entries_ = other.max_entries_;
    head_ = other.head_;
    tail_ = other.tail_;
    hash_ = std::move(other.hash_);
    other.slots_.clear();
    other.size_ = 0;
    other.head_ = other.tail_ = kNil;
  }

  void copy_entries_from(const FlatLruMap& other) {
    // Walk the source from LRU to MRU so repeated get_or_emplace
    // rebuilds the identical recency order.
    std::vector<std::uint32_t> order;
    order.reserve(other.size_);
    for (std::uint32_t i = other.tail_; i != kNil; i = other.slots_[i].prev) {
      order.push_back(i);
    }
    for (const std::uint32_t i : order) {
      get_or_emplace(other.slots_[i].key, *other.value_ptr(i));
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t max_entries_ = 0;
  std::uint32_t head_ = kNil;  ///< most recently used
  std::uint32_t tail_ = kNil;  ///< least recently used
  [[no_unique_address]] Hash hash_{};
};

}  // namespace sa
