// Blocked Bloom filter fronting the exact per-MAC structures (pattern
// after xia-core's RID libbloom forwarding): the overwhelmingly common
// negative cases — a MAC that is not on the ACL, a MAC the spoof
// tracker has never seen — resolve in one 64-byte cache line without
// probing the table.
//
// Safety argument (no false negatives, ever):
//  - every key admitted to the exact structure is insert()ed into the
//    filter at admission time, and bits are never cleared by deletion;
//  - eviction/erase only over-approximates (stale set bits can cause a
//    false positive, which the exact probe behind the filter resolves);
//  - when staleness accumulates — note_erase() counts removals since
//    the last epoch — should_rebuild() asks for a rebuild, and
//    rebuild() re-populates a cleanly sized filter from the exact
//    structure's live keys. Between epochs the filter is a superset of
//    the live key set; at an epoch boundary it is exact.
//
// Not thread safe; owned per worker like the maps it fronts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "sa/common/compact/flat_lru_map.hpp"
#include "sa/mac/address.hpp"

namespace sa {

/// 48-bit MAC packed into the low bits of a u64 (big-endian octet
/// order, so vendor prefixes land in the high bits).
inline std::uint64_t pack_mac(const MacAddress& addr) noexcept {
  std::uint64_t v = 0;
  for (const std::uint8_t o : addr.octets()) v = (v << 8) | o;
  return v;
}

class MacPrefilter {
 public:
  /// Sized for `expected_entries` at ~12 bits per entry; the filter
  /// grows at the next rebuild() when occupancy outpaces the sizing.
  explicit MacPrefilter(std::size_t expected_entries = 1024) {
    resize_for(expected_entries);
  }

  /// One cache line, k=8 probes. False positives possible (the exact
  /// structure resolves them); false negatives are not.
  bool maybe_contains(const MacAddress& addr) const noexcept {
    const std::uint64_t h = compact_mix64(pack_mac(addr));
    const Block& b = blocks_[(h >> 32) & block_mask_];
    std::uint32_t bit = static_cast<std::uint32_t>(h);
    const std::uint32_t step = (static_cast<std::uint32_t>(h >> 13) << 1) | 1u;
    for (int i = 0; i < kProbes; ++i) {
      const std::uint32_t p = bit & (kBlockBits - 1);
      if ((b.words[p >> 6] & (1ull << (p & 63))) == 0) return false;
      bit += step;
    }
    return true;
  }

  /// Record a key at admission into the exact structure.
  void insert(const MacAddress& addr) noexcept {
    const std::uint64_t h = compact_mix64(pack_mac(addr));
    Block& b = blocks_[(h >> 32) & block_mask_];
    std::uint32_t bit = static_cast<std::uint32_t>(h);
    const std::uint32_t step = (static_cast<std::uint32_t>(h >> 13) << 1) | 1u;
    for (int i = 0; i < kProbes; ++i) {
      const std::uint32_t p = bit & (kBlockBits - 1);
      b.words[p >> 6] |= 1ull << (p & 63);
      bit += step;
    }
    ++inserted_;
  }

  /// Record an eviction/erase from the exact structure. Bits stay set
  /// (they may be shared); this only advances the staleness epoch.
  void note_erase() noexcept { ++stale_; }

  /// True when stale bits or occupancy warrant re-populating.
  bool should_rebuild(std::size_t live_entries) const noexcept {
    return stale_ > 16 + live_entries / 2 || inserted_ > capacity_entries_;
  }

  /// Re-populate from the exact structure's live keys: `each` must
  /// invoke its argument once per live key. Resizes to fit
  /// `live_entries` and resets the epoch counters.
  template <class ForEachKey>
  void rebuild(std::size_t live_entries, ForEachKey&& each) {
    resize_for(live_entries);
    for (Block& b : blocks_) std::memset(b.words, 0, sizeof(b.words));
    std::size_t reinserted = 0;
    each([&](const MacAddress& key) {
      insert(key);
      ++reinserted;
    });
    inserted_ = reinserted;
    stale_ = 0;
  }

  std::size_t memory_bytes() const {
    return sizeof(*this) + blocks_.capacity() * sizeof(Block);
  }
  std::size_t capacity_entries() const { return capacity_entries_; }

 private:
  static constexpr int kProbes = 8;
  static constexpr std::uint32_t kBlockBits = 512;  // one 64-byte line
  static constexpr std::size_t kBitsPerEntry = 12;

  struct alignas(64) Block {
    std::uint64_t words[8] = {};
  };

  void resize_for(std::size_t expected_entries) {
    std::size_t blocks = 1;
    while (blocks * kBlockBits < expected_entries * kBitsPerEntry &&
           blocks < (std::size_t{1} << 32)) {
      blocks *= 2;
    }
    if (blocks != blocks_.size()) {
      blocks_.assign(blocks, Block{});
    }
    block_mask_ = blocks - 1;
    capacity_entries_ = blocks * kBlockBits / kBitsPerEntry;
  }

  std::vector<Block> blocks_;
  std::size_t block_mask_ = 0;
  std::size_t capacity_entries_ = 0;
  std::size_t inserted_ = 0;  ///< insertions since the last rebuild
  std::size_t stale_ = 0;     ///< erases/evictions since the last rebuild
};

}  // namespace sa
