// Hierarchical timing wheel (after ndn-dpdk container/mintmr), ticking
// on frame indices: idle rate-limit windows and stale tracker entries
// expire in O(1) amortized per tick instead of scan-on-access.
//
// Four levels of 256 slots cover a 2^32-tick horizon; later deadlines
// land in an overflow list that is re-examined when the top level
// cascades. Events carry an absolute deadline plus an opaque payload
// (a MAC, or a (MAC, generation) pair) — payload addressing keeps the
// wheel decoupled from slot positions in the flat maps, which move
// under backward-shift and rehash.
//
// advance(to, fire) fires every event with deadline <= to, in
// non-decreasing deadline order, then sets now() = to. The consumer
// drives it from its own decision stream (the engine's shard-affine
// workers pass the global frame sequence), so expiry is deterministic
// at any thread count: a shard sees its frames in the same order with
// the same indices no matter how many workers exist.
//
// Not thread safe; owned per worker.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sa {

template <class T>
class TimerWheel {
 public:
  explicit TimerWheel(std::uint64_t start_tick = 0) : now_(start_tick) {}

  std::uint64_t now() const { return now_; }
  std::size_t scheduled() const { return scheduled_; }

  /// Schedule `payload` to fire once now() reaches `deadline`. A
  /// deadline at or before now() fires on the next advance().
  void schedule(std::uint64_t deadline, T payload) {
    if (deadline <= now_) deadline = now_ + 1;
    place(Event{deadline, std::move(payload)});
    ++scheduled_;
  }

  /// Advance to `to`, invoking fire(payload, deadline) for every due
  /// event in non-decreasing deadline order. `fire` may schedule() new
  /// events (lazy rescheduling); it must not call advance() reentrantly.
  template <class Fn>
  void advance(std::uint64_t to, Fn&& fire) {
    while (now_ < to) {
      if (scheduled_ == 0) {  // nothing pending: skip the idle ticks
        now_ = to;
        return;
      }
      ++now_;
      // Cascade outer levels when the inner ones wrap: slot 0 of level
      // L is reached every 256^L ticks, at which point the events
      // parked in level L's current slot re-place into finer levels.
      for (std::size_t level = 1; level < kLevels; ++level) {
        if ((now_ & ((std::uint64_t{1} << (kSlotBits * level)) - 1)) != 0) {
          break;
        }
        cascade(levels_[level][slot_at(level, now_)]);
        if (level == kLevels - 1 && slot_at(level, now_) == 0) {
          cascade(overflow_);
        }
      }
      auto& due = levels_[0][slot_at(0, now_)];
      if (!due.empty()) {
        // Everything here has deadline == now_ (level 0 holds only the
        // next 256 ticks, one deadline per slot).
        scratch_.clear();
        scratch_.swap(due);
        scheduled_ -= scratch_.size();
        for (Event& e : scratch_) {
          fire(std::move(e.payload), e.deadline);
        }
      }
    }
  }

  std::size_t memory_bytes() const {
    std::size_t bytes = sizeof(*this);
    for (const auto& level : levels_) {
      for (const auto& slot : level) bytes += slot.capacity() * sizeof(Event);
    }
    bytes += overflow_.capacity() * sizeof(Event);
    bytes += scratch_.capacity() * sizeof(Event);
    return bytes;
  }

 private:
  static constexpr std::size_t kSlotBits = 8;
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;
  static constexpr std::size_t kLevels = 4;

  struct Event {
    std::uint64_t deadline;
    T payload;
  };

  static std::size_t slot_at(std::size_t level, std::uint64_t tick) {
    return static_cast<std::size_t>(tick >> (kSlotBits * level)) &
           (kSlots - 1);
  }

  void place(Event e) {
    const std::uint64_t delta = e.deadline - now_;
    for (std::size_t level = 0; level < kLevels; ++level) {
      if ((delta >> (kSlotBits * (level + 1))) == 0) {
        levels_[level][slot_at(level, e.deadline)].push_back(std::move(e));
        return;
      }
    }
    overflow_.push_back(std::move(e));
  }

  void cascade(std::vector<Event>& from) {
    if (from.empty()) return;
    std::vector<Event> moved;
    moved.swap(from);
    for (Event& e : moved) place(std::move(e));
  }

  std::uint64_t now_;
  std::size_t scheduled_ = 0;
  std::array<std::array<std::vector<Event>, kSlots>, kLevels> levels_;
  std::vector<Event> overflow_;
  std::vector<Event> scratch_;
};

}  // namespace sa
