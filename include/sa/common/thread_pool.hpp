// Fixed-size thread pool with a bounded work queue — the execution
// substrate of the deployment engine. Deliberately small: submit-only
// (no work stealing, no resizing), blocking when the queue is full so a
// fast producer cannot queue unbounded per-frame work.
//
// Tasks may carry an *epoch* tag (the engine session tags every task
// with its ingest-round id). Epochs let two pipelined rounds coexist in
// the queue while the pool tracks, per epoch, how much work is still
// outstanding: `wait_epoch_idle` blocks until an epoch has fully
// drained, and `max_epochs_in_flight` records how many distinct rounds
// ever had work in the pool at once — the observable proof that round
// pipelining actually overlapped.
//
// Tasks must not submit further tasks to the same pool and then block on
// their results from inside a worker: with every worker waiting, nothing
// would drain the queue. The engine only ever submits from its own
// non-worker threads, so this cannot arise there.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace sa {

class ThreadPool {
 public:
  /// `num_threads` workers (>= 1) and a queue bounded at
  /// `queue_capacity` pending tasks (>= 1).
  explicit ThreadPool(std::size_t num_threads,
                      std::size_t queue_capacity = 256);

  /// Drains the queue (every task already accepted still runs), then
  /// joins every worker. A producer blocked in submit() at destruction
  /// time is woken and gets a StateError instead of a lost task.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }
  std::size_t queue_capacity() const { return capacity_; }

  /// Enqueue an untagged task; blocks while the queue is full.
  void submit(std::function<void()> task);

  /// Enqueue a task tagged with `epoch`; blocks while the queue is full.
  /// The epoch counts as in flight from now until the task finishes
  /// (normally or by throwing).
  void submit(std::function<void()> task, std::uint64_t epoch);

  /// Enqueue a value-returning task; exceptions propagate through the
  /// future.
  template <typename F>
  auto async(F&& fn) -> std::future<std::invoke_result_t<F>> {
    return async_impl(std::forward<F>(fn), nullptr);
  }

  /// async() with an epoch tag.
  template <typename F>
  auto async_in(std::uint64_t epoch, F&& fn)
      -> std::future<std::invoke_result_t<F>> {
    return async_impl(std::forward<F>(fn), &epoch);
  }

  /// Contention visibility: how often the pool's one lock and bounded
  /// queue actually made someone wait. The lock-free session dataplane
  /// exists because these numbers grew with thread count.
  struct Stats {
    /// submit()/async() calls that found the queue full and blocked.
    std::size_t queue_full_blocks = 0;
    /// Worker wake-ups that found the queue empty (idle waits).
    std::size_t idle_waits = 0;
    /// High-water mark of the pending-task queue depth.
    std::size_t max_queue_depth = 0;
  };
  Stats stats() const;

  /// Distinct epochs with unfinished (queued or running) tasks.
  std::size_t epochs_in_flight() const;
  /// High-water mark of epochs_in_flight() since construction. >= 2
  /// means two rounds' tasks genuinely coexisted in the pool.
  std::size_t max_epochs_in_flight() const;
  /// Block until `epoch` has no queued or running tasks. Returns
  /// immediately for epochs that never submitted work.
  void wait_epoch_idle(std::uint64_t epoch) const;

 private:
  void worker_loop();
  void enqueue(std::function<void()> task, const std::uint64_t* epoch);
  void finish_epoch(std::uint64_t epoch);

  template <typename F>
  auto async_impl(F&& fn, const std::uint64_t* epoch)
      -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    // shared_ptr because std::function requires copyable callables.
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    enqueue([task] { (*task)(); }, epoch);
    return result;
  }

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  mutable std::condition_variable epoch_idle_;
  std::deque<std::function<void()>> queue_;
  std::map<std::uint64_t, std::size_t> epoch_outstanding_;
  std::size_t max_epochs_in_flight_ = 0;
  Stats stats_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sa
