// Fixed-size thread pool with a bounded work queue — the execution
// substrate of the deployment engine. Deliberately small: submit-only
// (no work stealing, no resizing), blocking when the queue is full so a
// fast producer cannot queue unbounded per-frame work.
//
// Tasks must not submit further tasks to the same pool and then block on
// their results from inside a worker: with every worker waiting, nothing
// would drain the queue. The engine only ever submits from its caller
// thread, so this cannot arise there.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace sa {

class ThreadPool {
 public:
  /// `num_threads` workers (>= 1) and a queue bounded at
  /// `queue_capacity` pending tasks (>= 1).
  explicit ThreadPool(std::size_t num_threads,
                      std::size_t queue_capacity = 256);

  /// Drains the queue, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }
  std::size_t queue_capacity() const { return capacity_; }

  /// Enqueue a task; blocks while the queue is full.
  void submit(std::function<void()> task);

  /// Enqueue a value-returning task; exceptions propagate through the
  /// future.
  template <typename F>
  auto async(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    // shared_ptr because std::function requires copyable callables.
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    submit([task] { (*task)(); });
    return result;
  }

 private:
  void worker_loop();

  std::size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sa
