// Error handling: a library-wide exception type plus precondition checks.
//
// Following the C++ Core Guidelines (I.5/I.7, E.2): preconditions are
// checked at API boundaries and violations throw, carrying enough text to
// diagnose without a debugger.
#pragma once

#include <stdexcept>
#include <string>

namespace sa {

/// Base exception for all SecureAngle library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an operation is attempted on an object in the wrong state
/// (e.g. asking for AoA before calibration).
class StateError : public Error {
 public:
  explicit StateError(const std::string& what) : Error(what) {}
};

/// Thrown when a numerical routine fails to converge.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void fail_expects(const char* cond, const char* where) {
  throw InvalidArgument(std::string("precondition failed: ") + cond + " at " + where);
}
[[noreturn]] inline void fail_ensures(const char* cond, const char* where) {
  throw NumericalError(std::string("postcondition failed: ") + cond + " at " + where);
}
}  // namespace detail

}  // namespace sa

// GSL-style contract macros. Kept as macros so the failing expression and
// location appear in the exception text.
#define SA_STRINGIFY_IMPL(x) #x
#define SA_STRINGIFY(x) SA_STRINGIFY_IMPL(x)
#define SA_WHERE __FILE__ ":" SA_STRINGIFY(__LINE__)

#define SA_EXPECTS(cond)                                   \
  do {                                                     \
    if (!(cond)) ::sa::detail::fail_expects(#cond, SA_WHERE); \
  } while (false)

#define SA_ENSURES(cond)                                   \
  do {                                                     \
    if (!(cond)) ::sa::detail::fail_ensures(#cond, SA_WHERE); \
  } while (false)
