// 2D geometry primitives used by the floorplan ray tracer and the
// virtual-fence polygon tests.
//
// Coordinates are metres in a right-handed plan view; bearings follow
// atan2 convention (counter-clockwise from +x) unless stated otherwise.
#pragma once

#include <optional>
#include <vector>

namespace sa {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  constexpr bool operator==(const Vec2&) const = default;

  double norm() const;
  double norm_sq() const { return x * x + y * y; }
  Vec2 normalized() const;
  /// Counter-clockwise rotation by `rad`.
  Vec2 rotated(double rad) const;
  /// Perpendicular (rotated +90 degrees).
  constexpr Vec2 perp() const { return {-y, x}; }
};

constexpr double dot(Vec2 a, Vec2 b) { return a.x * b.x + a.y * b.y; }
/// z-component of the 3D cross product; >0 when b is CCW of a.
constexpr double cross(Vec2 a, Vec2 b) { return a.x * b.y - a.y * b.x; }

double distance(Vec2 a, Vec2 b);

/// Bearing of `to` as seen from `from`, radians CCW from +x, in [0, 2pi).
double bearing_rad(Vec2 from, Vec2 to);
/// Same in degrees, [0, 360).
double bearing_deg(Vec2 from, Vec2 to);

/// A wall/obstacle edge as a closed segment [a, b].
struct Segment {
  Vec2 a;
  Vec2 b;

  double length() const { return distance(a, b); }
  /// Mirror `p` across the infinite line through this segment
  /// (image-method source for specular reflection).
  Vec2 mirror(Vec2 p) const;
  /// Unit normal of the supporting line (left of a->b).
  Vec2 normal() const;
};

/// Proper intersection of two closed segments. Collinear overlaps return
/// nullopt (walls never overlap paths exactly in our floorplans; treating
/// grazing as non-blocking keeps the tracer conservative).
std::optional<Vec2> intersect(const Segment& s, const Segment& t);

/// True if segments intersect, excluding shared endpoints within `eps`
/// of either end of `s` (used to ignore a path touching its own wall).
bool blocks(const Segment& wall, Vec2 from, Vec2 to, double eps = 1e-9);

/// Simple polygon (vertices in order, implicitly closed).
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Vec2> vertices);

  /// Even-odd rule point containment; boundary points count as inside.
  bool contains(Vec2 p) const;
  const std::vector<Vec2>& vertices() const { return vertices_; }
  std::vector<Segment> edges() const;
  double area() const;
  Vec2 centroid() const;

  /// Axis-aligned rectangle helper.
  static Polygon rectangle(Vec2 min_corner, Vec2 max_corner);

 private:
  std::vector<Vec2> vertices_;
};

/// Least-squares intersection point of a set of bearing rays
/// (origin + unit direction each). Used by the virtual-fence localizer to
/// triangulate a client from direct-path AoAs at multiple APs. Returns
/// nullopt when rays are (nearly) parallel.
std::optional<Vec2> intersect_bearings(const std::vector<Vec2>& origins,
                                       const std::vector<double>& bearings_rad);

}  // namespace sa
