// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the simulator (noise, fading, oscillator
// phases, client traffic) draws from an sa::Rng seeded explicitly, so a
// whole experiment is reproducible from a single seed. Child generators
// (`fork`) decorrelate subsystems without sharing state.
#pragma once

#include <complex>
#include <cstdint>
#include <random>

namespace sa {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eca9e1e5eedULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Standard normal (or scaled/shifted) draw.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Circularly-symmetric complex Gaussian with E[|z|^2] = variance.
  /// This is the standard model for thermal noise in I/Q space.
  std::complex<double> complex_normal(double variance = 1.0) {
    const double s = std::sqrt(variance / 2.0);
    return {normal(0.0, s), normal(0.0, s)};
  }

  /// Uniform phase in [0, 2*pi) as a unit-magnitude complex number.
  std::complex<double> random_phasor() {
    const double phi = uniform(0.0, 2.0 * 3.141592653589793238462643383279502884);
    return {std::cos(phi), std::sin(phi)};
  }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Derive an independent child generator; decorrelates subsystems while
  /// keeping the whole simulation a pure function of the root seed.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sa
