// Angle conversions and wrap-around-safe angular arithmetic.
//
// Bearings in SecureAngle follow the paper's conventions:
//  * linear arrays measure angle from broadside, range [-90, 90] degrees;
//  * circular arrays measure azimuth counter-clockwise, range [0, 360).
#pragma once

#include <cmath>

#include "sa/common/constants.hpp"

namespace sa {

constexpr double deg2rad(double deg) { return deg * kPi / 180.0; }
constexpr double rad2deg(double rad) { return rad * 180.0 / kPi; }

/// Wrap an angle in radians to (-pi, pi].
inline double wrap_pi(double rad) {
  double w = std::remainder(rad, kTwoPi);
  if (w <= -kPi) w += kTwoPi;
  return w;
}

/// Wrap an angle in radians to [0, 2*pi).
inline double wrap_2pi(double rad) {
  double w = std::fmod(rad, kTwoPi);
  if (w < 0.0) w += kTwoPi;
  return w;
}

/// Wrap an angle in degrees to [0, 360).
inline double wrap_deg360(double deg) {
  double w = std::fmod(deg, 360.0);
  if (w < 0.0) w += 360.0;
  return w;
}

/// Wrap an angle in degrees to (-180, 180].
inline double wrap_deg180(double deg) {
  double w = std::fmod(deg, 360.0);
  if (w > 180.0) w -= 360.0;
  if (w <= -180.0) w += 360.0;
  return w;
}

/// Smallest absolute angular difference in degrees, in [0, 180].
inline double angular_distance_deg(double a_deg, double b_deg) {
  return std::abs(wrap_deg180(a_deg - b_deg));
}

/// Smallest absolute angular difference in radians, in [0, pi].
inline double angular_distance_rad(double a_rad, double b_rad) {
  return std::abs(wrap_pi(a_rad - b_rad));
}

/// Circular mean of a set of bearings in degrees (empty input -> 0).
template <typename Container>
double circular_mean_deg(const Container& degs) {
  double s = 0.0, c = 0.0;
  std::size_t n = 0;
  for (double d : degs) {
    s += std::sin(deg2rad(d));
    c += std::cos(deg2rad(d));
    ++n;
  }
  if (n == 0) return 0.0;
  return wrap_deg360(rad2deg(std::atan2(s, c)));
}

}  // namespace sa
