// Lock-free bounded single-producer/single-consumer ring — the building
// block of the engine's dataplane (after DPDK's rte_ring / ndn-dpdk's
// ringbuffer, specialized to SPSC).
//
// One thread pushes, one thread pops; under that contract every
// operation is wait-free: one cache-line read, one placement move, one
// release store. The producer and consumer indices live on separate
// cache lines so the two sides never false-share, and each side keeps a
// *cached* copy of the other side's index — the shared line is re-read
// only when the cached view says the ring looks full (producer) or
// empty (consumer), so steady-state traffic on the coherence fabric is
// one line per burst, not per element (the rte_ring watermark trick).
//
// Indices are free-running 64-bit counters (masked on access), so the
// full/empty distinction needs no wasted slot and no wrap handling
// beyond unsigned arithmetic. Capacity is rounded up to a power of two.
//
// The ring stores T by value in raw aligned storage: push placement-
// moves in, pop moves out and destroys. The destructor destroys any
// in-flight items (drain-on-destroy), so T's with real destructors —
// matrices, packet vectors — are safe to leave queued on teardown.
//
// Doorbell complements the rings for the *blocking* edges of a polling
// dataplane: consumers spin a bounded budget and then park; producers
// ring() after publishing, which is one relaxed load in the common
// (awake) case and a mutex+notify only when the consumer actually
// parked. Parks use a short timed wait as a belt-and-braces against the
// theoretical lost-wakeup window, so a missed ring costs milliseconds,
// never a hang.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <thread>
#include <utility>
#include <vector>

#include "sa/common/error.hpp"

namespace sa {

namespace detail {
inline constexpr std::size_t kCacheLine = 64;

inline std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace detail

/// Relaxed-CAS high-water-mark update, for stats counters shared between
/// a writer thread and stats() readers.
inline void atomic_max(std::atomic<std::size_t>& hwm, std::size_t value) {
  std::size_t cur = hwm.load(std::memory_order_relaxed);
  while (cur < value &&
         !hwm.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

template <typename T>
class SpscRing {
 public:
  /// Usable capacity is `capacity` rounded up to a power of two (>= 2).
  explicit SpscRing(std::size_t capacity)
      : capacity_(detail::round_up_pow2(capacity < 2 ? 2 : capacity)),
        mask_(capacity_ - 1),
        slots_(static_cast<Slot*>(::operator new[](
            capacity_ * sizeof(Slot), std::align_val_t{alignof(Slot)}))) {}

  ~SpscRing() {
    std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    for (; head != tail; ++head) item(head).~T();
    ::operator delete[](static_cast<void*>(slots_),
                        std::align_val_t{alignof(Slot)});
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Producer side. False when full (caller decides to spin/park/drop).
  bool try_push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ == capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ == capacity_) return false;
    }
    ::new (static_cast<void*>(&slots_[tail & mask_])) T(std::move(value));
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side: push up to `count` items from `first`; returns how
  /// many were moved in (stops early when full).
  template <typename It>
  std::size_t push_batch(It first, std::size_t count) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = capacity_ - (tail - cached_head_);
    if (free < count) {
      cached_head_ = head_.load(std::memory_order_acquire);
      free = capacity_ - (tail - cached_head_);
    }
    const std::size_t n = count < free ? count : free;
    for (std::size_t i = 0; i < n; ++i, ++first) {
      ::new (static_cast<void*>(&slots_[(tail + i) & mask_]))
          T(std::move(*first));
    }
    if (n != 0) tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Consumer side. False when empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    T& slot = item(head);
    out = std::move(slot);
    slot.~T();
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: append up to `max` items to `out`; returns the burst
  /// size actually popped (0 when empty).
  std::size_t pop_batch(std::vector<T>& out, std::size_t max) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = cached_tail_ - head;
    if (avail < max) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = cached_tail_ - head;
      if (avail == 0) return 0;
    }
    const std::size_t n = max < avail ? max : avail;
    for (std::size_t i = 0; i < n; ++i) {
      T& slot = item(head + i);
      out.push_back(std::move(slot));
      slot.~T();
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Observer estimate (either side, or a stats thread): items in
  /// flight. Exact only when both sides are quiescent.
  std::size_t size() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }
  bool empty() const { return size() == 0; }

 private:
  struct alignas(alignof(T)) Slot {
    unsigned char bytes[sizeof(T)];
  };

  T& item(std::size_t index) {
    return *std::launder(reinterpret_cast<T*>(&slots_[index & mask_]));
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  Slot* const slots_;

  // Consumer-owned line: pop index + the consumer's cached view of tail.
  alignas(detail::kCacheLine) std::atomic<std::size_t> head_{0};
  std::size_t cached_tail_ = 0;
  // Producer-owned line: push index + the producer's cached view of head.
  alignas(detail::kCacheLine) std::atomic<std::size_t> tail_{0};
  std::size_t cached_head_ = 0;
  char pad_[detail::kCacheLine - sizeof(std::atomic<std::size_t>) -
            sizeof(std::size_t)];
};

/// Spin-then-park wakeup primitive for a polling loop. Any number of
/// threads may ring(); wait() is for the one parked consumer (or a small
/// set — ring() notifies all). The fast path of ring() is a single
/// relaxed load; the mutex is touched only around an actual park.
class Doorbell {
 public:
  /// Wake the waiter if it is (about to be) parked. Call after the state
  /// the waiter polls for has been published.
  void ring() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (parked_.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_all();
    }
  }

  /// Poll `pred` with `spin_budget` busy iterations, then park until it
  /// holds. Returns the value of pred() (always true on return; the
  /// return type documents intent for future timeout variants).
  /// `spins`/`parks` count the poll iterations that found nothing and
  /// the times the thread actually went to sleep.
  template <typename Pred>
  bool wait(Pred&& pred, std::size_t spin_budget,
            std::atomic<std::size_t>* spins = nullptr,
            std::atomic<std::size_t>* parks = nullptr) {
    for (std::size_t i = 0; i < spin_budget; ++i) {
      if (pred()) return true;
      if (spins != nullptr) spins->fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      parked_.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (pred()) break;
      if (parks != nullptr) parks->fetch_add(1, std::memory_order_relaxed);
      // Timed park: a ring() that raced the park transition costs one
      // timeout period, never a hang.
      cv_.wait_for(lock, std::chrono::milliseconds(2));
    }
    parked_.store(false, std::memory_order_relaxed);
    return true;
  }

 private:
  std::atomic<bool> parked_{false};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace sa
