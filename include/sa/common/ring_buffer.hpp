// Fixed-capacity ring buffer for streaming I/Q samples.
//
// The WARP prototype buffers 0.4 ms of 20 MHz samples (8000 complex
// samples per chain) before shipping them to the host; RingBuffer models
// that capture buffer and is also used by the packet detector to keep a
// sliding window of recent samples.
#pragma once

#include <cstddef>
#include <vector>

#include "sa/common/error.hpp"

namespace sa {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    SA_EXPECTS(capacity > 0);
  }

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == buf_.size(); }

  /// Append one element, overwriting the oldest when full.
  void push(const T& value) {
    buf_[(head_ + size_) % buf_.size()] = value;
    if (size_ == buf_.size()) {
      head_ = (head_ + 1) % buf_.size();
    } else {
      ++size_;
    }
  }

  /// Oldest element still stored.
  const T& front() const {
    SA_EXPECTS(!empty());
    return buf_[head_];
  }

  /// Most recently pushed element.
  const T& back() const {
    SA_EXPECTS(!empty());
    return buf_[(head_ + size_ - 1) % buf_.size()];
  }

  /// i-th oldest element (0 = front).
  const T& operator[](std::size_t i) const {
    SA_EXPECTS(i < size_);
    return buf_[(head_ + i) % buf_.size()];
  }

  /// Remove the oldest element.
  void pop() {
    SA_EXPECTS(!empty());
    head_ = (head_ + 1) % buf_.size();
    --size_;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Copy contents (oldest first) into a flat vector.
  std::vector<T> to_vector() const {
    std::vector<T> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
    return out;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace sa
