// Interference experiment — paper §3: "In real wireless networks,
// measurements based on just one signal sample ... are sensitive to
// background noise and interference from other senders. We therefore
// detect individual packets in the incoming stream ... and compute the
// correlation matrix ... with each entire packet."
//
// We transmit a packet from client 4 while client 9 (a different
// bearing) transmits an overlapping burst at increasing relative power,
// and measure the victim's bearing error two ways:
//   (a) packet-gated: covariance over exactly the detected packet span
//       (the paper's design) — the other sender's burst is excluded;
//   (b) whole-buffer: covariance over the full capture including the
//       interferer-only region (what a packet-agnostic design would do).
//
// Finding (kept honest): the *bearing* barely moves either way — MUSIC
// separates the two sources into distinct peaks. What the interferer
// poisons is the *signature*: the whole-buffer pseudospectrum grows an
// interferer peak that makes the victim fail its own signature match —
// i.e. spoof-detection false alarms. So we report both bearing error
// and signature match against the victim's clean signature.
#include "bench_common.hpp"

#include "sa/aoa/covariance.hpp"
#include "sa/aoa/estimators.hpp"
#include "sa/signature/metrics.hpp"

using namespace sa;
using namespace sa::bench;

int main() {
  print_header("Interference — packet-gated vs whole-buffer covariance",
               "Sec. 3's packet-detection rationale");

  const auto tb = OfficeTestbed::figure4();
  const double truth = tb.ground_truth_bearing_deg(4);

  std::printf("victim: client 4 (true bearing %.0f deg); interferer: "
              "client 9 (bearing %.0f deg), partially overlapping burst\n\n",
              truth, tb.ground_truth_bearing_deg(9));
  std::printf("%-18s %12s %12s %12s %12s\n", "interferer power",
              "gated err", "buffer err", "gated match", "buffer match");

  for (double rel_db : {-100.0, -10.0, 0.0, 5.0, 10.0, 15.0, 20.0}) {
    std::vector<double> gated_errs, buffer_errs;
    std::vector<double> gated_match, buffer_match;
    for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
      Rig rig(seed);
      auto& ap = rig.add_ap(tb.ap_position());
      const CVec victim_wave = rig.make_wave(4);
      CMat rx = rig.sim->transmit(tb.client(4).position, victim_wave)[0];

      // Interferer: a tone burst from another sender later in the same
      // capture buffer (the paper's scenario: a 0.4 ms buffer holds
      // traffic from multiple senders).
      if (rel_db > -90.0) {
        CVec burst(victim_wave.size(), cd{0.0, 0.0});
        const double amp = std::pow(10.0, rel_db / 20.0);
        for (std::size_t t = 0; t < burst.size(); ++t) {
          const double ph = 0.13 * static_cast<double>(t);
          burst[t] = cd{amp * std::cos(ph), amp * std::sin(ph)};
        }
        // Grow the buffer and append the burst after the victim packet.
        const std::size_t offset = rx.cols();
        CMat grown(rx.rows(), rx.cols() + burst.size());
        for (std::size_t m = 0; m < rx.rows(); ++m) {
          for (std::size_t t = 0; t < rx.cols(); ++t) grown(m, t) = rx(m, t);
        }
        rx = std::move(grown);
        const auto paths = rig.sim->paths(tb.client(9).position, 0);
        ChannelConfig quiet;
        quiet.noise_power = 0.0;
        ChannelSimulator(quiet).mix_into(rx, burst, paths, ap.placement(),
                                         offset, rig.rng);
      }

      // Clean reference signature: same victim, no interferer, gated.
      const CMat clean = rig.sim->transmit(tb.client(4).position,
                                           rig.make_wave(4))[0];
      const auto clean_pkts = ap.receive(clean);
      if (clean_pkts.empty()) continue;
      const AoaSignature& ref = clean_pkts[0].signature;

      // (a) The AP's packet-gated pipeline.
      const auto pkts = ap.receive(rx);
      if (!pkts.empty()) {
        const auto world =
            ap.to_world_bearings(pkts[0].signature.direct_bearing_deg());
        gated_errs.push_back(angular_distance_deg(world[0], truth));
        gated_match.push_back(match_score(pkts[0].signature, ref));
      }

      // (b) Whole-buffer covariance (no packet gating).
      CMat conditioned = rx;
      ap.impairments().apply(conditioned);
      ap.calibration().apply(conditioned);
      const auto music = ap.music_from_samples(conditioned);
      const auto world =
          ap.to_world_bearings(music.spectrum.refined_max_angle_deg());
      buffer_errs.push_back(angular_distance_deg(world[0], truth));
      buffer_match.push_back(match_score(
          AoaSignature::from_spectrum(music.spectrum, ap.config().signature),
          ref));
    }
    char label[32];
    if (rel_db < -90.0) {
      std::snprintf(label, sizeof(label), "none");
    } else {
      std::snprintf(label, sizeof(label), "%+.0f dB vs victim", rel_db);
    }
    std::printf("%-18s %12.2f %12.2f %12.2f %12.2f\n", label,
                gated_errs.empty() ? -1.0 : mean(gated_errs),
                buffer_errs.empty() ? -1.0 : mean(buffer_errs),
                gated_match.empty() ? -1.0 : mean(gated_match),
                buffer_match.empty() ? -1.0 : mean(buffer_match));
  }

  std::printf("\nExpected shape: bearings stay accurate in both modes (MUSIC\n"
              "resolves the interferer as a separate source), but the\n"
              "whole-buffer SIGNATURE degrades with interferer power — the\n"
              "victim would start failing its own spoof check — while the\n"
              "packet-gated signature stays clean. This is why the paper\n"
              "detects packets before computing correlation matrices.\n");
  return 0;
}
