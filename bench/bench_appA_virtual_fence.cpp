// Application A (Sec. 2.3.1): virtual fences. Multiple SecureAngle APs
// compute direct-path AoA; the intersection localizes the client; frames
// from clients localized outside the building boundary are dropped.
//
// We place three octagon APs (the paper's AP spot plus two extra mounting
// points), fire one packet from every indoor client and from four
// off-site attacker positions, and report localization error and the
// fence decision for each, plus aggregate accuracy.
#include "bench_common.hpp"

using namespace sa;
using namespace sa::bench;

int main() {
  print_header("Application A — virtual fence via multi-AP AoA intersection",
               "Sec. 2.3.1 (and the Sec. 1 'virtual fences' motivation)");

  Rig rig(314);
  rig.add_ap(rig.tb.ap_position());
  rig.add_ap(rig.tb.extra_ap_positions()[1]);  // NE mount (21, 13)
  rig.add_ap(rig.tb.extra_ap_positions()[2]);  // NW mount (4, 13)

  const VirtualFence fence(rig.tb.building_outline());

  auto run_position = [&](Vec2 pos, int id, bool truly_inside,
                          const char* label, const TxPattern* pattern,
                          int& correct, int& total, double& err_sum,
                          int& err_n) {
    const auto rx = rig.uplink(pos, id, pattern);
    std::vector<FenceObservation> obs;
    for (std::size_t a = 0; a < rig.aps.size(); ++a) {
      if (!rx[a].empty()) {
        obs.push_back({rig.aps[a]->config().position,
                       rx[a][0].bearing_world_deg});
      }
    }
    const FenceDecision d = fence.check(obs);
    double loc_err = -1.0;
    if (d.location) {
      loc_err = distance(d.location->position, pos);
      err_sum += loc_err;
      ++err_n;
    }
    const bool correct_decision = (d.allowed == truly_inside);
    correct += correct_decision ? 1 : 0;
    ++total;
    char loc_text[16];
    if (loc_err >= 0.0) {
      std::snprintf(loc_text, sizeof(loc_text), "%.2f", loc_err);
    } else {
      std::snprintf(loc_text, sizeof(loc_text), "-");
    }
    std::printf("%-26s %4zu/%zu %9s %9s %10s %8s\n", label, obs.size(),
                rig.aps.size(), truly_inside ? "inside" : "outside",
                d.allowed ? "ALLOW" : "DROP", loc_text,
                correct_decision ? "ok" : "WRONG");
    rig.sim->advance(0.3);
  };

  std::printf("%-26s %6s %9s %9s %10s %8s\n", "position", "APs", "truth",
              "decision", "loc-err(m)", "verdict");

  int correct = 0, total = 0, err_n = 0;
  double err_sum = 0.0;
  for (const auto& c : rig.tb.clients()) {
    char label[64];
    std::snprintf(label, sizeof(label), "client %d", c.id);
    run_position(c.position, c.id, true, label, nullptr, correct, total,
                 err_sum, err_n);
  }
  // Off-site attackers, including a directional one pumping power at the
  // main AP (threat model of Sec. 1).
  int att_id = 100;
  for (const auto& pos : rig.tb.outdoor_positions()) {
    char label[64];
    std::snprintf(label, sizeof(label), "attacker (%.0f,%.0f) omni", pos.x,
                  pos.y);
    TxPattern power;  // omni but strong (punches through the wall)
    power.tx_power_db = 15.0;
    run_position(pos, att_id++, false, label, &power, correct, total, err_sum,
                 err_n);
  }
  {
    const Vec2 pos = rig.tb.outdoor_positions()[0];
    TxPattern beam;
    beam.aim_azimuth_deg = bearing_deg(pos, rig.tb.ap_position());
    beam.beamwidth_deg = 25.0;
    beam.boresight_gain_db = 15.0;
    beam.tx_power_db = 10.0;
    char label[64];
    std::snprintf(label, sizeof(label), "attacker (%.0f,%.0f) beam", pos.x,
                  pos.y);
    run_position(pos, att_id++, false, label, &beam, correct, total, err_sum,
                 err_n);
  }

  std::printf("\nfence decision accuracy : %d/%d (%.0f%%)\n", correct, total,
              100.0 * correct / total);
  if (err_n > 0) {
    std::printf("mean localization error : %.2f m over %d localized positions\n",
                err_sum / err_n, err_n);
  }
  std::printf("\nExpected shape: indoor clients overwhelmingly ALLOWed with\n"
              "metre-scale localization error; off-site attackers DROPped\n"
              "(either localized outside the fence or simply not detected\n"
              "by enough APs to localize).\n");
  return 0;
}
