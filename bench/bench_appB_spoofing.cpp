// Application B (Sec. 2.3.2): address-spoofing prevention. The AP trains
// a signature S_cl per MAC address; incoming packets with that MAC whose
// signature diverges are flagged. "The experimental hypothesis [is] that
// there is a significant difference between S_cl and an attacker's
// signature, so that they can be discriminated from each other."
//
// Experiments:
//   1. detection rate vs attacker-victim separation (attackers at other
//      client positions and off-site, omni and directional);
//   2. false-alarm rate for the legitimate client under channel drift;
//   3. threshold sweep (ROC-style operating points).
#include "bench_common.hpp"

using namespace sa;
using namespace sa::bench;

namespace {

struct Outcome {
  int detections = 0;
  int packets = 0;
};

Outcome attack(Rig& rig, SpoofDetector& det, const MacAddress& victim_mac,
               Vec2 attacker_pos, int n_packets,
               const TxPattern* pattern = nullptr) {
  Outcome out;
  for (int i = 0; i < n_packets; ++i) {
    const auto rx = rig.uplink(attacker_pos, 0, pattern);
    rig.sim->advance(0.2);
    if (rx[0].empty()) continue;  // undetected packets can't spoof anyway
    ++out.packets;
    if (det.observe(victim_mac, rx[0][0].signature).verdict ==
        SpoofVerdict::kSpoof) {
      ++out.detections;
    }
  }
  return out;
}

}  // namespace

int main() {
  print_header("Application B — MAC spoofing detection via AoA signatures",
               "Sec. 2.3.2");

  // ---- Experiment 1: detection vs attacker location.
  std::printf("victim: client 2; attacker spoofs the victim's MAC\n\n");
  std::printf("%-34s %10s %12s %12s\n", "attacker position", "dist(m)",
              "flagged", "rate");

  Rig rig(555);
  rig.add_ap(rig.tb.ap_position());
  SpoofDetector detector;
  const auto victim_mac = MacAddress::from_index(2);
  const Vec2 victim_pos = rig.tb.client(2).position;

  // Train + steady-state legit traffic.
  for (int i = 0; i < 12; ++i) {
    const auto rx = rig.uplink(victim_pos, 2);
    if (!rx[0].empty()) detector.observe(victim_mac, rx[0][0].signature);
    rig.sim->advance(0.2);
  }

  for (int id : {3, 1, 4, 12, 9, 7, 6}) {  // increasing separation / variety
    const Vec2 pos = rig.tb.client(id).position;
    const auto out = attack(rig, detector, victim_mac, pos, 16);
    char label[64];
    std::snprintf(label, sizeof(label), "client-%d spot (%s)", id,
                  rig.tb.client(id).note);
    std::printf("%-34.34s %10.1f %8d/%-3d %11.0f%%\n", label,
                distance(pos, victim_pos), out.detections, out.packets,
                out.packets ? 100.0 * out.detections / out.packets : 0.0);
  }
  {
    const Vec2 pos = rig.tb.outdoor_positions()[1];
    TxPattern beam;
    beam.aim_azimuth_deg = bearing_deg(pos, rig.tb.ap_position());
    beam.beamwidth_deg = 30.0;
    beam.boresight_gain_db = 15.0;
    beam.tx_power_db = 12.0;
    const auto out = attack(rig, detector, victim_mac, pos, 16, &beam);
    std::printf("%-34s %10.1f %8d/%-3d %11.0f%%\n",
                "off-site, directional antenna", distance(pos, victim_pos),
                out.detections, out.packets,
                out.packets ? 100.0 * out.detections / out.packets : 0.0);
  }

  // ---- Experiment 2: false alarms on the legitimate client.
  int false_alarms = 0, legit_packets = 0;
  for (int i = 0; i < 60; ++i) {
    const auto rx = rig.uplink(victim_pos, 2);
    rig.sim->advance(30.0);  // half a minute between packets, channel drifts
    if (rx[0].empty()) continue;
    ++legit_packets;
    if (detector.observe(victim_mac, rx[0][0].signature).verdict ==
        SpoofVerdict::kSpoof) {
      ++false_alarms;
    }
  }
  std::printf("\nlegitimate client over 30 min of drift: %d/%d false alarms "
              "(%.1f%%)\n",
              false_alarms, legit_packets,
              legit_packets ? 100.0 * false_alarms / legit_packets : 0.0);

  // ---- Experiment 3: threshold sweep (operating points).
  std::printf("\nthreshold sweep (attacker at client-9 spot, fresh rigs):\n");
  std::printf("%-10s %16s %16s\n", "threshold", "detection rate",
              "false-alarm rate");
  for (double thr : {0.50, 0.60, 0.70, 0.75, 0.80, 0.90}) {
    Rig r2(777);
    r2.add_ap(r2.tb.ap_position());
    TrackerConfig tc;
    tc.match_threshold = thr;
    SpoofDetector det2(tc);
    for (int i = 0; i < 12; ++i) {
      const auto rx = r2.uplink(victim_pos, 2);
      if (!rx[0].empty()) det2.observe(victim_mac, rx[0][0].signature);
      r2.sim->advance(0.2);
    }
    const auto atk = attack(r2, det2, victim_mac, r2.tb.client(9).position, 20);
    int fa = 0, legit = 0;
    for (int i = 0; i < 20; ++i) {
      const auto rx = r2.uplink(victim_pos, 2);
      r2.sim->advance(5.0);
      if (rx[0].empty()) continue;
      ++legit;
      if (det2.observe(victim_mac, rx[0][0].signature).verdict ==
          SpoofVerdict::kSpoof) {
        ++fa;
      }
    }
    std::printf("%-10.2f %15.0f%% %15.1f%%\n", thr,
                atk.packets ? 100.0 * atk.detections / atk.packets : 0.0,
                legit ? 100.0 * fa / legit : 0.0);
  }

  std::printf("\nExpected shape: detection rate near 100%% for attackers in\n"
              "clearly different spots and still high off-site/directional;\n"
              "false alarms in the low single digits; raising the threshold\n"
              "trades false alarms for detection.\n");
  return 0;
}
