// Figure 5: measured versus ground-truth bearing for the 20 Soekris
// clients, circular (octagon) AP array, 10 pseudospectra per client (one
// per packet), mean bearing with 99% confidence interval.
//
// Paper's observations to reproduce:
//   * estimates track ground truth across the full 0..360 range;
//   * clients 6 and 12 show larger variance (distance / pillar);
//   * client 11 (fully blocked) lands close to, but slightly off, truth;
//   * the mean 99% CI across clients is small (paper: ~7 degrees).
#include "bench_common.hpp"

using namespace sa;
using namespace sa::bench;

int main() {
  print_header("Figure 5 — bearing accuracy, 20 clients, circular array",
               "Fig. 5 and Sec. 3.1");

  Rig rig(42);
  rig.add_ap(rig.tb.ap_position());

  constexpr int kPacketsPerClient = 10;
  std::printf("%-7s %-28s %10s %10s %10s %8s\n", "client", "note", "truth",
              "mean-est", "99%CI+/-", "|err|");

  std::vector<double> all_ci, all_err;
  for (const auto& client : rig.tb.clients()) {
    std::vector<double> bearings;
    for (int p = 0; p < kPacketsPerClient; ++p) {
      const auto rx = rig.uplink(client.position, client.id);
      if (!rx[0].empty()) {
        bearings.push_back(rx[0][0].bearing_world_deg[0]);
      }
      rig.sim->advance(0.5);  // fresh fading per packet
    }
    const double truth = rig.tb.ground_truth_bearing_deg(client.id);
    if (bearings.empty()) {
      std::printf("%-7d %-28s %10.1f %10s %10s %8s\n", client.id, client.note,
                  truth, "miss", "-", "-");
      continue;
    }
    const BearingStats st = bearing_stats(bearings);
    const double err = angular_distance_deg(st.mean_deg, truth);
    std::printf("%-7d %-28s %10.1f %10.1f %10.2f %8.2f\n", client.id,
                client.note, truth, st.mean_deg, st.ci99_half_deg, err);
    all_ci.push_back(st.ci99_half_deg);
    all_err.push_back(err);
  }

  std::printf("\nsummary over %zu clients:\n", all_ci.size());
  std::printf("  mean 99%% CI half-width : %6.2f deg   (paper: ~7 deg)\n",
              mean(all_ci));
  std::printf("  mean |bearing error|   : %6.2f deg\n", mean(all_err));
  std::printf("  median |bearing error| : %6.2f deg\n", median(all_err));
  std::printf("  max |bearing error|    : %6.2f deg\n", max_of(all_err));
  return 0;
}
