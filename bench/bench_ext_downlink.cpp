// Extension bench — the paper's Sec. 5 future work: "With AoA
// information obtained, high efficiency downlink directional
// transmission will also be feasible resulting in higher throughput and
// better reliability", plus the whitespace-radio discussion (Sec. 1):
// yielding toward an incumbent by transmit null-steering.
//
// For every ring client: estimate the uplink AoA from one packet, then
// compare the downlink power delivered by (a) a single antenna, (b) an
// AoA-steered conjugate beam, and (c) full-CSI MRT (the upper bound).
// Finally, steer at a client while nulling an incumbent's bearing.
#include "bench_common.hpp"

#include "sa/secure/beamforming.hpp"

using namespace sa;
using namespace sa::bench;

int main() {
  print_header("Extension — AoA-driven downlink beamforming (Sec. 5)",
               "future work: directional downlink + incumbent protection");

  Rig rig(4242);
  auto& ap = rig.add_ap(rig.tb.ap_position());
  const double lambda = ap.wavelength_m();
  const auto geom = ap.config().geometry;
  ChannelConfig quiet;
  quiet.noise_power = 0.0;
  const ChannelSimulator chsim(quiet);

  std::printf("%-8s %14s %14s %14s\n", "client", "AoA-beam gain",
              "MRT gain", "gap to MRT");
  std::vector<double> aoa_gains, mrt_gains;
  for (int id : {1, 2, 3, 4, 5, 8, 9, 10}) {
    const auto& client = rig.tb.client(id);
    // Uplink: estimate the AoA from one received packet.
    const auto rx = rig.uplink(client.position, id);
    if (rx[0].empty()) continue;
    const double est_bearing = world_to_array_bearing(
        geom, rx[0][0].bearing_world_deg[0], ap.config().orientation_deg);

    // Downlink: the true (reciprocal) channel to this client.
    const auto paths = rig.sim->paths(client.position, 0);
    const CVec h = chsim.channel_vector(paths, ap.placement());

    const CVec w_aoa = aoa_beamforming_weights(geom, est_bearing, lambda);
    const CVec w_mrt = mrt_weights(h);
    const double g_aoa = downlink_gain_db(h, w_aoa);
    const double g_mrt = downlink_gain_db(h, w_mrt);
    aoa_gains.push_back(g_aoa);
    mrt_gains.push_back(g_mrt);
    std::printf("%-8d %11.2f dB %11.2f dB %11.2f dB\n", id, g_aoa, g_mrt,
                g_mrt - g_aoa);
    rig.sim->advance(0.3);
  }
  std::printf("\nmean AoA-steered gain over one antenna: %5.2f dB "
              "(theoretical max 10*log10(8) = 9.03 dB)\n",
              mean(aoa_gains));
  std::printf("mean full-CSI MRT gain                : %5.2f dB\n",
              mean(mrt_gains));

  // ---- Incumbent protection: beam at client 1, null toward client 9's
  // bearing (standing in for a whitespace incumbent / eavesdropper).
  const double target = world_to_array_bearing(
      geom, rig.tb.ground_truth_bearing_deg(1), 0.0);
  const double incumbent = world_to_array_bearing(
      geom, rig.tb.ground_truth_bearing_deg(9), 0.0);
  const CVec w_plain = aoa_beamforming_weights(geom, target, lambda);
  const CVec w_null = null_steering_weights(geom, target, {incumbent}, lambda);
  std::printf("\nnull-steering (target = client 1 bearing, protected = "
              "client 9 bearing):\n");
  std::printf("%-22s %16s %16s\n", "", "toward target", "toward incumbent");
  std::printf("%-22s %13.2f dB %13.2f dB\n", "plain AoA beam",
              array_factor_db(geom, w_plain, target, lambda),
              array_factor_db(geom, w_plain, incumbent, lambda));
  std::printf("%-22s %13.2f dB %13.2f dB\n", "null-steered beam",
              array_factor_db(geom, w_null, target, lambda),
              array_factor_db(geom, w_null, incumbent, lambda));

  std::printf("\nExpected shape: AoA-only beamforming recovers most of the\n"
              "10*log10(N) array gain, within ~1-3 dB of full-CSI MRT in\n"
              "multipath; null-steering keeps the target gain while driving\n"
              "the protected bearing below any useful signal level.\n");
  return 0;
}
