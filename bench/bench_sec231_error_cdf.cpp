// Section 2.3.1 headline numbers: "after overhearing just one packet, it
// is possible to measure approximately three quarters of our clients'
// bearings to the access point to within 2.5 degrees and all clients'
// bearings to within 14 degrees with 95% confidence."
//
// We transmit many single packets per client and report the per-client
// 95th-percentile error, then the fraction of clients whose 95th
// percentile is within 2.5 / 14 degrees.
#include "bench_common.hpp"

using namespace sa;
using namespace sa::bench;

int main() {
  print_header("Sec. 2.3.1 — single-packet bearing error CDF",
               "the 2.5-deg / 14-deg @ 95% confidence claims");

  Rig rig(7);
  rig.add_ap(rig.tb.ap_position());

  constexpr int kPacketsPerClient = 24;
  std::vector<double> per_client_p95;
  std::vector<double> all_errors;

  std::printf("%-7s %10s %10s %10s %10s\n", "client", "p50", "p75", "p95",
              "max");
  for (const auto& client : rig.tb.clients()) {
    std::vector<double> errs;
    const double truth = rig.tb.ground_truth_bearing_deg(client.id);
    for (int p = 0; p < kPacketsPerClient; ++p) {
      const auto rx = rig.uplink(client.position, client.id);
      if (!rx[0].empty()) {
        errs.push_back(
            angular_distance_deg(rx[0][0].bearing_world_deg[0], truth));
      }
      rig.sim->advance(0.5);
    }
    if (errs.empty()) {
      std::printf("%-7d %10s\n", client.id, "miss");
      continue;
    }
    const double p95 = percentile(errs, 95.0);
    per_client_p95.push_back(p95);
    all_errors.insert(all_errors.end(), errs.begin(), errs.end());
    std::printf("%-7d %10.2f %10.2f %10.2f %10.2f\n", client.id,
                percentile(errs, 50.0), percentile(errs, 75.0), p95,
                max_of(errs));
  }

  double within_25 = 0.0, within_14 = 0.0;
  for (double p : per_client_p95) {
    if (p <= 2.5) within_25 += 1.0;
    if (p <= 14.0) within_14 += 1.0;
  }
  const double n = static_cast<double>(per_client_p95.size());
  std::printf("\nclients with 95%%-confidence error <= 2.5 deg : %4.0f%%"
              "   (paper: ~75%%)\n",
              100.0 * within_25 / n);
  std::printf("clients with 95%%-confidence error <= 14 deg  : %4.0f%%"
              "   (paper: 100%%)\n",
              100.0 * within_14 / n);
  std::printf("pooled single-packet error percentiles: p50=%.2f p75=%.2f "
              "p95=%.2f deg\n",
              percentile(all_errors, 50.0), percentile(all_errors, 75.0),
              percentile(all_errors, 95.0));
  return 0;
}
