// Streaming-scan hot path microbenchmark: isolates what one
// StreamingReceiver::scan costs — append, incremental conditioning,
// incremental detection, snapshot — against the pre-incremental path
// (grow-copy the raw buffer, re-condition the whole history, full
// detection, full-copy trim), across chunk sizes and history lengths.
// Also times the per-frame covariance with and without the block copy.
//
// The headline claims this bench exists to check:
//   - incremental scan cost scales with the chunk, not the history
//     (the remaining O(history) terms — the origin-dependent coarse
//     Schmidl-Cox recurrences and the snapshot copy — are light);
//   - conditioning is paid once per sample, not once per scan;
//   - the fine-timing searches are memoized (cache hits >> runs).
//
// Usage: bench_scan_hot_path [--smoke]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "sa/aoa/covariance.hpp"
#include "sa/channel/raytracer.hpp"
#include "sa/channel/simulator.hpp"
#include "sa/common/rng.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/ofdm.hpp"
#include "sa/phy/packet.hpp"
#include "sa/secure/streaming.hpp"

using namespace sa;

namespace {

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The pre-incremental scan path, re-created for the before/after
/// comparison: grow-copy append, whole-history re-conditioning, full
/// detection, full-copy trim.
class LegacyScanPath {
 public:
  LegacyScanPath(AccessPoint& ap, StreamingConfig config)
      : ap_(ap), config_(config), buffer_(ap.config().geometry.size(), 0) {}

  /// Returns the number of candidates found (sink against dead-code
  /// elimination); conditions the whole buffer and detects, then trims.
  std::size_t scan_and_trim(const CMat& chunk) {
    CMat grown(buffer_.rows(), buffered_ + chunk.cols());
    for (std::size_t m = 0; m < buffer_.rows(); ++m) {
      for (std::size_t t = 0; t < buffered_; ++t) grown(m, t) = buffer_(m, t);
      for (std::size_t t = 0; t < chunk.cols(); ++t) {
        grown(m, buffered_ + t) = chunk(m, t);
      }
    }
    buffer_ = std::move(grown);
    buffered_ += chunk.cols();
    std::size_t found = 0;
    if (buffered_ >= kPreambleLen + kSymbolLen) {
      const CMat conditioned = ap_.condition(buffer_);
      found = ap_.detect(conditioned).size();
    }
    if (buffered_ > config_.history_samples) {
      const std::size_t drop = buffered_ - config_.history_samples;
      CMat kept(buffer_.rows(), config_.history_samples);
      for (std::size_t m = 0; m < buffer_.rows(); ++m) {
        for (std::size_t t = 0; t < config_.history_samples; ++t) {
          kept(m, t) = buffer_(m, drop + t);
        }
      }
      buffer_ = std::move(kept);
      buffered_ = config_.history_samples;
    }
    return found;
  }

 private:
  AccessPoint& ap_;
  StreamingConfig config_;
  CMat buffer_;
  std::size_t buffered_ = 0;
};

/// One AP and a long multi-antenna stream with a packet every ~3000
/// samples — the workload every sweep replays.
struct Workload {
  Rng rng{42};
  AccessPoint ap;
  CMat stream;

  explicit Workload(std::size_t target_samples)
      : ap(AccessPointConfig{}, rng) {
    ChannelConfig ch;
    ch.noise_power = 1e-5;
    ChannelSimulator sim(ch);
    RayTracer tracer;
    Floorplan empty;
    const auto paths = tracer.trace({12.0, 0.0}, {0.0, 0.0}, empty);

    std::vector<CMat> pieces;
    std::size_t total = 0;
    std::uint16_t seq = 0;
    while (total < target_samples) {
      const std::size_t lead = 800 + 700 * (seq % 3);
      const Frame f = Frame::data(MacAddress::from_index(1),
                                  MacAddress::from_index(2), Bytes{1, 2}, seq++);
      const CVec wave =
          PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
      CMat rx = sim.propagate(wave, paths, ap.placement(), rng);
      CMat piece(rx.rows(), lead + rx.cols());
      for (std::size_t m = 0; m < rx.rows(); ++m) {
        for (std::size_t t = 0; t < lead; ++t) {
          piece(m, t) = rng.complex_normal(1e-5);
        }
        for (std::size_t t = 0; t < rx.cols(); ++t) {
          piece(m, lead + t) = rx(m, t);
        }
      }
      total += piece.cols();
      pieces.push_back(std::move(piece));
    }
    stream = CMat(pieces[0].rows(), total);
    std::size_t at = 0;
    for (const auto& p : pieces) {
      for (std::size_t m = 0; m < p.rows(); ++m) {
        std::copy_n(p.raw() + m * p.cols(), p.cols(),
                    stream.raw() + m * stream.cols() + at);
      }
      at += p.cols();
    }
  }

  CMat chunk_at(std::size_t at, std::size_t len) const {
    const std::size_t end = std::min(at + len, stream.cols());
    CMat out(stream.rows(), end - at);
    for (std::size_t m = 0; m < stream.rows(); ++m) {
      std::copy_n(stream.raw() + m * stream.cols() + at, end - at,
                  out.raw() + m * out.cols());
    }
    return out;
  }
};

struct ScanCost {
  double scan_us = 0.0;    // mean per scan, steady state
  double decode_us = 0.0;  // demodulate + commit per round
  std::size_t frames = 0;
};

/// Replay the stream through the incremental receiver; time scan()
/// separately from demodulate+commit. The first `warmup` rounds (filling
/// the history window) are excluded.
ScanCost run_incremental(Workload& w, const StreamingConfig& cfg,
                         std::size_t chunk, std::size_t warmup) {
  StreamingReceiver rx(w.ap, cfg);
  ScanCost out;
  double scan_s = 0.0, decode_s = 0.0;
  std::size_t rounds = 0, timed = 0;
  for (std::size_t at = 0; at + chunk <= w.stream.cols(); at += chunk) {
    const CMat c = w.chunk_at(at, chunk);
    const auto t0 = Clock::now();
    auto scan = rx.scan(&c);
    const double st = secs_since(t0);
    const auto t1 = Clock::now();
    std::vector<std::optional<ReceivedPacket>> processed;
    processed.reserve(scan.candidates.size());
    for (const auto& cand : scan.candidates) {
      processed.push_back(w.ap.demodulate(*scan.conditioned, cand.detection));
    }
    out.frames += rx.commit(scan, std::move(processed), false).size();
    const double dt = secs_since(t1);
    if (++rounds > warmup) {
      scan_s += st;
      decode_s += dt;
      ++timed;
    }
  }
  if (timed > 0) {
    out.scan_us = 1e6 * scan_s / static_cast<double>(timed);
    out.decode_us = 1e6 * decode_s / static_cast<double>(timed);
  }
  return out;
}

double run_legacy(Workload& w, const StreamingConfig& cfg, std::size_t chunk,
                  std::size_t warmup, std::size_t* sink) {
  LegacyScanPath legacy(w.ap, cfg);
  double scan_s = 0.0;
  std::size_t rounds = 0, timed = 0;
  for (std::size_t at = 0; at + chunk <= w.stream.cols(); at += chunk) {
    const CMat c = w.chunk_at(at, chunk);
    const auto t0 = Clock::now();
    *sink += legacy.scan_and_trim(c);
    const double st = secs_since(t0);
    if (++rounds > warmup) {
      scan_s += st;
      ++timed;
    }
  }
  return timed > 0 ? 1e6 * scan_s / static_cast<double>(timed) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::printf(
      "================================================================\n"
      "Streaming-scan hot path: incremental (ring + condition-once +\n"
      "memoized detection) vs the pre-incremental full-rescan path\n"
      "================================================================\n");

  const std::size_t stream_len = smoke ? 60000 : 240000;
  Workload w(stream_len);
  std::size_t sink = 0;

  // ---- scan cost vs chunk size, fixed history.
  {
    StreamingConfig cfg;  // history 6000
    const std::vector<std::size_t> chunks =
        smoke ? std::vector<std::size_t>{500, 2000}
              : std::vector<std::size_t>{250, 500, 1000, 2000, 4000};
    std::printf("\nscan cost vs chunk size (history %zu, %zu-sample stream):\n",
                cfg.history_samples, w.stream.cols());
    std::printf("%-8s %14s %14s %9s %16s %12s\n", "chunk", "legacy us/scan",
                "incr us/scan", "speedup", "incr ns/sample", "decode us");
    for (std::size_t chunk : chunks) {
      const std::size_t warmup = cfg.history_samples / chunk + 1;
      const double legacy_us = run_legacy(w, cfg, chunk, warmup, &sink);
      const ScanCost inc = run_incremental(w, cfg, chunk, warmup);
      std::printf("%-8zu %14.1f %14.1f %8.1fx %16.1f %12.1f\n", chunk,
                  legacy_us, inc.scan_us, legacy_us / inc.scan_us,
                  1e3 * inc.scan_us / static_cast<double>(chunk),
                  inc.decode_us);
    }
  }

  // ---- scan cost vs history length, fixed chunk: the incremental path
  // should be nearly flat (its O(history) remainder is the light coarse
  // recurrence + snapshot copy), the legacy path linear.
  {
    const std::size_t chunk = 1000;
    const std::vector<std::size_t> histories =
        smoke ? std::vector<std::size_t>{6000, 24000}
              : std::vector<std::size_t>{6000, 12000, 24000, 48000};
    std::printf("\nscan cost vs history length (chunk %zu):\n", chunk);
    std::printf("%-9s %14s %14s %9s\n", "history", "legacy us/scan",
                "incr us/scan", "speedup");
    for (std::size_t history : histories) {
      StreamingConfig cfg;
      cfg.history_samples = history;
      const std::size_t warmup = history / chunk + 1;
      const double legacy_us = run_legacy(w, cfg, chunk, warmup, &sink);
      const ScanCost inc = run_incremental(w, cfg, chunk, warmup);
      std::printf("%-9zu %14.1f %14.1f %8.1fx\n", history, legacy_us,
                  inc.scan_us, legacy_us / inc.scan_us);
    }
  }

  // ---- fine-timing memoization effectiveness.
  {
    StreamingConfig cfg;
    StreamingReceiver rx(w.ap, cfg);
    const std::size_t chunk = 1000;
    for (std::size_t at = 0; at + chunk <= w.stream.cols(); at += chunk) {
      const CMat c = w.chunk_at(at, chunk);
      auto scan = rx.scan(&c);
      std::vector<std::optional<ReceivedPacket>> processed(
          scan.candidates.size());
      for (std::size_t i = 0; i < scan.candidates.size(); ++i) {
        processed[i] = w.ap.demodulate(*scan.conditioned,
                                       scan.candidates[i].detection);
      }
      rx.commit(scan, std::move(processed), false);
    }
    const auto& det = rx.incremental_detector();
    std::printf(
        "\nfine-timing memoization (chunk 1000): %zu searches run, "
        "%zu cache hits (%.1f hits/search)\n",
        det.fine_searches_run(), det.fine_cache_hits(),
        det.fine_searches_run() > 0
            ? static_cast<double>(det.fine_cache_hits()) /
                  static_cast<double>(det.fine_searches_run())
            : 0.0);
  }

  // ---- per-frame covariance: block-copy vs straight off the window.
  {
    const std::size_t reps = smoke ? 400 : 4000;
    const CMat conditioned = w.ap.condition(w.chunk_at(0, 6000));
    const std::size_t start = 900, end = start + 1760;  // ~one 6 Mbps frame
    volatile double guard = 0.0;
    auto t0 = Clock::now();
    for (std::size_t i = 0; i < reps; ++i) {
      CMat block(conditioned.rows(), end - start);
      for (std::size_t m = 0; m < conditioned.rows(); ++m) {
        for (std::size_t t = start; t < end; ++t) {
          block(m, t - start) = conditioned(m, t);
        }
      }
      const CMat r = sample_covariance(block);
      guard = guard + r(0, 0).real();
    }
    const double with_copy_us = 1e6 * secs_since(t0) / static_cast<double>(reps);
    t0 = Clock::now();
    for (std::size_t i = 0; i < reps; ++i) {
      const CMat r = sample_covariance_cols(conditioned, start, end);
      guard = guard + r(0, 0).real();
    }
    const double direct_us = 1e6 * secs_since(t0) / static_cast<double>(reps);
    std::printf(
        "\nper-frame covariance (8 antennas, %zu-sample frame, %zu reps):\n"
        "  block-copy + sample_covariance: %8.1f us\n"
        "  sample_covariance_cols:         %8.1f us  (%.2fx)\n",
        end - start, reps, with_copy_us, direct_us, with_copy_us / direct_us);
  }

  std::printf("\n(sink %zu)\n", sink);
  return 0;
}
