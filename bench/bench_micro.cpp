// Microbenchmarks (google-benchmark): per-stage costs of the SecureAngle
// pipeline, establishing that a software implementation keeps up with the
// paper's 0.4 ms / 20 MHz capture buffers in real time.
#include <benchmark/benchmark.h>

#include "sa/aoa/covariance.hpp"
#include "sa/aoa/estimators.hpp"
#include "sa/aoa/rootmusic.hpp"
#include "sa/array/geometry.hpp"
#include "sa/channel/raytracer.hpp"
#include "sa/common/rng.hpp"
#include "sa/dsp/fft.hpp"
#include "sa/dsp/noise.hpp"
#include "sa/linalg/eig.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/detector.hpp"
#include "sa/phy/packet.hpp"
#include "sa/secure/accesspoint.hpp"
#include "sa/testbed/office.hpp"
#include "sa/testbed/uplink.hpp"

namespace sa {
namespace {

void BM_Fft64(benchmark::State& state) {
  Rng rng(1);
  CVec x(64);
  for (auto& v : x) v = cd{rng.normal(), rng.normal()};
  for (auto _ : state) {
    CVec y = x;
    fft_inplace(y);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_Fft64);

void BM_Fft4096(benchmark::State& state) {
  Rng rng(2);
  CVec x(4096);
  for (auto& v : x) v = cd{rng.normal(), rng.normal()};
  for (auto _ : state) {
    CVec y = x;
    fft_inplace(y);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_Fft4096);

CMat random_hermitian(std::size_t n, Rng& rng) {
  CMat m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) = cd{rng.normal(), rng.normal()};
  }
  return (m + m.hermitian()) * cd{0.5, 0.0};
}

void BM_Eigh8(benchmark::State& state) {
  Rng rng(3);
  const CMat a = random_hermitian(8, rng);
  for (auto _ : state) {
    auto r = eigh(a);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Eigh8);

void BM_Covariance8x2000(benchmark::State& state) {
  Rng rng(4);
  CMat x(8, 2000);
  for (std::size_t m = 0; m < 8; ++m) {
    for (std::size_t t = 0; t < 2000; ++t) x(m, t) = cd{rng.normal(), rng.normal()};
  }
  for (auto _ : state) {
    auto r = sample_covariance(x);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Covariance8x2000);

void BM_MusicScanOctagon(benchmark::State& state) {
  Rng rng(5);
  const auto geom = ArrayGeometry::octagon();
  const CVec a = geom.steering_vector(123.0, 0.125);
  CMat r = CMat::outer(a);
  r += CMat::identity(8) * cd{0.01, 0.0};
  const MusicEstimator music;
  for (auto _ : state) {
    auto res = music.estimate(r, geom, 0.125);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_MusicScanOctagon);


void BM_RootMusicUla8(benchmark::State& state) {
  Rng rng(9);
  const auto geom = ArrayGeometry::uniform_linear(8, 0.0625);
  const CVec a = geom.steering_vector(23.0, 0.125);
  CMat r = CMat::outer(a);
  r += CMat::identity(8) * cd{0.01, 0.0};
  RootMusicConfig cfg;
  cfg.num_sources = 1;
  for (auto _ : state) {
    auto res = root_music(r, geom, 0.125, cfg);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_RootMusicUla8);

void BM_SchmidlCoxDetect8000(benchmark::State& state) {
  // One 0.4 ms WARP buffer (8000 samples at 20 MHz) containing a packet.
  Rng rng(6);
  const Frame f = Frame::data(MacAddress::from_index(1),
                              MacAddress::from_index(2), Bytes{1, 2, 3}, 0);
  const PacketTransmitter tx(PhyRate::k6Mbps);
  const CVec wave = tx.transmit(f.serialize());
  CVec buffer = awgn(2000, 1e-4, rng);
  buffer.insert(buffer.end(), wave.begin(), wave.end());
  const CVec tail = awgn(8000 - buffer.size() % 8000, 1e-4, rng);
  buffer.insert(buffer.end(), tail.begin(), tail.end());
  const SchmidlCoxDetector det;
  for (auto _ : state) {
    auto hits = det.detect(buffer);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SchmidlCoxDetect8000);

void BM_PhyDecode(benchmark::State& state) {
  Rng rng(7);
  Bytes psdu(100);
  for (auto& b : psdu) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const PacketTransmitter tx(PhyRate::k24Mbps);
  const CVec wave = tx.transmit(psdu);
  const PacketReceiver rx;
  for (auto _ : state) {
    auto d = rx.decode(wave);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_PhyDecode);

void BM_RayTraceOffice(benchmark::State& state) {
  const auto tb = OfficeTestbed::figure4();
  const RayTracer tracer;
  for (auto _ : state) {
    auto paths =
        tracer.trace(tb.client(6).position, tb.ap_position(), tb.floorplan());
    benchmark::DoNotOptimize(paths);
  }
}
BENCHMARK(BM_RayTraceOffice);

void BM_FullApReceive(benchmark::State& state) {
  // End-to-end per-packet cost: detection + decode + covariance + MUSIC
  // + signature, on an 8-antenna buffer.
  const auto tb = OfficeTestbed::figure4();
  Rng rng(8);
  UplinkConfig ucfg;
  ucfg.channel.noise_power = 1e-5;
  UplinkSimulation sim(tb, ucfg, rng);
  AccessPointConfig cfg;
  cfg.position = tb.ap_position();
  AccessPoint ap(cfg, rng);
  sim.add_ap(ap.placement());
  const Frame f = Frame::data(MacAddress::from_index(1),
                              MacAddress::from_index(2), Bytes{1, 2, 3}, 0);
  const CVec wave = PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
  const CMat rx = sim.transmit(tb.client(1).position, wave)[0];
  for (auto _ : state) {
    auto pkts = ap.receive(rx);
    benchmark::DoNotOptimize(pkts);
  }
}
BENCHMARK(BM_FullApReceive);

}  // namespace
}  // namespace sa
