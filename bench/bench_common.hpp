// Shared experiment rig for the paper-reproduction benches: the Figure-4
// office, an uplink simulation, and helpers to fire one 802.11 frame from
// a position and collect each AP's ReceivedPacket.
#pragma once

#include <cstdio>
#include <memory>
#include <vector>

#include "sa/common/angles.hpp"
#include "sa/common/rng.hpp"
#include "sa/common/stats.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/packet.hpp"
#include "sa/secure/accesspoint.hpp"
#include "sa/secure/spoofdetector.hpp"
#include "sa/secure/virtualfence.hpp"
#include "sa/testbed/office.hpp"
#include "sa/testbed/uplink.hpp"

namespace sa::bench {

inline constexpr double kNoisePower = 1e-5;  // ~46 dB SNR for ring clients

struct Rig {
  OfficeTestbed tb = OfficeTestbed::figure4();
  Rng rng;
  std::unique_ptr<UplinkSimulation> sim;
  std::vector<std::unique_ptr<AccessPoint>> aps;
  std::uint16_t seq = 0;

  explicit Rig(std::uint64_t seed, double noise_power = kNoisePower)
      : rng(seed) {
    UplinkConfig cfg;
    cfg.channel.noise_power = noise_power;
    sim = std::make_unique<UplinkSimulation>(tb, cfg, rng);
  }

  /// Add an AP; default geometry is the paper's octagon array.
  AccessPoint& add_ap(Vec2 position,
                      ArrayGeometry geometry = ArrayGeometry::octagon(),
                      bool calibrated = true) {
    AccessPointConfig cfg;
    cfg.position = position;
    cfg.geometry = std::move(geometry);
    cfg.apply_calibration = calibrated;
    aps.push_back(std::make_unique<AccessPoint>(cfg, rng));
    sim->add_ap(aps.back()->placement());
    return *aps.back();
  }

  /// Build one uplink data frame's waveform.
  CVec make_wave(int client_id) {
    const Frame frame =
        Frame::data(MacAddress::from_index(9999),
                    MacAddress::from_index(static_cast<std::uint32_t>(client_id)),
                    Bytes{0xDE, 0xAD, 0xBE, 0xEF}, seq++);
    return PacketTransmitter(PhyRate::k6Mbps).transmit(frame.serialize());
  }

  /// Transmit one frame from `from`; returns each AP's received packets.
  std::vector<std::vector<ReceivedPacket>> uplink(
      Vec2 from, int client_id, const TxPattern* pattern = nullptr) {
    const CVec wave = make_wave(client_id);
    const auto rx = sim->transmit(from, wave, pattern);
    std::vector<std::vector<ReceivedPacket>> out;
    out.reserve(aps.size());
    for (std::size_t i = 0; i < aps.size(); ++i) {
      out.push_back(aps[i]->receive(rx[i]));
    }
    return out;
  }
};

/// Circular mean + max deviation-based CI of a set of bearings (degrees).
struct BearingStats {
  double mean_deg = 0.0;
  double ci99_half_deg = 0.0;  ///< Student-t 99% CI of the angular error
  std::size_t n = 0;
};

inline BearingStats bearing_stats(const std::vector<double>& bearings_deg) {
  BearingStats out;
  out.n = bearings_deg.size();
  if (bearings_deg.empty()) return out;
  out.mean_deg = circular_mean_deg(bearings_deg);
  std::vector<double> devs;
  devs.reserve(bearings_deg.size());
  for (double b : bearings_deg) {
    devs.push_back(wrap_deg180(b - out.mean_deg));
  }
  const auto ci = confidence_interval(devs, 0.99);
  // CI of the deviation around the circular mean; half width reported.
  out.ci99_half_deg = ci.half_width;
  return out;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

}  // namespace sa::bench
