// Figure 6: stability of AoA signatures over time, linear 8-antenna
// array. One pseudospectrum per packet at logarithmically spaced lags
// (0 s, 1 s, 10 s, 100 s, 1000 s, 1 hour, 1 day) for three representative
// clients: one in another room, one nearby in the AP's room, one far away
// in the AP's room.
//
// Paper's observation to reproduce: "the direct-path peak is quite stable
// while the multipath reflection peaks (smaller peaks) sometimes vary.
// From minute to minute, pseudospectra are quite stable."
#include "bench_common.hpp"

#include "sa/signature/metrics.hpp"

using namespace sa;
using namespace sa::bench;

namespace {

struct Role {
  int client_id;
  const char* role;  // the paper's Fig. 6 label this client plays
};

}  // namespace

int main() {
  print_header("Figure 6 — signature stability over a day, linear array",
               "Fig. 6 and Sec. 3.2");

  Rig rig(2026);
  // Linear lambda/2 array (the paper's 6.13 cm spacing). Oriented 45 deg
  // so the three clients of interest sit within +/-45 deg of broadside —
  // a linear array loses resolution toward endfire, so any real
  // deployment faces it at its clients.
  {
    AccessPointConfig cfg;
    cfg.position = rig.tb.ap_position();
    cfg.geometry = ArrayGeometry::uniform_linear(8, 0.0613);
    cfg.orientation_deg = 45.0;
    rig.aps.push_back(std::make_unique<AccessPoint>(cfg, rig.rng));
    rig.sim->add_ap(rig.aps.back()->placement());
  }

  const Role roles[] = {
      {7, "paper's 'Client 2': another room nearby"},
      {4, "paper's 'Client 5': same room, near"},
      {6, "paper's 'Client 10': far, strong multipath"},
  };
  const double lags_s[] = {0.0, 1.0, 10.0, 100.0, 1000.0, 3600.0, 86400.0};
  const char* lag_names[] = {"0s", "1s", "10s", "100s", "1000s", "1h", "1day"};

  for (const Role& role : roles) {
    const auto& client = rig.tb.client(role.client_id);
    std::printf("\n-- testbed client %d (%s)\n", client.id, role.role);
    std::printf("%-7s %12s %12s %10s %12s\n", "lag", "direct-peak",
                "drift(deg)", "#peaks", "match-vs-t0");

    AoaSignature first;
    double first_bearing = 0.0;
    double elapsed = 0.0;
    for (std::size_t i = 0; i < std::size(lags_s); ++i) {
      rig.sim->advance(lags_s[i] - elapsed);
      elapsed = lags_s[i];
      const auto rx = rig.uplink(client.position, client.id);
      if (rx[0].empty()) {
        std::printf("%-7s %12s\n", lag_names[i], "miss");
        continue;
      }
      const AoaSignature& sig = rx[0][0].signature;
      const double bearing = rx[0][0].bearing_array_deg;
      if (i == 0) {
        first = sig;
        first_bearing = bearing;
      }
      std::printf("%-7s %12.1f %12.2f %10zu %12.3f\n", lag_names[i], bearing,
                  std::abs(bearing - first_bearing), sig.peaks().size(),
                  match_score(sig, first));
    }
  }

  std::printf("\nExpected shape: direct-peak drift stays within a couple of\n"
              "degrees at every lag; match-vs-t0 stays high minute-to-minute\n"
              "and dips only slightly at 1h/1day as reflection peaks wander.\n");
  return 0;
}
