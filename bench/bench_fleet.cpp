// Fleet-tier bench: aggregate frames/sec of N site dataplanes under one
// FleetCoordinator, and the latency of a cross-site client handoff
// (quiesce + export + FleetWire + import), at 100s of APs.
//
// The waveform workload is synthesized once from site 0's channel
// simulation and replayed into every site — each site's pipeline does
// identical work (scan, decode, covariance, AoA, policy chain), so the
// aggregate number measures the dataplanes plus the coordinator's
// routing, not the channel simulator. Handoffs are then timed one by
// one on the quiescent fleet: notify_association's full path including
// both sites' wait_idle, the state export, the wire round-trip, and the
// import under the generation guard.
//
// Usage: bench_fleet [--smoke] [--json <path>] [--min-aggregate-fps <fps>]
//                    [--sites N] [--aps N] [--threads N] [--rounds N]
//                    [--handoffs N] [--fault-plan SPEC]
//                    [--max-handoff-p99-us <us>]
//   --smoke      small fleet (8 sites x 4 APs, 2 rounds) so CI can run
//                every code path on each PR.
//   --json PATH  machine-readable results (BENCH_<pr>.json is captured
//                this way; the fleet-smoke CI job uploads it).
//   --min-aggregate-fps X  perf tripwire: exit non-zero when the
//                aggregate frames/sec lands below X. CI passes a
//                generous floor from the checked-in baseline.
//   --sites N / --aps N / --threads N  fleet shape: N sites of N APs,
//                N dataplane threads per site. Default 8 x 32 = 256 APs.
//   --rounds N / --handoffs N  workload size per site / timed handoffs.
//   --fault-plan SPEC  run the handoff phase over a lossy transport
//                (sa/fleet/transport.hpp FaultPlan string). Cold starts
//                are counted, not failures — the point is the latency
//                of handoffs that retry.
//   --max-handoff-p99-us X  latency tripwire: exit non-zero when the
//                handoff p99 exceeds X microseconds. CI pairs it with a
//                5% loss plan so an accidental busy-wait or unbounded
//                retry loop in the transport stack fails the job.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sa/fleet/coordinator.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/packet.hpp"
#include "sa/sim/deployment.hpp"

using namespace sa;

namespace {

double percentile_us(std::vector<double> sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

struct Results {
  bool smoke = false;
  std::size_t sites = 0, aps_per_site = 0, threads = 0, rounds = 0;
  std::size_t frames = 0;
  double seconds = 0.0;
  double aggregate_fps = 0.0;
  std::size_t handoffs = 0;
  double handoff_p50_us = 0.0, handoff_p99_us = 0.0, handoff_max_us = 0.0;
  std::string fault_plan;  ///< empty = perfect channel
  std::uint64_t retries = 0, cold_starts = 0;
};

void write_json(const Results& r, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"fleet\",\n"
      "  \"config\": {\"smoke\": %s, \"sites\": %zu, \"aps_per_site\": %zu, "
      "\"total_aps\": %zu, \"threads_per_site\": %zu, \"rounds\": %zu},\n"
      "  \"aggregate\": {\"frames\": %zu, \"seconds\": %.4f, "
      "\"fps\": %.2f},\n"
      "  \"handoff_latency_us\": {\"count\": %zu, \"p50\": %.1f, "
      "\"p99\": %.1f, \"max\": %.1f},\n"
      "  \"transport\": {\"fault_plan\": \"%s\", \"retries\": %llu, "
      "\"cold_starts\": %llu},\n"
      "  \"tripwire\": {\"min_aggregate_fps\": %.2f, "
      "\"max_handoff_p99_us\": %.1f}\n"
      "}\n",
      r.smoke ? "true" : "false", r.sites, r.aps_per_site,
      r.sites * r.aps_per_site, r.threads, r.rounds, r.frames, r.seconds,
      r.aggregate_fps, r.handoffs, r.handoff_p50_us, r.handoff_p99_us,
      r.handoff_max_us, r.fault_plan.c_str(),
      static_cast<unsigned long long>(r.retries),
      static_cast<unsigned long long>(r.cold_starts),
      r.aggregate_fps * 0.3,
      // The retry pump runs on a virtual clock (no sleeps), so even a
      // lossy handoff stays microseconds-scale; 40x absorbs runner
      // noise while still catching an accidental real-time wait.
      r.handoff_p99_us * 40.0);
  std::fclose(f);
  std::printf("json: %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  Results r;
  r.sites = 8;
  r.aps_per_site = 32;
  r.threads = 1;
  r.rounds = 6;
  std::size_t handoff_count = 64;
  const char* json_path = nullptr;
  double min_aggregate_fps = 0.0;
  double max_handoff_p99_us = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      r.smoke = true;
      r.aps_per_site = 4;
      r.rounds = 2;
      handoff_count = 16;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-aggregate-fps") == 0 &&
               i + 1 < argc) {
      min_aggregate_fps = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--sites") == 0 && i + 1 < argc) {
      r.sites = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--aps") == 0 && i + 1 < argc) {
      r.aps_per_site = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      r.threads = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      r.rounds = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--handoffs") == 0 && i + 1 < argc) {
      handoff_count = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--fault-plan") == 0 && i + 1 < argc) {
      r.fault_plan = argv[++i];
    } else if (std::strcmp(argv[i], "--max-handoff-p99-us") == 0 &&
               i + 1 < argc) {
      max_handoff_p99_us = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown arg: %s\n", argv[i]);
      return 2;
    }
  }

  FleetSpec spec;
  spec.site.num_aps = r.aps_per_site;
  spec.site.antennas = 4;
  spec.num_sites = r.sites;
  std::printf("fleet bench: %zu site(s) x %zu AP(s) = %zu APs, "
              "%zu thread(s)/site, %zu round(s)/site\n",
              r.sites, r.aps_per_site, r.sites * r.aps_per_site, r.threads,
              r.rounds);

  // One waveform round per (round, walker) pair, synthesized once.
  const std::size_t walkers = r.smoke ? 4 : 8;
  BuiltDeployment wavegen = build_deployment(site_spec(spec, 0), true);
  std::uint16_t seq = 0;
  std::vector<std::vector<CMat>> rounds;
  rounds.reserve(r.rounds);
  for (std::size_t i = 0; i < r.rounds; ++i) {
    const int client = static_cast<int>(1 + (i % walkers));
    const Frame f = Frame::data(
        MacAddress::from_index(0xFF),
        MacAddress::from_index(static_cast<std::uint32_t>(client)),
        Bytes{0xDE, 0xAD}, seq++);
    const CVec w = PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
    wavegen.sim->advance(0.05);
    rounds.push_back(wavegen.sim->transmit(
        wavegen.testbed.client(client).position, w, nullptr));
  }

  FleetConfig config;
  config.spec = spec;
  config.threads_per_site = r.threads;
  if (!r.fault_plan.empty()) {
    const auto plan = FaultPlan::parse(r.fault_plan);
    if (!plan) {
      std::fprintf(stderr, "bad --fault-plan: %s\n", r.fault_plan.c_str());
      return 2;
    }
    config.fault_plan = *plan;
  }
  FleetCoordinator fleet(config);
  std::printf("spoof idle horizon: %zu frames (fleet default)\n",
              fleet.resolved_spoof_idle_frames());
  if (config.fault_plan.active()) {
    std::printf("fault plan: %s\n", config.fault_plan.to_string().c_str());
  }

  // Home every walker at site 0 so the handoff phase moves real state.
  for (std::size_t wkr = 0; wkr < walkers; ++wkr) {
    fleet.notify_association(
        MacAddress::from_index(static_cast<std::uint32_t>(1 + wkr)), 0);
  }

  // --- aggregate throughput: every site chews the same workload ---
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& round : rounds) {
    for (std::size_t s = 0; s < fleet.num_sites(); ++s) {
      fleet.submit_round(static_cast<std::uint32_t>(s), round);
    }
  }
  fleet.drain_all();
  const auto t1 = std::chrono::steady_clock::now();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.frames = fleet.total_decisions();
  r.aggregate_fps = r.seconds > 0.0 ? r.frames / r.seconds : 0.0;
  std::printf("aggregate: %zu frames decided in %.3f s = %.1f frames/s "
              "across the fleet\n",
              r.frames, r.seconds, r.aggregate_fps);

  // --- handoff latency: walkers hop to the next site, one timed call
  // per hop on the quiescent fleet ---
  std::vector<double> latencies_us;
  latencies_us.reserve(handoff_count);
  for (std::size_t h = 0; h < handoff_count; ++h) {
    const MacAddress mac =
        MacAddress::from_index(static_cast<std::uint32_t>(1 + h % walkers));
    const std::uint32_t dest = static_cast<std::uint32_t>(
        (*fleet.home_site(mac) + 1) % fleet.num_sites());
    const auto h0 = std::chrono::steady_clock::now();
    const auto hr = fleet.notify_association(mac, dest);
    const auto h1 = std::chrono::steady_clock::now();
    // A cold start is a measured outcome, not a failure: under a lossy
    // plan the timed path includes the full (bounded) retry schedule.
    if (hr.outcome != FleetImportOutcome::kApplied || !hr.migrated) {
      std::fprintf(stderr, "handoff %zu failed: %s\n", h,
                   to_string(hr.outcome));
      return 1;
    }
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(h1 - h0).count());
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  r.handoffs = latencies_us.size();
  r.handoff_p50_us = percentile_us(latencies_us, 0.50);
  r.handoff_p99_us = percentile_us(latencies_us, 0.99);
  r.handoff_max_us = latencies_us.empty() ? 0.0 : latencies_us.back();
  const FleetStats stats = fleet.stats();
  r.retries = stats.retries;
  r.cold_starts = stats.cold_starts;
  std::printf("handoff: %zu migration(s), latency p50 %.1f us, "
              "p99 %.1f us, max %.1f us",
              r.handoffs, r.handoff_p50_us, r.handoff_p99_us,
              r.handoff_max_us);
  if (config.fault_plan.active()) {
    std::printf(" (%llu retries, %llu cold starts)",
                static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.cold_starts));
  }
  std::printf("\n");
  fleet.close();

  if (json_path != nullptr) write_json(r, json_path);
  if (min_aggregate_fps > 0.0 && r.aggregate_fps < min_aggregate_fps) {
    std::fprintf(stderr,
                 "TRIPWIRE: aggregate %.1f frames/s below floor %.1f\n",
                 r.aggregate_fps, min_aggregate_fps);
    return 1;
  }
  if (max_handoff_p99_us > 0.0 && r.handoff_p99_us > max_handoff_p99_us) {
    std::fprintf(stderr,
                 "TRIPWIRE: handoff p99 %.1f us above cap %.1f us\n",
                 r.handoff_p99_us, max_handoff_p99_us);
    return 1;
  }
  return 0;
}
