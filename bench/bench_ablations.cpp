// Ablations over the design choices DESIGN.md calls out:
//   A1. array calibration on/off (paper Sec. 2.2: uncalibrated chains
//       make AoA inoperable);
//   A2. whole-packet covariance averaging vs shorter windows (paper
//       Sec. 3: single-sample measurements are noise-sensitive);
//   A3. estimator: MUSIC vs Capon vs Bartlett vs the two-antenna
//       Equation 1 (paper Sec. 2.1: Eq. 1 breaks under multipath);
//   A4. direct-path rule: power-weighted peak vs plain argmax (the
//       false-positive problem of Sec. 3.1);
//   A5. forward-backward averaging on/off for the linear array.
#include "bench_common.hpp"

#include "sa/aoa/covariance.hpp"
#include "sa/aoa/estimators.hpp"
#include "sa/signature/signature.hpp"

using namespace sa;
using namespace sa::bench;

namespace {

constexpr int kRingClients[] = {1, 2, 3, 4, 5, 8, 9, 10};
/// Subset whose array bearings stay within +/-30 deg of a north-facing
/// ULA's broadside (linear-array ablations are meaningless at endfire).
constexpr int kBroadsideClients[] = {3, 4, 5};

/// Mean |bearing error| over the given clients with a given AP
/// configuration tweak.
template <typename ConfigFn>
double mean_client_error(std::uint64_t seed, ConfigFn&& tweak,
                         const int* ids, std::size_t n_ids) {
  const auto tb = OfficeTestbed::figure4();
  Rng rng(seed);
  UplinkConfig ucfg;
  ucfg.channel.noise_power = kNoisePower;
  UplinkSimulation sim(tb, ucfg, rng);
  AccessPointConfig cfg;
  cfg.position = tb.ap_position();
  tweak(cfg);
  AccessPoint ap(cfg, rng);
  sim.add_ap(ap.placement());

  std::vector<double> errs;
  std::uint16_t seq = 0;
  for (std::size_t i = 0; i < n_ids; ++i) {
    const int id = ids[i];
    const Frame f = Frame::data(MacAddress::from_index(9999),
                                MacAddress::from_index(id), Bytes{1}, seq++);
    const CVec w = PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
    const auto pkts = ap.receive(sim.transmit(tb.client(id).position, w)[0]);
    if (pkts.empty()) continue;
    // For linear arrays take the better of the two ambiguous candidates.
    double best = 1e9;
    for (double b : pkts[0].bearing_world_deg) {
      best = std::min(best,
                      angular_distance_deg(b, tb.ground_truth_bearing_deg(id)));
    }
    errs.push_back(best);
    sim.advance(0.5);
  }
  return errs.empty() ? -1.0 : mean(errs);
}

}  // namespace

int main() {
  print_header("Ablations — calibration, averaging, estimator, peak rule",
               "Secs. 2.1, 2.2, 3.1 design choices");

  // ---- A1: calibration.
  std::printf("A1. calibration (octagon array, mean ring error, 3 seeds):\n");
  for (bool cal : {true, false}) {
    std::vector<double> errs;
    for (std::uint64_t s : {11u, 12u, 13u}) {
      errs.push_back(mean_client_error(
          s, [&](AccessPointConfig& c) { c.apply_calibration = cal; },
          kRingClients, std::size(kRingClients)));
    }
    std::printf("    %-14s mean |err| = %7.2f deg\n",
                cal ? "calibrated" : "UNCALIBRATED", mean(errs));
  }

  // ---- A2: covariance averaging window.
  std::printf("\nA2. covariance averaging window (client 2, octagon):\n");
  {
    const auto tb = OfficeTestbed::figure4();
    Rng rng(21);
    UplinkConfig ucfg;
    ucfg.channel.noise_power = 3e-4;  // noisier so averaging matters
    UplinkSimulation sim(tb, ucfg, rng);
    AccessPointConfig cfg;
    cfg.position = tb.ap_position();
    AccessPoint ap(cfg, rng);
    sim.add_ap(ap.placement());
    const double truth = world_to_array_bearing(
        cfg.geometry, tb.ground_truth_bearing_deg(2), 0.0);

    for (std::size_t window : {1u, 16u, 80u, 320u, 2000u}) {
      std::vector<double> errs;
      for (int rep = 0; rep < 12; ++rep) {
        const Frame f = Frame::data(MacAddress::from_index(9999),
                                    MacAddress::from_index(2), Bytes{1},
                                    static_cast<std::uint16_t>(rep));
        const CVec w =
            PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
        CMat rx = sim.transmit(tb.client(2).position, w)[0];
        ap.impairments().apply(rx);
        ap.calibration().apply(rx);
        // Use `window` samples starting inside the packet body.
        const std::size_t start = 400;
        const std::size_t n = std::min(window, rx.cols() - start);
        CMat block(rx.rows(), n);
        for (std::size_t m = 0; m < rx.rows(); ++m) {
          for (std::size_t t = 0; t < n; ++t) block(m, t) = rx(m, start + t);
        }
        const auto music = ap.music_from_samples(block);
        errs.push_back(angular_distance_deg(
            music.spectrum.refined_max_angle_deg(), truth));
        sim.advance(0.3);
      }
      std::printf("    window %5zu samples: mean |err| = %7.2f deg\n", window,
                  mean(errs));
    }
  }

  // ---- A3: estimator comparison (linear array so Eq. 1 applies).
  // Two regimes, each with the array oriented so the client sits near
  // broadside: client 4 has a clean dominant direct path; client 12 is
  // partially blocked by the pillar with strong multipath — the regime
  // where the paper's Sec. 2.1 argument says Equation 1 breaks down
  // while subspace methods survive.
  std::printf("\nA3. estimator errors (8-antenna linear array):\n");
  std::printf("    %-28s %10s %10s\n", "", "client 4", "client 12");
  {
    const auto tb = OfficeTestbed::figure4();
    const struct {
      int id;
      double orientation;
    } cases[] = {{4, 0.0}, {12, 240.0}};
    double music_err[2], capon_err[2], bartlett_err[2], eq1_err[2];
    for (int c = 0; c < 2; ++c) {
      Rng rng(31);
      UplinkConfig ucfg;
      ucfg.channel.noise_power = kNoisePower;
      UplinkSimulation sim(tb, ucfg, rng);
      const auto geom = ArrayGeometry::uniform_linear(8, 0.0613);
      AccessPointConfig cfg;
      cfg.position = tb.ap_position();
      cfg.geometry = geom;
      cfg.orientation_deg = cases[c].orientation;
      AccessPoint ap(cfg, rng);
      sim.add_ap(ap.placement());
      const double lambda = ap.wavelength_m();
      const double truth = world_to_array_bearing(
          geom, tb.ground_truth_bearing_deg(cases[c].id), cfg.orientation_deg);

      std::vector<double> e_music, e_capon, e_bartlett, e_eq1;
      for (int rep = 0; rep < 12; ++rep) {
        const Frame f = Frame::data(
            MacAddress::from_index(9999),
            MacAddress::from_index(cases[c].id), Bytes{1},
            static_cast<std::uint16_t>(rep));
        const CVec w =
            PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
        CMat rx = sim.transmit(tb.client(cases[c].id).position, w)[0];
        ap.impairments().apply(rx);
        ap.calibration().apply(rx);
        const CMat r = sample_covariance(rx);

        const auto music = ap.music_from_samples(rx);
        auto sig = AoaSignature::from_spectrum(music.spectrum, {});
        const double music_bearing = power_weighted_direct_bearing_deg(
            sig.spectrum(), sig.peaks(), r, geom, lambda);
        e_music.push_back(std::abs(music_bearing - truth));
        e_capon.push_back(std::abs(
            capon_spectrum(r, geom, lambda).refined_max_angle_deg() - truth));
        e_bartlett.push_back(std::abs(
            bartlett_spectrum(r, geom, lambda).refined_max_angle_deg() -
            truth));
        // Equation 1 on the two centre antennas, averaged over the packet.
        cd corr{0.0, 0.0};
        for (std::size_t t = 0; t < rx.cols(); ++t) {
          corr += rx(4, t) * std::conj(rx(3, t));
        }
        const cd x2 = corr / std::abs(corr);
        e_eq1.push_back(
            std::abs(two_antenna_aoa_deg(cd{1.0, 0.0}, x2) - truth));
        sim.advance(0.3);
      }
      music_err[c] = mean(e_music);
      capon_err[c] = mean(e_capon);
      bartlett_err[c] = mean(e_bartlett);
      eq1_err[c] = mean(e_eq1);
    }
    std::printf("    %-28s %9.2f %9.2f deg\n", "MUSIC (power-weighted)",
                music_err[0], music_err[1]);
    std::printf("    %-28s %9.2f %9.2f deg\n", "Capon/MVDR", capon_err[0],
                capon_err[1]);
    std::printf("    %-28s %9.2f %9.2f deg\n", "Bartlett", bartlett_err[0],
                bartlett_err[1]);
    std::printf("    %-28s %9.2f %9.2f deg   (paper: Eq. 1 breaks under "
                "multipath)\n",
                "Equation 1 (two antennas)", eq1_err[0], eq1_err[1]);
  }

  // ---- A4: direct-path selection rule.
  std::printf("\nA4. direct-path rule (octagon, mean ring error, 3 seeds):\n");
  for (bool pw : {true, false}) {
    std::vector<double> errs;
    for (std::uint64_t s : {41u, 42u, 43u}) {
      errs.push_back(mean_client_error(
          s, [&](AccessPointConfig& c) { c.power_weighted_bearing = pw; },
          kRingClients, std::size(kRingClients)));
    }
    std::printf("    %-22s mean |err| = %7.2f deg\n",
                pw ? "power-weighted peak" : "plain argmax (paper)",
                mean(errs));
  }

  // ---- A5: forward-backward averaging (linear array).
  std::printf("\nA5. forward-backward averaging (linear, broadside clients, 3 seeds):\n");
  for (bool fb : {true, false}) {
    std::vector<double> errs;
    for (std::uint64_t s : {51u, 52u, 53u}) {
      errs.push_back(mean_client_error(
          s,
          [&](AccessPointConfig& c) {
            c.geometry = ArrayGeometry::uniform_linear(8, 0.0613);
            c.music.forward_backward = fb;
          },
          kBroadsideClients, std::size(kBroadsideClients)));
    }
    std::printf("    %-14s mean |err| = %7.2f deg\n", fb ? "FB on" : "FB off",
                mean(errs));
  }

  return 0;
}
