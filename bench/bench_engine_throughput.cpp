// DeploymentEngine throughput: frames/sec of the batched multi-threaded
// frame-decision pipeline versus thread count and AoA backend, on the
// Figure-4 office with a 4-AP deployment.
//
// The workload (channel-simulated uplink chunks) is generated once and
// replayed against a fresh engine per configuration, so the numbers
// isolate the receive pipeline itself: conditioning, detection, PHY
// decode, covariance, AoA estimation, grouping, and the fence/spoof
// decision — not the channel simulator.
//
// Usage: bench_engine_throughput [packets-per-client] [max-threads]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "sa/engine/deployment.hpp"

using namespace sa;

namespace {

double run_once(DeploymentEngine& engine,
                const std::vector<std::vector<CMat>>& rounds,
                std::size_t* frames_out) {
  std::size_t frames = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& round : rounds) {
    frames += engine.ingest(round).size();
  }
  frames += engine.flush().size();
  const auto t1 = std::chrono::steady_clock::now();
  *frames_out = frames;
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const int packets = argc > 1 ? std::atoi(argv[1]) : 6;
  const std::size_t max_threads =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  const std::size_t num_aps = 4;

  sa::bench::print_header(
      "DeploymentEngine throughput: frames/sec vs threads and AoA backend",
      "engine scaling on the Figure-4 office (4 APs)");

  const auto tb = OfficeTestbed::figure4();

  // One AP set per backend, drawn from identical RNG streams so chain
  // impairments and calibration match across backends.
  const AoaBackend backends[] = {AoaBackend::kMusic, AoaBackend::kCapon,
                                 AoaBackend::kBartlett,
                                 AoaBackend::kRootMusic};
  std::vector<std::vector<std::unique_ptr<AccessPoint>>> ap_sets;
  for (AoaBackend backend : backends) {
    Rng rng(42);
    std::vector<std::unique_ptr<AccessPoint>> aps;
    for (const Vec2& spot : tb.ap_mounting_points(num_aps)) {
      AccessPointConfig cfg;
      cfg.position = spot;
      cfg.estimator = backend;
      aps.push_back(std::make_unique<AccessPoint>(cfg, rng));
    }
    ap_sets.push_back(std::move(aps));
  }

  // Pre-generate the workload once (placements are backend-independent).
  std::printf("\ngenerating workload: %d packets x 8 ring clients...\n",
              packets);
  std::vector<std::vector<CMat>> rounds;
  {
    Rng rng(42);
    UplinkConfig ucfg;
    ucfg.channel.noise_power = sa::bench::kNoisePower;
    UplinkSimulation sim(tb, ucfg, rng);
    for (const auto& ap : ap_sets[0]) sim.add_ap(ap->placement());
    std::uint16_t seq = 0;
    const int ring_clients[] = {1, 2, 3, 4, 5, 8, 9, 10};
    for (int p = 0; p < packets; ++p) {
      for (int id : ring_clients) {
        const Frame f = Frame::data(MacAddress::from_index(0xFF),
                                    MacAddress::from_index(id), Bytes{1, 2, 3},
                                    seq++);
        const CVec w =
            PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
        rounds.push_back(sim.transmit(tb.client(id).position, w, nullptr));
        sim.advance(0.25);
      }
    }
  }

  auto make_engine = [&](std::size_t set, std::size_t threads) {
    EngineConfig ecfg;
    ecfg.num_threads = threads;
    ecfg.coordinator.fence_boundary = tb.building_outline();
    ecfg.coordinator.min_aps_for_fence = 2;
    std::vector<AccessPoint*> ptrs;
    for (const auto& ap : ap_sets[set]) ptrs.push_back(ap.get());
    return std::make_unique<DeploymentEngine>(ecfg, ptrs);
  };

  // ---- frames/sec vs thread count (MUSIC backend).
  std::printf("\n%-10s %10s %12s %10s\n", "threads", "frames", "frames/sec",
              "speedup");
  double base_fps = 0.0;
  for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
    auto engine = make_engine(0, threads);
    std::size_t frames = 0;
    const double secs = run_once(*engine, rounds, &frames);
    const double fps = static_cast<double>(frames) / secs;
    if (threads == 1) base_fps = fps;
    std::printf("%-10zu %10zu %12.1f %9.2fx\n", threads, frames, fps,
                fps / base_fps);
  }
  std::printf("(hardware concurrency: %u)\n",
              std::thread::hardware_concurrency());

  // ---- frames/sec vs AoA backend (4 threads).
  const std::size_t backend_threads = std::min<std::size_t>(4, max_threads);
  std::printf("\n%-12s %10s %12s\n", "estimator", "frames", "frames/sec");
  for (std::size_t b = 0; b < ap_sets.size(); ++b) {
    auto engine = make_engine(b, backend_threads);
    std::size_t frames = 0;
    const double secs = run_once(*engine, rounds, &frames);
    std::printf("%-12s %10zu %12.1f\n", to_string(backends[b]), frames,
                static_cast<double>(frames) / secs);
  }

  // ---- frames/sec vs policy-chain length (MUSIC backend). The ACL
  // allows the whole workload and the rate limit is set far above it, so
  // every chain does the same decode/AoA work and differs only in
  // per-frame policy evaluations — the pipeline overhead itself.
  struct ChainCase {
    const char* label;
    std::vector<PolicyKind> policies;
  };
  const ChainCase chains[] = {
      {"2 (decode,spoof)", {PolicyKind::kSpoof}},
      {"3 (default)", default_policy_chain()},
      {"5 (acl+rate added)",
       {PolicyKind::kAcl, PolicyKind::kSpoof, PolicyKind::kFence,
        PolicyKind::kRateLimit}},
  };
  AccessControlList bench_acl;
  for (int id : {1, 2, 3, 4, 5, 8, 9, 10}) {
    bench_acl.allow(MacAddress::from_index(id));
  }
  std::printf("\n%-22s %10s %12s %10s\n", "policy chain", "frames",
              "frames/sec", "overhead");
  double chain_base_fps = 0.0;
  for (const auto& c : chains) {
    EngineConfig ecfg;
    ecfg.num_threads = backend_threads;
    ecfg.coordinator.fence_boundary = tb.building_outline();
    ecfg.coordinator.min_aps_for_fence = 2;
    ecfg.coordinator.policies = c.policies;
    ecfg.coordinator.acl = bench_acl;
    ecfg.coordinator.rate_limit.max_frames = 1u << 20;
    std::vector<AccessPoint*> ptrs;
    for (const auto& ap : ap_sets[0]) ptrs.push_back(ap.get());
    DeploymentEngine engine(ecfg, ptrs);
    std::size_t frames = 0;
    const double secs = run_once(engine, rounds, &frames);
    const double fps = static_cast<double>(frames) / secs;
    if (chain_base_fps == 0.0) chain_base_fps = fps;
    std::printf("%-22s %10zu %12.1f %9.2f%%\n", c.label, frames, fps,
                100.0 * (chain_base_fps / fps - 1.0));
  }
  return 0;
}
