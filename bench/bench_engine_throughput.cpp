// DeploymentEngine throughput: frames/sec of the batched multi-threaded
// frame-decision pipeline versus thread count, AoA backend, wideband
// subband count, and policy-chain length, on the Figure-4 office with a
// 4-AP deployment.
//
// The workload (channel-simulated uplink chunks) is generated once and
// replayed against a fresh engine per configuration, so the numbers
// isolate the receive pipeline itself: conditioning, detection, PHY
// decode, covariance, AoA estimation, grouping, and the fence/spoof
// decision — not the channel simulator.
//
// Usage: bench_engine_throughput [--smoke] [--pipelined]
//                                [--json <path>] [--min-fps <fps>]
//                                [packets-per-client] [max-threads]
//   --smoke      minimal workload (1 packet/client, 2 threads, short
//                sweeps) so CI can execute every section on each PR.
//   --pipelined  add the batch-vs-EngineSession sweep: the same
//                multi-round workload through the lock-step engine and
//                through a pipelined session, per thread count. The
//                session overlapping round N+1's scan/decode with round
//                N's decode/AoA/policy phase is the whole point — the
//                round-boundary bubble of the batch path is gone.
//   --json PATH  additionally write every sweep's numbers as a JSON
//                document — the machine-readable perf baseline
//                (BENCH_<pr>.json in the repo root is captured this way)
//                and the artifact the bench-smoke CI job uploads.
//   --min-fps X  perf-regression tripwire: exit non-zero when the thread
//                sweep's best frames/sec lands below X. CI passes a
//                generous floor derived from the checked-in baseline, so
//                a catastrophic scan-path regression fails the job while
//                ordinary CI noise never does.
//   --max-state-bytes B / --min-state-ratio R / --max-lookup-ns X
//                tracked-state tripwires at the million-MAC sweep point:
//                fail when compact bytes/client exceeds B, when the
//                baseline/compact ratio falls below R, or when the ACL
//                hit lookup exceeds X ns. CI derives the caps from the
//                checked-in baseline's tripwire block.
//   --require-scaling  scaling tripwire (needs --pipelined): the
//                pipelined frames/sec at the highest thread count that
//                actually fits the affinity mask must be >= the 1-thread
//                pipelined frames/sec. Oversubscribed sweep points
//                (threads > schedulable CPUs) are flagged in the JSON
//                and excluded — a 2-vCPU CI runner timeslicing 8 workers
//                measures the scheduler, not the dataplane.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#if defined(__linux__)
#include <malloc.h>
#include <sched.h>
#endif

#include "bench_common.hpp"
#include "sa/aoa/covariance.hpp"
#include "sa/common/compact/flat_lru_map.hpp"
#include "sa/common/compact/mac_prefilter.hpp"
#include "sa/common/compact/timer_wheel.hpp"
#include "sa/engine/deployment.hpp"
#include "sa/engine/session.hpp"
#include "sa/mac/acl.hpp"

using namespace sa;

namespace {

/// CPUs this process may actually be scheduled on — on a containerized
/// or cgroup-limited runner this is often smaller than
/// hardware_concurrency(), and it is the honest bound for judging
/// whether a thread-sweep point measured parallelism or timeslicing.
std::size_t affinity_cpu_count() {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) return static_cast<std::size_t>(n);
  }
#endif
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

double run_once(DeploymentEngine& engine,
                const std::vector<std::vector<CMat>>& rounds,
                std::size_t* frames_out) {
  std::size_t frames = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& round : rounds) {
    frames += engine.ingest(round).size();
  }
  frames += engine.flush().size();
  const auto t1 = std::chrono::steady_clock::now();
  *frames_out = frames;
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Push every round without waiting, then drain: the pipelined schedule.
double run_session_once(const SessionConfig& scfg,
                        const std::vector<AccessPoint*>& ptrs,
                        const std::vector<std::vector<CMat>>& rounds,
                        std::size_t* frames_out, SessionStats* stats_out) {
  std::size_t frames = 0;
  EngineSession session(scfg, ptrs,
                        [&](const EngineDecision&) { ++frames; });
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& round : rounds) {
    session.submit_round(round);
  }
  session.drain();
  const auto t1 = std::chrono::steady_clock::now();
  *frames_out = frames;
  *stats_out = session.session_stats();
  session.close();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Satellite note: the SpectralContext conditions covariances with the
/// in-place forward-backward / diagonal-loading variants. Time the
/// copying originals against them on an 8x8 so the win is visible in
/// every bench run.
void covariance_conditioning_note(std::size_t reps) {
  Rng rng(7);
  CMat r(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = i; j < 8; ++j) {
      const cd v = i == j ? cd{2.0 + 0.1 * static_cast<double>(i), 0.0}
                          : rng.complex_normal(1.0);
      r(i, j) = v;
      r(j, i) = std::conj(v);
    }
  }
  volatile double sink = 0.0;
  auto time_loop = [&](auto&& body) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < reps; ++i) body();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           static_cast<double>(reps);
  };
  // The pre-refactor hot path: the estimator copied the covariance into
  // its private working matrix, and forward_backward_average then
  // allocated and filled a *second* matrix from it — two full-matrix
  // materializations per estimate.
  const double fb_before = time_loop([&] {
    const CMat work = r;
    const CMat out = forward_backward_average(work);
    sink = sink + out(0, 0).real();
  });
  // The SpectralContext path: one single-pass average straight off the
  // shared raw covariance (the in-place variant serves the smoothed-
  // subarray branch, whose scratch matrix the context already owns).
  const double fb_after = time_loop([&] {
    const CMat out = forward_backward_average(r);
    sink = sink + out(0, 0).real();
  });
  const double dl = time_loop([&] {
    CMat work = r;  // the raw covariance must stay intact for reuse
    diagonal_load_inplace(work, 1e-3);
    sink = sink + work(0, 0).real();
  });
  std::printf(
      "\ncovariance conditioning (8x8, %zu reps):\n"
      "  forward-backward: %8.1f ns copy-then-average (pre-refactor) -> "
      "%8.1f ns single-pass\n"
      "  diagonal load:    %8.1f ns (copy + in-place load; the copy is the "
      "caller's —\n"
      "                    the raw covariance stays shareable in the "
      "SpectralContext)\n",
      reps, fb_before, fb_after, dl);
}

// ---- tracked-state sweep: per-client memory of the sa/common/compact
// substrate versus the node-based structures it replaced, at up to a
// million tracked MACs, plus MAC lookup latency through the prefilter.

/// Heap bytes attributed to the baseline replicas, counted as the real
/// malloc chunk (usable size + header) so node overhead and rounding —
/// the costs the flat substrate exists to avoid — are included.
std::size_t g_baseline_heap = 0;

template <class T>
struct CountingAlloc {
  using value_type = T;
  CountingAlloc() = default;
  template <class U>
  CountingAlloc(const CountingAlloc<U>&) {}  // NOLINT(google-explicit-*)
  T* allocate(std::size_t n) {
    void* p = ::operator new(n * sizeof(T));
#if defined(__linux__)
    g_baseline_heap += malloc_usable_size(p) + 8;
#else
    g_baseline_heap += n * sizeof(T);
#endif
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t n) {
#if defined(__linux__)
    g_baseline_heap -= malloc_usable_size(p) + 8;
#else
    g_baseline_heap -= n * sizeof(T);
#endif
    ::operator delete(p);
  }
  template <class U>
  bool operator==(const CountingAlloc<U>&) const {
    return true;
  }
};

struct StateRow {
  std::size_t clients = 0;
  double compact_bytes = 0.0;   // per tracked client
  double baseline_bytes = 0.0;  // per tracked client
  double ratio = 0.0;
  double lookup_hit_ns = 0.0;
  double lookup_miss_ns = 0.0;
};

/// The workload both sides see: `n` distinct MACs churn through a
/// deployment bounded at `n` tracked clients — every MAC allowed on the
/// ACL and admitted to the spoof tracker, and each sends one
/// 16-frame burst through the rate limiter, after which its window
/// expires (the paper's MAC-rotation flood, observed once the wave has
/// passed). Tracker payloads (SignatureTracker) are excluded on both
/// sides — they are identical — so the numbers isolate the per-client
/// bookkeeping the substrate replaces.
constexpr std::size_t kBurstFrames = 16;
constexpr std::size_t kWindowFrames = 4096;

StateRow measure_tracked_state(std::size_t n) {
  StateRow row;
  row.clients = n;

  // ---- compact side: the real ACL, plus replicas of the spoof
  // detector's and rate limiter's exact state machines (FlatLruMap +
  // MacPrefilter + TimerWheel, same types and admission logic).
  {
    AccessControlList acl;
    FlatLruMap<MacAddress, std::uint64_t> spoof_bk(n);
    MacPrefilter spoof_filter(n);
    struct RateState {
      std::uint32_t in_window = 0;
      std::uint32_t generation = 0;
    };
    struct Decrement {
      MacAddress mac;
      std::uint32_t generation = 0;
    };
    FlatLruMap<MacAddress, RateState> rate(n);
    TimerWheel<Decrement> wheel;
    std::uint32_t next_gen = 0;
    std::uint64_t now = 0;
    for (std::size_t c = 0; c < n; ++c) {
      const MacAddress mac =
          MacAddress::from_index(static_cast<std::uint32_t>(c));
      acl.allow(mac);
      const auto sp = spoof_bk.get_or_emplace(mac, std::uint64_t{0});
      if (sp.inserted) spoof_filter.insert(mac);
      for (std::size_t f = 0; f < kBurstFrames; ++f) {
        ++now;
        wheel.advance(now, [&](Decrement d, std::uint64_t) {
          RateState* st = rate.find(d.mac);
          if (st == nullptr || st->generation != d.generation) return;
          if (--st->in_window == 0) rate.erase(d.mac);
        });
        const auto r = rate.get_or_emplace(mac);
        if (r.inserted) r.value->generation = ++next_gen;
        ++r.value->in_window;
        wheel.schedule(now + kWindowFrames, {mac, r.value->generation});
      }
    }
    // The wave has passed: every window expires and the rate entries
    // erase themselves — the old structures have no equivalent event.
    now += kWindowFrames + 1;
    wheel.advance(now, [&](Decrement d, std::uint64_t) {
      RateState* st = rate.find(d.mac);
      if (st == nullptr || st->generation != d.generation) return;
      if (--st->in_window == 0) rate.erase(d.mac);
    });
    const std::size_t compact_total =
        acl.memory_bytes() + spoof_bk.memory_bytes() +
        spoof_filter.memory_bytes() + rate.memory_bytes() +
        wheel.memory_bytes();
    row.compact_bytes =
        static_cast<double>(compact_total) / static_cast<double>(n);

    // ---- lookup latency through the real ACL: a present MAC (filter
    // positive, exact probe) and an absent one (one-cache-line filter
    // negative). Strided order defeats the prefetcher.
    volatile std::size_t sink = 0;
    const std::size_t reps = std::min<std::size_t>(n, 1u << 20);
    auto time_ns = [&](std::uint32_t base) {
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < reps; ++i) {
        const std::uint32_t idx = static_cast<std::uint32_t>(
            (i * 2654435761ull) % n);
        sink = sink + (acl.is_allowed(MacAddress::from_index(base + idx)) ? 1u
                                                                          : 0u);
      }
      const auto t1 = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::nano>(t1 - t0).count() /
             static_cast<double>(reps);
    };
    row.lookup_hit_ns = time_ns(0);
    row.lookup_miss_ns = time_ns(static_cast<std::uint32_t>(n));
  }

  // ---- baseline side: the structures this PR removed, verbatim
  // shapes (unordered containers + std::list LRU + per-MAC admit
  // vector), run through the identical workload. Idle MACs only ever
  // pruned their admits on access, so the burst residue stays.
  {
    using LruList = std::list<MacAddress, CountingAlloc<MacAddress>>;
    using LruIt = LruList::iterator;
    struct SpoofEntry {
      LruIt lru;
    };
    struct MacState {
      std::vector<std::size_t, CountingAlloc<std::size_t>> recent;
      LruIt lru;
    };
    g_baseline_heap = 0;
    std::unordered_set<MacAddress, std::hash<MacAddress>,
                       std::equal_to<MacAddress>, CountingAlloc<MacAddress>>
        acl;
    std::unordered_map<MacAddress, SpoofEntry, std::hash<MacAddress>,
                       std::equal_to<MacAddress>,
                       CountingAlloc<std::pair<const MacAddress, SpoofEntry>>>
        spoof_bk;
    LruList spoof_lru;
    std::unordered_map<MacAddress, MacState, std::hash<MacAddress>,
                       std::equal_to<MacAddress>,
                       CountingAlloc<std::pair<const MacAddress, MacState>>>
        rate;
    LruList rate_lru;
    std::size_t now = 0;
    for (std::size_t c = 0; c < n; ++c) {
      const MacAddress mac =
          MacAddress::from_index(static_cast<std::uint32_t>(c));
      acl.insert(mac);
      spoof_lru.push_front(mac);
      spoof_bk.emplace(mac, SpoofEntry{spoof_lru.begin()});
      auto& st = rate[mac];
      if (st.recent.empty()) {
        rate_lru.push_front(mac);
        st.lru = rate_lru.begin();
      }
      for (std::size_t f = 0; f < kBurstFrames; ++f) {
        ++now;
        while (!st.recent.empty() && st.recent.front() + kWindowFrames <= now) {
          st.recent.erase(st.recent.begin());
        }
        st.recent.push_back(now);
      }
    }
    row.baseline_bytes =
        static_cast<double>(g_baseline_heap) / static_cast<double>(n);
  }
  row.ratio = row.compact_bytes > 0.0 ? row.baseline_bytes / row.compact_bytes
                                      : 0.0;
  return row;
}

// ---- JSON result collection (--json): every sweep appends its rows
// here and write_json serializes them. No external dependency — the
// schema is flat enough for fprintf.
struct SweepRow {
  std::string label;
  std::size_t threads = 0;
  std::size_t frames = 0;
  double fps = 0.0;
  double fps2 = 0.0;        // pipelined fps in the batch-vs-session sweep
  std::size_t extra = 0;    // overlap / subband count
  SessionStats session;     // dataplane counters (pipelined sweep only)
};

struct BenchResults {
  bool smoke = false;
  bool pipelined = false;
  int packets = 0;
  std::size_t num_aps = 0;
  std::size_t max_threads = 0;
  std::size_t affinity_cpus = 1;
  std::vector<SweepRow> threads_sweep;
  std::vector<SweepRow> pipelined_sweep;
  std::vector<SweepRow> estimator_sweep;
  std::vector<SweepRow> subband_sweep;
  std::vector<SweepRow> chain_sweep;
  std::vector<StateRow> state_sweep;
  double scan_sec = 0.0;
  double decode_sec = 0.0;
  std::size_t split_frames = 0;
};

void write_json(const BenchResults& r, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"engine_throughput\",\n"
               "  \"config\": {\"smoke\": %s, \"pipelined\": %s, "
               "\"packets_per_client\": %d, \"aps\": %zu, "
               "\"max_threads\": %zu, \"hardware_concurrency\": %u, "
               "\"affinity_cpus\": %zu},\n",
               r.smoke ? "true" : "false", r.pipelined ? "true" : "false",
               r.packets, r.num_aps, r.max_threads,
               std::thread::hardware_concurrency(), r.affinity_cpus);
  const auto oversub = [&](std::size_t threads) {
    return threads > r.affinity_cpus ? "true" : "false";
  };
  auto rows = [&](const char* name, const std::vector<SweepRow>& v,
                  auto&& one_row) {
    std::fprintf(f, "  \"%s\": [", name);
    for (std::size_t i = 0; i < v.size(); ++i) {
      std::fprintf(f, "%s\n    ", i == 0 ? "" : ",");
      one_row(v[i]);
    }
    // Always followed by the scan_decode_split/tripwire keys, so the
    // trailing comma is unconditional.
    std::fprintf(f, "\n  ],\n");
  };
  rows("threads_sweep", r.threads_sweep, [&](const SweepRow& s) {
    std::fprintf(f,
                 "{\"threads\": %zu, \"frames\": %zu, \"fps\": %.2f, "
                 "\"oversubscribed\": %s}",
                 s.threads, s.frames, s.fps, oversub(s.threads));
  });
  rows("pipelined_sweep", r.pipelined_sweep, [&](const SweepRow& s) {
    std::fprintf(f,
                 "{\"threads\": %zu, \"batch_fps\": %.2f, "
                 "\"pipelined_fps\": %.2f, \"max_overlapped_rounds\": %zu, "
                 "\"oversubscribed\": %s, \"worker_bursts\": %zu, "
                 "\"worker_jobs\": %zu, \"spin_polls\": %zu, \"parks\": %zu}",
                 s.threads, s.fps, s.fps2, s.extra, oversub(s.threads),
                 s.session.worker_bursts, s.session.worker_jobs,
                 s.session.spin_polls, s.session.parks);
  });
  rows("estimator_sweep", r.estimator_sweep, [&](const SweepRow& s) {
    std::fprintf(f, "{\"estimator\": \"%s\", \"frames\": %zu, \"fps\": %.2f}",
                 s.label.c_str(), s.frames, s.fps);
  });
  rows("subband_sweep", r.subband_sweep, [&](const SweepRow& s) {
    std::fprintf(f, "{\"subbands\": %zu, \"frames\": %zu, \"fps\": %.2f}",
                 s.extra, s.frames, s.fps);
  });
  rows("policy_chain_sweep", r.chain_sweep, [&](const SweepRow& s) {
    std::fprintf(f, "{\"chain\": \"%s\", \"frames\": %zu, \"fps\": %.2f}",
                 s.label.c_str(), s.frames, s.fps);
  });
  std::fprintf(f, "  \"tracked_state_sweep\": [");
  for (std::size_t i = 0; i < r.state_sweep.size(); ++i) {
    const StateRow& s = r.state_sweep[i];
    std::fprintf(f,
                 "%s\n    {\"clients\": %zu, "
                 "\"bytes_per_tracked_client\": %.1f, "
                 "\"baseline_bytes_per_client\": %.1f, \"ratio\": %.2f, "
                 "\"mac_lookup_hit_ns\": %.1f, "
                 "\"mac_lookup_prefilter_miss_ns\": %.1f}",
                 i == 0 ? "" : ",", s.clients, s.compact_bytes,
                 s.baseline_bytes, s.ratio, s.lookup_hit_ns, s.lookup_miss_ns);
  }
  std::fprintf(f, "\n  ],\n");
  // Headline metrics from the largest (million-MAC) sweep point.
  const StateRow big =
      r.state_sweep.empty() ? StateRow{} : r.state_sweep.back();
  std::fprintf(f,
               "  \"bytes_per_tracked_client\": %.1f,\n"
               "  \"mac_lookup_ns\": {\"hit\": %.1f, \"prefilter_miss\": "
               "%.1f},\n",
               big.compact_bytes, big.lookup_hit_ns, big.lookup_miss_ns);
  const double t1_fps =
      r.threads_sweep.empty() ? 0.0 : r.threads_sweep.front().fps;
  std::fprintf(f,
               "  \"scan_decode_split\": {\"scan_sec\": %.4f, "
               "\"decode_sec\": %.4f, \"frames\": %zu},\n"
               // Generous floors for the CI tripwires: 5%% of this run's
               // single-thread frames/sec (CI runners are slower and run
               // the smaller smoke workload, but a catastrophic hot-path
               // regression still lands far below), 2x this run's
               // bytes/client and 10x its hit latency, and the
               // acceptance floor of 4x on the state-size ratio.
               "  \"tripwire\": {\"min_smoke_fps\": %.1f, "
               "\"max_bytes_per_tracked_client\": %.1f, "
               "\"min_state_ratio\": 4.0, \"max_lookup_ns\": %.1f}\n"
               "}\n",
               r.scan_sec, r.decode_sec, r.split_frames, 0.05 * t1_fps,
               2.0 * big.compact_bytes, 10.0 * big.lookup_hit_ns);
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool pipelined = false;
  bool require_scaling = false;
  const char* json_path = nullptr;
  double min_fps = 0.0;
  double max_state_bytes = 0.0;
  double min_state_ratio = 0.0;
  double max_lookup_ns = 0.0;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--pipelined") == 0) {
      pipelined = true;
    } else if (std::strcmp(argv[i], "--require-scaling") == 0) {
      require_scaling = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-fps") == 0 && i + 1 < argc) {
      min_fps = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-state-bytes") == 0 &&
               i + 1 < argc) {
      max_state_bytes = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-state-ratio") == 0 &&
               i + 1 < argc) {
      min_state_ratio = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-lookup-ns") == 0 && i + 1 < argc) {
      max_lookup_ns = std::atof(argv[++i]);
    } else {
      positional.push_back(argv[i]);
    }
  }
  const int packets =
      positional.size() > 0 ? std::atoi(positional[0]) : (smoke ? 1 : 6);
  const std::size_t max_threads =
      positional.size() > 1 ? std::strtoul(positional[1], nullptr, 10)
                            : (smoke ? 2 : 8);
  const std::size_t num_aps = 4;

  BenchResults results;
  results.smoke = smoke;
  results.pipelined = pipelined;
  results.packets = packets;
  results.num_aps = num_aps;
  results.max_threads = max_threads;
  results.affinity_cpus = affinity_cpu_count();

  sa::bench::print_header(
      "DeploymentEngine throughput: frames/sec vs threads, AoA backend, "
      "subbands",
      smoke ? "smoke mode: minimal workload, every section exercised"
            : "engine scaling on the Figure-4 office (4 APs)");

  covariance_conditioning_note(smoke ? 2000 : 20000);

  const auto tb = OfficeTestbed::figure4();

  // One AP set per backend, drawn from identical RNG streams so chain
  // impairments and calibration match across backends.
  const AoaBackend backends[] = {AoaBackend::kMusic, AoaBackend::kCapon,
                                 AoaBackend::kBartlett, AoaBackend::kRootMusic,
                                 AoaBackend::kEsprit};
  std::vector<std::vector<std::unique_ptr<AccessPoint>>> ap_sets;
  for (AoaBackend backend : backends) {
    Rng rng(42);
    std::vector<std::unique_ptr<AccessPoint>> aps;
    for (const Vec2& spot : tb.ap_mounting_points(num_aps)) {
      AccessPointConfig cfg;
      cfg.position = spot;
      cfg.estimator = backend;
      aps.push_back(std::make_unique<AccessPoint>(cfg, rng));
    }
    ap_sets.push_back(std::move(aps));
  }

  // Pre-generate the workload once (placements are backend-independent).
  std::printf("\ngenerating workload: %d packets x 8 ring clients...\n",
              packets);
  std::vector<std::vector<CMat>> rounds;
  {
    Rng rng(42);
    UplinkConfig ucfg;
    ucfg.channel.noise_power = sa::bench::kNoisePower;
    UplinkSimulation sim(tb, ucfg, rng);
    for (const auto& ap : ap_sets[0]) sim.add_ap(ap->placement());
    std::uint16_t seq = 0;
    const int ring_clients[] = {1, 2, 3, 4, 5, 8, 9, 10};
    for (int p = 0; p < packets; ++p) {
      for (int id : ring_clients) {
        const Frame f = Frame::data(MacAddress::from_index(0xFF),
                                    MacAddress::from_index(id), Bytes{1, 2, 3},
                                    seq++);
        const CVec w =
            PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
        rounds.push_back(sim.transmit(tb.client(id).position, w, nullptr));
        sim.advance(0.25);
      }
    }
  }

  auto make_engine = [&](std::size_t set, std::size_t threads) {
    EngineConfig ecfg;
    ecfg.num_threads = threads;
    ecfg.coordinator.fence_boundary = tb.building_outline();
    ecfg.coordinator.min_aps_for_fence = 2;
    std::vector<AccessPoint*> ptrs;
    for (const auto& ap : ap_sets[set]) ptrs.push_back(ap.get());
    return std::make_unique<DeploymentEngine>(ecfg, ptrs);
  };

  // ---- frames/sec vs thread count (MUSIC backend).
  std::printf("\n%-10s %10s %12s %10s\n", "threads", "frames", "frames/sec",
              "speedup");
  double base_fps = 0.0;
  for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
    auto engine = make_engine(0, threads);
    std::size_t frames = 0;
    const double secs = run_once(*engine, rounds, &frames);
    const double fps = static_cast<double>(frames) / secs;
    if (threads == 1) base_fps = fps;
    std::printf("%-10zu %10zu %12.1f %9.2fx\n", threads, frames, fps,
                fps / base_fps);
    results.threads_sweep.push_back({"", threads, frames, fps, 0.0, 0, {}});
    if (threads > results.affinity_cpus) {
      std::printf("  (oversubscribed: %zu threads on %zu schedulable CPUs)\n",
                  threads, results.affinity_cpus);
    }
  }
  std::printf("(hardware concurrency: %u, schedulable CPUs: %zu)\n",
              std::thread::hardware_concurrency(), results.affinity_cpus);

  // ---- scan vs decode split (single-threaded two-phase replay over the
  // same rounds): how much of the ingest budget the streaming scan path
  // takes versus the per-frame demodulate/commit work.
  {
    std::vector<std::unique_ptr<StreamingReceiver>> rxs;
    for (const auto& ap : ap_sets[0]) {
      rxs.push_back(std::make_unique<StreamingReceiver>(*ap, StreamingConfig{}));
    }
    for (const auto& round : rounds) {
      for (std::size_t i = 0; i < rxs.size(); ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        auto scan = rxs[i]->scan(&round[i]);
        results.scan_sec +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        const auto t1 = std::chrono::steady_clock::now();
        std::vector<std::optional<ReceivedPacket>> processed;
        processed.reserve(scan.candidates.size());
        for (const auto& cand : scan.candidates) {
          processed.push_back(
              ap_sets[0][i]->demodulate(*scan.conditioned, cand.detection));
        }
        results.split_frames +=
            rxs[i]->commit(scan, std::move(processed), false).size();
        results.decode_sec +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
                .count();
      }
    }
    std::printf(
        "\nscan/decode split (1 thread, two-phase replay): scan %.3fs, "
        "decode+commit %.3fs (%.1f%% scan), %zu frames\n",
        results.scan_sec, results.decode_sec,
        100.0 * results.scan_sec / (results.scan_sec + results.decode_sec),
        results.split_frames);
  }

  // ---- batch lock-step vs pipelined EngineSession (MUSIC backend).
  // Same engines, same workload; the only difference is that the batch
  // path waits every round out while the session lets round N+1's
  // scan/decode overlap round N's decode/AoA/policy phase.
  if (pipelined) {
    std::printf("\n%-10s %12s %14s %9s %9s\n", "threads", "batch f/s",
                "pipelined f/s", "speedup", "overlap");
    for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
      auto engine = make_engine(0, threads);
      std::size_t batch_frames = 0;
      const double batch_secs = run_once(*engine, rounds, &batch_frames);
      engine.reset();

      SessionConfig scfg;
      scfg.engine.num_threads = threads;
      scfg.engine.coordinator.fence_boundary = tb.building_outline();
      scfg.engine.coordinator.min_aps_for_fence = 2;
      std::vector<AccessPoint*> ptrs;
      for (const auto& ap : ap_sets[0]) ptrs.push_back(ap.get());
      std::size_t session_frames = 0;
      SessionStats stats;
      const double session_secs =
          run_session_once(scfg, ptrs, rounds, &session_frames, &stats);

      const double batch_fps = static_cast<double>(batch_frames) / batch_secs;
      const double session_fps =
          static_cast<double>(session_frames) / session_secs;
      std::printf("%-10zu %12.1f %14.1f %8.2fx %7zu\n", threads, batch_fps,
                  session_fps, session_fps / batch_fps,
                  stats.max_overlapped_rounds);
      std::printf(
          "           (bursts %zu, jobs %zu, avg burst %.1f, spin polls %zu, "
          "parks %zu)\n",
          stats.worker_bursts, stats.worker_jobs,
          stats.worker_bursts > 0
              ? static_cast<double>(stats.worker_jobs) /
                    static_cast<double>(stats.worker_bursts)
              : 0.0,
          stats.spin_polls, stats.parks);
      results.pipelined_sweep.push_back({"", threads, session_frames,
                                         batch_fps, session_fps,
                                         stats.max_overlapped_rounds, stats});
      if (session_frames != batch_frames) {
        std::printf("  !! decision count diverged: batch %zu vs session %zu\n",
                    batch_frames, session_frames);
        return 1;
      }
    }
    std::printf("(overlap = max distinct rounds with tasks in the pool at "
                "once; >= 2 means the round boundary was pipelined away)\n");
  }

  // ---- frames/sec vs AoA backend (4 threads).
  const std::size_t backend_threads = std::min<std::size_t>(4, max_threads);
  std::printf("\n%-12s %10s %12s\n", "estimator", "frames", "frames/sec");
  for (std::size_t b = 0; b < ap_sets.size(); ++b) {
    auto engine = make_engine(b, backend_threads);
    std::size_t frames = 0;
    const double secs = run_once(*engine, rounds, &frames);
    std::printf("%-12s %10zu %12.1f\n", to_string(backends[b]), frames,
                static_cast<double>(frames) / secs);
    results.estimator_sweep.push_back({std::string(to_string(backends[b])), 0,
                                       frames,
                                       static_cast<double>(frames) / secs,
                                       0.0, 0, {}});
  }

  // ---- frames/sec vs wideband subband count (MUSIC backend). Per-band
  // covariances are smaller-snapshot but each adds an EVD + scan; the
  // per-(frame, band) fan-out keeps the pool busy inside a single frame.
  {
    const std::vector<std::size_t> band_counts =
        smoke ? std::vector<std::size_t>{1, 4}
              : std::vector<std::size_t>{1, 2, 4, 8};
    std::printf("\n%-10s %10s %12s %10s\n", "subbands", "frames", "frames/sec",
                "vs K=1");
    double k1_fps = 0.0;
    for (std::size_t k : band_counts) {
      Rng rng(42);
      std::vector<std::unique_ptr<AccessPoint>> aps;
      std::vector<AccessPoint*> ptrs;
      for (const Vec2& spot : tb.ap_mounting_points(num_aps)) {
        AccessPointConfig cfg;
        cfg.position = spot;
        cfg.subbands = k;
        aps.push_back(std::make_unique<AccessPoint>(cfg, rng));
        ptrs.push_back(aps.back().get());
      }
      EngineConfig ecfg;
      ecfg.num_threads = backend_threads;
      ecfg.coordinator.fence_boundary = tb.building_outline();
      ecfg.coordinator.min_aps_for_fence = 2;
      DeploymentEngine engine(ecfg, ptrs);
      std::size_t frames = 0;
      const double secs = run_once(engine, rounds, &frames);
      const double fps = static_cast<double>(frames) / secs;
      if (k == 1) k1_fps = fps;
      std::printf("%-10zu %10zu %12.1f %9.2fx\n", k, frames, fps,
                  k1_fps > 0.0 ? fps / k1_fps : 1.0);
      results.subband_sweep.push_back({"", 0, frames, fps, 0.0, k, {}});
    }
  }

  // ---- frames/sec vs policy-chain length (MUSIC backend). The ACL
  // allows the whole workload and the rate limit is set far above it, so
  // every chain does the same decode/AoA work and differs only in
  // per-frame policy evaluations — the pipeline overhead itself.
  struct ChainCase {
    const char* label;
    std::vector<PolicyKind> policies;
  };
  const ChainCase chains[] = {
      {"2 (decode,spoof)", {PolicyKind::kSpoof}},
      {"3 (default)", default_policy_chain()},
      {"5 (acl+rate added)",
       {PolicyKind::kAcl, PolicyKind::kSpoof, PolicyKind::kFence,
        PolicyKind::kRateLimit}},
  };
  AccessControlList bench_acl;
  for (int id : {1, 2, 3, 4, 5, 8, 9, 10}) {
    bench_acl.allow(MacAddress::from_index(id));
  }
  std::printf("\n%-22s %10s %12s %10s\n", "policy chain", "frames",
              "frames/sec", "overhead");
  double chain_base_fps = 0.0;
  for (const auto& c : chains) {
    EngineConfig ecfg;
    ecfg.num_threads = backend_threads;
    ecfg.coordinator.fence_boundary = tb.building_outline();
    ecfg.coordinator.min_aps_for_fence = 2;
    ecfg.coordinator.policies = c.policies;
    ecfg.coordinator.acl = bench_acl;
    ecfg.coordinator.rate_limit.max_frames = 1u << 20;
    std::vector<AccessPoint*> ptrs;
    for (const auto& ap : ap_sets[0]) ptrs.push_back(ap.get());
    DeploymentEngine engine(ecfg, ptrs);
    std::size_t frames = 0;
    const double secs = run_once(engine, rounds, &frames);
    const double fps = static_cast<double>(frames) / secs;
    if (chain_base_fps == 0.0) chain_base_fps = fps;
    std::printf("%-22s %10zu %12.1f %9.2f%%\n", c.label, frames, fps,
                100.0 * (chain_base_fps / fps - 1.0));
    results.chain_sweep.push_back({c.label, 0, frames, fps, 0.0, 0, {}});
  }

  // ---- tracked-state sweep: compact substrate vs the node-based
  // structures it replaced, per tracked client, up to a million MACs.
  {
    const std::vector<std::size_t> counts =
        smoke ? std::vector<std::size_t>{1000000}
              : std::vector<std::size_t>{100000, 1000000};
    std::printf(
        "\ntracked-state sweep (ACL + spoof bookkeeping + rate window; "
        "%zu-frame bursts, window %zu, measured after the wave):\n"
        "%-10s %14s %14s %7s %10s %12s\n",
        kBurstFrames, kWindowFrames, "clients", "compact B/cl",
        "baseline B/cl", "ratio", "hit ns", "filter-miss");
    for (const std::size_t n : counts) {
      const StateRow row = measure_tracked_state(n);
      std::printf("%-10zu %14.1f %14.1f %6.2fx %10.1f %12.1f\n", row.clients,
                  row.compact_bytes, row.baseline_bytes, row.ratio,
                  row.lookup_hit_ns, row.lookup_miss_ns);
      results.state_sweep.push_back(row);
    }
  }

  if (json_path != nullptr) write_json(results, json_path);

  // Tracked-state tripwires (floors come from the checked-in baseline
  // via CI): per-client bytes, compaction ratio, and lookup latency at
  // the largest sweep point.
  if (!results.state_sweep.empty() &&
      (max_state_bytes > 0.0 || min_state_ratio > 0.0 ||
       max_lookup_ns > 0.0)) {
    const StateRow& big = results.state_sweep.back();
    if (max_state_bytes > 0.0 && big.compact_bytes > max_state_bytes) {
      std::printf("\n!! state tripwire: %.1f bytes/client above cap %.1f\n",
                  big.compact_bytes, max_state_bytes);
      return 1;
    }
    if (min_state_ratio > 0.0 && big.ratio < min_state_ratio) {
      std::printf("\n!! state tripwire: compaction ratio %.2fx below %.2fx\n",
                  big.ratio, min_state_ratio);
      return 1;
    }
    if (max_lookup_ns > 0.0 && big.lookup_hit_ns > max_lookup_ns) {
      std::printf("\n!! state tripwire: hit lookup %.1f ns above cap %.1f\n",
                  big.lookup_hit_ns, max_lookup_ns);
      return 1;
    }
    std::printf("\nstate tripwire ok: %.1f B/client, %.2fx vs baseline, "
                "%.1f ns hit / %.1f ns filter-miss\n",
                big.compact_bytes, big.ratio, big.lookup_hit_ns,
                big.lookup_miss_ns);
  }

  if (min_fps > 0.0) {
    double best = 0.0;
    for (const auto& row : results.threads_sweep) best = std::max(best, row.fps);
    if (best < min_fps) {
      std::printf("\n!! perf tripwire: best frames/sec %.1f below floor %.1f\n",
                  best, min_fps);
      return 1;
    }
    std::printf("\nperf tripwire ok: best frames/sec %.1f >= floor %.1f\n",
                best, min_fps);
  }

  // Scaling tripwire: among the pipelined sweep points that actually fit
  // the affinity mask, the widest one must not be slower than 1 thread.
  // Oversubscribed points are excluded — on a 1- or 2-CPU runner the
  // wider configurations measure timeslicing, not the dataplane.
  if (require_scaling) {
    if (results.pipelined_sweep.empty()) {
      std::printf("\n!! --require-scaling needs --pipelined\n");
      return 1;
    }
    const SweepRow* base = nullptr;
    const SweepRow* widest = nullptr;
    for (const auto& row : results.pipelined_sweep) {
      if (row.threads > results.affinity_cpus && row.threads != 1) continue;
      if (row.threads == 1) base = &row;
      if (widest == nullptr || row.threads > widest->threads) widest = &row;
    }
    if (base == nullptr || widest == nullptr) {
      std::printf("\n!! scaling tripwire: no in-core sweep points\n");
      return 1;
    }
    if (widest->fps2 < base->fps2) {
      std::printf(
          "\n!! scaling tripwire: pipelined %.1f f/s at %zu threads fell "
          "below the 1-thread %.1f f/s\n",
          widest->fps2, widest->threads, base->fps2);
      return 1;
    }
    std::printf(
        "\nscaling tripwire ok: pipelined %.1f f/s at %zu threads >= "
        "1-thread %.1f f/s (%zu schedulable CPUs)\n",
        widest->fps2, widest->threads, base->fps2, results.affinity_cpus);
  }
  return 0;
}
