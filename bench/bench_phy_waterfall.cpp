// Supplementary PHY bench: packet-error-rate waterfall versus SNR for
// representative 802.11a rates. Not a paper figure — the PHY is our
// substrate — but any PHY implementation ships this curve, and it
// validates that the substrate behaves like a real OFDM receiver:
// higher-order constellations need proportionally more SNR, each curve
// falls off a cliff over a few dB.
#include "bench_common.hpp"

#include "sa/dsp/noise.hpp"
#include "sa/dsp/units.hpp"

using namespace sa;
using namespace sa::bench;

int main() {
  print_header("PHY packet-error-rate waterfall (substrate validation)",
               "supporting the Sec. 3 capture pipeline");

  constexpr int kTrials = 40;
  constexpr std::size_t kPsduLen = 100;
  const PhyRate rates[] = {PhyRate::k6Mbps, PhyRate::k12Mbps, PhyRate::k24Mbps,
                           PhyRate::k54Mbps};
  const char* names[] = {"6 Mbps (BPSK 1/2)", "12 Mbps (QPSK 1/2)",
                         "24 Mbps (16QAM 1/2)", "54 Mbps (64QAM 3/4)"};
  const double snrs[] = {4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 28.0};

  std::printf("%-20s", "rate \\ SNR");
  for (double s : snrs) std::printf(" %6.0fdB", s);
  std::printf("\n");

  Rng rng(31337);
  for (std::size_t r = 0; r < std::size(rates); ++r) {
    std::printf("%-20s", names[r]);
    for (double snr : snrs) {
      int errors = 0;
      for (int t = 0; t < kTrials; ++t) {
        Bytes psdu(kPsduLen);
        for (auto& b : psdu) {
          b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        }
        CVec wave = PacketTransmitter(rates[r]).transmit(psdu);
        add_awgn_snr(wave, snr, rng);
        const auto decoded = PacketReceiver().decode(wave);
        if (!decoded || decoded->psdu != psdu) ++errors;
      }
      std::printf(" %7.2f", static_cast<double>(errors) / kTrials);
    }
    std::printf("\n");
  }

  std::printf("\nExpected shape: each rate's PER collapses from 1 to 0 over\n"
              "a few dB, with the cliff moving right as the constellation\n"
              "density and code rate rise (6 < 12 < 24 < 54 Mbps).\n");
  return 0;
}
