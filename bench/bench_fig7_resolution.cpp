// Figure 7: effect of the number of antennas on the AoA pseudospectrum,
// for the pillar-blocked, multipath-rich client 12 with a linear array.
// Exactly like the paper, the SAME received packet is processed with 2,
// 4, 6 and 8 antennas (we slice antenna rows out of one capture).
//
// Paper's series to reproduce: 2 antennas -> a single broad peak;
// 4 antennas -> closer to the true bearing but unable to split paths
// within ~45 degrees; 6 antennas -> direct and reflection separately
// visible; 8 antennas -> best resolution and accuracy.
#include "bench_common.hpp"

#include "sa/aoa/covariance.hpp"
#include "sa/aoa/estimators.hpp"

using namespace sa;
using namespace sa::bench;

namespace {

/// 61-column ASCII rendering of a spectrum in dB (0 at the top row,
/// kFloor at the bottom), -90..90 degrees.
void print_ascii_spectrum(const Pseudospectrum& ps) {
  constexpr int kRows = 10;
  constexpr double kFloorDb = -20.0;
  const double peak = ps.max_value();
  for (int row = 0; row < kRows; ++row) {
    const double threshold = kFloorDb * static_cast<double>(row + 1) / kRows;
    std::printf("  %6.1f |", threshold);
    for (int col = 0; col <= 60; ++col) {
      const double angle = -90.0 + 3.0 * col;
      const double v_db =
          10.0 * std::log10(std::max(ps.value_at(angle) / peak, 1e-9));
      std::printf("%c", v_db >= threshold ? '#' : ' ');
    }
    std::printf("\n");
  }
  std::printf("         +");
  for (int col = 0; col <= 60; ++col) std::printf("-");
  std::printf("\n          -90       -60       -30        0        30        60        90\n");
}

}  // namespace

int main() {
  print_header(
      "Figure 7 — pseudospectrum resolution vs antenna count (client 12)",
      "Fig. 7 and Sec. 3.3");

  Rig rig(1234);
  const auto& client = rig.tb.client(12);
  const auto full_geom = ArrayGeometry::uniform_linear(8, 0.0613);
  const ArrayPlacement placement{full_geom, rig.tb.ap_position(), 0.0};
  rig.sim->add_ap(placement);
  const double lambda = wavelength(2.4e9);
  const double truth_world = rig.tb.ground_truth_bearing_deg(12);
  const double truth_array = world_to_array_bearing(full_geom, truth_world, 0.0);

  // One packet, captured on all 8 chains (channel-ideal: this bench
  // isolates array resolution, so chains are taken as calibrated).
  const CVec wave = rig.make_wave(client.id);
  const CMat rx8 = rig.sim->transmit(client.position, wave)[0];

  std::printf("\ntrue array bearing of the direct path: %.1f deg\n",
              truth_array);

  for (std::size_t n_ant : {2u, 4u, 6u, 8u}) {
    // Same packet, first n antennas.
    CMat sub(n_ant, rx8.cols());
    for (std::size_t m = 0; m < n_ant; ++m) {
      for (std::size_t t = 0; t < rx8.cols(); ++t) sub(m, t) = rx8(m, t);
    }
    const auto geom = ArrayGeometry::uniform_linear(n_ant, 0.0613);
    const CMat r = sample_covariance(sub);
    // Cap the model order at n/2: with coherent indoor multipath, MDL
    // over-fits and a too-thin noise subspace produces spurious endfire
    // needles on small linear arrays.
    MusicConfig mcfg;
    mcfg.num_sources = std::max<std::size_t>(n_ant / 2, 1);
    const MusicEstimator music(mcfg);
    const auto res = music.estimate(r, geom, lambda);
    auto sig = AoaSignature::from_spectrum(res.spectrum, {});
    const double robust = power_weighted_direct_bearing_deg(
        sig.spectrum(), sig.peaks(), r, geom, lambda);

    std::printf("\n-- %zu antennas\n", n_ant);
    print_ascii_spectrum(sig.spectrum());
    std::printf("   peaks (>1 dB prominence): ");
    for (const auto& p : sig.peaks()) {
      std::printf("%.0f deg (%.1f dB)  ", p.angle_deg, p.value_db);
    }
    std::printf("\n   #peaks=%zu  direct-path estimate=%.1f deg  "
                "|err|=%.1f deg\n",
                sig.peaks().size(), robust, std::abs(robust - truth_array));
  }

  std::printf("\nExpected shape: the peak count grows with the antenna\n"
              "count and the direct-path error shrinks; with 6-8 antennas\n"
              "the direct path and reflections are separately visible,\n"
              "making the signature more specific (Sec. 3.3).\n");
  return 0;
}
