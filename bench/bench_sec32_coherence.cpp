// Section 3.2 context: multi-antenna channel coherence times. The paper
// cites measured 4x4 MIMO channels at 2 GHz with median coherence times
// of ~25 ms for a walking-speed receiver and ~125 ms stationary, and
// argues pseudospectra are stable minute-to-minute for tracking.
//
// This bench (a) validates the fading generator against those two
// coherence targets, and (b) measures packet-to-packet signature match
// as a function of inter-packet lag.
#include "bench_common.hpp"

#include "sa/channel/fading.hpp"
#include "sa/channel/raytracer.hpp"
#include "sa/signature/metrics.hpp"

using namespace sa;
using namespace sa::bench;

int main() {
  print_header("Sec. 3.2 — channel coherence time and signature stability",
               "the 25 ms / 125 ms coherence discussion");

  // --- (a) fading generator coherence check.
  const auto tb = OfficeTestbed::figure4();
  RayTracer tracer;
  const auto paths =
      tracer.trace(tb.client(1).position, tb.ap_position(), tb.floorplan());

  std::printf("%-24s %14s %14s\n", "profile", "target tau", "measured t0.5");
  for (const auto& [name, tau] :
       {std::pair<const char*, double>{"walking (paper ~25ms)", 0.025},
        std::pair<const char*, double>{"stationary (paper ~125ms)", 0.125}}) {
    Rng rng(99);
    FadingConfig cfg;
    cfg.fast_coherence_s = tau;
    cfg.reflection_fast_sigma = 1.0;
    cfg.reflection_slow_sigma = 0.0;
    PathFading fading(paths, cfg, rng);
    std::vector<cd> series;
    const double dt = tau / 25.0;
    for (int i = 0; i < 40000; ++i) {
      fading.advance(dt);
      series.push_back(fading.factor(1));  // a reflection path
    }
    const double measured = empirical_coherence_time(series, dt);
    // An OU process crosses autocorrelation 0.5 at tau * ln 2.
    std::printf("%-24s %11.1f ms %11.1f ms   (OU 0.5-crossing: %.1f ms)\n",
                name, tau * 1e3, measured * 1e3, tau * std::log(2.0) * 1e3);
  }

  // --- (b) signature match vs lag, packet level.
  std::printf("\nsignature match score vs inter-packet lag (client 5):\n");
  std::printf("%-10s %12s\n", "lag", "match-vs-t0");
  Rig rig(17);
  rig.add_ap(rig.tb.ap_position());
  const auto& client = rig.tb.client(5);

  const auto first_rx = rig.uplink(client.position, client.id);
  if (first_rx[0].empty()) {
    std::printf("initial packet missed; aborting\n");
    return 1;
  }
  const AoaSignature first = first_rx[0][0].signature;
  double elapsed = 0.0;
  for (const auto& [name, lag] :
       {std::pair<const char*, double>{"10ms", 0.01},
        {"100ms", 0.1},
        {"1s", 1.0},
        {"10s", 10.0},
        {"100s", 100.0},
        {"1h", 3600.0}}) {
    rig.sim->advance(lag - elapsed);
    elapsed = lag;
    const auto rx = rig.uplink(client.position, client.id);
    if (rx[0].empty()) {
      std::printf("%-10s %12s\n", name, "miss");
      continue;
    }
    std::printf("%-10s %12.3f\n", name, match_score(rx[0][0].signature, first));
  }
  std::printf("\nExpected shape: match stays near 1.0 at sub-second lags and\n"
              "remains high enough for tracking at minute-scale lags.\n");
  return 0;
}
