// Tests for the extension modules: polynomial roots, Root-MUSIC,
// downlink beamforming / null-steering, and the multi-AP coordinator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sa/aoa/covariance.hpp"
#include "sa/aoa/rootmusic.hpp"
#include "sa/channel/raytracer.hpp"
#include "sa/channel/simulator.hpp"
#include "sa/common/angles.hpp"
#include "sa/common/constants.hpp"
#include "sa/common/error.hpp"
#include "sa/common/rng.hpp"
#include "sa/dsp/units.hpp"
#include "sa/linalg/polyroots.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/packet.hpp"
#include "sa/secure/beamforming.hpp"
#include "sa/secure/coordinator.hpp"
#include "sa/testbed/office.hpp"
#include "sa/testbed/uplink.hpp"

namespace sa {
namespace {

constexpr double kLambda = kSpeedOfLight / 2.4e9;

// -------------------------------------------------------------- polyroots

TEST(PolyRoots, Quadratic) {
  // (z - 2)(z + 3) = z^2 + z - 6.
  const CVec coeffs{cd{-6, 0}, cd{1, 0}, cd{1, 0}};
  auto roots = polynomial_roots(coeffs);
  ASSERT_EQ(roots.size(), 2u);
  std::sort(roots.begin(), roots.end(),
            [](cd a, cd b) { return a.real() < b.real(); });
  EXPECT_NEAR(std::abs(roots[0] - cd(-3.0, 0.0)), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(roots[1] - cd(2.0, 0.0)), 0.0, 1e-9);
}

TEST(PolyRoots, ComplexRootsOfUnity) {
  // z^8 - 1: roots are the 8th roots of unity.
  CVec coeffs(9, cd{0, 0});
  coeffs[0] = cd{-1, 0};
  coeffs[8] = cd{1, 0};
  const auto roots = polynomial_roots(coeffs);
  ASSERT_EQ(roots.size(), 8u);
  for (const cd& z : roots) {
    EXPECT_NEAR(std::abs(z), 1.0, 1e-8);
    EXPECT_NEAR(std::abs(polyval(coeffs, z)), 0.0, 1e-8);
  }
}

TEST(PolyRoots, RandomPolynomialResiduals) {
  Rng rng(1);
  for (int rep = 0; rep < 5; ++rep) {
    CVec coeffs(13);
    for (auto& c : coeffs) c = cd{rng.normal(), rng.normal()};
    const auto roots = polynomial_roots(coeffs);
    ASSERT_EQ(roots.size(), 12u);
    for (const cd& z : roots) {
      // Scale-aware residual: a small leading coefficient legitimately
      // produces huge roots, where |p(z)| is dominated by floating-point
      // rounding of the ~|z|^12 terms.
      double term_scale = 1.0;
      double pw = 1.0;
      for (const cd& c : coeffs) {
        term_scale = std::max(term_scale, std::abs(c) * pw);
        pw *= std::max(std::abs(z), 1.0);
      }
      EXPECT_LT(std::abs(polyval(coeffs, z)) / term_scale, 1e-8);
    }
  }
}

TEST(PolyRoots, TrimsLeadingZeros) {
  // Effectively linear: 0*z^3 + 0*z^2 + 2z - 4.
  const CVec coeffs{cd{-4, 0}, cd{2, 0}, cd{0, 0}, cd{0, 0}};
  const auto roots = polynomial_roots(coeffs);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_NEAR(std::abs(roots[0] - cd(2.0, 0.0)), 0.0, 1e-9);
}

TEST(PolyRoots, RejectsDegenerate) {
  EXPECT_THROW(polynomial_roots(CVec{cd{1, 0}}), InvalidArgument);
  EXPECT_THROW(polynomial_roots(CVec{cd{0, 0}, cd{0, 0}}), InvalidArgument);
}

// -------------------------------------------------------------- rootmusic

CMat ula_cov(const ArrayGeometry& geom, const std::vector<double>& bearings,
             double noise, Rng& rng, std::size_t snaps = 400) {
  CMat x(geom.size(), snaps);
  std::vector<CVec> steer;
  for (double b : bearings) steer.push_back(geom.steering_vector(b, kLambda));
  for (std::size_t t = 0; t < snaps; ++t) {
    for (const auto& a : steer) {
      const cd sym = rng.random_phasor();
      for (std::size_t m = 0; m < geom.size(); ++m) x(m, t) += sym * a[m];
    }
    for (std::size_t m = 0; m < geom.size(); ++m) {
      x(m, t) += rng.complex_normal(noise);
    }
  }
  return sample_covariance(x);
}

TEST(RootMusic, SingleSourceExact) {
  Rng rng(2);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  for (double truth : {-55.3, -10.7, 0.0, 23.4, 61.2}) {
    const CMat r = ula_cov(geom, {truth}, 0.01, rng);
    const auto sources = root_music(r, geom, kLambda);
    ASSERT_FALSE(sources.empty()) << truth;
    EXPECT_NEAR(sources[0].bearing_deg, truth, 0.3) << truth;
  }
}

TEST(RootMusic, BeatsGridResolutionOffGrid) {
  // True bearing between grid points: Root-MUSIC has no grid to snap to.
  Rng rng(3);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const double truth = 17.37;
  const CMat r = ula_cov(geom, {truth}, 0.001, rng);
  const auto sources = root_music(r, geom, kLambda);
  ASSERT_FALSE(sources.empty());
  EXPECT_NEAR(sources[0].bearing_deg, truth, 0.1);
}

TEST(RootMusic, TwoSourcesResolved) {
  Rng rng(4);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  RootMusicConfig cfg;
  cfg.num_sources = 2;
  const CMat r = ula_cov(geom, {-30.0, 25.0}, 0.02, rng);
  const auto sources = root_music(r, geom, kLambda, cfg);
  ASSERT_EQ(sources.size(), 2u);
  std::vector<double> got{sources[0].bearing_deg, sources[1].bearing_deg};
  std::sort(got.begin(), got.end());
  EXPECT_NEAR(got[0], -30.0, 1.0);
  EXPECT_NEAR(got[1], 25.0, 1.0);
}

TEST(RootMusic, MdlSourceCountWorks) {
  Rng rng(5);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const CMat r = ula_cov(geom, {-40.0, 10.0}, 0.05, rng);
  const auto sources = root_music(r, geom, kLambda);  // num_sources = MDL
  EXPECT_EQ(sources.size(), 2u);
}

TEST(RootMusic, RequiresLinearArray) {
  const auto oct = ArrayGeometry::octagon();
  EXPECT_THROW(root_music(CMat::identity(8), oct, kLambda), InvalidArgument);
}

// ------------------------------------------------------------ beamforming

TEST(Beamforming, AoaWeightsSteerCorrectly) {
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const CVec w = aoa_beamforming_weights(geom, 20.0, kLambda);
  EXPECT_NEAR(norm(w), 1.0, 1e-12);  // unit total power
  // Full array gain toward the target: 10*log10(8) ~ 9.03 dB.
  EXPECT_NEAR(array_factor_db(geom, w, 20.0, kLambda), 9.03, 0.01);
  // Substantially less in other directions.
  EXPECT_LT(array_factor_db(geom, w, -40.0, kLambda), 2.0);
}

TEST(Beamforming, MrtIsUpperBound) {
  // Over a multipath channel, MRT >= AoA-steered >= ... for any bearing.
  Rng rng(6);
  Floorplan room;
  room.add_room({0, 0}, {14, 10});
  const auto geom = ArrayGeometry::octagon();
  const ArrayPlacement placement{geom, {3.0, 3.0}, 0.0};
  const RayTracer tracer;
  const ChannelSimulator sim({2.4e9, 20e6, 0.0, 0.0});
  for (const Vec2 client : {Vec2{10.0, 7.0}, Vec2{5.0, 8.0}, Vec2{12.0, 2.0}}) {
    const auto paths = tracer.trace(client, placement.origin, room);
    const CVec h = sim.channel_vector(paths, placement);
    const double direct_bearing =
        world_to_array_bearing(geom, paths[0].arrival_bearing_deg, 0.0);
    const CVec w_aoa = aoa_beamforming_weights(geom, direct_bearing, kLambda);
    const CVec w_mrt = mrt_weights(h);
    const double g_aoa = downlink_amplitude(h, w_aoa);
    const double g_mrt = downlink_amplitude(h, w_mrt);
    EXPECT_GE(g_mrt + 1e-12, g_aoa);
    // AoA beamforming still buys a real gain over a single antenna.
    EXPECT_GT(downlink_gain_db(h, w_aoa), 3.0);
  }
}

TEST(Beamforming, NullSteeringCreatesDeepNull) {
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const CVec w = null_steering_weights(geom, 10.0, {-35.0, 55.0}, kLambda);
  EXPECT_NEAR(norm(w), 1.0, 1e-12);
  // Deep nulls at the protected bearings.
  EXPECT_LT(array_factor_db(geom, w, -35.0, kLambda), -80.0);
  EXPECT_LT(array_factor_db(geom, w, 55.0, kLambda), -80.0);
  // Target keeps most of the array gain (within ~2 dB of full).
  EXPECT_GT(array_factor_db(geom, w, 10.0, kLambda), 7.0);
}

TEST(Beamforming, NullAtTargetRejected) {
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  EXPECT_THROW(null_steering_weights(geom, 10.0, {10.0}, kLambda),
               InvalidArgument);
}

TEST(Beamforming, TooManyNullsRejected) {
  const auto geom = ArrayGeometry::uniform_linear(4, kLambda / 2.0);
  EXPECT_THROW(
      null_steering_weights(geom, 0.0, {-60.0, -30.0, 30.0, 60.0}, kLambda),
      InvalidArgument);
}

// ------------------------------------------------------------ coordinator

struct CoordRig {
  OfficeTestbed tb = OfficeTestbed::figure4();
  Rng rng;
  std::unique_ptr<UplinkSimulation> sim;
  std::vector<std::unique_ptr<AccessPoint>> aps;
  std::uint16_t seq = 0;

  explicit CoordRig(std::uint64_t seed) : rng(seed) {
    UplinkConfig cfg;
    cfg.channel.noise_power = 1e-5;
    sim = std::make_unique<UplinkSimulation>(tb, cfg, rng);
    for (const Vec2 pos : {tb.ap_position(), tb.extra_ap_positions()[1],
                           tb.extra_ap_positions()[2]}) {
      AccessPointConfig c;
      c.position = pos;
      aps.push_back(std::make_unique<AccessPoint>(c, rng));
      sim->add_ap(aps.back()->placement());
    }
  }

  std::vector<ApObservation> uplink(Vec2 from, MacAddress mac,
                                    const TxPattern* pattern = nullptr) {
    const Frame f =
        Frame::data(MacAddress::from_index(0xFF), mac, Bytes{1, 2}, seq++);
    const CVec w = PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
    const auto rx = sim->transmit(from, w, pattern);
    std::vector<ApObservation> obs;
    for (std::size_t i = 0; i < aps.size(); ++i) {
      for (auto& pkt : aps[i]->receive(rx[i])) {
        obs.push_back({aps[i]->config().position, std::move(pkt)});
      }
    }
    sim->advance(0.2);
    return obs;
  }
};

CoordinatorConfig office_coordinator_config(const OfficeTestbed& tb) {
  CoordinatorConfig cfg;
  cfg.fence_boundary = tb.building_outline();
  return cfg;
}

TEST(Coordinator, AcceptsLegitimateIndoorClient) {
  CoordRig rig(900);
  Coordinator coord(office_coordinator_config(rig.tb));
  const auto mac = MacAddress::from_index(5);
  for (int i = 0; i < 8; ++i) {
    const auto obs = rig.uplink(rig.tb.client(5).position, mac);
    ASSERT_FALSE(obs.empty());
    const auto d = coord.process(obs);
    EXPECT_NE(d.action(), FrameAction::kDropFence) << i;
    EXPECT_NE(d.action(), FrameAction::kDropSpoof) << i;
    ASSERT_TRUE(d.source.has_value());
    EXPECT_EQ(*d.source, mac);
  }
  EXPECT_GE(coord.stats().accepted, 7u);
  // Location produced and accurate.
  const auto obs = rig.uplink(rig.tb.client(5).position, mac);
  const auto d = coord.process(obs);
  ASSERT_TRUE(d.location.has_value());
  EXPECT_LT(distance(d.location->position, rig.tb.client(5).position), 2.0);
}

TEST(Coordinator, DropsOutdoorTransmitter) {
  CoordRig rig(901);
  Coordinator coord(office_coordinator_config(rig.tb));
  const Vec2 attacker = rig.tb.outdoor_positions()[0];
  TxPattern amp;
  amp.tx_power_db = 18.0;  // make sure multiple APs hear it
  int fence_drops = 0, observed = 0;
  for (int i = 0; i < 6; ++i) {
    const auto obs = rig.uplink(attacker, MacAddress::from_index(66), &amp);
    if (obs.size() < 2) continue;  // not enough APs heard it: no frame anyway
    ++observed;
    const auto d = coord.process(obs);
    if (d.action() == FrameAction::kDropFence) ++fence_drops;
  }
  ASSERT_GT(observed, 0);
  EXPECT_EQ(fence_drops, observed);
}

TEST(Coordinator, DropsSpoofedFrames) {
  CoordRig rig(902);
  CoordinatorConfig cfg = office_coordinator_config(rig.tb);
  Coordinator coord(cfg);
  const auto mac = MacAddress::from_index(2);
  for (int i = 0; i < 10; ++i) {
    const auto obs = rig.uplink(rig.tb.client(2).position, mac);
    ASSERT_FALSE(obs.empty());
    coord.process(obs);
  }
  // Attacker spoofs from across the office.
  int spoof_drops = 0;
  for (int i = 0; i < 6; ++i) {
    const auto obs = rig.uplink(rig.tb.client(17).position, mac);
    ASSERT_FALSE(obs.empty());
    const auto d = coord.process(obs);
    if (d.action() == FrameAction::kDropSpoof) ++spoof_drops;
  }
  EXPECT_GE(spoof_drops, 5);
  EXPECT_EQ(coord.stats().dropped_spoof, static_cast<std::size_t>(spoof_drops));
}

TEST(Coordinator, FenceDisabledStillDetectsSpoof) {
  CoordRig rig(903);
  CoordinatorConfig cfg;  // no fence
  Coordinator coord(cfg);
  const auto mac = MacAddress::from_index(3);
  for (int i = 0; i < 8; ++i) {
    coord.process(rig.uplink(rig.tb.client(3).position, mac));
  }
  const auto d = coord.process(rig.uplink(rig.tb.client(9).position, mac));
  EXPECT_EQ(d.action(), FrameAction::kDropSpoof);
  EXPECT_FALSE(d.location.has_value());
}

TEST(Coordinator, RequiresObservations) {
  Coordinator coord(CoordinatorConfig{});
  EXPECT_THROW(coord.process({}), InvalidArgument);
}

}  // namespace
}  // namespace sa
