// Tests for StreamingReceiver: chunked capture with packets inside,
// straddling, and far beyond chunk boundaries — the 0.4 ms WARP buffer
// pipeline of paper §3.
#include <gtest/gtest.h>

#include "sa/channel/raytracer.hpp"
#include "sa/channel/simulator.hpp"
#include "sa/common/error.hpp"
#include "sa/common/rng.hpp"
#include "sa/dsp/noise.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/packet.hpp"
#include "sa/secure/streaming.hpp"
#include "sa/signature/metrics.hpp"

namespace sa {
namespace {

/// Free-space rig: one AP at the origin, one client 12 m east.
struct StreamRig {
  Rng rng{77};
  Floorplan empty;
  AccessPointConfig cfg;
  AccessPoint ap;
  ChannelSimulator sim;
  RayTracer tracer;
  std::vector<PropagationPath> paths;

  StreamRig()
      : cfg([] {
          AccessPointConfig c;
          c.position = {0.0, 0.0};
          return c;
        }()),
        ap(cfg, rng),
        sim([] {
          ChannelConfig ch;
          ch.noise_power = 1e-6;
          return ch;
        }()) {
    paths = tracer.trace({12.0, 0.0}, {0.0, 0.0}, empty);
  }

  /// Channel samples for one frame preceded by `lead` noise samples.
  CMat capture(std::size_t lead, std::uint16_t seq) {
    const Frame f = Frame::data(MacAddress::from_index(1),
                                MacAddress::from_index(2), Bytes{9, 9}, seq);
    const CVec wave = PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
    CMat rx = sim.propagate(wave, paths, ap.placement(), rng);
    CMat padded(rx.rows(), lead + rx.cols());
    for (std::size_t m = 0; m < rx.rows(); ++m) {
      for (std::size_t t = 0; t < lead; ++t) {
        padded(m, t) = rng.complex_normal(1e-6);
      }
      for (std::size_t t = 0; t < rx.cols(); ++t) {
        padded(m, lead + t) = rx(m, t);
      }
    }
    return padded;
  }

  static CMat columns(const CMat& src, std::size_t from, std::size_t to) {
    CMat out(src.rows(), to - from);
    for (std::size_t m = 0; m < src.rows(); ++m) {
      for (std::size_t t = from; t < to; ++t) out(m, t - from) = src(m, t);
    }
    return out;
  }
};

TEST(Streaming, PacketInsideOneChunk) {
  StreamRig rig;
  StreamingReceiver rx(rig.ap);
  const CMat cap = rig.capture(500, 0);
  const auto pkts = rx.push(cap);
  ASSERT_EQ(pkts.size(), 1u);
  // Within a couple of samples: the 12 m path itself delays the packet.
  EXPECT_NEAR(static_cast<double>(pkts[0].absolute_start), 500.0, 2.0);
  ASSERT_TRUE(pkts[0].packet.frame.has_value());
  EXPECT_EQ(pkts[0].packet.frame->sequence, 0);
}

TEST(Streaming, PacketStraddlingChunks) {
  StreamRig rig;
  StreamingReceiver rx(rig.ap);
  const CMat cap = rig.capture(700, 3);
  // Split right through the packet body.
  const std::size_t cut = 1100;
  auto first = rx.push(StreamRig::columns(cap, 0, cut));
  EXPECT_TRUE(first.empty());  // packet incomplete: deferred
  auto second = rx.push(StreamRig::columns(cap, cut, cap.cols()));
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NEAR(static_cast<double>(second[0].absolute_start), 700.0, 2.0);
  ASSERT_TRUE(second[0].packet.frame.has_value());
  EXPECT_EQ(second[0].packet.frame->sequence, 3);
}

TEST(Streaming, NoDuplicateEmissionAcrossOverlap) {
  StreamRig rig;
  StreamingReceiver rx(rig.ap);
  const CMat cap = rig.capture(400, 7);
  auto first = rx.push(cap);
  ASSERT_EQ(first.size(), 1u);
  // Push pure noise afterwards; the retained overlap still contains the
  // packet, but it must not be emitted again.
  CMat noise(cap.rows(), 2000);
  for (std::size_t m = 0; m < noise.rows(); ++m) {
    for (std::size_t t = 0; t < noise.cols(); ++t) {
      noise(m, t) = rig.rng.complex_normal(1e-6);
    }
  }
  EXPECT_TRUE(rx.push(noise).empty());
  EXPECT_TRUE(rx.push(noise).empty());
}

TEST(Streaming, MultiplePacketsAcrossManyChunks) {
  StreamRig rig;
  StreamingReceiver rx(rig.ap);
  // Three packets separated by noise, streamed in 800-sample chunks
  // (sub-packet chunks: every packet straddles boundaries).
  std::vector<CMat> captures;
  for (std::uint16_t s = 0; s < 3; ++s) captures.push_back(rig.capture(600, s));
  CMat all(captures[0].rows(), 0);
  {
    std::size_t total = 0;
    for (const auto& c : captures) total += c.cols();
    all = CMat(captures[0].rows(), total);
    std::size_t at = 0;
    for (const auto& c : captures) {
      for (std::size_t m = 0; m < c.rows(); ++m) {
        for (std::size_t t = 0; t < c.cols(); ++t) all(m, at + t) = c(m, t);
      }
      at += c.cols();
    }
  }
  std::vector<std::uint16_t> seqs;
  for (std::size_t at = 0; at < all.cols(); at += 800) {
    const std::size_t end = std::min(at + 800, all.cols());
    for (const auto& p : rx.push(StreamRig::columns(all, at, end))) {
      ASSERT_TRUE(p.packet.frame.has_value());
      seqs.push_back(p.packet.frame->sequence);
    }
  }
  for (const auto& p : rx.flush()) {
    if (p.packet.frame) seqs.push_back(p.packet.frame->sequence);
  }
  ASSERT_EQ(seqs.size(), 3u);
  EXPECT_EQ(seqs[0], 0);
  EXPECT_EQ(seqs[1], 1);
  EXPECT_EQ(seqs[2], 2);
}

TEST(Streaming, SignatureMatchesNonStreamingPipeline) {
  StreamRig rig;
  const CMat cap = rig.capture(300, 1);
  // Reference: one-shot receive.
  const auto direct = rig.ap.receive(cap);
  ASSERT_EQ(direct.size(), 1u);
  // Streamed in two halves.
  StreamingReceiver rx(rig.ap);
  rx.push(StreamRig::columns(cap, 0, 900));
  const auto streamed = rx.push(StreamRig::columns(cap, 900, cap.cols()));
  ASSERT_EQ(streamed.size(), 1u);
  EXPECT_NEAR(streamed[0].packet.bearing_array_deg, direct[0].bearing_array_deg,
              0.5);
  EXPECT_GT(match_score(streamed[0].packet.signature, direct[0].signature),
            0.99);
}

TEST(Streaming, SamplesSeenAdvances) {
  StreamRig rig;
  StreamingReceiver rx(rig.ap);
  CMat noise(rig.ap.config().geometry.size(), 1000);
  for (std::size_t m = 0; m < noise.rows(); ++m) {
    for (std::size_t t = 0; t < noise.cols(); ++t) {
      noise(m, t) = rig.rng.complex_normal(1e-6);
    }
  }
  rx.push(noise);
  rx.push(noise);
  EXPECT_EQ(rx.samples_seen(), 2000u);
}

TEST(Streaming, RejectsWrongAntennaCount) {
  StreamRig rig;
  StreamingReceiver rx(rig.ap);
  EXPECT_THROW(rx.push(CMat(3, 100)), InvalidArgument);
}

TEST(Streaming, RejectsInvalidConfig) {
  StreamRig rig;
  // max_packet_samples must stay below history_samples: a packet longer
  // than the retained history could never accumulate enough samples to
  // be decoded or emitted.
  StreamingConfig bad;
  bad.history_samples = 4000;
  bad.max_packet_samples = 4000;
  EXPECT_THROW(StreamingReceiver(rig.ap, bad), InvalidArgument);
  bad.max_packet_samples = 4800;
  EXPECT_THROW(StreamingReceiver(rig.ap, bad), InvalidArgument);
  // History must also cover a preamble plus the tail guard.
  StreamingConfig tiny;
  tiny.history_samples = 300;
  tiny.tail_guard = 480;
  tiny.max_packet_samples = 200;
  EXPECT_THROW(StreamingReceiver(rig.ap, tiny), InvalidArgument);
  // The documented default is valid.
  EXPECT_NO_THROW(StreamingReceiver(rig.ap, StreamingConfig{}));
}

TEST(Streaming, TwoPhaseScanCommitMatchesPush) {
  // The engine's split API must behave exactly like push(): same packet,
  // same signature, same watermark bookkeeping.
  StreamRig rig;
  const CMat cap = rig.capture(500, 4);

  StreamingReceiver via_push(rig.ap);
  const auto pushed = via_push.push(cap);
  ASSERT_EQ(pushed.size(), 1u);

  StreamingReceiver two_phase(rig.ap);
  auto scan = two_phase.scan(&cap);
  ASSERT_TRUE(scan.conditioned != nullptr);
  std::vector<std::optional<ReceivedPacket>> processed;
  for (const auto& cand : scan.candidates) {
    processed.push_back(rig.ap.demodulate(*scan.conditioned, cand.detection));
  }
  const auto committed =
      two_phase.commit(scan, std::move(processed), /*final_pass=*/false);
  ASSERT_EQ(committed.size(), 1u);
  EXPECT_EQ(committed[0].absolute_start, pushed[0].absolute_start);
  ASSERT_TRUE(committed[0].packet.frame.has_value());
  EXPECT_EQ(committed[0].packet.frame->sequence, 4);
  EXPECT_EQ(committed[0].packet.bearing_array_deg,
            pushed[0].packet.bearing_array_deg);
  EXPECT_EQ(two_phase.samples_seen(), via_push.samples_seen());
}

TEST(Streaming, CommitBehindScheduleEmitsIdenticalStream) {
  // The pipelined engine session scans round N+1 before round N's commit
  // has been applied (commit-behind). The emitted packet stream must be
  // identical to the lock-step schedule: a scan taken ahead of a pending
  // commit lists extra candidates (the pending round's packets, not yet
  // below the watermark), and commit must drop exactly those.
  StreamRig rig;
  // Three chunks: a packet inside chunk 1, a packet straddling the
  // chunk-2/3 boundary (exercising the deferred-retry path), noise tail.
  const CMat cap1 = rig.capture(500, 0);
  const CMat cap2 = rig.capture(900, 1);
  const std::size_t cut = cap2.cols() - 700;  // split through packet 1's body
  std::vector<CMat> chunks;
  chunks.push_back(cap1);
  chunks.push_back(StreamRig::columns(cap2, 0, cut));
  chunks.push_back(StreamRig::columns(cap2, cut, cap2.cols()));

  // Reference: lock-step push/flush.
  std::vector<StreamingReceiver::StreamPacket> expected;
  {
    StreamingReceiver rx(rig.ap);
    for (const auto& c : chunks) {
      for (auto& p : rx.push(c)) expected.push_back(std::move(p));
    }
    for (auto& p : rx.flush()) expected.push_back(std::move(p));
  }
  ASSERT_EQ(expected.size(), 2u);

  // Commit-behind: every scan runs first, then the commits land behind
  // them in order. Candidates an earlier commit has emitted by commit
  // time are handed in as nullopt, exactly as the session's back-end
  // does after its watermark check.
  std::vector<StreamingReceiver::StreamPacket> emitted;
  {
    StreamingReceiver rx(rig.ap);
    std::vector<StreamingReceiver::Scan> scans;
    for (const auto& c : chunks) scans.push_back(rx.scan(&c));
    scans.push_back(rx.scan(nullptr));  // the flush pass, also ahead
    for (std::size_t s = 0; s < scans.size(); ++s) {
      std::vector<std::optional<ReceivedPacket>> processed(
          scans[s].candidates.size());
      for (std::size_t i = 0; i < scans[s].candidates.size(); ++i) {
        const auto& cand = scans[s].candidates[i];
        if (cand.absolute_start < rx.emit_watermark()) continue;
        processed[i] =
            rig.ap.demodulate(*scans[s].conditioned, cand.detection);
      }
      const bool final_pass = s + 1 == scans.size();
      for (auto& p : rx.commit(scans[s], std::move(processed), final_pass)) {
        emitted.push_back(std::move(p));
      }
    }
  }

  ASSERT_EQ(emitted.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(emitted[i].absolute_start, expected[i].absolute_start);
    ASSERT_EQ(emitted[i].packet.frame.has_value(),
              expected[i].packet.frame.has_value());
    if (expected[i].packet.frame) {
      EXPECT_EQ(emitted[i].packet.frame->sequence,
                expected[i].packet.frame->sequence);
    }
    EXPECT_EQ(emitted[i].packet.bearing_array_deg,
              expected[i].packet.bearing_array_deg);
  }
}

TEST(Streaming, ScanRecordsAbsoluteCoordinates) {
  StreamRig rig;
  StreamingReceiver rx(rig.ap);
  const CMat cap = rig.capture(300, 0);
  auto s1 = rx.scan(&cap);
  EXPECT_EQ(s1.base, 0u);
  EXPECT_EQ(s1.prev_seen, 0u);
  EXPECT_EQ(s1.seen, cap.cols());
  std::vector<std::optional<ReceivedPacket>> processed(s1.candidates.size());
  for (std::size_t i = 0; i < s1.candidates.size(); ++i) {
    processed[i] = rig.ap.demodulate(*s1.conditioned, s1.candidates[i].detection);
  }
  rx.commit(s1, std::move(processed), false);
  auto s2 = rx.scan(&cap);
  EXPECT_EQ(s2.prev_seen, cap.cols());
  EXPECT_EQ(s2.seen, 2 * cap.cols());
  EXPECT_EQ(s2.base + (s2.conditioned ? s2.conditioned->cols() : 0),
            s2.seen);
}

}  // namespace
}  // namespace sa
