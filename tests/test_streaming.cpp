// Tests for StreamingReceiver: chunked capture with packets inside,
// straddling, and far beyond chunk boundaries — the 0.4 ms WARP buffer
// pipeline of paper §3.
#include <gtest/gtest.h>

#include "sa/channel/raytracer.hpp"
#include "sa/channel/simulator.hpp"
#include "sa/common/error.hpp"
#include "sa/common/rng.hpp"
#include "sa/dsp/noise.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/packet.hpp"
#include "sa/phy/ofdm.hpp"
#include "sa/secure/streaming.hpp"
#include "sa/signature/metrics.hpp"

namespace sa {
namespace {

/// Free-space rig: one AP at the origin, one client 12 m east.
struct StreamRig {
  Rng rng{77};
  Floorplan empty;
  AccessPointConfig cfg;
  AccessPoint ap;
  ChannelSimulator sim;
  RayTracer tracer;
  std::vector<PropagationPath> paths;

  StreamRig()
      : cfg([] {
          AccessPointConfig c;
          c.position = {0.0, 0.0};
          return c;
        }()),
        ap(cfg, rng),
        sim([] {
          ChannelConfig ch;
          ch.noise_power = 1e-6;
          return ch;
        }()) {
    paths = tracer.trace({12.0, 0.0}, {0.0, 0.0}, empty);
  }

  /// Channel samples for one frame preceded by `lead` noise samples.
  CMat capture(std::size_t lead, std::uint16_t seq) {
    const Frame f = Frame::data(MacAddress::from_index(1),
                                MacAddress::from_index(2), Bytes{9, 9}, seq);
    const CVec wave = PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
    CMat rx = sim.propagate(wave, paths, ap.placement(), rng);
    CMat padded(rx.rows(), lead + rx.cols());
    for (std::size_t m = 0; m < rx.rows(); ++m) {
      for (std::size_t t = 0; t < lead; ++t) {
        padded(m, t) = rng.complex_normal(1e-6);
      }
      for (std::size_t t = 0; t < rx.cols(); ++t) {
        padded(m, lead + t) = rx(m, t);
      }
    }
    return padded;
  }

  static CMat columns(const CMat& src, std::size_t from, std::size_t to) {
    CMat out(src.rows(), to - from);
    for (std::size_t m = 0; m < src.rows(); ++m) {
      for (std::size_t t = from; t < to; ++t) out(m, t - from) = src(m, t);
    }
    return out;
  }
};

TEST(Streaming, PacketInsideOneChunk) {
  StreamRig rig;
  StreamingReceiver rx(rig.ap);
  const CMat cap = rig.capture(500, 0);
  const auto pkts = rx.push(cap);
  ASSERT_EQ(pkts.size(), 1u);
  // Within a couple of samples: the 12 m path itself delays the packet.
  EXPECT_NEAR(static_cast<double>(pkts[0].absolute_start), 500.0, 2.0);
  ASSERT_TRUE(pkts[0].packet.frame.has_value());
  EXPECT_EQ(pkts[0].packet.frame->sequence, 0);
}

TEST(Streaming, PacketStraddlingChunks) {
  StreamRig rig;
  StreamingReceiver rx(rig.ap);
  const CMat cap = rig.capture(700, 3);
  // Split right through the packet body.
  const std::size_t cut = 1100;
  auto first = rx.push(StreamRig::columns(cap, 0, cut));
  EXPECT_TRUE(first.empty());  // packet incomplete: deferred
  auto second = rx.push(StreamRig::columns(cap, cut, cap.cols()));
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NEAR(static_cast<double>(second[0].absolute_start), 700.0, 2.0);
  ASSERT_TRUE(second[0].packet.frame.has_value());
  EXPECT_EQ(second[0].packet.frame->sequence, 3);
}

TEST(Streaming, NoDuplicateEmissionAcrossOverlap) {
  StreamRig rig;
  StreamingReceiver rx(rig.ap);
  const CMat cap = rig.capture(400, 7);
  auto first = rx.push(cap);
  ASSERT_EQ(first.size(), 1u);
  // Push pure noise afterwards; the retained overlap still contains the
  // packet, but it must not be emitted again.
  CMat noise(cap.rows(), 2000);
  for (std::size_t m = 0; m < noise.rows(); ++m) {
    for (std::size_t t = 0; t < noise.cols(); ++t) {
      noise(m, t) = rig.rng.complex_normal(1e-6);
    }
  }
  EXPECT_TRUE(rx.push(noise).empty());
  EXPECT_TRUE(rx.push(noise).empty());
}

TEST(Streaming, MultiplePacketsAcrossManyChunks) {
  StreamRig rig;
  StreamingReceiver rx(rig.ap);
  // Three packets separated by noise, streamed in 800-sample chunks
  // (sub-packet chunks: every packet straddles boundaries).
  std::vector<CMat> captures;
  for (std::uint16_t s = 0; s < 3; ++s) captures.push_back(rig.capture(600, s));
  CMat all(captures[0].rows(), 0);
  {
    std::size_t total = 0;
    for (const auto& c : captures) total += c.cols();
    all = CMat(captures[0].rows(), total);
    std::size_t at = 0;
    for (const auto& c : captures) {
      for (std::size_t m = 0; m < c.rows(); ++m) {
        for (std::size_t t = 0; t < c.cols(); ++t) all(m, at + t) = c(m, t);
      }
      at += c.cols();
    }
  }
  std::vector<std::uint16_t> seqs;
  for (std::size_t at = 0; at < all.cols(); at += 800) {
    const std::size_t end = std::min(at + 800, all.cols());
    for (const auto& p : rx.push(StreamRig::columns(all, at, end))) {
      ASSERT_TRUE(p.packet.frame.has_value());
      seqs.push_back(p.packet.frame->sequence);
    }
  }
  for (const auto& p : rx.flush()) {
    if (p.packet.frame) seqs.push_back(p.packet.frame->sequence);
  }
  ASSERT_EQ(seqs.size(), 3u);
  EXPECT_EQ(seqs[0], 0);
  EXPECT_EQ(seqs[1], 1);
  EXPECT_EQ(seqs[2], 2);
}

TEST(Streaming, SignatureMatchesNonStreamingPipeline) {
  StreamRig rig;
  const CMat cap = rig.capture(300, 1);
  // Reference: one-shot receive.
  const auto direct = rig.ap.receive(cap);
  ASSERT_EQ(direct.size(), 1u);
  // Streamed in two halves.
  StreamingReceiver rx(rig.ap);
  rx.push(StreamRig::columns(cap, 0, 900));
  const auto streamed = rx.push(StreamRig::columns(cap, 900, cap.cols()));
  ASSERT_EQ(streamed.size(), 1u);
  EXPECT_NEAR(streamed[0].packet.bearing_array_deg, direct[0].bearing_array_deg,
              0.5);
  EXPECT_GT(match_score(streamed[0].packet.signature, direct[0].signature),
            0.99);
}

TEST(Streaming, SamplesSeenAdvances) {
  StreamRig rig;
  StreamingReceiver rx(rig.ap);
  CMat noise(rig.ap.config().geometry.size(), 1000);
  for (std::size_t m = 0; m < noise.rows(); ++m) {
    for (std::size_t t = 0; t < noise.cols(); ++t) {
      noise(m, t) = rig.rng.complex_normal(1e-6);
    }
  }
  rx.push(noise);
  rx.push(noise);
  EXPECT_EQ(rx.samples_seen(), 2000u);
}

TEST(Streaming, RejectsWrongAntennaCount) {
  StreamRig rig;
  StreamingReceiver rx(rig.ap);
  EXPECT_THROW(rx.push(CMat(3, 100)), InvalidArgument);
}

TEST(Streaming, RejectsInvalidConfig) {
  StreamRig rig;
  // max_packet_samples must stay below history_samples: a packet longer
  // than the retained history could never accumulate enough samples to
  // be decoded or emitted.
  StreamingConfig bad;
  bad.history_samples = 4000;
  bad.max_packet_samples = 4000;
  EXPECT_THROW(StreamingReceiver(rig.ap, bad), InvalidArgument);
  bad.max_packet_samples = 4800;
  EXPECT_THROW(StreamingReceiver(rig.ap, bad), InvalidArgument);
  // History must also cover a preamble plus the tail guard.
  StreamingConfig tiny;
  tiny.history_samples = 300;
  tiny.tail_guard = 480;
  tiny.max_packet_samples = 200;
  EXPECT_THROW(StreamingReceiver(rig.ap, tiny), InvalidArgument);
  // The documented default is valid.
  EXPECT_NO_THROW(StreamingReceiver(rig.ap, StreamingConfig{}));
}

TEST(Streaming, TwoPhaseScanCommitMatchesPush) {
  // The engine's split API must behave exactly like push(): same packet,
  // same signature, same watermark bookkeeping.
  StreamRig rig;
  const CMat cap = rig.capture(500, 4);

  StreamingReceiver via_push(rig.ap);
  const auto pushed = via_push.push(cap);
  ASSERT_EQ(pushed.size(), 1u);

  StreamingReceiver two_phase(rig.ap);
  auto scan = two_phase.scan(&cap);
  ASSERT_TRUE(scan.conditioned != nullptr);
  std::vector<std::optional<ReceivedPacket>> processed;
  for (const auto& cand : scan.candidates) {
    processed.push_back(rig.ap.demodulate(*scan.conditioned, cand.detection));
  }
  const auto committed =
      two_phase.commit(scan, std::move(processed), /*final_pass=*/false);
  ASSERT_EQ(committed.size(), 1u);
  EXPECT_EQ(committed[0].absolute_start, pushed[0].absolute_start);
  ASSERT_TRUE(committed[0].packet.frame.has_value());
  EXPECT_EQ(committed[0].packet.frame->sequence, 4);
  EXPECT_EQ(committed[0].packet.bearing_array_deg,
            pushed[0].packet.bearing_array_deg);
  EXPECT_EQ(two_phase.samples_seen(), via_push.samples_seen());
}

TEST(Streaming, CommitBehindScheduleEmitsIdenticalStream) {
  // The pipelined engine session scans round N+1 before round N's commit
  // has been applied (commit-behind). The emitted packet stream must be
  // identical to the lock-step schedule: a scan taken ahead of a pending
  // commit lists extra candidates (the pending round's packets, not yet
  // below the watermark), and commit must drop exactly those.
  StreamRig rig;
  // Three chunks: a packet inside chunk 1, a packet straddling the
  // chunk-2/3 boundary (exercising the deferred-retry path), noise tail.
  const CMat cap1 = rig.capture(500, 0);
  const CMat cap2 = rig.capture(900, 1);
  const std::size_t cut = cap2.cols() - 700;  // split through packet 1's body
  std::vector<CMat> chunks;
  chunks.push_back(cap1);
  chunks.push_back(StreamRig::columns(cap2, 0, cut));
  chunks.push_back(StreamRig::columns(cap2, cut, cap2.cols()));

  // Reference: lock-step push/flush.
  std::vector<StreamingReceiver::StreamPacket> expected;
  {
    StreamingReceiver rx(rig.ap);
    for (const auto& c : chunks) {
      for (auto& p : rx.push(c)) expected.push_back(std::move(p));
    }
    for (auto& p : rx.flush()) expected.push_back(std::move(p));
  }
  ASSERT_EQ(expected.size(), 2u);

  // Commit-behind: every scan runs first, then the commits land behind
  // them in order. Candidates an earlier commit has emitted by commit
  // time are handed in as nullopt, exactly as the session's back-end
  // does after its watermark check.
  std::vector<StreamingReceiver::StreamPacket> emitted;
  {
    StreamingReceiver rx(rig.ap);
    std::vector<StreamingReceiver::Scan> scans;
    for (const auto& c : chunks) scans.push_back(rx.scan(&c));
    scans.push_back(rx.scan(nullptr));  // the flush pass, also ahead
    for (std::size_t s = 0; s < scans.size(); ++s) {
      std::vector<std::optional<ReceivedPacket>> processed(
          scans[s].candidates.size());
      for (std::size_t i = 0; i < scans[s].candidates.size(); ++i) {
        const auto& cand = scans[s].candidates[i];
        if (cand.absolute_start < rx.emit_watermark()) continue;
        processed[i] =
            rig.ap.demodulate(*scans[s].conditioned, cand.detection);
      }
      const bool final_pass = s + 1 == scans.size();
      for (auto& p : rx.commit(scans[s], std::move(processed), final_pass)) {
        emitted.push_back(std::move(p));
      }
    }
  }

  ASSERT_EQ(emitted.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(emitted[i].absolute_start, expected[i].absolute_start);
    ASSERT_EQ(emitted[i].packet.frame.has_value(),
              expected[i].packet.frame.has_value());
    if (expected[i].packet.frame) {
      EXPECT_EQ(emitted[i].packet.frame->sequence,
                expected[i].packet.frame->sequence);
    }
    EXPECT_EQ(emitted[i].packet.bearing_array_deg,
              expected[i].packet.bearing_array_deg);
  }
}

// --------------------------------------------- incremental hot path

/// Bit-exact replica of the pre-incremental receiver: grow-copy the raw
/// buffer on append, re-run AccessPoint::condition over the whole
/// history every scan, full detection, full-copy trim. This is the
/// oracle the ring-buffer / incremental scan path must match byte for
/// byte on every chunk schedule.
class LegacyReceiver {
 public:
  LegacyReceiver(AccessPoint& ap, StreamingConfig config)
      : ap_(ap), config_(config) {
    buffer_ = CMat(ap_.config().geometry.size(), 0);
  }

  StreamingReceiver::Scan scan(const CMat* chunk) {
    const std::size_t prev_seen = base_ + buffered_cols_;
    if (chunk != nullptr) {
      CMat grown(buffer_.rows(), buffered_cols_ + chunk->cols());
      for (std::size_t m = 0; m < buffer_.rows(); ++m) {
        for (std::size_t t = 0; t < buffered_cols_; ++t) {
          grown(m, t) = buffer_(m, t);
        }
        for (std::size_t t = 0; t < chunk->cols(); ++t) {
          grown(m, buffered_cols_ + t) = (*chunk)(m, t);
        }
      }
      buffer_ = std::move(grown);
      buffered_cols_ += chunk->cols();
    }
    StreamingReceiver::Scan out;
    out.base = base_;
    out.seen = base_ + buffered_cols_;
    out.prev_seen = prev_seen;
    if (buffered_cols_ < kPreambleLen + kSymbolLen) return out;
    out.conditioned = std::make_shared<const CMat>(ap_.condition(buffer_));
    for (const auto& det : ap_.detect(*out.conditioned)) {
      const std::size_t abs_start = base_ + det.start;
      if (abs_start < emit_watermark_) continue;
      out.candidates.push_back({abs_start, det});
    }
    return out;
  }

  std::vector<StreamingReceiver::StreamPacket> commit(
      const StreamingReceiver::Scan& scan,
      std::vector<std::optional<ReceivedPacket>> processed, bool final_pass) {
    std::vector<StreamingReceiver::StreamPacket> out;
    for (std::size_t i = 0; i < scan.candidates.size(); ++i) {
      const auto& cand = scan.candidates[i];
      if (cand.absolute_start < emit_watermark_) continue;
      if (!processed[i]) continue;
      ReceivedPacket& pkt = *processed[i];
      const std::size_t projected_end =
          cand.absolute_start +
          (pkt.phy ? pkt.phy->samples_consumed : kPreambleLen + kSymbolLen);
      if (!final_pass && !pkt.phy &&
          cand.absolute_start + config_.max_packet_samples > scan.seen) {
        continue;
      }
      emit_watermark_ = projected_end;
      out.push_back({cand.absolute_start, std::move(pkt)});
    }
    if (final_pass) {
      base_ += buffered_cols_;
      buffer_ = CMat(buffer_.rows(), 0);
      buffered_cols_ = 0;
    } else if (buffered_cols_ > config_.history_samples) {
      const std::size_t drop = buffered_cols_ - config_.history_samples;
      CMat kept(buffer_.rows(), config_.history_samples);
      for (std::size_t m = 0; m < buffer_.rows(); ++m) {
        for (std::size_t t = 0; t < config_.history_samples; ++t) {
          kept(m, t) = buffer_(m, drop + t);
        }
      }
      buffer_ = std::move(kept);
      buffered_cols_ = config_.history_samples;
      base_ += drop;
    }
    return out;
  }

  std::vector<StreamingReceiver::StreamPacket> push(const CMat& chunk) {
    auto s = scan(&chunk);
    std::vector<std::optional<ReceivedPacket>> processed;
    for (const auto& cand : s.candidates) {
      processed.push_back(ap_.demodulate(*s.conditioned, cand.detection));
    }
    return commit(s, std::move(processed), false);
  }

  std::vector<StreamingReceiver::StreamPacket> flush() {
    auto s = scan(nullptr);
    std::vector<std::optional<ReceivedPacket>> processed;
    for (const auto& cand : s.candidates) {
      processed.push_back(ap_.demodulate(*s.conditioned, cand.detection));
    }
    return commit(s, std::move(processed), true);
  }

  std::size_t emit_watermark() const { return emit_watermark_; }

 private:
  AccessPoint& ap_;
  StreamingConfig config_;
  CMat buffer_;
  std::size_t buffered_cols_ = 0;
  std::size_t base_ = 0;
  std::size_t emit_watermark_ = 0;
};

void expect_packets_bit_identical(
    const std::vector<StreamingReceiver::StreamPacket>& got,
    const std::vector<StreamingReceiver::StreamPacket>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(got[i].absolute_start, want[i].absolute_start);
    const ReceivedPacket& g = got[i].packet;
    const ReceivedPacket& w = want[i].packet;
    // Detection fields bit-exact (EXPECT_EQ on doubles).
    EXPECT_EQ(g.detection.start, w.detection.start);
    EXPECT_EQ(g.detection.metric, w.detection.metric);
    EXPECT_EQ(g.detection.cfo_hz, w.detection.cfo_hz);
    EXPECT_EQ(g.detection.fine_peak, w.detection.fine_peak);
    // Decode and AoA results bit-exact.
    ASSERT_EQ(g.phy.has_value(), w.phy.has_value());
    if (w.phy) EXPECT_EQ(g.phy->psdu, w.phy->psdu);
    ASSERT_EQ(g.frame.has_value(), w.frame.has_value());
    if (w.frame) EXPECT_EQ(g.frame->sequence, w.frame->sequence);
    EXPECT_EQ(g.bearing_array_deg, w.bearing_array_deg);
    ASSERT_EQ(g.signature.spectrum().size(), w.signature.spectrum().size());
    for (std::size_t s = 0; s < w.signature.spectrum().size(); ++s) {
      ASSERT_EQ(g.signature.spectrum().values()[s],
                w.signature.spectrum().values()[s]);
    }
    ASSERT_EQ(g.subband.num_bands(), w.subband.num_bands());
  }
}

/// Concatenate noise-led captures into one long stream.
CMat build_long_capture(StreamRig& rig, std::size_t packets) {
  std::vector<CMat> caps;
  for (std::uint16_t s = 0; s < packets; ++s) {
    caps.push_back(rig.capture(400 + 300 * (s % 3), s));
  }
  std::size_t total = 0;
  for (const auto& c : caps) total += c.cols();
  CMat all(caps[0].rows(), total);
  std::size_t at = 0;
  for (const auto& c : caps) {
    for (std::size_t m = 0; m < c.rows(); ++m) {
      for (std::size_t t = 0; t < c.cols(); ++t) all(m, at + t) = c(m, t);
    }
    at += c.cols();
  }
  return all;
}

TEST(Streaming, IncrementalBitIdenticalToLegacyAcrossChunkSchedules) {
  // The tentpole invariant: the ring-buffer + incremental-conditioning +
  // incremental-detection scan path emits a packet stream byte-identical
  // to the pre-incremental receiver for every chunk schedule — fixed
  // chunks (prime and power-of-two), a chunk larger than the whole
  // history (multi-window trim in one commit), and a ragged cycle
  // crossing every compaction boundary.
  StreamRig rig;
  StreamingConfig cfg;
  cfg.history_samples = 2500;
  cfg.max_packet_samples = 2200;
  const CMat all = build_long_capture(rig, 3);

  const std::vector<std::vector<std::size_t>> schedules = {
      {97},    // prime, far smaller than a packet
      {800},   // the WARP-ish sub-packet chunk
      {4096},  // larger than history_samples: trim drops a whole window
      {13, 701, 1, 2048, 333},  // ragged cycle
  };
  for (const auto& sched : schedules) {
    SCOPED_TRACE(testing::Message() << "chunk schedule [" << sched[0] << "...]");
    StreamingReceiver incremental(rig.ap, cfg);
    LegacyReceiver legacy(rig.ap, cfg);
    std::size_t at = 0, step = 0;
    while (at < all.cols()) {
      const std::size_t want_chunk = sched[step++ % sched.size()];
      const std::size_t end = std::min(at + want_chunk, all.cols());
      const CMat chunk = StreamRig::columns(all, at, end);
      at = end;
      expect_packets_bit_identical(incremental.push(chunk),
                                   legacy.push(chunk));
      ASSERT_EQ(incremental.emit_watermark(), legacy.emit_watermark());
      ASSERT_EQ(incremental.samples_seen(), at);
    }
    expect_packets_bit_identical(incremental.flush(), legacy.flush());
    ASSERT_EQ(incremental.emit_watermark(), legacy.emit_watermark());
  }
}

TEST(Streaming, IncrementalBitIdenticalToLegacyOneSampleChunks) {
  // 1-sample chunks: thousands of scans over a short stream, hammering
  // the append/trim boundaries and the origin-dependent coarse
  // recurrences one column at a time.
  StreamRig rig;
  StreamingConfig cfg;
  cfg.history_samples = 900;
  cfg.max_packet_samples = 850;
  const CMat all = build_long_capture(rig, 1);
  const std::size_t total = std::min<std::size_t>(all.cols(), 1400);

  StreamingReceiver incremental(rig.ap, cfg);
  LegacyReceiver legacy(rig.ap, cfg);
  for (std::size_t at = 0; at < total; ++at) {
    const CMat chunk = StreamRig::columns(all, at, at + 1);
    expect_packets_bit_identical(incremental.push(chunk), legacy.push(chunk));
    ASSERT_EQ(incremental.emit_watermark(), legacy.emit_watermark());
  }
  expect_packets_bit_identical(incremental.flush(), legacy.flush());
}

TEST(Streaming, IncrementalBitIdenticalToLegacyCommitBehind) {
  // Commit-behind schedule (the pipelined session's interleave): all
  // scans run ahead, then the commits land behind them in order. Both
  // implementations walk the identical schedule and must agree bit for
  // bit — scan coordinates, candidate lists, snapshots, emissions.
  StreamRig rig;
  StreamingConfig cfg;
  cfg.history_samples = 2500;
  cfg.max_packet_samples = 2200;
  const CMat all = build_long_capture(rig, 2);
  std::vector<CMat> chunks;
  for (std::size_t at = 0; at < all.cols(); at += 900) {
    chunks.push_back(StreamRig::columns(all, at, std::min(at + 900, all.cols())));
  }

  StreamingReceiver incremental(rig.ap, cfg);
  LegacyReceiver legacy(rig.ap, cfg);
  std::vector<StreamingReceiver::Scan> inc_scans, leg_scans;
  for (const auto& c : chunks) {
    inc_scans.push_back(incremental.scan(&c));
    leg_scans.push_back(legacy.scan(&c));
  }
  inc_scans.push_back(incremental.scan(nullptr));
  leg_scans.push_back(legacy.scan(nullptr));

  for (std::size_t s = 0; s < inc_scans.size(); ++s) {
    SCOPED_TRACE(s);
    ASSERT_EQ(inc_scans[s].base, leg_scans[s].base);
    ASSERT_EQ(inc_scans[s].seen, leg_scans[s].seen);
    ASSERT_EQ(inc_scans[s].candidates.size(), leg_scans[s].candidates.size());
    // Snapshots bit-identical whenever they exist. The incremental path
    // skips the snapshot for candidate-free scans (nothing reads it);
    // the legacy oracle always materialized one.
    if (inc_scans[s].candidates.empty()) {
      ASSERT_TRUE(inc_scans[s].conditioned == nullptr);
    }
    if (leg_scans[s].conditioned && inc_scans[s].conditioned) {
      const CMat& a = *inc_scans[s].conditioned;
      const CMat& b = *leg_scans[s].conditioned;
      ASSERT_EQ(a.rows(), b.rows());
      ASSERT_EQ(a.cols(), b.cols());
      for (std::size_t i = 0; i < a.data().size(); ++i) {
        ASSERT_EQ(a.data()[i], b.data()[i]);
      }
    }
    auto run_commit = [&](auto& rx, const StreamingReceiver::Scan& scan) {
      std::vector<std::optional<ReceivedPacket>> processed(
          scan.candidates.size());
      for (std::size_t i = 0; i < scan.candidates.size(); ++i) {
        const auto& cand = scan.candidates[i];
        if (cand.absolute_start < rx.emit_watermark()) continue;
        processed[i] =
            rig.ap.demodulate(*scan.conditioned, cand.detection);
      }
      return rx.commit(scan, std::move(processed),
                       s + 1 == inc_scans.size());
    };
    expect_packets_bit_identical(run_commit(incremental, inc_scans[s]),
                                 run_commit(legacy, leg_scans[s]));
  }
}

TEST(Streaming, ScratchDemodulateBitIdentical) {
  // The per-worker FrameScratch path must produce bit-identical packets
  // to the allocating path — including when the scratch is dirty from a
  // previous, larger frame.
  StreamRig rig;
  StreamingReceiver rx(rig.ap);
  const CMat cap = rig.capture(500, 9);
  auto scan = rx.scan(&cap);
  ASSERT_FALSE(scan.candidates.empty());
  AccessPoint::FrameScratch scratch;
  scratch.aligned.assign(9000, cd{1.0, -1.0});  // dirty, oversized
  scratch.sub.resize(8, CMat(8, 977));
  for (const auto& cand : scan.candidates) {
    const auto plain = rig.ap.demodulate(*scan.conditioned, cand.detection);
    const auto reused =
        rig.ap.demodulate(*scan.conditioned, cand.detection, &scratch);
    const auto again =  // scratch now dirty from this very frame
        rig.ap.demodulate(*scan.conditioned, cand.detection, &scratch);
    ASSERT_EQ(plain.has_value(), reused.has_value());
    ASSERT_EQ(plain.has_value(), again.has_value());
    if (!plain) continue;
    for (const auto* p : {&*reused, &*again}) {
      EXPECT_EQ(p->bearing_array_deg, plain->bearing_array_deg);
      ASSERT_EQ(p->phy.has_value(), plain->phy.has_value());
      if (plain->phy) EXPECT_EQ(p->phy->psdu, plain->phy->psdu);
      ASSERT_EQ(p->signature.spectrum().size(),
                plain->signature.spectrum().size());
      for (std::size_t i = 0; i < plain->signature.spectrum().size(); ++i) {
        ASSERT_EQ(p->signature.spectrum().values()[i],
                  plain->signature.spectrum().values()[i]);
      }
    }
  }
}

TEST(Streaming, ScratchPrepareBitIdenticalWideband) {
  // Wideband (subbands = 4): the scratch path reuses the subband
  // snapshot matrices and FFT window across frames; the per-band
  // covariance contexts must come out bit-identical.
  Rng rng(77);
  AccessPointConfig cfg;
  cfg.subbands = 4;
  AccessPoint ap(cfg, rng);
  ChannelSimulator sim([] {
    ChannelConfig ch;
    ch.noise_power = 1e-6;
    return ch;
  }());
  RayTracer tracer;
  Floorplan empty;
  const auto paths = tracer.trace({12.0, 0.0}, {0.0, 0.0}, empty);
  const Frame f = Frame::data(MacAddress::from_index(1),
                              MacAddress::from_index(2), Bytes{7, 7}, 0);
  const CVec wave = PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
  const CMat rx = sim.propagate(wave, paths, ap.placement(), rng);
  const CMat conditioned = ap.condition(rx);
  const auto dets = ap.detect(conditioned);
  ASSERT_FALSE(dets.empty());

  AccessPoint::FrameScratch scratch;
  for (int pass = 0; pass < 2; ++pass) {  // second pass: dirty scratch
    const auto plain = ap.prepare(conditioned, dets[0]);
    const auto reused = ap.prepare(conditioned, dets[0], &scratch);
    ASSERT_EQ(plain.has_value(), reused.has_value());
    if (!plain) continue;
    ASSERT_EQ(reused->bands.size(), plain->bands.size());
    ASSERT_EQ(plain->bands.size(), 4u);
    for (std::size_t b = 0; b < plain->bands.size(); ++b) {
      const CMat& ra = reused->bands[b].covariance();
      const CMat& rb = plain->bands[b].covariance();
      ASSERT_EQ(ra.rows(), rb.rows());
      for (std::size_t i = 0; i < ra.data().size(); ++i) {
        ASSERT_EQ(ra.data()[i], rb.data()[i]);
      }
      EXPECT_EQ(reused->bands[b].lambda_m(), plain->bands[b].lambda_m());
    }
    ASSERT_EQ(reused->phy.has_value(), plain->phy.has_value());
    if (plain->phy) EXPECT_EQ(reused->phy->psdu, plain->phy->psdu);
  }
}

TEST(Streaming, ConditionColsBitIdenticalToFullCondition) {
  StreamRig rig;
  const CMat cap = rig.capture(300, 2);
  // Condition the capture in ragged column slices through a ring...
  ColumnRing ring(cap.rows());
  std::size_t done = 0;
  const std::size_t cuts[] = {1, 137, 512, 63};
  std::size_t i = 0;
  while (done < cap.cols()) {
    const std::size_t end = std::min(done + cuts[i++ % 4], cap.cols());
    ring.append(StreamRig::columns(cap, done, end));
    rig.ap.condition_cols(ring, done, end);
    done = end;
  }
  // ...and against one whole-buffer pass.
  const CMat full = rig.ap.condition(cap);
  CMat snap;
  ring.materialize(snap);
  ASSERT_EQ(snap.cols(), full.cols());
  for (std::size_t t = 0; t < full.data().size(); ++t) {
    ASSERT_EQ(snap.data()[t], full.data()[t]);
  }
  // condition_inplace agrees with condition().
  CMat inplace = cap;
  rig.ap.condition_inplace(inplace);
  for (std::size_t t = 0; t < full.data().size(); ++t) {
    ASSERT_EQ(inplace.data()[t], full.data()[t]);
  }
}

TEST(Streaming, ScanRecordsAbsoluteCoordinates) {
  StreamRig rig;
  StreamingReceiver rx(rig.ap);
  const CMat cap = rig.capture(300, 0);
  auto s1 = rx.scan(&cap);
  EXPECT_EQ(s1.base, 0u);
  EXPECT_EQ(s1.prev_seen, 0u);
  EXPECT_EQ(s1.seen, cap.cols());
  std::vector<std::optional<ReceivedPacket>> processed(s1.candidates.size());
  for (std::size_t i = 0; i < s1.candidates.size(); ++i) {
    processed[i] = rig.ap.demodulate(*s1.conditioned, s1.candidates[i].detection);
  }
  rx.commit(s1, std::move(processed), false);
  auto s2 = rx.scan(&cap);
  EXPECT_EQ(s2.prev_seen, cap.cols());
  EXPECT_EQ(s2.seen, 2 * cap.cols());
  EXPECT_EQ(s2.base + (s2.conditioned ? s2.conditioned->cols() : 0),
            s2.seen);
}

}  // namespace
}  // namespace sa
