// Fleet-tier tests: FleetWire round-trip and total decode, fleet
// header round-trip, the handoff state machine (generation guard,
// stale/malformed/bad-site rejection, handoff under a backpressured
// pipeline), cross-thread/cross-site determinism of recorded fleet
// captures, fleet replay at several thread counts, the roaming
// scenario's shape, and the acceptance oracle: a roaming client's
// post-handoff decisions must be byte-identical to a single session
// that never split the state at all.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "sa/capture/format.hpp"
#include "sa/capture/reader.hpp"
#include "sa/capture/writer.hpp"
#include "sa/engine/session.hpp"
#include "sa/fleet/coordinator.hpp"
#include "sa/fleet/replay.hpp"
#include "sa/fleet/wire.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/packet.hpp"
#include "sa/sim/deployment.hpp"
#include "sa/sim/scenario.hpp"

namespace sa {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "fleet_" + name + ".sacp";
}

TrackerSnapshot sample_snapshot() {
  TrackerSnapshot snap;
  snap.trained = true;
  snap.training_seen = 12;
  snap.observations = 40;
  snap.mismatches = 3;
  TrackerSnapshot::Band band;
  for (int i = 0; i < 32; ++i) {
    band.angles_deg.push_back(-180.0 + 360.0 * i / 32.0);
    band.values.push_back(0.25 + 0.01 * i);
  }
  band.wraps = true;
  snap.bands.push_back(band);
  return snap;
}

FleetClientState sample_state() {
  FleetClientState msg;
  msg.mac = MacAddress::from_index(42);
  msg.generation = 7;
  msg.source_site = 1;
  msg.dest_site = 2;
  msg.state.tracker = sample_snapshot();
  msg.state.acl_allowed = true;
  msg.state.rate_in_window = 5;
  return msg;
}

// ------------------------------------------------------------ FleetWire

TEST(FleetWire, RoundTripsFullState) {
  const FleetClientState msg = sample_state();
  const ByteStream wire = encode_client_state(msg);
  const auto back = decode_client_state(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->mac, msg.mac);
  EXPECT_EQ(back->generation, 7u);
  EXPECT_EQ(back->source_site, 1u);
  EXPECT_EQ(back->dest_site, 2u);
  ASSERT_TRUE(back->state.tracker.has_value());
  EXPECT_EQ(back->state.tracker->observations, 40u);
  ASSERT_EQ(back->state.tracker->bands.size(), 1u);
  EXPECT_EQ(back->state.tracker->bands[0].angles_deg,
            msg.state.tracker->bands[0].angles_deg);
  EXPECT_EQ(back->state.tracker->bands[0].values,
            msg.state.tracker->bands[0].values);
  ASSERT_TRUE(back->state.acl_allowed.has_value());
  EXPECT_TRUE(*back->state.acl_allowed);
  ASSERT_TRUE(back->state.rate_in_window.has_value());
  EXPECT_EQ(*back->state.rate_in_window, 5u);
}

TEST(FleetWire, RoundTripsEmptyState) {
  FleetClientState msg;
  msg.mac = MacAddress::from_index(1);
  msg.generation = 2;
  msg.dest_site = 1;
  const auto back = decode_client_state(encode_client_state(msg));
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->state.tracker.has_value());
  EXPECT_FALSE(back->state.acl_allowed.has_value());
  EXPECT_FALSE(back->state.rate_in_window.has_value());
}

TEST(FleetWire, RejectsStructuralDamage) {
  const ByteStream wire = encode_client_state(sample_state());
  // Empty / truncated at every prefix length.
  EXPECT_FALSE(decode_client_state(ByteStream{}).has_value());
  for (std::size_t len = 0; len < wire.size(); len += 7) {
    const ByteStream cut(wire.begin(), wire.begin() + len);
    EXPECT_FALSE(decode_client_state(cut).has_value()) << "len=" << len;
  }
  // Trailing garbage.
  ByteStream extended = wire;
  extended.push_back(0);
  EXPECT_FALSE(decode_client_state(extended).has_value());
  // Wrong magic / version / type.
  ByteStream bad = wire;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(decode_client_state(bad).has_value());
  bad = wire;
  bad[4] = 99;
  EXPECT_FALSE(decode_client_state(bad).has_value());
  bad = wire;
  bad[8] = 77;
  EXPECT_FALSE(decode_client_state(bad).has_value());
  // Reserved flag bit. The flags word sits after the 16-byte message
  // framing and the 6 + 8 + 4 + 4 byte payload prefix.
  bad = wire;
  bad[16 + 22] |= 0x80;
  EXPECT_FALSE(decode_client_state(bad).has_value());
}

TEST(FleetWire, FuzzedMessagesNeverCrash) {
  const ByteStream wire = encode_client_state(sample_state());
  std::size_t decoded = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const ByteStream mutant = mutate_capture(wire, seed, 6);
    if (decode_client_state(mutant)) ++decoded;  // valid or nullopt, never UB
  }
  // The loop passing *is* the assertion; the count only documents that
  // some mutants stay decodable (mutations in value bytes).
  EXPECT_LE(decoded, 200u);
}

// ---------------------------------------------------------- fleet header

TEST(FleetHeader, RoundTripsSpec) {
  FleetSpec spec;
  spec.site.seed = 11;
  spec.site.num_aps = 4;
  spec.site.antennas = 4;
  spec.num_sites = 8;
  spec.site_seed_stride = 3;
  const CaptureHeader header = fleet_header_for(spec);
  EXPECT_EQ(header.version, kSacpVersionFleet);
  EXPECT_EQ(header.num_aps, 32u);
  const auto back = fleet_from_header(header);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_sites, 8u);
  EXPECT_EQ(back->site_seed_stride, 3u);
  EXPECT_EQ(back->site.seed, 11u);
  EXPECT_EQ(back->site.num_aps, 4u);
  EXPECT_EQ(back->site.antennas, 4u);
}

TEST(FleetHeader, RejectsNonFleetAndBadShape) {
  DeploymentSpec site;
  EXPECT_FALSE(fleet_from_header(capture_header_for(site)).has_value());
  FleetSpec spec;
  CaptureHeader header = fleet_header_for(spec);
  header.num_aps = 7;  // not divisible by num_sites = 2
  EXPECT_FALSE(fleet_from_header(header).has_value());
  header = fleet_header_for(spec);
  header.metadata.emplace_back("sa.fleet.sites", "0");
  // First value wins, so corrupt the original entry instead.
  for (auto& [key, value] : header.metadata) {
    if (key == "sa.fleet.sites") value = "zero";
  }
  EXPECT_FALSE(fleet_from_header(header).has_value());
}

// ------------------------------------------------------- handoff machine

FleetConfig small_fleet(std::size_t sites, std::size_t threads,
                        bool with_sim = false) {
  FleetConfig config;
  config.spec.site.num_aps = 2;
  config.spec.site.antennas = 4;
  config.spec.num_sites = sites;
  config.threads_per_site = threads;
  config.with_sim = with_sim;
  config.spoof_idle_frames = 0;
  return config;
}

TEST(FleetHandoff, GenerationGuardRejectsStaleAndReplays) {
  FleetCoordinator fleet(small_fleet(3, 1));
  const MacAddress mac = MacAddress::from_index(1);

  // First association homes the client, generation 1, no migration.
  auto first = fleet.notify_association(mac, 0);
  EXPECT_EQ(first.outcome, FleetImportOutcome::kApplied);
  EXPECT_FALSE(first.migrated);
  EXPECT_EQ(first.generation, 1u);
  EXPECT_EQ(fleet.home_site(mac), std::optional<std::uint32_t>(0));

  // Same-site re-association is a no-op.
  auto again = fleet.notify_association(mac, 0);
  EXPECT_FALSE(again.migrated);
  EXPECT_EQ(fleet.generation_of(mac), std::optional<std::uint64_t>(1));

  // Cross-site move migrates and bumps the generation.
  auto move = fleet.notify_association(mac, 1);
  EXPECT_EQ(move.outcome, FleetImportOutcome::kApplied);
  EXPECT_TRUE(move.migrated);
  EXPECT_EQ(move.generation, 2u);
  EXPECT_FALSE(move.wire.empty());
  EXPECT_EQ(fleet.home_site(mac), std::optional<std::uint32_t>(1));

  // Replaying the same wire message is stale: the generation guard
  // holds even though the bytes are perfectly well-formed.
  EXPECT_EQ(fleet.apply_handoff(move.wire), FleetImportOutcome::kStale);
  EXPECT_EQ(fleet.home_site(mac), std::optional<std::uint32_t>(1));

  // An older generation is stale too.
  FleetClientState old_state;
  old_state.mac = mac;
  old_state.generation = 1;
  old_state.dest_site = 2;
  EXPECT_EQ(fleet.apply_handoff(encode_client_state(old_state)),
            FleetImportOutcome::kStale);

  // A fresher externally produced message applies and moves the home.
  FleetClientState fresh;
  fresh.mac = mac;
  fresh.generation = 9;
  fresh.dest_site = 2;
  EXPECT_EQ(fleet.apply_handoff(encode_client_state(fresh)),
            FleetImportOutcome::kApplied);
  EXPECT_EQ(fleet.home_site(mac), std::optional<std::uint32_t>(2));
  EXPECT_EQ(fleet.generation_of(mac), std::optional<std::uint64_t>(9));

  // Malformed bytes and out-of-range sites are rejected, not UB.
  EXPECT_EQ(fleet.apply_handoff(ByteStream{1, 2, 3}),
            FleetImportOutcome::kMalformed);
  FleetClientState bad_site;
  bad_site.mac = mac;
  bad_site.generation = 20;
  bad_site.dest_site = 99;
  EXPECT_EQ(fleet.apply_handoff(encode_client_state(bad_site)),
            FleetImportOutcome::kBadSite);
  EXPECT_EQ(fleet.notify_association(mac, 99).outcome,
            FleetImportOutcome::kBadSite);

  const FleetStats& stats = fleet.stats();
  EXPECT_EQ(stats.handoffs_applied, 2u);  // the migration + the fresh apply
  EXPECT_EQ(stats.handoffs_stale, 2u);
  EXPECT_EQ(stats.handoffs_malformed, 1u);
  EXPECT_EQ(stats.handoffs_bad_site, 2u);
  fleet.close();
}

TEST(FleetHandoff, SurvivesBackpressuredPipelineAndDrain) {
  FleetConfig config = small_fleet(2, 2, /*with_sim=*/false);
  config.spec.site.num_aps = 3;
  FleetCoordinator fleet(config);

  // A real waveform source shared by both phases (stride-independent:
  // the chunks are what they are; this test is about pipeline safety,
  // not byte-identity).
  BuiltDeployment wavegen =
      build_deployment(site_spec(config.spec, 0), /*with_sim=*/true);
  const MacAddress mac = MacAddress::from_index(1);
  const Vec2 pos = wavegen.testbed.client(1).position;
  std::uint16_t seq = 0;
  auto next_round = [&]() {
    const Frame f =
        Frame::data(MacAddress::from_index(0xFF), mac, Bytes{1, 2, 3}, seq++);
    const CVec w = PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
    wavegen.sim->advance(0.05);
    return wavegen.sim->transmit(pos, w, nullptr);
  };

  fleet.notify_association(mac, 0);
  // Pile rounds into site 0 without draining, then hand off while the
  // pipeline is still chewing: notify_association must quiesce both
  // dataplanes itself.
  for (int i = 0; i < 10; ++i) fleet.submit_round(0, next_round());
  const auto hr = fleet.notify_association(mac, 1);
  EXPECT_EQ(hr.outcome, FleetImportOutcome::kApplied);
  EXPECT_TRUE(hr.migrated);
  for (int i = 0; i < 10; ++i) fleet.submit_round(1, next_round());
  fleet.drain_all();
  // Handoff straight after a drain (already quiescent) works too.
  EXPECT_EQ(fleet.notify_association(mac, 0).outcome,
            FleetImportOutcome::kApplied);
  EXPECT_EQ(fleet.decisions(0).size() + fleet.decisions(1).size(), 20u);
  fleet.close();
}

// ------------------------------------------------- roaming + determinism

/// The scenario-driver loop of `scenario_runner --fleet-sites`, in
/// miniature: roaming walkers, handoff on first sighting or site
/// change, one fleet capture out.
void record_roaming(const std::string& path, std::size_t sites,
                    std::size_t threads, double duration_s,
                    const std::string& fault_plan = "") {
  ScenarioConfig sc;
  sc.kind = ScenarioKind::kRoaming;
  sc.arrival_rate = 60.0;
  sc.duration_s = duration_s;
  sc.roaming_sites = sites;
  sc.roaming_fault_plan = fault_plan;

  FleetSpec spec;
  spec.site.num_aps = 2;
  spec.site.antennas = 4;
  spec.num_sites = sites;

  BuiltDeployment proto = build_deployment(site_spec(spec, 0), false);
  ScenarioGenerator gen(proto.testbed, sc, proto.traffic_rng,
                        spec.site.estimator);
  const std::uint64_t idle = roaming_idle_horizon_frames(sc);

  FaultPlan plan;
  if (!fault_plan.empty()) {
    const auto parsed = FaultPlan::parse(fault_plan);
    ASSERT_TRUE(parsed.has_value()) << fault_plan;
    plan = *parsed;
  }

  CaptureHeader header = fleet_header_for(spec);
  header.metadata.emplace_back("sa.fleet.spoof_idle", std::to_string(idle));
  if (plan.active()) {
    // Mirror the scenario_runner recipe: a lossy fleet capture is
    // version 3 and names its channel in the header, so replay rebuilds
    // the identical transport stack.
    header.version = kSacpVersionChaos;
    header.metadata.emplace_back("sa.fleet.fault_plan", plan.to_string());
  }
  CaptureWriter writer(path, std::move(header));

  FleetConfig config;
  config.spec = spec;
  config.threads_per_site = threads;
  config.with_sim = true;
  config.capture = &writer;
  config.spoof_idle_frames = static_cast<std::size_t>(idle);
  config.fault_plan = plan;
  FleetCoordinator fleet(config);

  std::uint16_t seq = 0;
  std::set<MacAddress> seen;
  while (auto ev = gen.next()) {
    for (std::size_t s = 0; s < fleet.num_sites(); ++s) {
      fleet.deployment(s).sim->advance(ev->dt_s);
    }
    if (seen.insert(ev->mac).second || ev->site_changed) {
      fleet.notify_association(ev->mac, ev->site);
    }
    const Frame f = Frame::data(MacAddress::from_index(0xFF), ev->mac,
                                Bytes{1, 2, 3}, seq++);
    const CVec w = PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
    fleet.submit_round(ev->site,
                       fleet.deployment(ev->site).sim->transmit(
                           ev->from, w, ev->pattern ? &*ev->pattern : nullptr));
  }
  fleet.drain_all();
  writer.close();
  fleet.close();
}

TEST(FleetRoaming, ScenarioEmitsCoherentSitesAndIsDeterministic) {
  ScenarioConfig sc;
  sc.kind = ScenarioKind::kRoaming;
  sc.arrival_rate = 200.0;
  sc.duration_s = 2.0;
  sc.roaming_sites = 4;
  ScenarioConfig defaults;
  defaults.kind = ScenarioKind::kRoaming;
  // defaults: 8 * 0.4s * 40/s
  EXPECT_EQ(roaming_idle_horizon_frames(defaults), 128u);

  BuiltDeployment proto = build_deployment(DeploymentSpec{}, false);
  ScenarioGenerator a(proto.testbed, sc, Rng(123), AoaBackend::kMusic);
  ScenarioGenerator b(proto.testbed, sc, Rng(123), AoaBackend::kMusic);
  std::size_t events = 0, moves = 0;
  while (auto ea = a.next()) {
    const auto eb = b.next();
    ASSERT_TRUE(eb.has_value());
    EXPECT_EQ(ea->mac, eb->mac);
    EXPECT_EQ(ea->site, eb->site);
    EXPECT_EQ(ea->site_changed, eb->site_changed);
    EXPECT_LT(ea->site, 4u);
    if (ea->site_changed) ++moves;
    ++events;
  }
  EXPECT_FALSE(b.next().has_value());
  EXPECT_GT(events, 100u);
  EXPECT_GT(moves, 0u);  // walkers really do cross site boundaries
}

TEST(FleetDeterminism, CapturesIdenticalAcrossThreadsAndSites) {
  for (const std::size_t sites : {2u, 4u}) {
    const std::string base =
        temp_path("det_s" + std::to_string(sites) + "_t1");
    record_roaming(base, sites, 1, 0.6);
    for (const std::size_t threads : {2u, 8u}) {
      const std::string other = temp_path(
          "det_s" + std::to_string(sites) + "_t" + std::to_string(threads));
      record_roaming(other, sites, threads, 0.6);
      auto ra = CaptureReader::from_file(base);
      auto rb = CaptureReader::from_file(other);
      ASSERT_TRUE(ra && rb);
      const CaptureDiff diff = diff_captures(*ra, *rb);
      EXPECT_TRUE(diff.equal) << "sites=" << sites << " threads=" << threads
                              << ": " << diff.detail;
      std::remove(other.c_str());
    }
    std::remove(base.c_str());
  }
}

TEST(FleetReplay, RoundTripsAtSeveralThreadCounts) {
  const std::string path = temp_path("replay");
  record_roaming(path, 2, 1, 0.6);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const FleetReplayResult result = replay_fleet_capture(path, threads);
    EXPECT_TRUE(result.ok) << "threads=" << threads << ": " << result.error;
    EXPECT_EQ(result.sites, 2u);
    EXPECT_GT(result.chunks_submitted, 0u);
    EXPECT_GT(result.decisions_checked, 0u);
  }
  // A truncated copy must fail cleanly.
  auto reader = CaptureReader::from_file(path);
  ASSERT_TRUE(reader.has_value());
  ByteStream cut(reader->bytes().begin(),
                 reader->bytes().begin() + reader->bytes().size() / 2);
  const FleetReplayResult bad = replay_fleet_capture(std::move(cut), 1);
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());
  std::remove(path.c_str());
}

// ------------------------------------------------------ lossy transport

/// A fault plan whose only effect is a non-default seed is not active:
/// the transport stack must stay pure loopback and the capture must be
/// byte-identical to one recorded with no plan at all — the version-2
/// compatibility guarantee.
TEST(FleetTransportCapture, InactivePlanRecordsIdenticalBytes) {
  const std::string plain = temp_path("quiet_none");
  const std::string seeded = temp_path("quiet_seeded");
  record_roaming(plain, 2, 1, 0.4);
  record_roaming(seeded, 2, 1, 0.4, "seed=9");
  auto ra = CaptureReader::from_file(plain);
  auto rb = CaptureReader::from_file(seeded);
  ASSERT_TRUE(ra && rb);
  ASSERT_TRUE(ra->header());
  EXPECT_EQ(ra->header()->version, kSacpVersionFleet);  // not chaos
  const CaptureDiff diff = diff_captures(*ra, *rb);
  EXPECT_TRUE(diff.equal) << diff.detail;
  std::remove(plain.c_str());
  std::remove(seeded.c_str());
}

/// A lossy roaming run is recorded deterministically at any dataplane
/// thread count, carries kTransport verdicts, and replays byte-for-byte
/// — the capture fixes the channel, not just the radio.
TEST(FleetTransportCapture, LossyRunIsDeterministicAndReplays) {
  const std::string kPlan =
      "seed=3,drop=0.15,dup=0.05,reorder=0.05,delay=0.05,corrupt=0.05";
  const std::string base = temp_path("lossy_t1");
  record_roaming(base, 2, 1, 0.6, kPlan);
  {
    auto reader = CaptureReader::from_file(base);
    ASSERT_TRUE(reader.has_value());
    ASSERT_TRUE(reader->header());
    EXPECT_EQ(reader->header()->version, kSacpVersionChaos);
    const ValidationReport report = reader->validate();
    EXPECT_TRUE(report.ok) << report.error;
  }
  for (const std::size_t threads : {2u, 8u}) {
    const std::string other =
        temp_path("lossy_t" + std::to_string(threads));
    record_roaming(other, 2, threads, 0.6, kPlan);
    auto ra = CaptureReader::from_file(base);
    auto rb = CaptureReader::from_file(other);
    ASSERT_TRUE(ra && rb);
    const CaptureDiff diff = diff_captures(*ra, *rb);
    EXPECT_TRUE(diff.equal) << "threads=" << threads << ": " << diff.detail;
    std::remove(other.c_str());
  }
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const FleetReplayResult result = replay_fleet_capture(base, threads);
    EXPECT_TRUE(result.ok) << "threads=" << threads << ": " << result.error;
  }
  // A capture whose fault plan is tampered with must fail to replay:
  // either outright (bad plan string) or because the transport verdicts
  // no longer match the recorded ones.
  {
    auto reader = CaptureReader::from_file(base);
    ASSERT_TRUE(reader.has_value());
    ByteStream bytes = reader->bytes();
    const std::string needle = "drop=0.15";
    const std::string swap = "drop=0.95";
    auto it = std::search(bytes.begin(), bytes.end(), needle.begin(),
                          needle.end());
    ASSERT_NE(it, bytes.end());
    std::copy(swap.begin(), swap.end(), it);
    const FleetReplayResult tampered =
        replay_fleet_capture(std::move(bytes), 1);
    EXPECT_FALSE(tampered.ok);
    EXPECT_FALSE(tampered.error.empty());
  }
  std::remove(base.c_str());
}

/// Forced total loss: the migration degrades to a cold start — the
/// destination owns the client at the bumped generation, the stranded
/// export can never be imported afterwards, and the source forgot the
/// client.
TEST(FleetTransportCapture, ColdStartDegradesGracefully) {
  FleetConfig config = small_fleet(2, 1);
  config.fault_plan.drop = 1.0;
  config.link.max_attempts = 2;
  config.link.rto_ticks = 2;
  FleetCoordinator fleet(config);
  const MacAddress mac = MacAddress::from_index(4);

  fleet.notify_association(mac, 0);
  const HandoffResult move = fleet.notify_association(mac, 1);
  EXPECT_EQ(move.outcome, FleetImportOutcome::kApplied);
  EXPECT_TRUE(move.migrated);
  EXPECT_EQ(move.transport, HandoffOutcome::kColdStart);
  EXPECT_EQ(move.attempts, 2u);
  EXPECT_EQ(fleet.home_site(mac), std::optional<std::uint32_t>(1));
  EXPECT_EQ(fleet.generation_of(mac), std::optional<std::uint64_t>(2));

  // The export that never arrived is stale by construction now.
  ASSERT_FALSE(move.wire.empty());
  EXPECT_EQ(fleet.apply_handoff(move.wire), FleetImportOutcome::kStale);

  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.cold_starts, 1u);
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.handoffs_stale, 1u);
  fleet.close();
}

/// The in-process chaos matrix: every fault kind, three seeds, full
/// convergence — the capture_tool `chaos` command's contract, asserted
/// where ctest can see it.
TEST(FleetTransportCapture, ChaosMatrixConverges) {
  const std::vector<std::string> plans = {
      "drop=0.25", "dup=0.2", "reorder=0.2", "corrupt=0.2",
      "drop=0.1,dup=0.1,reorder=0.1,corrupt=0.1"};
  const std::size_t kClients = 6, kMoves = 4, kSites = 3;
  for (const auto& text : plans) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      auto plan = FaultPlan::parse(text);
      ASSERT_TRUE(plan.has_value()) << text;
      plan->seed = seed;
      FleetConfig config = small_fleet(kSites, 1);
      config.fault_plan = *plan;
      FleetCoordinator fleet(config);
      for (std::size_t m = 0; m < kMoves; ++m) {
        for (std::size_t c = 0; c < kClients; ++c) {
          fleet.notify_association(
              MacAddress::from_index(static_cast<std::uint32_t>(c + 1)),
              static_cast<std::uint32_t>((c + m) % kSites));
        }
      }
      fleet.close();
      for (std::size_t c = 0; c < kClients; ++c) {
        const MacAddress mac =
            MacAddress::from_index(static_cast<std::uint32_t>(c + 1));
        EXPECT_EQ(fleet.home_site(mac),
                  std::optional<std::uint32_t>((c + kMoves - 1) % kSites))
            << text << " seed=" << seed << " client=" << c;
        EXPECT_EQ(fleet.generation_of(mac),
                  std::optional<std::uint64_t>(kMoves))
            << text << " seed=" << seed << " client=" << c;
      }
      const FleetStats stats = fleet.stats();
      EXPECT_EQ(stats.handoffs_malformed, 0u);
      EXPECT_EQ(stats.handoffs_bad_site, 0u);
      EXPECT_EQ(stats.cold_starts, stats.timeouts);
      EXPECT_GE(stats.handoffs_applied + stats.cold_starts,
                kClients * (kMoves - 1));
    }
  }
}

/// The home map rides the compact FlatLruMap substrate and reports its
/// footprint through FleetStats.
TEST(FleetTransportCapture, HomeMapFootprintIsAccounted) {
  FleetConfig config = small_fleet(2, 1);
  FleetCoordinator fleet(config);
  EXPECT_EQ(fleet.stats().home_clients, 0u);
  for (std::uint32_t c = 0; c < 48; ++c) {
    fleet.notify_association(MacAddress::from_index(c + 1), c % 2);
  }
  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.home_clients, 48u);
  EXPECT_GT(stats.home_map_bytes, 48 * (6 + 12));  // > keys + values raw
  fleet.close();
}

// ------------------------------------------------------------ the oracle

/// Acceptance: a client that roams site 0 -> site 1 must, after the
/// handoff, receive decisions byte-identical to a single session that
/// owned both sites' APs all along (sequence numbers normalized: the
/// fleet numbers per site, the oracle globally). Stride 0 makes the two
/// sites bit-identical deployments; silence rounds keep every AP's
/// round/sample clock aligned between the two worlds.
TEST(FleetOracle, PostHandoffDecisionsMatchSingleSession) {
  FleetSpec spec;
  spec.site.num_aps = 3;
  spec.site.antennas = 4;
  spec.site.policies = {PolicyKind::kAcl, PolicyKind::kSpoof,
                        PolicyKind::kFence};
  spec.num_sites = 2;
  spec.site_seed_stride = 0;  // bit-identical sites

  // Pre-synthesize every frame's waveform once; both worlds consume
  // copies of the same chunks.
  BuiltDeployment wavegen = build_deployment(site_spec(spec, 0), true);
  const MacAddress mac = MacAddress::from_index(1);
  const Vec2 pos = wavegen.testbed.client(1).position;
  const std::size_t k1 = 6, guard = 2, k2 = 6;
  std::uint16_t seq = 0;
  std::vector<std::vector<CMat>> frames;
  for (std::size_t i = 0; i < k1 + k2; ++i) {
    const Frame f =
        Frame::data(MacAddress::from_index(0xFF), mac, Bytes{1, 2, 3}, seq++);
    const CVec w = PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
    wavegen.sim->advance(0.05);
    frames.push_back(wavegen.sim->transmit(pos, w, nullptr));
  }
  auto silence_like = [](const std::vector<CMat>& round) {
    std::vector<CMat> s;
    for (const auto& c : round) s.emplace_back(c.rows(), c.cols());
    return s;
  };

  // --- fleet world ---
  FleetConfig config;
  config.spec = spec;
  config.threads_per_site = 1;
  config.spoof_idle_frames = 0;  // oracle configuration: no idle expiry
  FleetCoordinator fleet(config);
  fleet.notify_association(mac, 0);
  for (std::size_t i = 0; i < k1; ++i) {
    fleet.submit_round(0, frames[i]);
    fleet.submit_round(1, silence_like(frames[i]));
  }
  for (std::size_t g = 0; g < guard; ++g) {
    fleet.submit_round(0, silence_like(frames[k1 - 1]));
    fleet.submit_round(1, silence_like(frames[k1 - 1]));
  }
  const auto hr = fleet.notify_association(mac, 1);
  ASSERT_EQ(hr.outcome, FleetImportOutcome::kApplied);
  ASSERT_TRUE(hr.migrated);
  for (std::size_t j = 0; j < k2; ++j) {
    fleet.submit_round(1, frames[k1 + j]);
    fleet.submit_round(0, silence_like(frames[k1 + j]));
  }
  fleet.drain_all();

  // --- oracle world: one session over both sites' APs ---
  BuiltDeployment left = build_deployment(site_spec(spec, 0), false);
  BuiltDeployment right = build_deployment(site_spec(spec, 1), false);
  std::vector<AccessPoint*> aps = left.ap_ptrs;
  aps.insert(aps.end(), right.ap_ptrs.begin(), right.ap_ptrs.end());
  SessionConfig scfg;
  scfg.engine = left.engine;
  std::vector<EngineDecision> oracle;
  EngineSession session(scfg, aps,
                        [&](const EngineDecision& d) { oracle.push_back(d); });
  auto submit_oracle = [&](const std::vector<CMat>& active, bool at_left) {
    const std::vector<CMat> quiet = silence_like(active);
    for (std::size_t ap = 0; ap < 3; ++ap) {
      session.submit(ap, at_left ? active[ap] : quiet[ap]);
      session.submit(3 + ap, at_left ? quiet[ap] : active[ap]);
    }
  };
  for (std::size_t i = 0; i < k1; ++i) submit_oracle(frames[i], true);
  for (std::size_t g = 0; g < guard; ++g) {
    submit_oracle(silence_like(frames[k1 - 1]), true);
  }
  for (std::size_t j = 0; j < k2; ++j) submit_oracle(frames[k1 + j], false);
  session.drain();
  session.close();

  // --- compare, sequence-normalized ---
  const auto& site0 = fleet.decisions(0);
  const auto& site1 = fleet.decisions(1);
  ASSERT_EQ(site0.size(), k1);
  ASSERT_EQ(site1.size(), k2);
  ASSERT_EQ(oracle.size(), k1 + k2);
  auto canon = [](const EngineDecision& d) {
    return encode_decision(0, d.absolute_start, d.decision);
  };
  for (std::size_t i = 0; i < k1; ++i) {
    EXPECT_EQ(canon(site0[i]), canon(oracle[i])) << "pre-handoff frame " << i;
  }
  for (std::size_t j = 0; j < k2; ++j) {
    EXPECT_EQ(canon(site1[j]), canon(oracle[k1 + j]))
        << "post-handoff frame " << j;
  }
  // The spoof tracker really moved: the client trained at site 0, so
  // post-handoff frames must not be treated as a fresh, untrained MAC.
  ASSERT_TRUE(hr.wire.size() > 0);
  const auto shipped = decode_client_state(hr.wire);
  ASSERT_TRUE(shipped.has_value());
  EXPECT_TRUE(shipped->state.tracker.has_value());
  EXPECT_EQ(shipped->state.tracker->observations, k1);
  fleet.close();
}

}  // namespace
}  // namespace sa
