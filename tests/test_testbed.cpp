// Unit tests for sa_testbed: the Figure-4 office reconstruction and the
// uplink simulation harness.
#include <gtest/gtest.h>

#include <cmath>

#include "sa/common/angles.hpp"
#include "sa/common/error.hpp"
#include "sa/common/rng.hpp"
#include "sa/dsp/units.hpp"
#include "sa/testbed/office.hpp"
#include "sa/testbed/uplink.hpp"

namespace sa {
namespace {

TEST(Office, TwentyClients) {
  const auto tb = OfficeTestbed::figure4();
  EXPECT_EQ(tb.clients().size(), 20u);
  for (int id = 1; id <= 20; ++id) {
    EXPECT_EQ(tb.client(id).id, id);
  }
  EXPECT_THROW(tb.client(21), InvalidArgument);
  EXPECT_THROW(tb.client(0), InvalidArgument);
}

TEST(Office, RingClientsMatchClockBearings) {
  const auto tb = OfficeTestbed::figure4();
  // Ring clients 1..12 sit at 30-degree steps starting east.
  for (int id = 1; id <= 12; ++id) {
    const double expect = 30.0 * (id - 1);
    EXPECT_NEAR(angular_distance_deg(tb.ground_truth_bearing_deg(id), expect),
                0.0, 1e-9)
        << id;
  }
}

TEST(Office, AllClientsInsideBuilding) {
  const auto tb = OfficeTestbed::figure4();
  for (const auto& c : tb.clients()) {
    EXPECT_TRUE(tb.building_outline().contains(c.position)) << c.id;
  }
  EXPECT_TRUE(tb.building_outline().contains(tb.ap_position()));
}

TEST(Office, OutdoorPositionsOutsideBuilding) {
  const auto tb = OfficeTestbed::figure4();
  EXPECT_GE(tb.outdoor_positions().size(), 3u);
  for (const auto& p : tb.outdoor_positions()) {
    EXPECT_FALSE(tb.building_outline().contains(p));
  }
}

TEST(Office, PillarBlocksClient11) {
  const auto tb = OfficeTestbed::figure4();
  // The direct path to client 11 crosses the pillar (two faces).
  const double loss = tb.floorplan().penetration_loss_db(
      tb.ap_position(), tb.client(11).position);
  EXPECT_GE(loss, 25.0);
  // Client 1 has clear line of sight.
  EXPECT_TRUE(
      tb.floorplan().line_of_sight(tb.ap_position(), tb.client(1).position));
}

TEST(Office, Client6FarAndOccluded) {
  const auto tb = OfficeTestbed::figure4();
  const double d = distance(tb.ap_position(), tb.client(6).position);
  EXPECT_GT(d, 8.0);
  EXPECT_FALSE(
      tb.floorplan().line_of_sight(tb.ap_position(), tb.client(6).position));
}

TEST(Office, ExtraApsProvided) {
  const auto tb = OfficeTestbed::figure4();
  EXPECT_GE(tb.extra_ap_positions().size(), 2u);
  for (const auto& p : tb.extra_ap_positions()) {
    EXPECT_TRUE(tb.building_outline().contains(p));
  }
}

// ------------------------------------------------------------- tx pattern

TEST(TxPattern, OmniIsFlat) {
  TxPattern omni;
  omni.tx_power_db = 3.0;
  for (double b : {0.0, 90.0, 180.0, 271.0}) {
    EXPECT_NEAR(omni.gain_db(b), 3.0, 1e-12);
  }
}

TEST(TxPattern, DirectionalShapesGain) {
  TxPattern dir;
  dir.aim_azimuth_deg = 45.0;
  dir.beamwidth_deg = 30.0;
  dir.boresight_gain_db = 12.0;
  EXPECT_NEAR(dir.gain_db(45.0), 12.0, 1e-12);
  EXPECT_NEAR(dir.gain_db(75.0), 0.0, 1e-9);  // -12 dB at the edge
  // Backlobe floored.
  EXPECT_NEAR(dir.gain_db(225.0), 12.0 - 25.0, 1e-9);
  // Wrap-around handled: -315 == 45.
  EXPECT_NEAR(dir.gain_db(-315.0), 12.0, 1e-12);
}

// ---------------------------------------------------------------- uplink

UplinkConfig quiet_config() {
  UplinkConfig cfg;
  cfg.channel.noise_power = 0.0;
  return cfg;
}

TEST(Uplink, TransmitsToEveryAp) {
  Rng rng(1);
  const auto tb = OfficeTestbed::figure4();
  UplinkSimulation sim(tb, quiet_config(), rng);
  const auto geom = ArrayGeometry::octagon();
  sim.add_ap({geom, tb.ap_position(), 0.0});
  sim.add_ap({geom, tb.extra_ap_positions()[0], 0.0});
  EXPECT_EQ(sim.num_aps(), 2u);

  const CVec wave(256, cd{1.0, 0.0});
  const auto rx = sim.transmit(tb.client(1).position, wave);
  ASSERT_EQ(rx.size(), 2u);
  for (const auto& m : rx) {
    EXPECT_EQ(m.rows(), 8u);
    EXPECT_GE(m.cols(), wave.size());
    double p = 0.0;
    for (std::size_t t = 0; t < m.cols(); ++t) p += std::norm(m(0, t));
    EXPECT_GT(p, 0.0);
  }
}

TEST(Uplink, PathsAreCachedAndStable) {
  Rng rng(2);
  const auto tb = OfficeTestbed::figure4();
  UplinkSimulation sim(tb, quiet_config(), rng);
  sim.add_ap({ArrayGeometry::octagon(), tb.ap_position(), 0.0});
  const auto& p1 = sim.paths(tb.client(3).position, 0);
  const auto n = p1.size();
  EXPECT_GE(n, 2u);  // direct + reflections in a furnished office
  const auto& p2 = sim.paths(tb.client(3).position, 0);
  EXPECT_EQ(p2.size(), n);
  EXPECT_EQ(&p1, &p2);  // same cached link
}

TEST(Uplink, DirectPathBearingMatchesGroundTruth) {
  Rng rng(3);
  const auto tb = OfficeTestbed::figure4();
  UplinkSimulation sim(tb, quiet_config(), rng);
  sim.add_ap({ArrayGeometry::octagon(), tb.ap_position(), 0.0});
  // For an unblocked ring client the strongest path is the direct one,
  // arriving from the client's true azimuth.
  const auto& paths = sim.paths(tb.client(1).position, 0);
  ASSERT_FALSE(paths.empty());
  EXPECT_EQ(paths[0].num_reflections, 0);
  EXPECT_NEAR(angular_distance_deg(paths[0].arrival_bearing_deg,
                                   tb.ground_truth_bearing_deg(1)),
              0.0, 1e-6);
}

TEST(Uplink, Client11DirectHeavilyAttenuatedByPillar) {
  Rng rng(4);
  const auto tb = OfficeTestbed::figure4();
  UplinkSimulation sim(tb, quiet_config(), rng);
  sim.add_ap({ArrayGeometry::octagon(), tb.ap_position(), 0.0});
  const auto& paths = sim.paths(tb.client(11).position, 0);
  ASSERT_GE(paths.size(), 2u);
  // The direct path survives only as diffracted leakage around the
  // pillar: >= 10 dB below the free-space 1/d level, and now comparable
  // to — not dominant over — the strongest reflection.
  const PropagationPath* direct = nullptr;
  for (const auto& p : paths) {
    if (p.num_reflections == 0) direct = &p;
  }
  ASSERT_NE(direct, nullptr);
  const double free_space = 1.0 / direct->length_m;
  EXPECT_LT(std::abs(direct->gain), free_space / 3.16);  // >= 10 dB down
  EXPECT_LT(std::abs(paths[0].gain) / std::abs(direct->gain), 3.16);
}

TEST(Uplink, FadingEvolvesBetweenTransmissions) {
  Rng rng(5);
  const auto tb = OfficeTestbed::figure4();
  UplinkSimulation sim(tb, quiet_config(), rng);
  sim.add_ap({ArrayGeometry::octagon(), tb.ap_position(), 0.0});
  const CVec wave(128, cd{1.0, 0.0});
  const auto rx1 = sim.transmit(tb.client(2).position, wave);
  sim.advance(3600.0);  // one hour
  const auto rx2 = sim.transmit(tb.client(2).position, wave);
  // Steady-state samples differ after an hour of channel drift.
  double diff = 0.0;
  for (std::size_t t = 40; t < 100; ++t) {
    diff += std::abs(rx1[0](0, t) - rx2[0](0, t));
  }
  EXPECT_GT(diff, 1e-6);
}

TEST(Uplink, DirectionalPatternSuppressesReflections) {
  Rng rng(6);
  const auto tb = OfficeTestbed::figure4();
  // Attacker at an outdoor spot aims a directional antenna at the AP.
  UplinkSimulation sim(tb, quiet_config(), rng);
  sim.add_ap({ArrayGeometry::octagon(), tb.ap_position(), 0.0});
  const Vec2 attacker = tb.outdoor_positions()[0];
  const CVec wave(256, cd{1.0, 0.0});

  TxPattern beam;
  beam.aim_azimuth_deg = bearing_deg(attacker, tb.ap_position());
  beam.beamwidth_deg = 30.0;
  beam.boresight_gain_db = 12.0;

  const auto rx_omni = sim.transmit(attacker, wave);
  const auto rx_beam = sim.transmit(attacker, wave, &beam);
  // Boresight boost: received power rises with the beam.
  double p_omni = 0.0, p_beam = 0.0;
  for (std::size_t t = 0; t < rx_omni[0].cols(); ++t) {
    p_omni += std::norm(rx_omni[0](0, t));
  }
  for (std::size_t t = 0; t < rx_beam[0].cols(); ++t) {
    p_beam += std::norm(rx_beam[0](0, t));
  }
  EXPECT_GT(p_beam, p_omni * 2.0);
}

TEST(Office, ApMountingPointsScaleBeyondSurveyedSpots) {
  const auto tb = OfficeTestbed::figure4();
  // The first four are the surveyed mounts, best coverage first.
  const auto four = tb.ap_mounting_points(4);
  ASSERT_EQ(four.size(), 4u);
  EXPECT_EQ(four[0].x, tb.ap_position().x);
  EXPECT_EQ(four[0].y, tb.ap_position().y);
  const auto one = tb.ap_mounting_points(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].x, tb.ap_position().x);
  // Dense deployments: every mount sits inside the building, none
  // duplicated, and the layout is deterministic.
  const auto many = tb.ap_mounting_points(12);
  ASSERT_EQ(many.size(), 12u);
  for (const auto& p : many) {
    EXPECT_TRUE(tb.building_outline().contains(p))
        << p.x << "," << p.y;
  }
  for (std::size_t i = 0; i < many.size(); ++i) {
    for (std::size_t j = i + 1; j < many.size(); ++j) {
      EXPECT_GT(distance(many[i], many[j]), 0.5) << i << "," << j;
    }
  }
  const auto again = tb.ap_mounting_points(12);
  for (std::size_t i = 0; i < many.size(); ++i) {
    EXPECT_EQ(many[i].x, again[i].x);
    EXPECT_EQ(many[i].y, again[i].y);
  }
}

}  // namespace
}  // namespace sa
