// Unit tests for sa_phy: bits, scrambler, convolutional code, interleaver,
// modulation, OFDM symbols, Schmidl-Cox detection, full packet round trips.
#include <gtest/gtest.h>

#include <cmath>

#include "sa/common/constants.hpp"
#include "sa/common/error.hpp"
#include "sa/common/rng.hpp"
#include "sa/dsp/noise.hpp"
#include "sa/dsp/units.hpp"
#include "sa/phy/bits.hpp"
#include "sa/phy/convolutional.hpp"
#include "sa/phy/detector.hpp"
#include "sa/phy/incremental_detector.hpp"
#include "sa/phy/interleaver.hpp"
#include "sa/phy/modulation.hpp"
#include "sa/phy/ofdm.hpp"
#include "sa/phy/packet.hpp"
#include "sa/phy/scrambler.hpp"

namespace sa {
namespace {

Bytes random_bytes(std::size_t n, Rng& rng) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return out;
}

// ------------------------------------------------------------------ bits

TEST(Bits, ByteBitRoundTrip) {
  const Bytes bytes{0x00, 0xFF, 0xA5, 0x3C};
  const Bits bits = bytes_to_bits(bytes);
  ASSERT_EQ(bits.size(), 32u);
  // LSB-first: 0xA5 = 1010 0101 -> bits 1,0,1,0,0,1,0,1.
  EXPECT_EQ(bits[16], 1);
  EXPECT_EQ(bits[17], 0);
  EXPECT_EQ(bits[18], 1);
  EXPECT_EQ(bits[23], 1);
  EXPECT_EQ(bits_to_bytes(bits), bytes);
}

TEST(Bits, BitsToBytesRequiresMultipleOf8) {
  EXPECT_THROW(bits_to_bytes(Bits(7, 0)), InvalidArgument);
}

TEST(Bits, HammingDistance) {
  EXPECT_EQ(hamming_distance({0, 1, 1, 0}, {0, 1, 1, 0}), 0u);
  EXPECT_EQ(hamming_distance({0, 1, 1, 0}, {1, 0, 1, 0}), 2u);
  EXPECT_THROW(hamming_distance({0}, {0, 1}), InvalidArgument);
}

// ------------------------------------------------------------- scrambler

TEST(Scrambler, SelfInverse) {
  Rng rng(1);
  Bits data(200);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
  Scrambler tx(0x5D), rx(0x5D);
  const Bits scrambled = tx.process(data);
  const Bits back = rx.process(scrambled);
  EXPECT_EQ(back, data);
  EXPECT_NE(scrambled, data);  // it must actually scramble
}

TEST(Scrambler, KnownPrbsPeriod) {
  // Maximal-length LFSR with 7 bits: period 127.
  Scrambler s(0x7F);
  Bits first(127);
  for (auto& b : first) b = s.next_bit();
  Bits second(127);
  for (auto& b : second) b = s.next_bit();
  EXPECT_EQ(first, second);
  // Within one period the sequence is balanced: 64 ones, 63 zeros.
  std::size_t ones = 0;
  for (auto b : first) ones += b;
  EXPECT_EQ(ones, 64u);
}

TEST(Scrambler, RejectsZeroSeed) {
  EXPECT_THROW(Scrambler(0x00), InvalidArgument);
  EXPECT_THROW(Scrambler(0x80), InvalidArgument);  // 0x80 & 0x7F == 0
}

// ---------------------------------------------------------- convolutional

TEST(Convolutional, EncodeDoublesLength) {
  const Bits in(24, 1);
  const Bits out = convolutional_encode(in);
  EXPECT_EQ(out.size(), 48u);
}

TEST(Convolutional, CleanDecodeRoundTrip) {
  Rng rng(2);
  for (int rep = 0; rep < 10; ++rep) {
    Bits data(96);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
    // Tail-terminate like 802.11.
    for (std::size_t i = data.size() - 6; i < data.size(); ++i) data[i] = 0;
    const Bits coded = convolutional_encode(data);
    const Bits decoded = viterbi_decode(coded, data.size());
    EXPECT_EQ(decoded, data);
  }
}

TEST(Convolutional, CorrectsScatteredErrors) {
  Rng rng(3);
  Bits data(240, 0);
  for (std::size_t i = 0; i < data.size() - 6; ++i) {
    data[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
  }
  Bits coded = convolutional_encode(data);
  // Flip well-separated bits (beyond free distance apart).
  for (std::size_t pos = 10; pos + 40 < coded.size(); pos += 40) {
    coded[pos] ^= 1u;
  }
  const Bits decoded = viterbi_decode(coded, data.size());
  EXPECT_EQ(decoded, data);
}

TEST(Convolutional, PuncturedRates) {
  Rng rng(4);
  for (CodeRate rate : {CodeRate::kRate2_3, CodeRate::kRate3_4}) {
    Bits data(216, 0);
    for (std::size_t i = 0; i < data.size() - 6; ++i) {
      data[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
    }
    const Bits coded = convolutional_encode(data, rate);
    EXPECT_EQ(coded.size(), coded_length(data.size(), rate));
    const Bits decoded = viterbi_decode(coded, data.size(), rate);
    EXPECT_EQ(decoded, data);
  }
}

TEST(Convolutional, CodedLengthValues) {
  EXPECT_EQ(coded_length(24, CodeRate::kRate1_2), 48u);
  EXPECT_EQ(coded_length(36, CodeRate::kRate3_4), 48u);
  EXPECT_EQ(coded_length(192, CodeRate::kRate2_3), 288u);
}

// ------------------------------------------------------------ interleaver

TEST(Interleaver, RoundTripAllRates) {
  Rng rng(5);
  const struct {
    std::size_t n_cbps, n_bpsc;
  } cases[] = {{48, 1}, {96, 2}, {192, 4}, {288, 6}};
  for (const auto& c : cases) {
    Bits bits(c.n_cbps);
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
    const Bits inter = interleave(bits, c.n_cbps, c.n_bpsc);
    EXPECT_EQ(deinterleave(inter, c.n_cbps, c.n_bpsc), bits);
    EXPECT_NE(inter, bits);  // permutation is nontrivial
  }
}

TEST(Interleaver, IsPermutation) {
  // Interleaving a one-hot vector must keep exactly one bit set.
  for (std::size_t k = 0; k < 48; k += 7) {
    Bits bits(48, 0);
    bits[k] = 1;
    const Bits inter = interleave(bits, 48, 1);
    std::size_t ones = 0;
    for (auto b : inter) ones += b;
    EXPECT_EQ(ones, 1u);
  }
}

TEST(Interleaver, SpreadsAdjacentBits) {
  // Adjacent coded bits must land at least a few subcarriers apart.
  Bits a(192, 0), b(192, 0);
  a[0] = 1;
  b[1] = 1;
  const Bits ia = interleave(a, 192, 4);
  const Bits ib = interleave(b, 192, 4);
  std::size_t pa = 0, pb = 0;
  for (std::size_t i = 0; i < 192; ++i) {
    if (ia[i]) pa = i;
    if (ib[i]) pb = i;
  }
  EXPECT_GT((pa > pb ? pa - pb : pb - pa), 4u);
}

// ------------------------------------------------------------- modulation

class ModulationRoundTrip : public ::testing::TestWithParam<Modulation> {};

TEST_P(ModulationRoundTrip, CleanRoundTrip) {
  const Modulation m = GetParam();
  Rng rng(6);
  const std::size_t bps = bits_per_symbol(m);
  Bits bits(bps * 100);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
  const CVec syms = modulate(bits, m);
  EXPECT_EQ(syms.size(), 100u);
  EXPECT_EQ(demodulate(syms, m), bits);
}

TEST_P(ModulationRoundTrip, UnitAveragePower) {
  const Modulation m = GetParam();
  Rng rng(7);
  const std::size_t bps = bits_per_symbol(m);
  Bits bits(bps * 6000);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
  const CVec syms = modulate(bits, m);
  EXPECT_NEAR(mean_power(syms), 1.0, 0.05);
}

TEST_P(ModulationRoundTrip, SurvivesSmallNoise) {
  const Modulation m = GetParam();
  Rng rng(8);
  const std::size_t bps = bits_per_symbol(m);
  Bits bits(bps * 200);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
  CVec syms = modulate(bits, m);
  // Perturb by less than half the minimum distance: zero errors expected.
  const double margin = min_distance(m) * 0.4;
  for (auto& s : syms) {
    s += cd{margin * (rng.uniform() - 0.5), margin * (rng.uniform() - 0.5)};
  }
  EXPECT_EQ(demodulate(syms, m), bits);
}

INSTANTIATE_TEST_SUITE_P(AllModulations, ModulationRoundTrip,
                         ::testing::Values(Modulation::kBpsk, Modulation::kQpsk,
                                           Modulation::kQam16,
                                           Modulation::kQam64));

// ------------------------------------------------------------------ ofdm

TEST(Ofdm, CarrierPlan) {
  EXPECT_EQ(data_carriers().size(), 48u);
  for (int k : data_carriers()) {
    EXPECT_NE(k, 0);
    EXPECT_LE(std::abs(k), 26);
    for (int p : pilot_carriers()) EXPECT_NE(k, p);
  }
  EXPECT_EQ(carrier_to_bin(1), 1u);
  EXPECT_EQ(carrier_to_bin(-1), 63u);
  EXPECT_EQ(carrier_to_bin(-26), 38u);
}

TEST(Ofdm, StfIsPeriodic16) {
  const CVec stf = short_training_field();
  ASSERT_EQ(stf.size(), kStfLen);
  for (std::size_t i = 0; i + 16 < stf.size(); ++i) {
    EXPECT_NEAR(std::abs(stf[i] - stf[i + 16]), 0.0, 1e-12);
  }
}

TEST(Ofdm, LtfHasTwoIdenticalPeriods) {
  const CVec ltf = long_training_field();
  ASSERT_EQ(ltf.size(), kLtfLen);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(std::abs(ltf[32 + i] - ltf[96 + i]), 0.0, 1e-12);
  }
  // CP is the tail of the period.
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_NEAR(std::abs(ltf[i] - ltf[96 + 32 + i]), 0.0, 1e-12);
  }
}

TEST(Ofdm, SymbolRoundTripIdealChannel) {
  Rng rng(9);
  Bits bits(96);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
  const CVec data = modulate(bits, Modulation::kQpsk);
  const CVec td = ofdm_modulate_symbol(data, 3);
  ASSERT_EQ(td.size(), kSymbolLen);
  // Ideal channel: all-ones estimate on active bins.
  CVec channel(kFftSize, cd{0.0, 0.0});
  for (int k = -26; k <= 26; ++k) {
    if (k != 0) channel[carrier_to_bin(k)] = cd{1.0, 0.0};
  }
  const CVec eq = ofdm_demodulate_symbol(td, channel, 3);
  EXPECT_EQ(demodulate(eq, Modulation::kQpsk), bits);
}

TEST(Ofdm, CyclicPrefixIsTail) {
  Rng rng(10);
  Bits bits(48);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
  const CVec td = ofdm_modulate_symbol(modulate(bits, Modulation::kBpsk), 0);
  for (std::size_t i = 0; i < kCpLen; ++i) {
    EXPECT_NEAR(std::abs(td[i] - td[kFftSize + i]), 0.0, 1e-12);
  }
}

TEST(Ofdm, ChannelEstimateRecoversFlatGain) {
  const CVec ltf = long_training_field();
  const cd gain{0.5, -0.8};
  CVec p1(64), p2(64);
  for (std::size_t i = 0; i < 64; ++i) {
    p1[i] = ltf[32 + i] * gain;
    p2[i] = ltf[96 + i] * gain;
  }
  // The estimate absorbs the transmit-side time scale: h = scale * gain.
  const CVec h = estimate_channel_from_ltf(p1, p2);
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    EXPECT_NEAR(std::abs(h[carrier_to_bin(k)] - gain * kOfdmTimeScale), 0.0,
                1e-9);
  }
}

TEST(Ofdm, TransmitWaveformUnitPower) {
  // The normalization constant must give ~unit mean TX power so the
  // channel's path-loss arithmetic is meaningful.
  Rng rng(99);
  const Bytes psdu = [&] {
    Bytes b(200);
    for (auto& x : b) x = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    return b;
  }();
  const PacketTransmitter tx(PhyRate::k12Mbps);
  const CVec wave = tx.transmit(psdu);
  EXPECT_NEAR(mean_power(wave), 1.0, 0.15);
  EXPECT_NEAR(mean_power(short_training_field()), 1.0, 1e-9);
  // LTF: 52 unit carriers -> exactly unit power per period.
  EXPECT_NEAR(mean_power(ltf_period()), 1.0, 1e-9);
}

TEST(Ofdm, PilotPolarityCycles) {
  EXPECT_EQ(pilot_polarity(0), 1.0);
  EXPECT_EQ(pilot_polarity(127), pilot_polarity(0));
  EXPECT_EQ(pilot_polarity(130), pilot_polarity(3));
}

// -------------------------------------------------------------- detector

CVec build_burst(const Bytes& psdu, PhyRate rate, std::size_t lead_noise,
                 double snr_db, Rng& rng) {
  const PacketTransmitter tx(rate);
  CVec wave = tx.transmit(psdu);
  CVec burst = awgn(lead_noise, mean_power(wave) / from_db(snr_db), rng);
  burst.insert(burst.end(), wave.begin(), wave.end());
  const CVec tail = awgn(400, mean_power(wave) / from_db(snr_db), rng);
  burst.insert(burst.end(), tail.begin(), tail.end());
  return burst;
}

TEST(Detector, FindsPacketStartExactly) {
  Rng rng(11);
  const Bytes psdu = random_bytes(64, rng);
  CVec burst = build_burst(psdu, PhyRate::k6Mbps, 1000, 20.0, rng);
  const SchmidlCoxDetector det;
  const auto hits = det.detect(burst);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].start, 1000u);
  EXPECT_GT(hits[0].metric, 0.8);
  EXPECT_GT(hits[0].fine_peak, 0.8);
}

TEST(Detector, EstimatesCfo) {
  Rng rng(12);
  const Bytes psdu = random_bytes(40, rng);
  const PacketTransmitter tx(PhyRate::k6Mbps);
  CVec wave = tx.transmit(psdu);
  const double true_cfo = 43e3;  // ~18 ppm at 2.4 GHz
  apply_cfo(wave, true_cfo, 20e6);
  CVec burst = awgn(600, mean_power(wave) / from_db(25.0), rng);
  burst.insert(burst.end(), wave.begin(), wave.end());
  const SchmidlCoxDetector det;
  const auto hit = det.detect_first(burst);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->cfo_hz, true_cfo, 2e3);
}

TEST(Detector, NoFalseAlarmOnNoise) {
  Rng rng(13);
  const CVec noise = awgn(20000, 1.0, rng);
  const SchmidlCoxDetector det;
  EXPECT_TRUE(det.detect(noise).empty());
}

TEST(Detector, FindsMultiplePackets) {
  Rng rng(14);
  const Bytes psdu = random_bytes(32, rng);
  const PacketTransmitter tx(PhyRate::k12Mbps);
  const CVec wave = tx.transmit(psdu);
  const double npow = mean_power(wave) / from_db(20.0);
  CVec burst = awgn(500, npow, rng);
  std::vector<std::size_t> starts;
  for (int i = 0; i < 3; ++i) {
    starts.push_back(burst.size());
    burst.insert(burst.end(), wave.begin(), wave.end());
    const CVec gap = awgn(700, npow, rng);
    burst.insert(burst.end(), gap.begin(), gap.end());
  }
  const SchmidlCoxDetector det;
  const auto hits = det.detect(burst);
  ASSERT_EQ(hits.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(hits[i].start, starts[i]);
  }
}

TEST(Detector, LowSnrStillDetects) {
  Rng rng(15);
  const Bytes psdu = random_bytes(64, rng);
  CVec burst = build_burst(psdu, PhyRate::k6Mbps, 800, 5.0, rng);
  const SchmidlCoxDetector det;
  const auto hit = det.detect_first(burst);
  ASSERT_TRUE(hit.has_value());
  // Timing within a couple of samples at 5 dB.
  EXPECT_NEAR(static_cast<double>(hit->start), 800.0, 2.0);
}

// ---------------------------------------------------------------- packet

TEST(Packet, RateTable) {
  EXPECT_EQ(rate_info(PhyRate::k6Mbps).n_dbps, 24u);
  EXPECT_EQ(rate_info(PhyRate::k54Mbps).n_dbps, 216u);
  EXPECT_EQ(rate_from_signal_bits(0x0B), PhyRate::k6Mbps);
  EXPECT_EQ(rate_from_signal_bits(0x0C), PhyRate::k54Mbps);
  EXPECT_FALSE(rate_from_signal_bits(0x00).has_value());
}

class PacketRoundTrip : public ::testing::TestWithParam<PhyRate> {};

TEST_P(PacketRoundTrip, CleanChannel) {
  Rng rng(16 + static_cast<int>(GetParam()));
  const Bytes psdu = random_bytes(100, rng);
  const PacketTransmitter tx(GetParam());
  const CVec wave = tx.transmit(psdu);
  const PacketReceiver receiver;
  const auto decoded = receiver.decode(wave);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->psdu, psdu);
  EXPECT_EQ(decoded->rate, GetParam());
  EXPECT_EQ(decoded->length, psdu.size());
  EXPECT_LT(decoded->evm_rms, 1e-6);
}

TEST_P(PacketRoundTrip, ModerateNoise) {
  Rng rng(24 + static_cast<int>(GetParam()));
  const Bytes psdu = random_bytes(60, rng);
  const PacketTransmitter tx(GetParam());
  CVec wave = tx.transmit(psdu);
  add_awgn_snr(wave, 30.0, rng);
  const PacketReceiver receiver;
  const auto decoded = receiver.decode(wave);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->psdu, psdu);
}

INSTANTIATE_TEST_SUITE_P(AllRates, PacketRoundTrip,
                         ::testing::Values(PhyRate::k6Mbps, PhyRate::k9Mbps,
                                           PhyRate::k12Mbps, PhyRate::k18Mbps,
                                           PhyRate::k24Mbps, PhyRate::k36Mbps,
                                           PhyRate::k48Mbps, PhyRate::k54Mbps));

TEST(Packet, RobustRateAtLowSnr) {
  Rng rng(40);
  const Bytes psdu = random_bytes(60, rng);
  const PacketTransmitter tx(PhyRate::k6Mbps);
  CVec wave = tx.transmit(psdu);
  add_awgn_snr(wave, 12.0, rng);
  const PacketReceiver receiver;
  const auto decoded = receiver.decode(wave);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->psdu, psdu);
  EXPECT_GT(decoded->evm_rms, 0.01);  // noise should show up in EVM
}

TEST(Packet, FlatFadingChannelGainIsEqualized) {
  Rng rng(41);
  const Bytes psdu = random_bytes(80, rng);
  const PacketTransmitter tx(PhyRate::k24Mbps);
  CVec wave = tx.transmit(psdu);
  // Complex flat channel gain + mild noise.
  const cd gain = cd{0.3, 0.7};
  for (auto& s : wave) s *= gain;
  add_awgn_snr(wave, 28.0, rng);
  const PacketReceiver receiver;
  const auto decoded = receiver.decode(wave);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->psdu, psdu);
}

TEST(Packet, TruncatedBufferRejected) {
  Rng rng(42);
  const Bytes psdu = random_bytes(200, rng);
  const PacketTransmitter tx(PhyRate::k6Mbps);
  const CVec wave = tx.transmit(psdu);
  const CVec cut(wave.begin(), wave.begin() + static_cast<std::ptrdiff_t>(wave.size() / 2));
  const PacketReceiver receiver;
  EXPECT_FALSE(receiver.decode(cut).has_value());
}

TEST(Packet, GarbageRejected) {
  Rng rng(43);
  const CVec junk = awgn(4000, 1.0, rng);
  const PacketReceiver receiver;
  EXPECT_FALSE(receiver.decode(junk).has_value());
}

TEST(Packet, NumDataSymbolsMatchesWaveform) {
  const PacketTransmitter tx(PhyRate::k12Mbps);
  for (std::size_t len : {1u, 13u, 100u, 1000u}) {
    Rng rng(44);
    const Bytes psdu = random_bytes(len, rng);
    const CVec wave = tx.transmit(psdu);
    const std::size_t expect_len =
        kPreambleLen + kSymbolLen * (1 + tx.num_data_symbols(len));
    EXPECT_EQ(wave.size(), expect_len);
  }
}

TEST(Packet, DifferentScramblerSeedsSamePayload) {
  Rng rng(45);
  const Bytes psdu = random_bytes(50, rng);
  const PacketTransmitter tx1(PhyRate::k6Mbps, 0x5D);
  const PacketTransmitter tx2(PhyRate::k6Mbps, 0x33);
  const CVec w1 = tx1.transmit(psdu);
  const CVec w2 = tx2.transmit(psdu);
  // Different waveforms...
  double diff = 0.0;
  for (std::size_t i = kPreambleLen + kSymbolLen; i < w1.size(); ++i) {
    diff += std::abs(w1[i] - w2[i]);
  }
  EXPECT_GT(diff, 1.0);
  // ...same decoded payload.
  const PacketReceiver receiver;
  EXPECT_EQ(receiver.decode(w1)->psdu, psdu);
  EXPECT_EQ(receiver.decode(w2)->psdu, psdu);
}

TEST(Packet, RejectsEmptyAndOversizedPsdu) {
  const PacketTransmitter tx(PhyRate::k6Mbps);
  EXPECT_THROW(tx.transmit({}), InvalidArgument);
  EXPECT_THROW(tx.transmit(Bytes(5000, 0)), InvalidArgument);
}

// End-to-end: detect with Schmidl-Cox, correct CFO, decode.
TEST(Packet, DetectThenDecodeWithCfo) {
  Rng rng(46);
  const Bytes psdu = random_bytes(120, rng);
  const PacketTransmitter tx(PhyRate::k18Mbps);
  CVec wave = tx.transmit(psdu);
  apply_cfo(wave, -27e3, 20e6, 1.2);
  CVec burst = awgn(900, mean_power(wave) / from_db(22.0), rng);
  burst.insert(burst.end(), wave.begin(), wave.end());
  const CVec tail = awgn(200, mean_power(wave) / from_db(22.0), rng);
  burst.insert(burst.end(), tail.begin(), tail.end());

  const SchmidlCoxDetector det;
  const auto hit = det.detect_first(burst);
  ASSERT_TRUE(hit.has_value());
  CVec aligned(burst.begin() + static_cast<std::ptrdiff_t>(hit->start), burst.end());
  apply_cfo(aligned, -hit->cfo_hz, 20e6);
  const PacketReceiver receiver;
  const auto decoded = receiver.decode(aligned);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->psdu, psdu);
}

// ------------------------------------------- incremental detection

/// A stream that exercises every decision branch: noise, three real
/// packets, and a lag-16-periodic interference burst (a Schmidl-Cox
/// plateau with no LTF behind it, taking the fine-threshold skip).
CVec build_mixed_stream(Rng& rng) {
  const PacketTransmitter tx(PhyRate::k6Mbps);
  const double npow = 1e-2;
  auto add_noise = [&](CVec& s, std::size_t n) {
    const CVec w = awgn(n, npow, rng);
    s.insert(s.end(), w.begin(), w.end());
  };
  auto add_packet = [&](CVec& s, std::size_t psdu_len) {
    CVec wave = tx.transmit(random_bytes(psdu_len, rng));
    for (cd& v : wave) v *= 3.0;  // ~30 dB over the noise floor
    s.insert(s.end(), wave.begin(), wave.end());
  };
  CVec s;
  add_noise(s, 700);
  add_packet(s, 48);
  add_noise(s, 900);
  // Interference: perfectly lag-16 periodic, so the coarse metric
  // plateaus near 1 with no LTF to confirm.
  for (std::size_t t = 0; t < 320; ++t) {
    const double ph = kTwoPi * static_cast<double>(t % 16) / 16.0;
    s.push_back(cd{0.4 * std::cos(ph), 0.4 * std::sin(ph)});
  }
  add_noise(s, 600);
  add_packet(s, 120);
  add_noise(s, 1400);
  add_packet(s, 24);
  add_noise(s, 500);
  return s;
}

TEST(IncrementalDetector, BitIdenticalToFullDetectorAcrossWindows) {
  // Drive the incremental detector through the streaming receiver's
  // window schedule — append a chunk, scan, trim to the history bound —
  // and hold every scan against SchmidlCoxDetector::detect run fresh
  // over the identical window. Every field of every detection must be
  // bit-identical (EXPECT_EQ on doubles), across chunk sizes including
  // 1-sample, prime, and larger-than-history chunks.
  const std::size_t history = 2500;
  for (std::uint64_t seed : {21u, 22u}) {
    for (std::size_t chunk : {1u, 97u, 800u, 4096u}) {
      SCOPED_TRACE(testing::Message() << "seed " << seed << " chunk " << chunk);
      Rng rng(seed);
      const CVec stream = build_mixed_stream(rng);
      // 1-sample chunks replay the whole coarse recurrence per scan;
      // keep that case affordable with a shorter stream.
      const std::size_t total =
          chunk == 1 ? std::min<std::size_t>(stream.size(), 1600)
                     : stream.size();

      const SchmidlCoxDetector full;
      IncrementalScDetector inc(full.config());
      std::size_t base = 0, len = 0;
      while (base + len < total) {
        const std::size_t add = std::min(chunk, total - base - len);
        len += add;
        const auto got = inc.scan(stream.data() + base, len, base);
        const CVec window(stream.begin() + static_cast<std::ptrdiff_t>(base),
                          stream.begin() +
                              static_cast<std::ptrdiff_t>(base + len));
        const auto want = full.detect(window);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < want.size(); ++i) {
          SCOPED_TRACE(i);
          EXPECT_EQ(got[i].start, want[i].start);
          EXPECT_EQ(got[i].metric, want[i].metric);
          EXPECT_EQ(got[i].cfo_hz, want[i].cfo_hz);
          EXPECT_EQ(got[i].fine_peak, want[i].fine_peak);
        }
        if (len > history) {
          base += len - history;
          len = history;
        }
      }
      if (chunk <= 800 && total == stream.size()) {
        // The memo must actually be doing the work: packets that stay in
        // the history window across many scans re-use their fine search
        // instead of re-running it.
        EXPECT_GT(inc.fine_cache_hits(), inc.fine_searches_run());
      }
    }
  }
}

TEST(IncrementalDetector, EmptyAndShortWindows) {
  IncrementalScDetector inc{DetectorConfig{}};
  Rng rng(5);
  const CVec noise = awgn(600, 1.0, rng);
  // Below the detector's minimum window: no detections, like detect().
  EXPECT_TRUE(inc.scan(noise.data(), kPreambleLen + 100, 0).empty());
  EXPECT_TRUE(inc.scan(noise.data(), noise.size(), 0).empty());
  inc.reset();
  EXPECT_EQ(inc.fine_cache_size(), 0u);
}

}  // namespace
}  // namespace sa
