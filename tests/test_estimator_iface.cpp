// Parity tests for the pluggable AoaEstimator interface: every backend
// run through the interface must match the direct estimator call on
// identical covariance inputs, so swapping backends in the receive
// pipeline changes the estimator and nothing else.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "sa/aoa/covariance.hpp"
#include "sa/aoa/esprit.hpp"
#include "sa/aoa/estimator.hpp"
#include "sa/aoa/rootmusic.hpp"
#include "sa/common/constants.hpp"
#include "sa/common/rng.hpp"
#include "sa/secure/accesspoint.hpp"

namespace sa {
namespace {

constexpr double kLambda = kSpeedOfLight / 2.4e9;

CMat synth_covariance(const ArrayGeometry& geom,
                      const std::vector<double>& bearings_deg,
                      std::size_t n_snap, double noise_power, Rng& rng) {
  const std::size_t n_ant = geom.size();
  CMat x(n_ant, n_snap);
  std::vector<CVec> steerings;
  for (double b : bearings_deg) {
    steerings.push_back(geom.steering_vector(b, kLambda));
  }
  for (std::size_t t = 0; t < n_snap; ++t) {
    for (const auto& a : steerings) {
      const cd sym = rng.random_phasor();
      for (std::size_t m = 0; m < n_ant; ++m) x(m, t) += sym * a[m];
    }
    for (std::size_t m = 0; m < n_ant; ++m) {
      x(m, t) += rng.complex_normal(noise_power);
    }
  }
  return sample_covariance(x);
}

void expect_identical_spectra(const Pseudospectrum& a,
                              const Pseudospectrum& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.wraps(), b.wraps());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.angles_deg()[i], b.angles_deg()[i]) << i;
    EXPECT_EQ(a.values()[i], b.values()[i]) << i;
  }
}

TEST(EstimatorIface, Names) {
  EXPECT_STREQ(to_string(AoaBackend::kMusic), "music");
  EXPECT_STREQ(to_string(AoaBackend::kCapon), "capon");
  EXPECT_STREQ(to_string(AoaBackend::kBartlett), "bartlett");
  EXPECT_STREQ(to_string(AoaBackend::kRootMusic), "root-music");
  EXPECT_STREQ(to_string(AoaBackend::kEsprit), "esprit");
  for (AoaBackend b :
       {AoaBackend::kMusic, AoaBackend::kCapon, AoaBackend::kBartlett,
        AoaBackend::kRootMusic, AoaBackend::kEsprit}) {
    const auto parsed = aoa_backend_from_string(to_string(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
    EXPECT_EQ(make_aoa_estimator(b)->backend(), b);
  }
  EXPECT_EQ(aoa_backend_from_string("mvdr"), AoaBackend::kCapon);
  EXPECT_EQ(aoa_backend_from_string("rootmusic"), AoaBackend::kRootMusic);
  EXPECT_EQ(aoa_backend_from_string("root_music"), AoaBackend::kRootMusic);
  EXPECT_FALSE(aoa_backend_from_string("fourier").has_value());
  // Every stable name appears in the CLI error-message list.
  const std::string names = aoa_backend_names();
  for (const char* expected : {"music", "capon", "mvdr", "bartlett",
                               "root-music", "root_music", "esprit"}) {
    EXPECT_NE(names.find(expected), std::string::npos) << expected;
  }
}

TEST(EstimatorIface, MusicBackendMatchesDirectCall) {
  Rng rng(21);
  for (const auto& geom : {ArrayGeometry::uniform_linear(8, kLambda / 2.0),
                           ArrayGeometry::octagon()}) {
    const CMat r = synth_covariance(geom, {-20.0, 40.0}, 256, 0.05, rng);
    AoaEstimatorConfig cfg;
    const auto iface = make_aoa_estimator(AoaBackend::kMusic, cfg);
    const MusicResult via_iface = iface->estimate(r, geom, kLambda);
    const MusicResult direct = MusicEstimator(cfg.music).estimate(r, geom, kLambda);
    expect_identical_spectra(via_iface.spectrum, direct.spectrum);
    EXPECT_EQ(via_iface.eigenvalues, direct.eigenvalues);
    EXPECT_EQ(via_iface.num_sources, direct.num_sources);
    EXPECT_TRUE(via_iface.source_bearings_deg.empty());
  }
}

TEST(EstimatorIface, CaponBackendMatchesDirectCall) {
  Rng rng(22);
  const auto geom = ArrayGeometry::octagon();
  const CMat r = synth_covariance(geom, {110.0}, 256, 0.05, rng);
  AoaEstimatorConfig cfg;
  cfg.capon_loading = 2e-3;
  const auto iface = make_aoa_estimator(AoaBackend::kCapon, cfg);
  const MusicResult via_iface = iface->estimate(r, geom, kLambda);
  const Pseudospectrum direct = capon_spectrum(
      r, geom, kLambda, cfg.music.scan_step_deg, cfg.capon_loading);
  expect_identical_spectra(via_iface.spectrum, direct);
  EXPECT_TRUE(via_iface.eigenvalues.empty());
}

TEST(EstimatorIface, BartlettBackendMatchesDirectCall) {
  Rng rng(23);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const CMat r = synth_covariance(geom, {33.0}, 256, 0.05, rng);
  AoaEstimatorConfig cfg;
  cfg.music.scan_step_deg = 0.5;
  const auto iface = make_aoa_estimator(AoaBackend::kBartlett, cfg);
  const MusicResult via_iface = iface->estimate(r, geom, kLambda);
  const Pseudospectrum direct =
      bartlett_spectrum(r, geom, kLambda, cfg.music.scan_step_deg);
  expect_identical_spectra(via_iface.spectrum, direct);
}

TEST(EstimatorIface, RootMusicBackendMatchesDirectCallsOnUla) {
  Rng rng(24);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const CMat r = synth_covariance(geom, {-35.0, 20.0}, 512, 0.02, rng);
  AoaEstimatorConfig cfg;
  cfg.music.num_sources = 2;
  const auto iface = make_aoa_estimator(AoaBackend::kRootMusic, cfg);
  const MusicResult via_iface = iface->estimate(r, geom, kLambda);

  // Spectrum: identical to grid MUSIC with the same config.
  const MusicResult music = MusicEstimator(cfg.music).estimate(r, geom, kLambda);
  expect_identical_spectra(via_iface.spectrum, music.spectrum);

  // Discrete bearings: identical to the direct root_music call.
  RootMusicConfig rc;
  rc.num_sources = 2;
  rc.forward_backward = cfg.music.forward_backward;
  const auto direct = root_music(r, geom, kLambda, rc);
  ASSERT_EQ(via_iface.source_bearings_deg.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_iface.source_bearings_deg[i], direct[i].bearing_deg) << i;
  }
  ASSERT_GE(direct.size(), 2u);
}

TEST(EstimatorIface, RootMusicBackendDegradesToMusicOffUla) {
  Rng rng(25);
  const auto geom = ArrayGeometry::octagon();
  const CMat r = synth_covariance(geom, {200.0}, 256, 0.05, rng);
  AoaEstimatorConfig cfg;
  const auto iface = make_aoa_estimator(AoaBackend::kRootMusic, cfg);
  const MusicResult via_iface = iface->estimate(r, geom, kLambda);
  const MusicResult music = MusicEstimator(cfg.music).estimate(r, geom, kLambda);
  expect_identical_spectra(via_iface.spectrum, music.spectrum);
  EXPECT_TRUE(via_iface.source_bearings_deg.empty());
}

TEST(EstimatorIface, EspritMatchesRootMusicOnUlaTwoSources) {
  // The acceptance scenario: a ULA hearing two incoherent sources. Both
  // search-free backends must agree with each other (within a degree)
  // and with the true bearings.
  Rng rng(28);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const std::vector<double> truth = {-35.0, 20.0};
  const CMat r = synth_covariance(geom, truth, 512, 0.02, rng);
  AoaEstimatorConfig cfg;
  cfg.music.num_sources = 2;

  auto bearings_of = [&](AoaBackend b) {
    auto out = make_aoa_estimator(b, cfg)->estimate(r, geom, kLambda)
                   .source_bearings_deg;
    std::sort(out.begin(), out.end());
    return out;
  };
  const auto esprit_b = bearings_of(AoaBackend::kEsprit);
  const auto root_b = bearings_of(AoaBackend::kRootMusic);
  ASSERT_EQ(esprit_b.size(), 2u);
  ASSERT_EQ(root_b.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(esprit_b[i], root_b[i], 1.0) << i;
    EXPECT_NEAR(esprit_b[i], truth[i], 2.0) << i;
  }

  // The direct esprit() call agrees with the backend's bearings.
  EspritConfig ec;
  ec.num_sources = 2;
  auto direct = esprit(r, geom, kLambda, ec);
  std::sort(direct.begin(), direct.end());
  ASSERT_EQ(direct.size(), 2u);
  EXPECT_EQ(esprit_b[0], direct[0]);
  EXPECT_EQ(esprit_b[1], direct[1]);
}

TEST(EstimatorIface, EspritBackendDegradesToMusicOffUla) {
  Rng rng(29);
  const auto geom = ArrayGeometry::octagon();
  const CMat r = synth_covariance(geom, {200.0}, 256, 0.05, rng);
  AoaEstimatorConfig cfg;
  const auto iface = make_aoa_estimator(AoaBackend::kEsprit, cfg);
  const MusicResult via_iface = iface->estimate(r, geom, kLambda);
  const MusicResult music = MusicEstimator(cfg.music).estimate(r, geom, kLambda);
  expect_identical_spectra(via_iface.spectrum, music.spectrum);
  EXPECT_TRUE(via_iface.source_bearings_deg.empty());
}

// Every backend fed a shared, pre-warmed SpectralContext must produce
// exactly what the one-shot covariance overload produces — the cached
// EVD/inverse are reused, never re-derived differently.
TEST(EstimatorIface, SharedContextMatchesOneShotOverload) {
  Rng rng(30);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const CMat r = synth_covariance(geom, {-10.0, 45.0}, 256, 0.05, rng);
  AoaEstimatorConfig cfg;
  cfg.music.num_sources = 2;
  for (AoaBackend b :
       {AoaBackend::kMusic, AoaBackend::kCapon, AoaBackend::kBartlett,
        AoaBackend::kRootMusic, AoaBackend::kEsprit}) {
    SCOPED_TRACE(to_string(b));
    const auto est = make_aoa_estimator(b, cfg);
    SpectralContext ctx(r, geom, kLambda, est->spectral_options());
    ctx.eig();           // pre-warm every cache the backends touch
    ctx.inverse(1e-3);
    const MusicResult via_ctx = est->estimate(ctx);
    const MusicResult one_shot = est->estimate(r, geom, kLambda);
    expect_identical_spectra(via_ctx.spectrum, one_shot.spectrum);
    EXPECT_EQ(via_ctx.eigenvalues, one_shot.eigenvalues);
    EXPECT_EQ(via_ctx.num_sources, one_shot.num_sources);
    EXPECT_EQ(via_ctx.source_bearings_deg, one_shot.source_bearings_deg);
  }
}

// The AccessPoint constructs whatever backend its config names; the
// AoA-only helpers must agree with the standalone estimator.
TEST(EstimatorIface, AccessPointHonorsConfiguredBackend) {
  Rng ap_rng(26);
  AccessPointConfig cfg;
  cfg.estimator = AoaBackend::kCapon;
  cfg.apply_calibration = false;
  cfg.chain_gain_sigma = 0.0;
  AccessPoint ap(cfg, ap_rng);
  EXPECT_EQ(ap.estimator().backend(), AoaBackend::kCapon);

  Rng rng(27);
  const std::size_t n_ant = cfg.geometry.size();
  CMat x(n_ant, 128);
  const CVec a = cfg.geometry.steering_vector(75.0, ap.wavelength_m());
  for (std::size_t t = 0; t < 128; ++t) {
    const cd sym = rng.random_phasor();
    for (std::size_t m = 0; m < n_ant; ++m) {
      x(m, t) = sym * a[m] + rng.complex_normal(0.01);
    }
  }
  const MusicResult res = ap.music_from_samples(x);
  EXPECT_TRUE(res.eigenvalues.empty());  // Capon computes no eigenstructure
  const Pseudospectrum direct =
      capon_spectrum(sample_covariance(x), cfg.geometry, ap.wavelength_m(),
                     cfg.music.scan_step_deg, cfg.capon_loading);
  expect_identical_spectra(res.spectrum, direct);
}

}  // namespace
}  // namespace sa
