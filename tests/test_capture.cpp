// Tests for the SACP capture format and CaptureWriter/CaptureReader:
// encode/decode round-trips, the writer's end-record bookkeeping and
// close semantics, validate()'s structural walk, and — most importantly
// — the error paths: truncated files, corrupted framing, data after the
// end record, and deterministic mutation. A capture parser fed hostile
// bytes must reject them with an error string, never crash.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sa/capture/format.hpp"
#include "sa/capture/reader.hpp"
#include "sa/capture/writer.hpp"
#include "sa/common/error.hpp"
#include "sa/secure/policy.hpp"

namespace sa {
namespace {

/// Unique-ish temp path per test; gtest runs tests serially per binary.
std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "sacp_" + name + ".sacp";
}

CaptureHeader small_header() {
  CaptureHeader h;
  h.num_aps = 2;
  h.seed = 42;
  h.metadata = {{"sa.deployment", "figure4-office"}, {"note", "unit test"}};
  return h;
}

CMat small_chunk(std::size_t rows, std::size_t cols, double salt) {
  CMat m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = cd(salt + static_cast<double>(r),
                   static_cast<double>(c) - salt);
    }
  }
  return m;
}

FrameDecision sample_decision() {
  FrameDecision d;
  d.accepted = false;
  d.policy = "fence";
  d.detail = "outside boundary";
  d.source = MacAddress::from_index(7);
  LocalizationResult loc;
  loc.position = Vec2{1.5, -2.25};
  loc.residual_deg = 3.5;
  loc.aps_used = 3;
  d.location = loc;
  d.spoof = SpoofVerdict::kLegitimate;
  d.spoof_score = 0.125;
  d.trace = {{"spoof", false, "match"}, {"fence", true, "outside boundary"}};
  return d;
}

/// Write a small but complete capture (2 chunks, 1 decision, 1 drain)
/// and return its bytes.
ByteStream write_sample_capture(const std::string& path) {
  CaptureWriter writer(path, small_header());
  writer.record_chunk(0, 0, 0, small_chunk(2, 5, 0.5));
  writer.record_chunk(1, 0, 0, small_chunk(2, 5, 1.5));
  writer.record_decision(0, 123, sample_decision());
  writer.record_drain();
  writer.close();
  auto reader = CaptureReader::from_file(path);
  EXPECT_TRUE(reader.has_value());
  return reader->bytes();
}

TEST(CaptureFormat, HeaderRoundTrip) {
  const ByteStream bytes = encode_header(small_header());
  ByteReader r(bytes.data(), bytes.size());
  const auto decoded = decode_header(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->version, kSacpVersion);
  EXPECT_EQ(decoded->num_aps, 2u);
  EXPECT_EQ(decoded->seed, 42u);
  ASSERT_EQ(decoded->metadata.size(), 2u);
  EXPECT_EQ(decoded->meta("sa.deployment"),
            std::optional<std::string>("figure4-office"));
  EXPECT_EQ(decoded->meta("note"), std::optional<std::string>("unit test"));
  EXPECT_EQ(decoded->meta("absent"), std::nullopt);
}

TEST(CaptureFormat, ChunkRoundTripIsBitExact) {
  const CMat chunk = small_chunk(3, 7, 0.25);
  const ByteStream payload = encode_chunk(1, 4, 999, chunk);
  const auto decoded = decode_chunk(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->ap, 1u);
  EXPECT_EQ(decoded->round, 4u);
  EXPECT_EQ(decoded->base, 999u);
  ASSERT_EQ(decoded->samples.rows(), chunk.rows());
  ASSERT_EQ(decoded->samples.cols(), chunk.cols());
  for (std::size_t r = 0; r < chunk.rows(); ++r) {
    for (std::size_t c = 0; c < chunk.cols(); ++c) {
      EXPECT_EQ(decoded->samples(r, c), chunk(r, c));
    }
  }
  // Re-encoding the decoded chunk must reproduce the payload bytes —
  // this is what makes per-AP chunk tracks byte-comparable.
  EXPECT_EQ(encode_chunk(decoded->ap, decoded->round, decoded->base,
                         decoded->samples),
            payload);
}

TEST(CaptureFormat, DecisionRoundTrip) {
  const FrameDecision d = sample_decision();
  const ByteStream payload = encode_decision(17, 4242, d);
  const auto decoded = decode_decision(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sequence, 17u);
  EXPECT_EQ(decoded->absolute_start, 4242u);
  EXPECT_FALSE(decoded->accepted);
  EXPECT_EQ(decoded->policy, "fence");
  EXPECT_EQ(decoded->detail, "outside boundary");
  ASSERT_TRUE(decoded->source.has_value());
  EXPECT_EQ(*decoded->source, MacAddress::from_index(7).octets());
  ASSERT_TRUE(decoded->location.has_value());
  EXPECT_EQ(decoded->location->x, 1.5);
  EXPECT_EQ(decoded->location->y, -2.25);
  EXPECT_EQ(decoded->location->residual_deg, 3.5);
  EXPECT_EQ(decoded->location->aps_used, 3u);
  EXPECT_EQ(decoded->spoof_verdict,
            static_cast<std::uint8_t>(SpoofVerdict::kLegitimate));
  EXPECT_EQ(decoded->spoof_score, 0.125);
  ASSERT_EQ(decoded->trace.size(), 2u);
  EXPECT_EQ(decoded->trace[0].policy, "spoof");
  EXPECT_FALSE(decoded->trace[0].dropped);
  EXPECT_EQ(decoded->trace[1].policy, "fence");
  EXPECT_TRUE(decoded->trace[1].dropped);
  EXPECT_EQ(decoded->trace[1].detail, "outside boundary");
}

TEST(CaptureWriterReader, FullFileRoundTripAndValidate) {
  const std::string path = temp_path("roundtrip");
  const ByteStream bytes = write_sample_capture(path);
  CaptureReader reader{ByteStream(bytes)};

  ASSERT_TRUE(reader.header().has_value());
  EXPECT_EQ(reader.header()->num_aps, 2u);

  // Walk in file order: chunk, chunk, decision, drain, end.
  auto r1 = reader.next();
  ASSERT_TRUE(r1 && r1->type == RecordType::kChunk);
  EXPECT_EQ(r1->chunk->ap, 0u);
  auto r2 = reader.next();
  ASSERT_TRUE(r2 && r2->type == RecordType::kChunk);
  EXPECT_EQ(r2->chunk->ap, 1u);
  auto r3 = reader.next();
  ASSERT_TRUE(r3 && r3->type == RecordType::kDecision);
  EXPECT_EQ(r3->decision->sequence, 0u);
  EXPECT_EQ(r3->decision->absolute_start, 123u);
  auto r4 = reader.next();
  ASSERT_TRUE(r4 && r4->type == RecordType::kDrain);
  auto r5 = reader.next();
  ASSERT_TRUE(r5 && r5->type == RecordType::kEnd);
  EXPECT_EQ(r5->end->chunks, 2u);
  EXPECT_EQ(r5->end->decisions, 1u);
  EXPECT_EQ(r5->end->drains, 1u);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.error().empty());

  const ValidationReport report = reader.validate();
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.chunks, 2u);
  EXPECT_EQ(report.decisions, 1u);
  EXPECT_EQ(report.drains, 1u);
  EXPECT_TRUE(report.end_seen);

  // rewind() restarts the walk.
  reader.rewind();
  auto again = reader.next();
  ASSERT_TRUE(again && again->type == RecordType::kChunk);

  std::remove(path.c_str());
}

TEST(CaptureWriterReader, WriterCloseSemantics) {
  const std::string path = temp_path("close");
  CaptureWriter writer(path, small_header());
  EXPECT_FALSE(writer.closed());
  writer.record_drain();
  writer.close();
  EXPECT_TRUE(writer.closed());
  // Recording after close is a state error (the engine taps guard on
  // closed() for exactly this reason).
  EXPECT_THROW(writer.record_drain(), StateError);
  EXPECT_THROW(writer.record_decision(0, 0, sample_decision()), StateError);
  // close() is idempotent.
  writer.close();

  auto reader = CaptureReader::from_file(path);
  ASSERT_TRUE(reader.has_value());
  EXPECT_TRUE(reader->validate().ok);
  std::remove(path.c_str());
}

TEST(CaptureReader, TruncatedFileFailsValidation) {
  const std::string path = temp_path("trunc");
  const ByteStream bytes = write_sample_capture(path);
  std::remove(path.c_str());

  // Chop the tail at several depths: missing end record, mid-record,
  // mid-framing, mid-header. All must fail cleanly.
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() / 2, std::size_t{30}, std::size_t{6},
        std::size_t{3}, std::size_t{0}}) {
    ByteStream cut(bytes.begin(), bytes.begin() + static_cast<long>(keep));
    CaptureReader reader(std::move(cut));
    const ValidationReport report = reader.validate();
    EXPECT_FALSE(report.ok) << "kept " << keep << " bytes";
    EXPECT_FALSE(report.error.empty());
  }
}

TEST(CaptureReader, BadMagicAndVersionRejected) {
  const std::string path = temp_path("magic");
  ByteStream bytes = write_sample_capture(path);
  std::remove(path.c_str());

  ByteStream bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(CaptureReader(std::move(bad_magic)).header().has_value());

  ByteStream bad_version = bytes;
  bad_version[4] = 0xEE;  // version field follows the magic
  EXPECT_FALSE(CaptureReader(std::move(bad_version)).header().has_value());
}

TEST(CaptureReader, DataAfterEndRecordIsRejected) {
  const std::string path = temp_path("afterend");
  ByteStream bytes = write_sample_capture(path);
  std::remove(path.c_str());
  bytes.push_back(0);  // one stray byte after the end record
  CaptureReader reader(std::move(bytes));
  const ValidationReport report = reader.validate();
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("end record"), std::string::npos)
      << report.error;
}

TEST(CaptureReader, OversizedLengthFieldIsRejected) {
  const std::string path = temp_path("len");
  ByteStream bytes = write_sample_capture(path);
  std::remove(path.c_str());
  CaptureReader probe{ByteStream(bytes)};
  ASSERT_TRUE(probe.header().has_value());
  // The first record's length prefix starts right after the header;
  // find it by re-encoding the header.
  const std::size_t body = encode_header(*probe.header()).size();
  bytes[body + 0] = 0xFF;
  bytes[body + 1] = 0xFF;
  bytes[body + 2] = 0xFF;
  bytes[body + 3] = 0x7F;  // ~2 GB claimed payload
  CaptureReader reader(std::move(bytes));
  const ValidationReport report = reader.validate();
  EXPECT_FALSE(report.ok);
}

TEST(CaptureMutate, DeterministicAndUsuallyDamaging) {
  const std::string path = temp_path("mutate");
  const ByteStream bytes = write_sample_capture(path);
  std::remove(path.c_str());

  const ByteStream a = mutate_capture(bytes, 99, 8);
  const ByteStream b = mutate_capture(bytes, 99, 8);
  EXPECT_EQ(a, b) << "same seed must produce the same mutant";
  const ByteStream c = mutate_capture(bytes, 100, 8);
  EXPECT_NE(a, c) << "different seeds should diverge";

  // Whatever the mutation did, parsing must terminate cleanly: either a
  // valid capture (the ops happened to hit slack bytes) or a reported
  // error — never a crash or hang.
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    CaptureReader reader(mutate_capture(bytes, seed, 8));
    (void)reader.validate();
  }
}

TEST(CaptureDiffTool, EqualAndUnequalCaptures) {
  const std::string pa = temp_path("diff_a");
  const std::string pb = temp_path("diff_b");
  const ByteStream a = write_sample_capture(pa);
  const ByteStream b = write_sample_capture(pb);
  std::remove(pa.c_str());
  std::remove(pb.c_str());

  CaptureReader ra{ByteStream(a)};
  CaptureReader rb{ByteStream(b)};
  EXPECT_TRUE(diff_captures(ra, rb).equal);

  // A capture with a different decision must not diff equal.
  const std::string pc = temp_path("diff_c");
  {
    CaptureWriter writer(pc, small_header());
    writer.record_chunk(0, 0, 0, small_chunk(2, 5, 0.5));
    writer.record_chunk(1, 0, 0, small_chunk(2, 5, 1.5));
    FrameDecision changed = sample_decision();
    changed.accepted = true;
    changed.policy = "";
    changed.detail = "";
    writer.record_decision(0, 123, changed);
    writer.record_drain();
    writer.close();
  }
  auto rc = CaptureReader::from_file(pc);
  std::remove(pc.c_str());
  ASSERT_TRUE(rc.has_value());
  const CaptureDiff diff = diff_captures(ra, *rc);
  EXPECT_FALSE(diff.equal);
  EXPECT_NE(diff.detail.find("decision"), std::string::npos) << diff.detail;
}

TEST(CaptureDiffTool, ChunkInterleavingDoesNotMatter) {
  // Two captures of the same per-AP streams, with the records physically
  // interleaved differently (as concurrent submitters legally may) must
  // diff equal: the comparison is per-AP track, not file order.
  const std::string pa = temp_path("ilv_a");
  const std::string pb = temp_path("ilv_b");
  {
    CaptureWriter writer(pa, small_header());
    writer.record_chunk(0, 0, 0, small_chunk(2, 4, 0.0));
    writer.record_chunk(0, 1, 4, small_chunk(2, 4, 1.0));
    writer.record_chunk(1, 0, 0, small_chunk(2, 4, 2.0));
    writer.record_chunk(1, 1, 4, small_chunk(2, 4, 3.0));
    writer.record_drain();
    writer.close();
  }
  {
    CaptureWriter writer(pb, small_header());
    writer.record_chunk(1, 0, 0, small_chunk(2, 4, 2.0));
    writer.record_chunk(0, 0, 0, small_chunk(2, 4, 0.0));
    writer.record_chunk(1, 1, 4, small_chunk(2, 4, 3.0));
    writer.record_chunk(0, 1, 4, small_chunk(2, 4, 1.0));
    writer.record_drain();
    writer.close();
  }
  auto ra = CaptureReader::from_file(pa);
  auto rb = CaptureReader::from_file(pb);
  std::remove(pa.c_str());
  std::remove(pb.c_str());
  ASSERT_TRUE(ra && rb);
  const CaptureDiff diff = diff_captures(*ra, *rb);
  EXPECT_TRUE(diff.equal) << diff.detail;
}

}  // namespace
}  // namespace sa
