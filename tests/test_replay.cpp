// Record/replay determinism: a capture recorded from a live scenario
// run must replay byte-identically — same decision payload bytes, same
// per-AP chunk tracks, same drain markers — through a freshly rebuilt
// deployment at ANY thread count. This is the subsystem's contract: the
// capture header alone (seed + deployment metadata) is enough to
// reconstruct the exact pipeline that produced the recording.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sa/capture/reader.hpp"
#include "sa/capture/replay.hpp"
#include "sa/capture/writer.hpp"
#include "sa/engine/session.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/packet.hpp"
#include "sa/sim/deployment.hpp"
#include "sa/sim/scenario.hpp"

namespace sa {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "replay_" + name + ".sacp";
}

/// Small-but-real deployment: 2 APs, 4 antennas keeps the waveform work
/// light enough for a unit test while exercising the full pipeline.
DeploymentSpec small_spec(std::uint64_t seed = 7) {
  DeploymentSpec spec;
  spec.seed = seed;
  spec.num_aps = 2;
  spec.antennas = 4;
  return spec;
}

ScenarioConfig short_scenario(ScenarioKind kind) {
  ScenarioConfig sc;
  sc.kind = kind;
  sc.arrival_rate = 30.0;
  sc.duration_s = 0.2;
  // Squeeze the scenario-specific windows into the short horizon.
  sc.flash_start_s = 0.05;
  sc.flash_len_s = 0.1;
  sc.flood_start_s = 0.05;
  sc.flood_len_s = 0.1;
  sc.flood_rate = 200.0;
  sc.calm_hold_s = 0.05;
  sc.burst_hold_s = 0.02;
  return sc;
}

/// Run `scenario` through a live simulated deployment with a capture tap
/// attached, exactly like scenario_runner --capture does. Returns the
/// recorded bytes.
ByteStream record_scenario(const DeploymentSpec& spec, ScenarioConfig sc,
                           const std::string& path) {
  BuiltDeployment dep = build_deployment(spec, /*with_sim=*/true);
  CaptureWriter writer(path, capture_header_for(spec));

  SessionConfig scfg;
  scfg.engine = dep.engine;
  scfg.engine.num_threads = 1;
  scfg.engine.capture = &writer;
  EngineSession session(scfg, dep.ap_ptrs, [](const EngineDecision&) {});

  ScenarioGenerator gen(dep.testbed, sc, dep.traffic_rng, spec.estimator);
  std::uint16_t seq = 0;
  while (auto ev = gen.next()) {
    dep.sim->advance(ev->dt_s);
    const Frame f = Frame::data(MacAddress::from_index(0xFF), ev->mac,
                                Bytes{1, 2, 3}, seq++);
    const CVec w = PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
    session.submit_round(
        dep.sim->transmit(ev->from, w, ev->pattern ? &*ev->pattern : nullptr));
  }
  session.drain();
  writer.close();
  session.close();

  auto reader = CaptureReader::from_file(path);
  EXPECT_TRUE(reader.has_value());
  EXPECT_TRUE(reader->validate().ok) << reader->validate().error;
  return reader->bytes();
}

/// Replay `recorded` through a deployment rebuilt from its own header at
/// `threads` threads, re-capturing the replay, and return the recapture.
ByteStream replay_and_recapture(const ByteStream& recorded,
                                std::size_t threads,
                                const std::string& path) {
  CaptureReader reader{ByteStream(recorded)};
  EXPECT_TRUE(reader.header().has_value());
  const auto spec = deployment_from_header(*reader.header());
  EXPECT_TRUE(spec.has_value())
      << "capture header must describe the deployment";
  BuiltDeployment dep = build_deployment(*spec, /*with_sim=*/false);

  CaptureWriter writer(path, *reader.header());
  SessionConfig scfg;
  scfg.engine = dep.engine;
  scfg.engine.num_threads = threads;
  scfg.engine.capture = &writer;
  EngineSession session(scfg, dep.ap_ptrs, [](const EngineDecision&) {});

  ReplaySource source{CaptureReader(ByteStream(recorded))};
  const ReplayResult result = source.replay_into(session);
  EXPECT_TRUE(result.ok) << result.error;
  writer.close();
  session.close();

  auto out = CaptureReader::from_file(path);
  EXPECT_TRUE(out.has_value());
  return out->bytes();
}

void expect_replay_identical(const ByteStream& recorded,
                             std::size_t threads) {
  const std::string path =
      temp_path("re" + std::to_string(threads) + "t");
  const ByteStream replayed = replay_and_recapture(recorded, threads, path);
  std::remove(path.c_str());
  CaptureReader a{ByteStream(recorded)};
  CaptureReader b{ByteStream(replayed)};
  const CaptureDiff diff = diff_captures(a, b);
  EXPECT_TRUE(diff.equal) << "threads=" << threads << ": " << diff.detail;
}

TEST(Replay, ByteIdenticalAtOneTwoAndEightThreads) {
  const std::string path = temp_path("office");
  const ByteStream recorded =
      record_scenario(small_spec(), short_scenario(ScenarioKind::kOffice),
                      path);
  std::remove(path.c_str());
  for (const std::size_t threads : {1u, 2u, 8u}) {
    expect_replay_identical(recorded, threads);
  }
}

TEST(Replay, ByteIdenticalWithSubbandsAndFivePolicyChain) {
  // The heavyweight configuration: subband decomposition plus the full
  // policy chain (decode is implicit, so acl,spoof,fence,rate makes
  // five). Replay must still be byte-identical across thread counts.
  DeploymentSpec spec = small_spec(11);
  spec.subbands = 4;
  spec.policies = {PolicyKind::kAcl, PolicyKind::kSpoof, PolicyKind::kFence,
                   PolicyKind::kRateLimit};
  ScenarioConfig sc = short_scenario(ScenarioKind::kOffice);
  sc.duration_s = 0.15;

  const std::string path = temp_path("chain");
  const ByteStream recorded = record_scenario(spec, sc, path);
  std::remove(path.c_str());
  for (const std::size_t threads : {1u, 2u, 8u}) {
    expect_replay_identical(recorded, threads);
  }
}

TEST(Replay, AdversarialScenariosRecordAndReplay) {
  // The adversarial/overload generators must also round-trip: record a
  // short run of each, then replay at 2 threads and diff.
  for (const ScenarioKind kind :
       {ScenarioKind::kFlood, ScenarioKind::kAdaptiveSpoof,
        ScenarioKind::kMobile}) {
    const std::string path =
        temp_path(std::string("adv_") + to_string(kind));
    const ByteStream recorded =
        record_scenario(small_spec(13), short_scenario(kind), path);
    std::remove(path.c_str());
    expect_replay_identical(recorded, 2);
  }
}

TEST(Replay, DecisionPayloadsMatchRecordedTrack) {
  // Sharper than diff_captures: walk the live replay decision-by-
  // decision and compare encode_decision() bytes against the recording.
  const std::string path = temp_path("track");
  const ByteStream recorded =
      record_scenario(small_spec(5), short_scenario(ScenarioKind::kOffice),
                      path);
  std::remove(path.c_str());

  CaptureReader reader{ByteStream(recorded)};
  const std::vector<ByteStream> track = reader.decision_payloads();
  ASSERT_FALSE(track.empty()) << "scenario produced no decisions";

  const auto spec = deployment_from_header(*reader.header());
  ASSERT_TRUE(spec.has_value());
  BuiltDeployment dep = build_deployment(*spec, /*with_sim=*/false);
  SessionConfig scfg;
  scfg.engine = dep.engine;
  scfg.engine.num_threads = 2;
  std::size_t index = 0;
  std::size_t mismatches = 0;
  EngineSession session(scfg, dep.ap_ptrs, [&](const EngineDecision& d) {
    const ByteStream bytes =
        encode_decision(d.sequence, d.absolute_start, d.decision);
    if (index >= track.size() || bytes != track[index]) ++mismatches;
    ++index;
  });
  ReplaySource source{CaptureReader(ByteStream(recorded))};
  const ReplayResult result = source.replay_into(session);
  EXPECT_TRUE(result.ok) << result.error;
  session.close();
  EXPECT_EQ(mismatches, 0u);
  EXPECT_EQ(index, track.size());
}

TEST(Replay, TruncatedCaptureFailsCleanly) {
  const std::string path = temp_path("truncated");
  const ByteStream recorded =
      record_scenario(small_spec(3), short_scenario(ScenarioKind::kOffice),
                      path);
  std::remove(path.c_str());

  ByteStream cut(recorded.begin(),
                 recorded.begin() + static_cast<long>(recorded.size() / 2));
  const auto spec = deployment_from_header(
      *CaptureReader{ByteStream(recorded)}.header());
  ASSERT_TRUE(spec.has_value());
  BuiltDeployment dep = build_deployment(*spec, /*with_sim=*/false);
  SessionConfig scfg;
  scfg.engine = dep.engine;
  scfg.engine.num_threads = 1;
  EngineSession session(scfg, dep.ap_ptrs, [](const EngineDecision&) {});
  ReplaySource source{CaptureReader(std::move(cut))};
  const ReplayResult result = source.replay_into(session);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
  // The session survives a failed replay; close must not throw.
  session.close();
}

TEST(Replay, HeaderRoundTripsDeploymentSpec) {
  DeploymentSpec spec;
  spec.seed = 1234;
  spec.num_aps = 4;
  spec.antennas = 6;
  spec.estimator = AoaBackend::kRootMusic;
  spec.subbands = 2;
  spec.policies = {PolicyKind::kAcl, PolicyKind::kRateLimit};
  const auto round = deployment_from_header(capture_header_for(spec));
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->seed, spec.seed);
  EXPECT_EQ(round->num_aps, spec.num_aps);
  EXPECT_EQ(round->antennas, spec.antennas);
  EXPECT_EQ(round->estimator, spec.estimator);
  EXPECT_EQ(round->subbands, spec.subbands);
  EXPECT_EQ(round->policies, spec.policies);

  // A header that does not announce the known deployment is refused.
  CaptureHeader foreign = capture_header_for(spec);
  foreign.metadata[0].second = "some-other-testbed";
  EXPECT_FALSE(deployment_from_header(foreign).has_value());
}

}  // namespace
}  // namespace sa
