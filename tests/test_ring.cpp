// Unit and stress tests for the SPSC ring + doorbell the engine's
// lock-free dataplane is built on. The stress tests are the ones the
// CI sanitizer jobs (ASan and especially TSan) exist for: a missing
// acquire/release edge shows up here long before it corrupts a session.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "sa/common/spsc_ring.hpp"

namespace sa {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRing, FullAndEmptyBoundaries) {
  SpscRing<int> ring(4);
  int out = 0;
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop(out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_FALSE(ring.try_push(99));  // full
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_FALSE(ring.try_pop(out));  // empty again
}

TEST(SpscRing, WrapAroundPreservesFifoOrder) {
  SpscRing<std::size_t> ring(4);
  std::size_t out = 0;
  std::size_t expect = 0;
  // Push/pop far past the capacity so the free-running indices wrap the
  // mask many times. Every 3rd iteration leaves its item in flight (until
  // the ring is full) so pops constantly straddle the wrap boundary.
  for (std::size_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(std::size_t(i)));
    if (i % 3 == 0 && ring.size() < ring.capacity()) continue;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, expect++);
  }
  while (ring.try_pop(out)) EXPECT_EQ(out, expect++);
  EXPECT_EQ(expect, 1000u);
}

TEST(SpscRing, BatchPushPopRespectCapacityAndOrder) {
  SpscRing<int> ring(8);
  std::vector<int> in(12);
  std::iota(in.begin(), in.end(), 0);
  // Only 8 fit; push_batch must stop at the boundary, not overwrite.
  EXPECT_EQ(ring.push_batch(in.begin(), in.size()), 8u);
  std::vector<int> out;
  EXPECT_EQ(ring.pop_batch(out, 3), 3u);
  EXPECT_EQ(ring.push_batch(in.begin() + 8, 4u), 3u);  // 3 slots freed
  EXPECT_EQ(ring.pop_batch(out, 100), 8u);
  ASSERT_EQ(out.size(), 11u);
  for (int i = 0; i < 11; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(ring.pop_batch(out, 1), 0u);  // empty
}

TEST(SpscRing, DestructorReleasesInFlightItems) {
  // Non-trivially-destructible payloads left in the ring must be
  // destroyed by the ring destructor (ASan flags the leak otherwise).
  auto tracer = std::make_shared<int>(7);
  {
    SpscRing<std::shared_ptr<int>> ring(8);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(ring.try_push(std::shared_ptr<int>(tracer)));
    }
    std::shared_ptr<int> out;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(tracer.use_count(), 6);  // tracer + out + 4 in flight
  }
  EXPECT_EQ(tracer.use_count(), 1);  // ring destroyed its 4 in-flight refs
}

TEST(SpscRing, MoveOnlyPayloads) {
  SpscRing<std::unique_ptr<int>> ring(4);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

// The real contract: one producer, one consumer, every element arrives
// exactly once, in order, across wrap-arounds and full/empty races.
// Run under TSan this is the acquire/release proof for the index pair.
TEST(SpscRing, ConcurrentStressPreservesEveryElementInOrder) {
  constexpr std::size_t kItems = 200000;
  SpscRing<std::size_t> ring(64);  // small: force constant wrapping
  std::thread producer([&] {
    for (std::size_t i = 0; i < kItems;) {
      if (ring.try_push(std::size_t(i))) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::size_t expect = 0;
  std::uint64_t sum = 0;
  while (expect < kItems) {
    std::size_t v = 0;
    if (ring.try_pop(v)) {
      ASSERT_EQ(v, expect);
      sum += v;
      ++expect;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(sum, std::uint64_t(kItems) * (kItems - 1) / 2);
}

TEST(SpscRing, ConcurrentBatchStress) {
  constexpr std::size_t kItems = 100000;
  SpscRing<std::size_t> ring(32);
  std::thread producer([&] {
    std::vector<std::size_t> chunk;
    std::size_t next = 0;
    while (next < kItems) {
      chunk.clear();
      for (std::size_t i = 0; i < 7 && next + i < kItems; ++i) {
        chunk.push_back(next + i);
      }
      std::size_t pushed = 0;
      while (pushed < chunk.size()) {
        pushed += ring.push_batch(chunk.begin() + pushed,
                                  chunk.size() - pushed);
        if (pushed < chunk.size()) std::this_thread::yield();
      }
      next += chunk.size();
    }
  });
  std::vector<std::size_t> out;
  std::size_t expect = 0;
  while (expect < kItems) {
    out.clear();
    if (ring.pop_batch(out, 16) == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t v : out) {
      ASSERT_EQ(v, expect);
      ++expect;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

TEST(Doorbell, RingWakesParkedWaiter) {
  Doorbell bell;
  std::atomic<bool> flag{false};
  std::atomic<std::size_t> parks{0};
  std::thread waiter([&] {
    bell.wait([&] { return flag.load(std::memory_order_acquire); },
              /*spin_budget=*/0, nullptr, &parks);
  });
  // Let the waiter park, then publish and ring — it must return.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  flag.store(true, std::memory_order_release);
  bell.ring();
  waiter.join();
  EXPECT_TRUE(flag.load());
}

TEST(Doorbell, WaitReturnsImmediatelyWhenPredicateHolds) {
  Doorbell bell;
  std::atomic<std::size_t> spins{0};
  std::atomic<std::size_t> parks{0};
  EXPECT_TRUE(bell.wait([] { return true; }, 128, &spins, &parks));
  EXPECT_EQ(spins.load(), 0u);
  EXPECT_EQ(parks.load(), 0u);
}

TEST(Doorbell, ManyProducersOneConsumer) {
  Doorbell bell;
  SpscRing<int> ring(256);  // ring stays SPSC; only ring() is multi-caller
  std::atomic<int> produced{0};
  constexpr int kTotal = 5000;
  std::thread feeder([&] {
    for (int i = 0; i < kTotal;) {
      if (ring.try_push(int(i))) {
        ++i;
        produced.fetch_add(1, std::memory_order_release);
        bell.ring();
      }
    }
  });
  std::thread kibitzer([&] {
    // Extra ring() calls from a second thread must be harmless.
    for (int i = 0; i < 1000; ++i) bell.ring();
  });
  int got = 0;
  int out = 0;
  while (got < kTotal) {
    bell.wait([&] { return !ring.empty(); }, 16, nullptr, nullptr);
    while (ring.try_pop(out)) {
      EXPECT_EQ(out, got);
      ++got;
    }
  }
  feeder.join();
  kibitzer.join();
  EXPECT_EQ(got, kTotal);
}

}  // namespace
}  // namespace sa
