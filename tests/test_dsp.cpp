// Unit tests for sa_dsp: FFT, noise/SNR, correlation, FIR filters.
#include <gtest/gtest.h>

#include <cmath>

#include "sa/common/constants.hpp"
#include "sa/common/error.hpp"
#include "sa/common/rng.hpp"
#include "sa/dsp/correlate.hpp"
#include "sa/dsp/fft.hpp"
#include "sa/dsp/fir.hpp"
#include "sa/dsp/noise.hpp"
#include "sa/dsp/units.hpp"

namespace sa {
namespace {

// ------------------------------------------------------------------- fft

TEST(Fft, DeltaTransformsToFlat) {
  CVec x(8, cd{0.0, 0.0});
  x[0] = cd{1.0, 0.0};
  const CVec f = fft(x);
  for (const cd& v : f) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsOnBin) {
  const std::size_t n = 64;
  const std::size_t k0 = 5;
  CVec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = kTwoPi * static_cast<double>(k0 * i) / static_cast<double>(n);
    x[i] = cd{std::cos(ph), std::sin(ph)};
  }
  const CVec f = fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == k0) {
      EXPECT_NEAR(std::abs(f[k]), static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(f[k]), 0.0, 1e-9);
    }
  }
}

TEST(Fft, RoundTrip) {
  Rng rng(1);
  CVec x(256);
  for (auto& v : x) v = cd{rng.normal(), rng.normal()};
  const CVec back = ifft(fft(x));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(back[i] - x[i]), 0.0, 1e-10);
  }
}

TEST(Fft, LinearityProperty) {
  Rng rng(2);
  CVec a(64), b(64);
  for (auto& v : a) v = cd{rng.normal(), rng.normal()};
  for (auto& v : b) v = cd{rng.normal(), rng.normal()};
  const cd alpha{2.0, -1.0};
  CVec combo(64);
  for (std::size_t i = 0; i < 64; ++i) combo[i] = alpha * a[i] + b[i];
  const CVec lhs = fft(combo);
  const CVec fa = fft(a);
  const CVec fb = fft(b);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(std::abs(lhs[i] - (alpha * fa[i] + fb[i])), 0.0, 1e-9);
  }
}

TEST(Fft, ParsevalProperty) {
  Rng rng(3);
  CVec x(128);
  for (auto& v : x) v = cd{rng.normal(), rng.normal()};
  const double time_energy = energy(x);
  const CVec f = fft(x);
  EXPECT_NEAR(energy(f) / 128.0, time_energy, 1e-8);
}

TEST(Fft, MatchesDirectDftAtSubbandSizes) {
  // The wideband subband split (AccessPoint::prepare) routes its
  // length-K windows through the radix-2 fft_inplace instead of a direct
  // O(K^2) DFT. The two are the same linear transform evaluated with
  // different summation orders, so the results agree to a few ulps per
  // butterfly stage rather than bit-exactly; a 1e-12 relative bound is
  // ~1e3 times the worst accumulated rounding at K = 64 and far below
  // anything the per-band covariance (averaged over hundreds of
  // windows) could resolve.
  Rng rng(55);
  for (std::size_t k : {2u, 4u, 8u, 16u, 32u, 64u}) {
    SCOPED_TRACE(k);
    CVec x(k);
    double scale = 0.0;
    for (auto& v : x) {
      v = rng.complex_normal(1.0);
      scale = std::max(scale, std::abs(v));
    }
    const CVec fast = fft(x);
    for (std::size_t bin = 0; bin < k; ++bin) {
      cd direct{0.0, 0.0};
      for (std::size_t n = 0; n < k; ++n) {
        const double ang =
            -kTwoPi * static_cast<double>(bin * n) / static_cast<double>(k);
        direct += x[n] * cd{std::cos(ang), std::sin(ang)};
      }
      EXPECT_NEAR(fast[bin].real(), direct.real(),
                  1e-12 * static_cast<double>(k) * scale);
      EXPECT_NEAR(fast[bin].imag(), direct.imag(),
                  1e-12 * static_cast<double>(k) * scale);
    }
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  CVec x(48);
  EXPECT_THROW(fft_inplace(x), InvalidArgument);
}

TEST(Fft, FftShiftCentersDc) {
  CVec x{cd{0, 0}, cd{1, 0}, cd{2, 0}, cd{3, 0}};
  const CVec s = fftshift(x);
  EXPECT_EQ(s[0], (cd{2, 0}));
  EXPECT_EQ(s[1], (cd{3, 0}));
  EXPECT_EQ(s[2], (cd{0, 0}));
  EXPECT_EQ(s[3], (cd{1, 0}));
}

// ----------------------------------------------------------------- noise

TEST(Noise, AwgnPowerMatchesRequest) {
  Rng rng(10);
  const CVec n = awgn(50000, 0.7, rng);
  EXPECT_NEAR(mean_power(n), 0.7, 0.02);
}

TEST(Noise, SnrIsRespected) {
  Rng rng(11);
  // Unit-power tone.
  CVec x(20000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double ph = 0.01 * static_cast<double>(i);
    x[i] = cd{std::cos(ph), std::sin(ph)};
  }
  CVec noisy = x;
  const double noise_power = add_awgn_snr(noisy, 10.0, rng);
  EXPECT_NEAR(noise_power, 0.1, 0.01);
  // Measured noise power across the block.
  double p = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) p += std::norm(noisy[i] - x[i]);
  EXPECT_NEAR(p / static_cast<double>(x.size()), 0.1, 0.01);
}

TEST(Noise, ZeroSignalUntouched) {
  Rng rng(12);
  CVec x(100, cd{0.0, 0.0});
  EXPECT_EQ(add_awgn_snr(x, 20.0, rng), 0.0);
  EXPECT_EQ(mean_power(x), 0.0);
}

TEST(Noise, CfoRotatesAtExpectedRate) {
  CVec x(1000, cd{1.0, 0.0});
  apply_cfo(x, 1000.0, 1e6);  // 1 kHz at 1 MS/s -> 2*pi/1000 per sample
  // After 250 samples the phase should be pi/2.
  EXPECT_NEAR(std::arg(x[250]), kPi / 2.0, 1e-6);
  // Magnitude preserved.
  for (const auto& v : x) EXPECT_NEAR(std::abs(v), 1.0, 1e-9);
}

TEST(Noise, ApplyPhase) {
  CVec x(10, cd{1.0, 0.0});
  apply_phase(x, kPi);
  for (const auto& v : x) EXPECT_NEAR(v.real(), -1.0, 1e-12);
}

TEST(Noise, FractionalDelayIntegerCase) {
  const CVec x{cd{1, 0}, cd{2, 0}, cd{3, 0}};
  const CVec d = fractional_delay(x, 2.0);
  ASSERT_EQ(d.size(), 5u);
  EXPECT_EQ(d[0], (cd{0, 0}));
  EXPECT_EQ(d[2], (cd{1, 0}));
  EXPECT_EQ(d[4], (cd{3, 0}));
}

TEST(Noise, FractionalDelayInterpolates) {
  const CVec x{cd{1, 0}, cd{1, 0}};
  const CVec d = fractional_delay(x, 0.5);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_NEAR(d[0].real(), 0.5, 1e-12);
  EXPECT_NEAR(d[1].real(), 1.0, 1e-12);
  EXPECT_NEAR(d[2].real(), 0.5, 1e-12);
}

TEST(Units, DbConversions) {
  EXPECT_NEAR(to_db(100.0), 20.0, 1e-12);
  EXPECT_NEAR(from_db(3.0), 1.9952623, 1e-6);
  EXPECT_NEAR(amplitude_db(10.0), 20.0, 1e-12);
  EXPECT_EQ(to_db(0.0), -300.0);
  EXPECT_NEAR(to_db(from_db(-17.3)), -17.3, 1e-12);
}

// ------------------------------------------------------------- correlate

TEST(Correlate, SlidingCorrelationFindsPattern) {
  Rng rng(20);
  CVec ref(16);
  for (auto& v : ref) v = cd{rng.normal(), rng.normal()};
  CVec x(100, cd{0.0, 0.0});
  // Embed ref at offset 37.
  for (std::size_t i = 0; i < ref.size(); ++i) x[37 + i] = ref[i];
  const CVec corr = sliding_correlation(x, ref);
  std::size_t best = 0;
  for (std::size_t i = 1; i < corr.size(); ++i) {
    if (std::abs(corr[i]) > std::abs(corr[best])) best = i;
  }
  EXPECT_EQ(best, 37u);
}

TEST(Correlate, LagAutocorrelationDetectsRepetition) {
  Rng rng(21);
  const std::size_t half = 32;
  CVec pattern(half);
  for (auto& v : pattern) v = cd{rng.normal(), rng.normal()};
  // Signal = noise, then [pattern pattern], then noise.
  CVec x = awgn(64, 1.0, rng);
  x.insert(x.end(), pattern.begin(), pattern.end());
  x.insert(x.end(), pattern.begin(), pattern.end());
  const CVec tail = awgn(64, 1.0, rng);
  x.insert(x.end(), tail.begin(), tail.end());

  const CVec p = lag_autocorrelation(x, half, half);
  std::size_t best = 0;
  for (std::size_t i = 1; i < p.size(); ++i) {
    if (std::abs(p[i]) > std::abs(p[best])) best = i;
  }
  EXPECT_EQ(best, 64u);  // start of the repeated block
  // At the peak, the normalized metric should be ~1.
  const auto r = window_energy(x, half, half);
  const double m = std::norm(p[best]) / (r[best] * r[best]);
  EXPECT_GT(m, 0.8);
}

TEST(Correlate, RunningUpdateMatchesDirect) {
  Rng rng(22);
  CVec x(300);
  for (auto& v : x) v = cd{rng.normal(), rng.normal()};
  const std::size_t lag = 16, window = 16;
  const CVec fast = lag_autocorrelation(x, lag, window);
  for (std::size_t k = 0; k < fast.size(); k += 37) {
    cd direct{0.0, 0.0};
    for (std::size_t i = 0; i < window; ++i) {
      direct += std::conj(x[k + i]) * x[k + i + lag];
    }
    EXPECT_NEAR(std::abs(fast[k] - direct), 0.0, 1e-9);
  }
}

TEST(Correlate, WindowEnergyMatchesDirect) {
  Rng rng(23);
  CVec x(200);
  for (auto& v : x) v = cd{rng.normal(), rng.normal()};
  const auto e = window_energy(x, 8, 32);
  for (std::size_t k = 0; k < e.size(); k += 13) {
    double direct = 0.0;
    for (std::size_t i = 0; i < 32; ++i) direct += std::norm(x[8 + k + i]);
    EXPECT_NEAR(e[k], direct, 1e-9);
  }
}

TEST(Correlate, CoefficientBounds) {
  Rng rng(24);
  CVec a(64), b(64);
  for (auto& v : a) v = cd{rng.normal(), rng.normal()};
  for (auto& v : b) v = cd{rng.normal(), rng.normal()};
  const double c = correlation_coefficient(a, b);
  EXPECT_GE(c, 0.0);
  EXPECT_LE(c, 1.0);
  EXPECT_NEAR(correlation_coefficient(a, a), 1.0, 1e-12);
  // Scaling and global phase do not change the coefficient.
  CVec a2 = a;
  scale(a2, cd{0.0, 3.0});
  EXPECT_NEAR(correlation_coefficient(a, a2), 1.0, 1e-12);
}

// ------------------------------------------------------------------- fir

TEST(Fir, WindowShapes) {
  const auto hann = make_window(Window::kHann, 9);
  EXPECT_NEAR(hann.front(), 0.0, 1e-12);
  EXPECT_NEAR(hann.back(), 0.0, 1e-12);
  EXPECT_NEAR(hann[4], 1.0, 1e-12);  // symmetric peak
  const auto rect = make_window(Window::kRect, 5);
  for (double v : rect) EXPECT_EQ(v, 1.0);
  const auto ham = make_window(Window::kHamming, 11);
  EXPECT_NEAR(ham.front(), 0.08, 1e-12);
}

TEST(Fir, LowpassPassesDcRejectsHigh) {
  const auto h = design_lowpass(0.1, 63);
  // DC gain 1.
  double dc = 0.0;
  for (double v : h) dc += v;
  EXPECT_NEAR(dc, 1.0, 1e-12);
  // Response at 0.4 cycles/sample should be heavily attenuated.
  cd high{0.0, 0.0};
  for (std::size_t i = 0; i < h.size(); ++i) {
    const double ph = -kTwoPi * 0.4 * static_cast<double>(i);
    high += h[i] * cd{std::cos(ph), std::sin(ph)};
  }
  EXPECT_LT(std::abs(high), 0.01);
}

TEST(Fir, FilterDelta) {
  const std::vector<double> taps{0.25, 0.5, 0.25};
  CVec x(5, cd{0.0, 0.0});
  x[2] = cd{4.0, 0.0};
  const CVec y = fir_filter(x, taps);
  ASSERT_EQ(y.size(), 7u);
  EXPECT_NEAR(y[2].real(), 1.0, 1e-12);
  EXPECT_NEAR(y[3].real(), 2.0, 1e-12);
  EXPECT_NEAR(y[4].real(), 1.0, 1e-12);
}

TEST(Fir, SameLengthCenters) {
  const std::vector<double> taps{0.0, 1.0, 0.0};  // pure pass-through
  Rng rng(30);
  CVec x(20);
  for (auto& v : x) v = cd{rng.normal(), rng.normal()};
  const CVec y = fir_filter_same(x, taps);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-12);
  }
}

TEST(Fir, DesignRejectsBadArgs) {
  EXPECT_THROW(design_lowpass(0.0, 21), InvalidArgument);
  EXPECT_THROW(design_lowpass(0.6, 21), InvalidArgument);
  EXPECT_THROW(design_lowpass(0.1, 20), InvalidArgument);  // even taps
  EXPECT_THROW(design_lowpass(0.1, 1), InvalidArgument);
}

}  // namespace
}  // namespace sa
