// Tests for the fixed-size thread pool and its bounded work queue — the
// execution substrate of the deployment engine.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "sa/common/error.hpp"
#include "sa/common/thread_pool.hpp"

namespace sa {
namespace {

TEST(ThreadPool, RejectsInvalidSizes) {
  EXPECT_THROW(ThreadPool(0), InvalidArgument);
  EXPECT_THROW(ThreadPool(2, 0), InvalidArgument);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, AsyncReturnsValues) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.async([i] { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, AsyncPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.async([]() -> int {
    throw InvalidArgument("boom");
  });
  EXPECT_THROW(f.get(), InvalidArgument);
}

TEST(ThreadPool, SubmitSurvivesThrowingTask) {
  // A raw submit() task has no future to carry its exception; the pool
  // must log and keep running rather than terminate the process.
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    pool.submit([] { throw InvalidArgument("intentional test exception"); });
    pool.submit([&count] { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, BoundedQueueStillCompletesEverything) {
  // Queue of 2 with slow workers: submit blocks rather than queueing
  // without bound, and every task still runs exactly once.
  std::atomic<int> count{0};
  {
    ThreadPool pool(2, 2);
    for (int i = 0; i < 40; ++i) {
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        count.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(count.load(), 40);
}

TEST(ThreadPool, ManyWorkersOneResultEach) {
  ThreadPool pool(8);
  std::vector<std::future<std::size_t>> futures;
  for (std::size_t i = 0; i < 64; ++i) {
    futures.push_back(pool.async([i] { return i; }));
  }
  std::size_t sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, 64u * 63u / 2u);
}

// ------------------------------------------------------------- shutdown

TEST(ThreadPool, ShutdownDrainsQueuedTasksWithoutLosingAny) {
  // Destroy the pool the moment the queue is at its fullest: every task
  // already accepted must still run exactly once (the engine session
  // relies on this — a dropped task would strand a decode future).
  std::atomic<int> count{0};
  {
    ThreadPool pool(2, 8);
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    // Park both workers so the remaining tasks are queued, not running.
    for (int i = 0; i < 2; ++i) {
      pool.submit([opened, &count] {
        opened.wait();
        count.fetch_add(1);
      });
    }
    for (int i = 0; i < 8; ++i) {
      pool.submit([&count] { count.fetch_add(1); }, /*epoch=*/7);
    }
    gate.set_value();
  }  // destructor runs with (up to) 8 tasks still queued
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ShutdownWakesBlockedSubmitterWithStateError) {
  // A producer blocked in submit() on a full queue must not be left
  // asleep (or handed a silently dropped task) when the pool stops: it
  // gets a StateError instead.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<int> ran{0};
  std::atomic<bool> rejected{false};
  std::thread producer;
  {
    ThreadPool pool(1, 1);
    pool.submit([opened, &ran] {  // occupies the only worker
      opened.wait();
      ran.fetch_add(1);
    });
    pool.submit([&ran] { ran.fetch_add(1); });  // fills the queue
    producer = std::thread([&pool, &ran, &rejected] {
      try {
        pool.submit([&ran] { ran.fetch_add(1); });
      } catch (const StateError&) {
        rejected.store(true);
      }
    });
    // Let the producer reach the blocked wait, then release the worker
    // *after* destruction has begun so the queue stays full meanwhile.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::thread opener([&gate] {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      gate.set_value();
    });
    opener.detach();
  }  // ~ThreadPool: wakes the blocked producer, then drains and joins
  producer.join();
  // Every accepted task ran; the producer either got in before shutdown
  // or was rejected — never silently dropped.
  EXPECT_EQ(ran.load() + (rejected.load() ? 1 : 0), 3);
}

// --------------------------------------------------------------- epochs

TEST(ThreadPool, EpochsTrackOutstandingWorkAcrossRounds) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.epochs_in_flight(), 0u);
  pool.wait_epoch_idle(42);  // unknown epoch: returns immediately

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  auto f1 = pool.async_in(1, [opened] { opened.wait(); });
  auto f2 = pool.async_in(2, [] {});
  // Both "rounds" have work in the pool at once: the overlap the engine
  // session's pipelining creates.
  EXPECT_EQ(pool.epochs_in_flight(), 2u);
  EXPECT_GE(pool.max_epochs_in_flight(), 2u);
  gate.set_value();
  f1.get();
  f2.get();
  pool.wait_epoch_idle(1);
  pool.wait_epoch_idle(2);
  EXPECT_EQ(pool.epochs_in_flight(), 0u);
  EXPECT_GE(pool.max_epochs_in_flight(), 2u);
}

TEST(ThreadPool, EpochClearsEvenWhenTaskThrows) {
  ThreadPool pool(2);
  auto f = pool.async_in(9, []() -> int { throw InvalidArgument("boom"); });
  EXPECT_THROW(f.get(), InvalidArgument);
  pool.wait_epoch_idle(9);  // must not hang on the failed task
  EXPECT_EQ(pool.epochs_in_flight(), 0u);

  // Raw submit() (no future) with an epoch: the pool logs the escape and
  // the epoch still drains.
  pool.submit([] { throw InvalidArgument("intentional test exception"); },
              /*epoch=*/10);
  pool.wait_epoch_idle(10);
  EXPECT_EQ(pool.epochs_in_flight(), 0u);
}

}  // namespace
}  // namespace sa
