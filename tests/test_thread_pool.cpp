// Tests for the fixed-size thread pool and its bounded work queue — the
// execution substrate of the deployment engine.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "sa/common/error.hpp"
#include "sa/common/thread_pool.hpp"

namespace sa {
namespace {

TEST(ThreadPool, RejectsInvalidSizes) {
  EXPECT_THROW(ThreadPool(0), InvalidArgument);
  EXPECT_THROW(ThreadPool(2, 0), InvalidArgument);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, AsyncReturnsValues) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.async([i] { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, AsyncPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.async([]() -> int {
    throw InvalidArgument("boom");
  });
  EXPECT_THROW(f.get(), InvalidArgument);
}

TEST(ThreadPool, SubmitSurvivesThrowingTask) {
  // A raw submit() task has no future to carry its exception; the pool
  // must log and keep running rather than terminate the process.
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    pool.submit([] { throw InvalidArgument("intentional test exception"); });
    pool.submit([&count] { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, BoundedQueueStillCompletesEverything) {
  // Queue of 2 with slow workers: submit blocks rather than queueing
  // without bound, and every task still runs exactly once.
  std::atomic<int> count{0};
  {
    ThreadPool pool(2, 2);
    for (int i = 0; i < 40; ++i) {
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        count.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(count.load(), 40);
}

TEST(ThreadPool, ManyWorkersOneResultEach) {
  ThreadPool pool(8);
  std::vector<std::future<std::size_t>> futures;
  for (std::size_t i = 0; i < 64; ++i) {
    futures.push_back(pool.async([i] { return i; }));
  }
  std::size_t sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, 64u * 63u / 2u);
}

}  // namespace
}  // namespace sa
