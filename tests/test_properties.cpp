// Property-style parameterized sweeps across the whole stack: estimator
// accuracy vs SNR and array size, PHY robustness ordering across rates,
// detector sensitivity, signature separability vs distance, localization
// vs AP count. Each sweep pins a monotone trend or a bound, not a single
// realization.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sa/aoa/covariance.hpp"
#include "sa/aoa/estimators.hpp"
#include "sa/aoa/rootmusic.hpp"
#include "sa/array/calibration.hpp"
#include "sa/common/angles.hpp"
#include "sa/common/constants.hpp"
#include "sa/common/rng.hpp"
#include "sa/common/stats.hpp"
#include "sa/dsp/noise.hpp"
#include "sa/dsp/units.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/detector.hpp"
#include "sa/phy/packet.hpp"
#include "sa/secure/accesspoint.hpp"
#include "sa/secure/virtualfence.hpp"
#include "sa/signature/metrics.hpp"
#include "sa/testbed/office.hpp"
#include "sa/testbed/uplink.hpp"

namespace sa {
namespace {

constexpr double kLambda = kSpeedOfLight / 2.4e9;

CMat source_cov(const ArrayGeometry& geom, double bearing, double snr_db,
                Rng& rng, std::size_t snaps = 256) {
  const CVec a = geom.steering_vector(bearing, kLambda);
  const double noise = from_db(-snr_db);
  CMat x(geom.size(), snaps);
  for (std::size_t t = 0; t < snaps; ++t) {
    const cd sym = rng.random_phasor();
    for (std::size_t m = 0; m < geom.size(); ++m) {
      x(m, t) = sym * a[m] + rng.complex_normal(noise);
    }
  }
  return sample_covariance(x);
}

// ------------------------------------------------- MUSIC accuracy vs SNR

class MusicVsSnr : public ::testing::TestWithParam<double> {};

TEST_P(MusicVsSnr, ErrorBoundedBySnr) {
  const double snr_db = GetParam();
  Rng rng(100 + static_cast<int>(snr_db));
  const auto geom = ArrayGeometry::octagon();
  const MusicEstimator music;
  std::vector<double> errs;
  for (double truth : {15.0, 123.0, 251.0, 333.0}) {
    const CMat r = source_cov(geom, truth, snr_db, rng);
    const auto res = music.estimate(r, geom, kLambda);
    errs.push_back(
        angular_distance_deg(res.spectrum.refined_max_angle_deg(), truth));
  }
  // Accuracy bound loosens as SNR drops.
  const double bound = snr_db >= 20.0 ? 1.0 : (snr_db >= 10.0 ? 2.0 : 6.0);
  EXPECT_LT(mean(errs), bound) << "snr " << snr_db;
}

INSTANTIATE_TEST_SUITE_P(SnrSweep, MusicVsSnr,
                         ::testing::Values(0.0, 10.0, 20.0, 30.0));

// --------------------------------------------- MUSIC accuracy vs antennas

class MusicVsAntennas : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MusicVsAntennas, MoreAntennasNoWorse) {
  const std::size_t n = GetParam();
  Rng rng(200 + static_cast<int>(n));
  const auto geom = ArrayGeometry::uniform_circular(n, 0.0614);
  const MusicEstimator music;
  std::vector<double> errs;
  for (double truth : {40.0, 170.0, 290.0}) {
    const CMat r = source_cov(geom, truth, 15.0, rng);
    const auto res = music.estimate(r, geom, kLambda);
    errs.push_back(
        angular_distance_deg(res.spectrum.refined_max_angle_deg(), truth));
  }
  EXPECT_LT(mean(errs), 3.0) << n;
}

INSTANTIATE_TEST_SUITE_P(AntennaSweep, MusicVsAntennas,
                         ::testing::Values<std::size_t>(4, 5, 6, 7, 8, 12));

// ------------------------------------- grid MUSIC vs Root-MUSIC agreement

class RootVsGrid : public ::testing::TestWithParam<double> {};

TEST_P(RootVsGrid, Agree) {
  const double truth = GetParam();
  Rng rng(300);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const CMat r = source_cov(geom, truth, 20.0, rng);
  const auto grid = MusicEstimator().estimate(r, geom, kLambda);
  RootMusicConfig cfg;
  cfg.num_sources = 1;
  const auto roots = root_music(r, geom, kLambda, cfg);
  ASSERT_FALSE(roots.empty());
  EXPECT_NEAR(roots[0].bearing_deg, truth, 0.5);
  EXPECT_NEAR(grid.spectrum.refined_max_angle_deg(), roots[0].bearing_deg,
              1.0);
}

INSTANTIATE_TEST_SUITE_P(Bearings, RootVsGrid,
                         ::testing::Values(-60.0, -25.5, -3.2, 14.8, 42.0,
                                           68.0));

// ------------------------------------------------ PHY robustness ordering

TEST(PhyProperty, LowerRatesSurviveLowerSnr) {
  // At 12 dB SNR the 6 Mbps BPSK-1/2 packet must decode while 54 Mbps
  // 64QAM-3/4 must not; at 35 dB both decode.
  Rng rng(400);
  Bytes psdu(80);
  for (auto& b : psdu) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  auto attempt = [&](PhyRate rate, double snr_db, std::uint64_t seed) {
    Rng local(seed);
    CVec wave = PacketTransmitter(rate).transmit(psdu);
    add_awgn_snr(wave, snr_db, local);
    const auto decoded = PacketReceiver().decode(wave);
    return decoded.has_value() && decoded->psdu == psdu;
  };
  int robust_ok = 0, fragile_ok = 0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    robust_ok += attempt(PhyRate::k6Mbps, 12.0, 500 + s) ? 1 : 0;
    fragile_ok += attempt(PhyRate::k54Mbps, 12.0, 600 + s) ? 1 : 0;
  }
  EXPECT_EQ(robust_ok, 5);
  EXPECT_EQ(fragile_ok, 0);
  EXPECT_TRUE(attempt(PhyRate::k54Mbps, 35.0, 700));
}

TEST(PhyProperty, EvmGrowsWithNoise) {
  Rng rng(401);
  Bytes psdu(60);
  for (auto& b : psdu) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  double prev_evm = -1.0;
  for (double snr : {40.0, 30.0, 22.0}) {
    Rng local(900);
    CVec wave = PacketTransmitter(PhyRate::k6Mbps).transmit(psdu);
    add_awgn_snr(wave, snr, local);
    const auto decoded = PacketReceiver().decode(wave);
    ASSERT_TRUE(decoded.has_value()) << snr;
    EXPECT_GT(decoded->evm_rms, prev_evm) << snr;
    prev_evm = decoded->evm_rms;
  }
}

// --------------------------------------------- detector sensitivity sweep

class DetectorVsSnr : public ::testing::TestWithParam<double> {};

TEST_P(DetectorVsSnr, DetectsDownToLowSnr) {
  const double snr_db = GetParam();
  Rng rng(500 + static_cast<int>(snr_db * 10));
  const Bytes psdu(48, 0x5A);
  const CVec wave = PacketTransmitter(PhyRate::k6Mbps).transmit(psdu);
  const double npow = mean_power(wave) / from_db(snr_db);
  int hits = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    CVec burst = awgn(700, npow, rng);
    const std::size_t start = burst.size();
    burst.insert(burst.end(), wave.begin(), wave.end());
    const CVec tail = awgn(300, npow, rng);
    burst.insert(burst.end(), tail.begin(), tail.end());
    const auto det = SchmidlCoxDetector().detect_first(burst);
    if (det && std::abs(static_cast<double>(det->start) -
                        static_cast<double>(start)) <= 3.0) {
      ++hits;
    }
  }
  if (snr_db >= 5.0) {
    EXPECT_EQ(hits, trials) << snr_db;
  } else {
    EXPECT_GE(hits, trials / 2) << snr_db;  // 3 dB: degraded but alive
  }
}

INSTANTIATE_TEST_SUITE_P(SnrSweep, DetectorVsSnr,
                         ::testing::Values(3.0, 5.0, 10.0, 20.0));

// -------------------------------------- signature separability vs distance

TEST(SignatureProperty, MatchScoreDropsWithDistance) {
  // The security core: signatures from farther-apart positions score
  // lower against the victim's. Checked as a trend over the ring.
  const auto tb = OfficeTestbed::figure4();
  Rng rng(600);
  UplinkConfig ucfg;
  ucfg.channel.noise_power = 1e-5;
  UplinkSimulation sim(tb, ucfg, rng);
  AccessPointConfig cfg;
  cfg.position = tb.ap_position();
  AccessPoint ap(cfg, rng);
  sim.add_ap(ap.placement());

  auto signature_at = [&](Vec2 pos, int id) {
    const Frame f = Frame::data(MacAddress::from_index(0xFF),
                                MacAddress::from_index(id), Bytes{1}, 0);
    const CVec w = PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
    const auto pkts = ap.receive(sim.transmit(pos, w)[0]);
    EXPECT_FALSE(pkts.empty());
    return pkts.empty() ? AoaSignature{} : pkts[0].signature;
  };

  const Vec2 victim = tb.client(1).position;
  const auto sig_victim = signature_at(victim, 1);
  // Same position, a second packet: near-perfect match.
  sim.advance(0.5);
  const auto sig_again = signature_at(victim, 1);
  const double self_score = match_score(sig_victim, sig_again);
  EXPECT_GT(self_score, 0.85);

  // 0.5 m away: still plausible; across the room: clearly different.
  const auto sig_near = signature_at(victim + Vec2{0.5, 0.0}, 90);
  const auto sig_far = signature_at(tb.client(9).position, 91);
  const double near_score = match_score(sig_victim, sig_near);
  const double far_score = match_score(sig_victim, sig_far);
  EXPECT_GT(near_score, far_score);
  EXPECT_LT(far_score, 0.5);
}

// -------------------------------------------- localization vs AP count

TEST(FenceProperty, MoreApsTightenLocalization) {
  const auto tb = OfficeTestbed::figure4();
  const Vec2 truth = tb.client(14).position;
  // Ordered so the first two APs view the client from well-separated
  // bearings (near-parallel pairs legitimately fail to intersect under
  // bearing noise).
  std::vector<Vec2> ap_positions{tb.ap_position(), tb.extra_ap_positions()[2],
                                 tb.extra_ap_positions()[1],
                                 tb.extra_ap_positions()[0]};
  Rng rng(700);
  // Noisy bearings: truth + 2-degree Gaussian error.
  auto make_obs = [&](std::size_t k) {
    std::vector<FenceObservation> obs;
    for (std::size_t i = 0; i < k; ++i) {
      obs.push_back({ap_positions[i],
                     {bearing_deg(ap_positions[i], truth) + rng.normal(0, 2.0)}});
    }
    return obs;
  };
  std::vector<double> errors;
  for (std::size_t k : {2u, 3u, 4u}) {
    std::vector<double> errs;
    for (int rep = 0; rep < 40; ++rep) {
      const auto loc = localize(make_obs(k));
      if (!loc) continue;  // noise can defeat a 2-AP geometry; rare
      errs.push_back(distance(loc->position, truth));
    }
    ASSERT_GE(errs.size(), 35u) << k;
    errors.push_back(mean(errs));
  }
  EXPECT_LT(errors[2], errors[0]);  // 4 APs beat 2 APs on average
  EXPECT_LT(errors[2], 1.0);
}

// ------------------------------------------- calibration quality vs SNR

class CalibrationVsSnr : public ::testing::TestWithParam<double> {};

TEST_P(CalibrationVsSnr, ResidualShrinksWithSnr) {
  const double snr = GetParam();
  Rng rng(800 + static_cast<int>(snr));
  const auto imp = ArrayImpairments::random(8, rng);
  CalibratorConfig cfg;
  cfg.snr_db = snr;
  cfg.num_samples = 2048;
  const auto table = Calibrator(cfg).run(imp, rng);
  const auto resid = table.residual_phase(imp);
  const double worst = *std::max_element(resid.begin(), resid.end());
  // Phase error of an averaged estimate ~ 1/sqrt(snr * n_samples).
  const double expect = 4.0 / std::sqrt(from_db(snr) * 2048.0);
  EXPECT_LT(worst, std::max(expect, deg2rad(0.5))) << snr;
}

INSTANTIATE_TEST_SUITE_P(SnrSweep, CalibrationVsSnr,
                         ::testing::Values(0.0, 10.0, 20.0, 30.0, 40.0));

}  // namespace
}  // namespace sa
