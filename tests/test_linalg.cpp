// Unit tests for sa_linalg: complex matrices, Hermitian eigendecomposition,
// LU solves. The eigensolver is the numerical core of MUSIC, so it gets
// randomized property tests in addition to known-answer checks.
#include <gtest/gtest.h>

#include <cmath>

#include "sa/common/error.hpp"
#include "sa/common/rng.hpp"
#include "sa/linalg/cmat.hpp"
#include "sa/linalg/column_ring.hpp"
#include "sa/linalg/cvec.hpp"
#include "sa/linalg/eig.hpp"
#include "sa/linalg/lu.hpp"

namespace sa {
namespace {

CMat random_matrix(std::size_t n, Rng& rng) {
  CMat m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      m(i, j) = cd{rng.normal(), rng.normal()};
    }
  }
  return m;
}

CMat random_hermitian(std::size_t n, Rng& rng) {
  const CMat m = random_matrix(n, rng);
  return (m + m.hermitian()) * cd{0.5, 0.0};
}

// ------------------------------------------------------------------ cvec

TEST(CVec, InnerProductConjugatesFirstArg) {
  const CVec a{cd{0.0, 1.0}};
  const CVec b{cd{0.0, 1.0}};
  // <i, i> = conj(i)*i = 1.
  EXPECT_NEAR(inner(a, b).real(), 1.0, 1e-15);
  EXPECT_NEAR(inner(a, b).imag(), 0.0, 1e-15);
}

TEST(CVec, NormAndNormalize) {
  CVec a{cd{3.0, 0.0}, cd{0.0, 4.0}};
  EXPECT_NEAR(norm(a), 5.0, 1e-15);
  normalize(a);
  EXPECT_NEAR(norm(a), 1.0, 1e-15);
  CVec zero{cd{0.0, 0.0}};
  normalize(zero);  // must not divide by zero
  EXPECT_EQ(zero[0], (cd{0.0, 0.0}));
}

TEST(CVec, AxpyAndHadamard) {
  CVec a{cd{1.0, 0.0}, cd{2.0, 0.0}};
  const CVec b{cd{10.0, 0.0}, cd{20.0, 0.0}};
  axpy(a, cd{2.0, 0.0}, b);
  EXPECT_NEAR(a[0].real(), 21.0, 1e-15);
  EXPECT_NEAR(a[1].real(), 42.0, 1e-15);
  const CVec h = hadamard(b, b);
  EXPECT_NEAR(h[1].real(), 400.0, 1e-15);
}

// ------------------------------------------------------------------ cmat

TEST(CMat, IdentityMultiply) {
  Rng rng(1);
  const CMat a = random_matrix(4, rng);
  const CMat i4 = CMat::identity(4);
  const CMat prod = a * i4;
  EXPECT_NEAR((prod - a).frobenius_norm(), 0.0, 1e-12);
}

TEST(CMat, MultiplyKnownValues) {
  CMat a(2, 2);
  a(0, 0) = cd{1, 0};
  a(0, 1) = cd{2, 0};
  a(1, 0) = cd{3, 0};
  a(1, 1) = cd{4, 0};
  CMat b(2, 2);
  b(0, 0) = cd{0, 1};
  b(1, 1) = cd{1, 0};
  const CMat c = a * b;
  EXPECT_EQ(c(0, 0), (cd{0, 1}));
  EXPECT_EQ(c(0, 1), (cd{2, 0}));
  EXPECT_EQ(c(1, 0), (cd{0, 3}));
  EXPECT_EQ(c(1, 1), (cd{4, 0}));
}

TEST(CMat, HermitianTranspose) {
  CMat a(1, 2);
  a(0, 0) = cd{1, 2};
  a(0, 1) = cd{3, -4};
  const CMat h = a.hermitian();
  EXPECT_EQ(h.rows(), 2u);
  EXPECT_EQ(h(0, 0), (cd{1, -2}));
  EXPECT_EQ(h(1, 0), (cd{3, 4}));
}

TEST(CMat, OuterProductIsHermitianRank1) {
  Rng rng(2);
  CVec a(5);
  for (auto& x : a) x = cd{rng.normal(), rng.normal()};
  const CMat m = CMat::outer(a);
  EXPECT_TRUE(m.is_hermitian());
  // trace(a a^H) = ||a||^2.
  EXPECT_NEAR(m.trace().real(), norm(a) * norm(a), 1e-10);
}

TEST(CMat, MatVec) {
  CMat a(2, 3);
  a(0, 0) = cd{1, 0};
  a(0, 1) = cd{0, 1};
  a(0, 2) = cd{2, 0};
  a(1, 2) = cd{1, 1};
  const CVec v{cd{1, 0}, cd{1, 0}, cd{1, 0}};
  const CVec r = a * v;
  EXPECT_NEAR(std::abs(r[0] - cd(3.0, 1.0)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(r[1] - cd(1.0, 1.0)), 0.0, 1e-14);
}

TEST(CMat, DimensionMismatchThrows) {
  const CMat a(2, 3);
  const CMat b(2, 3);
  EXPECT_THROW(a * b, InvalidArgument);
  EXPECT_THROW(a + CMat(3, 2), InvalidArgument);
  EXPECT_THROW(a * CVec(2), InvalidArgument);
}

TEST(CMat, RowColAccess) {
  Rng rng(3);
  CMat a = random_matrix(4, rng);
  const CVec r2 = a.row(2);
  const CVec c1 = a.col(1);
  EXPECT_EQ(r2[1], a(2, 1));
  EXPECT_EQ(c1[3], a(3, 1));
  CVec newcol(4, cd{7.0, 0.0});
  a.set_col(0, newcol);
  EXPECT_EQ(a(2, 0), (cd{7.0, 0.0}));
}

// ------------------------------------------------------------------- eig

TEST(Eig, RealSymmetricKnownAnswer) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  const std::vector<double> m{2.0, 1.0, 1.0, 2.0};
  const auto res = jacobi_eigh_real(m, 2);
  ASSERT_EQ(res.values.size(), 2u);
  EXPECT_NEAR(res.values[0], 1.0, 1e-10);
  EXPECT_NEAR(res.values[1], 3.0, 1e-10);
}

TEST(Eig, DiagonalMatrix) {
  CMat d(3, 3);
  d(0, 0) = cd{5.0, 0.0};
  d(1, 1) = cd{-2.0, 0.0};
  d(2, 2) = cd{1.0, 0.0};
  const auto res = eigh(d);
  EXPECT_NEAR(res.values[0], -2.0, 1e-10);
  EXPECT_NEAR(res.values[1], 1.0, 1e-10);
  EXPECT_NEAR(res.values[2], 5.0, 1e-10);
}

TEST(Eig, ComplexHermitianKnownAnswer) {
  // [[2, i], [-i, 2]] has eigenvalues 1 and 3.
  CMat a(2, 2);
  a(0, 0) = cd{2, 0};
  a(0, 1) = cd{0, 1};
  a(1, 0) = cd{0, -1};
  a(1, 1) = cd{2, 0};
  const auto res = eigh(a);
  EXPECT_NEAR(res.values[0], 1.0, 1e-10);
  EXPECT_NEAR(res.values[1], 3.0, 1e-10);
  // Check A v = lambda v for both pairs.
  for (std::size_t k = 0; k < 2; ++k) {
    const CVec v = res.vectors.col(k);
    const CVec av = a * v;
    for (std::size_t i = 0; i < 2; ++i) {
      EXPECT_NEAR(std::abs(av[i] - v[i] * res.values[k]), 0.0, 1e-9);
    }
  }
}

TEST(Eig, RejectsNonHermitian) {
  CMat a(2, 2);
  a(0, 1) = cd{1.0, 0.0};  // asymmetric
  EXPECT_THROW(eigh(a), InvalidArgument);
  EXPECT_THROW(eigh(CMat(2, 3)), InvalidArgument);
}

// Property test over random Hermitian matrices of several sizes:
// reconstruction, orthonormality, eigen-residual, trace preservation.
class EigProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigProperty, DecompositionInvariants) {
  const std::size_t n = GetParam();
  Rng rng(1000 + n);
  for (int rep = 0; rep < 8; ++rep) {
    const CMat a = random_hermitian(n, rng);
    const auto res = eigh(a);
    ASSERT_EQ(res.values.size(), n);

    // Eigenvalues ascending.
    for (std::size_t k = 1; k < n; ++k) {
      EXPECT_LE(res.values[k - 1], res.values[k] + 1e-12);
    }
    // Columns orthonormal.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const cd g = inner(res.vectors.col(i), res.vectors.col(j));
        EXPECT_NEAR(std::abs(g), i == j ? 1.0 : 0.0, 1e-8);
      }
    }
    // Residual ||A v - lambda v|| small for every pair.
    for (std::size_t k = 0; k < n; ++k) {
      const CVec v = res.vectors.col(k);
      CVec av = a * v;
      axpy(av, cd{-res.values[k], 0.0}, v);
      EXPECT_LT(norm(av), 1e-7 * (1.0 + a.frobenius_norm()));
    }
    // Trace = sum of eigenvalues.
    double sum = 0.0;
    for (double v : res.values) sum += v;
    EXPECT_NEAR(sum, a.trace().real(), 1e-8 * (1.0 + std::abs(a.trace().real())));
    // Reconstruction A = V diag(lambda) V^H.
    CMat recon(n, n);
    for (std::size_t k = 0; k < n; ++k) {
      recon += CMat::outer(res.vectors.col(k)) * cd{res.values[k], 0.0};
    }
    EXPECT_LT((recon - a).frobenius_norm(), 1e-7 * (1.0 + a.frobenius_norm()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigProperty,
                         ::testing::Values<std::size_t>(1, 2, 3, 4, 6, 8, 12, 16));

TEST(Eig, DegenerateEigenvaluesStillOrthonormal) {
  // Rank-1 + isotropic noise floor: eigenvalue sigma^2 with multiplicity
  // n-1 — exactly the structure of a single-source covariance in MUSIC.
  Rng rng(77);
  const std::size_t n = 8;
  CVec s(n);
  for (auto& x : s) x = cd{rng.normal(), rng.normal()};
  CMat a = CMat::outer(s);
  a += CMat::identity(n) * cd{0.3, 0.0};
  const auto res = eigh(a);
  // n-1 eigenvalues at the noise floor 0.3.
  for (std::size_t k = 0; k + 1 < n; ++k) {
    EXPECT_NEAR(res.values[k], 0.3, 1e-8);
  }
  EXPECT_NEAR(res.values[n - 1], 0.3 + norm(s) * norm(s), 1e-6);
  // The top eigenvector must align with s.
  CVec top = res.vectors.col(n - 1);
  const double align = std::abs(inner(top, s)) / norm(s);
  EXPECT_NEAR(align, 1.0, 1e-8);
}

// -------------------------------------------------------------------- lu

TEST(Lu, SolveKnownSystem) {
  CMat a(2, 2);
  a(0, 0) = cd{2, 0};
  a(0, 1) = cd{1, 0};
  a(1, 0) = cd{1, 0};
  a(1, 1) = cd{3, 0};
  const CVec b{cd{5, 0}, cd{10, 0}};
  const auto x = solve(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(std::abs((*x)[0] - cd(1.0, 0.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs((*x)[1] - cd(3.0, 0.0)), 0.0, 1e-12);
}

TEST(Lu, RandomSolveResidual) {
  Rng rng(4);
  for (std::size_t n : {2u, 4u, 8u, 16u}) {
    const CMat a = random_matrix(n, rng);
    CVec b(n);
    for (auto& x : b) x = cd{rng.normal(), rng.normal()};
    const auto x = solve(a, b);
    ASSERT_TRUE(x.has_value());
    const CVec ax = a * *x;
    double resid = 0.0;
    for (std::size_t i = 0; i < n; ++i) resid += std::norm(ax[i] - b[i]);
    EXPECT_LT(std::sqrt(resid), 1e-8);
  }
}

TEST(Lu, InverseRoundTrip) {
  Rng rng(5);
  const CMat a = random_matrix(6, rng);
  const auto ainv = inverse(a);
  ASSERT_TRUE(ainv.has_value());
  const CMat prod = a * *ainv;
  EXPECT_LT((prod - CMat::identity(6)).frobenius_norm(), 1e-9);
}

TEST(Lu, SingularDetected) {
  CMat a(2, 2);
  a(0, 0) = cd{1, 0};
  a(0, 1) = cd{2, 0};
  a(1, 0) = cd{2, 0};
  a(1, 1) = cd{4, 0};  // rank 1
  const LuDecomposition lu(a);
  EXPECT_TRUE(lu.singular());
  EXPECT_FALSE(solve(a, CVec{cd{1, 0}, cd{0, 0}}).has_value());
  EXPECT_FALSE(inverse(a).has_value());
  EXPECT_THROW(lu.solve(CVec{cd{1, 0}, cd{0, 0}}), StateError);
}

TEST(Lu, DeterminantKnownValues) {
  CMat a(2, 2);
  a(0, 0) = cd{0, 0};
  a(0, 1) = cd{1, 0};
  a(1, 0) = cd{1, 0};
  a(1, 1) = cd{0, 0};  // permutation matrix: det = -1
  const LuDecomposition lu(a);
  EXPECT_NEAR(std::abs(lu.determinant() - cd(-1.0, 0.0)), 0.0, 1e-12);
}

TEST(Lu, QuadraticFormMatchesDirect) {
  Rng rng(6);
  const CMat r = random_hermitian(5, rng);
  CVec a(5);
  for (auto& x : a) x = cd{rng.normal(), rng.normal()};
  const double q = quadratic_form(a, r);
  const cd direct = inner(a, r * a);
  EXPECT_NEAR(q, direct.real(), 1e-10);
  EXPECT_NEAR(direct.imag(), 0.0, 1e-10);  // Hermitian form is real
}

// ----------------------------------------------------------- column ring

CMat random_chunk(std::size_t rows, std::size_t cols, Rng& rng) {
  CMat m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.complex_normal(1.0);
  }
  return m;
}

TEST(ColumnRing, AppendDropMaterializeMatchesReference) {
  // Random append/drop schedule; the ring's window must always equal a
  // naive reference (deque-of-columns) — including across the internal
  // compactions and regrows the schedule forces.
  Rng rng(31);
  const std::size_t rows = 4;
  ColumnRing ring(rows);
  std::vector<CVec> reference;  // one CVec per column
  for (int step = 0; step < 200; ++step) {
    const std::size_t add = static_cast<std::size_t>(rng.uniform_int(0, 40));
    const CMat chunk = random_chunk(rows, add, rng);
    ring.append(chunk);
    for (std::size_t c = 0; c < add; ++c) {
      CVec col(rows);
      for (std::size_t r = 0; r < rows; ++r) col[r] = chunk(r, c);
      reference.push_back(std::move(col));
    }
    if (reference.size() > 60) {
      const std::size_t drop = reference.size() - 60;
      ring.drop_front(drop);
      reference.erase(reference.begin(),
                      reference.begin() + static_cast<std::ptrdiff_t>(drop));
    }
    ASSERT_EQ(ring.cols(), reference.size());
    CMat snap;
    ring.materialize(snap);
    ASSERT_EQ(snap.rows(), rows);
    ASSERT_EQ(snap.cols(), reference.size());
    for (std::size_t c = 0; c < reference.size(); ++c) {
      for (std::size_t r = 0; r < rows; ++r) {
        ASSERT_EQ(snap(r, c), reference[c][r]) << "step " << step;
        ASSERT_EQ(ring.at(r, c), reference[c][r]);
        ASSERT_EQ(ring.row(r)[c], reference[c][r]);
      }
    }
  }
}

TEST(ColumnRing, ChunkLargerThanWindowAndClear) {
  Rng rng(32);
  ColumnRing ring(2);
  ring.append(random_chunk(2, 10, rng));
  const CMat big = random_chunk(2, 500, rng);
  ring.append(big);
  EXPECT_EQ(ring.cols(), 510u);
  ring.drop_front(505);
  EXPECT_EQ(ring.cols(), 5u);
  for (std::size_t c = 0; c < 5; ++c) {
    EXPECT_EQ(ring.at(0, c), big(0, 495 + c));
  }
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_GT(ring.capacity(), 0u);  // allocation retained
  ring.append(random_chunk(2, 3, rng));
  EXPECT_EQ(ring.cols(), 3u);
}

TEST(ColumnRing, RejectsMismatchedRows) {
  Rng rng(33);
  ColumnRing ring(3);
  EXPECT_THROW(ring.append(random_chunk(2, 4, rng)), InvalidArgument);
  ring.append(random_chunk(3, 4, rng));
  EXPECT_THROW(ring.drop_front(5), InvalidArgument);
}

TEST(CMatResize, ReusesAllocationAndReshapes) {
  CMat m(4, 8);
  m(3, 7) = cd{1.0, 2.0};
  m.resize(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.resize(5, 5);
  EXPECT_EQ(m.data().size(), 25u);
}

}  // namespace
}  // namespace sa
