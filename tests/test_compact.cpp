// Tests for the sa/common/compact state substrate: FlatLruMap checked
// against a reference model (std::unordered_map + std::list recency)
// under heavy churn with an adversarial hash, backward-shift deletion
// keeping probe runs findable, exact recency order across rehash and
// copy/move; MacPrefilter's zero-false-negative guarantee across
// eviction epochs and rebuilds; TimerWheel expiry ordering across
// levels and the overflow cascade at the 2^32 boundary; and the
// RateLimitPolicy's wheel-based window matching a sliding-window
// reference decision-for-decision.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sa/common/compact/flat_lru_map.hpp"
#include "sa/common/compact/mac_prefilter.hpp"
#include "sa/common/compact/timer_wheel.hpp"
#include "sa/mac/address.hpp"
#include "sa/secure/coordinator.hpp"
#include "sa/secure/policy.hpp"

namespace sa {
namespace {

// ------------------------------------------------------ FlatLruMap

/// Deterministic xorshift — the tests must not depend on libstdc++'s
/// distribution implementations.
struct TestRng {
  std::uint64_t s;
  explicit TestRng(std::uint64_t seed) : s(seed | 1) {}
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

/// Adversarial hash: collapses keys into 4 buckets so every operation
/// lands in long shared probe runs — the worst case for backward-shift
/// deletion and link re-patching. compact_mix64 is applied on top by
/// the map, but a 4-valued input keeps collisions dense regardless.
struct CollidingHash {
  std::size_t operator()(int k) const {
    return static_cast<std::size_t>(k & 3);
  }
};

/// Reference model: exact LRU semantics, no hashing tricks.
class ReferenceLru {
 public:
  explicit ReferenceLru(std::size_t max_entries) : max_(max_entries) {}

  struct Emplaced {
    bool inserted = false;
    bool evicted = false;
    int evicted_key = 0;
  };

  Emplaced get_or_emplace(int key, int value) {
    Emplaced r;
    auto it = index_.find(key);
    if (it != index_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      return r;
    }
    if (max_ > 0 && order_.size() >= max_) {
      r.evicted = true;
      r.evicted_key = order_.back().first;
      index_.erase(order_.back().first);
      order_.pop_back();
    }
    order_.emplace_front(key, value);
    index_[key] = order_.begin();
    r.inserted = true;
    return r;
  }

  int* find(int key) {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->second;
  }

  int* touch(int key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  bool erase(int key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  std::size_t size() const { return order_.size(); }
  /// (key, value) pairs from most to least recently used.
  std::vector<std::pair<int, int>> mru_order() const {
    return {order_.begin(), order_.end()};
  }

 private:
  std::size_t max_;
  std::list<std::pair<int, int>> order_;  ///< front = MRU
  std::unordered_map<int, std::list<std::pair<int, int>>::iterator> index_;
};

std::vector<std::pair<int, int>> mru_order(
    const FlatLruMap<int, int, CollidingHash>& map) {
  std::vector<std::pair<int, int>> out;
  map.for_each_lru([&](int k, int v) { out.emplace_back(k, v); });
  return out;
}

TEST(FlatLruMap, MatchesReferenceModelUnderChurn) {
  constexpr std::size_t kBound = 32;
  constexpr int kKeySpace = 96;  // 3x the bound: constant eviction
  FlatLruMap<int, int, CollidingHash> map(kBound);
  ReferenceLru ref(kBound);
  TestRng rng(0x5eed);

  for (int step = 0; step < 20000; ++step) {
    const int key = static_cast<int>(rng.below(kKeySpace));
    switch (rng.below(4)) {
      case 0: {  // insert-or-refresh
        const int value = static_cast<int>(rng.next() & 0xffff);
        const auto got = map.get_or_emplace(key, value);
        const auto want = ref.get_or_emplace(key, value);
        ASSERT_EQ(got.inserted, want.inserted) << "step " << step;
        ASSERT_EQ(got.evicted, want.evicted) << "step " << step;
        if (want.evicted) {
          ASSERT_EQ(got.evicted_key, want.evicted_key) << "step " << step;
        }
        if (want.inserted) *ref.find(key) = *got.value;  // same stored value
        break;
      }
      case 1: {  // pure read
        int* got = map.find(key);
        int* want = ref.find(key);
        ASSERT_EQ(got == nullptr, want == nullptr) << "step " << step;
        if (want != nullptr) ASSERT_EQ(*got, *want) << "step " << step;
        break;
      }
      case 2: {  // read with recency refresh
        int* got = map.touch(key);
        int* want = ref.touch(key);
        ASSERT_EQ(got == nullptr, want == nullptr) << "step " << step;
        if (want != nullptr) ASSERT_EQ(*got, *want) << "step " << step;
        break;
      }
      case 3:  // backward-shift erase
        ASSERT_EQ(map.erase(key), ref.erase(key)) << "step " << step;
        break;
    }
    ASSERT_EQ(map.size(), ref.size()) << "step " << step;
    if (step % 256 == 0) {
      ASSERT_EQ(mru_order(map), ref.mru_order()) << "step " << step;
    }
  }
  EXPECT_EQ(mru_order(map), ref.mru_order());
}

TEST(FlatLruMap, BackwardShiftKeepsProbeRunsFindable) {
  // All keys collide into 4 home slots, so the table is a handful of
  // long contiguous probe runs. Erasing from the middle of a run must
  // shift its successors back, or the keys beyond the hole vanish.
  FlatLruMap<int, int, CollidingHash> map(0);
  for (int k = 0; k < 64; ++k) map.get_or_emplace(k, k * 10);
  for (int k = 8; k < 64; k += 7) ASSERT_TRUE(map.erase(k));
  for (int k = 0; k < 64; ++k) {
    const bool erased = (k >= 8 && (k - 8) % 7 == 0);
    const int* v = map.find(k);
    ASSERT_EQ(v == nullptr, erased) << "key " << k;
    if (v != nullptr) EXPECT_EQ(*v, k * 10);
  }
}

TEST(FlatLruMap, EvictsLeastRecentlyUsedAtBound) {
  FlatLruMap<int, int> map(3);
  map.get_or_emplace(1, 10);
  map.get_or_emplace(2, 20);
  map.get_or_emplace(3, 30);
  ASSERT_NE(map.lru_key(), nullptr);
  EXPECT_EQ(*map.lru_key(), 1);
  map.touch(1);  // 2 becomes LRU
  const auto r = map.get_or_emplace(4, 40);
  EXPECT_TRUE(r.inserted);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_key, 2);
  EXPECT_FALSE(map.contains(2));
  EXPECT_TRUE(map.contains(1));
  EXPECT_EQ(map.size(), 3u);
}

TEST(FlatLruMap, FindDoesNotRefreshRecencyButTouchDoes) {
  FlatLruMap<int, int> map(8);
  map.get_or_emplace(1, 0);
  map.get_or_emplace(2, 0);
  map.find(1);  // pure read: 1 stays LRU
  ASSERT_NE(map.lru_key(), nullptr);
  EXPECT_EQ(*map.lru_key(), 1);
  map.touch(1);  // now 2 is LRU
  EXPECT_EQ(*map.lru_key(), 2);
  EXPECT_EQ(*map.mru_key(), 1);
}

TEST(FlatLruMap, RehashPreservesRecencyOrderExactly) {
  // Unbounded map grown through several rehashes; the recency order
  // must come out identical to the insertion/touch history.
  FlatLruMap<int, int, CollidingHash> map(0);
  ReferenceLru ref(0);
  for (int k = 0; k < 500; ++k) {
    map.get_or_emplace(k, k);
    ref.get_or_emplace(k, k);
    if (k % 3 == 0 && k > 10) {
      map.touch(k / 2);
      ref.touch(k / 2);
    }
  }
  EXPECT_GT(map.capacity(), 500u);  // it did rehash
  EXPECT_EQ(mru_order(map), ref.mru_order());
}

TEST(FlatLruMap, CopyAndMovePreserveEntriesAndOrder) {
  FlatLruMap<int, int, CollidingHash> map(16);
  for (int k = 0; k < 16; ++k) map.get_or_emplace(k, k * 2);
  map.touch(3);
  map.erase(7);

  FlatLruMap<int, int, CollidingHash> copy(map);
  EXPECT_EQ(mru_order(copy), mru_order(map));
  EXPECT_EQ(copy.max_entries(), map.max_entries());

  const auto before = mru_order(map);
  FlatLruMap<int, int, CollidingHash> moved(std::move(map));
  EXPECT_EQ(mru_order(moved), before);
  EXPECT_EQ(map.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty

  copy.get_or_emplace(100, 1);  // the copy is independent
  EXPECT_FALSE(moved.contains(100));
}

TEST(FlatLruMap, HoldsNonTriviallyCopyableValues) {
  FlatLruMap<int, std::string> map(4);
  map.get_or_emplace(1, "one");
  map.get_or_emplace(2, std::string(100, 'x'));  // heap-allocated
  for (int k = 3; k < 20; ++k) map.get_or_emplace(k, "spill");
  EXPECT_EQ(map.size(), 4u);
  FlatLruMap<int, std::string> copy(map);
  auto& self = copy;
  copy = self;  // self-assignment must not destroy the entries
  EXPECT_EQ(copy.size(), 4u);
}

// ---------------------------------------------------- MacPrefilter

TEST(MacPrefilter, NeverFalseNegativeAcrossEvictionEpochs) {
  // Drive a bounded map through 2000 admissions (31x its capacity) the
  // way the spoof detector does: insert into the filter at admission,
  // note_erase on eviction, rebuild when the filter asks. After every
  // step, every live key must still pass the filter — a single false
  // negative would make the exact structure invisible.
  constexpr std::size_t kBound = 64;
  FlatLruMap<MacAddress, int> live(kBound);
  MacPrefilter filter(kBound);
  std::size_t rebuilds = 0;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    const MacAddress mac = MacAddress::from_index(i);
    const auto r = live.get_or_emplace(mac, 0);
    ASSERT_TRUE(r.inserted);
    if (r.evicted) filter.note_erase();
    filter.insert(mac);
    if (filter.should_rebuild(live.size())) {
      ++rebuilds;
      filter.rebuild(live.size(), [&](auto&& add) {
        live.for_each([&](const MacAddress& key, int) { add(key); });
      });
    }
    live.for_each([&](const MacAddress& key, int) {
      ASSERT_TRUE(filter.maybe_contains(key))
          << "false negative after admission " << i;
    });
  }
  EXPECT_GT(rebuilds, 0u) << "the eviction churn never triggered a rebuild";
}

TEST(MacPrefilter, RebuildRestoresSelectivity) {
  // After churning far past capacity the un-rebuilt filter saturates;
  // a rebuild from the 64 live keys must make (nearly) all of the
  // evicted majority fast-miss again. The bound is loose — blocked
  // Bloom false positives are expected — but saturation would fail it.
  constexpr std::size_t kBound = 64;
  FlatLruMap<MacAddress, int> live(kBound);
  MacPrefilter filter(kBound);
  for (std::uint32_t i = 0; i < 4096; ++i) {
    const auto r = live.get_or_emplace(MacAddress::from_index(i), 0);
    if (r.evicted) filter.note_erase();
    filter.insert(MacAddress::from_index(i));
  }
  filter.rebuild(live.size(), [&](auto&& add) {
    live.for_each([&](const MacAddress& key, int) { add(key); });
  });
  std::size_t false_positives = 0;
  for (std::uint32_t i = 0; i < 4096 - kBound; ++i) {  // all evicted keys
    if (filter.maybe_contains(MacAddress::from_index(i))) ++false_positives;
  }
  EXPECT_LT(false_positives, 4096u / 10);
}

// ------------------------------------------------------ TimerWheel

TEST(TimerWheel, FiresInDeadlineOrderAcrossLevels) {
  TimerWheel<int> wheel;
  // Deadlines straddling level 0 (<256), level 1 (<65536) and level 2
  // (<2^24), scheduled in shuffled order.
  const std::vector<std::uint64_t> deadlines = {
      70000, 3, 256, 65535, 1, 255, 65536, (1u << 20) + 3, 257, 4095};
  for (std::size_t i = 0; i < deadlines.size(); ++i) {
    wheel.schedule(deadlines[i], static_cast<int>(i));
  }
  EXPECT_EQ(wheel.scheduled(), deadlines.size());

  std::vector<std::pair<std::uint64_t, int>> fired;
  wheel.advance((1u << 20) + 10, [&](int payload, std::uint64_t deadline) {
    fired.emplace_back(deadline, payload);
    EXPECT_EQ(wheel.now(), deadline);  // fired exactly on time
  });
  ASSERT_EQ(fired.size(), deadlines.size());
  EXPECT_EQ(wheel.scheduled(), 0u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1].first, fired[i].first) << "out of order at " << i;
  }
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i].first, deadlines[fired[i].second]);
  }
}

TEST(TimerWheel, PastDeadlineFiresOnNextAdvance) {
  TimerWheel<int> wheel;
  wheel.advance(100, [](int, std::uint64_t) { FAIL(); });
  wheel.schedule(5, 1);  // already past: clamped to now + 1
  int fired = 0;
  wheel.advance(101, [&](int, std::uint64_t deadline) {
    ++fired;
    EXPECT_EQ(deadline, 101u);
  });
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, FireMayRescheduleLazily) {
  // The spoof detector's idle-expiry pattern: the handler re-schedules
  // while the wheel is mid-advance and the new event fires later in the
  // same sweep.
  TimerWheel<int> wheel;
  std::vector<std::uint64_t> fired_at;
  wheel.schedule(10, 0);
  wheel.advance(400, [&](int hop, std::uint64_t deadline) {
    fired_at.push_back(deadline);
    if (hop < 2) wheel.schedule(deadline + 100, hop + 1);
  });
  EXPECT_EQ(fired_at, (std::vector<std::uint64_t>{10, 110, 210}));
  EXPECT_EQ(wheel.scheduled(), 0u);
}

TEST(TimerWheel, OverflowEventsSurviveTheTopLevelCascade) {
  // An event more than 2^32 ticks out parks in the overflow list. Start
  // just below the 2^32 boundary so the top-level cascade (which only
  // happens every 2^32 ticks) runs after a few steps: the event must be
  // re-examined and kept — not fired early, not lost.
  const std::uint64_t boundary = std::uint64_t{1} << 32;
  TimerWheel<int> wheel(boundary - 100);
  wheel.schedule(boundary - 100 + (std::uint64_t{1} << 32) + 50, 7);
  EXPECT_EQ(wheel.scheduled(), 1u);
  wheel.advance(boundary + 100, [](int, std::uint64_t) {
    FAIL() << "overflow event fired 2^32 ticks early";
  });
  EXPECT_EQ(wheel.scheduled(), 1u);  // survived the cascade intact
}

// ------------------------------------- RateLimitPolicy equivalence

/// The pre-wheel implementation, reconstructed as a reference: per-MAC
/// admit timestamps pruned on access (an admit at frame a leaves the
/// window once a + window_frames <= now), unbounded tracking.
class SlidingWindowReference {
 public:
  explicit SlidingWindowReference(const RateLimitConfig& cfg) : cfg_(cfg) {}

  bool admit(const MacAddress& mac, std::size_t now) {
    auto& admits = history_[mac];
    while (!admits.empty() && admits.front() + cfg_.window_frames <= now) {
      admits.pop_front();
    }
    if (admits.size() >= cfg_.max_frames) return false;
    admits.push_back(now);
    return true;
  }

 private:
  RateLimitConfig cfg_;
  std::unordered_map<MacAddress, std::deque<std::size_t>> history_;
};

ApObservation rate_obs(const MacAddress& source) {
  ApObservation o;
  o.ap_position = {0.0, 0.0};
  o.packet.detection.fine_peak = 1.0;
  o.packet.bearing_world_deg = {45.0};
  o.packet.frame =
      Frame::data(MacAddress::from_index(0xFF), source, Bytes{1}, 0);
  return o;
}

TEST(RateLimitPolicy, WheelMatchesSlidingWindowReference) {
  RateLimitConfig cfg;
  cfg.max_frames = 5;
  cfg.window_frames = 37;  // deliberately not a power of two
  cfg.max_tracked_macs = 64;  // in-capacity: 8 MACs tracked below
  RateLimitPolicy policy(cfg);
  SlidingWindowReference ref(cfg);
  TestRng rng(0xacce55);

  std::size_t now = 0;
  std::size_t denied = 0;
  for (int step = 0; step < 8000; ++step) {
    // Mostly consecutive frames, occasionally a long quiet gap that
    // drains whole windows (the erase-on-zero path in the wheel).
    now += rng.below(100) == 0 ? 300 : 1 + rng.below(3);
    const MacAddress mac =
        MacAddress::from_index(static_cast<std::uint32_t>(rng.below(8)));
    const std::vector<ApObservation> obs{rate_obs(mac)};
    FrameContext ctx(obs, Coordinator::best_observation(obs), now, {});
    const PolicyVerdict got = policy.evaluate(ctx);
    const bool want_admit = ref.admit(mac, now);
    ASSERT_EQ(!got.drop, want_admit) << "frame " << now << " step " << step;
    if (got.drop) ++denied;
  }
  EXPECT_GT(denied, 0u) << "the load never hit the limit: test too weak";
}

TEST(RateLimitPolicy, DeniedFramesDoNotConsumeBudget) {
  RateLimitConfig cfg;
  cfg.max_frames = 2;
  cfg.window_frames = 10;
  RateLimitPolicy policy(cfg);
  const MacAddress mac = MacAddress::from_index(1);
  auto eval = [&](std::size_t now) {
    const std::vector<ApObservation> obs{rate_obs(mac)};
    FrameContext ctx(obs, Coordinator::best_observation(obs), now, {});
    return !policy.evaluate(ctx).drop;
  };
  EXPECT_TRUE(eval(0));
  EXPECT_TRUE(eval(1));
  for (std::size_t f = 2; f < 10; ++f) EXPECT_FALSE(eval(f));
  // The admits at 0 and 1 leave the window at 10 and 11 — the denials
  // in between must not have extended the occupancy.
  EXPECT_TRUE(eval(10));
  EXPECT_TRUE(eval(11));
  EXPECT_FALSE(eval(12));
}

TEST(RateLimitPolicy, EvictionGenerationGuardsStaleDecrements) {
  // Tight tracking bound: MAC A's window entry is LRU-evicted by other
  // traffic while its decrement is still parked in the wheel. When A
  // returns (a fresh generation), the stale decrement must not debit
  // the new window — otherwise A would get budget it never had.
  RateLimitConfig cfg;
  cfg.max_frames = 1;
  cfg.window_frames = 50;
  cfg.max_tracked_macs = 2;
  RateLimitPolicy policy(cfg);
  auto eval = [&](std::uint32_t mac_index, std::size_t now) {
    const MacAddress mac = MacAddress::from_index(mac_index);
    const std::vector<ApObservation> obs{rate_obs(mac)};
    FrameContext ctx(obs, Coordinator::best_observation(obs), now, {});
    return !policy.evaluate(ctx).drop;
  };
  EXPECT_TRUE(eval(1, 0));   // A admitted; decrement due at 50
  EXPECT_TRUE(eval(2, 1));   // fill the 2-entry map...
  EXPECT_TRUE(eval(3, 2));   // ...and evict A
  EXPECT_TRUE(eval(1, 3));   // A re-enters with a fresh window (gen 4)
  EXPECT_FALSE(eval(1, 4));  // and is at its 1-frame limit
  // At 50 the stale generation-1 decrement fires and must be ignored;
  // A's live admit from frame 3 expires at 53, not before.
  EXPECT_FALSE(eval(1, 50));
  EXPECT_FALSE(eval(1, 52));
  EXPECT_TRUE(eval(1, 53));
}

}  // namespace
}  // namespace sa
