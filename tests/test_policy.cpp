// Unit tests for the composable SecurityPolicy chain: ordering and
// short-circuiting, per-policy counters, the built-in policies (decode,
// ACL, fence, spoof, rate limit), FrameContext's cached localization,
// the legacy FrameAction mapping, string_view detail stability across
// copies, and the spoof detector's LRU tracker bound.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "sa/common/angles.hpp"
#include "sa/common/error.hpp"
#include "sa/common/geometry.hpp"
#include "sa/engine/sharded_spoof.hpp"
#include "sa/secure/coordinator.hpp"
#include "sa/secure/policy.hpp"
#include "sa/secure/spoofdetector.hpp"

namespace sa {
namespace {

// ------------------------------------------------------------- fixtures

/// One fabricated AP view: a decoded (or undecodable) frame with chosen
/// world bearings — enough for every policy except the spoof judge.
ApObservation make_obs(Vec2 ap_position, std::vector<double> bearings,
                       std::optional<MacAddress> source,
                       double fine_peak = 1.0) {
  ApObservation o;
  o.ap_position = ap_position;
  o.packet.detection.fine_peak = fine_peak;
  o.packet.bearing_world_deg = std::move(bearings);
  if (source) {
    o.packet.frame = Frame::data(MacAddress::from_index(0xFF), *source,
                                 Bytes{1}, 0);
  }
  return o;
}

/// Two APs that localize the client to `target`.
std::vector<ApObservation> two_ap_view(Vec2 target,
                                       std::optional<MacAddress> source) {
  const Vec2 a{0.0, 0.0}, b{12.0, 0.0};
  return {make_obs(a, {bearing_deg(a, target)}, source, 2.0),
          make_obs(b, {bearing_deg(b, target)}, source, 1.0)};
}

FrameContext context_for(const std::vector<ApObservation>& obs,
                         std::size_t frame_index = 0,
                         std::optional<SpoofObservation> spoof = {}) {
  return FrameContext(obs, Coordinator::best_observation(obs), frame_index,
                      spoof);
}

/// A synthetic signature with one bump at `angle_deg` (for the spoof
/// detector's LRU tests; content is irrelevant there).
AoaSignature signature_at(double angle_deg) {
  std::vector<double> angles, values;
  for (int a = 0; a < 360; a += 2) {
    angles.push_back(a);
    const double d = angular_distance_deg(a, angle_deg);
    values.push_back(1e-3 + std::exp(-d * d / 50.0));
  }
  return AoaSignature::from_spectrum(
      Pseudospectrum(std::move(angles), std::move(values), true));
}

/// Test double: records evaluations, drops on request.
class ProbePolicy final : public SecurityPolicy {
 public:
  ProbePolicy(std::string_view name, bool drop, int* evaluations)
      : name_(name), drop_(drop), evaluations_(evaluations) {}
  std::string_view name() const override { return name_; }
  PolicyVerdict evaluate(FrameContext&) override {
    ++*evaluations_;
    return drop_ ? PolicyVerdict::deny("probe says no")
                 : PolicyVerdict::accept();
  }

 private:
  std::string_view name_;
  bool drop_;
  int* evaluations_;
};

// ------------------------------------------------------------ the chain

TEST(PolicyChain, RunsInDeclaredOrderAndShortCircuits) {
  int first = 0, dropper = 0, after = 0;
  PolicyChain chain;
  chain.add(std::make_unique<ProbePolicy>("first", false, &first))
      .add(std::make_unique<ProbePolicy>("dropper", true, &dropper))
      .add(std::make_unique<ProbePolicy>("after", false, &after));

  const auto obs = two_ap_view({6.0, 4.0}, MacAddress::from_index(1));
  auto ctx = context_for(obs);
  const FrameDecision d = chain.run(ctx);

  EXPECT_FALSE(d.accepted);
  EXPECT_EQ(d.policy, "dropper");
  EXPECT_EQ(d.detail, "probe says no");
  EXPECT_EQ(first, 1);
  EXPECT_EQ(dropper, 1);
  EXPECT_EQ(after, 0);  // short-circuited
  ASSERT_EQ(d.trace.size(), 2u);
  EXPECT_EQ(d.trace[0].policy, "first");
  EXPECT_FALSE(d.trace[0].dropped);
  EXPECT_EQ(d.trace[1].policy, "dropper");
  EXPECT_TRUE(d.trace[1].dropped);
}

TEST(PolicyChain, KeepsPerPolicyCounters) {
  int a = 0, b = 0;
  PolicyChain chain;
  chain.add(std::make_unique<ProbePolicy>("a", false, &a))
      .add(std::make_unique<ProbePolicy>("b", true, &b));
  const auto obs = two_ap_view({6.0, 4.0}, MacAddress::from_index(1));
  for (int i = 0; i < 3; ++i) {
    auto ctx = context_for(obs, i);
    chain.run(ctx);
  }
  EXPECT_EQ(chain.frames(), 3u);
  EXPECT_EQ(chain.accepted(), 0u);
  EXPECT_EQ(chain.drops("b"), 3u);
  EXPECT_EQ(chain.drops("a"), 0u);
  EXPECT_EQ(chain.drops("nonexistent"), 0u);
  EXPECT_TRUE(chain.contains("a"));
  EXPECT_FALSE(chain.contains("c"));
  const auto& stats = chain.policy_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].evaluated, 3u);
  EXPECT_EQ(stats[0].accepted, 3u);
  EXPECT_EQ(stats[1].evaluated, 3u);
  EXPECT_EQ(stats[1].dropped, 3u);
}

TEST(PolicyChain, EmptyChainAcceptsEverything) {
  PolicyChain chain;
  const auto obs = two_ap_view({6.0, 4.0}, std::nullopt);
  auto ctx = context_for(obs);
  const FrameDecision d = chain.run(ctx);
  EXPECT_TRUE(d.accepted);
  EXPECT_EQ(d.detail, "accepted");
  EXPECT_TRUE(d.trace.empty());
}

TEST(FrameDecision, ActionMapsDefaultChainBackToLegacyEnum) {
  FrameDecision d;
  EXPECT_EQ(d.action(), FrameAction::kAccept);
  d.accepted = false;
  d.policy = DecodePolicy::kName;
  EXPECT_EQ(d.action(), FrameAction::kDropUndecodable);
  d.policy = SpoofPolicy::kName;
  EXPECT_EQ(d.action(), FrameAction::kDropSpoof);
  d.policy = FencePolicy::kName;
  EXPECT_EQ(d.action(), FrameAction::kDropFence);
  d.policy = AclPolicy::kName;
  EXPECT_EQ(d.action(), FrameAction::kDropPolicy);
  d.policy = RateLimitPolicy::kName;
  EXPECT_EQ(d.action(), FrameAction::kDropPolicy);
  d.policy = "someone-elses-policy";
  EXPECT_EQ(d.action(), FrameAction::kDropPolicy);
}

TEST(FrameContext, LocalizationIsSolvedOnceAndCached) {
  auto obs = two_ap_view({6.0, 4.0}, MacAddress::from_index(1));
  auto ctx = context_for(obs);
  EXPECT_FALSE(ctx.localization_computed());
  const auto& first = ctx.localization();
  ASSERT_TRUE(first.has_value());
  EXPECT_NEAR(first->position.x, 6.0, 1e-6);
  EXPECT_NEAR(first->position.y, 4.0, 1e-6);
  EXPECT_TRUE(ctx.localization_computed());
  // Mutate the underlying bearings: a second call must return the cached
  // solution, proving fence-like policies share one solve.
  obs[0].packet.bearing_world_deg = {123.0};
  obs[1].packet.bearing_world_deg = {321.0};
  const auto& second = ctx.localization();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->position.x, first->position.x);
  EXPECT_EQ(second->position.y, first->position.y);
}

TEST(FrameContext, ExposesDecodedSource) {
  const auto mac = MacAddress::from_index(7);
  const auto obs = two_ap_view({6.0, 4.0}, mac);
  auto ctx = context_for(obs);
  EXPECT_TRUE(ctx.decoded());
  ASSERT_TRUE(ctx.source().has_value());
  EXPECT_EQ(*ctx.source(), mac);

  const auto undecoded = two_ap_view({6.0, 4.0}, std::nullopt);
  auto ctx2 = context_for(undecoded);
  EXPECT_FALSE(ctx2.decoded());
  EXPECT_FALSE(ctx2.source().has_value());
}

// ------------------------------------------------------ built-in policies

TEST(DecodePolicy, DropsUndecodableFrames) {
  DecodePolicy policy;
  const auto good = two_ap_view({6.0, 4.0}, MacAddress::from_index(1));
  auto ctx = context_for(good);
  EXPECT_FALSE(policy.evaluate(ctx).drop);

  const auto bad = two_ap_view({6.0, 4.0}, std::nullopt);
  auto ctx2 = context_for(bad);
  const auto v = policy.evaluate(ctx2);
  EXPECT_TRUE(v.drop);
  EXPECT_EQ(v.detail, DecodePolicy::kDetailUndecodable);
}

TEST(AclPolicy, AllowsListedMacsOnly) {
  AccessControlList acl;
  acl.allow(MacAddress::from_index(1));
  AclPolicy policy(acl);

  const auto listed = two_ap_view({6.0, 4.0}, MacAddress::from_index(1));
  auto ctx = context_for(listed);
  EXPECT_FALSE(policy.evaluate(ctx).drop);

  const auto unlisted = two_ap_view({6.0, 4.0}, MacAddress::from_index(2));
  auto ctx2 = context_for(unlisted);
  const auto v = policy.evaluate(ctx2);
  EXPECT_TRUE(v.drop);
  EXPECT_EQ(v.detail, AclPolicy::kDetailDenied);
}

TEST(FencePolicy, FailClosedDropsUnderheardFrames) {
  FencePolicy closed(VirtualFence(Polygon::rectangle({0, 0}, {12, 10})),
                     /*min_aps=*/2, /*fail_open=*/false);
  const std::vector<ApObservation> one_ap{
      make_obs({0.0, 0.0}, {45.0}, MacAddress::from_index(1))};
  auto ctx = context_for(one_ap);
  const auto v = closed.evaluate(ctx);
  EXPECT_TRUE(v.drop);
  EXPECT_EQ(v.detail, FencePolicy::kDetailTooFewAps);
  // Fail closed never even tries to localize.
  EXPECT_FALSE(ctx.localization_computed());
}

TEST(FencePolicy, FailOpenWavesUnderheardFramesThrough) {
  FencePolicy open(VirtualFence(Polygon::rectangle({0, 0}, {12, 10})),
                   /*min_aps=*/2, /*fail_open=*/true);
  const std::vector<ApObservation> one_ap{
      make_obs({0.0, 0.0}, {45.0}, MacAddress::from_index(1))};
  auto ctx = context_for(one_ap);
  EXPECT_FALSE(open.evaluate(ctx).drop);
  EXPECT_FALSE(ctx.localization_computed());
}

TEST(FencePolicy, DropsClientsLocalizedOutside) {
  FencePolicy policy(VirtualFence(Polygon::rectangle({0, 0}, {12, 10})), 2,
                     false);
  // Inside.
  auto inside = two_ap_view({6.0, 4.0}, MacAddress::from_index(1));
  auto ctx = context_for(inside);
  EXPECT_FALSE(policy.evaluate(ctx).drop);
  EXPECT_TRUE(ctx.localization_computed());
  // Outside (localizes fine, fails the boundary test).
  auto outside = two_ap_view({20.0, 4.0}, MacAddress::from_index(1));
  auto ctx2 = context_for(outside);
  const auto v = policy.evaluate(ctx2);
  EXPECT_TRUE(v.drop);
  EXPECT_EQ(v.detail, "outside fence");
}

TEST(SpoofPolicy, DropsOnSpoofVerdictOnly) {
  SpoofPolicy policy;
  const auto obs = two_ap_view({6.0, 4.0}, MacAddress::from_index(1));
  for (const SpoofVerdict verdict :
       {SpoofVerdict::kTraining, SpoofVerdict::kLegitimate}) {
    auto ctx = context_for(obs, 0, SpoofObservation{verdict, 0.9});
    EXPECT_FALSE(policy.evaluate(ctx).drop);
  }
  auto ctx = context_for(obs, 0, SpoofObservation{SpoofVerdict::kSpoof, 0.1});
  const auto v = policy.evaluate(ctx);
  EXPECT_TRUE(v.drop);
  EXPECT_EQ(v.detail, SpoofPolicy::kDetailSpoof);
  // No judge in play (e.g. chain without spoof): accept.
  auto ctx2 = context_for(obs);
  EXPECT_FALSE(policy.evaluate(ctx2).drop);
}

TEST(RateLimitPolicy, EnforcesPerMacWindow) {
  RateLimitConfig cfg;
  cfg.max_frames = 2;
  cfg.window_frames = 10;
  RateLimitPolicy policy(cfg);
  const auto mac1 = two_ap_view({6.0, 4.0}, MacAddress::from_index(1));
  const auto mac2 = two_ap_view({6.0, 4.0}, MacAddress::from_index(2));

  auto eval = [&](const std::vector<ApObservation>& obs, std::size_t index) {
    auto ctx = context_for(obs, index);
    return policy.evaluate(ctx);
  };
  EXPECT_FALSE(eval(mac1, 0).drop);
  EXPECT_FALSE(eval(mac1, 1).drop);
  const auto v = eval(mac1, 2);  // third frame in the window
  EXPECT_TRUE(v.drop);
  EXPECT_EQ(v.detail, RateLimitPolicy::kDetailLimited);
  // Another MAC is unaffected.
  EXPECT_FALSE(eval(mac2, 3).drop);
  // Once the window slides past the burst, the MAC may send again.
  EXPECT_FALSE(eval(mac1, 25).drop);
}

TEST(RateLimitPolicy, WindowEdgeFramesCountInExactlyOneWindow) {
  // The window covering frame index `now` is [now - W + 1, now] — W
  // indices inclusive. A frame landing exactly on an edge must be
  // counted in exactly one window position at a time: it still counts
  // at distance W-1 (deny) and is pruned at distance W (accept), with
  // no double-count and no off-by-one gap. The same RateLimitPolicy
  // instance runs inside the one Coordinator whether driven serially or
  // by the (sharded) engine's re-sequenced stream, and frame indices
  // are the chain's global frame counter in both, so this pins the
  // boundary behavior for both paths.
  RateLimitConfig cfg;
  cfg.max_frames = 1;
  cfg.window_frames = 10;
  RateLimitPolicy policy(cfg);
  const auto obs = two_ap_view({6.0, 4.0}, MacAddress::from_index(1));
  auto eval = [&](std::size_t index) {
    auto ctx = context_for(obs, index);
    return policy.evaluate(ctx).drop;
  };
  EXPECT_FALSE(eval(0));   // accepted: occupies windows ending 0..9
  EXPECT_TRUE(eval(9));    // exactly on the far edge: still in-window
  EXPECT_FALSE(eval(10));  // one past the edge: frame 0 pruned, accepted
  // The frame accepted at 10 now owns windows ending 10..19.
  EXPECT_TRUE(eval(19));
  EXPECT_FALSE(eval(20));

  // The very first window (now < W) is clipped at zero, not wrapped:
  // indices 21..29 are all within frame 20's window.
  RateLimitPolicy early(cfg);
  auto eval_early = [&](std::size_t index) {
    auto ctx = context_for(obs, index);
    return early.evaluate(ctx).drop;
  };
  EXPECT_FALSE(eval_early(0));
  EXPECT_TRUE(eval_early(1));
  EXPECT_TRUE(eval_early(9));
  EXPECT_FALSE(eval_early(10));
}

TEST(RateLimitPolicy, DeniedFrameDoesNotConsumeWindowBudget) {
  // A frame dropped by the limiter is not recorded: it must not extend
  // the denial past the original burst's window.
  RateLimitConfig cfg;
  cfg.max_frames = 1;
  cfg.window_frames = 10;
  RateLimitPolicy policy(cfg);
  const auto obs = two_ap_view({6.0, 4.0}, MacAddress::from_index(1));
  auto eval = [&](std::size_t index) {
    auto ctx = context_for(obs, index);
    return policy.evaluate(ctx).drop;
  };
  EXPECT_FALSE(eval(0));
  EXPECT_TRUE(eval(5));   // denied — consumes nothing
  EXPECT_FALSE(eval(10)); // frame 0 aged out; the denial at 5 left no trace
}

TEST(RateLimitPolicy, FailsClosedWithoutSourceMac) {
  RateLimitPolicy policy(RateLimitConfig{});
  const auto obs = two_ap_view({6.0, 4.0}, std::nullopt);
  auto ctx = context_for(obs);
  const auto v = policy.evaluate(ctx);
  EXPECT_TRUE(v.drop);
  EXPECT_EQ(v.detail, RateLimitPolicy::kDetailNoSource);
}

TEST(RateLimitPolicy, BoundsTrackedMacsWithLruEviction) {
  RateLimitConfig cfg;
  cfg.max_frames = 8;
  cfg.window_frames = 1000;
  cfg.max_tracked_macs = 2;
  RateLimitPolicy policy(cfg);
  auto eval = [&](int mac, std::size_t index) {
    const auto obs = two_ap_view({6.0, 4.0}, MacAddress::from_index(mac));
    auto ctx = context_for(obs, index);
    return policy.evaluate(ctx);
  };
  eval(1, 0);
  eval(2, 1);
  eval(1, 2);     // refresh MAC 1: MAC 2 is now least recent
  eval(3, 3);     // evicts MAC 2
  EXPECT_EQ(policy.tracked_macs(), 2u);
  EXPECT_EQ(policy.evictions(), 1u);
}

TEST(RateLimitPolicy, RejectsDegenerateConfig) {
  RateLimitConfig zero_frames;
  zero_frames.max_frames = 0;
  EXPECT_THROW(RateLimitPolicy{zero_frames}, InvalidArgument);
  RateLimitConfig zero_window;
  zero_window.window_frames = 0;
  EXPECT_THROW(RateLimitPolicy{zero_window}, InvalidArgument);
}

// --------------------------------------------- detail string_view safety

TEST(FrameDecision, DetailsSurviveChainDestructionAndCopies) {
  // Decisions cross thread-pool queues and outlive the chain that made
  // them; every detail must be a string constant, not a dangling view.
  std::vector<FrameDecision> kept;
  {
    PolicyChain chain;
    chain.add(std::make_unique<DecodePolicy>());
    chain.add(std::make_unique<FencePolicy>(
        VirtualFence(Polygon::rectangle({0, 0}, {12, 10})), 2, false));
    const auto decodable = two_ap_view({6.0, 4.0}, MacAddress::from_index(1));
    const auto undecodable = two_ap_view({6.0, 4.0}, std::nullopt);
    auto c1 = context_for(decodable, 0);
    auto c2 = context_for(undecodable, 1);
    kept.push_back(chain.run(c1));
    kept.push_back(chain.run(c2));
    kept.push_back(kept[1]);  // and a copy of a copy
  }  // chain and policies destroyed here
  EXPECT_EQ(kept[0].detail, "accepted");
  ASSERT_EQ(kept[0].trace.size(), 2u);
  EXPECT_EQ(kept[0].trace[1].detail, "inside fence");
  EXPECT_EQ(kept[1].detail, DecodePolicy::kDetailUndecodable);
  EXPECT_EQ(kept[2].detail, DecodePolicy::kDetailUndecodable);
  EXPECT_EQ(kept[2].policy, DecodePolicy::kName);
}

// ------------------------------------------------- coordinator + chains

/// The README's worked example: ban one MAC outright.
class BanPolicy final : public SecurityPolicy {
 public:
  explicit BanPolicy(MacAddress banned) : banned_(banned) {}
  std::string_view name() const override { return "ban"; }
  PolicyVerdict evaluate(FrameContext& ctx) override {
    if (ctx.source() && *ctx.source() == banned_) {
      return PolicyVerdict::deny("source MAC is banned");
    }
    return PolicyVerdict::accept();
  }

 private:
  MacAddress banned_;
};

TEST(Coordinator, RunsCustomPolicyChain) {
  PolicyChain chain;
  chain.add(std::make_unique<DecodePolicy>());
  chain.add(std::make_unique<BanPolicy>(MacAddress::from_index(13)));
  Coordinator coord(CoordinatorConfig{}, std::move(chain));
  EXPECT_FALSE(coord.wants_spoof());

  const auto ok = coord.process(two_ap_view({6, 4}, MacAddress::from_index(1)));
  EXPECT_TRUE(ok.accepted);
  const auto banned =
      coord.process(two_ap_view({6, 4}, MacAddress::from_index(13)));
  EXPECT_FALSE(banned.accepted);
  EXPECT_EQ(banned.policy, "ban");
  EXPECT_EQ(banned.action(), FrameAction::kDropPolicy);
  EXPECT_EQ(coord.stats().frames, 2u);
  EXPECT_EQ(coord.stats().dropped_policy, 1u);
}

TEST(Coordinator, AclChainRequiresAclConfig) {
  CoordinatorConfig cfg;
  cfg.policies = {PolicyKind::kAcl};
  EXPECT_THROW(Coordinator{cfg}, InvalidArgument);
}

TEST(Coordinator, PolicyKindNamesRoundTrip) {
  for (const PolicyKind kind : {PolicyKind::kAcl, PolicyKind::kFence,
                                PolicyKind::kSpoof, PolicyKind::kRateLimit}) {
    const auto back = policy_kind_from_string(to_string(kind));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(policy_kind_from_string("decode").has_value());  // implicit
  EXPECT_FALSE(policy_kind_from_string("bogus").has_value());
}

// ------------------------------------------------- spoof detector bound

TEST(SpoofDetector, LruEvictionBoundsTrackedMacs) {
  SpoofDetector det(TrackerConfig{}, /*max_tracked_macs=*/2);
  const auto m1 = MacAddress::from_index(1);
  const auto m2 = MacAddress::from_index(2);
  const auto m3 = MacAddress::from_index(3);
  det.observe(m1, signature_at(40.0));
  det.observe(m2, signature_at(80.0));
  det.observe(m1, signature_at(40.0));  // refresh: m2 becomes least recent
  det.observe(m3, signature_at(120.0));  // evicts m2
  EXPECT_EQ(det.stats().tracked_macs, 2u);
  EXPECT_EQ(det.stats().evictions, 1u);
  EXPECT_NE(det.tracker(m1), nullptr);
  EXPECT_EQ(det.tracker(m2), nullptr);
  EXPECT_NE(det.tracker(m3), nullptr);
  // The evicted MAC retrains from scratch when it returns (evicting the
  // now-least-recent m1).
  det.observe(m2, signature_at(80.0));
  EXPECT_EQ(det.stats().evictions, 2u);
  ASSERT_NE(det.tracker(m2), nullptr);
  EXPECT_EQ(det.tracker(m2)->observations(), 1u);
  EXPECT_EQ(det.tracker(m1), nullptr);
}

TEST(SpoofDetector, ForgetKeepsLruConsistent) {
  SpoofDetector det(TrackerConfig{}, /*max_tracked_macs=*/2);
  const auto m1 = MacAddress::from_index(1);
  const auto m2 = MacAddress::from_index(2);
  det.observe(m1, signature_at(40.0));
  det.observe(m2, signature_at(80.0));
  det.forget(m1);
  EXPECT_EQ(det.stats().tracked_macs, 1u);
  det.forget(m1);  // idempotent
  // Room for a new MAC without eviction.
  det.observe(MacAddress::from_index(3), signature_at(120.0));
  EXPECT_EQ(det.stats().tracked_macs, 2u);
  EXPECT_EQ(det.stats().evictions, 0u);
}

TEST(SpoofDetector, UnboundedByDefault) {
  SpoofDetector det;
  for (int i = 0; i < 64; ++i) {
    det.observe(MacAddress::from_index(i), signature_at(i * 5.0));
  }
  EXPECT_EQ(det.stats().tracked_macs, 64u);
  EXPECT_EQ(det.stats().evictions, 0u);
}

TEST(ShardedSpoofDetector, SplitsTrackerBudgetAcrossShards) {
  ShardedSpoofDetector det(TrackerConfig{}, /*num_shards=*/4,
                           /*max_tracked_macs=*/16);
  for (int i = 0; i < 64; ++i) {
    det.observe(MacAddress::from_index(i), signature_at(i * 5.0));
  }
  EXPECT_LE(det.stats().tracked_macs, 16u);
  EXPECT_GT(det.stats().evictions, 0u);
  EXPECT_EQ(det.stats().packets, 64u);
}

TEST(ShardedSpoofDetector, TicketsApplyInReservedOrderAcrossOutOfOrderFulfil) {
  // The engine session's pipelined path: tickets are reserved in global
  // frame order, but workers may fulfil them in any order. The shard
  // must park early arrivals and apply everything in reserved order —
  // the gap-closing fulfil delivers the parked ticket's callback too.
  ShardedSpoofDetector det(TrackerConfig{}, /*num_shards=*/4);
  const auto mac = MacAddress::from_index(1);
  const auto sig1 = SubbandSignature::single(signature_at(40.0));
  const auto sig2 = SubbandSignature::single(signature_at(40.0));

  const SpoofTicket t1 = det.reserve(mac);
  const SpoofTicket t2 = det.reserve(mac);
  EXPECT_EQ(t1.shard, t2.shard);
  EXPECT_EQ(t2.seq, t1.seq + 1);

  std::vector<int> order;
  // Fulfil the *second* ticket first: it must park (no callback yet).
  det.fulfil(t2, mac, sig2, [&](SpoofObservation, std::exception_ptr error) {
    EXPECT_EQ(error, nullptr);
    order.push_back(2);
  });
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(det.stats().packets, 0u);
  // Fulfilling the first closes the gap and applies both, in order.
  det.fulfil(t1, mac, sig1, [&](SpoofObservation obs, std::exception_ptr error) {
    EXPECT_EQ(error, nullptr);
    EXPECT_EQ(obs.verdict, SpoofVerdict::kTraining);
    order.push_back(1);
  });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(det.stats().packets, 2u);
  // Both observations trained the same tracker, in frame order.
  ASSERT_NE(det.tracker(mac), nullptr);
  EXPECT_EQ(det.tracker(mac)->observations(), 2u);
}

TEST(ShardedSpoofDetector, RejectsBoundSmallerThanShardCount) {
  const auto make = [] {
    ShardedSpoofDetector det(TrackerConfig{}, /*num_shards=*/8,
                             /*max_tracked_macs=*/4);
  };
  EXPECT_THROW(make(), InvalidArgument);
}

}  // namespace
}  // namespace sa
