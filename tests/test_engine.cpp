// Determinism tests for the DeploymentEngine: at any thread count (and
// any shard count) the engine must emit a FrameDecision stream identical
// to the single-threaded path — serial StreamingReceivers feeding the
// same grouping and a plain Coordinator — over the Figure-4 office
// scenario, across multiple seeds.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sa/common/rng.hpp"
#include "sa/engine/deployment.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/packet.hpp"
#include "sa/testbed/office.hpp"
#include "sa/testbed/uplink.hpp"

namespace sa {
namespace {

/// Figure-4 office, 3 APs, and a pre-generated mixed workload: legitimate
/// ring clients, a MAC-spoofing insider, and an off-site transmitter.
struct EngineRig {
  OfficeTestbed tb = OfficeTestbed::figure4();
  Rng rng;
  std::vector<std::unique_ptr<AccessPoint>> aps;
  std::vector<AccessPoint*> ptrs;
  std::vector<std::vector<CMat>> rounds;  // one vector<CMat> per transmission

  explicit EngineRig(std::uint64_t seed) : rng(seed) {
    UplinkConfig ucfg;
    ucfg.channel.noise_power = 1e-5;
    UplinkSimulation sim(tb, ucfg, rng);
    for (const Vec2& spot : tb.ap_mounting_points(3)) {
      AccessPointConfig cfg;
      cfg.position = spot;
      aps.push_back(std::make_unique<AccessPoint>(cfg, rng));
      ptrs.push_back(aps.back().get());
      sim.add_ap(aps.back()->placement());
    }
    std::uint16_t seq = 0;
    auto shoot = [&](Vec2 from, std::uint32_t mac_index, const TxPattern* pat) {
      const Frame f = Frame::data(MacAddress::from_index(0xFF),
                                  MacAddress::from_index(mac_index),
                                  Bytes{1, 2, 3}, seq++);
      const CVec w = PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
      rounds.push_back(sim.transmit(from, w, pat));
      sim.advance(0.25);
    };
    for (int p = 0; p < 2; ++p) {
      for (int id : {1, 2}) shoot(tb.client(id).position, id, nullptr);
    }
    // Insider spoofing client 2's MAC from the far office.
    for (int p = 0; p < 2; ++p) shoot(tb.client(17).position, 2, nullptr);
    // Off-site transmitter with a power amp.
    TxPattern amp;
    amp.tx_power_db = 15.0;
    shoot(tb.outdoor_positions()[0], 200, &amp);
  }

  EngineConfig engine_config() const {
    EngineConfig cfg;
    cfg.coordinator.fence_boundary = tb.building_outline();
    cfg.coordinator.min_aps_for_fence = 2;
    return cfg;
  }

  std::vector<EngineDecision> run_engine(std::size_t threads,
                                         std::size_t shards = 8) {
    EngineConfig cfg = engine_config();
    cfg.num_threads = threads;
    cfg.num_shards = shards;
    DeploymentEngine engine(cfg, ptrs);
    std::vector<EngineDecision> out;
    for (const auto& round : rounds) {
      for (auto& d : engine.ingest(round)) out.push_back(std::move(d));
    }
    for (auto& d : engine.flush()) out.push_back(std::move(d));
    return out;
  }

  /// The single-threaded reference: serial streaming receivers, the same
  /// grouping, a plain Coordinator::process.
  std::vector<EngineDecision> run_serial_reference() {
    const EngineConfig cfg = engine_config();
    std::vector<std::unique_ptr<StreamingReceiver>> streams;
    for (AccessPoint* ap : ptrs) {
      streams.push_back(std::make_unique<StreamingReceiver>(*ap, cfg.streaming));
    }
    std::vector<Vec2> positions;
    for (const AccessPoint* ap : ptrs) positions.push_back(ap->config().position);
    Coordinator coord(cfg.coordinator);
    std::size_t sequence = 0;
    std::vector<EngineDecision> out;
    auto decide_round =
        [&](std::vector<std::vector<StreamingReceiver::StreamPacket>> per_ap) {
          for (auto& g : group_frame_observations(std::move(per_ap), positions,
                                                  cfg.group_slack_samples)) {
            out.push_back({sequence++, g.absolute_start,
                           coord.process(g.observations)});
          }
        };
    for (const auto& round : rounds) {
      std::vector<std::vector<StreamingReceiver::StreamPacket>> per_ap;
      for (std::size_t i = 0; i < streams.size(); ++i) {
        per_ap.push_back(streams[i]->push(round[i]));
      }
      decide_round(std::move(per_ap));
    }
    std::vector<std::vector<StreamingReceiver::StreamPacket>> tail;
    for (auto& s : streams) tail.push_back(s->flush());
    decide_round(std::move(tail));
    return out;
  }
};

void expect_identical_streams(const std::vector<EngineDecision>& a,
                              const std::vector<EngineDecision>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].sequence, b[i].sequence);
    EXPECT_EQ(a[i].absolute_start, b[i].absolute_start);
    const FrameDecision& da = a[i].decision;
    const FrameDecision& db = b[i].decision;
    EXPECT_EQ(da.action, db.action);
    EXPECT_EQ(da.source, db.source);
    EXPECT_EQ(da.spoof, db.spoof);
    EXPECT_EQ(da.spoof_score, db.spoof_score);  // bit-exact, not approximate
    ASSERT_EQ(da.location.has_value(), db.location.has_value());
    if (da.location) {
      EXPECT_EQ(da.location->position.x, db.location->position.x);
      EXPECT_EQ(da.location->position.y, db.location->position.y);
      EXPECT_EQ(da.location->residual_deg, db.location->residual_deg);
      EXPECT_EQ(da.location->aps_used, db.location->aps_used);
    }
    EXPECT_STREQ(da.detail, db.detail);
  }
}

TEST(Engine, MatchesSerialCoordinatorAtAnyThreadCount) {
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    SCOPED_TRACE(seed);
    EngineRig rig(seed);
    const auto reference = rig.run_serial_reference();
    // The workload must actually exercise the pipeline: every
    // transmission heard, and multiple verdicts represented.
    ASSERT_GE(reference.size(), 5u);
    for (std::size_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE(threads);
      expect_identical_streams(rig.run_engine(threads), reference);
    }
  }
}

TEST(Engine, ShardCountDoesNotChangeDecisions) {
  EngineRig rig(11);
  const auto with_one_shard = rig.run_engine(2, 1);
  const auto with_many_shards = rig.run_engine(2, 32);
  expect_identical_streams(with_one_shard, with_many_shards);
}

TEST(Engine, StatsMatchSerialCoordinator) {
  EngineRig rig(12);
  EngineConfig cfg = rig.engine_config();
  cfg.num_threads = 4;
  DeploymentEngine engine(cfg, rig.ptrs);
  std::size_t decisions = 0;
  for (const auto& round : rig.rounds) decisions += engine.ingest(round).size();
  decisions += engine.flush().size();
  EXPECT_EQ(engine.stats().frames, decisions);
  const auto serial = rig.run_serial_reference();
  EXPECT_EQ(engine.stats().frames, serial.size());
  // Both defenses fired somewhere in the mixed workload.
  EXPECT_GT(engine.stats().accepted, 0u);
  EXPECT_GT(engine.spoof_detector().stats().tracked_macs, 0u);
}

TEST(Engine, GroupingFusesApViewsDeterministically) {
  EngineRig rig(13);
  EngineConfig cfg = rig.engine_config();
  cfg.num_threads = 2;
  DeploymentEngine engine(cfg, rig.ptrs);
  // Each transmission is one frame: decisions come back re-sequenced
  // into one gap-free global order.
  std::vector<std::size_t> seen_sequences;
  for (const auto& round : rig.rounds) {
    for (const auto& d : engine.ingest(round)) {
      seen_sequences.push_back(d.sequence);
    }
  }
  for (const auto& d : engine.flush()) seen_sequences.push_back(d.sequence);
  ASSERT_FALSE(seen_sequences.empty());
  for (std::size_t i = 0; i < seen_sequences.size(); ++i) {
    EXPECT_EQ(seen_sequences[i], i);  // re-sequenced, gap-free
  }
}

TEST(Engine, RejectsMismatchedChunkCount) {
  EngineRig rig(11);
  EngineConfig cfg = rig.engine_config();
  DeploymentEngine engine(cfg, rig.ptrs);
  std::vector<CMat> wrong(rig.ptrs.size() + 1);
  EXPECT_THROW(engine.ingest(wrong), InvalidArgument);
}

}  // namespace
}  // namespace sa
