// Determinism tests for the DeploymentEngine: at any thread count (and
// any shard count) the engine must emit a FrameDecision stream identical
// to the single-threaded path — serial StreamingReceivers feeding the
// same grouping and a plain Coordinator — over the Figure-4 office
// scenario, across multiple seeds.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sa/common/rng.hpp"
#include "sa/engine/deployment.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/packet.hpp"
#include "sa/testbed/office.hpp"
#include "sa/testbed/uplink.hpp"

namespace sa {
namespace {

/// Figure-4 office, 3 APs, and a pre-generated mixed workload: legitimate
/// ring clients, a MAC-spoofing insider, and an off-site transmitter.
struct EngineRig {
  OfficeTestbed tb = OfficeTestbed::figure4();
  Rng rng;
  std::vector<std::unique_ptr<AccessPoint>> aps;
  std::vector<AccessPoint*> ptrs;
  std::vector<std::vector<CMat>> rounds;  // one vector<CMat> per transmission

  explicit EngineRig(std::uint64_t seed, std::size_t subbands = 1)
      : rng(seed) {
    UplinkConfig ucfg;
    ucfg.channel.noise_power = 1e-5;
    UplinkSimulation sim(tb, ucfg, rng);
    for (const Vec2& spot : tb.ap_mounting_points(3)) {
      AccessPointConfig cfg;
      cfg.position = spot;
      cfg.subbands = subbands;
      aps.push_back(std::make_unique<AccessPoint>(cfg, rng));
      ptrs.push_back(aps.back().get());
      sim.add_ap(aps.back()->placement());
    }
    std::uint16_t seq = 0;
    auto shoot = [&](Vec2 from, std::uint32_t mac_index, const TxPattern* pat) {
      const Frame f = Frame::data(MacAddress::from_index(0xFF),
                                  MacAddress::from_index(mac_index),
                                  Bytes{1, 2, 3}, seq++);
      const CVec w = PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
      rounds.push_back(sim.transmit(from, w, pat));
      sim.advance(0.25);
    };
    for (int p = 0; p < 2; ++p) {
      for (int id : {1, 2}) shoot(tb.client(id).position, id, nullptr);
    }
    // Insider spoofing client 2's MAC from the far office.
    for (int p = 0; p < 2; ++p) shoot(tb.client(17).position, 2, nullptr);
    // Off-site transmitter with a power amp.
    TxPattern amp;
    amp.tx_power_db = 15.0;
    shoot(tb.outdoor_positions()[0], 200, &amp);
  }

  EngineConfig engine_config() const {
    EngineConfig cfg;
    cfg.coordinator.fence_boundary = tb.building_outline();
    cfg.coordinator.min_aps_for_fence = 2;
    return cfg;
  }

  /// Decode + acl + spoof + fence + rate: the full built-in chain. The
  /// ACL allows the legitimate MACs (so the spoofed insider passes it and
  /// must be caught downstream) but not the off-site transmitter's; the
  /// tight rate limit fires on the busiest MAC.
  EngineConfig five_policy_config() const {
    EngineConfig cfg = engine_config();
    cfg.coordinator.policies = {PolicyKind::kAcl, PolicyKind::kSpoof,
                                PolicyKind::kFence, PolicyKind::kRateLimit};
    AccessControlList acl;
    acl.allow(MacAddress::from_index(1));
    acl.allow(MacAddress::from_index(2));
    cfg.coordinator.acl = std::move(acl);
    cfg.coordinator.rate_limit.max_frames = 3;
    cfg.coordinator.rate_limit.window_frames = 1024;
    return cfg;
  }

  std::vector<EngineDecision> run_engine_with(EngineConfig cfg) {
    DeploymentEngine engine(cfg, ptrs);
    std::vector<EngineDecision> out;
    for (const auto& round : rounds) {
      for (auto& d : engine.ingest(round)) out.push_back(std::move(d));
    }
    for (auto& d : engine.flush()) out.push_back(std::move(d));
    return out;
  }

  std::vector<EngineDecision> run_engine(std::size_t threads,
                                         std::size_t shards = 8) {
    EngineConfig cfg = engine_config();
    cfg.num_threads = threads;
    cfg.num_shards = shards;
    return run_engine_with(cfg);
  }

  /// The single-threaded reference: serial streaming receivers, the same
  /// grouping, a plain Coordinator::process.
  std::vector<EngineDecision> run_serial_reference() {
    const EngineConfig cfg = engine_config();
    std::vector<std::unique_ptr<StreamingReceiver>> streams;
    for (AccessPoint* ap : ptrs) {
      streams.push_back(std::make_unique<StreamingReceiver>(*ap, cfg.streaming));
    }
    std::vector<Vec2> positions;
    for (const AccessPoint* ap : ptrs) positions.push_back(ap->config().position);
    Coordinator coord(cfg.coordinator);
    std::size_t sequence = 0;
    std::vector<EngineDecision> out;
    auto decide_round =
        [&](std::vector<std::vector<StreamingReceiver::StreamPacket>> per_ap) {
          for (auto& g : group_frame_observations(std::move(per_ap), positions,
                                                  cfg.group_slack_samples)) {
            out.push_back({sequence++, g.absolute_start,
                           coord.process(g.observations)});
          }
        };
    for (const auto& round : rounds) {
      std::vector<std::vector<StreamingReceiver::StreamPacket>> per_ap;
      for (std::size_t i = 0; i < streams.size(); ++i) {
        per_ap.push_back(streams[i]->push(round[i]));
      }
      decide_round(std::move(per_ap));
    }
    std::vector<std::vector<StreamingReceiver::StreamPacket>> tail;
    for (auto& s : streams) tail.push_back(s->flush());
    decide_round(std::move(tail));
    return out;
  }
};

void expect_identical_streams(const std::vector<EngineDecision>& a,
                              const std::vector<EngineDecision>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].sequence, b[i].sequence);
    EXPECT_EQ(a[i].absolute_start, b[i].absolute_start);
    const FrameDecision& da = a[i].decision;
    const FrameDecision& db = b[i].decision;
    EXPECT_EQ(da.accepted, db.accepted);
    EXPECT_EQ(da.action(), db.action());
    EXPECT_EQ(da.policy, db.policy);
    EXPECT_EQ(da.source, db.source);
    EXPECT_EQ(da.spoof, db.spoof);
    EXPECT_EQ(da.spoof_score, db.spoof_score);  // bit-exact, not approximate
    ASSERT_EQ(da.location.has_value(), db.location.has_value());
    if (da.location) {
      EXPECT_EQ(da.location->position.x, db.location->position.x);
      EXPECT_EQ(da.location->position.y, db.location->position.y);
      EXPECT_EQ(da.location->residual_deg, db.location->residual_deg);
      EXPECT_EQ(da.location->aps_used, db.location->aps_used);
    }
    EXPECT_EQ(da.detail, db.detail);
    ASSERT_EQ(da.trace.size(), db.trace.size());
    for (std::size_t t = 0; t < da.trace.size(); ++t) {
      EXPECT_EQ(da.trace[t].policy, db.trace[t].policy);
      EXPECT_EQ(da.trace[t].dropped, db.trace[t].dropped);
      EXPECT_EQ(da.trace[t].detail, db.trace[t].detail);
    }
  }
}

TEST(Engine, MatchesSerialCoordinatorAtAnyThreadCount) {
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    SCOPED_TRACE(seed);
    EngineRig rig(seed);
    const auto reference = rig.run_serial_reference();
    // The workload must actually exercise the pipeline: every
    // transmission heard, and multiple verdicts represented.
    ASSERT_GE(reference.size(), 5u);
    for (std::size_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE(threads);
      expect_identical_streams(rig.run_engine(threads), reference);
    }
  }
}

TEST(Engine, WidebandSubbandsAreThreadCountInvariant) {
  // subbands = 4: per-frame work fans out as (frame, band) tasks, and the
  // re-sequenced decision stream must still be identical at any thread
  // count — and identical to the serial reference, whose demodulate runs
  // the same per-band pipeline inline.
  EngineRig rig(11, /*subbands=*/4);
  const auto reference = rig.run_serial_reference();
  ASSERT_GE(reference.size(), 5u);
  for (std::size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(threads);
    expect_identical_streams(rig.run_engine(threads), reference);
  }
}

TEST(Engine, ShardCountDoesNotChangeDecisions) {
  EngineRig rig(11);
  const auto with_one_shard = rig.run_engine(2, 1);
  const auto with_many_shards = rig.run_engine(2, 32);
  expect_identical_streams(with_one_shard, with_many_shards);
}

TEST(Engine, StatsMatchSerialCoordinator) {
  EngineRig rig(12);
  EngineConfig cfg = rig.engine_config();
  cfg.num_threads = 4;
  DeploymentEngine engine(cfg, rig.ptrs);
  std::size_t decisions = 0;
  for (const auto& round : rig.rounds) decisions += engine.ingest(round).size();
  decisions += engine.flush().size();
  EXPECT_EQ(engine.stats().frames, decisions);
  const auto serial = rig.run_serial_reference();
  EXPECT_EQ(engine.stats().frames, serial.size());
  // Both defenses fired somewhere in the mixed workload.
  EXPECT_GT(engine.stats().accepted, 0u);
  EXPECT_GT(engine.spoof_detector().stats().tracked_macs, 0u);
}

TEST(Engine, GroupingFusesApViewsDeterministically) {
  EngineRig rig(13);
  EngineConfig cfg = rig.engine_config();
  cfg.num_threads = 2;
  DeploymentEngine engine(cfg, rig.ptrs);
  // Each transmission is one frame: decisions come back re-sequenced
  // into one gap-free global order.
  std::vector<std::size_t> seen_sequences;
  for (const auto& round : rig.rounds) {
    for (const auto& d : engine.ingest(round)) {
      seen_sequences.push_back(d.sequence);
    }
  }
  for (const auto& d : engine.flush()) seen_sequences.push_back(d.sequence);
  ASSERT_FALSE(seen_sequences.empty());
  for (std::size_t i = 0; i < seen_sequences.size(); ++i) {
    EXPECT_EQ(seen_sequences[i], i);  // re-sequenced, gap-free
  }
}

TEST(Engine, RejectsMismatchedChunkCount) {
  EngineRig rig(11);
  EngineConfig cfg = rig.engine_config();
  DeploymentEngine engine(cfg, rig.ptrs);
  std::vector<CMat> wrong(rig.ptrs.size() + 1);
  EXPECT_THROW(engine.ingest(wrong), InvalidArgument);
}

// --------------------------------------------------------- policy chain

TEST(Engine, FivePolicyChainIsThreadCountInvariant) {
  EngineRig rig(11);
  EngineConfig base = rig.five_policy_config();
  base.num_threads = 1;
  const auto reference = rig.run_engine_with(base);
  ASSERT_GE(reference.size(), 5u);
  for (std::size_t threads : {2u, 8u}) {
    SCOPED_TRACE(threads);
    EngineConfig cfg = rig.five_policy_config();
    cfg.num_threads = threads;
    expect_identical_streams(rig.run_engine_with(cfg), reference);
  }
}

TEST(Engine, FivePolicyChainStatsSumToFrames) {
  EngineRig rig(12);
  EngineConfig cfg = rig.five_policy_config();
  cfg.num_threads = 4;
  DeploymentEngine engine(cfg, rig.ptrs);
  std::size_t decisions = 0;
  for (const auto& round : rig.rounds) decisions += engine.ingest(round).size();
  decisions += engine.flush().size();

  const auto& chain = engine.chain();
  ASSERT_EQ(chain.size(), 5u);
  EXPECT_EQ(chain.policy(0).name(), DecodePolicy::kName);
  EXPECT_EQ(chain.policy(1).name(), AclPolicy::kName);
  EXPECT_EQ(chain.policy(2).name(), SpoofPolicy::kName);
  EXPECT_EQ(chain.policy(3).name(), FencePolicy::kName);
  EXPECT_EQ(chain.policy(4).name(), RateLimitPolicy::kName);

  // Every frame is either accepted by the whole chain or dropped by
  // exactly one policy.
  EXPECT_EQ(chain.frames(), decisions);
  std::size_t drops = 0;
  for (const auto& ps : chain.policy_stats()) {
    drops += ps.dropped;
    EXPECT_EQ(ps.evaluated, ps.accepted + ps.dropped);
  }
  EXPECT_EQ(chain.accepted() + drops, chain.frames());

  // A policy only ever evaluates what its predecessors let through.
  for (std::size_t i = 1; i < chain.size(); ++i) {
    EXPECT_LE(chain.policy_stats()[i].evaluated,
              chain.policy_stats()[i - 1].accepted);
  }

  // The legacy stats view agrees with the per-policy counters.
  const auto st = engine.stats();
  EXPECT_EQ(st.frames, chain.frames());
  EXPECT_EQ(st.accepted, chain.accepted());
  EXPECT_EQ(st.dropped_policy, chain.drops(AclPolicy::kName) +
                                   chain.drops(RateLimitPolicy::kName));

  // The off-site transmitter's unknown MAC hits the ACL; the busiest MAC
  // trips the tight rate limit.
  EXPECT_GT(chain.drops(AclPolicy::kName) + chain.drops(DecodePolicy::kName),
            0u);
  EXPECT_GT(chain.drops(RateLimitPolicy::kName), 0u);
}

TEST(Engine, ChainWithoutSpoofSkipsTrackerState) {
  EngineRig rig(11);
  EngineConfig cfg = rig.engine_config();
  cfg.coordinator.policies = {PolicyKind::kFence};
  cfg.num_threads = 2;
  DeploymentEngine engine(cfg, rig.ptrs);
  for (const auto& round : rig.rounds) engine.ingest(round);
  engine.flush();
  // No SpoofPolicy in the chain: trackers must not have trained.
  EXPECT_EQ(engine.spoof_detector().stats().packets, 0u);
  EXPECT_EQ(engine.spoof_detector().stats().tracked_macs, 0u);
  EXPECT_FALSE(engine.chain().contains(SpoofPolicy::kName));
}

// ------------------------------------------------------------- grouping

using StreamPacket = StreamingReceiver::StreamPacket;

StreamPacket packet_at(std::size_t start) {
  StreamPacket sp;
  sp.absolute_start = start;
  return sp;
}

TEST(Engine, GroupingDetectionExactlyAtSlackBoundaryFuses) {
  const std::vector<Vec2> positions{{0.0, 0.0}, {10.0, 0.0}};
  const std::size_t slack = 100;
  // AP 1 hears the frame exactly `slack` samples after AP 0: still the
  // same transmission. One sample later: a new one.
  {
    std::vector<std::vector<StreamPacket>> per_ap(2);
    per_ap[0].push_back(packet_at(1000));
    per_ap[1].push_back(packet_at(1000 + slack));
    const auto groups =
        group_frame_observations(std::move(per_ap), positions, slack);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].absolute_start, 1000u);
    EXPECT_EQ(groups[0].observations.size(), 2u);
  }
  {
    std::vector<std::vector<StreamPacket>> per_ap(2);
    per_ap[0].push_back(packet_at(1000));
    per_ap[1].push_back(packet_at(1000 + slack + 1));
    const auto groups =
        group_frame_observations(std::move(per_ap), positions, slack);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].observations.size(), 1u);
    EXPECT_EQ(groups[1].observations.size(), 1u);
  }
}

TEST(Engine, GroupingAnchorsSlackAtGroupStartNotRolling) {
  // 0, slack, 2*slack: the third detection is within slack of the
  // second but not of the group's first — it must start a new group
  // (the window does not roll forward).
  const std::vector<Vec2> positions{{0.0, 0.0}};
  const std::size_t slack = 100;
  std::vector<std::vector<StreamPacket>> per_ap(1);
  per_ap[0].push_back(packet_at(0));
  per_ap[0].push_back(packet_at(slack));
  per_ap[0].push_back(packet_at(2 * slack));
  const auto groups =
      group_frame_observations(std::move(per_ap), positions, slack);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].observations.size(), 2u);
  EXPECT_EQ(groups[1].absolute_start, 2 * slack);
}

TEST(Engine, GroupingInterleavedApOrderIsDeterministic) {
  // AP 2 hears the first transmission before AP 0, and the per-AP vectors
  // are supplied in AP order — grouping must sort by (start, ap index).
  const std::vector<Vec2> positions{{0.0, 0.0}, {5.0, 0.0}, {10.0, 0.0}};
  const std::size_t slack = 50;
  std::vector<std::vector<StreamPacket>> per_ap(3);
  per_ap[0].push_back(packet_at(210));  // 2nd transmission
  per_ap[0].push_back(packet_at(510));  // 3rd
  per_ap[1].push_back(packet_at(200));  // 2nd, earliest copy
  per_ap[2].push_back(packet_at(20));   // 1st
  per_ap[2].push_back(packet_at(200));  // 2nd, same start as AP 1's
  const auto groups =
      group_frame_observations(std::move(per_ap), positions, slack);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].absolute_start, 20u);
  EXPECT_EQ(groups[0].observations.size(), 1u);
  EXPECT_EQ(groups[1].absolute_start, 200u);
  ASSERT_EQ(groups[1].observations.size(), 3u);
  // Same start sample: AP 1 sorts before AP 2; AP 0's later copy last.
  EXPECT_EQ(groups[1].observations[0].ap_position.x, 5.0);
  EXPECT_EQ(groups[1].observations[1].ap_position.x, 10.0);
  EXPECT_EQ(groups[1].observations[2].ap_position.x, 0.0);
  EXPECT_EQ(groups[2].absolute_start, 510u);
}

}  // namespace
}  // namespace sa
