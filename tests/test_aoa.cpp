// Unit tests for sa_aoa: pseudospectra, covariance processing, MUSIC and
// the baseline estimators. The key acceptance criterion throughout: known
// synthetic bearings must be recovered to grid accuracy.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sa/aoa/covariance.hpp"
#include "sa/linalg/eig.hpp"
#include "sa/linalg/lu.hpp"
#include "sa/aoa/estimators.hpp"
#include "sa/aoa/pseudospectrum.hpp"
#include "sa/aoa/spectral.hpp"
#include "sa/common/angles.hpp"
#include "sa/common/constants.hpp"
#include "sa/common/error.hpp"
#include "sa/common/rng.hpp"

namespace sa {
namespace {

constexpr double kLambda = kSpeedOfLight / 2.4e9;

/// Simulated per-antenna sample block: narrowband sources at given
/// bearings with random unit-power symbols, plus noise.
CMat synth_samples(const ArrayGeometry& geom,
                   const std::vector<double>& bearings_deg,
                   const std::vector<double>& amplitudes, std::size_t n_snap,
                   double noise_power, Rng& rng) {
  const std::size_t n_ant = geom.size();
  CMat x(n_ant, n_snap);
  std::vector<CVec> steerings;
  for (double b : bearings_deg) {
    steerings.push_back(geom.steering_vector(b, kLambda));
  }
  for (std::size_t t = 0; t < n_snap; ++t) {
    for (std::size_t s = 0; s < steerings.size(); ++s) {
      const cd sym = rng.random_phasor() * amplitudes[s];
      for (std::size_t m = 0; m < n_ant; ++m) {
        x(m, t) += sym * steerings[s][m];
      }
    }
    for (std::size_t m = 0; m < n_ant; ++m) {
      x(m, t) += rng.complex_normal(noise_power);
    }
  }
  return x;
}

// --------------------------------------------------------- pseudospectrum

TEST(Pseudospectrum, BasicAccessors) {
  const Pseudospectrum ps({0.0, 1.0, 2.0, 3.0}, {1.0, 4.0, 2.0, 1.0}, false);
  EXPECT_EQ(ps.size(), 4u);
  EXPECT_NEAR(ps.step_deg(), 1.0, 1e-12);
  EXPECT_NEAR(ps.max_angle_deg(), 1.0, 1e-12);
  EXPECT_NEAR(ps.max_value(), 4.0, 1e-12);
  const auto db = ps.values_db();
  EXPECT_NEAR(db[1], 0.0, 1e-12);
  EXPECT_NEAR(db[0], -6.0206, 1e-3);
}

TEST(Pseudospectrum, ValueAtInterpolates) {
  const Pseudospectrum ps({0.0, 10.0, 20.0}, {0.0, 10.0, 0.0}, false);
  EXPECT_NEAR(ps.value_at(5.0), 5.0, 1e-12);
  EXPECT_NEAR(ps.value_at(15.0), 5.0, 1e-12);
  EXPECT_NEAR(ps.value_at(-100.0), 0.0, 1e-12);  // clamped
}

TEST(Pseudospectrum, WrappingInterpolation) {
  // 4-point circular grid 0/90/180/270.
  const Pseudospectrum ps({0.0, 90.0, 180.0, 270.0}, {8.0, 0.0, 0.0, 4.0}, true);
  // Between 270 and 360(=0): midpoint 315 -> (4+8)/2.
  EXPECT_NEAR(ps.value_at(315.0), 6.0, 1e-12);
  EXPECT_NEAR(ps.value_at(360.0), 8.0, 1e-12);
  EXPECT_NEAR(ps.value_at(-45.0), 6.0, 1e-12);
}

TEST(Pseudospectrum, FindPeaks) {
  std::vector<double> angles, values;
  for (int a = -90; a <= 90; ++a) {
    angles.push_back(a);
    const double x1 = (a - 20.0) / 4.0;
    const double x2 = (a + 50.0) / 4.0;
    values.push_back(10.0 * std::exp(-x1 * x1) + 5.0 * std::exp(-x2 * x2) + 0.01);
  }
  const Pseudospectrum ps(angles, values, false);
  const auto peaks = ps.find_peaks(3.0, 5.0);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_NEAR(peaks[0].angle_deg, 20.0, 1.0);
  EXPECT_NEAR(peaks[1].angle_deg, -50.0, 1.0);
  EXPECT_GT(peaks[0].value, peaks[1].value);
  EXPECT_NEAR(peaks[0].value_db, 0.0, 0.1);
}

TEST(Pseudospectrum, PeakSeparationSuppression) {
  std::vector<double> angles, values;
  for (int a = 0; a < 360; ++a) {
    angles.push_back(a);
    const double x1 = angular_distance_deg(a, 100.0) / 2.0;
    const double x2 = angular_distance_deg(a, 104.0) / 2.0;
    values.push_back(10.0 * std::exp(-x1 * x1) + 9.0 * std::exp(-x2 * x2) + 0.01);
  }
  const Pseudospectrum ps(angles, values, true);
  // Two bumps 4 degrees apart with 10-degree min separation: one peak.
  const auto peaks = ps.find_peaks(1.0, 10.0);
  ASSERT_GE(peaks.size(), 1u);
  bool close_pair = false;
  for (std::size_t i = 1; i < peaks.size(); ++i) {
    if (angular_distance_deg(peaks[0].angle_deg, peaks[i].angle_deg) < 10.0) {
      close_pair = true;
    }
  }
  EXPECT_FALSE(close_pair);
}

TEST(Pseudospectrum, RefinedPeakBeatsGrid) {
  // True peak at 20.3 deg on a 1-degree grid.
  std::vector<double> angles, values;
  for (int a = -90; a <= 90; ++a) {
    angles.push_back(a);
    const double x = (a - 20.3) / 6.0;
    values.push_back(std::exp(-x * x));
  }
  const Pseudospectrum ps(angles, values, false);
  EXPECT_NEAR(ps.max_angle_deg(), 20.0, 1e-12);
  EXPECT_NEAR(ps.refined_max_angle_deg(), 20.3, 0.05);
}

TEST(Pseudospectrum, RejectsBadInput) {
  EXPECT_THROW(Pseudospectrum({0.0}, {1.0}, false), InvalidArgument);
  EXPECT_THROW(Pseudospectrum({0.0, 1.0}, {1.0}, false), InvalidArgument);
  EXPECT_THROW(Pseudospectrum({1.0, 0.0}, {1.0, 1.0}, false), InvalidArgument);
  EXPECT_THROW(Pseudospectrum({0.0, 1.0}, {1.0, -1.0}, false), InvalidArgument);
}

// ------------------------------------------------------------- covariance

TEST(Covariance, SingleSourceRankOne) {
  Rng rng(1);
  const auto geom = ArrayGeometry::uniform_linear(4, kLambda / 2.0);
  const CMat x = synth_samples(geom, {30.0}, {1.0}, 512, 0.0, rng);
  const CMat r = sample_covariance(x);
  EXPECT_TRUE(r.is_hermitian());
  // Diagonal ~ source power 1.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(r(i, i).real(), 1.0, 0.05);
  }
}

TEST(Covariance, ForwardBackwardPreservesHermitian) {
  Rng rng(2);
  const auto geom = ArrayGeometry::uniform_linear(6, kLambda / 2.0);
  const CMat x = synth_samples(geom, {10.0, -40.0}, {1.0, 0.8}, 256, 0.1, rng);
  const CMat fb = forward_backward_average(sample_covariance(x));
  EXPECT_TRUE(fb.is_hermitian());
}

TEST(Covariance, SpatialSmoothShrinks) {
  Rng rng(3);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const CMat x = synth_samples(geom, {0.0}, {1.0}, 128, 0.1, rng);
  const CMat sm = spatial_smooth(sample_covariance(x), 5);
  EXPECT_EQ(sm.rows(), 5u);
  EXPECT_TRUE(sm.is_hermitian());
  EXPECT_THROW(spatial_smooth(sample_covariance(x), 1), InvalidArgument);
  EXPECT_THROW(spatial_smooth(sample_covariance(x), 9), InvalidArgument);
}

TEST(Covariance, DiagonalLoadRaisesDiagonal) {
  CMat r = CMat::identity(3);
  const CMat loaded = diagonal_load(r, 0.1);
  EXPECT_NEAR(loaded(0, 0).real(), 1.1, 1e-12);
  EXPECT_NEAR(loaded(0, 1).real(), 0.0, 1e-12);
}

TEST(Covariance, InPlaceVariantsAreBitIdenticalToCopying) {
  Rng rng(5);
  // Odd and even dimensions exercise the in-place pairing's centre entry.
  for (std::size_t n : {4u, 5u, 8u}) {
    SCOPED_TRACE(n);
    const auto geom = ArrayGeometry::uniform_linear(n, kLambda / 2.0);
    const CMat r =
        sample_covariance(synth_samples(geom, {15.0}, {1.0}, 128, 0.2, rng));

    const CMat fb_copy = forward_backward_average(r);
    CMat fb_inplace = r;
    forward_backward_average_inplace(fb_inplace);
    const CMat dl_copy = diagonal_load(r, 1e-3);
    CMat dl_inplace = r;
    diagonal_load_inplace(dl_inplace, 1e-3);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(fb_copy(i, j), fb_inplace(i, j)) << i << "," << j;
        EXPECT_EQ(dl_copy(i, j), dl_inplace(i, j)) << i << "," << j;
      }
    }
  }
}

// ------------------------------------------------------- spectral context

TEST(SpectralContext, CachesEigAndProjectorAndInverse) {
  Rng rng(6);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const CMat r = sample_covariance(
      synth_samples(geom, {-20.0, 40.0}, {1.0, 0.8}, 256, 0.05, rng));
  const SpectralContext ctx(r, geom, kLambda, {true, 0});

  // Same object back on repeated calls: the decomposition is cached.
  const EigResult& e1 = ctx.eig();
  const EigResult& e2 = ctx.eig();
  EXPECT_EQ(&e1, &e2);
  const CMat& p1 = ctx.noise_projector(2);
  const CMat& p2 = ctx.noise_projector(2);
  EXPECT_EQ(&p1, &p2);
  const CMat& i1 = ctx.inverse(1e-3);
  const CMat& i2 = ctx.inverse(1e-3);
  EXPECT_EQ(&i1, &i2);

  // The cached quantities equal their from-scratch counterparts.
  const CMat fb = forward_backward_average(r);
  const auto direct_eig = eigh(fb);
  ASSERT_EQ(e1.values.size(), direct_eig.values.size());
  for (std::size_t i = 0; i < e1.values.size(); ++i) {
    EXPECT_EQ(e1.values[i], direct_eig.values[i]) << i;
  }
  const auto direct_inv = inverse(diagonal_load(r, 1e-3));
  ASSERT_TRUE(direct_inv.has_value());
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_EQ(i1(i, j), (*direct_inv)(i, j)) << i << "," << j;
    }
  }
}

TEST(SpectralContext, ProcessedHonorsSmoothingAndFb) {
  Rng rng(7);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const CMat r = sample_covariance(
      synth_samples(geom, {10.0}, {1.0}, 128, 0.1, rng));
  const SpectralContext ctx(r, geom, kLambda, {true, 5});
  EXPECT_EQ(ctx.processed().rows(), 5u);
  EXPECT_EQ(ctx.processed_geometry().size(), 5u);
  EXPECT_EQ(ctx.covariance().rows(), 8u);  // raw stays full-size

  // Octagon: FB/smoothing do not apply; processed == raw.
  const auto oct = ArrayGeometry::octagon();
  const CMat ro = sample_covariance(
      synth_samples(oct, {200.0}, {1.0}, 128, 0.1, rng));
  const SpectralContext octx(ro, oct, kLambda, {true, 0});
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_EQ(octx.processed()(i, j), ro(i, j));
    }
  }
}

// ---------------------------------------------------------- source count

TEST(SourceCount, MdlFindsTwoSources) {
  Rng rng(4);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const CMat x = synth_samples(geom, {-30.0, 25.0}, {1.0, 0.7}, 512, 0.05, rng);
  const auto eig = eigh(sample_covariance(x));
  EXPECT_EQ(estimate_num_sources_mdl(eig.values, 512), 2u);
}

TEST(SourceCount, MdlFindsZeroInPureNoise) {
  Rng rng(5);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const CMat x = synth_samples(geom, {}, {}, 512, 1.0, rng);
  const auto eig = eigh(sample_covariance(x));
  EXPECT_EQ(estimate_num_sources_mdl(eig.values, 512), 0u);
}

TEST(SourceCount, AicAtLeastMdl) {
  Rng rng(6);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const CMat x = synth_samples(geom, {-10.0, 50.0, 70.0}, {1.0, 0.9, 0.8}, 256,
                               0.1, rng);
  const auto eig = eigh(sample_covariance(x));
  EXPECT_GE(estimate_num_sources_aic(eig.values, 256),
            estimate_num_sources_mdl(eig.values, 256));
}

// ------------------------------------------------------------------ music

TEST(Music, SingleSourceUlaExact) {
  Rng rng(7);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  for (double truth : {-62.0, -15.0, 0.0, 8.0, 44.0, 71.0}) {
    const CMat x = synth_samples(geom, {truth}, {1.0}, 256, 0.01, rng);
    const MusicEstimator music;
    const auto res = music.estimate(sample_covariance(x), geom, kLambda);
    EXPECT_NEAR(res.spectrum.refined_max_angle_deg(), truth, 0.5) << truth;
  }
}

TEST(Music, SingleSourceOctagonFullCircle) {
  Rng rng(8);
  const auto geom = ArrayGeometry::octagon();
  for (double truth : {3.0, 88.0, 181.0, 267.0, 340.0}) {
    const CMat x = synth_samples(geom, {truth}, {1.0}, 256, 0.01, rng);
    const MusicEstimator music;
    const auto res = music.estimate(sample_covariance(x), geom, kLambda);
    EXPECT_NEAR(
        angular_distance_deg(res.spectrum.refined_max_angle_deg(), truth), 0.0,
        1.0)
        << truth;
  }
}

TEST(Music, TwoIncoherentSourcesResolved) {
  Rng rng(9);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const CMat x =
      synth_samples(geom, {-35.0, 20.0}, {1.0, 0.8}, 512, 0.02, rng);
  MusicConfig cfg;
  cfg.num_sources = 2;
  const MusicEstimator music(cfg);
  const auto res = music.estimate(sample_covariance(x), geom, kLambda);
  const auto peaks = res.spectrum.find_peaks(3.0, 10.0);
  ASSERT_GE(peaks.size(), 2u);
  const double p0 = peaks[0].angle_deg, p1 = peaks[1].angle_deg;
  const double lo = std::min(p0, p1), hi = std::max(p0, p1);
  EXPECT_NEAR(lo, -35.0, 1.5);
  EXPECT_NEAR(hi, 20.0, 1.5);
}

TEST(Music, CoherentPathsNeedSmoothing) {
  // Two fully coherent copies (same symbol stream): vanilla MUSIC fails
  // to form two peaks; forward-backward + spatial smoothing recovers both.
  Rng rng(10);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const std::size_t n_snap = 512;
  const CVec a1 = geom.steering_vector(-30.0, kLambda);
  const CVec a2 = geom.steering_vector(25.0, kLambda);
  CMat x(8, n_snap);
  for (std::size_t t = 0; t < n_snap; ++t) {
    const cd sym = rng.random_phasor();  // SAME symbol on both paths
    for (std::size_t m = 0; m < 8; ++m) {
      x(m, t) = sym * (a1[m] + cd{0.0, 0.8} * a2[m]) +
                rng.complex_normal(0.01);
    }
  }
  const CMat r = sample_covariance(x);

  MusicConfig smoothed;
  smoothed.num_sources = 2;
  smoothed.smoothing_subarray = 5;
  const auto res = MusicEstimator(smoothed).estimate(r, geom, kLambda);
  const auto peaks = res.spectrum.find_peaks(2.0, 10.0);
  ASSERT_GE(peaks.size(), 2u);
  const double p0 = peaks[0].angle_deg, p1 = peaks[1].angle_deg;
  const double lo = std::min(p0, p1), hi = std::max(p0, p1);
  EXPECT_NEAR(lo, -30.0, 4.0);
  EXPECT_NEAR(hi, 25.0, 4.0);
}

TEST(Music, EigenvaluesExposeSourceCount) {
  Rng rng(11);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const CMat x = synth_samples(geom, {-20.0, 45.0}, {1.0, 1.0}, 512, 0.05, rng);
  const MusicEstimator music;
  const auto res = music.estimate(sample_covariance(x), geom, kLambda);
  ASSERT_EQ(res.eigenvalues.size(), 8u);
  // Two dominant eigenvalues well above the noise floor.
  EXPECT_GT(res.eigenvalues[7], 20.0 * res.eigenvalues[5]);
  EXPECT_GT(res.eigenvalues[6], 20.0 * res.eigenvalues[5]);
  EXPECT_EQ(res.num_sources, 2u);
}

TEST(Music, MismatchedDimensionsThrow) {
  const auto geom = ArrayGeometry::uniform_linear(4, kLambda / 2.0);
  const MusicEstimator music;
  EXPECT_THROW(music.estimate(CMat::identity(6), geom, kLambda),
               InvalidArgument);
  EXPECT_THROW(music.estimate(CMat(4, 5), geom, kLambda), InvalidArgument);
}

// -------------------------------------------------------------- baselines

TEST(Baselines, BartlettFindsSource) {
  Rng rng(12);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const CMat x = synth_samples(geom, {33.0}, {1.0}, 256, 0.05, rng);
  const auto sp = bartlett_spectrum(sample_covariance(x), geom, kLambda);
  EXPECT_NEAR(sp.refined_max_angle_deg(), 33.0, 2.0);
}

TEST(Baselines, CaponSharperThanBartlett) {
  Rng rng(13);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const CMat x = synth_samples(geom, {10.0}, {1.0}, 512, 0.05, rng);
  const CMat r = sample_covariance(x);
  const auto bart = bartlett_spectrum(r, geom, kLambda);
  const auto capon = capon_spectrum(r, geom, kLambda);
  EXPECT_NEAR(capon.refined_max_angle_deg(), 10.0, 1.0);
  // Measure -3 dB width of the main peak for both.
  auto width3db = [](const Pseudospectrum& ps) {
    const auto db = ps.values_db();
    std::size_t count = 0;
    for (double v : db) {
      if (v > -3.0) ++count;
    }
    return static_cast<double>(count) * ps.step_deg();
  };
  EXPECT_LT(width3db(capon), width3db(bart));
}

TEST(Baselines, MusicSharpestOfAll) {
  Rng rng(14);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const CMat x = synth_samples(geom, {-5.0}, {1.0}, 512, 0.05, rng);
  const CMat r = sample_covariance(x);
  const auto music = MusicEstimator().estimate(r, geom, kLambda);
  const auto capon = capon_spectrum(r, geom, kLambda);
  auto peak_to_median = [](const Pseudospectrum& ps) {
    auto vals = ps.values();
    std::sort(vals.begin(), vals.end());
    return ps.max_value() / vals[vals.size() / 2];
  };
  EXPECT_GT(peak_to_median(music.spectrum), peak_to_median(capon));
}

// ------------------------------------------------------------ two antenna

TEST(TwoAntenna, MatchesEquationOne) {
  const auto two = ArrayGeometry::uniform_linear(2, kLambda / 2.0);
  for (double truth : {-70.0, -30.0, 0.0, 25.0, 60.0}) {
    const CVec a = two.steering_vector(truth, kLambda);
    EXPECT_NEAR(two_antenna_aoa_deg(a[0], a[1]), truth, 1e-6) << truth;
  }
}

TEST(TwoAntenna, BreaksUnderMultipath) {
  // Paper §2.1: "In real-world multipath environments Equation 1 breaks
  // down because multiple paths' signals sum in the I-Q plot."
  const auto two = ArrayGeometry::uniform_linear(2, kLambda / 2.0);
  const CVec a1 = two.steering_vector(-40.0, kLambda);
  const CVec a2 = two.steering_vector(35.0, kLambda);
  const cd x1 = a1[0] + cd{0.0, 0.9} * a2[0];
  const cd x2 = a1[1] + cd{0.0, 0.9} * a2[1];
  const double est = two_antenna_aoa_deg(x1, x2);
  // The estimate lands away from BOTH true bearings.
  EXPECT_GT(std::abs(est - (-40.0)), 5.0);
  EXPECT_GT(std::abs(est - 35.0), 5.0);
}

// ------------------------------------- covariance scratch/range variants

TEST(Covariance, ColsAndIntoVariantsBitIdentical) {
  Rng rng(41);
  CMat samples(6, 300);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t t = 0; t < 300; ++t) {
      samples(i, t) = rng.complex_normal(1.0);
    }
  }
  const struct {
    std::size_t begin, end;
  } ranges[] = {{0, 300}, {17, 230}, {299, 300}, {100, 101}};
  for (const auto& range : ranges) {
    SCOPED_TRACE(range.begin);
    // Reference: materialize the block, then the original estimator.
    CMat block(6, range.end - range.begin);
    for (std::size_t i = 0; i < 6; ++i) {
      for (std::size_t t = range.begin; t < range.end; ++t) {
        block(i, t - range.begin) = samples(i, t);
      }
    }
    const CMat want = sample_covariance(block);
    const CMat got = sample_covariance_cols(samples, range.begin, range.end);
    CMat reused(3, 3);  // wrong shape on purpose: must be resized
    sample_covariance_into(block, reused);
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(reused.rows(), want.rows());
    for (std::size_t i = 0; i < want.data().size(); ++i) {
      ASSERT_EQ(got.data()[i], want.data()[i]);
      ASSERT_EQ(reused.data()[i], want.data()[i]);
    }
  }
  EXPECT_THROW(sample_covariance_cols(samples, 10, 10), InvalidArgument);
  EXPECT_THROW(sample_covariance_cols(samples, 0, 301), InvalidArgument);
}

}  // namespace
}  // namespace sa
