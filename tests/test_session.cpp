// Tests for the push-based EngineSession: pipelined submission must
// emit a decision stream identical to the serial single-threaded
// reference (and to the lock-step batch engine) at any thread count,
// backpressure must bound the in-flight work without changing output,
// and drain()/close() lifecycle semantics must hold mid-stream.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "sa/common/rng.hpp"
#include "sa/engine/deployment.hpp"
#include "sa/engine/session.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/packet.hpp"
#include "sa/testbed/office.hpp"
#include "sa/testbed/uplink.hpp"

namespace sa {
namespace {

/// Figure-4 office, 3 APs, and a pre-generated mixed workload:
/// legitimate ring clients, a MAC-spoofing insider, and an off-site
/// transmitter (the same shape as test_engine's rig).
struct SessionRig {
  OfficeTestbed tb = OfficeTestbed::figure4();
  Rng rng;
  std::vector<std::unique_ptr<AccessPoint>> aps;
  std::vector<AccessPoint*> ptrs;
  std::vector<std::vector<CMat>> rounds;  // one vector<CMat> per transmission

  explicit SessionRig(std::uint64_t seed, std::size_t subbands = 1)
      : rng(seed) {
    UplinkConfig ucfg;
    ucfg.channel.noise_power = 1e-5;
    UplinkSimulation sim(tb, ucfg, rng);
    for (const Vec2& spot : tb.ap_mounting_points(3)) {
      AccessPointConfig cfg;
      cfg.position = spot;
      cfg.subbands = subbands;
      aps.push_back(std::make_unique<AccessPoint>(cfg, rng));
      ptrs.push_back(aps.back().get());
      sim.add_ap(aps.back()->placement());
    }
    std::uint16_t seq = 0;
    auto shoot = [&](Vec2 from, std::uint32_t mac_index, const TxPattern* pat) {
      const Frame f = Frame::data(MacAddress::from_index(0xFF),
                                  MacAddress::from_index(mac_index),
                                  Bytes{1, 2, 3}, seq++);
      const CVec w = PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
      rounds.push_back(sim.transmit(from, w, pat));
      sim.advance(0.25);
    };
    for (int p = 0; p < 2; ++p) {
      for (int id : {1, 2}) shoot(tb.client(id).position, id, nullptr);
    }
    for (int p = 0; p < 2; ++p) shoot(tb.client(17).position, 2, nullptr);
    TxPattern amp;
    amp.tx_power_db = 15.0;
    shoot(tb.outdoor_positions()[0], 200, &amp);
  }

  SessionConfig session_config(std::size_t threads) const {
    SessionConfig cfg;
    cfg.engine.num_threads = threads;
    cfg.engine.coordinator.fence_boundary = tb.building_outline();
    cfg.engine.coordinator.min_aps_for_fence = 2;
    return cfg;
  }

  /// Push every round without waiting (the pipelined schedule: the
  /// front-end runs ahead of the back-end), then drain.
  std::vector<EngineDecision> run_session(SessionConfig cfg,
                                          SessionStats* stats_out = nullptr) {
    std::vector<EngineDecision> out;
    EngineSession session(cfg, ptrs,
                          [&](const EngineDecision& d) { out.push_back(d); });
    for (const auto& round : rounds) {
      session.submit_round(round);
    }
    session.drain();
    if (stats_out != nullptr) *stats_out = session.session_stats();
    session.close();
    return out;
  }

  /// The single-threaded reference: serial streaming receivers, the same
  /// grouping, a plain Coordinator::process. `flush_after` marks round
  /// indices after which a mid-stream flush happens (the end always
  /// flushes).
  std::vector<EngineDecision> run_serial_reference(
      std::vector<std::size_t> flush_after = {}) {
    const SessionConfig cfg = session_config(1);
    std::vector<std::unique_ptr<StreamingReceiver>> streams;
    for (AccessPoint* ap : ptrs) {
      streams.push_back(
          std::make_unique<StreamingReceiver>(*ap, cfg.engine.streaming));
    }
    std::vector<Vec2> positions;
    for (const AccessPoint* ap : ptrs) {
      positions.push_back(ap->config().position);
    }
    Coordinator coord(cfg.engine.coordinator);
    std::size_t sequence = 0;
    std::vector<EngineDecision> out;
    auto decide_round =
        [&](std::vector<std::vector<StreamingReceiver::StreamPacket>> per_ap) {
          for (auto& g : group_frame_observations(
                   std::move(per_ap), positions,
                   cfg.engine.group_slack_samples)) {
            out.push_back(
                {sequence++, g.absolute_start, coord.process(g.observations)});
          }
        };
    auto flush_all = [&] {
      std::vector<std::vector<StreamingReceiver::StreamPacket>> tail;
      for (auto& s : streams) tail.push_back(s->flush());
      decide_round(std::move(tail));
    };
    for (std::size_t r = 0; r < rounds.size(); ++r) {
      std::vector<std::vector<StreamingReceiver::StreamPacket>> per_ap;
      for (std::size_t i = 0; i < streams.size(); ++i) {
        per_ap.push_back(streams[i]->push(rounds[r][i]));
      }
      decide_round(std::move(per_ap));
      for (std::size_t f : flush_after) {
        if (f == r) flush_all();
      }
    }
    flush_all();
    return out;
  }
};

void expect_identical_streams(const std::vector<EngineDecision>& a,
                              const std::vector<EngineDecision>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].sequence, b[i].sequence);
    EXPECT_EQ(a[i].absolute_start, b[i].absolute_start);
    const FrameDecision& da = a[i].decision;
    const FrameDecision& db = b[i].decision;
    EXPECT_EQ(da.accepted, db.accepted);
    EXPECT_EQ(da.policy, db.policy);
    EXPECT_EQ(da.detail, db.detail);
    EXPECT_EQ(da.source, db.source);
    EXPECT_EQ(da.spoof, db.spoof);
    EXPECT_EQ(da.spoof_score, db.spoof_score);  // bit-exact, not approximate
    ASSERT_EQ(da.location.has_value(), db.location.has_value());
    if (da.location) {
      EXPECT_EQ(da.location->position.x, db.location->position.x);
      EXPECT_EQ(da.location->position.y, db.location->position.y);
    }
    ASSERT_EQ(da.trace.size(), db.trace.size());
    for (std::size_t t = 0; t < da.trace.size(); ++t) {
      EXPECT_EQ(da.trace[t].policy, db.trace[t].policy);
      EXPECT_EQ(da.trace[t].dropped, db.trace[t].dropped);
    }
  }
}

TEST(Session, PipelinedSubmissionMatchesSerialReferenceAtAnyThreadCount) {
  for (std::uint64_t seed : {11ull, 13ull}) {
    SCOPED_TRACE(seed);
    SessionRig rig(seed);
    const auto reference = rig.run_serial_reference();
    ASSERT_GE(reference.size(), 5u);
    for (std::size_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE(threads);
      expect_identical_streams(rig.run_session(rig.session_config(threads)),
                               reference);
    }
  }
}

TEST(Session, WidebandPipelinedRoundsAreDeterministic) {
  SessionRig rig(11, /*subbands=*/4);
  const auto reference = rig.run_serial_reference();
  ASSERT_GE(reference.size(), 5u);
  for (std::size_t threads : {2u, 8u}) {
    SCOPED_TRACE(threads);
    expect_identical_streams(rig.run_session(rig.session_config(threads)),
                             reference);
  }
}

TEST(Session, MatchesBatchEngineByteForByte) {
  SessionRig rig(12);
  // The lock-step batch wrapper...
  std::vector<EngineDecision> batch;
  {
    EngineConfig cfg = rig.session_config(2).engine;
    DeploymentEngine engine(cfg, rig.ptrs);
    for (const auto& round : rig.rounds) {
      for (auto& d : engine.ingest(round)) batch.push_back(std::move(d));
    }
    for (auto& d : engine.flush()) batch.push_back(std::move(d));
  }
  // ...and the pipelined session must agree exactly.
  expect_identical_streams(rig.run_session(rig.session_config(2)), batch);
}

TEST(Session, FivePolicyChainPipelinedMatchesBatch) {
  // acl -> spoof -> fence -> rate through the pipelined path: stateful
  // policies (rate limiting by global frame index, spoof trackers) must
  // see exactly the stream the lock-step batch wrapper produces.
  SessionRig rig(11);
  auto five = [&](std::size_t threads) {
    SessionConfig cfg = rig.session_config(threads);
    cfg.engine.coordinator.policies = {PolicyKind::kAcl, PolicyKind::kSpoof,
                                       PolicyKind::kFence,
                                       PolicyKind::kRateLimit};
    AccessControlList acl;
    acl.allow(MacAddress::from_index(1));
    acl.allow(MacAddress::from_index(2));
    cfg.engine.coordinator.acl = std::move(acl);
    cfg.engine.coordinator.rate_limit.max_frames = 3;
    cfg.engine.coordinator.rate_limit.window_frames = 1024;
    return cfg;
  };
  std::vector<EngineDecision> batch;
  {
    DeploymentEngine engine(five(1).engine, rig.ptrs);
    for (const auto& round : rig.rounds) {
      for (auto& d : engine.ingest(round)) batch.push_back(std::move(d));
    }
    for (auto& d : engine.flush()) batch.push_back(std::move(d));
  }
  ASSERT_GE(batch.size(), 5u);
  for (std::size_t threads : {2u, 8u}) {
    SCOPED_TRACE(threads);
    expect_identical_streams(rig.run_session(five(threads)), batch);
  }
}

TEST(Session, BackpressureSaturationBoundsInflightWithoutChangingOutput) {
  SessionRig rig(11);
  const auto reference = rig.run_serial_reference();

  SessionConfig tight = rig.session_config(4);
  tight.max_inflight_frames = 1;  // every round must run alone
  SessionStats stats;
  expect_identical_streams(rig.run_session(tight, &stats), reference);
  // A budget smaller than any round means a round is only admitted once
  // the pipeline is empty: rounds never hold budget concurrently.
  EXPECT_EQ(stats.max_admitted_rounds, 1u);
  EXPECT_GT(stats.max_inflight_frames, 0u);

  SessionConfig loose = rig.session_config(4);
  loose.max_inflight_frames = 0;  // unbounded
  expect_identical_streams(rig.run_session(loose), reference);
}

TEST(Session, MidStreamDrainMatchesMidStreamFlush) {
  SessionRig rig(11);
  const std::size_t cut = 3;
  const auto reference = rig.run_serial_reference({cut});

  std::vector<EngineDecision> out;
  EngineSession session(rig.session_config(2), rig.ptrs,
                        [&](const EngineDecision& d) { out.push_back(d); });
  for (std::size_t r = 0; r <= cut; ++r) session.submit_round(rig.rounds[r]);
  session.drain();
  const std::size_t after_first_drain = out.size();
  EXPECT_GT(after_first_drain, 0u);
  // The session stays usable: keep streaming after the mid-stream drain.
  for (std::size_t r = cut + 1; r < rig.rounds.size(); ++r) {
    session.submit_round(rig.rounds[r]);
  }
  session.drain();
  session.close();
  EXPECT_GT(out.size(), after_first_drain);
  expect_identical_streams(out, reference);
}

TEST(Session, PerApRaggedSubmissionFormsRoundsByChunkIndex) {
  SessionRig rig(13);
  const auto reference = rig.run_serial_reference();

  std::vector<EngineDecision> out;
  EngineSession session(rig.session_config(2), rig.ptrs,
                        [&](const EngineDecision& d) { out.push_back(d); });
  // Push each AP's whole stream in turn: round r must still be formed
  // from the r-th chunk of every AP, exactly as aligned submission.
  for (std::size_t i = 0; i < rig.ptrs.size(); ++i) {
    for (const auto& round : rig.rounds) session.submit(i, round[i]);
  }
  session.drain();
  session.close();
  expect_identical_streams(out, reference);
}

TEST(Session, CloseIsIdempotentAndRejectsLateWork) {
  SessionRig rig(11);
  std::size_t decisions = 0;
  EngineSession session(rig.session_config(2), rig.ptrs,
                        [&](const EngineDecision&) { ++decisions; });
  session.submit_round(rig.rounds[0]);
  session.close();
  session.close();  // idempotent
  EXPECT_THROW(session.submit_round(rig.rounds[1]), StateError);
  EXPECT_THROW(session.drain(), StateError);
  // close() drained: the submitted round (plus the flush pass) was
  // fully decided before the pipeline stopped.
  EXPECT_GE(session.session_stats().rounds_completed, 2u);
}

TEST(Session, StatsCountChunksRoundsAndDecisions) {
  SessionRig rig(12);
  SessionStats stats;
  const auto out = rig.run_session(rig.session_config(4), &stats);
  EXPECT_EQ(stats.chunks_submitted, rig.rounds.size() * rig.ptrs.size());
  // Every submitted round plus the drain's flush pass completed.
  EXPECT_GE(stats.rounds_completed, rig.rounds.size() + 1);
  EXPECT_EQ(stats.decisions_emitted, out.size());
  EXPECT_GE(stats.max_inflight_frames, 1u);
}

TEST(Session, SubmitRingBackpressureBlocksWithoutChangingOutput) {
  SessionRig rig(11);
  const auto reference = rig.run_serial_reference();

  // One-slot submit rings and a lock-step pipeline: the submitter runs
  // far ahead of the dataplane and must repeatedly find its AP's ring
  // full, block on the doorbell, and resume — with zero effect on the
  // decision stream.
  SessionConfig cfg = rig.session_config(2);
  cfg.max_pending_chunks = 1;
  cfg.max_inflight_rounds = 1;
  SessionStats stats;
  expect_identical_streams(rig.run_session(cfg, &stats), reference);
  EXPECT_GT(stats.submit_ring_full_blocks, 0u);
  EXPECT_LE(stats.max_submit_ring_occupancy, 1u);
}

TEST(Session, WorkerPlacementPinningIsDeterministicAndObservable) {
  SessionRig rig(11);
  const auto reference = rig.run_serial_reference();

  SessionConfig cfg = rig.session_config(2);
  cfg.placement.pin_workers = true;
  cfg.placement.cores = {0};  // every worker on core 0: worst case, legal
  SessionStats stats;
  expect_identical_streams(rig.run_session(cfg, &stats), reference);
#if defined(__linux__)
  EXPECT_EQ(stats.workers_pinned, 2u);
#else
  EXPECT_EQ(stats.workers_pinned, 0u);  // no-op off Linux, by contract
#endif
}

TEST(Session, RejectsInvalidSubmissions) {
  SessionRig rig(11);
  EngineSession session(rig.session_config(1), rig.ptrs,
                        [](const EngineDecision&) {});
  EXPECT_THROW(session.submit_round(std::vector<CMat>(rig.ptrs.size() + 1)),
               InvalidArgument);
  EXPECT_THROW(session.submit(rig.ptrs.size(), rig.rounds[0][0]),
               InvalidArgument);
  EXPECT_THROW(session.submit(0, CMat(1, 8)), InvalidArgument);  // wrong rows
  session.close();
}

// Regression for the robustness gap the capture fuzz loop found:
// NaN-laced IQ used to flow through conditioning into the covariance
// EVD and trip eig()'s Hermitian precondition deep inside a worker.
// submit() must reject non-finite samples at the ingest boundary, and
// the session must stay usable for clean chunks afterwards.
TEST(Session, RejectsNonFiniteIqAtSubmit) {
  SessionRig rig(11);
  EngineSession session(rig.session_config(1), rig.ptrs,
                        [](const EngineDecision&) {});

  CMat nan_chunk = rig.rounds[0][0];
  nan_chunk(0, nan_chunk.cols() / 2) =
      cd(std::numeric_limits<double>::quiet_NaN(), 0.0);
  EXPECT_THROW(session.submit(0, nan_chunk), InvalidArgument);

  CMat inf_chunk = rig.rounds[0][0];
  inf_chunk(inf_chunk.rows() - 1, 0) =
      cd(0.0, std::numeric_limits<double>::infinity());
  EXPECT_THROW(session.submit(0, inf_chunk), InvalidArgument);

  // A poisoned chunk must not poison the session: the rejection happens
  // before the rings, so clean rounds still flow end to end.
  for (const auto& round : rig.rounds) session.submit_round(round);
  session.drain();
  session.close();
}

}  // namespace
}  // namespace sa
