// Unit tests for sa_mac: addresses, CRC-32, frame serialization, ACL.
#include <gtest/gtest.h>

#include "sa/common/error.hpp"
#include "sa/common/rng.hpp"
#include "sa/mac/acl.hpp"
#include "sa/mac/address.hpp"
#include "sa/mac/frame.hpp"

namespace sa {
namespace {

TEST(MacAddress, ParseFormatRoundTrip) {
  const auto a = MacAddress::parse("02:5a:00:00:00:07");
  EXPECT_EQ(a.to_string(), "02:5a:00:00:00:07");
  EXPECT_TRUE(a.is_local());
  EXPECT_FALSE(a.is_broadcast());
}

TEST(MacAddress, ParseRejectsGarbage) {
  EXPECT_THROW(MacAddress::parse("not-a-mac"), InvalidArgument);
  EXPECT_THROW(MacAddress::parse("01:02:03"), InvalidArgument);
}

TEST(MacAddress, FromIndexDistinct) {
  const auto a = MacAddress::from_index(1);
  const auto b = MacAddress::from_index(2);
  EXPECT_NE(a, b);
  EXPECT_TRUE(a.is_local());
  EXPECT_EQ(MacAddress::from_index(1), a);  // deterministic
}

TEST(MacAddress, BroadcastAndHash) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  std::hash<MacAddress> h;
  EXPECT_NE(h(MacAddress::from_index(1)), h(MacAddress::from_index(2)));
}

TEST(Crc32, KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926 (standard check value).
  const Bytes data{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(Frame, SerializeParseRoundTrip) {
  Frame f = Frame::data(MacAddress::from_index(100), MacAddress::from_index(7),
                        {1, 2, 3, 4, 5}, 1234);
  f.duration = 42;
  const Bytes psdu = f.serialize();
  const auto parsed = Frame::parse(psdu);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, FrameType::kData);
  EXPECT_TRUE(parsed->to_ds);
  EXPECT_FALSE(parsed->from_ds);
  EXPECT_EQ(parsed->duration, 42);
  EXPECT_EQ(parsed->addr1, MacAddress::from_index(100));
  EXPECT_EQ(parsed->addr2, MacAddress::from_index(7));
  EXPECT_EQ(parsed->sequence, 1234);
  EXPECT_EQ(parsed->body, (Bytes{1, 2, 3, 4, 5}));
}

TEST(Frame, CorruptionDetectedByFcs) {
  const Frame f = Frame::data(MacAddress::from_index(1),
                              MacAddress::from_index(2), Bytes(64, 0xAB));
  Bytes psdu = f.serialize();
  Rng rng(1);
  for (int rep = 0; rep < 20; ++rep) {
    Bytes corrupted = psdu;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(psdu.size() - 1)));
    corrupted[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    EXPECT_FALSE(Frame::parse(corrupted).has_value());
  }
}

TEST(Frame, TooShortRejected) {
  EXPECT_FALSE(Frame::parse({}).has_value());
  EXPECT_FALSE(Frame::parse(Bytes(10, 0)).has_value());
}

TEST(Frame, ProbeRequestShape) {
  const Frame f = Frame::probe_request(MacAddress::from_index(3), 9);
  EXPECT_EQ(f.type, FrameType::kManagement);
  EXPECT_EQ(f.subtype,
            static_cast<std::uint8_t>(ManagementSubtype::kProbeRequest));
  EXPECT_TRUE(f.addr1.is_broadcast());
  const auto parsed = Frame::parse(f.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->subtype, f.subtype);
  EXPECT_EQ(parsed->sequence, 9);
}

TEST(Frame, EmptyBodyAllowed) {
  Frame f = Frame::data(MacAddress::from_index(1), MacAddress::from_index(2), {});
  const auto parsed = Frame::parse(f.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->body.empty());
}

TEST(Frame, SequenceNumberBounds) {
  Frame f = Frame::data(MacAddress::from_index(1), MacAddress::from_index(2),
                        {}, 4095);
  EXPECT_NO_THROW(f.serialize());
  f.sequence = 4096;
  EXPECT_THROW(f.serialize(), InvalidArgument);
}

TEST(Acl, AllowRevoke) {
  AccessControlList acl;
  const auto a = MacAddress::from_index(1);
  EXPECT_FALSE(acl.is_allowed(a));
  acl.allow(a);
  EXPECT_TRUE(acl.is_allowed(a));
  EXPECT_EQ(acl.size(), 1u);
  acl.revoke(a);
  EXPECT_FALSE(acl.is_allowed(a));
  // Spoofed source with the same address is allowed — the ACL weakness
  // SecureAngle addresses.
  acl.allow(a);
  const auto spoofed = MacAddress::parse(a.to_string());
  EXPECT_TRUE(acl.is_allowed(spoofed));
}

}  // namespace
}  // namespace sa
