// Transport-layer tests: FaultPlan determinism and string round-trip,
// the FaultyTransport fault kinds under forced schedules, the
// ReliableLink ARQ (retry/backoff, duplicate suppression, corruption
// repair, cold-start timeout, the stale-ack-after-cold-start
// regression), total decode of the kTransportData/kAck envelopes
// (truncation at every prefix, reserved flags, fuzz parity with
// kClientState), and concurrent handoffs of distinct MACs through a
// lossy FleetCoordinator — the TSan surface for the striped control
// plane.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "sa/capture/format.hpp"
#include "sa/fleet/coordinator.hpp"
#include "sa/fleet/transport.hpp"
#include "sa/fleet/wire.hpp"

namespace sa {
namespace {

ByteStream bytes_of(std::initializer_list<std::uint8_t> list) {
  return ByteStream(list);
}

// The envelope checksum, re-derived: part of the wire contract, so the
// tests can build frames whose framing is flawless on purpose.
std::uint32_t fnv1a32(const std::uint8_t* data, std::size_t len) {
  std::uint32_t h = 0x811c9dc5u;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x01000193u;
  }
  return h;
}

ByteStream raw_frame(FleetWireType type, const ByteStream& payload) {
  ByteStream out;
  put_u32(out, kFleetWireMagic);
  put_u32(out, kFleetWireVersion);
  put_u32(out, static_cast<std::uint32_t>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

// ------------------------------------------------------------ FaultPlan

TEST(FaultPlan, VerdictIsDeterministicAndTracksProbabilities) {
  FaultPlan plan;
  plan.seed = 7;
  plan.drop = 0.3;
  plan.corrupt = 0.1;
  std::size_t drops = 0, corrupts = 0, nones = 0;
  const std::size_t n = 20000;
  for (std::size_t i = 0; i < n; ++i) {
    const FaultKind v = plan.verdict(i);
    EXPECT_EQ(v, plan.verdict(i));  // pure function of (seed, index)
    if (v == FaultKind::kDrop) ++drops;
    if (v == FaultKind::kCorrupt) ++corrupts;
    if (v == FaultKind::kNone) ++nones;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(corrupts) / n, 0.1, 0.02);
  EXPECT_EQ(drops + corrupts + nones, n);

  // A different seed is a different channel.
  FaultPlan other = plan;
  other.seed = 8;
  bool differs = false;
  for (std::size_t i = 0; i < 64 && !differs; ++i) {
    differs = other.verdict(i) != plan.verdict(i);
  }
  EXPECT_TRUE(differs);

  // Forced schedule overrides the draw, and activates an otherwise
  // quiet plan.
  FaultPlan forced;
  EXPECT_FALSE(forced.active());
  forced.schedule[3] = FaultKind::kDrop;
  EXPECT_TRUE(forced.active());
  EXPECT_EQ(forced.verdict(3), FaultKind::kDrop);
  EXPECT_EQ(forced.verdict(4), FaultKind::kNone);
}

TEST(FaultPlan, StringRoundTripAndRejection) {
  FaultPlan plan;
  plan.seed = 42;
  plan.drop = 0.15;
  plan.duplicate = 0.05;
  plan.delay_ticks = 9;
  plan.schedule[3] = FaultKind::kCorrupt;
  plan.schedule[11] = FaultKind::kDrop;

  const std::string text = plan.to_string();
  EXPECT_EQ(text, "seed=42,drop=0.15,dup=0.05,delay_ticks=9,"
                  "force=3:corrupt;11:drop");
  const auto back = FaultPlan::parse(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seed, 42u);
  EXPECT_EQ(back->drop, 0.15);
  EXPECT_EQ(back->duplicate, 0.05);
  EXPECT_EQ(back->delay_ticks, 9u);
  EXPECT_EQ(back->schedule, plan.schedule);
  EXPECT_EQ(back->to_string(), text);  // stable fixed point

  EXPECT_FALSE(FaultPlan::parse("bogus=1").has_value());
  EXPECT_FALSE(FaultPlan::parse("drop").has_value());
  EXPECT_FALSE(FaultPlan::parse("drop=1.5").has_value());
  EXPECT_FALSE(FaultPlan::parse("drop=-0.1").has_value());
  EXPECT_FALSE(FaultPlan::parse("drop=0.6,dup=0.6").has_value());  // > 1
  EXPECT_FALSE(FaultPlan::parse("force=3").has_value());
  EXPECT_FALSE(FaultPlan::parse("force=x:drop").has_value());
  EXPECT_FALSE(FaultPlan::parse("force=3:explode").has_value());
}

// ------------------------------------------------------ FaultyTransport

struct Delivered {
  std::vector<ByteStream> datagrams;
  void attach(FleetTransport& t) {
    t.set_receiver([this](const ByteStream& d) { datagrams.push_back(d); });
  }
};

TEST(FaultyTransport, ForcedVerdictsShapeTheChannel) {
  LoopbackTransport inner;
  FaultPlan plan;
  plan.schedule[0] = FaultKind::kDrop;
  plan.schedule[1] = FaultKind::kReorder;
  plan.schedule[3] = FaultKind::kDuplicate;
  plan.schedule[4] = FaultKind::kDelay;
  plan.delay_ticks = 3;
  FaultyTransport channel(inner, plan);
  Delivered sink;
  sink.attach(channel);

  channel.send(bytes_of({0}));  // dropped
  channel.send(bytes_of({1}));  // reordered: held one extra tick
  channel.send(bytes_of({2}));  // normal: leapfrogs datagram 1
  channel.send(bytes_of({3}));  // duplicated
  channel.send(bytes_of({4}));  // delayed delay_ticks extra
  EXPECT_EQ(channel.pending(), 5u);  // 1, 2, 3, 3', 4 in flight

  std::size_t ticks = 0;
  while (channel.pending() > 0 && ticks < 32) {
    channel.tick();
    ++ticks;
  }
  // Tick 1: {2, 3, 3'}; tick 2: {1}; tick 4: {4}.
  ASSERT_EQ(sink.datagrams.size(), 5u);
  EXPECT_EQ(sink.datagrams[0], bytes_of({2}));
  EXPECT_EQ(sink.datagrams[1], bytes_of({3}));
  EXPECT_EQ(sink.datagrams[2], bytes_of({3}));
  EXPECT_EQ(sink.datagrams[3], bytes_of({1}));
  EXPECT_EQ(sink.datagrams[4], bytes_of({4}));

  const TransportStats& stats = channel.stats();
  EXPECT_EQ(stats.sent, 5u);
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_EQ(stats.reordered, 1u);
  EXPECT_EQ(stats.duplicated, 1u);
  EXPECT_EQ(stats.delayed, 1u);
  EXPECT_EQ(stats.delivered, 5u);  // the duplicate's copy counts
}

TEST(FaultyTransport, CorruptionFlipsBitsButDelivers) {
  LoopbackTransport inner;
  FaultPlan plan;
  plan.schedule[0] = FaultKind::kCorrupt;
  FaultyTransport channel(inner, plan);
  Delivered sink;
  sink.attach(channel);

  const ByteStream original = bytes_of({10, 20, 30, 40});
  channel.send(original);
  channel.tick();
  ASSERT_EQ(sink.datagrams.size(), 1u);
  EXPECT_EQ(sink.datagrams[0].size(), original.size());
  EXPECT_NE(sink.datagrams[0], original);  // the flip is never a no-op
  EXPECT_EQ(channel.stats().corrupted, 1u);

  // Same plan, same index -> the same corrupted bytes (replay safety).
  LoopbackTransport inner2;
  FaultyTransport channel2(inner2, plan);
  Delivered sink2;
  sink2.attach(channel2);
  channel2.send(original);
  channel2.tick();
  ASSERT_EQ(sink2.datagrams.size(), 1u);
  EXPECT_EQ(sink2.datagrams[0], sink.datagrams[0]);
}

// --------------------------------------------------------- ReliableLink

ByteStream sample_message() {
  FleetClientState msg;
  msg.mac = MacAddress::from_index(9);
  msg.generation = 2;
  msg.source_site = 0;
  msg.dest_site = 1;
  msg.state.acl_allowed = true;
  return encode_client_state(msg);
}

struct LossyLink {
  LoopbackTransport inner;
  FaultyTransport channel;
  ReliableLink link;
  std::vector<ByteStream> imported;

  explicit LossyLink(FaultPlan plan, ReliableLinkConfig config = {})
      : channel(inner, std::move(plan)), link(channel, config) {
    link.set_import(
        [this](const ByteStream& m) { imported.push_back(m); });
  }
};

TEST(ReliableLink, DeliversFirstTryOnAQuietChannel) {
  LossyLink l{FaultPlan{}};
  const ByteStream msg = sample_message();
  const auto report = l.link.send_reliable(msg);
  EXPECT_TRUE(report.acked);
  EXPECT_EQ(report.attempts, 1u);
  ASSERT_EQ(l.imported.size(), 1u);
  EXPECT_EQ(l.imported[0], msg);
  EXPECT_EQ(l.link.stats().retransmits, 0u);
}

TEST(ReliableLink, RetriesThroughADroppedFrame) {
  FaultPlan plan;
  plan.schedule[0] = FaultKind::kDrop;  // first data frame dies
  LossyLink l{plan};
  const ByteStream msg = sample_message();
  const auto report = l.link.send_reliable(msg);
  EXPECT_TRUE(report.acked);
  EXPECT_EQ(report.attempts, 2u);
  EXPECT_GE(report.ticks, ReliableLinkConfig{}.rto_ticks);  // waited out rto
  ASSERT_EQ(l.imported.size(), 1u);
  EXPECT_EQ(l.imported[0], msg);
  const ReliableLinkStats& stats = l.link.stats();
  EXPECT_EQ(stats.retransmits, 1u);
  EXPECT_EQ(stats.timeouts, 0u);
}

TEST(ReliableLink, SuppressesDuplicateDeliveries) {
  FaultPlan plan;
  plan.schedule[0] = FaultKind::kDuplicate;
  LossyLink l{plan};
  const auto report = l.link.send_reliable(sample_message());
  EXPECT_TRUE(report.acked);
  EXPECT_EQ(l.imported.size(), 1u);  // imported once, not twice
  EXPECT_EQ(l.link.stats().duplicates_suppressed, 1u);
  EXPECT_EQ(l.link.stats().acks_sent, 2u);  // the duplicate is re-acked
}

TEST(ReliableLink, CorruptionIsDetectedAndRepairedByRetry) {
  FaultPlan plan;
  plan.schedule[0] = FaultKind::kCorrupt;
  LossyLink l{plan};
  const ByteStream msg = sample_message();
  const auto report = l.link.send_reliable(msg);
  EXPECT_TRUE(report.acked);
  EXPECT_EQ(report.attempts, 2u);
  // The corrupted copy never reached the import callback; the clean
  // retransmission did, byte-exact.
  ASSERT_EQ(l.imported.size(), 1u);
  EXPECT_EQ(l.imported[0], msg);
  EXPECT_EQ(l.link.stats().corrupt_dropped, 1u);
}

TEST(ReliableLink, TimesOutWhenEveryAttemptDies) {
  FaultPlan plan;
  plan.drop = 1.0;
  ReliableLinkConfig config;
  config.max_attempts = 3;
  config.rto_ticks = 2;
  LossyLink l{plan, config};
  const auto report = l.link.send_reliable(sample_message());
  EXPECT_FALSE(report.acked);  // the coordinator's cold-start cue
  EXPECT_EQ(report.attempts, 3u);
  EXPECT_TRUE(l.imported.empty());
  EXPECT_EQ(l.link.stats().timeouts, 1u);
  EXPECT_EQ(l.link.stats().retransmits, 2u);
}

TEST(ReliableLink, BackoffScheduleIsDeterministic) {
  FaultPlan plan;
  plan.drop = 1.0;
  auto run = [&] {
    LossyLink l{plan};
    return l.link.send_reliable(sample_message()).ticks;
  };
  const std::uint64_t first = run();
  EXPECT_EQ(first, run());  // same (plan, config) -> same virtual time
  EXPECT_GE(first, 8u + 16u + 32u + 64u + 64u);  // doubling, clamped
}

// The regression the cold-start path must survive: a datagram delayed
// past its whole retry budget arrives during a LATER send's pump. Its
// import fires late (the coordinator's generation guard is what makes
// that safe), its ack must be counted stale — and must not ack the
// in-flight send.
TEST(ReliableLink, StaleAckAfterColdStartIsIgnored) {
  FaultPlan plan;
  plan.schedule[0] = FaultKind::kDelay;
  plan.delay_ticks = 6;  // beyond the single 4-tick attempt below
  ReliableLinkConfig config;
  config.max_attempts = 1;
  config.rto_ticks = 4;
  LossyLink l{plan, config};

  const ByteStream first = sample_message();
  const auto report1 = l.link.send_reliable(first);
  EXPECT_FALSE(report1.acked);  // timed out; coordinator cold-starts
  EXPECT_TRUE(l.imported.empty());

  FleetClientState second_msg;
  second_msg.mac = MacAddress::from_index(10);
  second_msg.generation = 3;
  const ByteStream second = encode_client_state(second_msg);
  const auto report2 = l.link.send_reliable(second);
  EXPECT_TRUE(report2.acked);

  // Drain the channel: the delayed first message surfaces late (during
  // the second pump or here, depending on the jitter draw) — exactly
  // once, after the second, without stealing the second send's ack —
  // and the straggler's own ack comes home to a link with nothing
  // pending and is ignored as stale.
  std::size_t guard = 0;
  while (l.channel.pending() > 0 && guard++ < 64) l.channel.tick();
  ASSERT_EQ(l.imported.size(), 2u);
  EXPECT_EQ(l.imported[0], second);
  EXPECT_EQ(l.imported[1], first);
  EXPECT_EQ(l.link.stats().stale_acks, 1u);
  EXPECT_EQ(l.link.stats().timeouts, 1u);
}

// ------------------------------------------- envelope total decode

TEST(TransportWire, DataAndAckRoundTrip) {
  FleetTransportData data;
  data.seq = 77;
  data.retransmit = true;
  data.inner = sample_message();
  const ByteStream wire = encode_transport_data(data);
  EXPECT_EQ(peek_type(wire), FleetWireType::kTransportData);
  const auto back = decode_transport_data(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, 77u);
  EXPECT_TRUE(back->retransmit);
  EXPECT_EQ(back->inner, data.inner);

  FleetAck ack;
  ack.seq = 77;
  ack.duplicate = true;
  const ByteStream ack_wire = encode_ack(ack);
  EXPECT_EQ(peek_type(ack_wire), FleetWireType::kAck);
  const auto ack_back = decode_ack(ack_wire);
  ASSERT_TRUE(ack_back.has_value());
  EXPECT_EQ(ack_back->seq, 77u);
  EXPECT_TRUE(ack_back->duplicate);
}

TEST(TransportWire, TruncationAtEveryPrefixIsRejected) {
  FleetTransportData data;
  data.seq = 5;
  data.inner = sample_message();
  const ByteStream wire = encode_transport_data(data);
  for (std::size_t keep = 0; keep < wire.size(); ++keep) {
    const ByteStream cut(wire.begin(), wire.begin() + keep);
    EXPECT_FALSE(decode_transport_data(cut).has_value()) << "keep=" << keep;
    EXPECT_FALSE(peek_type(cut).has_value()) << "keep=" << keep;
  }
  FleetAck ack;
  ack.seq = 5;
  const ByteStream ack_wire = encode_ack(ack);
  for (std::size_t keep = 0; keep < ack_wire.size(); ++keep) {
    const ByteStream cut(ack_wire.begin(), ack_wire.begin() + keep);
    EXPECT_FALSE(decode_ack(cut).has_value()) << "keep=" << keep;
    EXPECT_FALSE(peek_type(cut).has_value()) << "keep=" << keep;
  }
}

TEST(TransportWire, ReservedFlagsAndBadChecksumAreRejected) {
  // Reserved data flags with a CORRECT checksum: only the flag check
  // can reject it.
  ByteStream payload;
  put_u64(payload, 1);
  put_u32(payload, 0x2);  // bit1 is reserved
  put_u32(payload, 0);
  put_u32(payload, fnv1a32(payload.data(), payload.size()));
  EXPECT_FALSE(decode_transport_data(
                   raw_frame(FleetWireType::kTransportData, payload))
                   .has_value());

  // A single flipped bit anywhere fails the checksum.
  FleetTransportData data;
  data.seq = 1;
  data.inner = sample_message();
  ByteStream wire = encode_transport_data(data);
  wire[20] ^= 0x01;  // inside seq
  EXPECT_FALSE(decode_transport_data(wire).has_value());

  // Reserved ack flags.
  ByteStream ack_payload;
  put_u64(ack_payload, 1);
  put_u32(ack_payload, 0xFFFFFFFEu);
  EXPECT_FALSE(
      decode_ack(raw_frame(FleetWireType::kAck, ack_payload)).has_value());

  // Trailing garbage after a complete ack payload.
  ByteStream ack_long;
  put_u64(ack_long, 1);
  put_u32(ack_long, 0);
  put_u8(ack_long, 0x55);
  EXPECT_FALSE(
      decode_ack(raw_frame(FleetWireType::kAck, ack_long)).has_value());

  // An envelope whose inner_len disagrees with the payload.
  ByteStream lying;
  put_u64(lying, 1);
  put_u32(lying, 0);
  put_u32(lying, 3);  // claims 3 bytes of cargo
  put_u8(lying, 0xAB);  // ships 1
  put_u32(lying, fnv1a32(lying.data(), lying.size()));
  EXPECT_FALSE(decode_transport_data(
                   raw_frame(FleetWireType::kTransportData, lying))
                   .has_value());
}

// Fuzz parity with kClientState: the new envelope decoders face the
// same 200-mutant gauntlet the fleet wire format has always run —
// reject or decode, never crash (the CI sanitizer jobs make the "never
// crash" part load-bearing).
TEST(TransportWire, FuzzedEnvelopesNeverMisbehave) {
  FleetTransportData data;
  data.seq = 3;
  data.inner = sample_message();
  const ByteStream wire = encode_transport_data(data);
  FleetAck ack;
  ack.seq = 3;
  const ByteStream ack_wire = encode_ack(ack);
  std::size_t rejected = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const ByteStream m1 = mutate_capture(wire, 1000 + i, 8);
    const ByteStream m2 = mutate_capture(ack_wire, 2000 + i, 8);
    (void)peek_type(m1);
    (void)peek_type(m2);
    if (!decode_transport_data(m1).has_value()) ++rejected;
    if (!decode_ack(m2).has_value()) ++rejected;
  }
  EXPECT_GT(rejected, 0u);  // virtually all mutants must die in decode
}

// -------------------------------------- concurrent lossy handoffs

// The TSan surface for the striped control plane: distinct MACs hand
// off concurrently through one lossy shared link. Convergence must not
// depend on the interleaving.
TEST(TransportFleet, ConcurrentHandoffsOfDistinctMacsConverge) {
  FleetConfig config;
  config.spec.site.num_aps = 2;
  config.spec.site.antennas = 4;
  config.spec.num_sites = 3;
  config.threads_per_site = 1;
  config.spoof_idle_frames = 0;
  const auto plan =
      FaultPlan::parse("seed=5,drop=0.15,dup=0.1,reorder=0.1,corrupt=0.1");
  ASSERT_TRUE(plan.has_value());
  config.fault_plan = *plan;
  FleetCoordinator fleet(config);

  const std::size_t kThreads = 8, kMoves = 4;
  std::vector<std::thread> drivers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    drivers.emplace_back([&fleet, t] {
      const MacAddress mac =
          MacAddress::from_index(static_cast<std::uint32_t>(t + 1));
      for (std::size_t m = 0; m < kMoves; ++m) {
        fleet.notify_association(mac,
                                 static_cast<std::uint32_t>((t + m) % 3));
      }
    });
  }
  for (auto& d : drivers) d.join();
  fleet.close();

  for (std::size_t t = 0; t < kThreads; ++t) {
    const MacAddress mac =
        MacAddress::from_index(static_cast<std::uint32_t>(t + 1));
    EXPECT_EQ(fleet.home_site(mac),
              std::optional<std::uint32_t>((t + kMoves - 1) % 3));
    EXPECT_EQ(fleet.generation_of(mac),
              std::optional<std::uint64_t>(kMoves));
  }
  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.associations, kThreads * kMoves);
  EXPECT_EQ(stats.handoffs_malformed, 0u);
  EXPECT_EQ(stats.handoffs_bad_site, 0u);
  EXPECT_EQ(stats.cold_starts, stats.timeouts);
  EXPECT_GE(stats.handoffs_applied + stats.cold_starts,
            kThreads * (kMoves - 1));
  EXPECT_GT(stats.home_map_bytes, 0u);
  EXPECT_EQ(stats.home_clients, kThreads);
}

}  // namespace
}  // namespace sa
