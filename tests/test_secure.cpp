// Integration tests for sa_secure: the full SecureAngle AP pipeline over
// the simulated office, virtual-fence localization, and spoof detection.
// These are the end-to-end checks that the reproduction actually works:
// packets transmitted by simulated clients are detected, decoded, and
// located to within a few degrees of ground truth.
#include <gtest/gtest.h>

#include <cmath>

#include "sa/common/angles.hpp"
#include "sa/common/error.hpp"
#include "sa/common/rng.hpp"
#include "sa/common/stats.hpp"
#include "sa/mac/frame.hpp"
#include "sa/phy/packet.hpp"
#include "sa/secure/accesspoint.hpp"
#include "sa/secure/spoofdetector.hpp"
#include "sa/secure/virtualfence.hpp"
#include "sa/testbed/office.hpp"
#include "sa/testbed/uplink.hpp"

namespace sa {
namespace {

/// Standard rig: Figure-4 office, one octagon AP at the paper's spot.
struct Rig {
  OfficeTestbed tb = OfficeTestbed::figure4();
  Rng rng;
  UplinkSimulation sim;
  AccessPoint ap;

  explicit Rig(std::uint64_t seed, double noise_power = 1e-5)
      : rng(seed),
        sim(tb,
            [&] {
              UplinkConfig cfg;
              cfg.channel.noise_power = noise_power;
              return cfg;
            }(),
            rng),
        ap(
            [&] {
              AccessPointConfig cfg;
              cfg.position = tb.ap_position();
              return cfg;
            }(),
            rng) {
    sim.add_ap(ap.placement());
  }

  /// One uplink data frame from a client position; returns AP rx packets.
  std::vector<ReceivedPacket> uplink(Vec2 from, MacAddress src,
                                     const TxPattern* pattern = nullptr) {
    const Frame frame = Frame::data(MacAddress::from_index(999), src,
                                    Bytes{1, 2, 3, 4}, seq_++);
    const PacketTransmitter tx(PhyRate::k6Mbps);
    const CVec wave = tx.transmit(frame.serialize());
    auto rx = sim.transmit(from, wave, pattern);
    return ap.receive(rx[0]);
  }

  std::uint16_t seq_ = 0;
};

TEST(AccessPoint, DetectsAndDecodesUplinkFrame) {
  Rig rig(100);
  const auto src = MacAddress::from_index(7);
  const auto pkts = rig.uplink(rig.tb.client(1).position, src);
  ASSERT_EQ(pkts.size(), 1u);
  const auto& pkt = pkts[0];
  ASSERT_TRUE(pkt.phy.has_value());
  ASSERT_TRUE(pkt.frame.has_value());
  EXPECT_EQ(pkt.frame->addr2, src);
  EXPECT_EQ(pkt.frame->body, (Bytes{1, 2, 3, 4}));
}

TEST(AccessPoint, BearingMatchesGroundTruthForRingClients) {
  Rig rig(101);
  std::vector<double> errors;
  for (int id : {1, 2, 3, 4, 5, 8, 9, 10}) {  // unobstructed ring clients
    const auto pkts = rig.uplink(rig.tb.client(id).position,
                                 MacAddress::from_index(id));
    ASSERT_EQ(pkts.size(), 1u) << "client " << id;
    ASSERT_EQ(pkts[0].bearing_world_deg.size(), 1u);
    const double est = pkts[0].bearing_world_deg[0];
    const double truth = rig.tb.ground_truth_bearing_deg(id);
    const double err = angular_distance_deg(est, truth);
    errors.push_back(err);
    // Single-packet error band: the paper sees occasional multi-degree
    // deviations even for clear clients (Fig. 5 error bars).
    EXPECT_LT(err, 12.0) << "client " << id << " est " << est << " truth "
                         << truth;
  }
  // But the population must be tight.
  EXPECT_LT(mean(errors), 4.0);
  EXPECT_LT(median(errors), 2.5);
}

TEST(AccessPoint, UncalibratedArrayBreaksBearing) {
  // Paper §2.2: without calibration the unknown per-chain phases make
  // AoA inoperable. Same seed => same impairments; only the calibration
  // switch differs.
  const auto tb = OfficeTestbed::figure4();
  auto make_rig = [&](bool calibrated, std::uint64_t seed) {
    Rng rng(seed);
    UplinkConfig ucfg;
    ucfg.channel.noise_power = 1e-5;
    auto sim = std::make_unique<UplinkSimulation>(tb, ucfg, rng);
    AccessPointConfig cfg;
    cfg.position = tb.ap_position();
    cfg.apply_calibration = calibrated;
    auto ap = std::make_unique<AccessPoint>(cfg, rng);
    sim->add_ap(ap->placement());
    return std::make_pair(std::move(sim), std::move(ap));
  };

  const Frame frame = Frame::data(MacAddress::from_index(999),
                                  MacAddress::from_index(1), Bytes{1}, 0);
  const CVec wave = PacketTransmitter(PhyRate::k6Mbps).transmit(frame.serialize());

  // Uncalibrated chains give a bearing unrelated to the truth — a random
  // draw can still land close, so compare the error *distributions* over
  // several impairment realizations.
  const double truth = tb.ground_truth_bearing_deg(1);
  std::vector<double> errs_cal, errs_uncal;
  for (std::uint64_t seed : {777u, 778u, 779u, 780u, 781u, 782u}) {
    {
      auto [sim, ap] = make_rig(true, seed);
      auto pkts = ap->receive(sim->transmit(tb.client(1).position, wave)[0]);
      ASSERT_FALSE(pkts.empty());
      errs_cal.push_back(
          angular_distance_deg(pkts[0].bearing_world_deg[0], truth));
    }
    {
      auto [sim, ap] = make_rig(false, seed);
      auto pkts = ap->receive(sim->transmit(tb.client(1).position, wave)[0]);
      ASSERT_FALSE(pkts.empty());
      errs_uncal.push_back(
          angular_distance_deg(pkts[0].bearing_world_deg[0], truth));
    }
  }
  EXPECT_LT(mean(errs_cal), 5.0);
  EXPECT_GT(mean(errs_uncal), 25.0);  // essentially random bearings
  EXPECT_GT(max_of(errs_uncal), 40.0);
}

TEST(AccessPoint, SignatureStableAcrossPackets) {
  Rig rig(102);
  const auto src = MacAddress::from_index(3);
  const auto p1 = rig.uplink(rig.tb.client(3).position, src);
  rig.sim.advance(1.0);
  const auto p2 = rig.uplink(rig.tb.client(3).position, src);
  ASSERT_FALSE(p1.empty());
  ASSERT_FALSE(p2.empty());
  EXPECT_GT(match_score(p1[0].signature, p2[0].signature), 0.8);
}

TEST(AccessPoint, SignaturesDifferAcrossLocations) {
  Rig rig(103);
  const auto a = rig.uplink(rig.tb.client(1).position, MacAddress::from_index(1));
  const auto b = rig.uplink(rig.tb.client(9).position, MacAddress::from_index(9));
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_LT(match_score(a[0].signature, b[0].signature), 0.6);
}

TEST(AccessPoint, LinearArrayReportsAmbiguousBearings) {
  const auto tb = OfficeTestbed::figure4();
  Rng rng(104);
  UplinkConfig ucfg;
  ucfg.channel.noise_power = 1e-5;
  UplinkSimulation sim(tb, ucfg, rng);
  AccessPointConfig cfg;
  cfg.position = tb.ap_position();
  cfg.geometry = ArrayGeometry::uniform_linear(8, 0.0613);
  AccessPoint ap(cfg, rng);
  sim.add_ap(ap.placement());
  // Client 4 sits near the ULA's broadside, where linear arrays are most
  // accurate (the paper's footnote 1 notes the side ambiguity; endfire
  // bearings additionally lose resolution to the sin(theta) compression).
  const Frame frame = Frame::data(MacAddress::from_index(999),
                                  MacAddress::from_index(4), Bytes{9}, 0);
  const CVec wave = PacketTransmitter(PhyRate::k6Mbps).transmit(frame.serialize());
  const auto pkts = ap.receive(sim.transmit(tb.client(4).position, wave)[0]);
  ASSERT_FALSE(pkts.empty());
  EXPECT_EQ(pkts[0].bearing_world_deg.size(), 2u);
  // One of the two candidates is the truth.
  const double truth = tb.ground_truth_bearing_deg(4);
  const double e0 = angular_distance_deg(pkts[0].bearing_world_deg[0], truth);
  const double e1 = angular_distance_deg(pkts[0].bearing_world_deg[1], truth);
  EXPECT_LT(std::min(e0, e1), 6.0);
}

TEST(AccessPoint, PowerWeightedBearingBeatsPlainArgmax) {
  // Regression for the "false positive direct path AoA" problem (§3.1):
  // across many channel realizations, selecting the MUSIC peak with the
  // highest Bartlett power must never do worse on average than taking
  // the raw spectrum maximum.
  double err_robust = 0.0, err_plain = 0.0;
  int n = 0;
  for (std::uint64_t seed : {201u, 202u, 203u, 204u}) {
    const auto tb = OfficeTestbed::figure4();
    for (bool robust : {true, false}) {
      Rng rng(seed);
      UplinkConfig ucfg;
      ucfg.channel.noise_power = 1e-5;
      UplinkSimulation sim(tb, ucfg, rng);
      AccessPointConfig cfg;
      cfg.position = tb.ap_position();
      cfg.power_weighted_bearing = robust;
      AccessPoint ap(cfg, rng);
      sim.add_ap(ap.placement());
      for (int id : {1, 4, 8, 10}) {
        const Frame f = Frame::data(MacAddress::from_index(999),
                                    MacAddress::from_index(id), Bytes{1}, 0);
        const CVec w =
            PacketTransmitter(PhyRate::k6Mbps).transmit(f.serialize());
        const auto pkts = ap.receive(sim.transmit(tb.client(id).position, w)[0]);
        ASSERT_FALSE(pkts.empty());
        const double err = angular_distance_deg(
            pkts[0].bearing_world_deg[0], tb.ground_truth_bearing_deg(id));
        if (robust) {
          err_robust += err;
          ++n;
        } else {
          err_plain += err;
        }
      }
    }
  }
  err_robust /= n;
  err_plain /= n;
  EXPECT_LE(err_robust, err_plain + 0.5);
  EXPECT_LT(err_robust, 5.0);
}

// ------------------------------------------------------------------ fence

TEST(VirtualFence, LocalizesFromTwoAps) {
  const std::vector<FenceObservation> obs{
      {{0.0, 0.0}, {bearing_deg({0, 0}, {6, 4})}},
      {{12.0, 0.0}, {bearing_deg({12, 0}, {6, 4})}},
  };
  const auto loc = localize(obs);
  ASSERT_TRUE(loc.has_value());
  EXPECT_NEAR(loc->position.x, 6.0, 1e-6);
  EXPECT_NEAR(loc->position.y, 4.0, 1e-6);
  EXPECT_NEAR(loc->residual_deg, 0.0, 1e-6);
}

TEST(VirtualFence, ResolvesLinearAmbiguity) {
  // Each AP reports front/back candidates; only one combination of picks
  // is geometrically consistent.
  const Vec2 truth{6.0, 4.0};
  const std::vector<FenceObservation> obs{
      {{0.0, 0.0},
       {bearing_deg({0, 0}, truth), wrap_deg360(-bearing_deg({0, 0}, truth))}},
      {{12.0, 0.0},
       {bearing_deg({12, 0}, truth),
        wrap_deg360(-bearing_deg({12, 0}, truth))}},
      {{6.0, 10.0}, {bearing_deg({6, 10}, truth)}},
  };
  const auto loc = localize(obs);
  ASSERT_TRUE(loc.has_value());
  EXPECT_NEAR(loc->position.x, truth.x, 0.2);
  EXPECT_NEAR(loc->position.y, truth.y, 0.2);
}

TEST(VirtualFence, ChecksBoundary) {
  const VirtualFence fence(Polygon::rectangle({0, 0}, {10, 10}));
  const Vec2 inside{5.0, 5.0};
  const Vec2 outside{15.0, 5.0};
  auto obs_for = [](Vec2 p) {
    return std::vector<FenceObservation>{
        {{1.0, 1.0}, {bearing_deg({1, 1}, p)}},
        {{9.0, 1.0}, {bearing_deg({9, 1}, p)}},
    };
  };
  EXPECT_TRUE(fence.check(obs_for(inside)).allowed);
  const auto deny = fence.check(obs_for(outside));
  EXPECT_FALSE(deny.allowed);
  ASSERT_TRUE(deny.location.has_value());
  EXPECT_NEAR(deny.location->position.x, 15.0, 0.1);
}

TEST(VirtualFence, RejectsSingleObservation) {
  const VirtualFence fence(Polygon::rectangle({0, 0}, {10, 10}));
  const auto d = fence.check({{{1.0, 1.0}, {45.0}}});
  EXPECT_FALSE(d.allowed);
}

TEST(VirtualFence, EndToEndMultiApLocalization) {
  // Full pipeline: client 1 transmits once; two octagon APs each compute
  // a bearing; the intersection lands near the client.
  const auto tb = OfficeTestbed::figure4();
  Rng rng(105);
  UplinkConfig ucfg;
  ucfg.channel.noise_power = 1e-5;
  UplinkSimulation sim(tb, ucfg, rng);

  AccessPointConfig c1;
  c1.position = tb.ap_position();
  AccessPoint ap1(c1, rng);
  AccessPointConfig c2;
  // The NW mounting point has a clear-enough view of client 1; the SW one
  // is shadowed by the pillar plus a partition (SNR ~2 dB — too weak).
  c2.position = tb.extra_ap_positions()[2];
  AccessPoint ap2(c2, rng);
  sim.add_ap(ap1.placement());
  sim.add_ap(ap2.placement());

  const Frame frame = Frame::data(MacAddress::from_index(999),
                                  MacAddress::from_index(1), Bytes{1}, 0);
  const CVec wave = PacketTransmitter(PhyRate::k6Mbps).transmit(frame.serialize());
  const auto rx = sim.transmit(tb.client(1).position, wave);
  const auto p1 = ap1.receive(rx[0]);
  const auto p2 = ap2.receive(rx[1]);
  ASSERT_FALSE(p1.empty());
  ASSERT_FALSE(p2.empty());

  const auto loc = localize({{c1.position, p1[0].bearing_world_deg},
                             {c2.position, p2[0].bearing_world_deg}});
  ASSERT_TRUE(loc.has_value());
  EXPECT_LT(distance(loc->position, tb.client(1).position), 2.5);
}

// ------------------------------------------------------------------ spoof

TEST(SpoofDetector, FlagsAttackerAtDifferentLocation) {
  Rig rig(106);
  SpoofDetector detector;
  const auto victim_mac = MacAddress::from_index(42);
  const Vec2 victim_pos = rig.tb.client(2).position;
  const Vec2 attacker_pos = rig.tb.client(9).position;

  // Victim trains and keeps transmitting.
  int training = 0, legit = 0;
  for (int i = 0; i < 10; ++i) {
    const auto pkts = rig.uplink(victim_pos, victim_mac);
    ASSERT_FALSE(pkts.empty());
    const auto obs = detector.observe(victim_mac, pkts[0].signature);
    if (obs.verdict == SpoofVerdict::kTraining) ++training;
    if (obs.verdict == SpoofVerdict::kLegitimate) ++legit;
    rig.sim.advance(0.1);
  }
  EXPECT_EQ(training, 5);
  EXPECT_EQ(legit, 5);

  // Attacker spoofs the victim's MAC from another location.
  int alarms = 0;
  for (int i = 0; i < 10; ++i) {
    const auto pkts = rig.uplink(attacker_pos, victim_mac);
    ASSERT_FALSE(pkts.empty());
    if (detector.observe(victim_mac, pkts[0].signature).verdict ==
        SpoofVerdict::kSpoof) {
      ++alarms;
    }
    rig.sim.advance(0.1);
  }
  EXPECT_GE(alarms, 9);
  EXPECT_EQ(detector.stats().alarms, static_cast<std::size_t>(alarms));
}

TEST(SpoofDetector, LegitimateClientKeepsPassingOverTime) {
  Rig rig(107);
  SpoofDetector detector;
  const auto mac = MacAddress::from_index(5);
  const Vec2 pos = rig.tb.client(5).position;
  int alarms = 0;
  for (int i = 0; i < 40; ++i) {
    const auto pkts = rig.uplink(pos, mac);
    ASSERT_FALSE(pkts.empty());
    if (detector.observe(mac, pkts[0].signature).verdict ==
        SpoofVerdict::kSpoof) {
      ++alarms;
    }
    rig.sim.advance(10.0);  // minutes of normal indoor drift
  }
  EXPECT_LE(alarms, 2);  // low false-alarm rate
}

TEST(SpoofDetector, TracksMultipleMacsIndependently) {
  Rig rig(108);
  SpoofDetector detector;
  for (int id : {1, 2, 3}) {
    const auto mac = MacAddress::from_index(id);
    for (int i = 0; i < 6; ++i) {
      const auto pkts = rig.uplink(rig.tb.client(id).position, mac);
      ASSERT_FALSE(pkts.empty());
      detector.observe(mac, pkts[0].signature);
    }
  }
  EXPECT_EQ(detector.stats().tracked_macs, 3u);
  EXPECT_NE(detector.tracker(MacAddress::from_index(1)), nullptr);
  detector.forget(MacAddress::from_index(1));
  EXPECT_EQ(detector.tracker(MacAddress::from_index(1)), nullptr);
  EXPECT_EQ(detector.stats().tracked_macs, 2u);
}

TEST(SpoofDetector, DirectionalAttackerStillFlagged) {
  // Threat model (§1): attacker with a directional antenna, off-site.
  Rig rig(109);
  SpoofDetector detector;
  const auto mac = MacAddress::from_index(13);
  const Vec2 victim = rig.tb.client(13).position;
  for (int i = 0; i < 8; ++i) {
    const auto pkts = rig.uplink(victim, mac);
    ASSERT_FALSE(pkts.empty());
    detector.observe(mac, pkts[0].signature);
    rig.sim.advance(0.1);
  }
  const Vec2 attacker = rig.tb.outdoor_positions()[1];
  TxPattern beam;
  beam.aim_azimuth_deg = bearing_deg(attacker, rig.tb.ap_position());
  beam.beamwidth_deg = 30.0;
  beam.boresight_gain_db = 15.0;
  // Off-site attackers also crank transmit power to punch through the
  // exterior wall (the paper's threat model assumes a capable attacker).
  beam.tx_power_db = 12.0;
  int alarms = 0;
  for (int i = 0; i < 6; ++i) {
    const auto pkts = rig.uplink(attacker, mac, &beam);
    if (pkts.empty()) continue;  // heavy exterior loss may kill detection
    if (detector.observe(mac, pkts[0].signature).verdict ==
        SpoofVerdict::kSpoof) {
      ++alarms;
    }
    rig.sim.advance(0.1);
  }
  EXPECT_GE(alarms, 4);
}

}  // namespace
}  // namespace sa
