// Unit tests for sa_array: geometries, steering vectors, bearing
// conversions, impairments, and the USRP2-style calibration procedure.
#include <gtest/gtest.h>

#include <cmath>

#include "sa/array/calibration.hpp"
#include "sa/array/geometry.hpp"
#include "sa/array/impairments.hpp"
#include "sa/common/angles.hpp"
#include "sa/common/constants.hpp"
#include "sa/common/error.hpp"
#include "sa/common/rng.hpp"

namespace sa {
namespace {

constexpr double kLambda = kSpeedOfLight / 2.4e9;

TEST(ArrayGeometry, LinearLayout) {
  const auto ula = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  EXPECT_EQ(ula.size(), 8u);
  EXPECT_EQ(ula.kind(), ArrayKind::kLinear);
  // Centred on the origin, spaced by lambda/2 (= 6.25 cm at 2.4 GHz; the
  // paper quotes 6.13 cm for its exact carrier).
  EXPECT_NEAR(ula.positions()[0].x, -3.5 * kLambda / 2.0, 1e-12);
  EXPECT_NEAR(ula.positions()[7].x, 3.5 * kLambda / 2.0, 1e-12);
  EXPECT_NEAR(ula.aperture(), 7.0 * kLambda / 2.0, 1e-12);
  EXPECT_EQ(ula.scan_min_deg(), -90.0);
  EXPECT_EQ(ula.scan_max_deg(), 90.0);
}

TEST(ArrayGeometry, OctagonMatchesPaper) {
  // "an octagon with 4.7 cm sides and an antenna at each corner" (§3).
  const auto oct = ArrayGeometry::octagon(0.047);
  EXPECT_EQ(oct.size(), 8u);
  EXPECT_EQ(oct.kind(), ArrayKind::kCircular);
  // All corners equidistant from centre; adjacent corners 4.7 cm apart.
  const double r = oct.positions()[0].norm();
  for (const auto& p : oct.positions()) EXPECT_NEAR(p.norm(), r, 1e-12);
  for (std::size_t i = 0; i < 8; ++i) {
    const double side =
        distance(oct.positions()[i], oct.positions()[(i + 1) % 8]);
    EXPECT_NEAR(side, 0.047, 1e-12);
  }
  EXPECT_EQ(oct.scan_min_deg(), 0.0);
  EXPECT_EQ(oct.scan_max_deg(), 360.0);
}

TEST(ArrayGeometry, SteeringPhaseMatchesEquation1) {
  // Two antennas at lambda/2: phase difference must be pi*sin(theta)
  // (paper Fig. 1c and Eq. 1).
  const auto two = ArrayGeometry::uniform_linear(2, kLambda / 2.0);
  for (double theta : {-60.0, -30.0, 0.0, 15.0, 45.0, 80.0}) {
    const CVec a = two.steering_vector(theta, kLambda);
    const double dphi = wrap_pi(std::arg(a[1]) - std::arg(a[0]));
    EXPECT_NEAR(dphi, kPi * std::sin(deg2rad(theta)), 1e-9) << theta;
  }
}

TEST(ArrayGeometry, SteeringUnitMagnitude) {
  const auto oct = ArrayGeometry::octagon();
  const CVec a = oct.steering_vector(123.0, kLambda);
  for (const cd& v : a) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(ArrayGeometry, BroadsideSteeringIsFlat) {
  const auto ula = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const CVec a = ula.steering_vector(0.0, kLambda);
  for (const cd& v : a) {
    EXPECT_NEAR(std::abs(v - a[0]), 0.0, 1e-12);  // all equal at broadside
  }
}

TEST(ArrayGeometry, WorldPositionsRotateAndTranslate) {
  const auto ula = ArrayGeometry::uniform_linear(2, 1.0);
  const auto world = ula.world_positions({10.0, 5.0}, 90.0);
  // Local x axis becomes world +y.
  EXPECT_NEAR(world[0].x, 10.0, 1e-12);
  EXPECT_NEAR(world[0].y, 4.5, 1e-12);
  EXPECT_NEAR(world[1].x, 10.0, 1e-12);
  EXPECT_NEAR(world[1].y, 5.5, 1e-12);
}

TEST(ArrayGeometry, BearingConversionRoundTrip) {
  const auto oct = ArrayGeometry::octagon();
  for (double world : {0.0, 45.0, 123.0, 270.0, 359.0}) {
    for (double orient : {0.0, 30.0, -45.0}) {
      const double arr = world_to_array_bearing(oct, world, orient);
      const auto back = array_to_world_bearings(oct, arr, orient);
      ASSERT_EQ(back.size(), 1u);
      EXPECT_NEAR(angular_distance_deg(back[0], world), 0.0, 1e-9);
    }
  }
}

TEST(ArrayGeometry, LinearBearingAmbiguity) {
  const auto ula = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  // A source at world azimuth 60 with orientation 0: theta = 30.
  const double theta = world_to_array_bearing(ula, 60.0, 0.0);
  EXPECT_NEAR(theta, 30.0, 1e-9);
  const auto worlds = array_to_world_bearings(ula, theta, 0.0);
  ASSERT_EQ(worlds.size(), 2u);
  EXPECT_NEAR(worlds[0], 60.0, 1e-9);   // front lobe
  EXPECT_NEAR(worlds[1], 300.0, 1e-9);  // mirrored back lobe
  // A source behind the array folds onto the front: world 300 -> 30 too.
  EXPECT_NEAR(world_to_array_bearing(ula, 300.0, 0.0), 30.0, 1e-9);
}

TEST(ArrayGeometry, RejectsBadArgs) {
  EXPECT_THROW(ArrayGeometry::uniform_linear(1, 0.05), InvalidArgument);
  EXPECT_THROW(ArrayGeometry::uniform_linear(4, 0.0), InvalidArgument);
  EXPECT_THROW(ArrayGeometry::uniform_circular(2, 0.1), InvalidArgument);
  EXPECT_THROW(ArrayGeometry::octagon(-1.0), InvalidArgument);
}

// ----------------------------------------------------------- impairments

TEST(Impairments, IdealIsNoOp) {
  const auto imp = ArrayImpairments::ideal(4);
  CVec snap{cd{1, 1}, cd{2, 0}, cd{0, 3}, cd{-1, 2}};
  const CVec before = snap;
  imp.apply(snap);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i], before[i]);
  }
}

TEST(Impairments, RandomPhasesDiffer) {
  Rng rng(1);
  const auto imp = ArrayImpairments::random(8, rng);
  // Phases should not all be equal (probability ~0).
  bool differ = false;
  for (std::size_t m = 1; m < 8; ++m) {
    if (std::abs(imp.chain(m).phase_rad - imp.chain(0).phase_rad) > 0.1) {
      differ = true;
    }
  }
  EXPECT_TRUE(differ);
  // Gains near 1.
  for (std::size_t m = 0; m < 8; ++m) {
    EXPECT_GT(imp.chain(m).gain, 0.7);
    EXPECT_LT(imp.chain(m).gain, 1.4);
  }
}

TEST(Impairments, ApplyMatrixMatchesVector) {
  Rng rng(2);
  const auto imp = ArrayImpairments::random(4, rng);
  CVec snap{cd{1, 0}, cd{0, 1}, cd{2, 2}, cd{-1, 0}};
  CMat m(4, 3);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = snap[r];
  }
  CVec v = snap;
  imp.apply(v);
  imp.apply(m);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(std::abs(m(r, c) - v[r]), 0.0, 1e-12);
    }
  }
}

// ------------------------------------------------------------ calibration

TEST(Calibration, RemovesPhaseOffsets) {
  Rng rng(3);
  const auto imp = ArrayImpairments::random(8, rng);
  const Calibrator cal;
  const CalibrationTable table = cal.run(imp, rng);
  const auto residual = table.residual_phase(imp);
  for (double r : residual) {
    EXPECT_LT(r, deg2rad(1.0));  // sub-degree residual at 30 dB SNR
  }
}

TEST(Calibration, CorrectedSteeringMatchesIdeal) {
  // End-to-end: an impaired snapshot of a plane wave, after calibration,
  // must equal the ideal steering vector up to a common factor.
  Rng rng(4);
  const auto geom = ArrayGeometry::uniform_linear(8, kLambda / 2.0);
  const auto imp = ArrayImpairments::random(8, rng);
  const Calibrator cal;
  const CalibrationTable table = cal.run(imp, rng);

  const CVec ideal = geom.steering_vector(25.0, kLambda);
  CVec rx = ideal;
  imp.apply(rx);
  table.apply(rx);
  // Compare phase differences relative to element 0.
  for (std::size_t m = 1; m < 8; ++m) {
    const double got = wrap_pi(std::arg(rx[m]) - std::arg(rx[0]));
    const double want = wrap_pi(std::arg(ideal[m]) - std::arg(ideal[0]));
    EXPECT_NEAR(got, want, 0.03);
  }
}

TEST(Calibration, NoisyMeasurementStillConverges) {
  Rng rng(5);
  const auto imp = ArrayImpairments::random(8, rng);
  CalibratorConfig cfg;
  cfg.snr_db = 10.0;  // much dirtier than the cabled rig
  cfg.num_samples = 16384;
  const Calibrator cal(cfg);
  const CalibrationTable table = cal.run(imp, rng);
  for (double r : table.residual_phase(imp)) {
    EXPECT_LT(r, deg2rad(2.0));
  }
}

TEST(Calibration, IdentityTable) {
  const auto table = CalibrationTable::identity(4);
  CVec snap{cd{1, 2}, cd{3, 4}, cd{5, 6}, cd{7, 8}};
  const CVec before = snap;
  table.apply(snap);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(snap[i], before[i]);
}

TEST(Calibration, SizeMismatchThrows) {
  const auto table = CalibrationTable::identity(4);
  CVec snap(3);
  EXPECT_THROW(table.apply(snap), InvalidArgument);
}

}  // namespace
}  // namespace sa
