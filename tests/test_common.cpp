// Unit tests for sa_common: angles, statistics, geometry, ring buffer, RNG.
#include <gtest/gtest.h>

#include <cmath>

#include "sa/common/angles.hpp"
#include "sa/common/constants.hpp"
#include "sa/common/error.hpp"
#include "sa/common/geometry.hpp"
#include "sa/common/ring_buffer.hpp"
#include "sa/common/rng.hpp"
#include "sa/common/stats.hpp"

namespace sa {
namespace {

// ---------------------------------------------------------------- angles

TEST(Angles, DegRadRoundTrip) {
  for (double d : {-720.0, -180.0, -37.5, 0.0, 12.25, 90.0, 359.0, 1234.0}) {
    EXPECT_NEAR(rad2deg(deg2rad(d)), d, 1e-12);
  }
}

TEST(Angles, WrapPi) {
  EXPECT_NEAR(wrap_pi(0.0), 0.0, 1e-15);
  EXPECT_NEAR(wrap_pi(kPi / 2), kPi / 2, 1e-15);
  EXPECT_NEAR(wrap_pi(kPi + 0.1), -kPi + 0.1, 1e-12);
  EXPECT_NEAR(wrap_pi(-kPi - 0.1), kPi - 0.1, 1e-12);
  EXPECT_NEAR(wrap_pi(5.0 * kTwoPi + 0.3), 0.3, 1e-9);
}

TEST(Angles, Wrap2Pi) {
  EXPECT_NEAR(wrap_2pi(-0.1), kTwoPi - 0.1, 1e-12);
  EXPECT_NEAR(wrap_2pi(kTwoPi + 0.2), 0.2, 1e-12);
  EXPECT_GE(wrap_2pi(-123.456), 0.0);
  EXPECT_LT(wrap_2pi(-123.456), kTwoPi);
}

TEST(Angles, WrapDeg) {
  EXPECT_NEAR(wrap_deg360(-10.0), 350.0, 1e-12);
  EXPECT_NEAR(wrap_deg360(725.0), 5.0, 1e-12);
  EXPECT_NEAR(wrap_deg180(190.0), -170.0, 1e-12);
  EXPECT_NEAR(wrap_deg180(-190.0), 170.0, 1e-12);
  EXPECT_NEAR(wrap_deg180(180.0), 180.0, 1e-12);
}

TEST(Angles, AngularDistanceDeg) {
  EXPECT_NEAR(angular_distance_deg(10.0, 350.0), 20.0, 1e-12);
  EXPECT_NEAR(angular_distance_deg(350.0, 10.0), 20.0, 1e-12);
  EXPECT_NEAR(angular_distance_deg(0.0, 180.0), 180.0, 1e-12);
  EXPECT_NEAR(angular_distance_deg(90.0, 90.0), 0.0, 1e-12);
}

TEST(Angles, CircularMeanHandlesWraparound) {
  const std::vector<double> degs{350.0, 10.0};
  EXPECT_NEAR(angular_distance_deg(circular_mean_deg(degs), 0.0), 0.0, 1e-9);
  const std::vector<double> degs2{170.0, 190.0};
  EXPECT_NEAR(angular_distance_deg(circular_mean_deg(degs2), 180.0), 0.0, 1e-9);
}

// ----------------------------------------------------------------- stats

TEST(Stats, MeanVarianceKnownValues) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(mean(xs), 5.0, 1e-12);
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, EmptyAndSingleton) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(variance({}), 0.0);
  EXPECT_EQ(variance({1.0}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(percentile(xs, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(percentile(xs, 100.0), 4.0, 1e-12);
  EXPECT_NEAR(percentile(xs, 50.0), 2.5, 1e-12);
  EXPECT_NEAR(median(xs), 2.5, 1e-12);
}

TEST(Stats, PercentileRejectsBadArgs) {
  EXPECT_THROW(percentile({}, 50.0), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, -1.0), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, 101.0), InvalidArgument);
}

TEST(Stats, IncompleteBetaEdges) {
  EXPECT_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
  // I_x(1,1) = x (uniform distribution CDF).
  EXPECT_NEAR(incomplete_beta(1.0, 1.0, 0.3), 0.3, 1e-10);
  // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
  const double v = incomplete_beta(2.5, 4.5, 0.4);
  EXPECT_NEAR(v, 1.0 - incomplete_beta(4.5, 2.5, 0.6), 1e-10);
}

TEST(Stats, StudentTCdfMatchesTables) {
  // CDF values from standard t tables.
  EXPECT_NEAR(student_t_cdf(0.0, 5.0), 0.5, 1e-12);
  EXPECT_NEAR(student_t_cdf(2.015, 5.0), 0.95, 1e-3);
  EXPECT_NEAR(student_t_cdf(-2.015, 5.0), 0.05, 1e-3);
  // Large df approaches the normal distribution: Phi(1.96) ~ 0.975.
  EXPECT_NEAR(student_t_cdf(1.96, 1e6), 0.975, 1e-3);
}

TEST(Stats, StudentTCriticalMatchesTables) {
  // Two-sided critical values from standard tables.
  EXPECT_NEAR(student_t_critical(0.95, 9.0), 2.262, 2e-3);
  EXPECT_NEAR(student_t_critical(0.99, 9.0), 3.250, 2e-3);
  EXPECT_NEAR(student_t_critical(0.95, 1.0), 12.706, 2e-2);
  EXPECT_NEAR(student_t_critical(0.99, 1e6), 2.576, 1e-3);
}

TEST(Stats, ConfidenceIntervalShrinksWithN) {
  Rng rng(7);
  std::vector<double> small_sample, large_sample;
  for (int i = 0; i < 10; ++i) small_sample.push_back(rng.normal(5.0, 1.0));
  for (int i = 0; i < 1000; ++i) large_sample.push_back(rng.normal(5.0, 1.0));
  const auto ci_small = confidence_interval(small_sample, 0.99);
  const auto ci_large = confidence_interval(large_sample, 0.99);
  EXPECT_GT(ci_small.half_width, ci_large.half_width);
  EXPECT_NEAR(ci_large.mean, 5.0, 0.2);
}

TEST(Stats, ConfidenceIntervalCoverage) {
  // Property: a 95% CI over repeated draws should cover the true mean
  // roughly 95% of the time.
  Rng rng(1234);
  int covered = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> xs;
    for (int i = 0; i < 12; ++i) xs.push_back(rng.normal(3.0, 2.0));
    const auto ci = confidence_interval(xs, 0.95);
    if (std::abs(ci.mean - 3.0) <= ci.half_width) ++covered;
  }
  const double coverage = static_cast<double>(covered) / trials;
  EXPECT_GT(coverage, 0.90);
  EXPECT_LT(coverage, 0.99);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Rng rng(42);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-3.0, 7.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-10);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-8);
}

TEST(Stats, EmpiricalCdfAndQuantile) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_NEAR(empirical_cdf(xs, 3.0), 0.6, 1e-12);
  EXPECT_NEAR(empirical_cdf(xs, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(empirical_cdf(xs, 10.0), 1.0, 1e-12);
  EXPECT_EQ(empirical_quantile(xs, 0.95), 5.0);
  EXPECT_EQ(empirical_quantile(xs, 0.6), 3.0);
}

// -------------------------------------------------------------- geometry

TEST(Geometry, VectorBasics) {
  const Vec2 a{3.0, 4.0};
  EXPECT_NEAR(a.norm(), 5.0, 1e-12);
  EXPECT_NEAR(a.normalized().norm(), 1.0, 1e-12);
  const Vec2 r = Vec2{1.0, 0.0}.rotated(kPi / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
  EXPECT_NEAR(dot({1.0, 2.0}, {3.0, 4.0}), 11.0, 1e-12);
  EXPECT_NEAR(cross({1.0, 0.0}, {0.0, 1.0}), 1.0, 1e-12);
}

TEST(Geometry, Bearing) {
  EXPECT_NEAR(bearing_deg({0, 0}, {1, 0}), 0.0, 1e-12);
  EXPECT_NEAR(bearing_deg({0, 0}, {0, 1}), 90.0, 1e-12);
  EXPECT_NEAR(bearing_deg({0, 0}, {-1, 0}), 180.0, 1e-12);
  EXPECT_NEAR(bearing_deg({0, 0}, {0, -1}), 270.0, 1e-12);
  EXPECT_NEAR(bearing_deg({1, 1}, {2, 2}), 45.0, 1e-12);
}

TEST(Geometry, SegmentIntersection) {
  const Segment s{{0, 0}, {2, 2}};
  const Segment t{{0, 2}, {2, 0}};
  const auto hit = intersect(s, t);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->x, 1.0, 1e-12);
  EXPECT_NEAR(hit->y, 1.0, 1e-12);

  // Disjoint segments do not intersect.
  EXPECT_FALSE(intersect({{0, 0}, {1, 0}}, {{0, 1}, {1, 1}}).has_value());
  // Parallel segments do not intersect.
  EXPECT_FALSE(intersect({{0, 0}, {1, 1}}, {{0, 1}, {1, 2}}).has_value());
  // Meeting only beyond an endpoint does not intersect.
  EXPECT_FALSE(intersect({{0, 0}, {1, 0}}, {{2, -1}, {2, 1}}).has_value());
}

TEST(Geometry, SegmentMirror) {
  const Segment wall{{0, 0}, {10, 0}};  // the x axis
  const Vec2 img = wall.mirror({3.0, 4.0});
  EXPECT_NEAR(img.x, 3.0, 1e-12);
  EXPECT_NEAR(img.y, -4.0, 1e-12);
  // Mirroring twice returns the original point.
  const Segment diag{{0, 0}, {1, 1}};
  const Vec2 p{2.0, 5.0};
  const Vec2 back = diag.mirror(diag.mirror(p));
  EXPECT_NEAR(back.x, p.x, 1e-9);
  EXPECT_NEAR(back.y, p.y, 1e-9);
}

TEST(Geometry, BlocksRespectsEndpoints) {
  const Segment wall{{0, -1}, {0, 1}};
  EXPECT_TRUE(blocks(wall, {-1, 0}, {1, 0}));
  // Path ending exactly on the wall is not "blocked".
  EXPECT_FALSE(blocks(wall, {-1, 0}, {0, 0}));
  // Path parallel to and away from the wall.
  EXPECT_FALSE(blocks(wall, {1, -1}, {1, 1}));
}

TEST(Geometry, PolygonContains) {
  const Polygon box = Polygon::rectangle({0, 0}, {10, 5});
  EXPECT_TRUE(box.contains({5, 2.5}));
  EXPECT_TRUE(box.contains({0, 0}));    // boundary counts as inside
  EXPECT_TRUE(box.contains({10, 5}));   // corner
  EXPECT_FALSE(box.contains({10.01, 2.0}));
  EXPECT_FALSE(box.contains({-0.01, 2.0}));
  EXPECT_FALSE(box.contains({5.0, 5.01}));
}

TEST(Geometry, PolygonNonConvex) {
  // L-shaped room.
  const Polygon ell({{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}});
  EXPECT_TRUE(ell.contains({1, 3}));
  EXPECT_TRUE(ell.contains({3, 1}));
  EXPECT_FALSE(ell.contains({3, 3}));  // the notch
}

TEST(Geometry, PolygonAreaCentroid) {
  const Polygon box = Polygon::rectangle({0, 0}, {4, 2});
  EXPECT_NEAR(box.area(), 8.0, 1e-12);
  const Vec2 c = box.centroid();
  EXPECT_NEAR(c.x, 2.0, 1e-12);
  EXPECT_NEAR(c.y, 1.0, 1e-12);
}

TEST(Geometry, PolygonRequiresThreeVertices) {
  EXPECT_THROW(Polygon({{0, 0}, {1, 1}}), InvalidArgument);
}

TEST(Geometry, IntersectBearingsExact) {
  // Two rays from different APs toward the point (3, 4).
  const Vec2 target{3.0, 4.0};
  const std::vector<Vec2> origins{{0.0, 0.0}, {10.0, 0.0}};
  const std::vector<double> bearings{bearing_rad(origins[0], target),
                                     bearing_rad(origins[1], target)};
  const auto p = intersect_bearings(origins, bearings);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, target.x, 1e-9);
  EXPECT_NEAR(p->y, target.y, 1e-9);
}

TEST(Geometry, IntersectBearingsOverdetermined) {
  const Vec2 target{-2.0, 7.0};
  const std::vector<Vec2> origins{{0, 0}, {10, 0}, {5, 12}, {-8, 3}};
  std::vector<double> bearings;
  for (const auto& o : origins) bearings.push_back(bearing_rad(o, target));
  const auto p = intersect_bearings(origins, bearings);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, target.x, 1e-9);
  EXPECT_NEAR(p->y, target.y, 1e-9);
}

TEST(Geometry, IntersectBearingsParallelFails) {
  const std::vector<Vec2> origins{{0, 0}, {0, 5}};
  const std::vector<double> bearings{0.0, 0.0};  // both due east
  EXPECT_FALSE(intersect_bearings(origins, bearings).has_value());
}

// ------------------------------------------------------------ ring buffer

TEST(RingBuffer, PushPopOrdering) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.empty());
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.front(), 1);
  EXPECT_EQ(rb.back(), 3);
  rb.push(4);  // overwrites 1
  EXPECT_EQ(rb.front(), 2);
  EXPECT_EQ(rb.back(), 4);
  EXPECT_EQ(rb[0], 2);
  EXPECT_EQ(rb[1], 3);
  EXPECT_EQ(rb[2], 4);
  rb.pop();
  EXPECT_EQ(rb.front(), 3);
  EXPECT_EQ(rb.size(), 2u);
}

TEST(RingBuffer, ToVectorAndClear) {
  RingBuffer<double> rb(4);
  for (int i = 0; i < 6; ++i) rb.push(i);
  const auto v = rb.to_vector();
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v.front(), 2.0);
  EXPECT_EQ(v.back(), 5.0);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_THROW(rb.front(), InvalidArgument);
}

// ------------------------------------------------------------------- rng

TEST(Rng, Deterministic) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, ForkDecorrelates) {
  Rng root(5);
  Rng child1 = root.fork();
  Rng child2 = root.fork();
  // Children seeded differently produce different streams.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (child1.uniform() != child2.uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, ComplexNormalPower) {
  Rng rng(11);
  double p = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) p += std::norm(rng.complex_normal(2.5));
  EXPECT_NEAR(p / n, 2.5, 0.1);
}

TEST(Rng, RandomPhasorUnitMagnitude) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_NEAR(std::abs(rng.random_phasor()), 1.0, 1e-12);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

}  // namespace
}  // namespace sa
