// Unit tests for sa_signature: signature construction, distance metrics,
// and the EWMA tracker with its spoof-rejection behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "sa/common/angles.hpp"
#include "sa/common/error.hpp"
#include "sa/common/rng.hpp"
#include "sa/signature/metrics.hpp"
#include "sa/signature/serialize.hpp"
#include "sa/signature/signature.hpp"
#include "sa/signature/subband.hpp"
#include "sa/signature/tracker.hpp"

namespace sa {
namespace {

/// Synthetic circular pseudospectrum with Gaussian peaks at given
/// (bearing, linear height) pairs and a small noise floor.
Pseudospectrum synth_spectrum(
    const std::vector<std::pair<double, double>>& peaks, Rng* rng = nullptr,
    double jitter = 0.0) {
  std::vector<double> angles, values;
  for (int a = 0; a < 360; ++a) {
    angles.push_back(a);
    double v = 0.01;
    for (const auto& [bearing, height] : peaks) {
      const double d = angular_distance_deg(a, bearing) / 4.0;
      v += height * std::exp(-d * d);
    }
    if (rng != nullptr && jitter > 0.0) {
      v *= std::exp(rng->normal(0.0, jitter));
    }
    values.push_back(v);
  }
  return Pseudospectrum(angles, values, true);
}

TEST(Signature, ExtractsPeaksAndDirectBearing) {
  const auto sig = AoaSignature::from_spectrum(
      synth_spectrum({{120.0, 10.0}, {200.0, 4.0}, {310.0, 2.0}}));
  ASSERT_TRUE(sig.valid());
  ASSERT_GE(sig.peaks().size(), 3u);
  EXPECT_NEAR(sig.direct_bearing_deg(), 120.0, 1.0);
  const auto refl = sig.reflection_bearings_deg();
  ASSERT_GE(refl.size(), 2u);
  EXPECT_NEAR(refl[0], 200.0, 2.0);
  EXPECT_NEAR(refl[1], 310.0, 2.0);
}

TEST(Signature, MaxPeaksRespected) {
  SignatureConfig cfg;
  cfg.max_peaks = 2;
  const auto sig = AoaSignature::from_spectrum(
      synth_spectrum({{30.0, 10.0}, {100.0, 8.0}, {170.0, 6.0}, {240.0, 4.0}}),
      cfg);
  EXPECT_EQ(sig.peaks().size(), 2u);
}

TEST(Signature, SpectrumIsNormalized) {
  const auto sig =
      AoaSignature::from_spectrum(synth_spectrum({{45.0, 123.0}}));
  EXPECT_NEAR(sig.spectrum().max_value(), 1.0, 1e-12);
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, IdenticalSignaturesScoreOne) {
  const auto a = AoaSignature::from_spectrum(
      synth_spectrum({{90.0, 10.0}, {250.0, 3.0}}));
  EXPECT_NEAR(cosine_similarity(a, a), 1.0, 1e-12);
  EXPECT_NEAR(spectral_distance_db(a, a), 0.0, 1e-12);
  EXPECT_NEAR(peak_set_distance(a, a), 0.0, 1e-12);
  EXPECT_NEAR(match_score(a, a), 1.0, 1e-12);
}

TEST(Metrics, DisjointSignaturesScoreLow) {
  const auto a = AoaSignature::from_spectrum(
      synth_spectrum({{45.0, 10.0}, {135.0, 4.0}}));
  const auto b = AoaSignature::from_spectrum(
      synth_spectrum({{225.0, 10.0}, {315.0, 4.0}}));
  EXPECT_LT(cosine_similarity(a, b), 0.2);
  EXPECT_NEAR(peak_set_distance(a, b), 1.0, 0.05);
  EXPECT_LT(match_score(a, b), 0.2);
  EXPECT_GT(spectral_distance_db(a, b), 3.0);
}

TEST(Metrics, SmallShiftDegradesGracefully) {
  const auto base = AoaSignature::from_spectrum(synth_spectrum({{100.0, 10.0}}));
  double prev_score = 1.0;
  for (double shift : {2.0, 6.0, 15.0, 40.0}) {
    const auto moved =
        AoaSignature::from_spectrum(synth_spectrum({{100.0 + shift, 10.0}}));
    const double s = match_score(base, moved);
    EXPECT_LT(s, prev_score + 1e-9);
    prev_score = s;
  }
  EXPECT_LT(prev_score, 0.3);  // 40 degrees away: clearly different
}

TEST(Metrics, JitterToleratedAsSameClient) {
  Rng rng(1);
  const auto a = AoaSignature::from_spectrum(
      synth_spectrum({{60.0, 10.0}, {190.0, 3.0}}, &rng, 0.05));
  const auto b = AoaSignature::from_spectrum(
      synth_spectrum({{60.0, 10.0}, {190.0, 3.0}}, &rng, 0.05));
  EXPECT_GT(match_score(a, b), 0.9);
}

TEST(Metrics, IncompatibleGridsThrow) {
  const auto a = AoaSignature::from_spectrum(synth_spectrum({{60.0, 10.0}}));
  std::vector<double> angles, values;
  for (int i = -90; i <= 90; ++i) {
    angles.push_back(i);
    values.push_back(1.0);
  }
  const auto linear =
      AoaSignature::from_spectrum(Pseudospectrum(angles, values, false));
  EXPECT_THROW(cosine_similarity(a, linear), InvalidArgument);
}

// ---------------------------------------------------------------- tracker

TEST(Tracker, TrainsThenMatches) {
  Rng rng(2);
  TrackerConfig cfg;
  cfg.training_packets = 5;
  SignatureTracker tracker(cfg);
  for (int i = 0; i < 5; ++i) {
    const auto d = tracker.observe(AoaSignature::from_spectrum(
        synth_spectrum({{80.0, 10.0}, {210.0, 3.0}}, &rng, 0.05)));
    EXPECT_EQ(d.verdict, TrackerVerdict::kTraining);
  }
  EXPECT_TRUE(tracker.trained());
  const auto d = tracker.observe(AoaSignature::from_spectrum(
      synth_spectrum({{80.0, 10.0}, {210.0, 3.0}}, &rng, 0.05)));
  EXPECT_EQ(d.verdict, TrackerVerdict::kMatch);
  EXPECT_GT(d.score, 0.8);
}

TEST(Tracker, FlagsAttackerFromElsewhere) {
  Rng rng(3);
  SignatureTracker tracker;
  for (int i = 0; i < 5; ++i) {
    tracker.observe(AoaSignature::from_spectrum(
        synth_spectrum({{80.0, 10.0}, {210.0, 3.0}}, &rng, 0.05)));
  }
  const auto d = tracker.observe(AoaSignature::from_spectrum(
      synth_spectrum({{290.0, 10.0}, {30.0, 3.0}}, &rng, 0.05)));
  EXPECT_EQ(d.verdict, TrackerVerdict::kMismatch);
  EXPECT_LT(d.score, 0.5);
  EXPECT_EQ(tracker.mismatches(), 1u);
}

TEST(Tracker, MismatchDoesNotPoisonReference) {
  Rng rng(4);
  SignatureTracker tracker;
  for (int i = 0; i < 5; ++i) {
    tracker.observe(AoaSignature::from_spectrum(
        synth_spectrum({{80.0, 10.0}}, &rng, 0.03)));
  }
  const auto ref_before = tracker.reference();
  ASSERT_TRUE(ref_before.has_value());
  // Attacker hammers the tracker with a different signature.
  for (int i = 0; i < 50; ++i) {
    const auto d = tracker.observe(
        AoaSignature::from_spectrum(synth_spectrum({{290.0, 10.0}}, &rng, 0.03)));
    EXPECT_EQ(d.verdict, TrackerVerdict::kMismatch);
  }
  const auto ref_after = tracker.reference();
  ASSERT_TRUE(ref_after.has_value());
  // Reference unchanged: direct bearing still 80.
  EXPECT_NEAR(ref_after->direct_bearing_deg(), 80.0, 2.0);
  // And the legitimate client still matches.
  const auto d = tracker.observe(AoaSignature::from_spectrum(
      synth_spectrum({{80.0, 10.0}}, &rng, 0.03)));
  EXPECT_EQ(d.verdict, TrackerVerdict::kMatch);
}

TEST(Tracker, AdaptsToSlowDrift) {
  // Environment drift: reflection peak slides 20 degrees over many
  // packets; EWMA tracking keeps accepting.
  Rng rng(5);
  TrackerConfig cfg;
  cfg.ewma_alpha = 0.2;
  SignatureTracker tracker(cfg);
  for (int i = 0; i < 5; ++i) {
    tracker.observe(AoaSignature::from_spectrum(
        synth_spectrum({{80.0, 10.0}, {200.0, 4.0}}, &rng, 0.02)));
  }
  int mismatches = 0;
  for (int step = 0; step <= 40; ++step) {
    const double drift = 0.5 * step;  // reflection slides to 220
    const auto d = tracker.observe(AoaSignature::from_spectrum(
        synth_spectrum({{80.0, 10.0}, {200.0 + drift, 4.0}}, &rng, 0.02)));
    if (d.verdict == TrackerVerdict::kMismatch) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0);
}

TEST(Tracker, ResetRetrains) {
  Rng rng(6);
  SignatureTracker tracker;
  for (int i = 0; i < 5; ++i) {
    tracker.observe(
        AoaSignature::from_spectrum(synth_spectrum({{80.0, 10.0}}, &rng, 0.03)));
  }
  EXPECT_TRUE(tracker.trained());
  tracker.reset();
  EXPECT_FALSE(tracker.trained());
  EXPECT_FALSE(tracker.reference().has_value());
  const auto d = tracker.observe(
      AoaSignature::from_spectrum(synth_spectrum({{10.0, 10.0}}, &rng, 0.03)));
  EXPECT_EQ(d.verdict, TrackerVerdict::kTraining);
}

TEST(Tracker, ConfigValidation) {
  TrackerConfig bad;
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(SignatureTracker{bad}, InvalidArgument);
  bad = {};
  bad.match_threshold = 1.5;
  EXPECT_THROW(SignatureTracker{bad}, InvalidArgument);
  bad = {};
  bad.training_packets = 0;
  EXPECT_THROW(SignatureTracker{bad}, InvalidArgument);
}


TEST(Serialize, RoundTripPreservesSignature) {
  const auto sig = AoaSignature::from_spectrum(
      synth_spectrum({{80.0, 10.0}, {210.0, 3.0}, {15.0, 1.5}}));
  const ByteStream bytes = serialize_signature(sig);
  const auto back = deserialize_signature(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_NEAR(match_score(sig, *back), 1.0, 1e-12);
  EXPECT_EQ(back->spectrum().size(), sig.spectrum().size());
  EXPECT_EQ(back->spectrum().wraps(), sig.spectrum().wraps());
  EXPECT_NEAR(back->direct_bearing_deg(), sig.direct_bearing_deg(), 1e-9);
}

TEST(Serialize, LinearSpectrumRoundTrip) {
  std::vector<double> angles, values;
  for (int a = -90; a <= 90; ++a) {
    angles.push_back(a);
    const double x = (a - 12.0) / 5.0;
    values.push_back(std::exp(-x * x) + 0.01);
  }
  const auto sig = AoaSignature::from_spectrum(
      Pseudospectrum(angles, values, false));
  const auto back = deserialize_signature(serialize_signature(sig));
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->spectrum().wraps());
  EXPECT_NEAR(back->spectrum().angles_deg().front(), -90.0, 1e-12);
}

TEST(Serialize, RejectsCorruptedInput) {
  const auto sig = AoaSignature::from_spectrum(synth_spectrum({{80.0, 10.0}}));
  ByteStream bytes = serialize_signature(sig);
  // Truncation.
  ByteStream cut(bytes.begin(), bytes.begin() + 20);
  EXPECT_FALSE(deserialize_signature(cut).has_value());
  // Bad magic.
  ByteStream bad = bytes;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(deserialize_signature(bad).has_value());
  // Trailing garbage.
  ByteStream extra = bytes;
  extra.push_back(0);
  EXPECT_FALSE(deserialize_signature(extra).has_value());
  // Empty.
  EXPECT_FALSE(deserialize_signature({}).has_value());
}

TEST(Serialize, RejectsNonFiniteGridWithoutThrowing) {
  const auto sig = AoaSignature::from_spectrum(synth_spectrum({{80.0, 10.0}}));
  const ByteStream bytes = serialize_signature(sig);
  // Grid start at offset 12, step at offset 20 (after magic/wraps/n).
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  for (const auto& [offset, v] : {std::pair<std::size_t, double>{20, nan},
                                  {20, inf},
                                  {12, nan},
                                  {12, inf}}) {
    ByteStream bad = bytes;
    std::memcpy(&bad[offset], &v, sizeof(v));
    // Malformed input must yield nullopt, never an exception.
    EXPECT_FALSE(deserialize_signature(bad).has_value()) << offset;
    EXPECT_FALSE(deserialize_subband_signature(bad).has_value()) << offset;
  }
}

TEST(Serialize, RejectsNegativeValues) {
  const auto sig = AoaSignature::from_spectrum(synth_spectrum({{80.0, 10.0}}));
  ByteStream bytes = serialize_signature(sig);
  // Flip the sign bit of the first value (offset: 4+4+4+8+8 = 28, last
  // byte of the double holds the sign bit).
  bytes[28 + 7] |= 0x80;
  EXPECT_FALSE(deserialize_signature(bytes).has_value());
}

// ----------------------------------------------------- subband signatures

/// Independent little-endian writers, so the golden-bytes test does not
/// reuse the serializer it is checking.
void golden_u32(ByteStream& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void golden_f64(ByteStream& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((bits >> (8 * i)) & 0xFF));
  }
}

TEST(SubbandSerialize, SingleBandIsWireCompatibleWithLegacyFormat) {
  // A tiny signature with exactly known normalized values.
  const auto sig = AoaSignature::from_spectrum(
      Pseudospectrum({10.0, 11.0, 12.0, 13.0}, {1.0, 2.0, 4.0, 2.0}, false));

  // Golden bytes of the legacy "SAA1" format, written by hand: magic,
  // wrap flag, grid size, grid start, grid step, normalized values.
  ByteStream golden;
  golden_u32(golden, 0x53414131u);  // "SAA1" little-endian
  golden_u32(golden, 0u);           // wraps = false
  golden_u32(golden, 4u);           // grid size
  golden_f64(golden, 10.0);         // grid start
  golden_f64(golden, 1.0);          // grid step
  for (double v : {0.25, 0.5, 1.0, 0.5}) golden_f64(golden, v);

  // K=1 wideband output must be byte-for-byte the legacy format.
  EXPECT_EQ(serialize_signature(SubbandSignature::single(sig)), golden);
  EXPECT_EQ(serialize_signature(sig), golden);

  // And both parsers accept it.
  ASSERT_TRUE(deserialize_signature(golden).has_value());
  const auto sub = deserialize_subband_signature(golden);
  ASSERT_TRUE(sub.has_value());
  EXPECT_EQ(sub->num_bands(), 1u);
  EXPECT_NEAR(match_score(sub->band(0), sig), 1.0, 1e-12);
}

TEST(SubbandSerialize, MultiBandRoundTrip) {
  std::vector<AoaSignature> bands;
  bands.push_back(AoaSignature::from_spectrum(
      synth_spectrum({{80.0, 10.0}, {210.0, 3.0}})));
  bands.push_back(AoaSignature::from_spectrum(
      synth_spectrum({{83.0, 10.0}, {205.0, 4.0}})));
  bands.push_back(AoaSignature::from_spectrum(
      synth_spectrum({{86.0, 9.0}, {200.0, 5.0}})));
  const SubbandSignature sig(std::move(bands));

  const ByteStream bytes = serialize_signature(sig);
  const auto back = deserialize_subband_signature(bytes);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->num_bands(), 3u);
  EXPECT_NEAR(match_score(sig, *back), 1.0, 1e-12);
  for (std::size_t b = 0; b < 3; ++b) {
    EXPECT_NEAR(match_score(sig.band(b), back->band(b)), 1.0, 1e-12) << b;
  }
  // The legacy single-band parser must not accept the container format.
  EXPECT_FALSE(deserialize_signature(bytes).has_value());
}

TEST(SubbandSerialize, RejectsMalformedContainer) {
  std::vector<AoaSignature> bands;
  bands.push_back(AoaSignature::from_spectrum(synth_spectrum({{80.0, 10.0}})));
  bands.push_back(AoaSignature::from_spectrum(synth_spectrum({{90.0, 10.0}})));
  const ByteStream bytes = serialize_signature(SubbandSignature(std::move(bands)));

  // Truncation mid-band.
  ByteStream cut(bytes.begin(), bytes.begin() + bytes.size() / 2);
  EXPECT_FALSE(deserialize_subband_signature(cut).has_value());
  // Trailing garbage.
  ByteStream extra = bytes;
  extra.push_back(0);
  EXPECT_FALSE(deserialize_subband_signature(extra).has_value());
  // Zero-band container.
  ByteStream zero;
  golden_u32(zero, 0x53414132u);
  golden_u32(zero, 0u);
  EXPECT_FALSE(deserialize_subband_signature(zero).has_value());
  // Band count beyond the parser's bound.
  ByteStream huge;
  golden_u32(huge, 0x53414132u);
  golden_u32(huge, 100000u);
  EXPECT_FALSE(deserialize_subband_signature(huge).has_value());
}

TEST(SubbandMetrics, MeanOverBandsAndKOneEquivalence) {
  const auto a = AoaSignature::from_spectrum(
      synth_spectrum({{90.0, 10.0}, {250.0, 3.0}}));
  const auto b = AoaSignature::from_spectrum(
      synth_spectrum({{180.0, 10.0}, {40.0, 3.0}}));

  // K=1: the subband metrics are numerically the narrowband metrics.
  const auto sa1 = SubbandSignature::single(a);
  const auto sb1 = SubbandSignature::single(b);
  EXPECT_EQ(match_score(sa1, sb1), match_score(a, b));
  EXPECT_EQ(cosine_similarity(sa1, sb1), cosine_similarity(a, b));
  EXPECT_EQ(peak_set_distance(sa1, sb1), peak_set_distance(a, b));
  EXPECT_EQ(spectral_distance_db(sa1, sb1), spectral_distance_db(a, b));

  // Two bands, one matching and one disjoint: the score is the mean.
  const SubbandSignature mixed_a({a, a});
  const SubbandSignature mixed_b({a, b});
  EXPECT_NEAR(match_score(mixed_a, mixed_b),
              (match_score(a, a) + match_score(a, b)) / 2.0, 1e-12);

  // Band-count mismatch is a precondition violation.
  EXPECT_THROW(match_score(sa1, mixed_b), InvalidArgument);
}

TEST(SubbandTracker, TracksPerBandAndFlagsBandCountChange) {
  Rng rng(7);
  TrackerConfig cfg;
  cfg.training_packets = 4;
  SignatureTracker tracker(cfg);
  auto two_band = [&](double b0, double b1) {
    return SubbandSignature({AoaSignature::from_spectrum(
                                 synth_spectrum({{b0, 10.0}}, &rng, 0.03)),
                             AoaSignature::from_spectrum(
                                 synth_spectrum({{b1, 10.0}}, &rng, 0.03))});
  };
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tracker.observe(two_band(80.0, 84.0)).verdict,
              TrackerVerdict::kTraining);
  }
  ASSERT_TRUE(tracker.trained());
  const auto ref = tracker.reference_bands();
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref->num_bands(), 2u);

  // Same client: both bands match.
  EXPECT_EQ(tracker.observe(two_band(80.0, 84.0)).verdict,
            TrackerVerdict::kMatch);
  // Attacker matching only one band scores the mean — below threshold.
  const auto d = tracker.observe(two_band(80.0, 290.0));
  EXPECT_EQ(d.verdict, TrackerVerdict::kMismatch);
  EXPECT_LT(d.score, cfg.match_threshold);
  // A band-count change after training can never match.
  const auto narrow = tracker.observe(SubbandSignature::single(
      AoaSignature::from_spectrum(synth_spectrum({{80.0, 10.0}}, &rng, 0.03))));
  EXPECT_EQ(narrow.verdict, TrackerVerdict::kMismatch);
  EXPECT_EQ(narrow.score, 0.0);
}

TEST(SubbandSignature, FuseAveragesBands) {
  const auto a =
      AoaSignature::from_spectrum(synth_spectrum({{100.0, 10.0}}));
  const auto b =
      AoaSignature::from_spectrum(synth_spectrum({{140.0, 10.0}}));
  const SubbandSignature sub({a, b});
  const auto fused = sub.fuse();
  ASSERT_TRUE(fused.valid());
  // Both peaks survive fusion at roughly half the normalized height.
  EXPECT_GT(fused.spectrum().value_at(100.0), 0.4);
  EXPECT_GT(fused.spectrum().value_at(140.0), 0.4);
  // Single-band fuse is the band itself.
  const auto same = SubbandSignature::single(a).fuse();
  EXPECT_EQ(same.spectrum().values(), a.spectrum().values());
}

TEST(SubbandSignature, WeightedFuseMatchesHandComputedMean) {
  // Two bands with distinct peaks, weighted 3:1 — the fused spectrum is
  // the hand-computed weighted mean of the normalized band spectra.
  const auto a = AoaSignature::from_spectrum(synth_spectrum({{100.0, 10.0}}));
  const auto b = AoaSignature::from_spectrum(synth_spectrum({{140.0, 10.0}}));
  const SubbandSignature sub({a, b});
  const auto fused = sub.fuse(SignatureConfig{}, {3.0, 1.0});

  std::vector<double> expected(a.spectrum().size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expected[i] = (3.0 * a.spectrum().values()[i] +
                   1.0 * b.spectrum().values()[i]) / 4.0;
  }
  const auto reference = AoaSignature::from_spectrum(
      Pseudospectrum(a.spectrum().angles_deg(), expected,
                     a.spectrum().wraps()));
  ASSERT_EQ(fused.spectrum().values().size(),
            reference.spectrum().values().size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(fused.spectrum().values()[i],
                     reference.spectrum().values()[i]);
  }
  // The dominant band's peak dominates the fusion.
  EXPECT_GT(fused.spectrum().value_at(100.0), fused.spectrum().value_at(140.0));
}

TEST(SubbandSignature, AllWeightOnOneBandReproducesThatBand) {
  const auto a = AoaSignature::from_spectrum(synth_spectrum({{100.0, 10.0}}));
  const auto b = AoaSignature::from_spectrum(synth_spectrum({{140.0, 10.0}}));
  const SubbandSignature sub({a, b});
  const auto fused = sub.fuse(SignatureConfig{}, {1.0, 0.0});
  EXPECT_EQ(fused.spectrum().values(), a.spectrum().values());
  EXPECT_DOUBLE_EQ(fused.direct_bearing_deg(), a.direct_bearing_deg());
}

TEST(SubbandSignature, UniformWeightsMatchUnweightedFuse) {
  const auto a = AoaSignature::from_spectrum(synth_spectrum({{100.0, 10.0}}));
  const auto b = AoaSignature::from_spectrum(synth_spectrum({{140.0, 6.0}}));
  const SubbandSignature sub({a, b});
  // Equal weights reduce to exactly the uniform mean (byte-identical —
  // the kUniform default must stay the original arithmetic).
  EXPECT_EQ(sub.fuse(SignatureConfig{}, {1.0, 1.0}).spectrum().values(),
            sub.fuse().spectrum().values());
}

TEST(SubbandSignature, WeightedFuseSingleBandIgnoresWeight) {
  const auto a = AoaSignature::from_spectrum(synth_spectrum({{100.0, 10.0}}));
  const auto single = SubbandSignature::single(a);
  // Documented contract: one band comes back unchanged regardless of
  // its weight — even zero.
  EXPECT_EQ(single.fuse(SignatureConfig{}, {0.0}).spectrum().values(),
            a.spectrum().values());
}

TEST(SubbandSignature, WeightedFuseRejectsBadWeights) {
  const auto a = AoaSignature::from_spectrum(synth_spectrum({{100.0, 10.0}}));
  const auto b = AoaSignature::from_spectrum(synth_spectrum({{140.0, 10.0}}));
  const SubbandSignature sub({a, b});
  EXPECT_THROW(sub.fuse(SignatureConfig{}, {1.0}), InvalidArgument);
  EXPECT_THROW(sub.fuse(SignatureConfig{}, {1.0, -0.5}), InvalidArgument);
  EXPECT_THROW(sub.fuse(SignatureConfig{}, {0.0, 0.0}), InvalidArgument);
}

}  // namespace
}  // namespace sa

// ---------------------------------------------------------- serialization
// (Appended suite: persistence for AP restart / handover.)
