// Unit tests for sa_signature: signature construction, distance metrics,
// and the EWMA tracker with its spoof-rejection behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "sa/common/angles.hpp"
#include "sa/common/error.hpp"
#include "sa/common/rng.hpp"
#include "sa/signature/metrics.hpp"
#include "sa/signature/serialize.hpp"
#include "sa/signature/signature.hpp"
#include "sa/signature/tracker.hpp"

namespace sa {
namespace {

/// Synthetic circular pseudospectrum with Gaussian peaks at given
/// (bearing, linear height) pairs and a small noise floor.
Pseudospectrum synth_spectrum(
    const std::vector<std::pair<double, double>>& peaks, Rng* rng = nullptr,
    double jitter = 0.0) {
  std::vector<double> angles, values;
  for (int a = 0; a < 360; ++a) {
    angles.push_back(a);
    double v = 0.01;
    for (const auto& [bearing, height] : peaks) {
      const double d = angular_distance_deg(a, bearing) / 4.0;
      v += height * std::exp(-d * d);
    }
    if (rng != nullptr && jitter > 0.0) {
      v *= std::exp(rng->normal(0.0, jitter));
    }
    values.push_back(v);
  }
  return Pseudospectrum(angles, values, true);
}

TEST(Signature, ExtractsPeaksAndDirectBearing) {
  const auto sig = AoaSignature::from_spectrum(
      synth_spectrum({{120.0, 10.0}, {200.0, 4.0}, {310.0, 2.0}}));
  ASSERT_TRUE(sig.valid());
  ASSERT_GE(sig.peaks().size(), 3u);
  EXPECT_NEAR(sig.direct_bearing_deg(), 120.0, 1.0);
  const auto refl = sig.reflection_bearings_deg();
  ASSERT_GE(refl.size(), 2u);
  EXPECT_NEAR(refl[0], 200.0, 2.0);
  EXPECT_NEAR(refl[1], 310.0, 2.0);
}

TEST(Signature, MaxPeaksRespected) {
  SignatureConfig cfg;
  cfg.max_peaks = 2;
  const auto sig = AoaSignature::from_spectrum(
      synth_spectrum({{30.0, 10.0}, {100.0, 8.0}, {170.0, 6.0}, {240.0, 4.0}}),
      cfg);
  EXPECT_EQ(sig.peaks().size(), 2u);
}

TEST(Signature, SpectrumIsNormalized) {
  const auto sig =
      AoaSignature::from_spectrum(synth_spectrum({{45.0, 123.0}}));
  EXPECT_NEAR(sig.spectrum().max_value(), 1.0, 1e-12);
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, IdenticalSignaturesScoreOne) {
  const auto a = AoaSignature::from_spectrum(
      synth_spectrum({{90.0, 10.0}, {250.0, 3.0}}));
  EXPECT_NEAR(cosine_similarity(a, a), 1.0, 1e-12);
  EXPECT_NEAR(spectral_distance_db(a, a), 0.0, 1e-12);
  EXPECT_NEAR(peak_set_distance(a, a), 0.0, 1e-12);
  EXPECT_NEAR(match_score(a, a), 1.0, 1e-12);
}

TEST(Metrics, DisjointSignaturesScoreLow) {
  const auto a = AoaSignature::from_spectrum(
      synth_spectrum({{45.0, 10.0}, {135.0, 4.0}}));
  const auto b = AoaSignature::from_spectrum(
      synth_spectrum({{225.0, 10.0}, {315.0, 4.0}}));
  EXPECT_LT(cosine_similarity(a, b), 0.2);
  EXPECT_NEAR(peak_set_distance(a, b), 1.0, 0.05);
  EXPECT_LT(match_score(a, b), 0.2);
  EXPECT_GT(spectral_distance_db(a, b), 3.0);
}

TEST(Metrics, SmallShiftDegradesGracefully) {
  const auto base = AoaSignature::from_spectrum(synth_spectrum({{100.0, 10.0}}));
  double prev_score = 1.0;
  for (double shift : {2.0, 6.0, 15.0, 40.0}) {
    const auto moved =
        AoaSignature::from_spectrum(synth_spectrum({{100.0 + shift, 10.0}}));
    const double s = match_score(base, moved);
    EXPECT_LT(s, prev_score + 1e-9);
    prev_score = s;
  }
  EXPECT_LT(prev_score, 0.3);  // 40 degrees away: clearly different
}

TEST(Metrics, JitterToleratedAsSameClient) {
  Rng rng(1);
  const auto a = AoaSignature::from_spectrum(
      synth_spectrum({{60.0, 10.0}, {190.0, 3.0}}, &rng, 0.05));
  const auto b = AoaSignature::from_spectrum(
      synth_spectrum({{60.0, 10.0}, {190.0, 3.0}}, &rng, 0.05));
  EXPECT_GT(match_score(a, b), 0.9);
}

TEST(Metrics, IncompatibleGridsThrow) {
  const auto a = AoaSignature::from_spectrum(synth_spectrum({{60.0, 10.0}}));
  std::vector<double> angles, values;
  for (int i = -90; i <= 90; ++i) {
    angles.push_back(i);
    values.push_back(1.0);
  }
  const auto linear =
      AoaSignature::from_spectrum(Pseudospectrum(angles, values, false));
  EXPECT_THROW(cosine_similarity(a, linear), InvalidArgument);
}

// ---------------------------------------------------------------- tracker

TEST(Tracker, TrainsThenMatches) {
  Rng rng(2);
  TrackerConfig cfg;
  cfg.training_packets = 5;
  SignatureTracker tracker(cfg);
  for (int i = 0; i < 5; ++i) {
    const auto d = tracker.observe(AoaSignature::from_spectrum(
        synth_spectrum({{80.0, 10.0}, {210.0, 3.0}}, &rng, 0.05)));
    EXPECT_EQ(d.verdict, TrackerVerdict::kTraining);
  }
  EXPECT_TRUE(tracker.trained());
  const auto d = tracker.observe(AoaSignature::from_spectrum(
      synth_spectrum({{80.0, 10.0}, {210.0, 3.0}}, &rng, 0.05)));
  EXPECT_EQ(d.verdict, TrackerVerdict::kMatch);
  EXPECT_GT(d.score, 0.8);
}

TEST(Tracker, FlagsAttackerFromElsewhere) {
  Rng rng(3);
  SignatureTracker tracker;
  for (int i = 0; i < 5; ++i) {
    tracker.observe(AoaSignature::from_spectrum(
        synth_spectrum({{80.0, 10.0}, {210.0, 3.0}}, &rng, 0.05)));
  }
  const auto d = tracker.observe(AoaSignature::from_spectrum(
      synth_spectrum({{290.0, 10.0}, {30.0, 3.0}}, &rng, 0.05)));
  EXPECT_EQ(d.verdict, TrackerVerdict::kMismatch);
  EXPECT_LT(d.score, 0.5);
  EXPECT_EQ(tracker.mismatches(), 1u);
}

TEST(Tracker, MismatchDoesNotPoisonReference) {
  Rng rng(4);
  SignatureTracker tracker;
  for (int i = 0; i < 5; ++i) {
    tracker.observe(AoaSignature::from_spectrum(
        synth_spectrum({{80.0, 10.0}}, &rng, 0.03)));
  }
  const auto ref_before = tracker.reference();
  ASSERT_TRUE(ref_before.has_value());
  // Attacker hammers the tracker with a different signature.
  for (int i = 0; i < 50; ++i) {
    const auto d = tracker.observe(
        AoaSignature::from_spectrum(synth_spectrum({{290.0, 10.0}}, &rng, 0.03)));
    EXPECT_EQ(d.verdict, TrackerVerdict::kMismatch);
  }
  const auto ref_after = tracker.reference();
  ASSERT_TRUE(ref_after.has_value());
  // Reference unchanged: direct bearing still 80.
  EXPECT_NEAR(ref_after->direct_bearing_deg(), 80.0, 2.0);
  // And the legitimate client still matches.
  const auto d = tracker.observe(AoaSignature::from_spectrum(
      synth_spectrum({{80.0, 10.0}}, &rng, 0.03)));
  EXPECT_EQ(d.verdict, TrackerVerdict::kMatch);
}

TEST(Tracker, AdaptsToSlowDrift) {
  // Environment drift: reflection peak slides 20 degrees over many
  // packets; EWMA tracking keeps accepting.
  Rng rng(5);
  TrackerConfig cfg;
  cfg.ewma_alpha = 0.2;
  SignatureTracker tracker(cfg);
  for (int i = 0; i < 5; ++i) {
    tracker.observe(AoaSignature::from_spectrum(
        synth_spectrum({{80.0, 10.0}, {200.0, 4.0}}, &rng, 0.02)));
  }
  int mismatches = 0;
  for (int step = 0; step <= 40; ++step) {
    const double drift = 0.5 * step;  // reflection slides to 220
    const auto d = tracker.observe(AoaSignature::from_spectrum(
        synth_spectrum({{80.0, 10.0}, {200.0 + drift, 4.0}}, &rng, 0.02)));
    if (d.verdict == TrackerVerdict::kMismatch) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0);
}

TEST(Tracker, ResetRetrains) {
  Rng rng(6);
  SignatureTracker tracker;
  for (int i = 0; i < 5; ++i) {
    tracker.observe(
        AoaSignature::from_spectrum(synth_spectrum({{80.0, 10.0}}, &rng, 0.03)));
  }
  EXPECT_TRUE(tracker.trained());
  tracker.reset();
  EXPECT_FALSE(tracker.trained());
  EXPECT_FALSE(tracker.reference().has_value());
  const auto d = tracker.observe(
      AoaSignature::from_spectrum(synth_spectrum({{10.0, 10.0}}, &rng, 0.03)));
  EXPECT_EQ(d.verdict, TrackerVerdict::kTraining);
}

TEST(Tracker, ConfigValidation) {
  TrackerConfig bad;
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(SignatureTracker{bad}, InvalidArgument);
  bad = {};
  bad.match_threshold = 1.5;
  EXPECT_THROW(SignatureTracker{bad}, InvalidArgument);
  bad = {};
  bad.training_packets = 0;
  EXPECT_THROW(SignatureTracker{bad}, InvalidArgument);
}


TEST(Serialize, RoundTripPreservesSignature) {
  const auto sig = AoaSignature::from_spectrum(
      synth_spectrum({{80.0, 10.0}, {210.0, 3.0}, {15.0, 1.5}}));
  const ByteStream bytes = serialize_signature(sig);
  const auto back = deserialize_signature(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_NEAR(match_score(sig, *back), 1.0, 1e-12);
  EXPECT_EQ(back->spectrum().size(), sig.spectrum().size());
  EXPECT_EQ(back->spectrum().wraps(), sig.spectrum().wraps());
  EXPECT_NEAR(back->direct_bearing_deg(), sig.direct_bearing_deg(), 1e-9);
}

TEST(Serialize, LinearSpectrumRoundTrip) {
  std::vector<double> angles, values;
  for (int a = -90; a <= 90; ++a) {
    angles.push_back(a);
    const double x = (a - 12.0) / 5.0;
    values.push_back(std::exp(-x * x) + 0.01);
  }
  const auto sig = AoaSignature::from_spectrum(
      Pseudospectrum(angles, values, false));
  const auto back = deserialize_signature(serialize_signature(sig));
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->spectrum().wraps());
  EXPECT_NEAR(back->spectrum().angles_deg().front(), -90.0, 1e-12);
}

TEST(Serialize, RejectsCorruptedInput) {
  const auto sig = AoaSignature::from_spectrum(synth_spectrum({{80.0, 10.0}}));
  ByteStream bytes = serialize_signature(sig);
  // Truncation.
  ByteStream cut(bytes.begin(), bytes.begin() + 20);
  EXPECT_FALSE(deserialize_signature(cut).has_value());
  // Bad magic.
  ByteStream bad = bytes;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(deserialize_signature(bad).has_value());
  // Trailing garbage.
  ByteStream extra = bytes;
  extra.push_back(0);
  EXPECT_FALSE(deserialize_signature(extra).has_value());
  // Empty.
  EXPECT_FALSE(deserialize_signature({}).has_value());
}

TEST(Serialize, RejectsNegativeValues) {
  const auto sig = AoaSignature::from_spectrum(synth_spectrum({{80.0, 10.0}}));
  ByteStream bytes = serialize_signature(sig);
  // Flip the sign bit of the first value (offset: 4+4+4+8+8 = 28, last
  // byte of the double holds the sign bit).
  bytes[28 + 7] |= 0x80;
  EXPECT_FALSE(deserialize_signature(bytes).has_value());
}

}  // namespace
}  // namespace sa

// ---------------------------------------------------------- serialization
// (Appended suite: persistence for AP restart / handover.)
