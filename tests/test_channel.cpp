// Unit tests for sa_channel: floorplans, image-method ray tracing,
// temporal fading, and the multi-antenna sample-level simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "sa/array/geometry.hpp"
#include "sa/channel/fading.hpp"
#include "sa/channel/floorplan.hpp"
#include "sa/channel/raytracer.hpp"
#include "sa/channel/simulator.hpp"
#include "sa/common/angles.hpp"
#include "sa/common/constants.hpp"
#include "sa/common/error.hpp"
#include "sa/common/rng.hpp"
#include "sa/dsp/units.hpp"

namespace sa {
namespace {

constexpr double kLambda = kSpeedOfLight / 2.4e9;

// ------------------------------------------------------------- floorplan

TEST(Floorplan, PenetrationLoss) {
  Floorplan plan;
  plan.add_wall({Segment{{5, -10}, {5, 10}}, 12.0, 0.5, "divider"});
  EXPECT_NEAR(plan.penetration_loss_db({0, 0}, {10, 0}), 12.0, 1e-12);
  EXPECT_NEAR(plan.penetration_loss_db({0, 0}, {4, 0}), 0.0, 1e-12);
  EXPECT_TRUE(plan.line_of_sight({0, 0}, {4, 0}));
  EXPECT_FALSE(plan.line_of_sight({0, 0}, {10, 0}));
}

TEST(Floorplan, RoomAddsFourWalls) {
  Floorplan plan;
  plan.add_room({0, 0}, {10, 8});
  EXPECT_EQ(plan.size(), 4u);
  // Crossing the room boundary from inside to outside hits one wall.
  EXPECT_NEAR(plan.penetration_loss_db({5, 4}, {15, 4}), 12.0, 1e-12);
  // Crossing the whole room from outside hits two walls.
  EXPECT_NEAR(plan.penetration_loss_db({-5, 4}, {15, 4}), 24.0, 1e-12);
}

TEST(Floorplan, RejectsBadWalls) {
  Floorplan plan;
  EXPECT_THROW(plan.add_wall({Segment{{0, 0}, {0, 0}}, 10.0, 0.5, "w"}),
               InvalidArgument);
  EXPECT_THROW(plan.add_wall({Segment{{0, 0}, {1, 0}}, 10.0, 1.5, "w"}),
               InvalidArgument);
  EXPECT_THROW(plan.add_wall({Segment{{0, 0}, {1, 0}}, -1.0, 0.5, "w"}),
               InvalidArgument);
}

// ------------------------------------------------------------- raytracer

TEST(RayTracer, FreeSpaceDirectPathOnly) {
  const Floorplan empty;
  const RayTracer tracer;
  const auto paths = tracer.trace({0, 0}, {10, 0}, empty);
  ASSERT_EQ(paths.size(), 1u);
  const auto& p = paths[0];
  EXPECT_EQ(p.num_reflections, 0);
  EXPECT_NEAR(p.length_m, 10.0, 1e-12);
  EXPECT_NEAR(std::abs(p.gain), 0.1, 1e-9);  // ref 1 m / 10 m
  EXPECT_NEAR(p.arrival_bearing_deg, 180.0, 1e-9);  // arrives from the west
  EXPECT_NEAR(p.departure_bearing_deg, 0.0, 1e-9);
  EXPECT_NEAR(p.delay_s, 10.0 / kSpeedOfLight, 1e-18);
}

TEST(RayTracer, PhaseMatchesPathLength) {
  const Floorplan empty;
  const RayTracer tracer;
  const auto paths = tracer.trace({0, 0}, {7.5, 0}, empty);
  ASSERT_EQ(paths.size(), 1u);
  const double expect_phase = wrap_pi(-kTwoPi * 7.5 / kLambda);
  EXPECT_NEAR(wrap_pi(std::arg(paths[0].gain)), expect_phase, 1e-6);
}

TEST(RayTracer, SingleWallReflection) {
  // Wall along y = 5, TX and RX below it: one direct + one bounce.
  Floorplan plan;
  plan.add_wall({Segment{{-20, 5}, {20, 5}}, 10.0, 0.8, "ceiling"});
  RayTracerConfig cfg;
  cfg.max_reflections = 1;
  const RayTracer tracer(cfg);
  const auto paths = tracer.trace({0, 0}, {10, 0}, plan);
  ASSERT_EQ(paths.size(), 2u);
  // Strongest first: the direct path.
  EXPECT_EQ(paths[0].num_reflections, 0);
  EXPECT_EQ(paths[1].num_reflections, 1);
  // Image geometry: bounce at (5, 5); path length 2*sqrt(25+25).
  const auto& r = paths[1];
  ASSERT_EQ(r.points.size(), 3u);
  EXPECT_NEAR(r.points[1].x, 5.0, 1e-9);
  EXPECT_NEAR(r.points[1].y, 5.0, 1e-9);
  EXPECT_NEAR(r.length_m, 2.0 * std::hypot(5.0, 5.0), 1e-9);
  // Amplitude: reflectivity * ref / length.
  EXPECT_NEAR(std::abs(r.gain), 0.8 / r.length_m, 1e-9);
  // Arrival bearing: from RX (10,0) toward bounce (5,5) = 135 deg.
  EXPECT_NEAR(r.arrival_bearing_deg, 135.0, 1e-9);
}

TEST(RayTracer, ReflectionRequiresSpecularPointOnWall) {
  // Short wall that cannot host the specular point.
  Floorplan plan;
  plan.add_wall({Segment{{100, 5}, {101, 5}}, 10.0, 0.9, "far"});
  RayTracerConfig cfg;
  cfg.max_reflections = 1;
  const RayTracer tracer(cfg);
  const auto paths = tracer.trace({0, 0}, {10, 0}, plan);
  ASSERT_EQ(paths.size(), 1u);  // direct only
  EXPECT_EQ(paths[0].num_reflections, 0);
}

TEST(RayTracer, BlockedDirectPathAttenuated) {
  Floorplan plan;
  plan.add_wall({Segment{{5, -5}, {5, 5}}, 20.0, 0.0, "blocker"});
  const RayTracer tracer;
  const auto paths = tracer.trace({0, 0}, {10, 0}, plan);
  ASSERT_GE(paths.size(), 1u);
  // 20 dB penetration = 10x amplitude reduction vs free space.
  EXPECT_NEAR(std::abs(paths[0].gain), 0.1 / 10.0, 1e-9);
}

TEST(RayTracer, OpaquePillarDiffractsAround) {
  // A small opaque obstacle does not black out the shadow: knife-edge
  // diffraction around its corners leaks attenuated energy at the direct
  // bearing (how the paper's "completely blocked" client 11 still shows
  // a near-true peak).
  Floorplan plan;
  plan.add_obstacle(Polygon::rectangle({4, -1}, {6, 1}), 200.0, 0.7, "pillar");
  RayTracerConfig cfg;
  cfg.max_reflections = 0;
  const RayTracer tracer(cfg);
  const auto paths = tracer.trace({0, 0}, {10, 0}, plan);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].num_reflections, 0);
  EXPECT_NEAR(paths[0].arrival_bearing_deg, 180.0, 1e-9);
  // Much weaker than free space (0.1), far stronger than through-200dB.
  EXPECT_LT(std::abs(paths[0].gain), 0.1 / 4.0);
  EXPECT_GT(std::abs(paths[0].gain), 0.1 / 100.0);
}

TEST(RayTracer, RoomScaleOpaqueWallStillKills) {
  // Diffraction only applies to obstacle-scale walls; an 8 m RF-opaque
  // wall mid-path blacks the path out entirely.
  Floorplan plan;
  plan.add_wall({Segment{{5, -4}, {5, 4}}, 200.0, 0.0, "vault"});
  RayTracerConfig cfg;
  cfg.max_reflections = 0;
  const RayTracer tracer(cfg);
  EXPECT_TRUE(tracer.trace({0, 0}, {10, 0}, plan).empty());
}

TEST(RayTracer, SecondOrderReflectionFound) {
  // Two parallel walls: corridor; second-order zig-zag path exists.
  Floorplan plan;
  plan.add_wall({Segment{{-50, 5}, {50, 5}}, 10.0, 0.9, "top"});
  plan.add_wall({Segment{{-50, -5}, {50, -5}}, 10.0, 0.9, "bottom"});
  RayTracerConfig cfg;
  cfg.max_reflections = 2;
  const RayTracer tracer(cfg);
  const auto paths = tracer.trace({0, 0}, {20, 0}, plan);
  int n2 = 0;
  for (const auto& p : paths) {
    if (p.num_reflections == 2) {
      ++n2;
      EXPECT_EQ(p.points.size(), 4u);
      EXPECT_GT(p.length_m, 20.0);
    }
  }
  EXPECT_GE(n2, 2);  // top-bottom and bottom-top orders
}

TEST(RayTracer, PathsSortedByStrength) {
  Floorplan plan;
  plan.add_room({-15, -10}, {25, 10}, 12.0, 0.7);
  const RayTracer tracer;
  const auto paths = tracer.trace({0, 0}, {10, 3}, plan);
  ASSERT_GE(paths.size(), 3u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(std::abs(paths[i - 1].gain), std::abs(paths[i].gain));
  }
}

TEST(RayTracer, ArrivalBearingsDifferAcrossPaths) {
  // The security premise: multipath arrives from distinct bearings.
  Floorplan plan;
  plan.add_room({-15, -10}, {25, 10}, 12.0, 0.7);
  const RayTracer tracer;
  const auto paths = tracer.trace({-5, -4}, {10, 3}, plan);
  ASSERT_GE(paths.size(), 3u);
  // Most reflection paths must arrive from bearings well away from the
  // direct path (high-order corner paths can occasionally come close).
  std::size_t distinct = 0;
  for (std::size_t i = 1; i < paths.size(); ++i) {
    if (angular_distance_deg(paths[0].arrival_bearing_deg,
                             paths[i].arrival_bearing_deg) > 5.0) {
      ++distinct;
    }
  }
  EXPECT_GE(distinct, 2u);
}

// ---------------------------------------------------------------- fading

std::vector<PropagationPath> two_paths() {
  Floorplan plan;
  plan.add_wall({Segment{{-20, 5}, {20, 5}}, 10.0, 0.8, "w"});
  RayTracerConfig cfg;
  cfg.max_reflections = 1;
  return RayTracer(cfg).trace({0, 0}, {10, 0}, plan);
}

TEST(Fading, FactorsNearUnityMean) {
  Rng rng(1);
  const auto paths = two_paths();
  PathFading fading(paths, {}, rng);
  // Average many realizations of the direct-path factor: mean ~ 1.
  cd acc{0.0, 0.0};
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    fading.advance(10.0);  // >> coherence: independent draws
    acc += fading.factor(0);
  }
  acc /= static_cast<double>(n);
  EXPECT_NEAR(acc.real(), 1.0, 0.02);
  EXPECT_NEAR(acc.imag(), 0.0, 0.02);
}

TEST(Fading, ReflectionsVaryMoreThanDirect) {
  Rng rng(2);
  const auto paths = two_paths();
  ASSERT_EQ(paths[0].num_reflections, 0);
  PathFading fading(paths, {}, rng);
  double var_direct = 0.0, var_refl = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    fading.advance(3600.0);
    var_direct += std::norm(fading.factor(0) - cd{1.0, 0.0});
    var_refl += std::norm(fading.factor(1) - cd{1.0, 0.0});
  }
  EXPECT_GT(var_refl, 4.0 * var_direct);
}

TEST(Fading, ShortStepsAreCorrelated) {
  Rng rng(3);
  const auto paths = two_paths();
  FadingConfig cfg;
  cfg.fast_coherence_s = 0.125;
  PathFading fading(paths, cfg, rng);
  const cd before = fading.factor(1);
  fading.advance(0.001);  // 1 ms << 125 ms coherence
  const cd after = fading.factor(1);
  EXPECT_LT(std::abs(after - before), 0.1);
}

TEST(Fading, EmpiricalCoherenceMatchesConfig) {
  Rng rng(4);
  // Scalar AR(1) stream sampled at 1 ms; coherence target 25 ms (the
  // paper's walking-speed figure). The empirical 0.5-autocorrelation lag
  // of an OU process is tau * ln 2.
  FadingConfig cfg;
  cfg.fast_coherence_s = 0.025;
  cfg.reflection_fast_sigma = 1.0;
  cfg.reflection_slow_sigma = 0.0;
  const auto paths = two_paths();
  PathFading fading(paths, cfg, rng);
  std::vector<cd> series;
  const double dt = 0.001;
  for (int i = 0; i < 20000; ++i) {
    fading.advance(dt);
    series.push_back(fading.factor(1));
  }
  const double tau_meas = empirical_coherence_time(series, dt);
  const double tau_expect = 0.025 * std::log(2.0);
  EXPECT_GT(tau_meas, tau_expect * 0.5);
  EXPECT_LT(tau_meas, tau_expect * 2.0);
}

// -------------------------------------------------------------- simulator

TEST(Simulator, ChannelVectorSinglePathIsSteering) {
  const Floorplan empty;
  const RayTracer tracer;
  const auto geom = ArrayGeometry::octagon();
  const ArrayPlacement placement{geom, {0, 0}, 0.0};
  // Far-field source due north-east.
  const auto paths = tracer.trace({30.0, 30.0}, {0, 0}, empty);
  ASSERT_EQ(paths.size(), 1u);
  const ChannelSimulator sim;
  const CVec h = sim.channel_vector(paths, placement);
  // h should equal gain * steering(45 deg) since arrival azimuth is 45.
  const CVec a = geom.steering_vector(45.0, kLambda);
  for (std::size_t m = 1; m < h.size(); ++m) {
    const double got = wrap_pi(std::arg(h[m]) - std::arg(h[0]));
    const double want = wrap_pi(std::arg(a[m]) - std::arg(a[0]));
    EXPECT_NEAR(got, want, 0.01);
  }
}

TEST(Simulator, PropagateAppliesDelayAndGain) {
  const Floorplan empty;
  const RayTracer tracer;
  const auto geom = ArrayGeometry::uniform_linear(2, kLambda / 2.0);
  const ArrayPlacement placement{geom, {0, 0}, 0.0};
  const auto paths = tracer.trace({0.0, 15.0}, {0, 0}, empty);
  ChannelConfig cfg;
  cfg.noise_power = 0.0;
  const ChannelSimulator sim(cfg);
  Rng rng(5);
  CVec tx(64, cd{1.0, 0.0});
  const CMat rx = sim.propagate(tx, paths, placement, rng);
  EXPECT_EQ(rx.rows(), 2u);
  EXPECT_GE(rx.cols(), tx.size());
  // Delay = 15 m / c = 50 ns = 1 sample at 20 MHz: first sample ~ 0,
  // second carries energy.
  EXPECT_LT(std::abs(rx(0, 0)), 1e-3);
  EXPECT_GT(std::abs(rx(0, 2)), 1e-3);
  // Steady-state amplitude = path gain (1/15).
  EXPECT_NEAR(std::abs(rx(0, 10)), 1.0 / 15.0, 1e-3);
}

TEST(Simulator, BroadsideSourceInPhaseAcrossUla) {
  // Source on the array broadside: all elements see the same phase.
  const Floorplan empty;
  const RayTracer tracer;
  const auto geom = ArrayGeometry::uniform_linear(4, kLambda / 2.0);
  const ArrayPlacement placement{geom, {0, 0}, 0.0};
  const auto paths = tracer.trace({0.0, 40.0}, {0, 0}, empty);
  const ChannelSimulator sim({2.4e9, 20e6, 0.0, 0.0});
  const CVec h = sim.channel_vector(paths, placement);
  for (std::size_t m = 1; m < 4; ++m) {
    EXPECT_NEAR(wrap_pi(std::arg(h[m]) - std::arg(h[0])), 0.0, 1e-6);
  }
}

TEST(Simulator, NoiseFloorRespected) {
  const auto geom = ArrayGeometry::uniform_linear(2, kLambda / 2.0);
  const ArrayPlacement placement{geom, {0, 0}, 0.0};
  ChannelConfig cfg;
  cfg.noise_power = 0.01;
  const ChannelSimulator sim(cfg);
  Rng rng(6);
  const CVec tx(256, cd{0.0, 0.0});  // silence: output is pure noise
  const CMat rx = sim.propagate(tx, {}, placement, rng);
  double p = 0.0;
  for (std::size_t t = 0; t < rx.cols(); ++t) p += std::norm(rx(0, t));
  EXPECT_NEAR(p / static_cast<double>(rx.cols()), 0.01, 0.003);
}

TEST(Simulator, MixIntoAddsInterference) {
  const Floorplan empty;
  const RayTracer tracer;
  const auto geom = ArrayGeometry::uniform_linear(2, kLambda / 2.0);
  const ArrayPlacement placement{geom, {0, 0}, 0.0};
  const auto paths = tracer.trace({10.0, 0.0}, {0, 0}, empty);
  ChannelConfig cfg;
  cfg.noise_power = 0.0;
  const ChannelSimulator sim(cfg);
  Rng rng(7);
  const CVec tx(32, cd{1.0, 0.0});
  CMat rx = sim.propagate(tx, paths, placement, rng);
  const double before = std::abs(rx(0, 16));
  sim.mix_into(rx, tx, paths, placement, 0, rng);
  EXPECT_NEAR(std::abs(rx(0, 16)), 2.0 * before, 1e-9);
}

}  // namespace
}  // namespace sa
