// capture_tool: inspect, validate, diff, corrupt and replay SACP
// captures (sa/capture). The replay command is the record/replay
// contract made executable: rebuild the recorded deployment from the
// capture header, feed the recorded chunk stream back through a live
// EngineSession at any thread count, and require the decision stream to
// come out byte-identical to the recorded one. The truncate/mutate/fuzz
// commands are the adversarial side: they produce damaged captures and
// assert the parser and the replay path reject them cleanly instead of
// crashing — run the fuzz command under ASan for the real guarantee.
//
// Usage:
//   capture_tool inspect  FILE
//   capture_tool validate FILE...
//   capture_tool diff     A B
//   capture_tool truncate IN OUT BYTES     # keep the first BYTES bytes
//   capture_tool mutate   IN OUT SEED [OPS]
//   capture_tool mutate-nan IN OUT         # poison the first IQ sample
//   capture_tool replay   FILE [--threads N] [--out PATH] [--expect-reject]
//   capture_tool replay   FILE --fleet [--threads N]   # version-2 fleet
//                         captures: rebuild the whole fleet from the
//                         header, re-drive chunks, handoffs and drains in
//                         file order, byte-compare every site's decision
//                         track
//   capture_tool fuzz     FILE [--seed S] [--count N] [--ops K]
//                              [--no-replay] [--policies CSV]
//                              [--max-tracked N] [--fleet]
//   capture_tool fuzz-wire [--seed S] [--count N] [--ops K]
//                         # blind byte-flips of every FleetWire frame
//                         # kind (kClientState, kTransportData, kAck)
//                         # PLUS structure-aware hostiles: valid SAFW
//                         # framing around truncated nested SAT1
//                         # blocks, max-length tracker claims, bad
//                         # checksums, reserved flags, and inner
//                         # messages truncated at every prefix — decode
//                         # must reject cleanly, never UB
//   capture_tool chaos    [--sites N] [--clients C] [--moves M]
//                         [--seeds CSV] [--plan SPEC]... [--drivers D]
//                         # in-process fault-matrix: roam C clients
//                         # across N sites under each (plan, seed) cell
//                         # and require convergence — every client ends
//                         # homed at its final site with an exact
//                         # generation, no malformed import accepted.
//                         # --plan is repeatable ("none" = perfect
//                         # channel); --drivers D issues handoffs from
//                         # D concurrent threads (distinct MACs).
// Exit status: 0 = success / equal / all replays clean; 1 = mismatch or
// invalid input; 2 = usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "sa/capture/reader.hpp"
#include "sa/capture/replay.hpp"
#include "sa/capture/writer.hpp"
#include "sa/common/error.hpp"
#include "sa/engine/session.hpp"
#include "sa/fleet/coordinator.hpp"
#include "sa/fleet/replay.hpp"
#include "sa/fleet/transport.hpp"
#include "sa/fleet/wire.hpp"
#include "sa/secure/policy.hpp"
#include "sa/signature/serialize.hpp"
#include "sa/sim/deployment.hpp"

using namespace sa;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: capture_tool inspect  FILE\n"
               "       capture_tool validate FILE...\n"
               "       capture_tool diff     A B\n"
               "       capture_tool truncate IN OUT BYTES\n"
               "       capture_tool mutate   IN OUT SEED [OPS]\n"
               "       capture_tool mutate-nan IN OUT\n"
               "       capture_tool replay   FILE [--threads N] [--out PATH]\n"
               "                                  [--expect-reject] [--fleet]\n"
               "       capture_tool fuzz     FILE [--seed S] [--count N]\n"
               "                                  [--ops K] [--no-replay]\n"
               "                                  [--policies CSV]\n"
               "                                  [--max-tracked N] [--fleet]\n"
               "       capture_tool fuzz-wire [--seed S] [--count N] [--ops K]\n"
               "       capture_tool chaos    [--sites N] [--clients C]\n"
               "                             [--moves M] [--seeds CSV]\n"
               "                             [--plan SPEC]... [--drivers D]\n");
  std::exit(2);
}

ByteStream read_file_or_die(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "capture_tool: cannot open '%s'\n", path.c_str());
    std::exit(1);
  }
  ByteStream data;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  std::fclose(f);
  return data;
}

void write_file_or_die(const std::string& path, const ByteStream& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr ||
      std::fwrite(data.data(), 1, data.size(), f) != data.size()) {
    std::fprintf(stderr, "capture_tool: cannot write '%s'\n", path.c_str());
    if (f != nullptr) std::fclose(f);
    std::exit(1);
  }
  std::fclose(f);
}

int cmd_inspect(const std::string& path) {
  CaptureReader reader(read_file_or_die(path));
  if (!reader.header()) {
    std::fprintf(stderr, "%s: malformed SACP header\n", path.c_str());
    return 1;
  }
  const CaptureHeader& h = *reader.header();
  std::printf("%s: SACP v%u, %u AP(s), seed %llu\n", path.c_str(), h.version,
              h.num_aps, static_cast<unsigned long long>(h.seed));
  for (const auto& [key, val] : h.metadata) {
    std::printf("  %-16s %s\n", key.c_str(), val.c_str());
  }

  std::vector<std::uint64_t> chunks_per_ap(h.num_aps, 0);
  std::vector<std::uint64_t> samples_per_ap(h.num_aps, 0);
  std::uint64_t decisions = 0, accepted = 0, drains = 0, assocs = 0;
  std::uint64_t transports = 0, cold_starts = 0, transport_attempts = 0;
  std::map<std::uint32_t, std::uint64_t> decisions_per_site;
  std::optional<EndRecord> end;
  for (;;) {
    auto rec = reader.next();
    if (!rec) break;
    switch (rec->type) {
      case RecordType::kChunk:
        if (rec->chunk->ap < h.num_aps) {
          ++chunks_per_ap[rec->chunk->ap];
          samples_per_ap[rec->chunk->ap] += rec->chunk->samples.cols();
        }
        break;
      case RecordType::kDecision:
        ++decisions;
        if (rec->decision->accepted) ++accepted;
        break;
      case RecordType::kSiteDecision:
        ++decisions;
        ++decisions_per_site[rec->site_decision->site];
        if (rec->site_decision->decision.accepted) ++accepted;
        break;
      case RecordType::kAssoc: ++assocs; break;
      case RecordType::kTransport:
        ++transports;
        if (rec->transport->outcome ==
            static_cast<std::uint32_t>(HandoffOutcome::kColdStart)) {
          ++cold_starts;
        }
        transport_attempts += rec->transport->attempts;
        break;
      case RecordType::kDrain: ++drains; break;
      case RecordType::kEnd: end = rec->end; break;
    }
  }
  for (std::uint32_t ap = 0; ap < h.num_aps; ++ap) {
    std::printf("  ap %u: %llu chunk(s), %llu samples\n", ap,
                static_cast<unsigned long long>(chunks_per_ap[ap]),
                static_cast<unsigned long long>(samples_per_ap[ap]));
  }
  std::printf("  decisions: %llu (%llu accepted, %llu dropped)\n",
              static_cast<unsigned long long>(decisions),
              static_cast<unsigned long long>(accepted),
              static_cast<unsigned long long>(decisions - accepted));
  for (const auto& [site, n] : decisions_per_site) {
    std::printf("  site %u: %llu decision(s)\n", site,
                static_cast<unsigned long long>(n));
  }
  if (assocs > 0) {
    std::printf("  assocs: %llu\n", static_cast<unsigned long long>(assocs));
  }
  if (transports > 0) {
    std::printf("  transports: %llu (%llu cold start(s), %llu attempt(s))\n",
                static_cast<unsigned long long>(transports),
                static_cast<unsigned long long>(cold_starts),
                static_cast<unsigned long long>(transport_attempts));
  }
  std::printf("  drains: %llu\n", static_cast<unsigned long long>(drains));
  if (!reader.error().empty()) {
    std::printf("  PARSE ERROR: %s\n", reader.error().c_str());
    return 1;
  }
  if (!end) {
    std::printf("  TRUNCATED: no end record\n");
    return 1;
  }
  std::printf("  end record: %llu chunks, %llu decisions, %llu drains\n",
              static_cast<unsigned long long>(end->chunks),
              static_cast<unsigned long long>(end->decisions),
              static_cast<unsigned long long>(end->drains));
  return 0;
}

int cmd_validate(const std::vector<std::string>& paths) {
  int status = 0;
  for (const auto& path : paths) {
    CaptureReader reader(read_file_or_die(path));
    const ValidationReport report = reader.validate();
    if (report.ok) {
      std::printf(
          "%s: OK (%llu chunks, %llu decisions, %llu drains", path.c_str(),
          static_cast<unsigned long long>(report.chunks),
          static_cast<unsigned long long>(report.decisions),
          static_cast<unsigned long long>(report.drains));
      if (report.transports > 0) {
        std::printf(", %llu transports",
                    static_cast<unsigned long long>(report.transports));
      }
      std::printf(")\n");
    } else {
      std::printf("%s: INVALID at record %zu: %s\n", path.c_str(),
                  report.record_index, report.error.c_str());
      status = 1;
    }
  }
  return status;
}

int cmd_diff(const std::string& a, const std::string& b) {
  CaptureReader ra(read_file_or_die(a));
  CaptureReader rb(read_file_or_die(b));
  const CaptureDiff d = diff_captures(ra, rb);
  if (d.equal) {
    std::printf("captures are logically identical\n");
    return 0;
  }
  std::printf("captures differ: %s\n", d.detail.c_str());
  return 1;
}

int cmd_truncate(const std::string& in, const std::string& out,
                 std::size_t bytes) {
  ByteStream data = read_file_or_die(in);
  if (bytes < data.size()) data.resize(bytes);
  write_file_or_die(out, data);
  std::printf("%s: kept %zu byte(s) -> %s\n", in.c_str(), data.size(),
              out.c_str());
  return 0;
}

int cmd_mutate(const std::string& in, const std::string& out,
               std::uint64_t seed, std::size_t ops) {
  const ByteStream data = read_file_or_die(in);
  const ByteStream mutated = mutate_capture(data, seed, ops);
  write_file_or_die(out, mutated);
  std::printf("%s: %zu mutation op(s), seed %llu -> %s (%zu bytes)\n",
              in.c_str(), ops, static_cast<unsigned long long>(seed),
              out.c_str(), mutated.size());
  return 0;
}

/// Poison the first IQ sample of the first chunk record with a quiet
/// NaN, leaving the rest of the capture untouched. SACP carries no
/// checksums, so the result still parses and validates — only the
/// engine's submit()-time finiteness gate can catch it. This is the
/// reproducible recipe behind corpus/rejects/nan_iq.sacp.
int cmd_mutate_nan(const std::string& in, const std::string& out) {
  ByteStream data = read_file_or_die(in);
  auto u32_at = [&](std::size_t off) -> std::optional<std::uint32_t> {
    if (off + 4 > data.size()) return std::nullopt;
    return static_cast<std::uint32_t>(data[off]) |
           (static_cast<std::uint32_t>(data[off + 1]) << 8) |
           (static_cast<std::uint32_t>(data[off + 2]) << 16) |
           (static_cast<std::uint32_t>(data[off + 3]) << 24);
  };
  // Header: magic u32 | version u32 | payload_len u32 | payload.
  const auto magic = u32_at(0);
  const auto header_len = u32_at(8);
  if (!magic || *magic != kSacpMagic || !header_len) {
    std::fprintf(stderr, "%s: malformed SACP header\n", in.c_str());
    return 1;
  }
  std::size_t off = 12 + *header_len;
  // Records: payload_len u32 | type u32 | payload. A chunk payload is
  // ap u32 | round u64 | base u64 | rows u32 | cols u32 | f64 re/im...
  // so the first sample's real part sits at payload offset 28.
  while (off + 8 <= data.size()) {
    const std::uint32_t len = *u32_at(off);
    const std::uint32_t type = *u32_at(off + 4);
    const std::size_t payload = off + 8;
    if (payload + len > data.size()) break;
    if (type == static_cast<std::uint32_t>(RecordType::kChunk) &&
        len >= 28 + sizeof(double)) {
      const std::uint64_t qnan = 0x7ff8000000000000ull;
      for (std::size_t i = 0; i < 8; ++i) {
        data[payload + 28 + i] = static_cast<std::uint8_t>(qnan >> (8 * i));
      }
      write_file_or_die(out, data);
      std::printf("%s: first IQ sample -> NaN at byte %zu -> %s\n", in.c_str(),
                  payload + 28, out.c_str());
      return 0;
    }
    off = payload + len;
  }
  std::fprintf(stderr, "%s: no chunk record with samples\n", in.c_str());
  return 1;
}

struct ReplayOutcome {
  bool ran = false;          ///< the replay itself ran to the end
  bool identical = false;    ///< decision track matched byte-for-byte
  std::string detail;
};

/// Replay `reader`'s chunk stream through a fresh deployment built from
/// its own header and compare the decision streams byte-for-byte.
ReplayOutcome replay_and_compare(const CaptureReader& reader,
                                 std::size_t threads,
                                 const std::string& out_path) {
  ReplayOutcome outcome;
  if (!reader.header()) {
    outcome.detail = "malformed SACP header";
    return outcome;
  }
  const auto spec = deployment_from_header(*reader.header());
  if (!spec) {
    outcome.detail = "header does not describe a replayable deployment";
    return outcome;
  }
  BuiltDeployment dep = build_deployment(*spec, /*with_sim=*/false);
  EngineConfig ecfg = dep.engine;
  ecfg.num_threads = threads;

  std::optional<CaptureWriter> writer;
  if (!out_path.empty()) {
    writer.emplace(out_path, *reader.header());
    ecfg.capture = &*writer;
  }

  const std::vector<ByteStream> recorded = reader.decision_payloads();
  std::size_t matched = 0;
  std::string mismatch;
  SessionConfig scfg;
  scfg.engine = ecfg;
  {
    EngineSession session(scfg, dep.ap_ptrs, [&](const EngineDecision& d) {
      const ByteStream bytes =
          encode_decision(d.sequence, d.absolute_start, d.decision);
      if (matched < recorded.size() && bytes == recorded[matched]) {
        ++matched;
      } else if (mismatch.empty()) {
        mismatch = "decision " + std::to_string(d.sequence) +
                   (matched < recorded.size() ? " differs from the recording"
                                              : " has no recorded counterpart");
      }
    });
    ReplaySource source{CaptureReader(reader.bytes())};
    const ReplayResult result = source.replay_into(session);
    if (!result.ok) {
      outcome.detail = "replay failed: " + result.error;
      if (writer) writer->close();
      session.close();
      return outcome;
    }
    if (writer) writer->close();
    session.close();
  }
  outcome.ran = true;
  if (!mismatch.empty()) {
    outcome.detail = mismatch;
  } else if (matched != recorded.size()) {
    outcome.detail = "replay emitted " + std::to_string(matched) + " of " +
                     std::to_string(recorded.size()) + " recorded decisions";
  } else {
    outcome.identical = true;
    outcome.detail =
        std::to_string(matched) + " decision(s) byte-identical";
  }
  return outcome;
}

int cmd_replay(const std::string& path, std::size_t threads,
               const std::string& out_path, bool expect_reject) {
  CaptureReader reader(read_file_or_die(path));
  if (expect_reject) {
    // Inverted contract for hostile captures (e.g. corpus/rejects/):
    // success means the engine's ingress validation refused the stream.
    try {
      const ReplayOutcome outcome =
          replay_and_compare(reader, threads, out_path);
      std::printf("%s: NOT rejected (%s)\n", path.c_str(),
                  outcome.detail.c_str());
      return 1;
    } catch (const InvalidArgument& e) {
      std::printf("%s: rejected as expected: %s\n", path.c_str(), e.what());
      return 0;
    }
  }
  const ReplayOutcome outcome = replay_and_compare(reader, threads, out_path);
  std::printf("%s: %s\n", path.c_str(), outcome.detail.c_str());
  if (!out_path.empty() && outcome.ran) {
    std::printf("replay capture written to %s\n", out_path.c_str());
  }
  return outcome.identical ? 0 : 1;
}

int cmd_replay_fleet(const std::string& path, std::size_t threads) {
  const FleetReplayResult result = replay_fleet_capture(path, threads);
  if (!result.ok) {
    std::printf("%s: fleet replay failed: %s\n", path.c_str(),
                result.error.c_str());
    return 1;
  }
  std::printf(
      "%s: %zu site(s), %llu chunk(s), %llu handoff(s), %llu drain(s), "
      "%llu decision(s) byte-identical\n",
      path.c_str(), result.sites,
      static_cast<unsigned long long>(result.chunks_submitted),
      static_cast<unsigned long long>(result.assocs_replayed),
      static_cast<unsigned long long>(result.drains_run),
      static_cast<unsigned long long>(result.decisions_checked));
  return 0;
}

/// Fleet-capture fuzz: every mutant goes through the parser and the
/// full fleet replay path, which must come back with ok/error — the
/// loop only fails by crashing (run it under ASan/UBSan for the real
/// guarantee).
int cmd_fuzz_fleet(const std::string& path, std::uint64_t seed,
                   std::size_t count, std::size_t ops, bool with_replay) {
  const ByteStream original = read_file_or_die(path);
  std::size_t parsed_ok = 0, rejected = 0, replays = 0, replay_errors = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const ByteStream mutant = mutate_capture(original, seed + i, ops);
    CaptureReader reader{ByteStream(mutant)};
    if (reader.validate().ok) {
      ++parsed_ok;
    } else {
      ++rejected;
    }
    if (!with_replay) continue;
    const FleetReplayResult result =
        replay_fleet_capture(ByteStream(mutant), /*threads_per_site=*/1);
    if (result.ok) {
      ++replays;
    } else {
      ++replay_errors;
    }
  }
  std::printf(
      "%s: %zu fleet mutant(s), seed %llu, %zu op(s) each: %zu still valid, "
      "%zu rejected by the parser",
      path.c_str(), count, static_cast<unsigned long long>(seed), ops,
      parsed_ok, rejected);
  if (with_replay) {
    std::printf(", %zu replayed, %zu rejected in replay", replays,
                replay_errors);
  }
  std::printf(" — no crashes\n");
  return 0;
}

/// FNV-1a-32 over a byte range — the kTransportData payload checksum
/// (part of the wire contract, so the hostile-frame builder below can
/// produce envelopes the decoder has no framing excuse to reject).
std::uint32_t wire_fnv1a32(const std::uint8_t* data, std::size_t len) {
  std::uint32_t h = 0x811c9dc5u;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x01000193u;
  }
  return h;
}

/// A raw SAFW frame with a caller-controlled payload — the hostile
/// framing builder the real encoders refuse to be.
ByteStream raw_frame(std::uint32_t type, const ByteStream& payload) {
  ByteStream out;
  put_u32(out, kFleetWireMagic);
  put_u32(out, kFleetWireVersion);
  put_u32(out, type);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

/// A kTransportData envelope with a valid checksum around arbitrary
/// cargo: the framing is flawless, so only the nested decode can save
/// the receiver.
ByteStream hostile_envelope(std::uint64_t seq, std::uint32_t flags,
                            const ByteStream& inner) {
  ByteStream payload;
  put_u64(payload, seq);
  put_u32(payload, flags);
  put_u32(payload, static_cast<std::uint32_t>(inner.size()));
  payload.insert(payload.end(), inner.begin(), inner.end());
  put_u32(payload, wire_fnv1a32(payload.data(), payload.size()));
  return raw_frame(static_cast<std::uint32_t>(FleetWireType::kTransportData),
                   payload);
}

/// FleetWire decode fuzz, two regimes over every frame kind:
///
///  1. Blind byte-flips: mutate well-formed kClientState /
///     kTransportData / kAck messages and require each decoder (and
///     peek_type) to return nullopt or a valid message, never UB.
///  2. Structure-aware hostiles: frames whose OUTER framing is
///     flawless — valid magic/version/type/length, correct envelope
///     checksum — but whose interior is malicious: a nested SAT1
///     tracker block truncated mid-structure, a tracker length field
///     claiming the 64 MiB maximum over a tiny buffer, the inner
///     message truncated at every prefix, reserved flag bits, a
///     max-length rate residue with trailing garbage. These bypass
///     every cheap outer check, so they pin down the deep validation;
///     each one MUST be rejected, and an unexpected accept fails the
///     run.
int cmd_fuzz_wire(std::uint64_t seed, std::size_t count, std::size_t ops) {
  FleetClientState msg;
  msg.mac = MacAddress::from_index(42);
  msg.generation = 7;
  msg.source_site = 1;
  msg.dest_site = 2;
  TrackerSnapshot snap;
  snap.trained = true;
  snap.training_seen = 12;
  snap.observations = 40;
  snap.mismatches = 3;
  TrackerSnapshot::Band band;
  for (int i = 0; i < 64; ++i) {
    band.angles_deg.push_back(-180.0 + 360.0 * i / 64.0);
    band.values.push_back(0.25 + 0.01 * i);
  }
  band.wraps = true;
  snap.bands.push_back(band);
  msg.state.tracker = std::move(snap);
  msg.state.acl_allowed = true;
  msg.state.rate_in_window = 5;
  const ByteStream original = encode_client_state(msg);
  FleetTransportData data_msg;
  data_msg.seq = 9;
  data_msg.retransmit = true;
  data_msg.inner = original;
  const ByteStream original_data = encode_transport_data(data_msg);
  FleetAck ack_msg;
  ack_msg.seq = 9;
  ack_msg.duplicate = true;
  const ByteStream original_ack = encode_ack(ack_msg);
  if (!decode_client_state(original) ||
      !decode_transport_data(original_data) || !decode_ack(original_ack)) {
    std::printf("fuzz-wire: round-trip of a seed message failed\n");
    return 1;
  }

  // Regime 1: blind byte-flips of each frame kind.
  std::size_t decoded = 0, rejected = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const ByteStream m1 = mutate_capture(original, seed + i, ops);
    const ByteStream m2 = mutate_capture(original_data, seed + i, ops);
    const ByteStream m3 = mutate_capture(original_ack, seed + i, ops);
    (void)peek_type(m1);
    (void)peek_type(m2);
    (void)peek_type(m3);
    decoded += decode_client_state(m1).has_value();
    decoded += decode_transport_data(m2).has_value();
    decoded += decode_ack(m3).has_value();
    rejected += !decode_client_state(m1).has_value();
    rejected += !decode_transport_data(m2).has_value();
    rejected += !decode_ack(m3).has_value();
  }

  // Regime 2: structure-aware hostiles — each must be rejected.
  std::vector<std::pair<std::string, bool>> hostiles;  // (name, rejected)
  auto expect_reject_state = [&](const std::string& name,
                                 const ByteStream& bytes) {
    hostiles.emplace_back(name, !decode_client_state(bytes).has_value());
  };
  auto expect_reject_data = [&](const std::string& name,
                                const ByteStream& bytes) {
    hostiles.emplace_back(name, !decode_transport_data(bytes).has_value());
  };
  auto expect_reject_ack = [&](const std::string& name,
                               const ByteStream& bytes) {
    hostiles.emplace_back(name, !decode_ack(bytes).has_value());
  };

  const std::uint32_t kStateType =
      static_cast<std::uint32_t>(FleetWireType::kClientState);
  const std::uint32_t kAckType =
      static_cast<std::uint32_t>(FleetWireType::kAck);
  auto state_prefix = [&](std::uint32_t flags) {
    ByteStream p;
    for (std::uint8_t octet : msg.mac.octets()) put_u8(p, octet);
    put_u64(p, msg.generation);
    put_u32(p, msg.source_site);
    put_u32(p, msg.dest_site);
    put_u32(p, flags);
    return p;
  };

  // Truncated nested SAT1 block: the outer tracker_len is honest about
  // the truncation, so only the snapshot parser can notice.
  const ByteStream sat1 = serialize_tracker_snapshot(*msg.state.tracker);
  for (std::size_t keep : {std::size_t{0}, std::size_t{3}, sat1.size() / 2,
                           sat1.size() - 1}) {
    ByteStream p = state_prefix(/*flags=*/1u << 0);
    put_u32(p, static_cast<std::uint32_t>(keep));
    p.insert(p.end(), sat1.begin(), sat1.begin() + keep);
    expect_reject_state("sat1-truncated@" + std::to_string(keep),
                        raw_frame(kStateType, p));
  }
  // Max-length tracker claim over a near-empty buffer: the 64 MiB
  // bound itself is in range, so the remaining-bytes check is the only
  // thing standing between the length field and a giant allocation.
  {
    ByteStream p = state_prefix(/*flags=*/1u << 0);
    put_u32(p, 1u << 26);
    put_u8(p, 0xAA);
    expect_reject_state("sat1-64MiB-claim", raw_frame(kStateType, p));
  }
  // Max-length residue: a valid rate field followed by trailing bytes
  // up to the frame's own length limit — total decode demands the
  // payload tile exactly.
  {
    ByteStream p = state_prefix(/*flags=*/1u << 3);
    put_u32(p, 0xFFFFFFFFu);
    for (int i = 0; i < 4096; ++i) put_u8(p, 0x55);
    expect_reject_state("rate-residue-trailing", raw_frame(kStateType, p));
  }
  // Reserved client-state flag bits.
  expect_reject_state("state-reserved-flags",
                      raw_frame(kStateType, state_prefix(0xFFFFFFF0u)));
  // Inner message truncated at every prefix, shipped inside an
  // envelope whose checksum is CORRECT for the truncated cargo: the
  // transport layer accepts it, the nested client-state decode must
  // not.
  std::size_t inner_truncations = 0;
  for (std::size_t keep = 0; keep < original.size(); ++keep) {
    const ByteStream inner(original.begin(), original.begin() + keep);
    const ByteStream env = hostile_envelope(1, 0, inner);
    const auto envelope = decode_transport_data(env);
    if (!envelope) {
      hostiles.emplace_back("envelope-of-prefix@" + std::to_string(keep),
                            false);  // envelope itself must stay valid
      continue;
    }
    if (decode_client_state(envelope->inner)) {
      hostiles.emplace_back("inner-prefix@" + std::to_string(keep), false);
    }
    ++inner_truncations;
  }
  // Transport envelope hostiles: reserved flags, checksum off by one
  // bit, inner_len disagreeing with the payload, ack truncated at
  // every prefix and with reserved flags.
  expect_reject_data("envelope-reserved-flags",
                     hostile_envelope(1, 0xFFFFFFFEu, original));
  {
    ByteStream env = hostile_envelope(1, 0, original);
    env.back() ^= 0x01;
    expect_reject_data("envelope-bad-checksum", env);
  }
  {
    ByteStream p;
    put_u64(p, 1);
    put_u32(p, 0);
    put_u32(p, static_cast<std::uint32_t>(original.size() + 1));  // lies
    p.insert(p.end(), original.begin(), original.end());
    put_u32(p, wire_fnv1a32(p.data(), p.size()));
    expect_reject_data(
        "envelope-inner-len-mismatch",
        raw_frame(static_cast<std::uint32_t>(FleetWireType::kTransportData),
                  p));
  }
  for (std::size_t keep = 0; keep < original_ack.size(); ++keep) {
    expect_reject_ack(
        "ack-prefix@" + std::to_string(keep),
        ByteStream(original_ack.begin(), original_ack.begin() + keep));
  }
  {
    ByteStream p;
    put_u64(p, 9);
    put_u32(p, 0xFFFFFFFEu);
    expect_reject_ack("ack-reserved-flags", raw_frame(kAckType, p));
  }

  std::size_t hostile_accepted = 0;
  for (const auto& [name, behaved] : hostiles) {
    if (!behaved) {
      std::printf("fuzz-wire: hostile case FAILED: %s\n", name.c_str());
      ++hostile_accepted;
    }
  }
  std::printf(
      "fleet-wire: %zu blind mutant(s) x3 kinds, seed %llu, %zu op(s) each: "
      "%zu still decodable, %zu rejected; %zu structure-aware hostile(s) "
      "(%zu inner truncations) — %zu wrongly accepted, no crashes\n",
      count, static_cast<unsigned long long>(seed), ops, decoded, rejected,
      hostiles.size() + inner_truncations, inner_truncations,
      hostile_accepted);
  return hostile_accepted == 0 ? 0 : 1;
}

int cmd_fuzz(const std::string& path, std::uint64_t seed, std::size_t count,
             std::size_t ops, bool with_replay, const std::string& policies_csv,
             std::size_t max_tracked) {
  const ByteStream original = read_file_or_die(path);
  // A mutated capture usually no longer describes the same deployment;
  // replay it into a session built from the ORIGINAL header, which is
  // the realistic attack surface (a hostile capture fed to a fixed
  // deployment) and keeps a mutated num_aps from requesting an absurd
  // construction.
  std::optional<DeploymentSpec> spec;
  {
    CaptureReader reader{ByteStream(original)};
    if (reader.header()) spec = deployment_from_header(*reader.header());
  }
  if (spec && !policies_csv.empty()) {
    // Run the mutants through a caller-chosen policy chain instead of
    // the recorded one — e.g. the full acl,fence,spoof,rate stack
    // (decode is implicit) with --max-tracked small enough that the
    // compact per-MAC state is forced to evict under fire.
    std::vector<PolicyKind> kinds;
    std::size_t start = 0;
    while (start <= policies_csv.size()) {
      std::size_t comma = policies_csv.find(',', start);
      if (comma == std::string::npos) comma = policies_csv.size();
      const std::string token = policies_csv.substr(start, comma - start);
      const auto kind = policy_kind_from_string(token);
      if (!kind) {
        std::fprintf(stderr, "capture_tool: unknown policy '%s'\n",
                     token.c_str());
        return 2;
      }
      kinds.push_back(*kind);
      start = comma + 1;
    }
    spec->policies = std::move(kinds);
  }
  std::size_t parsed_ok = 0, rejected = 0, replays = 0, replay_errors = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const ByteStream mutant = mutate_capture(original, seed + i, ops);
    CaptureReader reader{ByteStream(mutant)};
    const ValidationReport report = reader.validate();
    if (report.ok) {
      ++parsed_ok;
    } else {
      ++rejected;
    }
    if (!with_replay || !spec) continue;
    try {
      BuiltDeployment dep = build_deployment(*spec, /*with_sim=*/false);
      SessionConfig scfg;
      scfg.engine = dep.engine;
      scfg.engine.num_threads = 1;
      if (max_tracked > 0) {
        scfg.engine.coordinator.max_tracked_macs = max_tracked;
        scfg.engine.coordinator.rate_limit.max_tracked_macs = max_tracked;
      }
      EngineSession session(scfg, dep.ap_ptrs, [](const EngineDecision&) {});
      ReplaySource source{CaptureReader(ByteStream(mutant))};
      const ReplayResult result = source.replay_into(session);
      session.close();
      if (result.ok) {
        ++replays;
      } else {
        ++replay_errors;
      }
    } catch (const std::exception&) {
      // A clean rejection (bad chunk geometry, writer state, ...) is a
      // pass — the fuzz loop only fails by crashing.
      ++replay_errors;
    }
  }
  std::printf(
      "%s: %zu mutant(s), seed %llu, %zu op(s) each: %zu still valid, "
      "%zu rejected by the parser",
      path.c_str(), count, static_cast<unsigned long long>(seed), ops,
      parsed_ok, rejected);
  if (with_replay && spec) {
    std::printf(", %zu replayed, %zu rejected in replay", replays,
                replay_errors);
  }
  std::printf(" — no crashes\n");
  return 0;
}

/// One cell of the chaos matrix: roam `clients` walkers across `sites`
/// under `plan`, then require convergence. Every client visits site
/// (c + m) % sites on move m, so consecutive moves always migrate; the
/// end state is fully determined no matter what the channel did:
///   home(c)       == (c + moves - 1) % sites
///   generation(c) == moves            (first assoc = 1, +1 per move)
/// plus: no malformed or bad-site import ever accepted, cold starts
/// only from exhausted retry loops (cold_starts == timeouts), and
/// every migration accounted for as delivered or cold-started. With
/// `drivers` > 1 the handoffs are issued from that many concurrent
/// threads (distinct MACs race, same-MAC order is preserved), which is
/// the configuration the CI sanitizer jobs run.
bool chaos_cell(const FaultPlan& plan, std::size_t sites, std::size_t clients,
                std::size_t moves, std::size_t drivers) {
  FleetConfig config;
  config.spec.site.num_aps = 2;
  config.spec.site.antennas = 4;
  config.spec.num_sites = sites;
  config.threads_per_site = 1;
  config.spoof_idle_frames = 0;
  config.fault_plan = plan;
  FleetCoordinator fleet(config);

  auto mac_of = [](std::size_t c) {
    return MacAddress::from_index(static_cast<std::uint32_t>(c + 1));
  };
  auto drive = [&](std::size_t driver) {
    // Each driver owns clients c ≡ driver (mod drivers) and interleaves
    // their moves round-robin, keeping per-MAC order.
    for (std::size_t m = 0; m < moves; ++m) {
      for (std::size_t c = driver; c < clients; c += drivers) {
        fleet.notify_association(
            mac_of(c), static_cast<std::uint32_t>((c + m) % sites));
      }
    }
  };
  if (drivers <= 1) {
    drive(0);
  } else {
    std::vector<std::thread> threads;
    for (std::size_t d = 0; d < drivers; ++d) {
      threads.emplace_back(drive, d);
    }
    for (auto& t : threads) t.join();
  }
  fleet.close();

  bool ok = true;
  for (std::size_t c = 0; c < clients; ++c) {
    const auto home = fleet.home_site(mac_of(c));
    const auto gen = fleet.generation_of(mac_of(c));
    const std::uint32_t want =
        static_cast<std::uint32_t>((c + moves - 1) % sites);
    if (home != std::optional<std::uint32_t>(want)) {
      std::printf("    FAIL: client %zu homed at %s, want site %u\n", c,
                  home ? std::to_string(*home).c_str() : "nowhere", want);
      ok = false;
    }
    if (gen != std::optional<std::uint64_t>(moves)) {
      std::printf("    FAIL: client %zu at generation %llu, want %zu\n", c,
                  gen ? static_cast<unsigned long long>(*gen) : 0ull, moves);
      ok = false;
    }
  }
  const FleetStats stats = fleet.stats();
  const std::uint64_t migrations =
      static_cast<std::uint64_t>(clients) * (moves - 1);
  if (stats.handoffs_malformed != 0 || stats.handoffs_bad_site != 0) {
    std::printf("    FAIL: %llu malformed / %llu bad-site imports accepted "
                "into the stats\n",
                static_cast<unsigned long long>(stats.handoffs_malformed),
                static_cast<unsigned long long>(stats.handoffs_bad_site));
    ok = false;
  }
  if (stats.cold_starts != stats.timeouts) {
    std::printf("    FAIL: %llu cold starts but %llu timeouts\n",
                static_cast<unsigned long long>(stats.cold_starts),
                static_cast<unsigned long long>(stats.timeouts));
    ok = false;
  }
  // Every migration ends delivered or cold-started. (The sum can exceed
  // the migration count: a delivered export whose acks all died counts
  // both ways, and a post-cold-start straggler lands in handoffs_stale.)
  if (stats.handoffs_applied + stats.cold_starts < migrations) {
    std::printf("    FAIL: %llu applied + %llu cold starts < %llu "
                "migrations\n",
                static_cast<unsigned long long>(stats.handoffs_applied),
                static_cast<unsigned long long>(stats.cold_starts),
                static_cast<unsigned long long>(migrations));
    ok = false;
  }
  const TransportStats tstats = fleet.transport_stats();
  std::printf(
      "    %llu migration(s): %llu applied, %llu cold start(s), %llu "
      "retries, %llu stale, %llu dup-suppressed, %llu corrupt-dropped | "
      "channel: %llu sent, %llu dropped, %llu dup, %llu reordered, %llu "
      "delayed, %llu corrupted %s\n",
      static_cast<unsigned long long>(migrations),
      static_cast<unsigned long long>(stats.handoffs_applied),
      static_cast<unsigned long long>(stats.cold_starts),
      static_cast<unsigned long long>(stats.retries),
      static_cast<unsigned long long>(stats.handoffs_stale),
      static_cast<unsigned long long>(stats.duplicates_suppressed),
      static_cast<unsigned long long>(stats.corrupt_dropped),
      static_cast<unsigned long long>(tstats.sent),
      static_cast<unsigned long long>(tstats.dropped),
      static_cast<unsigned long long>(tstats.duplicated),
      static_cast<unsigned long long>(tstats.reordered),
      static_cast<unsigned long long>(tstats.delayed),
      static_cast<unsigned long long>(tstats.corrupted),
      ok ? "-> converged" : "-> FAILED");
  return ok;
}

int cmd_chaos(std::size_t sites, std::size_t clients, std::size_t moves,
              const std::vector<std::uint64_t>& seeds,
              std::vector<std::string> plans, std::size_t drivers) {
  if (sites < 2 || clients < 1 || moves < 2 || drivers < 1) {
    std::fprintf(stderr,
                 "capture_tool: chaos needs >=2 sites, >=1 client, >=2 "
                 "moves, >=1 driver\n");
    return 2;
  }
  if (plans.empty()) {
    // The default matrix: a perfect-channel baseline, each fault kind
    // in isolation, the everything-at-once mix, and a near-dead link
    // that forces the cold-start path.
    plans = {"none",
             "drop=0.05",
             "drop=0.25",
             "dup=0.2",
             "reorder=0.2",
             "corrupt=0.2",
             "drop=0.1,dup=0.1,reorder=0.1,corrupt=0.1",
             "drop=0.9"};
  }
  std::size_t cells = 0, failed = 0;
  for (const auto& text : plans) {
    FaultPlan plan;
    if (text != "none" && !text.empty()) {
      const auto parsed = FaultPlan::parse(text);
      if (!parsed) {
        std::fprintf(stderr, "capture_tool: bad fault plan '%s'\n",
                     text.c_str());
        return 2;
      }
      plan = *parsed;
    }
    for (const std::uint64_t seed : seeds) {
      plan.seed = seed;
      std::printf("  plan=%s seed=%llu:\n",
                  text.empty() ? "none" : text.c_str(),
                  static_cast<unsigned long long>(seed));
      ++cells;
      if (!chaos_cell(plan, sites, clients, moves, drivers)) ++failed;
    }
  }
  std::printf("chaos: %zu cell(s), %zu failed\n", cells, failed);
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);

  if (cmd == "inspect" && args.size() == 1) return cmd_inspect(args[0]);
  if (cmd == "validate" && !args.empty()) return cmd_validate(args);
  if (cmd == "diff" && args.size() == 2) return cmd_diff(args[0], args[1]);
  if (cmd == "truncate" && args.size() == 3) {
    return cmd_truncate(args[0], args[1],
                        std::strtoull(args[2].c_str(), nullptr, 10));
  }
  if (cmd == "mutate" && (args.size() == 3 || args.size() == 4)) {
    const std::uint64_t seed = std::strtoull(args[2].c_str(), nullptr, 10);
    const std::size_t ops =
        args.size() == 4 ? std::strtoull(args[3].c_str(), nullptr, 10) : 8;
    return cmd_mutate(args[0], args[1], seed, ops);
  }
  if (cmd == "mutate-nan" && args.size() == 2) {
    return cmd_mutate_nan(args[0], args[1]);
  }
  if (cmd == "replay" && !args.empty()) {
    std::string path;
    std::string out;
    std::size_t threads = 1;
    bool expect_reject = false;
    bool fleet = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i] == "--threads" && i + 1 < args.size()) {
        threads = std::strtoull(args[++i].c_str(), nullptr, 10);
      } else if (args[i] == "--out" && i + 1 < args.size()) {
        out = args[++i];
      } else if (args[i] == "--expect-reject") {
        expect_reject = true;
      } else if (args[i] == "--fleet") {
        fleet = true;
      } else if (path.empty() && !args[i].empty() && args[i][0] != '-') {
        path = args[i];
      } else {
        usage();
      }
    }
    if (path.empty()) usage();
    if (fleet) {
      if (!out.empty() || expect_reject) usage();
      return cmd_replay_fleet(path, threads);
    }
    return cmd_replay(path, threads, out, expect_reject);
  }
  if (cmd == "fuzz" && !args.empty()) {
    std::string path;
    std::uint64_t seed = 1;
    std::size_t count = 32;
    std::size_t ops = 8;
    bool with_replay = true;
    bool fleet = false;
    std::string policies;
    std::size_t max_tracked = 0;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i] == "--seed" && i + 1 < args.size()) {
        seed = std::strtoull(args[++i].c_str(), nullptr, 10);
      } else if (args[i] == "--count" && i + 1 < args.size()) {
        count = std::strtoull(args[++i].c_str(), nullptr, 10);
      } else if (args[i] == "--ops" && i + 1 < args.size()) {
        ops = std::strtoull(args[++i].c_str(), nullptr, 10);
      } else if (args[i] == "--no-replay") {
        with_replay = false;
      } else if (args[i] == "--fleet") {
        fleet = true;
      } else if (args[i] == "--policies" && i + 1 < args.size()) {
        policies = args[++i];
      } else if (args[i] == "--max-tracked" && i + 1 < args.size()) {
        max_tracked = std::strtoull(args[++i].c_str(), nullptr, 10);
      } else if (path.empty() && !args[i].empty() && args[i][0] != '-') {
        path = args[i];
      } else {
        usage();
      }
    }
    if (path.empty()) usage();
    if (fleet) {
      if (!policies.empty() || max_tracked != 0) usage();
      return cmd_fuzz_fleet(path, seed, count, ops, with_replay);
    }
    return cmd_fuzz(path, seed, count, ops, with_replay, policies, max_tracked);
  }
  if (cmd == "fuzz-wire") {
    std::uint64_t seed = 1;
    std::size_t count = 256;
    std::size_t ops = 8;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i] == "--seed" && i + 1 < args.size()) {
        seed = std::strtoull(args[++i].c_str(), nullptr, 10);
      } else if (args[i] == "--count" && i + 1 < args.size()) {
        count = std::strtoull(args[++i].c_str(), nullptr, 10);
      } else if (args[i] == "--ops" && i + 1 < args.size()) {
        ops = std::strtoull(args[++i].c_str(), nullptr, 10);
      } else {
        usage();
      }
    }
    return cmd_fuzz_wire(seed, count, ops);
  }
  if (cmd == "chaos") {
    std::size_t sites = 4;
    std::size_t clients = 12;
    std::size_t moves = 6;
    std::size_t drivers = 1;
    std::vector<std::uint64_t> seeds;
    std::vector<std::string> plans;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i] == "--sites" && i + 1 < args.size()) {
        sites = std::strtoull(args[++i].c_str(), nullptr, 10);
      } else if (args[i] == "--clients" && i + 1 < args.size()) {
        clients = std::strtoull(args[++i].c_str(), nullptr, 10);
      } else if (args[i] == "--moves" && i + 1 < args.size()) {
        moves = std::strtoull(args[++i].c_str(), nullptr, 10);
      } else if (args[i] == "--drivers" && i + 1 < args.size()) {
        drivers = std::strtoull(args[++i].c_str(), nullptr, 10);
      } else if (args[i] == "--seeds" && i + 1 < args.size()) {
        const std::string csv = args[++i];
        std::size_t start = 0;
        while (start <= csv.size()) {
          std::size_t comma = csv.find(',', start);
          if (comma == std::string::npos) comma = csv.size();
          seeds.push_back(std::strtoull(
              csv.substr(start, comma - start).c_str(), nullptr, 10));
          start = comma + 1;
        }
      } else if (args[i] == "--plan" && i + 1 < args.size()) {
        plans.push_back(args[++i]);
      } else {
        usage();
      }
    }
    if (seeds.empty()) seeds = {1, 2, 3};
    return cmd_chaos(sites, clients, moves, seeds, plans, drivers);
  }
  usage();
}
