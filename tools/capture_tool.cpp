// capture_tool: inspect, validate, diff, corrupt and replay SACP
// captures (sa/capture). The replay command is the record/replay
// contract made executable: rebuild the recorded deployment from the
// capture header, feed the recorded chunk stream back through a live
// EngineSession at any thread count, and require the decision stream to
// come out byte-identical to the recorded one. The truncate/mutate/fuzz
// commands are the adversarial side: they produce damaged captures and
// assert the parser and the replay path reject them cleanly instead of
// crashing — run the fuzz command under ASan for the real guarantee.
//
// Usage:
//   capture_tool inspect  FILE
//   capture_tool validate FILE...
//   capture_tool diff     A B
//   capture_tool truncate IN OUT BYTES     # keep the first BYTES bytes
//   capture_tool mutate   IN OUT SEED [OPS]
//   capture_tool mutate-nan IN OUT         # poison the first IQ sample
//   capture_tool replay   FILE [--threads N] [--out PATH] [--expect-reject]
//   capture_tool replay   FILE --fleet [--threads N]   # version-2 fleet
//                         captures: rebuild the whole fleet from the
//                         header, re-drive chunks, handoffs and drains in
//                         file order, byte-compare every site's decision
//                         track
//   capture_tool fuzz     FILE [--seed S] [--count N] [--ops K]
//                              [--no-replay] [--policies CSV]
//                              [--max-tracked N] [--fleet]
//   capture_tool fuzz-wire [--seed S] [--count N] [--ops K]
//                         # mutate an encoded FleetWire client-state
//                         message; decode must reject cleanly, never UB
// Exit status: 0 = success / equal / all replays clean; 1 = mismatch or
// invalid input; 2 = usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sa/capture/reader.hpp"
#include "sa/capture/replay.hpp"
#include "sa/capture/writer.hpp"
#include "sa/common/error.hpp"
#include "sa/engine/session.hpp"
#include "sa/fleet/replay.hpp"
#include "sa/fleet/wire.hpp"
#include "sa/secure/policy.hpp"
#include "sa/sim/deployment.hpp"

using namespace sa;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: capture_tool inspect  FILE\n"
               "       capture_tool validate FILE...\n"
               "       capture_tool diff     A B\n"
               "       capture_tool truncate IN OUT BYTES\n"
               "       capture_tool mutate   IN OUT SEED [OPS]\n"
               "       capture_tool mutate-nan IN OUT\n"
               "       capture_tool replay   FILE [--threads N] [--out PATH]\n"
               "                                  [--expect-reject] [--fleet]\n"
               "       capture_tool fuzz     FILE [--seed S] [--count N]\n"
               "                                  [--ops K] [--no-replay]\n"
               "                                  [--policies CSV]\n"
               "                                  [--max-tracked N] [--fleet]\n"
               "       capture_tool fuzz-wire [--seed S] [--count N] [--ops K]\n");
  std::exit(2);
}

ByteStream read_file_or_die(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "capture_tool: cannot open '%s'\n", path.c_str());
    std::exit(1);
  }
  ByteStream data;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  std::fclose(f);
  return data;
}

void write_file_or_die(const std::string& path, const ByteStream& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr ||
      std::fwrite(data.data(), 1, data.size(), f) != data.size()) {
    std::fprintf(stderr, "capture_tool: cannot write '%s'\n", path.c_str());
    if (f != nullptr) std::fclose(f);
    std::exit(1);
  }
  std::fclose(f);
}

int cmd_inspect(const std::string& path) {
  CaptureReader reader(read_file_or_die(path));
  if (!reader.header()) {
    std::fprintf(stderr, "%s: malformed SACP header\n", path.c_str());
    return 1;
  }
  const CaptureHeader& h = *reader.header();
  std::printf("%s: SACP v%u, %u AP(s), seed %llu\n", path.c_str(), h.version,
              h.num_aps, static_cast<unsigned long long>(h.seed));
  for (const auto& [key, val] : h.metadata) {
    std::printf("  %-16s %s\n", key.c_str(), val.c_str());
  }

  std::vector<std::uint64_t> chunks_per_ap(h.num_aps, 0);
  std::vector<std::uint64_t> samples_per_ap(h.num_aps, 0);
  std::uint64_t decisions = 0, accepted = 0, drains = 0, assocs = 0;
  std::map<std::uint32_t, std::uint64_t> decisions_per_site;
  std::optional<EndRecord> end;
  for (;;) {
    auto rec = reader.next();
    if (!rec) break;
    switch (rec->type) {
      case RecordType::kChunk:
        if (rec->chunk->ap < h.num_aps) {
          ++chunks_per_ap[rec->chunk->ap];
          samples_per_ap[rec->chunk->ap] += rec->chunk->samples.cols();
        }
        break;
      case RecordType::kDecision:
        ++decisions;
        if (rec->decision->accepted) ++accepted;
        break;
      case RecordType::kSiteDecision:
        ++decisions;
        ++decisions_per_site[rec->site_decision->site];
        if (rec->site_decision->decision.accepted) ++accepted;
        break;
      case RecordType::kAssoc: ++assocs; break;
      case RecordType::kDrain: ++drains; break;
      case RecordType::kEnd: end = rec->end; break;
    }
  }
  for (std::uint32_t ap = 0; ap < h.num_aps; ++ap) {
    std::printf("  ap %u: %llu chunk(s), %llu samples\n", ap,
                static_cast<unsigned long long>(chunks_per_ap[ap]),
                static_cast<unsigned long long>(samples_per_ap[ap]));
  }
  std::printf("  decisions: %llu (%llu accepted, %llu dropped)\n",
              static_cast<unsigned long long>(decisions),
              static_cast<unsigned long long>(accepted),
              static_cast<unsigned long long>(decisions - accepted));
  for (const auto& [site, n] : decisions_per_site) {
    std::printf("  site %u: %llu decision(s)\n", site,
                static_cast<unsigned long long>(n));
  }
  if (assocs > 0) {
    std::printf("  assocs: %llu\n", static_cast<unsigned long long>(assocs));
  }
  std::printf("  drains: %llu\n", static_cast<unsigned long long>(drains));
  if (!reader.error().empty()) {
    std::printf("  PARSE ERROR: %s\n", reader.error().c_str());
    return 1;
  }
  if (!end) {
    std::printf("  TRUNCATED: no end record\n");
    return 1;
  }
  std::printf("  end record: %llu chunks, %llu decisions, %llu drains\n",
              static_cast<unsigned long long>(end->chunks),
              static_cast<unsigned long long>(end->decisions),
              static_cast<unsigned long long>(end->drains));
  return 0;
}

int cmd_validate(const std::vector<std::string>& paths) {
  int status = 0;
  for (const auto& path : paths) {
    CaptureReader reader(read_file_or_die(path));
    const ValidationReport report = reader.validate();
    if (report.ok) {
      std::printf(
          "%s: OK (%llu chunks, %llu decisions, %llu drains)\n", path.c_str(),
          static_cast<unsigned long long>(report.chunks),
          static_cast<unsigned long long>(report.decisions),
          static_cast<unsigned long long>(report.drains));
    } else {
      std::printf("%s: INVALID at record %zu: %s\n", path.c_str(),
                  report.record_index, report.error.c_str());
      status = 1;
    }
  }
  return status;
}

int cmd_diff(const std::string& a, const std::string& b) {
  CaptureReader ra(read_file_or_die(a));
  CaptureReader rb(read_file_or_die(b));
  const CaptureDiff d = diff_captures(ra, rb);
  if (d.equal) {
    std::printf("captures are logically identical\n");
    return 0;
  }
  std::printf("captures differ: %s\n", d.detail.c_str());
  return 1;
}

int cmd_truncate(const std::string& in, const std::string& out,
                 std::size_t bytes) {
  ByteStream data = read_file_or_die(in);
  if (bytes < data.size()) data.resize(bytes);
  write_file_or_die(out, data);
  std::printf("%s: kept %zu byte(s) -> %s\n", in.c_str(), data.size(),
              out.c_str());
  return 0;
}

int cmd_mutate(const std::string& in, const std::string& out,
               std::uint64_t seed, std::size_t ops) {
  const ByteStream data = read_file_or_die(in);
  const ByteStream mutated = mutate_capture(data, seed, ops);
  write_file_or_die(out, mutated);
  std::printf("%s: %zu mutation op(s), seed %llu -> %s (%zu bytes)\n",
              in.c_str(), ops, static_cast<unsigned long long>(seed),
              out.c_str(), mutated.size());
  return 0;
}

/// Poison the first IQ sample of the first chunk record with a quiet
/// NaN, leaving the rest of the capture untouched. SACP carries no
/// checksums, so the result still parses and validates — only the
/// engine's submit()-time finiteness gate can catch it. This is the
/// reproducible recipe behind corpus/rejects/nan_iq.sacp.
int cmd_mutate_nan(const std::string& in, const std::string& out) {
  ByteStream data = read_file_or_die(in);
  auto u32_at = [&](std::size_t off) -> std::optional<std::uint32_t> {
    if (off + 4 > data.size()) return std::nullopt;
    return static_cast<std::uint32_t>(data[off]) |
           (static_cast<std::uint32_t>(data[off + 1]) << 8) |
           (static_cast<std::uint32_t>(data[off + 2]) << 16) |
           (static_cast<std::uint32_t>(data[off + 3]) << 24);
  };
  // Header: magic u32 | version u32 | payload_len u32 | payload.
  const auto magic = u32_at(0);
  const auto header_len = u32_at(8);
  if (!magic || *magic != kSacpMagic || !header_len) {
    std::fprintf(stderr, "%s: malformed SACP header\n", in.c_str());
    return 1;
  }
  std::size_t off = 12 + *header_len;
  // Records: payload_len u32 | type u32 | payload. A chunk payload is
  // ap u32 | round u64 | base u64 | rows u32 | cols u32 | f64 re/im...
  // so the first sample's real part sits at payload offset 28.
  while (off + 8 <= data.size()) {
    const std::uint32_t len = *u32_at(off);
    const std::uint32_t type = *u32_at(off + 4);
    const std::size_t payload = off + 8;
    if (payload + len > data.size()) break;
    if (type == static_cast<std::uint32_t>(RecordType::kChunk) &&
        len >= 28 + sizeof(double)) {
      const std::uint64_t qnan = 0x7ff8000000000000ull;
      for (std::size_t i = 0; i < 8; ++i) {
        data[payload + 28 + i] = static_cast<std::uint8_t>(qnan >> (8 * i));
      }
      write_file_or_die(out, data);
      std::printf("%s: first IQ sample -> NaN at byte %zu -> %s\n", in.c_str(),
                  payload + 28, out.c_str());
      return 0;
    }
    off = payload + len;
  }
  std::fprintf(stderr, "%s: no chunk record with samples\n", in.c_str());
  return 1;
}

struct ReplayOutcome {
  bool ran = false;          ///< the replay itself ran to the end
  bool identical = false;    ///< decision track matched byte-for-byte
  std::string detail;
};

/// Replay `reader`'s chunk stream through a fresh deployment built from
/// its own header and compare the decision streams byte-for-byte.
ReplayOutcome replay_and_compare(const CaptureReader& reader,
                                 std::size_t threads,
                                 const std::string& out_path) {
  ReplayOutcome outcome;
  if (!reader.header()) {
    outcome.detail = "malformed SACP header";
    return outcome;
  }
  const auto spec = deployment_from_header(*reader.header());
  if (!spec) {
    outcome.detail = "header does not describe a replayable deployment";
    return outcome;
  }
  BuiltDeployment dep = build_deployment(*spec, /*with_sim=*/false);
  EngineConfig ecfg = dep.engine;
  ecfg.num_threads = threads;

  std::optional<CaptureWriter> writer;
  if (!out_path.empty()) {
    writer.emplace(out_path, *reader.header());
    ecfg.capture = &*writer;
  }

  const std::vector<ByteStream> recorded = reader.decision_payloads();
  std::size_t matched = 0;
  std::string mismatch;
  SessionConfig scfg;
  scfg.engine = ecfg;
  {
    EngineSession session(scfg, dep.ap_ptrs, [&](const EngineDecision& d) {
      const ByteStream bytes =
          encode_decision(d.sequence, d.absolute_start, d.decision);
      if (matched < recorded.size() && bytes == recorded[matched]) {
        ++matched;
      } else if (mismatch.empty()) {
        mismatch = "decision " + std::to_string(d.sequence) +
                   (matched < recorded.size() ? " differs from the recording"
                                              : " has no recorded counterpart");
      }
    });
    ReplaySource source{CaptureReader(reader.bytes())};
    const ReplayResult result = source.replay_into(session);
    if (!result.ok) {
      outcome.detail = "replay failed: " + result.error;
      if (writer) writer->close();
      session.close();
      return outcome;
    }
    if (writer) writer->close();
    session.close();
  }
  outcome.ran = true;
  if (!mismatch.empty()) {
    outcome.detail = mismatch;
  } else if (matched != recorded.size()) {
    outcome.detail = "replay emitted " + std::to_string(matched) + " of " +
                     std::to_string(recorded.size()) + " recorded decisions";
  } else {
    outcome.identical = true;
    outcome.detail =
        std::to_string(matched) + " decision(s) byte-identical";
  }
  return outcome;
}

int cmd_replay(const std::string& path, std::size_t threads,
               const std::string& out_path, bool expect_reject) {
  CaptureReader reader(read_file_or_die(path));
  if (expect_reject) {
    // Inverted contract for hostile captures (e.g. corpus/rejects/):
    // success means the engine's ingress validation refused the stream.
    try {
      const ReplayOutcome outcome =
          replay_and_compare(reader, threads, out_path);
      std::printf("%s: NOT rejected (%s)\n", path.c_str(),
                  outcome.detail.c_str());
      return 1;
    } catch (const InvalidArgument& e) {
      std::printf("%s: rejected as expected: %s\n", path.c_str(), e.what());
      return 0;
    }
  }
  const ReplayOutcome outcome = replay_and_compare(reader, threads, out_path);
  std::printf("%s: %s\n", path.c_str(), outcome.detail.c_str());
  if (!out_path.empty() && outcome.ran) {
    std::printf("replay capture written to %s\n", out_path.c_str());
  }
  return outcome.identical ? 0 : 1;
}

int cmd_replay_fleet(const std::string& path, std::size_t threads) {
  const FleetReplayResult result = replay_fleet_capture(path, threads);
  if (!result.ok) {
    std::printf("%s: fleet replay failed: %s\n", path.c_str(),
                result.error.c_str());
    return 1;
  }
  std::printf(
      "%s: %zu site(s), %llu chunk(s), %llu handoff(s), %llu drain(s), "
      "%llu decision(s) byte-identical\n",
      path.c_str(), result.sites,
      static_cast<unsigned long long>(result.chunks_submitted),
      static_cast<unsigned long long>(result.assocs_replayed),
      static_cast<unsigned long long>(result.drains_run),
      static_cast<unsigned long long>(result.decisions_checked));
  return 0;
}

/// Fleet-capture fuzz: every mutant goes through the parser and the
/// full fleet replay path, which must come back with ok/error — the
/// loop only fails by crashing (run it under ASan/UBSan for the real
/// guarantee).
int cmd_fuzz_fleet(const std::string& path, std::uint64_t seed,
                   std::size_t count, std::size_t ops, bool with_replay) {
  const ByteStream original = read_file_or_die(path);
  std::size_t parsed_ok = 0, rejected = 0, replays = 0, replay_errors = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const ByteStream mutant = mutate_capture(original, seed + i, ops);
    CaptureReader reader{ByteStream(mutant)};
    if (reader.validate().ok) {
      ++parsed_ok;
    } else {
      ++rejected;
    }
    if (!with_replay) continue;
    const FleetReplayResult result =
        replay_fleet_capture(ByteStream(mutant), /*threads_per_site=*/1);
    if (result.ok) {
      ++replays;
    } else {
      ++replay_errors;
    }
  }
  std::printf(
      "%s: %zu fleet mutant(s), seed %llu, %zu op(s) each: %zu still valid, "
      "%zu rejected by the parser",
      path.c_str(), count, static_cast<unsigned long long>(seed), ops,
      parsed_ok, rejected);
  if (with_replay) {
    std::printf(", %zu replayed, %zu rejected in replay", replays,
                replay_errors);
  }
  std::printf(" — no crashes\n");
  return 0;
}

/// FleetWire decode fuzz: mutate a well-formed kClientState message
/// (MAC + generation + tracker snapshot + ACL verdict + rate residue —
/// every optional block present) and require decode_client_state to
/// return nullopt or a valid message, never UB.
int cmd_fuzz_wire(std::uint64_t seed, std::size_t count, std::size_t ops) {
  FleetClientState msg;
  msg.mac = MacAddress::from_index(42);
  msg.generation = 7;
  msg.source_site = 1;
  msg.dest_site = 2;
  TrackerSnapshot snap;
  snap.trained = true;
  snap.training_seen = 12;
  snap.observations = 40;
  snap.mismatches = 3;
  TrackerSnapshot::Band band;
  for (int i = 0; i < 64; ++i) {
    band.angles_deg.push_back(-180.0 + 360.0 * i / 64.0);
    band.values.push_back(0.25 + 0.01 * i);
  }
  band.wraps = true;
  snap.bands.push_back(band);
  msg.state.tracker = std::move(snap);
  msg.state.acl_allowed = true;
  msg.state.rate_in_window = 5;
  const ByteStream original = encode_client_state(msg);
  if (!decode_client_state(original)) {
    std::printf("fuzz-wire: round-trip of the seed message failed\n");
    return 1;
  }
  std::size_t decoded = 0, rejected = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const ByteStream mutant = mutate_capture(original, seed + i, ops);
    if (decode_client_state(mutant)) {
      ++decoded;
    } else {
      ++rejected;
    }
  }
  std::printf(
      "fleet-wire: %zu mutant(s), seed %llu, %zu op(s) each: %zu still "
      "decodable, %zu rejected — no crashes\n",
      count, static_cast<unsigned long long>(seed), ops, decoded, rejected);
  return 0;
}

int cmd_fuzz(const std::string& path, std::uint64_t seed, std::size_t count,
             std::size_t ops, bool with_replay, const std::string& policies_csv,
             std::size_t max_tracked) {
  const ByteStream original = read_file_or_die(path);
  // A mutated capture usually no longer describes the same deployment;
  // replay it into a session built from the ORIGINAL header, which is
  // the realistic attack surface (a hostile capture fed to a fixed
  // deployment) and keeps a mutated num_aps from requesting an absurd
  // construction.
  std::optional<DeploymentSpec> spec;
  {
    CaptureReader reader{ByteStream(original)};
    if (reader.header()) spec = deployment_from_header(*reader.header());
  }
  if (spec && !policies_csv.empty()) {
    // Run the mutants through a caller-chosen policy chain instead of
    // the recorded one — e.g. the full acl,fence,spoof,rate stack
    // (decode is implicit) with --max-tracked small enough that the
    // compact per-MAC state is forced to evict under fire.
    std::vector<PolicyKind> kinds;
    std::size_t start = 0;
    while (start <= policies_csv.size()) {
      std::size_t comma = policies_csv.find(',', start);
      if (comma == std::string::npos) comma = policies_csv.size();
      const std::string token = policies_csv.substr(start, comma - start);
      const auto kind = policy_kind_from_string(token);
      if (!kind) {
        std::fprintf(stderr, "capture_tool: unknown policy '%s'\n",
                     token.c_str());
        return 2;
      }
      kinds.push_back(*kind);
      start = comma + 1;
    }
    spec->policies = std::move(kinds);
  }
  std::size_t parsed_ok = 0, rejected = 0, replays = 0, replay_errors = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const ByteStream mutant = mutate_capture(original, seed + i, ops);
    CaptureReader reader{ByteStream(mutant)};
    const ValidationReport report = reader.validate();
    if (report.ok) {
      ++parsed_ok;
    } else {
      ++rejected;
    }
    if (!with_replay || !spec) continue;
    try {
      BuiltDeployment dep = build_deployment(*spec, /*with_sim=*/false);
      SessionConfig scfg;
      scfg.engine = dep.engine;
      scfg.engine.num_threads = 1;
      if (max_tracked > 0) {
        scfg.engine.coordinator.max_tracked_macs = max_tracked;
        scfg.engine.coordinator.rate_limit.max_tracked_macs = max_tracked;
      }
      EngineSession session(scfg, dep.ap_ptrs, [](const EngineDecision&) {});
      ReplaySource source{CaptureReader(ByteStream(mutant))};
      const ReplayResult result = source.replay_into(session);
      session.close();
      if (result.ok) {
        ++replays;
      } else {
        ++replay_errors;
      }
    } catch (const std::exception&) {
      // A clean rejection (bad chunk geometry, writer state, ...) is a
      // pass — the fuzz loop only fails by crashing.
      ++replay_errors;
    }
  }
  std::printf(
      "%s: %zu mutant(s), seed %llu, %zu op(s) each: %zu still valid, "
      "%zu rejected by the parser",
      path.c_str(), count, static_cast<unsigned long long>(seed), ops,
      parsed_ok, rejected);
  if (with_replay && spec) {
    std::printf(", %zu replayed, %zu rejected in replay", replays,
                replay_errors);
  }
  std::printf(" — no crashes\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);

  if (cmd == "inspect" && args.size() == 1) return cmd_inspect(args[0]);
  if (cmd == "validate" && !args.empty()) return cmd_validate(args);
  if (cmd == "diff" && args.size() == 2) return cmd_diff(args[0], args[1]);
  if (cmd == "truncate" && args.size() == 3) {
    return cmd_truncate(args[0], args[1],
                        std::strtoull(args[2].c_str(), nullptr, 10));
  }
  if (cmd == "mutate" && (args.size() == 3 || args.size() == 4)) {
    const std::uint64_t seed = std::strtoull(args[2].c_str(), nullptr, 10);
    const std::size_t ops =
        args.size() == 4 ? std::strtoull(args[3].c_str(), nullptr, 10) : 8;
    return cmd_mutate(args[0], args[1], seed, ops);
  }
  if (cmd == "mutate-nan" && args.size() == 2) {
    return cmd_mutate_nan(args[0], args[1]);
  }
  if (cmd == "replay" && !args.empty()) {
    std::string path;
    std::string out;
    std::size_t threads = 1;
    bool expect_reject = false;
    bool fleet = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i] == "--threads" && i + 1 < args.size()) {
        threads = std::strtoull(args[++i].c_str(), nullptr, 10);
      } else if (args[i] == "--out" && i + 1 < args.size()) {
        out = args[++i];
      } else if (args[i] == "--expect-reject") {
        expect_reject = true;
      } else if (args[i] == "--fleet") {
        fleet = true;
      } else if (path.empty() && !args[i].empty() && args[i][0] != '-') {
        path = args[i];
      } else {
        usage();
      }
    }
    if (path.empty()) usage();
    if (fleet) {
      if (!out.empty() || expect_reject) usage();
      return cmd_replay_fleet(path, threads);
    }
    return cmd_replay(path, threads, out, expect_reject);
  }
  if (cmd == "fuzz" && !args.empty()) {
    std::string path;
    std::uint64_t seed = 1;
    std::size_t count = 32;
    std::size_t ops = 8;
    bool with_replay = true;
    bool fleet = false;
    std::string policies;
    std::size_t max_tracked = 0;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i] == "--seed" && i + 1 < args.size()) {
        seed = std::strtoull(args[++i].c_str(), nullptr, 10);
      } else if (args[i] == "--count" && i + 1 < args.size()) {
        count = std::strtoull(args[++i].c_str(), nullptr, 10);
      } else if (args[i] == "--ops" && i + 1 < args.size()) {
        ops = std::strtoull(args[++i].c_str(), nullptr, 10);
      } else if (args[i] == "--no-replay") {
        with_replay = false;
      } else if (args[i] == "--fleet") {
        fleet = true;
      } else if (args[i] == "--policies" && i + 1 < args.size()) {
        policies = args[++i];
      } else if (args[i] == "--max-tracked" && i + 1 < args.size()) {
        max_tracked = std::strtoull(args[++i].c_str(), nullptr, 10);
      } else if (path.empty() && !args[i].empty() && args[i][0] != '-') {
        path = args[i];
      } else {
        usage();
      }
    }
    if (path.empty()) usage();
    if (fleet) {
      if (!policies.empty() || max_tracked != 0) usage();
      return cmd_fuzz_fleet(path, seed, count, ops, with_replay);
    }
    return cmd_fuzz(path, seed, count, ops, with_replay, policies, max_tracked);
  }
  if (cmd == "fuzz-wire") {
    std::uint64_t seed = 1;
    std::size_t count = 256;
    std::size_t ops = 8;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i] == "--seed" && i + 1 < args.size()) {
        seed = std::strtoull(args[++i].c_str(), nullptr, 10);
      } else if (args[i] == "--count" && i + 1 < args.size()) {
        count = std::strtoull(args[++i].c_str(), nullptr, 10);
      } else if (args[i] == "--ops" && i + 1 < args.size()) {
        ops = std::strtoull(args[++i].c_str(), nullptr, 10);
      } else {
        usage();
      }
    }
    return cmd_fuzz_wire(seed, count, ops);
  }
  usage();
}
