#include "sa/mac/address.hpp"

#include <cstdio>

#include "sa/common/error.hpp"

namespace sa {

MacAddress MacAddress::parse(const std::string& text) {
  std::array<unsigned, 6> vals{};
  const int n = std::sscanf(text.c_str(), "%2x:%2x:%2x:%2x:%2x:%2x", &vals[0],
                            &vals[1], &vals[2], &vals[3], &vals[4], &vals[5]);
  if (n != 6) throw InvalidArgument("MacAddress::parse: bad format: " + text);
  std::array<std::uint8_t, 6> octets{};
  for (std::size_t i = 0; i < 6; ++i) {
    octets[i] = static_cast<std::uint8_t>(vals[i]);
  }
  return MacAddress(octets);
}

MacAddress MacAddress::from_index(std::uint32_t index) {
  return MacAddress({0x02, 0x5A, static_cast<std::uint8_t>(index >> 24),
                     static_cast<std::uint8_t>(index >> 16),
                     static_cast<std::uint8_t>(index >> 8),
                     static_cast<std::uint8_t>(index)});
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

bool MacAddress::is_broadcast() const { return *this == broadcast(); }

}  // namespace sa
