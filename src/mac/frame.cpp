#include "sa/mac/frame.hpp"

#include <array>

#include "sa/common/error.hpp"

namespace sa {

namespace {

constexpr std::size_t kHeaderLen = 24;  // three-address header
constexpr std::size_t kFcsLen = 4;

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint16_t get_u16(const Bytes& in, std::size_t at) {
  return static_cast<std::uint16_t>(in[at] | (in[at + 1] << 8));
}

}  // namespace

std::uint32_t crc32(const Bytes& data) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) {
    c = crc_table()[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Bytes Frame::serialize() const {
  SA_EXPECTS(sequence < 4096);
  Bytes out;
  out.reserve(kHeaderLen + body.size() + kFcsLen);

  // Frame control (protocol version 0).
  const std::uint8_t fc0 = static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(type) << 2) | ((subtype & 0x0F) << 4));
  const std::uint8_t fc1 = static_cast<std::uint8_t>(
      (to_ds ? 0x01 : 0) | (from_ds ? 0x02 : 0) | (retry ? 0x08 : 0));
  out.push_back(fc0);
  out.push_back(fc1);
  put_u16(out, duration);
  for (std::uint8_t o : addr1.octets()) out.push_back(o);
  for (std::uint8_t o : addr2.octets()) out.push_back(o);
  for (std::uint8_t o : addr3.octets()) out.push_back(o);
  put_u16(out, static_cast<std::uint16_t>(sequence << 4));  // fragment 0
  out.insert(out.end(), body.begin(), body.end());

  const std::uint32_t fcs = crc32(out);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((fcs >> (8 * i)) & 0xFF));
  }
  return out;
}

std::optional<Frame> Frame::parse(const Bytes& psdu) {
  if (psdu.size() < kHeaderLen + kFcsLen) return std::nullopt;

  // Validate FCS first.
  Bytes covered(psdu.begin(), psdu.end() - kFcsLen);
  std::uint32_t fcs = 0;
  for (int i = 0; i < 4; ++i) {
    fcs |= static_cast<std::uint32_t>(psdu[psdu.size() - kFcsLen + i]) << (8 * i);
  }
  if (crc32(covered) != fcs) return std::nullopt;

  Frame f;
  const std::uint8_t fc0 = psdu[0];
  if ((fc0 & 0x03) != 0) return std::nullopt;  // protocol version must be 0
  f.type = static_cast<FrameType>((fc0 >> 2) & 0x03);
  f.subtype = static_cast<std::uint8_t>((fc0 >> 4) & 0x0F);
  const std::uint8_t fc1 = psdu[1];
  f.to_ds = (fc1 & 0x01) != 0;
  f.from_ds = (fc1 & 0x02) != 0;
  f.retry = (fc1 & 0x08) != 0;
  f.duration = get_u16(psdu, 2);
  std::array<std::uint8_t, 6> a{};
  for (std::size_t i = 0; i < 6; ++i) a[i] = psdu[4 + i];
  f.addr1 = MacAddress(a);
  for (std::size_t i = 0; i < 6; ++i) a[i] = psdu[10 + i];
  f.addr2 = MacAddress(a);
  for (std::size_t i = 0; i < 6; ++i) a[i] = psdu[16 + i];
  f.addr3 = MacAddress(a);
  f.sequence = static_cast<std::uint16_t>(get_u16(psdu, 22) >> 4);
  f.body.assign(psdu.begin() + kHeaderLen, psdu.end() - kFcsLen);
  return f;
}

Frame Frame::data(MacAddress bssid, MacAddress source, Bytes payload,
                  std::uint16_t sequence) {
  Frame f;
  f.type = FrameType::kData;
  f.subtype = 0;
  f.to_ds = true;
  f.from_ds = false;
  f.addr1 = bssid;
  f.addr2 = source;
  f.addr3 = bssid;
  f.sequence = sequence;
  f.body = std::move(payload);
  return f;
}

Frame Frame::probe_request(MacAddress source, std::uint16_t sequence) {
  Frame f;
  f.type = FrameType::kManagement;
  f.subtype = static_cast<std::uint8_t>(ManagementSubtype::kProbeRequest);
  f.to_ds = false;
  f.from_ds = false;
  f.addr1 = MacAddress::broadcast();
  f.addr2 = source;
  f.addr3 = MacAddress::broadcast();
  f.sequence = sequence;
  return f;
}

}  // namespace sa
