#include "sa/testbed/uplink.hpp"

#include <cmath>

#include "sa/common/angles.hpp"
#include "sa/common/error.hpp"
#include "sa/dsp/units.hpp"

namespace sa {

double TxPattern::gain_db(double departure_bearing_deg) const {
  if (beamwidth_deg >= 360.0) return tx_power_db;
  const double off = angular_distance_deg(departure_bearing_deg, aim_azimuth_deg);
  // Gaussian main lobe: -12 dB at the beamwidth edge, floored backlobe.
  const double rolloff = -12.0 * (off / beamwidth_deg) * (off / beamwidth_deg);
  const double shaped = std::max(boresight_gain_db + rolloff,
                                 boresight_gain_db + backlobe_floor_db);
  return tx_power_db + shaped;
}

UplinkSimulation::UplinkSimulation(const OfficeTestbed& testbed,
                                   UplinkConfig config, Rng& rng)
    : testbed_(testbed),
      config_(config),
      tracer_(config.tracer),
      simulator_(config.channel),
      rng_(rng.fork()) {}

std::size_t UplinkSimulation::add_ap(ArrayPlacement placement) {
  aps_.push_back(std::move(placement));
  return aps_.size() - 1;
}

const ArrayPlacement& UplinkSimulation::ap(std::size_t i) const {
  SA_EXPECTS(i < aps_.size());
  return aps_[i];
}

UplinkSimulation::Link& UplinkSimulation::link_for(Vec2 from,
                                                   std::size_t ap_index) {
  SA_EXPECTS(ap_index < aps_.size());
  for (auto& l : links_) {
    if (l.ap_index == ap_index && distance(l.from, from) < 1e-9) return l;
  }
  Link l{from, ap_index,
         tracer_.trace(from, aps_[ap_index].origin, testbed_.floorplan()),
         PathFading({}, config_.fading, rng_)};
  l.fading = PathFading(l.paths, config_.fading, rng_);
  links_.push_back(std::move(l));
  return links_.back();
}

void UplinkSimulation::advance(double dt_s) {
  for (auto& l : links_) l.fading.advance(dt_s);
}

std::vector<CMat> UplinkSimulation::transmit(Vec2 from, const CVec& waveform,
                                             const TxPattern* pattern) {
  std::vector<CMat> out;
  out.reserve(aps_.size());
  for (std::size_t i = 0; i < aps_.size(); ++i) {
    Link& link = link_for(from, i);
    std::vector<PropagationPath> paths = link.fading.faded_paths(link.paths);
    if (pattern != nullptr) {
      for (auto& p : paths) {
        const double g = pattern->gain_db(p.departure_bearing_deg);
        p.gain *= std::pow(10.0, g / 20.0);
      }
    }
    out.push_back(simulator_.propagate(waveform, paths, aps_[i], rng_));
  }
  return out;
}

const std::vector<PropagationPath>& UplinkSimulation::paths(
    Vec2 from, std::size_t ap_index) {
  return link_for(from, ap_index).paths;
}

}  // namespace sa
