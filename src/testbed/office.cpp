#include "sa/testbed/office.hpp"

#include <cmath>

#include "sa/common/angles.hpp"
#include "sa/common/error.hpp"

namespace sa {

namespace {

constexpr double kInteriorLossDb = 5.0;   // drywall-class partition at 2.4 GHz
constexpr double kExteriorLossDb = 30.0;
constexpr double kPillarLossDb = 20.0;  // concrete, per face; diffraction leaks
constexpr double kInteriorRefl = 0.40;
constexpr double kExteriorRefl = 0.50;
constexpr double kPillarRefl = 0.5;

}  // namespace

OfficeTestbed OfficeTestbed::figure4() {
  OfficeTestbed tb;
  tb.ap_position_ = Vec2{12.0, 8.0};

  // ---- Walls. Exterior shell 24 x 16 m.
  tb.floorplan_.add_room({0.0, 0.0}, {24.0, 16.0}, kExteriorLossDb,
                         kExteriorRefl, "exterior");

  // West partition x = 8 with a door gap at y in (6.8, 7.8).
  tb.floorplan_.add_wall({Segment{{8, 0}, {8, 6.8}}, kInteriorLossDb,
                          kInteriorRefl, "west-partition-s"});
  tb.floorplan_.add_wall({Segment{{8, 7.8}, {8, 16}}, kInteriorLossDb,
                          kInteriorRefl, "west-partition-n"});
  // East partition x = 20 with a door gap at y in (9, 10).
  tb.floorplan_.add_wall({Segment{{20, 0}, {20, 9}}, kInteriorLossDb,
                          kInteriorRefl, "east-partition-s"});
  tb.floorplan_.add_wall({Segment{{20, 10}, {20, 16}}, kInteriorLossDb,
                          kInteriorRefl, "east-partition-n"});
  // North corridor wall y = 12 between the partitions, door at x (17, 18).
  tb.floorplan_.add_wall({Segment{{8, 12}, {17, 12}}, kInteriorLossDb,
                          kInteriorRefl, "north-wall-w"});
  tb.floorplan_.add_wall({Segment{{18, 12}, {20, 12}}, kInteriorLossDb,
                          kInteriorRefl, "north-wall-e"});
  // South wall y = 4 between the partitions, door at x (9, 10).
  tb.floorplan_.add_wall({Segment{{8, 4}, {9, 4}}, kInteriorLossDb,
                          kInteriorRefl, "south-wall-w"});
  tb.floorplan_.add_wall({Segment{{10, 4}, {20, 4}}, kInteriorLossDb,
                          kInteriorRefl, "south-wall-e"});

  // ---- Cement pillar between the AP and clients 11/12 (0.8 m square,
  // centred 1.6 m from the AP toward azimuth 312 degrees).
  {
    const Vec2 c = tb.ap_position_ +
                   Vec2{std::cos(deg2rad(312.0)), std::sin(deg2rad(312.0))} * 1.6;
    tb.floorplan_.add_obstacle(
        Polygon::rectangle({c.x - 0.4, c.y - 0.4}, {c.x + 0.4, c.y + 0.4}),
        kPillarLossDb, kPillarRefl, "pillar");
  }

  // ---- Clients 1..12: ring around the AP at 30-degree steps (the
  // figure's clock layout), with per-client radii reproducing the
  // paper's special cases.
  auto ring = [&](int id, double radius) {
    const double az = 30.0 * static_cast<double>(id - 1);
    return tb.ap_position_ +
           Vec2{std::cos(deg2rad(az)), std::sin(deg2rad(az))} * radius;
  };
  tb.clients_ = {
      {1, ring(1, 4.0), "ring east"},
      {2, ring(2, 4.0), "ring NE"},
      {3, ring(3, 4.0), "ring NNE"},
      {4, ring(4, 3.5), "ring north"},
      {5, ring(5, 4.0), "ring NNW"},
      {6, ring(6, 9.5), "far away, through walls, strong multipath"},
      {7, ring(7, 4.5), "other room west (through partition)"},
      {8, ring(8, 4.0), "ring SSW"},
      {9, ring(9, 4.0), "ring south-SW"},
      {10, ring(10, 3.0), "ring south"},
      {11, ring(11, 4.0), "completely blocked by pillar"},
      {12, ring(12, 4.5), "partially blocked by pillar"},
      {13, {18.5, 10.5}, "room NE corner"},
      {14, {9.0, 5.0}, "room SW corner"},
      {15, {6.0, 2.5}, "SW room"},
      {16, {22.0, 14.5}, "NE room"},
      {17, {2.0, 2.0}, "far SW corner office"},
      {18, {22.0, 2.5}, "SE room"},
      {19, {14.0, 14.0}, "north corridor"},
      {20, {5.0, 8.0}, "west room, near doorway"},
  };

  tb.outline_ = Polygon::rectangle({0.0, 0.0}, {24.0, 16.0});
  tb.extra_aps_ = {{4.0, 3.0}, {21.0, 13.0}, {4.0, 13.0}};
  tb.outdoor_ = {{-5.0, 8.0}, {30.0, 8.0}, {12.0, -6.0}, {28.0, 18.0}};
  return tb;
}

const TestbedClient& OfficeTestbed::client(int id) const {
  for (const auto& c : clients_) {
    if (c.id == id) return c;
  }
  throw InvalidArgument("OfficeTestbed::client: unknown id " +
                        std::to_string(id));
}

double OfficeTestbed::ground_truth_bearing_deg(int id) const {
  return bearing_deg(ap_position_, client(id).position);
}

std::vector<Vec2> OfficeTestbed::ap_mounting_points(std::size_t n) const {
  // Order the surveyed mounts by coverage quality: the NW/NE points see
  // most of the office; the SW mount sits behind the pillar for several
  // clients.
  std::vector<Vec2> out{ap_position_, extra_aps_[2], extra_aps_[1],
                        extra_aps_[0]};
  if (n <= out.size()) {
    out.resize(n);
    return out;
  }
  // Beyond the surveyed spots: march clockwise along a 2 m inset of the
  // building outline, spacing the extra mounts evenly. Deterministic so
  // repeated runs deploy identically.
  const double margin = 2.0;
  const double x0 = margin, x1 = 24.0 - margin;
  const double y0 = margin, y1 = 16.0 - margin;
  const double w = x1 - x0, h = y1 - y0;
  const double perimeter = 2.0 * (w + h);
  const std::size_t extra = n - out.size();
  for (std::size_t i = 0; i < extra; ++i) {
    // Offset half a step so the ring points avoid the corners where the
    // surveyed mounts already sit.
    double t = perimeter * (static_cast<double>(i) + 0.5) /
               static_cast<double>(extra);
    Vec2 p;
    if (t < w) {
      p = {x0 + t, y0};
    } else if ((t -= w) < h) {
      p = {x1, y0 + t};
    } else if ((t -= h) < w) {
      p = {x1 - t, y1};
    } else {
      t -= w;
      p = {x0, y1 - t};
    }
    out.push_back(p);
  }
  return out;
}

}  // namespace sa
