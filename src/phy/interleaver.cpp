#include "sa/phy/interleaver.hpp"

#include <algorithm>

#include "sa/common/error.hpp"

namespace sa {

namespace {

// Composite permutation k -> j per 802.11a 17.3.5.6.
std::vector<std::size_t> forward_map(std::size_t n_cbps, std::size_t n_bpsc) {
  SA_EXPECTS(n_cbps % 16 == 0);
  SA_EXPECTS(n_bpsc >= 1);
  const std::size_t s = std::max<std::size_t>(n_bpsc / 2, 1);
  std::vector<std::size_t> map(n_cbps);
  for (std::size_t k = 0; k < n_cbps; ++k) {
    const std::size_t i = (n_cbps / 16) * (k % 16) + k / 16;
    const std::size_t j =
        s * (i / s) + (i + n_cbps - (16 * i) / n_cbps) % s;
    map[k] = j;
  }
  return map;
}

}  // namespace

Bits interleave(const Bits& bits, std::size_t n_cbps, std::size_t n_bpsc) {
  SA_EXPECTS(bits.size() == n_cbps);
  const auto map = forward_map(n_cbps, n_bpsc);
  Bits out(n_cbps);
  for (std::size_t k = 0; k < n_cbps; ++k) out[map[k]] = bits[k];
  return out;
}

Bits deinterleave(const Bits& bits, std::size_t n_cbps, std::size_t n_bpsc) {
  SA_EXPECTS(bits.size() == n_cbps);
  const auto map = forward_map(n_cbps, n_bpsc);
  Bits out(n_cbps);
  for (std::size_t k = 0; k < n_cbps; ++k) out[k] = bits[map[k]];
  return out;
}

}  // namespace sa
