#include "sa/phy/convolutional.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "sa/common/error.hpp"

namespace sa {

namespace {

// Generators g0 = 133o, g1 = 171o; constraint length 7 (64 states).
constexpr unsigned kG0 = 0133;
constexpr unsigned kG1 = 0171;
constexpr unsigned kStates = 64;

inline std::uint8_t parity7(unsigned x) {
  x &= 0x7F;
  x ^= x >> 4;
  x ^= x >> 2;
  x ^= x >> 1;
  return static_cast<std::uint8_t>(x & 1u);
}

// Rate 3/4 puncture pattern over 3 info bits / 6 coded bits:
// keep A1 B1 A2 -- -- B3 (true = transmit).
constexpr std::array<bool, 6> kPuncture34 = {true, true, true, false, false, true};
// Rate 2/3 pattern over 2 info bits / 4 coded bits: keep A1 B1 A2 --.
constexpr std::array<bool, 4> kPuncture23 = {true, true, true, false};

bool keep_bit(CodeRate rate, std::size_t coded_index) {
  switch (rate) {
    case CodeRate::kRate1_2: return true;
    case CodeRate::kRate2_3: return kPuncture23[coded_index % 4];
    case CodeRate::kRate3_4: return kPuncture34[coded_index % 6];
  }
  return true;
}

std::size_t puncture_period_info_bits(CodeRate rate) {
  switch (rate) {
    case CodeRate::kRate1_2: return 1;
    case CodeRate::kRate2_3: return 2;
    case CodeRate::kRate3_4: return 3;
  }
  return 1;
}

}  // namespace

std::size_t coded_length(std::size_t n_in, CodeRate rate) {
  const std::size_t full = 2 * n_in;
  if (rate == CodeRate::kRate1_2) return full;
  // Punctured rates require the input padded to the puncture period
  // (802.11 guarantees this by construction of the symbol sizes).
  SA_EXPECTS(n_in % puncture_period_info_bits(rate) == 0);
  if (rate == CodeRate::kRate2_3) return full / 4 * 3;
  return full / 6 * 4;
}

Bits convolutional_encode(const Bits& bits, CodeRate rate) {
  unsigned state = 0;  // six most recent input bits
  Bits full;
  full.reserve(2 * bits.size());
  for (std::uint8_t b : bits) {
    const unsigned reg = ((b & 1u) << 6) | state;  // newest bit as MSB
    full.push_back(parity7(reg & kG0));
    full.push_back(parity7(reg & kG1));
    state = (reg >> 1) & 0x3F;
  }
  if (rate == CodeRate::kRate1_2) return full;

  SA_EXPECTS(bits.size() % puncture_period_info_bits(rate) == 0);
  Bits punct;
  punct.reserve(coded_length(bits.size(), rate));
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (keep_bit(rate, i)) punct.push_back(full[i]);
  }
  return punct;
}

Bits viterbi_decode(const Bits& coded, std::size_t n_out, CodeRate rate) {
  // Depuncture into (bit, known) pairs covering 2*n_out positions.
  std::vector<std::uint8_t> stream(2 * n_out, 0);
  std::vector<bool> known(2 * n_out, false);
  if (rate == CodeRate::kRate1_2) {
    SA_EXPECTS(coded.size() == 2 * n_out);
    for (std::size_t i = 0; i < coded.size(); ++i) {
      stream[i] = coded[i];
      known[i] = true;
    }
  } else {
    SA_EXPECTS(n_out % puncture_period_info_bits(rate) == 0);
    SA_EXPECTS(coded.size() == coded_length(n_out, rate));
    std::size_t src = 0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      if (keep_bit(rate, i)) {
        stream[i] = coded[src++];
        known[i] = true;
      }
    }
  }

  // Precompute branch outputs: for (state, input) -> (outA, outB, next).
  struct Branch {
    std::uint8_t out_a, out_b;
    unsigned next;
  };
  static const auto table = [] {
    std::array<std::array<Branch, 2>, kStates> t{};
    for (unsigned s = 0; s < kStates; ++s) {
      for (unsigned b = 0; b < 2; ++b) {
        const unsigned reg = (b << 6) | s;
        t[s][b] = Branch{parity7(reg & kG0), parity7(reg & kG1),
                         (reg >> 1) & 0x3F};
      }
    }
    return t;
  }();

  constexpr unsigned kInf = std::numeric_limits<unsigned>::max() / 4;
  std::vector<unsigned> metric(kStates, kInf);
  std::vector<unsigned> next_metric(kStates, kInf);
  metric[0] = 0;  // encoder starts in state 0
  // survivor[t][next_state] = (prev_state << 1) | input_bit
  std::vector<std::vector<std::uint8_t>> survivor(
      n_out, std::vector<std::uint8_t>(kStates, 0));
  std::vector<std::vector<std::uint8_t>> prev_state(
      n_out, std::vector<std::uint8_t>(kStates, 0));

  for (std::size_t t = 0; t < n_out; ++t) {
    std::fill(next_metric.begin(), next_metric.end(), kInf);
    const std::uint8_t ra = stream[2 * t];
    const std::uint8_t rb = stream[2 * t + 1];
    const bool ka = known[2 * t];
    const bool kb = known[2 * t + 1];
    for (unsigned s = 0; s < kStates; ++s) {
      if (metric[s] >= kInf) continue;
      for (unsigned b = 0; b < 2; ++b) {
        const Branch& br = table[s][b];
        unsigned m = metric[s];
        if (ka && br.out_a != ra) ++m;
        if (kb && br.out_b != rb) ++m;
        if (m < next_metric[br.next]) {
          next_metric[br.next] = m;
          prev_state[t][br.next] = static_cast<std::uint8_t>(s);
          survivor[t][br.next] = static_cast<std::uint8_t>(b);
        }
      }
    }
    metric.swap(next_metric);
  }

  // Trace back from the best final state (with 802.11 tail bits the true
  // final state is 0, but tolerate truncation by taking the minimum).
  unsigned best = 0;
  for (unsigned s = 1; s < kStates; ++s) {
    if (metric[s] < metric[best]) best = s;
  }
  Bits out(n_out);
  unsigned s = best;
  for (std::size_t t = n_out; t-- > 0;) {
    out[t] = survivor[t][s];
    s = prev_state[t][s];
  }
  return out;
}

}  // namespace sa
