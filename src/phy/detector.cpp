#include "sa/phy/detector.hpp"

#include <cmath>

#include "sa/common/constants.hpp"
#include "sa/common/error.hpp"
#include "sa/dsp/correlate.hpp"
#include "sa/phy/ofdm.hpp"

namespace sa {

SchmidlCoxDetector::SchmidlCoxDetector(DetectorConfig config)
    : config_(config), ltf_ref_(ltf_period()) {
  SA_EXPECTS(config_.threshold > 0.0 && config_.threshold < 1.0);
  SA_EXPECTS(config_.sample_rate_hz > 0.0);
}

std::vector<PacketDetection> SchmidlCoxDetector::detect(const CVec& samples) const {
  std::vector<PacketDetection> out;
  if (samples.size() < kPreambleLen + kScLag + kScWindow) return out;

  const CVec p = lag_autocorrelation(samples, kScLag, kScWindow);
  const std::vector<double> r = window_energy(samples, kScLag, kScWindow);
  SA_ENSURES(p.size() == r.size());

  std::vector<double> metric(p.size(), 0.0);
  for (std::size_t k = 0; k < p.size(); ++k) {
    if (r[k] > 1e-30) metric[k] = std::norm(p[k]) / (r[k] * r[k]);
  }

  const double ltf_energy = energy(ltf_ref_);
  std::size_t k = 0;
  while (k < metric.size()) {
    if (metric[k] < config_.threshold) {
      ++k;
      continue;
    }
    // Measure plateau length from k.
    std::size_t run = 0;
    while (k + run < metric.size() && metric[k + run] >= config_.threshold) ++run;
    if (run < config_.min_plateau) {
      k += run + 1;
      continue;
    }

    // Fine timing: search for the first LTF period after the coarse hit.
    const std::size_t search_begin = k;
    const std::size_t search_end =
        std::min(samples.size(), k + config_.fine_search_span);
    if (search_end <= search_begin + kFftSize) break;

    double best_val = 0.0;
    std::size_t best_pos = search_begin;
    std::vector<double> corr(search_end - search_begin - kFftSize + 1, 0.0);
    for (std::size_t pos = search_begin; pos + kFftSize <= search_end; ++pos) {
      cd acc{0.0, 0.0};
      for (std::size_t i = 0; i < kFftSize; ++i) {
        acc += std::conj(ltf_ref_[i]) * samples[pos + i];
      }
      double win_e = 0.0;
      for (std::size_t i = 0; i < kFftSize; ++i) {
        win_e += std::norm(samples[pos + i]);
      }
      const double c =
          (win_e > 1e-30) ? std::norm(acc) / (ltf_energy * win_e) : 0.0;
      corr[pos - search_begin] = c;
      if (c > best_val) {
        best_val = c;
        best_pos = pos;
      }
    }
    if (best_val < config_.fine_threshold) {
      k += run + 1;  // plateau without an LTF: interference, skip it
      continue;
    }
    // The LTF has two identical periods 64 samples apart; if the peak we
    // found is the second one, the position 64 earlier correlates almost
    // as strongly.
    std::size_t period1 = best_pos;
    if (best_pos >= search_begin + kFftSize) {
      const double prev = corr[best_pos - search_begin - kFftSize];
      if (prev > 0.8 * best_val) period1 = best_pos - kFftSize;
    }
    if (period1 < kStfLen + 32) {
      k += run + 1;
      continue;  // would place the packet start before the buffer
    }
    const std::size_t start = period1 - (kStfLen + 32);

    // CFO: coarse from the STF plateau, refined with the lag-64
    // correlation across the two LTF periods (unwrap fine with coarse).
    const std::size_t mid = k + run / 2 < p.size() ? k + run / 2 : k;
    const double coarse =
        std::arg(p[mid]) / (kTwoPi * static_cast<double>(kScLag)) *
        config_.sample_rate_hz;
    double cfo = coarse;
    if (period1 + 2 * kFftSize <= samples.size()) {
      cd acc{0.0, 0.0};
      for (std::size_t i = 0; i < kFftSize; ++i) {
        acc += std::conj(samples[period1 + i]) * samples[period1 + kFftSize + i];
      }
      const double fine =
          std::arg(acc) / (kTwoPi * static_cast<double>(kFftSize)) *
          config_.sample_rate_hz;
      const double ambiguity = config_.sample_rate_hz / static_cast<double>(kFftSize);
      cfo = fine + std::round((coarse - fine) / ambiguity) * ambiguity;
    }

    PacketDetection det;
    det.start = start;
    det.metric = metric[mid];
    det.cfo_hz = cfo;
    det.fine_peak = best_val;
    out.push_back(det);

    // Skip past this preamble before searching again.
    k = start + kPreambleLen;
  }
  return out;
}

std::optional<PacketDetection> SchmidlCoxDetector::detect_first(
    const CVec& samples, std::size_t from) const {
  for (const auto& det : detect(samples)) {
    if (det.start >= from) return det;
  }
  return std::nullopt;
}

}  // namespace sa
