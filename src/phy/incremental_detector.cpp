// Faithful transcription of SchmidlCoxDetector::detect (src/phy/
// detector.cpp) over an absolute-indexed window, with the fine-timing
// searches memoized. Every arithmetic statement here mirrors one in
// detect()/lag_autocorrelation/window_energy in the same order, so the
// floating-point results are bit-identical; tests/test_phy.cpp holds the
// two implementations against each other sample for sample.
#include "sa/phy/incremental_detector.hpp"

#include <algorithm>
#include <cmath>

#include "sa/common/constants.hpp"
#include "sa/common/error.hpp"
#include "sa/phy/ofdm.hpp"

namespace sa {

IncrementalScDetector::IncrementalScDetector(DetectorConfig config)
    : config_(config), ltf_ref_(ltf_period()), ltf_energy_(energy(ltf_ref_)) {
  SA_EXPECTS(config_.threshold > 0.0 && config_.threshold < 1.0);
  SA_EXPECTS(config_.sample_rate_hz > 0.0);
}

void IncrementalScDetector::reset() {
  fine_cache_.clear();
}

std::vector<PacketDetection> IncrementalScDetector::scan(const cd* x,
                                                         std::size_t len,
                                                         std::size_t base) {
  // Drop memo entries for positions the window no longer covers.
  for (auto it = fine_cache_.begin(); it != fine_cache_.end();) {
    it = it->first < base ? fine_cache_.erase(it) : std::next(it);
  }

  std::vector<PacketDetection> out;
  if (len < kPreambleLen + kScLag + kScWindow) return out;

  // ---- Coarse metric: replay lag_autocorrelation / window_energy's
  // running recurrences from the current window origin. These accumulate
  // floating-point state from sample 0, so they are origin-dependent and
  // must be recomputed whenever a trim moves the origin; they are the
  // cheap part of detection.
  const std::size_t n_out = len - kScLag - kScWindow + 1;
  p_.resize(n_out);
  r_.resize(n_out);
  metric_.resize(n_out);
  {
    cd p{0.0, 0.0};
    for (std::size_t i = 0; i < kScWindow; ++i) {
      p += std::conj(x[i]) * x[i + kScLag];
    }
    p_[0] = p;
    for (std::size_t k = 1; k < n_out; ++k) {
      p -= std::conj(x[k - 1]) * x[k - 1 + kScLag];
      p += std::conj(x[k + kScWindow - 1]) * x[k + kScWindow - 1 + kScLag];
      p_[k] = p;
    }
  }
  {
    double e = 0.0;
    for (std::size_t i = 0; i < kScWindow; ++i) e += std::norm(x[kScLag + i]);
    r_[0] = e;
    for (std::size_t k = 1; k < n_out; ++k) {
      e -= std::norm(x[kScLag + k - 1]);
      e += std::norm(x[kScLag + k + kScWindow - 1]);
      r_[k] = e;
    }
  }
  for (std::size_t k = 0; k < n_out; ++k) {
    metric_[k] = r_[k] > 1e-30 ? std::norm(p_[k]) / (r_[k] * r_[k]) : 0.0;
  }

  // ---- Decision loop: identical control flow to detect(). The only
  // difference is that the fine-timing search consults the memo first.
  std::size_t k = 0;
  while (k < n_out) {
    if (metric_[k] < config_.threshold) {
      ++k;
      continue;
    }
    std::size_t run = 0;
    while (k + run < n_out && metric_[k + run] >= config_.threshold) ++run;
    if (run < config_.min_plateau) {
      k += run + 1;
      continue;
    }

    const std::size_t search_begin = k;
    const std::size_t search_end =
        std::min(len, k + config_.fine_search_span);
    if (search_end <= search_begin + kFftSize) break;

    double best_val = 0.0;
    std::size_t period1 = search_begin;
    const auto hit = fine_cache_.find(base + k);
    if (hit != fine_cache_.end()) {
      // The cached span [k, k + fine_search_span) is still fully inside
      // the window: the stream is append-only and trims only move `base`
      // forward, so base + k >= base and the recorded right edge can only
      // have gained coverage. The cached floats are what a fresh search
      // over the same samples would produce.
      ++fine_cache_hits_;
      best_val = hit->second.best_val;
      period1 = hit->second.period1_abs - base;
    } else {
      ++fine_searches_;
      std::size_t best_pos = search_begin;
      corr_.assign(search_end - search_begin - kFftSize + 1, 0.0);
      for (std::size_t pos = search_begin; pos + kFftSize <= search_end;
           ++pos) {
        cd acc{0.0, 0.0};
        for (std::size_t i = 0; i < kFftSize; ++i) {
          acc += std::conj(ltf_ref_[i]) * x[pos + i];
        }
        double win_e = 0.0;
        for (std::size_t i = 0; i < kFftSize; ++i) {
          win_e += std::norm(x[pos + i]);
        }
        const double c =
            (win_e > 1e-30) ? std::norm(acc) / (ltf_energy_ * win_e) : 0.0;
        corr_[pos - search_begin] = c;
        if (c > best_val) {
          best_val = c;
          best_pos = pos;
        }
      }
      // Second-LTF-period disambiguation. detect() runs this after the
      // fine-threshold check; it reads only the corr values, so hoisting
      // it before the check changes nothing observable and lets the memo
      // store the finished period1.
      period1 = best_pos;
      if (best_pos >= search_begin + kFftSize) {
        const double prev = corr_[best_pos - search_begin - kFftSize];
        if (prev > 0.8 * best_val) period1 = best_pos - kFftSize;
      }
      if (k + config_.fine_search_span <= len) {
        fine_cache_.emplace(base + k, FineResult{best_val, base + period1});
      }
    }

    if (best_val < config_.fine_threshold) {
      k += run + 1;  // plateau without an LTF: interference, skip it
      continue;
    }
    if (period1 < kStfLen + 32) {
      k += run + 1;
      continue;  // would place the packet start before the buffer
    }
    const std::size_t start = period1 - (kStfLen + 32);

    const std::size_t mid = k + run / 2 < n_out ? k + run / 2 : k;
    const double coarse =
        std::arg(p_[mid]) / (kTwoPi * static_cast<double>(kScLag)) *
        config_.sample_rate_hz;
    double cfo = coarse;
    if (period1 + 2 * kFftSize <= len) {
      cd acc{0.0, 0.0};
      for (std::size_t i = 0; i < kFftSize; ++i) {
        acc += std::conj(x[period1 + i]) * x[period1 + kFftSize + i];
      }
      const double fine =
          std::arg(acc) / (kTwoPi * static_cast<double>(kFftSize)) *
          config_.sample_rate_hz;
      const double ambiguity =
          config_.sample_rate_hz / static_cast<double>(kFftSize);
      cfo = fine + std::round((coarse - fine) / ambiguity) * ambiguity;
    }

    PacketDetection det;
    det.start = start;
    det.metric = metric_[mid];
    det.cfo_hz = cfo;
    det.fine_peak = best_val;
    out.push_back(det);

    k = start + kPreambleLen;
  }
  return out;
}

}  // namespace sa
