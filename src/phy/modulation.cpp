#include "sa/phy/modulation.hpp"

#include <array>
#include <cmath>

#include "sa/common/error.hpp"

namespace sa {

namespace {

// 802.11a Gray mapping per axis: for 16-QAM, bits (b0 b1) -> level
// {-3, -1, +3, +1}; for 64-QAM, (b0 b1 b2) -> {-7,-5,-1,-3,7,5,1,3}.
constexpr std::array<double, 4> kLevels16 = {-3.0, -1.0, 3.0, 1.0};
constexpr std::array<double, 8> kLevels64 = {-7.0, -5.0, -1.0, -3.0,
                                             7.0,  5.0,  1.0,  3.0};

double slice16(double v) {
  // Nearest of {-3,-1,1,3}.
  if (v < -2.0) return -3.0;
  if (v < 0.0) return -1.0;
  if (v < 2.0) return 1.0;
  return 3.0;
}

double slice64(double v) {
  const double levels[] = {-7, -5, -3, -1, 1, 3, 5, 7};
  double best = levels[0];
  for (double L : levels) {
    if (std::abs(v - L) < std::abs(v - best)) best = L;
  }
  return best;
}

std::size_t index16(double level) {
  for (std::size_t i = 0; i < kLevels16.size(); ++i) {
    if (kLevels16[i] == level) return i;
  }
  throw NumericalError("modulation: bad 16-QAM level");
}

std::size_t index64(double level) {
  for (std::size_t i = 0; i < kLevels64.size(); ++i) {
    if (kLevels64[i] == level) return i;
  }
  throw NumericalError("modulation: bad 64-QAM level");
}

constexpr double kNorm16 = 0.31622776601683794;  // 1/sqrt(10)
constexpr double kNorm64 = 0.15430334996209191;  // 1/sqrt(42)
constexpr double kNormQpsk = 0.7071067811865476; // 1/sqrt(2)

}  // namespace

std::size_t bits_per_symbol(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return 1;
    case Modulation::kQpsk: return 2;
    case Modulation::kQam16: return 4;
    case Modulation::kQam64: return 6;
  }
  throw InvalidArgument("bits_per_symbol: unknown modulation");
}

CVec modulate(const Bits& bits, Modulation m) {
  const std::size_t bps = bits_per_symbol(m);
  SA_EXPECTS(bits.size() % bps == 0);
  const std::size_t n = bits.size() / bps;
  CVec out(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint8_t* b = &bits[k * bps];
    switch (m) {
      case Modulation::kBpsk:
        out[k] = cd{b[0] ? 1.0 : -1.0, 0.0};
        break;
      case Modulation::kQpsk:
        out[k] = cd{(b[0] ? 1.0 : -1.0) * kNormQpsk,
                    (b[1] ? 1.0 : -1.0) * kNormQpsk};
        break;
      case Modulation::kQam16: {
        const std::size_t ii = static_cast<std::size_t>(b[0]) * 2 + b[1];
        const std::size_t qq = static_cast<std::size_t>(b[2]) * 2 + b[3];
        out[k] = cd{kLevels16[ii] * kNorm16, kLevels16[qq] * kNorm16};
        break;
      }
      case Modulation::kQam64: {
        const std::size_t ii =
            static_cast<std::size_t>(b[0]) * 4 + static_cast<std::size_t>(b[1]) * 2 + b[2];
        const std::size_t qq =
            static_cast<std::size_t>(b[3]) * 4 + static_cast<std::size_t>(b[4]) * 2 + b[5];
        out[k] = cd{kLevels64[ii] * kNorm64, kLevels64[qq] * kNorm64};
        break;
      }
    }
  }
  return out;
}

Bits demodulate(const CVec& symbols, Modulation m) {
  const std::size_t bps = bits_per_symbol(m);
  Bits out;
  out.reserve(symbols.size() * bps);
  for (const cd& s : symbols) {
    switch (m) {
      case Modulation::kBpsk:
        out.push_back(s.real() >= 0.0 ? 1 : 0);
        break;
      case Modulation::kQpsk:
        out.push_back(s.real() >= 0.0 ? 1 : 0);
        out.push_back(s.imag() >= 0.0 ? 1 : 0);
        break;
      case Modulation::kQam16: {
        const std::size_t ii = index16(slice16(s.real() / kNorm16));
        const std::size_t qq = index16(slice16(s.imag() / kNorm16));
        out.push_back(static_cast<std::uint8_t>((ii >> 1) & 1u));
        out.push_back(static_cast<std::uint8_t>(ii & 1u));
        out.push_back(static_cast<std::uint8_t>((qq >> 1) & 1u));
        out.push_back(static_cast<std::uint8_t>(qq & 1u));
        break;
      }
      case Modulation::kQam64: {
        const std::size_t ii = index64(slice64(s.real() / kNorm64));
        const std::size_t qq = index64(slice64(s.imag() / kNorm64));
        out.push_back(static_cast<std::uint8_t>((ii >> 2) & 1u));
        out.push_back(static_cast<std::uint8_t>((ii >> 1) & 1u));
        out.push_back(static_cast<std::uint8_t>(ii & 1u));
        out.push_back(static_cast<std::uint8_t>((qq >> 2) & 1u));
        out.push_back(static_cast<std::uint8_t>((qq >> 1) & 1u));
        out.push_back(static_cast<std::uint8_t>(qq & 1u));
        break;
      }
    }
  }
  return out;
}

double min_distance(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return 2.0;
    case Modulation::kQpsk: return 2.0 * kNormQpsk;
    case Modulation::kQam16: return 2.0 * kNorm16;
    case Modulation::kQam64: return 2.0 * kNorm64;
  }
  throw InvalidArgument("min_distance: unknown modulation");
}

}  // namespace sa
