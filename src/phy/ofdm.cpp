#include "sa/phy/ofdm.hpp"

#include <cmath>

#include "sa/common/error.hpp"
#include "sa/dsp/fft.hpp"

namespace sa {

namespace {

// 802.11a 17.3.5.9 pilot polarity sequence (127 entries, cyclic).
constexpr std::array<int, 127> kPolarity = {
    1,  1,  1,  1,  -1, -1, -1, 1,  -1, -1, -1, -1, 1,  1,  -1, 1,  -1, -1,
    1,  1,  -1, 1,  1,  -1, 1,  1,  1,  1,  1,  1,  -1, 1,  1,  1,  -1, 1,
    1,  -1, -1, 1,  1,  1,  -1, 1,  -1, -1, -1, 1,  -1, 1,  -1, -1, 1,  -1,
    -1, 1,  1,  1,  1,  1,  -1, -1, 1,  1,  -1, -1, 1,  -1, 1,  -1, 1,  1,
    -1, -1, -1, 1,  1,  -1, -1, -1, -1, 1,  -1, -1, 1,  -1, 1,  1,  1,  1,
    -1, 1,  -1, 1,  -1, 1,  -1, -1, -1, -1, -1, 1,  -1, 1,  1,  -1, 1,  -1,
    1,  1,  1,  -1, -1, 1,  -1, -1, -1, 1,  1,  1,  -1, -1, -1, -1, -1, -1,
    -1};

// 802.11a STF frequency-domain sequence on carriers -26..26, scaled by
// sqrt(13/6).
const std::array<cd, 53>& stf_sequence() {
  static const std::array<cd, 53> seq = [] {
    std::array<cd, 53> s{};
    const double a = std::sqrt(13.0 / 6.0);
    const cd pp{a, a};
    const cd mm{-a, -a};
    // Index = carrier + 26.
    auto set = [&s](int carrier, cd v) { s[static_cast<std::size_t>(carrier + 26)] = v; };
    set(-24, pp);
    set(-20, mm);
    set(-16, pp);
    set(-12, mm);
    set(-8, mm);
    set(-4, pp);
    set(4, mm);
    set(8, mm);
    set(12, pp);
    set(16, pp);
    set(20, pp);
    set(24, pp);
    return s;
  }();
  return seq;
}

}  // namespace

const std::array<int, kNumDataCarriers>& data_carriers() {
  static const std::array<int, kNumDataCarriers> carriers = [] {
    std::array<int, kNumDataCarriers> c{};
    std::size_t i = 0;
    for (int k = -26; k <= 26; ++k) {
      if (k == 0 || k == 7 || k == -7 || k == 21 || k == -21) continue;
      c[i++] = k;
    }
    SA_ENSURES(i == kNumDataCarriers);
    return c;
  }();
  return carriers;
}

const std::array<int, kNumPilots>& pilot_carriers() {
  static const std::array<int, kNumPilots> p = {-21, -7, 7, 21};
  return p;
}

const std::array<double, kNumPilots>& pilot_values() {
  static const std::array<double, kNumPilots> v = {1.0, 1.0, 1.0, -1.0};
  return v;
}

double pilot_polarity(std::size_t symbol_index) {
  return static_cast<double>(kPolarity[symbol_index % kPolarity.size()]);
}

std::size_t carrier_to_bin(int k) {
  SA_EXPECTS(k >= -32 && k <= 31);
  return k >= 0 ? static_cast<std::size_t>(k)
                : static_cast<std::size_t>(64 + k);
}

const std::array<double, 53>& ltf_sequence() {
  static const std::array<double, 53> seq = {
      1,  1,  -1, -1, 1,  1,  -1, 1,  -1, 1,  1,  1,  1,  1,  1,  -1, -1, 1,
      1,  -1, 1,  -1, 1,  1,  1,  1,  0,  1,  -1, -1, 1,  1,  -1, 1,  -1, 1,
      -1, -1, -1, -1, -1, 1,  1,  -1, -1, 1,  -1, 1,  -1, 1,  1,  1,  1};
  return seq;
}

CVec short_training_field() {
  // One 64-sample IFFT of the STF sequence yields a waveform with period
  // 16; the STF is 160 samples = 10 periods.
  CVec freq(kFftSize, cd{0.0, 0.0});
  const auto& seq = stf_sequence();
  for (int k = -26; k <= 26; ++k) {
    freq[carrier_to_bin(k)] = seq[static_cast<std::size_t>(k + 26)];
  }
  CVec period64 = ifft(freq);
  CVec out(kStfLen);
  for (std::size_t i = 0; i < kStfLen; ++i) {
    out[i] = period64[i % kFftSize] * kOfdmTimeScale;
  }
  return out;
}

CVec long_training_field() {
  CVec freq(kFftSize, cd{0.0, 0.0});
  const auto& seq = ltf_sequence();
  for (int k = -26; k <= 26; ++k) {
    freq[carrier_to_bin(k)] = cd{seq[static_cast<std::size_t>(k + 26)], 0.0};
  }
  CVec period = ifft(freq);
  for (cd& v : period) v *= kOfdmTimeScale;
  CVec out(kLtfLen);
  // 32-sample cyclic prefix = last 32 samples of the period.
  for (std::size_t i = 0; i < 32; ++i) out[i] = period[kFftSize - 32 + i];
  for (std::size_t i = 0; i < kFftSize; ++i) {
    out[32 + i] = period[i];
    out[32 + kFftSize + i] = period[i];
  }
  return out;
}

CVec ltf_period() {
  CVec freq(kFftSize, cd{0.0, 0.0});
  const auto& seq = ltf_sequence();
  for (int k = -26; k <= 26; ++k) {
    freq[carrier_to_bin(k)] = cd{seq[static_cast<std::size_t>(k + 26)], 0.0};
  }
  CVec period = ifft(freq);
  for (cd& v : period) v *= kOfdmTimeScale;
  return period;
}

CVec ofdm_modulate_symbol(const CVec& data48, std::size_t symbol_index) {
  SA_EXPECTS(data48.size() == kNumDataCarriers);
  CVec freq(kFftSize, cd{0.0, 0.0});
  const auto& dc = data_carriers();
  for (std::size_t i = 0; i < kNumDataCarriers; ++i) {
    freq[carrier_to_bin(dc[i])] = data48[i];
  }
  const double pol = pilot_polarity(symbol_index);
  const auto& pc = pilot_carriers();
  const auto& pv = pilot_values();
  for (std::size_t i = 0; i < kNumPilots; ++i) {
    freq[carrier_to_bin(pc[i])] = cd{pv[i] * pol, 0.0};
  }
  CVec time = ifft(freq);
  for (cd& v : time) v *= kOfdmTimeScale;
  CVec out(kSymbolLen);
  for (std::size_t i = 0; i < kCpLen; ++i) out[i] = time[kFftSize - kCpLen + i];
  for (std::size_t i = 0; i < kFftSize; ++i) out[kCpLen + i] = time[i];
  return out;
}

CVec estimate_channel_from_ltf(const CVec& ltf_rx_1, const CVec& ltf_rx_2) {
  SA_EXPECTS(ltf_rx_1.size() == kFftSize && ltf_rx_2.size() == kFftSize);
  const CVec f1 = fft(CVec(ltf_rx_1));
  const CVec f2 = fft(CVec(ltf_rx_2));
  const auto& seq = ltf_sequence();
  CVec h(kFftSize, cd{0.0, 0.0});
  for (int k = -26; k <= 26; ++k) {
    const double ref = seq[static_cast<std::size_t>(k + 26)];
    if (ref == 0.0) continue;
    const std::size_t bin = carrier_to_bin(k);
    h[bin] = (f1[bin] + f2[bin]) * cd{0.5 / ref, 0.0};
  }
  return h;
}

CVec ofdm_demodulate_symbol(const CVec& rx80, const CVec& channel,
                            std::size_t symbol_index) {
  SA_EXPECTS(rx80.size() == kSymbolLen);
  SA_EXPECTS(channel.size() == kFftSize);
  CVec time(rx80.begin() + kCpLen, rx80.end());
  const CVec freq = fft(std::move(time));

  // Common phase error from the four pilots (residual CFO/SFO rotates all
  // subcarriers together).
  const double pol = pilot_polarity(symbol_index);
  const auto& pc = pilot_carriers();
  const auto& pv = pilot_values();
  cd phase_acc{0.0, 0.0};
  for (std::size_t i = 0; i < kNumPilots; ++i) {
    const std::size_t bin = carrier_to_bin(pc[i]);
    if (std::abs(channel[bin]) < 1e-12) continue;
    const cd expected = cd{pv[i] * pol, 0.0} * channel[bin];
    phase_acc += freq[bin] * std::conj(expected);
  }
  cd rot{1.0, 0.0};
  if (std::abs(phase_acc) > 1e-12) rot = phase_acc / std::abs(phase_acc);

  const auto& dc = data_carriers();
  CVec out(kNumDataCarriers);
  for (std::size_t i = 0; i < kNumDataCarriers; ++i) {
    const std::size_t bin = carrier_to_bin(dc[i]);
    const cd h = channel[bin];
    if (std::abs(h) < 1e-12) {
      out[i] = cd{0.0, 0.0};
      continue;
    }
    out[i] = freq[bin] * std::conj(rot) / h;
  }
  return out;
}

}  // namespace sa
