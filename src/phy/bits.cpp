#include "sa/phy/bits.hpp"

#include "sa/common/error.hpp"

namespace sa {

Bits bytes_to_bits(const Bytes& bytes) {
  Bits bits;
  bits.reserve(bytes.size() * 8);
  for (std::uint8_t b : bytes) {
    for (int i = 0; i < 8; ++i) {
      bits.push_back(static_cast<std::uint8_t>((b >> i) & 1u));
    }
  }
  return bits;
}

Bytes bits_to_bytes(const Bits& bits) {
  SA_EXPECTS(bits.size() % 8 == 0);
  Bytes bytes(bits.size() / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) bytes[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return bytes;
}

std::size_t hamming_distance(const Bits& a, const Bits& b) {
  SA_EXPECTS(a.size() == b.size());
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if ((a[i] != 0) != (b[i] != 0)) ++d;
  }
  return d;
}

}  // namespace sa
