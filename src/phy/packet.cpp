#include "sa/phy/packet.hpp"

#include <cmath>

#include "sa/common/error.hpp"
#include "sa/phy/interleaver.hpp"
#include "sa/phy/ofdm.hpp"
#include "sa/phy/scrambler.hpp"

namespace sa {

namespace {

constexpr std::size_t kServiceBits = 16;
constexpr std::size_t kTailBits = 6;
constexpr std::size_t kSignalBitCount = 24;
constexpr std::size_t kMaxPsduBytes = 4095;

const RateInfo kRates[] = {
    // modulation, code rate, n_bpsc, n_cbps, n_dbps, RATE bits (R1 = LSB)
    {Modulation::kBpsk, CodeRate::kRate1_2, 1, 48, 24, 0x0B},   // 6
    {Modulation::kBpsk, CodeRate::kRate3_4, 1, 48, 36, 0x0F},   // 9
    {Modulation::kQpsk, CodeRate::kRate1_2, 2, 96, 48, 0x0A},   // 12
    {Modulation::kQpsk, CodeRate::kRate3_4, 2, 96, 72, 0x0E},   // 18
    {Modulation::kQam16, CodeRate::kRate1_2, 4, 192, 96, 0x09}, // 24
    {Modulation::kQam16, CodeRate::kRate3_4, 4, 192, 144, 0x0D},// 36
    {Modulation::kQam64, CodeRate::kRate2_3, 6, 288, 192, 0x08},// 48
    {Modulation::kQam64, CodeRate::kRate3_4, 6, 288, 216, 0x0C},// 54
};

}  // namespace

const RateInfo& rate_info(PhyRate rate) {
  return kRates[static_cast<std::size_t>(rate)];
}

std::optional<PhyRate> rate_from_signal_bits(std::uint8_t bits) {
  for (std::size_t i = 0; i < std::size(kRates); ++i) {
    if (kRates[i].signal_bits == (bits & 0x0F)) {
      return static_cast<PhyRate>(i);
    }
  }
  return std::nullopt;
}

PacketTransmitter::PacketTransmitter(PhyRate rate, std::uint8_t scrambler_seed)
    : rate_(rate), scrambler_seed_(scrambler_seed) {
  SA_EXPECTS((scrambler_seed & 0x7F) != 0);
}

std::size_t PacketTransmitter::num_data_symbols(std::size_t length) const {
  const RateInfo& ri = rate_info(rate_);
  const std::size_t payload_bits = kServiceBits + 8 * length + kTailBits;
  return (payload_bits + ri.n_dbps - 1) / ri.n_dbps;
}

CVec PacketTransmitter::transmit(const Bytes& psdu) const {
  SA_EXPECTS(!psdu.empty() && psdu.size() <= kMaxPsduBytes);
  const RateInfo& ri = rate_info(rate_);

  // ---- SIGNAL field: RATE(4) | reserved(1) | LENGTH(12) | parity | tail.
  Bits signal(kSignalBitCount, 0);
  for (std::size_t i = 0; i < 4; ++i) {
    signal[i] = static_cast<std::uint8_t>((ri.signal_bits >> i) & 1u);
  }
  const std::size_t len = psdu.size();
  for (std::size_t i = 0; i < 12; ++i) {
    signal[5 + i] = static_cast<std::uint8_t>((len >> i) & 1u);
  }
  std::uint8_t parity = 0;
  for (std::size_t i = 0; i < 17; ++i) parity ^= signal[i];
  signal[17] = parity;
  // Bits 18..23 are already zero (tail).

  const Bits signal_coded = convolutional_encode(signal, CodeRate::kRate1_2);
  const Bits signal_inter = interleave(signal_coded, 48, 1);
  const CVec signal_syms = modulate(signal_inter, Modulation::kBpsk);
  const CVec signal_td = ofdm_modulate_symbol(signal_syms, /*symbol_index=*/0);

  // ---- DATA field.
  const std::size_t n_sym = num_data_symbols(len);
  const std::size_t n_data_bits = n_sym * ri.n_dbps;
  Bits data(n_data_bits, 0);
  const Bits psdu_bits = bytes_to_bits(psdu);
  for (std::size_t i = 0; i < psdu_bits.size(); ++i) {
    data[kServiceBits + i] = psdu_bits[i];
  }
  Scrambler scrambler(scrambler_seed_);
  Bits scrambled = scrambler.process(data);
  // Tail bits are zeroed *after* scrambling so the decoder terminates.
  for (std::size_t i = 0; i < kTailBits; ++i) {
    scrambled[kServiceBits + psdu_bits.size() + i] = 0;
  }
  const Bits coded = convolutional_encode(scrambled, ri.code_rate);
  SA_ENSURES(coded.size() == n_sym * ri.n_cbps);

  CVec waveform = short_training_field();
  const CVec ltf = long_training_field();
  waveform.insert(waveform.end(), ltf.begin(), ltf.end());
  waveform.insert(waveform.end(), signal_td.begin(), signal_td.end());

  for (std::size_t s = 0; s < n_sym; ++s) {
    Bits sym_bits(coded.begin() + static_cast<std::ptrdiff_t>(s * ri.n_cbps),
                  coded.begin() + static_cast<std::ptrdiff_t>((s + 1) * ri.n_cbps));
    const Bits inter = interleave(sym_bits, ri.n_cbps, ri.n_bpsc);
    const CVec syms = modulate(inter, ri.modulation);
    const CVec td = ofdm_modulate_symbol(syms, s + 1);
    waveform.insert(waveform.end(), td.begin(), td.end());
  }
  return waveform;
}

std::optional<DecodedPacket> PacketReceiver::decode(const CVec& samples) const {
  // Minimum: preamble + SIGNAL.
  if (samples.size() < kPreambleLen + kSymbolLen) return std::nullopt;

  // Channel estimate from the two LTF periods (after the 32-sample CP).
  const std::size_t ltf1 = kStfLen + 32;
  const CVec p1(samples.begin() + static_cast<std::ptrdiff_t>(ltf1),
                samples.begin() + static_cast<std::ptrdiff_t>(ltf1 + kFftSize));
  const CVec p2(samples.begin() + static_cast<std::ptrdiff_t>(ltf1 + kFftSize),
                samples.begin() + static_cast<std::ptrdiff_t>(ltf1 + 2 * kFftSize));
  const CVec channel = estimate_channel_from_ltf(p1, p2);

  // ---- SIGNAL.
  const std::size_t signal_at = kPreambleLen;
  const CVec signal_rx(
      samples.begin() + static_cast<std::ptrdiff_t>(signal_at),
      samples.begin() + static_cast<std::ptrdiff_t>(signal_at + kSymbolLen));
  const CVec signal_eq = ofdm_demodulate_symbol(signal_rx, channel, 0);
  const Bits signal_demapped = demodulate(signal_eq, Modulation::kBpsk);
  const Bits signal_deinter = deinterleave(signal_demapped, 48, 1);
  const Bits signal_bits = viterbi_decode(signal_deinter, kSignalBitCount,
                                          CodeRate::kRate1_2);

  std::uint8_t parity = 0;
  for (std::size_t i = 0; i < 17; ++i) parity ^= signal_bits[i];
  if (parity != signal_bits[17]) return std::nullopt;
  for (std::size_t i = 18; i < kSignalBitCount; ++i) {
    if (signal_bits[i] != 0) return std::nullopt;  // tail must be zero
  }
  std::uint8_t rate_bits = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    rate_bits |= static_cast<std::uint8_t>(signal_bits[i] << i);
  }
  const auto rate = rate_from_signal_bits(rate_bits);
  if (!rate) return std::nullopt;
  std::size_t length = 0;
  for (std::size_t i = 0; i < 12; ++i) {
    length |= static_cast<std::size_t>(signal_bits[5 + i]) << i;
  }
  if (length == 0 || length > kMaxPsduBytes) return std::nullopt;

  const RateInfo& ri = rate_info(*rate);
  const std::size_t payload_bits = kServiceBits + 8 * length + kTailBits;
  const std::size_t n_sym = (payload_bits + ri.n_dbps - 1) / ri.n_dbps;
  const std::size_t need = kPreambleLen + kSymbolLen + n_sym * kSymbolLen;
  if (samples.size() < need) return std::nullopt;

  // ---- DATA symbols.
  Bits coded;
  coded.reserve(n_sym * ri.n_cbps);
  double evm_acc = 0.0;
  std::size_t evm_n = 0;
  for (std::size_t s = 0; s < n_sym; ++s) {
    const std::size_t at = kPreambleLen + kSymbolLen * (1 + s);
    const CVec rx(samples.begin() + static_cast<std::ptrdiff_t>(at),
                  samples.begin() + static_cast<std::ptrdiff_t>(at + kSymbolLen));
    const CVec eq = ofdm_demodulate_symbol(rx, channel, s + 1);
    const Bits demapped = demodulate(eq, ri.modulation);
    // EVM against the sliced constellation points.
    const CVec ideal = modulate(demapped, ri.modulation);
    for (std::size_t i = 0; i < eq.size(); ++i) {
      evm_acc += std::norm(eq[i] - ideal[i]);
      ++evm_n;
    }
    const Bits deinter = deinterleave(demapped, ri.n_cbps, ri.n_bpsc);
    coded.insert(coded.end(), deinter.begin(), deinter.end());
  }

  const std::size_t n_scrambled = n_sym * ri.n_dbps;
  const Bits scrambled = viterbi_decode(coded, n_scrambled, ri.code_rate);

  // Recover the scrambler seed from the SERVICE field: its first 7 bits
  // are transmitted as zeros, so the received values are the raw PRBS
  // output o1..o7, and the LFSR state after 7 shifts is o1..o7 with o1 in
  // the MSB.
  std::uint8_t state = 0;
  for (std::size_t i = 0; i < 7; ++i) {
    state |= static_cast<std::uint8_t>((scrambled[i] & 1u) << (6 - i));
  }
  if (state == 0) return std::nullopt;  // impossible for a valid packet
  Scrambler descrambler(state);
  Bits descrambled(scrambled.size(), 0);
  for (std::size_t i = 7; i < scrambled.size(); ++i) {
    descrambled[i] =
        static_cast<std::uint8_t>((scrambled[i] ^ descrambler.next_bit()) & 1u);
  }

  Bits psdu_bits(descrambled.begin() + kServiceBits,
                 descrambled.begin() + static_cast<std::ptrdiff_t>(
                                           kServiceBits + 8 * length));
  DecodedPacket out;
  out.psdu = bits_to_bytes(psdu_bits);
  out.rate = *rate;
  out.length = length;
  out.evm_rms = evm_n > 0 ? std::sqrt(evm_acc / static_cast<double>(evm_n)) : 0.0;
  out.samples_consumed = need;
  return out;
}

}  // namespace sa
