#include "sa/phy/scrambler.hpp"

#include "sa/common/error.hpp"

namespace sa {

Scrambler::Scrambler(std::uint8_t seed) : state_(seed & 0x7F) {
  SA_EXPECTS(state_ != 0);
}

void Scrambler::reset(std::uint8_t seed) {
  state_ = seed & 0x7F;
  SA_EXPECTS(state_ != 0);
}

std::uint8_t Scrambler::next_bit() {
  // Feedback = x^7 xor x^4 (bits 6 and 3 of the 7-bit register).
  const std::uint8_t fb =
      static_cast<std::uint8_t>(((state_ >> 6) ^ (state_ >> 3)) & 1u);
  state_ = static_cast<std::uint8_t>(((state_ << 1) | fb) & 0x7F);
  return fb;
}

Bits Scrambler::process(const Bits& bits) {
  Bits out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    out[i] = static_cast<std::uint8_t>((bits[i] ^ next_bit()) & 1u);
  }
  return out;
}

}  // namespace sa
