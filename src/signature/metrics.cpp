#include "sa/signature/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "sa/common/angles.hpp"
#include "sa/common/error.hpp"

namespace sa {

namespace {

void check_compatible(const AoaSignature& a, const AoaSignature& b) {
  SA_EXPECTS(a.valid() && b.valid());
  SA_EXPECTS(a.spectrum().size() == b.spectrum().size());
  SA_EXPECTS(a.spectrum().wraps() == b.spectrum().wraps());
}

}  // namespace

double cosine_similarity(const AoaSignature& a, const AoaSignature& b) {
  check_compatible(a, b);
  const auto& va = a.spectrum().values();
  const auto& vb = b.spectrum().values();
  double num = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < va.size(); ++i) {
    num += va[i] * vb[i];
    na += va[i] * va[i];
    nb += vb[i] * vb[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return num / std::sqrt(na * nb);
}

double spectral_distance_db(const AoaSignature& a, const AoaSignature& b,
                            double floor_db) {
  check_compatible(a, b);
  const auto da = a.spectrum().values_db();
  const auto db = b.spectrum().values_db();
  double acc = 0.0;
  for (std::size_t i = 0; i < da.size(); ++i) {
    const double xa = std::max(da[i], floor_db);
    const double xb = std::max(db[i], floor_db);
    acc += (xa - xb) * (xa - xb);
  }
  return std::sqrt(acc / static_cast<double>(da.size()));
}

double peak_set_distance(const AoaSignature& a, const AoaSignature& b,
                         double match_tolerance_deg) {
  SA_EXPECTS(a.valid() && b.valid());
  SA_EXPECTS(match_tolerance_deg > 0.0);
  const auto& pa = a.peaks();
  const auto& pb = b.peaks();
  if (pa.empty() && pb.empty()) return 0.0;

  const bool wraps = a.spectrum().wraps();
  auto dist = [&](double x, double y) {
    return wraps ? angular_distance_deg(x, y) : std::abs(x - y);
  };

  // Greedy matching, strongest-first (peaks are already sorted by value).
  std::vector<bool> used(pb.size(), false);
  double cost = 0.0;
  double weight = 0.0;
  for (const auto& p : pa) {
    double best = match_tolerance_deg;
    std::size_t best_j = pb.size();
    for (std::size_t j = 0; j < pb.size(); ++j) {
      if (used[j]) continue;
      const double d = dist(p.angle_deg, pb[j].angle_deg);
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    const double w = p.value;
    if (best_j < pb.size()) {
      used[best_j] = true;
      cost += w * (best / match_tolerance_deg);
    } else {
      cost += w;  // unmatched
    }
    weight += w;
  }
  // Unmatched peaks of b also count, with their own weights.
  for (std::size_t j = 0; j < pb.size(); ++j) {
    if (!used[j]) {
      cost += pb[j].value;
      weight += pb[j].value;
    }
  }
  if (weight <= 0.0) return 0.0;
  return std::clamp(cost / weight, 0.0, 1.0);
}

double match_score(const AoaSignature& a, const AoaSignature& b,
                   const MatchWeights& weights) {
  const double c = cosine_similarity(a, b);
  const double p = 1.0 - peak_set_distance(a, b);
  const double denom = weights.w_cosine + weights.w_peaks;
  SA_EXPECTS(denom > 0.0);
  return (weights.w_cosine * c + weights.w_peaks * p) / denom;
}

namespace {

/// Mean of a single-band metric over corresponding bands. With one band
/// the mean is the bare value, keeping K=1 numerically identical to the
/// narrowband metrics.
template <typename Metric>
double mean_over_bands(const SubbandSignature& a, const SubbandSignature& b,
                       Metric&& metric) {
  SA_EXPECTS(a.valid() && b.valid());
  SA_EXPECTS(a.num_bands() == b.num_bands());
  if (a.num_bands() == 1) return metric(a.band(0), b.band(0));
  double acc = 0.0;
  for (std::size_t i = 0; i < a.num_bands(); ++i) {
    acc += metric(a.band(i), b.band(i));
  }
  return acc / static_cast<double>(a.num_bands());
}

}  // namespace

double cosine_similarity(const SubbandSignature& a, const SubbandSignature& b) {
  return mean_over_bands(a, b, [](const AoaSignature& x, const AoaSignature& y) {
    return cosine_similarity(x, y);
  });
}

double spectral_distance_db(const SubbandSignature& a, const SubbandSignature& b,
                            double floor_db) {
  return mean_over_bands(a, b,
                         [&](const AoaSignature& x, const AoaSignature& y) {
                           return spectral_distance_db(x, y, floor_db);
                         });
}

double peak_set_distance(const SubbandSignature& a, const SubbandSignature& b,
                         double match_tolerance_deg) {
  return mean_over_bands(a, b,
                         [&](const AoaSignature& x, const AoaSignature& y) {
                           return peak_set_distance(x, y, match_tolerance_deg);
                         });
}

double match_score(const SubbandSignature& a, const SubbandSignature& b,
                   const MatchWeights& weights) {
  return mean_over_bands(a, b,
                         [&](const AoaSignature& x, const AoaSignature& y) {
                           return match_score(x, y, weights);
                         });
}

}  // namespace sa
